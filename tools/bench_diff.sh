#!/bin/sh
# Guard the scale-bench numbers: re-run a subset of the scale sweep and
# compare per-size protect wall-clock against the committed
# BENCH_scale.json, flagging regressions beyond the tolerance.
#
#   tools/bench_diff.sh                # quick subset: 1e3 and 1e4 gates
#   tools/bench_diff.sh 1000,10000,50000
#
# The tolerance is a ratio (default 1.20 = +20%); override with
# BENCH_DIFF_TOLERANCE.  Exit 1 when any size regresses.  Absolute
# wall-clock is machine-dependent, so this is a same-machine check:
# run it before and after a change, not across hardware.
set -eu

cd "$(dirname "$0")/.."

SIZES="${1:-1000,10000}"
TOL="${BENCH_DIFF_TOLERANCE:-1.20}"

if ! [ -f BENCH_scale.json ]; then
  echo "bench_diff: no committed BENCH_scale.json to compare against" >&2
  exit 1
fi

dune build bench/main.exe
BENCH_BIN="$PWD/_build/default/bench/main.exe"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cp BENCH_scale.json "$workdir/committed.json"

echo "== fresh scale sweep (sizes: $SIZES)"
(cd "$workdir" && STTC_SCALE_SIZES="$SIZES" "$BENCH_BIN" scale)

# BENCH_scale.json is emitted one field per line, so a line-oriented
# scrape is reliable: pair each "gates" with the row's "protect_s".
rows() {
  awk -F'[:,]' '
    /"gates"/     { gsub(/ /, "", $2); gates = $2 }
    /"protect_s"/ { gsub(/ /, "", $2); print gates, $2 }
  ' "$1"
}

rows "$workdir/committed.json" > "$workdir/committed.rows"
rows "$workdir/BENCH_scale.json" > "$workdir/fresh.rows"

status=0
while read -r gates fresh; do
  committed=$(awk -v g="$gates" '$1 == g { print $2 }' "$workdir/committed.rows")
  if [ -z "$committed" ]; then
    echo "bench_diff: $gates gates: not in committed BENCH_scale.json, skipping"
    continue
  fi
  verdict=$(awk -v f="$fresh" -v c="$committed" -v tol="$TOL" 'BEGIN {
    ratio = (c > 0) ? f / c : 0
    printf "%.2f %s", ratio, (ratio > tol) ? "REGRESSION" : "ok"
  }')
  ratio=${verdict% *}
  word=${verdict#* }
  printf '  %8s gates  protect %8.2fs committed vs %8.2fs fresh  (x%s %s)\n' \
    "$gates" "$committed" "$fresh" "$ratio" "$word"
  if [ "$word" = "REGRESSION" ]; then
    status=1
  fi
done < "$workdir/fresh.rows"

if [ "$status" -ne 0 ]; then
  echo "bench_diff: protect wall-clock regressed beyond x$TOL on at least one size" >&2
fi
exit $status
