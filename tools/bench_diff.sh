#!/bin/sh
# Guard committed bench numbers: re-run a bench section and compare its
# wall-clock figures against the committed BENCH_<name>.json, flagging
# regressions beyond the tolerance.
#
#   tools/bench_diff.sh                      # scale, quick subset: 1e3 and 1e4
#   tools/bench_diff.sh scale 1000,50000     # scale, chosen sizes
#   tools/bench_diff.sh backend              # cross-technology sweep
#   tools/bench_diff.sh serve                # daemon throughput (lower = worse)
#   tools/bench_diff.sh all                  # every guarded BENCH_*.json present
#
# The tolerance is a ratio (default 1.20 = +20%); override with
# BENCH_DIFF_TOLERANCE.  Exit 1 when anything regresses.  Absolute
# wall-clock is machine-dependent, so this is a same-machine check:
# run it before and after a change, not across hardware.
set -eu

cd "$(dirname "$0")/.."

TOL="${BENCH_DIFF_TOLERANCE:-1.20}"

BENCH="${1:-scale}"
ARG="${2:-}"
# historical spelling: a bare size list implies the scale bench
case "$BENCH" in
  *[0-9]*) ARG="$BENCH"; BENCH=scale ;;
esac

dune build bench/main.exe
BENCH_BIN="$PWD/_build/default/bench/main.exe"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

status=0

# The bench JSON files are emitted one field per line, so line-oriented
# scrapes are reliable.  Each rows_* function prints "key value" pairs.

scale_rows() {
  awk -F'[:,]' '
    /"gates"/     { gsub(/ /, "", $2); gates = $2 }
    /"protect_s"/ { gsub(/ /, "", $2); print gates "/protect_s", $2 }
  ' "$1"
}

backend_rows() {
  awk -F'[:,]' '
    /"circuit"/   { gsub(/[" ]/, "", $2); circuit = $2 }
    /"backend"/   { gsub(/[" ]/, "", $2); backend = $2 }
    /"protect_s"/ { gsub(/ /, "", $2); print circuit "/" backend "/protect_s", $2 }
    /"sat_s"/     { gsub(/ /, "", $2); print circuit "/" backend "/sat_s", $2 }
  ' "$1"
}

serve_rows() {
  awk -F'"' '
    /"req_per_s"/ {
      rest = $0
      sub(/.*"req_per_s": */, "", rest)
      sub(/[,}].*/, "", rest)
      print $2 "/req_per_s", rest
    }
  ' "$1"
}

# compare <label> <committed.rows> <fresh.rows> <direction>
# direction is "higher-bad" for seconds, "lower-bad" for throughput.
compare() {
  label=$1
  committed_f=$2
  fresh_f=$3
  dir=$4
  while read -r key fresh; do
    committed=$(awk -v k="$key" '$1 == k { print $2 }' "$committed_f")
    if [ -z "$committed" ]; then
      echo "bench_diff: $label $key: not in committed file, skipping"
      continue
    fi
    verdict=$(awk -v f="$fresh" -v c="$committed" -v tol="$TOL" -v d="$dir" 'BEGIN {
      if (d == "lower-bad") ratio = (f > 0) ? c / f : 0
      else                  ratio = (c > 0) ? f / c : 0
      printf "%.2f %s", ratio, (ratio > tol) ? "REGRESSION" : "ok"
    }')
    ratio=${verdict% *}
    word=${verdict#* }
    printf '  %-26s %14s committed vs %14s fresh  (x%s %s)\n' \
      "$key" "$committed" "$fresh" "$ratio" "$word"
    if [ "$word" = "REGRESSION" ]; then
      status=1
    fi
  done < "$fresh_f"
}

# run_one <name> <rows-fn> <direction> [section-banner]
run_one() {
  name=$1
  rows_fn=$2
  dir=$3
  file="BENCH_$name.json"
  if ! [ -f "$file" ]; then
    echo "bench_diff: no committed $file to compare against" >&2
    status=1
    return
  fi
  echo "== fresh $name bench"
  (cd "$workdir" && "$BENCH_BIN" "$name")
  "$rows_fn" "$file" > "$workdir/$name.committed"
  "$rows_fn" "$workdir/$file" > "$workdir/$name.fresh"
  compare "$name" "$workdir/$name.committed" "$workdir/$name.fresh" "$dir"
}

run_scale() {
  sizes="${ARG:-1000,10000}"
  if ! [ -f BENCH_scale.json ]; then
    echo "bench_diff: no committed BENCH_scale.json to compare against" >&2
    status=1
    return
  fi
  echo "== fresh scale sweep (sizes: $sizes)"
  (cd "$workdir" && STTC_SCALE_SIZES="$sizes" "$BENCH_BIN" scale)
  scale_rows BENCH_scale.json > "$workdir/scale.committed"
  scale_rows "$workdir/BENCH_scale.json" > "$workdir/scale.fresh"
  compare scale "$workdir/scale.committed" "$workdir/scale.fresh" higher-bad
}

run_bench() {
  case "$1" in
    scale)   run_scale ;;
    backend) run_one backend backend_rows higher-bad ;;
    serve)   run_one serve serve_rows lower-bad ;;
    *)
      echo "bench_diff: unknown bench '$1' (expected scale, backend, serve or all)" >&2
      exit 2
      ;;
  esac
}

if [ "$BENCH" = all ]; then
  for b in scale backend serve; do
    [ -f "BENCH_$b.json" ] && run_bench "$b"
  done
else
  run_bench "$BENCH"
fi

if [ "$status" -ne 0 ]; then
  echo "bench_diff: wall-clock regressed beyond x$TOL on at least one row" >&2
fi
exit $status
