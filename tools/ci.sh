#!/bin/sh
# CI entry point: build, test, and lint-gate the bundled benchmarks.
#
#   tools/ci.sh          # build + tests + lint the sub-1000-gate set
#   tools/ci.sh --full   # also lint the four large benchmarks
#
# Exit is nonzero on the first build failure, test failure, or
# error-severity lint diagnostic (the `sttc lint` CI contract).
set -eu

cd "$(dirname "$0")/.."

QUICK="s641 s820 s832 s953 s1196 s1238 s1488"
FULL="s5378a s9234a s13207 s15850a s38584"

benches="$QUICK"
if [ "${1:-}" = "--full" ]; then
  benches="$QUICK $FULL"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== dune build @fault (fault sweep + checkpoint/resume round-trip)"
timeout 600 dune build @fault

sttc() {
  dune exec --no-build bin/sttc.exe -- "$@"
}

# timeout(1) needs a real executable, not a shell function.
STTC_BIN="$PWD/_build/default/bin/sttc.exe"

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "== parallel smoke (sttc table1 --quick -j 2 must match -j 1 byte for byte)"
sttc table1 --quick -j 1 > "$tmpdir/table1.j1"
sttc table1 --quick -j 2 > "$tmpdir/table1.j2"
if ! diff -u "$tmpdir/table1.j1" "$tmpdir/table1.j2"; then
  echo "PARALLEL MISMATCH: sttc table1 --quick differs between -j 1 and -j 2" >&2
  exit 1
fi

echo "== observability smoke (traced run must validate and leave the table unchanged)"
sttc table1 --quick -j 2 --trace "$tmpdir/table1.trace.json" \
  --metrics "$tmpdir/table1.metrics.json" > "$tmpdir/table1.traced"
sttc obs-check --trace "$tmpdir/table1.trace.json" \
  --metrics "$tmpdir/table1.metrics.json" --min-series 15
if ! diff -u "$tmpdir/table1.j2" "$tmpdir/table1.traced"; then
  echo "OBSERVABILITY PERTURBED OUTPUT: traced sttc table1 --quick differs from the untraced run" >&2
  exit 1
fi

echo "== incremental-solver smoke (sttc attack keys must match the scratch baseline byte for byte)"
sttc gen -b custom --gates 200 --pis 10 --pos 8 --ffs 0 -o "$tmpdir/atk.bench"
for alg in independent dependent; do
  sttc attack -i "$tmpdir/atk.bench" -a "$alg" --solver scratch \
    --key-out "$tmpdir/key.$alg.scratch" > /dev/null
  sttc attack -i "$tmpdir/atk.bench" -a "$alg" --solver incremental \
    --key-out "$tmpdir/key.$alg.incremental" > /dev/null
  if ! diff -u "$tmpdir/key.$alg.scratch" "$tmpdir/key.$alg.incremental"; then
    echo "SOLVER MISMATCH: $alg keys differ between --solver scratch and incremental" >&2
    exit 1
  fi
done

echo "== semantic lint gate (Eq. 1 prover on protected s27, 120 s budget)"
# Pinned selection: at seed 7, independent picks two isolated gates (the
# Eq. 1 error must fire and exit nonzero), while dependent chains and the
# loosened-clock parametric closure interlock their LUTs (exit 0, at most
# SEM008 warnings).  test/test_lint.ml pins the same seed.
sttc gen -b s27 -o "$tmpdir/s27.bench"
if timeout 120 "$STTC_BIN" lint -i "$tmpdir/s27.bench" -a independent --count 2 \
     --seed 7 --semantic --rules "SEM003,SEM006,SEM008" \
     > "$tmpdir/s27.independent.lint"; then
  echo "SEMANTIC GATE FAILED: independent selection on s27 must trip SEM008" >&2
  cat "$tmpdir/s27.independent.lint" >&2
  exit 1
fi
if ! grep -q "SEM008" "$tmpdir/s27.independent.lint"; then
  echo "SEMANTIC GATE FAILED: independent nonzero exit but no SEM008 finding" >&2
  cat "$tmpdir/s27.independent.lint" >&2
  exit 1
fi
if ! timeout 120 "$STTC_BIN" lint -i "$tmpdir/s27.bench" -a dependent \
     --seed 7 --semantic --rules "SEM003,SEM006,SEM008"; then
  echo "SEMANTIC GATE FAILED: dependent selection on s27 must pass SEM lint" >&2
  exit 1
fi
if ! timeout 120 "$STTC_BIN" lint -i "$tmpdir/s27.bench" -a parametric \
     --clock-factor 2.0 --seed 7 --semantic --rules "SEM003,SEM006,SEM008"; then
  echo "SEMANTIC GATE FAILED: parametric selection on s27 must pass SEM lint" >&2
  exit 1
fi

echo "== campaign gate (SIGKILLed worker, resume, byte-identical report)"
# A 2-shard sweep of s27 (3 algorithms x 2 seeds = 6 runs).  Pass 1 runs
# it clean.  Pass 2 injects a SIGKILL into shard 0's worker after its
# first run with a zero retry budget: the shard must degrade (exit 2)
# into a footnoted partial report.  A --resume of the same directory
# must finish from the checkpoint (exit 0) and produce a report.json
# byte-identical to the clean pass.
cat > "$tmpdir/campaign.json" <<'EOF'
{
  "name": "ci",
  "circuits": ["s27"],
  "algorithms": ["dependent", {"name": "independent", "count": 3}, "parametric"],
  "seeds": [1, 2],
  "shards": 2,
  "retries": 1,
  "heartbeat_timeout_s": 60.0
}
EOF
timeout 300 "$STTC_BIN" campaign --manifest "$tmpdir/campaign.json" \
  --dir "$tmpdir/camp.clean" -j 2 > /dev/null 2>&1
kill_status=0
STTC_CAMPAIGN_KILL="0:1" timeout 300 "$STTC_BIN" campaign \
  --manifest "$tmpdir/campaign.json" --dir "$tmpdir/camp.kill" \
  --retries 0 -j 2 > "$tmpdir/camp.kill.out" 2>&1 || kill_status=$?
if [ "$kill_status" -ne 2 ]; then
  echo "CAMPAIGN GATE FAILED: killed run must exit 2 (degraded), got $kill_status" >&2
  cat "$tmpdir/camp.kill.out" >&2
  exit 1
fi
if ! grep -q "degraded" "$tmpdir/camp.kill.out"; then
  echo "CAMPAIGN GATE FAILED: degraded run must footnote the lost shard" >&2
  cat "$tmpdir/camp.kill.out" >&2
  exit 1
fi
timeout 300 "$STTC_BIN" campaign --resume "$tmpdir/camp.kill" > /dev/null 2>&1
if ! diff "$tmpdir/camp.clean/report.json" "$tmpdir/camp.kill/report.json"; then
  echo "CAMPAIGN GATE FAILED: resumed report differs from the clean single-pass report" >&2
  exit 1
fi
sttc obs-check --metrics "$tmpdir/camp.kill/campaign.metrics.json" \
  --require campaign.shard_retries,campaign.worker_respawns,campaign.heartbeat_misses,campaign.shards_degraded

echo "== serve gate (daemon responses byte-identical to offline CLI)"
# Boot the daemon, fire the same mixed request file from four concurrent
# clients, and byte-diff every response (except the live stats snapshot)
# against the offline `sttc client --offline` transport — the
# one-API-two-transports contract.  Then shut down cleanly: the daemon
# process must exit 0, remove its socket, and leave the serve.* metrics
# series behind.
SOCK="$tmpdir/serve.sock"
SERVE_METRICS="$tmpdir/serve.metrics.json"
BENCH_JSON=$(sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' "$tmpdir/s27.bench" \
  | awk '{printf "%s\\n", $0}')
cat > "$tmpdir/serve.requests" <<EOF
{"id":"r1","verb":"protect","netlist":"s27","algorithm":{"name":"independent","count":3},"seed":1}
{"id":"r2","verb":"protect","netlist":"c17","algorithm":"dependent","seed":2}
{"id":"r3","verb":"protect","netlist":{"name":"s27","bench":"$BENCH_JSON"},"algorithm":{"name":"independent","count":2},"seed":3}
{"id":"r4","verb":"lint","netlist":{"name":"s27","bench":"$BENCH_JSON"},"algorithms":[{"name":"independent","count":2}],"seed":1,"format":"json"}
{"id":"r5","verb":"lint","netlist":"s27","seed":1}
{"id":"r6","verb":"protect","netlist":"s27","algorithm":"parametric","seed":4,"sign_off":true}
{"id":"r7","verb":"ping"}
{"id":"r8","verb":"ping","sleep_s":0.05}
{"id":"r9","verb":"stats"}
EOF
"$STTC_BIN" client --offline --request-file "$tmpdir/serve.requests" \
  > "$tmpdir/serve.offline" 2> /dev/null
"$STTC_BIN" serve --socket "$SOCK" -j 2 --metrics "$SERVE_METRICS" \
  2> "$tmpdir/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
if ! [ -S "$SOCK" ]; then
  echo "SERVE GATE FAILED: daemon never bound $SOCK" >&2
  cat "$tmpdir/serve.log" >&2
  exit 1
fi
for c in 1 2 3 4; do
  "$STTC_BIN" client --socket "$SOCK" --request-file "$tmpdir/serve.requests" \
    > "$tmpdir/serve.client.$c" &
  eval "CLIENT_$c=\$!"
done
client_status=0
for c in 1 2 3 4; do
  eval "wait \$CLIENT_$c" || client_status=$?
done
if [ "$client_status" -ne 0 ]; then
  echo "SERVE GATE FAILED: a concurrent client exited nonzero" >&2
  cat "$tmpdir/serve.log" >&2
  exit 1
fi
grep -v '"verb":"stats"' "$tmpdir/serve.offline" > "$tmpdir/serve.offline.det"
for c in 1 2 3 4; do
  grep -v '"verb":"stats"' "$tmpdir/serve.client.$c" > "$tmpdir/serve.client.$c.det"
  if ! diff -u "$tmpdir/serve.offline.det" "$tmpdir/serve.client.$c.det"; then
    echo "SERVE GATE FAILED: daemon responses differ from offline CLI (client $c)" >&2
    exit 1
  fi
done
"$STTC_BIN" client --socket "$SOCK" --request '{"verb":"shutdown"}' > /dev/null
serve_status=0
wait $SERVE_PID || serve_status=$?
if [ "$serve_status" -ne 0 ]; then
  echo "SERVE GATE FAILED: daemon exited $serve_status" >&2
  cat "$tmpdir/serve.log" >&2
  exit 1
fi
if [ -e "$SOCK" ]; then
  echo "SERVE GATE FAILED: daemon left its socket behind" >&2
  exit 1
fi
sttc obs-check --metrics "$SERVE_METRICS" \
  --require serve.requests,serve.cache_hits,serve.overloaded,serve.queue_depth

echo "== scale gate (5e4-gate family: incremental protect under ceiling, byte-identical to full STA)"
# A 50k-gate s-like family circuit must protect inside a hard wall-clock
# ceiling on the incremental timing path, and the hybrid it emits
# (foundry view + bitstream) must be byte-identical to the legacy
# full-re-analysis flow forced via STTC_FULL_STA=1.  The metrics
# snapshot must show the incremental engine actually ran (cone retimes).
sttc gen -b custom --profile slike --gates 50000 --seed 7 \
  -o "$tmpdir/scale.bench" > /dev/null
SCALE_METRICS="$tmpdir/scale.metrics.json"
if ! timeout 120 "$STTC_BIN" protect -i "$tmpdir/scale.bench" -a parametric \
     --seed 1 -o "$tmpdir/scale.inc.bench" \
     --bitstream "$tmpdir/scale.inc.bits" \
     --metrics "$SCALE_METRICS" > /dev/null; then
  echo "SCALE GATE FAILED: incremental protect missed the 120 s ceiling on 5e4 gates" >&2
  exit 1
fi
if ! STTC_FULL_STA=1 timeout 600 "$STTC_BIN" protect \
     -i "$tmpdir/scale.bench" -a parametric --seed 1 \
     -o "$tmpdir/scale.full.bench" \
     --bitstream "$tmpdir/scale.full.bits" > /dev/null; then
  echo "SCALE GATE FAILED: STTC_FULL_STA=1 reference protect failed" >&2
  exit 1
fi
if ! cmp -s "$tmpdir/scale.inc.bench" "$tmpdir/scale.full.bench"; then
  echo "SCALE GATE FAILED: incremental foundry view differs from the full-STA flow" >&2
  exit 1
fi
if ! cmp -s "$tmpdir/scale.inc.bits" "$tmpdir/scale.full.bits"; then
  echo "SCALE GATE FAILED: incremental bitstream differs from the full-STA flow" >&2
  exit 1
fi
sttc obs-check --metrics "$SCALE_METRICS" \
  --require sta.retime.cone,sta.retime.cone_nodes

echo "== serve sta-cache gate (repeated protect of one netlist must hit the base-STA memo)"
# Two protect requests for the same circuit under different seeds: the
# response cache cannot absorb them (different keys), so the second one
# must find the base Sta.analyze memoized by content hash.
cat > "$tmpdir/cache.requests" <<'EOF'
{"id":"p1","verb":"protect","netlist":"s641","algorithm":"dependent","seed":1}
{"id":"p2","verb":"protect","netlist":"s641","algorithm":"dependent","seed":2}
EOF
"$STTC_BIN" client --offline --request-file "$tmpdir/cache.requests" \
  --metrics "$tmpdir/cache.metrics.json" > /dev/null
sttc obs-check --metrics "$tmpdir/cache.metrics.json" \
  --require serve.sta_cache_hits,serve.sta_cache_misses

echo "== backend gate (stt byte-identity, tvd protect->attack smoke, unknown name exits 64)"
# The backend seam must be invisible under the default technology:
# `--backend stt` must reproduce the default table1 byte for byte.
sttc table1 --quick --backend stt -j 1 > "$tmpdir/table1.stt"
if ! diff -u "$tmpdir/table1.j1" "$tmpdir/table1.stt"; then
  echo "BACKEND GATE FAILED: --backend stt table1 differs from the default path" >&2
  exit 1
fi
sttc fig3 --quick -j 1 > "$tmpdir/fig3.default"
sttc fig3 --quick --backend stt -j 1 > "$tmpdir/fig3.stt"
if ! diff -u "$tmpdir/fig3.default" "$tmpdir/fig3.stt"; then
  echo "BACKEND GATE FAILED: --backend stt fig3 differs from the default path" >&2
  exit 1
fi
# TVD end to end on s27: protect (bitstream out), then the SAT harness
# under the restricted attacker model; both must bump their per-backend
# counters.
sttc protect -i "$tmpdir/s27.bench" -a dependent --backend tvd \
  --bitstream "$tmpdir/s27.tvd.bits" \
  --metrics "$tmpdir/tvd.protect.metrics.json" > /dev/null
if ! [ -s "$tmpdir/s27.tvd.bits" ]; then
  echo "BACKEND GATE FAILED: tvd protect emitted no bitstream" >&2
  exit 1
fi
sttc attack -i "$tmpdir/s27.bench" -a dependent --backend tvd \
  --metrics "$tmpdir/tvd.attack.metrics.json" > /dev/null
sttc obs-check --metrics "$tmpdir/tvd.protect.metrics.json" \
  --require backend.protect.tvd
sttc obs-check --metrics "$tmpdir/tvd.attack.metrics.json" \
  --require backend.attack.tvd
# unknown backend names are usage errors (exit 64), uniformly across the
# subcommands that take the flag
for cmd in "protect -i $tmpdir/s27.bench" "attack -i $tmpdir/s27.bench" \
           "table1 --quick"; do
  bogus_status=0
  sttc $cmd --backend sram > /dev/null 2>&1 || bogus_status=$?
  if [ "$bogus_status" -ne 64 ]; then
    echo "BACKEND GATE FAILED: '--backend sram' must exit 64, got $bogus_status ($cmd)" >&2
    exit 1
  fi
done

status=0
for b in $benches; do
  echo "== lint $b (structural + all three algorithms)"
  sttc gen -b "$b" -o "$tmpdir/$b.bench"
  if ! sttc lint -i "$tmpdir/$b.bench" -a all; then
    echo "LINT FAILED: $b" >&2
    status=1
  fi
done

exit $status
