#!/bin/sh
# CI entry point: build, test, and lint-gate the bundled benchmarks.
#
#   tools/ci.sh          # build + tests + lint the sub-1000-gate set
#   tools/ci.sh --full   # also lint the four large benchmarks
#
# Exit is nonzero on the first build failure, test failure, or
# error-severity lint diagnostic (the `sttc lint` CI contract).
set -eu

cd "$(dirname "$0")/.."

QUICK="s641 s820 s832 s953 s1196 s1238 s1488"
FULL="s5378a s9234a s13207 s15850a s38584"

benches="$QUICK"
if [ "${1:-}" = "--full" ]; then
  benches="$QUICK $FULL"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== dune build @fault (fault sweep + checkpoint/resume round-trip)"
timeout 600 dune build @fault

sttc() {
  dune exec --no-build bin/sttc.exe -- "$@"
}

# timeout(1) needs a real executable, not a shell function.
STTC_BIN="$PWD/_build/default/bin/sttc.exe"

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "== parallel smoke (sttc table1 --quick -j 2 must match -j 1 byte for byte)"
sttc table1 --quick -j 1 > "$tmpdir/table1.j1"
sttc table1 --quick -j 2 > "$tmpdir/table1.j2"
if ! diff -u "$tmpdir/table1.j1" "$tmpdir/table1.j2"; then
  echo "PARALLEL MISMATCH: sttc table1 --quick differs between -j 1 and -j 2" >&2
  exit 1
fi

echo "== observability smoke (traced run must validate and leave the table unchanged)"
sttc table1 --quick -j 2 --trace "$tmpdir/table1.trace.json" \
  --metrics "$tmpdir/table1.metrics.json" > "$tmpdir/table1.traced"
sttc obs-check --trace "$tmpdir/table1.trace.json" \
  --metrics "$tmpdir/table1.metrics.json" --min-series 15
if ! diff -u "$tmpdir/table1.j2" "$tmpdir/table1.traced"; then
  echo "OBSERVABILITY PERTURBED OUTPUT: traced sttc table1 --quick differs from the untraced run" >&2
  exit 1
fi

echo "== incremental-solver smoke (sttc attack keys must match the scratch baseline byte for byte)"
sttc gen -b custom --gates 200 --pis 10 --pos 8 --ffs 0 -o "$tmpdir/atk.bench"
for alg in independent dependent; do
  sttc attack -i "$tmpdir/atk.bench" -a "$alg" --solver scratch \
    --key-out "$tmpdir/key.$alg.scratch" > /dev/null
  sttc attack -i "$tmpdir/atk.bench" -a "$alg" --solver incremental \
    --key-out "$tmpdir/key.$alg.incremental" > /dev/null
  if ! diff -u "$tmpdir/key.$alg.scratch" "$tmpdir/key.$alg.incremental"; then
    echo "SOLVER MISMATCH: $alg keys differ between --solver scratch and incremental" >&2
    exit 1
  fi
done

echo "== semantic lint gate (Eq. 1 prover on protected s27, 120 s budget)"
# Pinned selection: at seed 7, independent picks two isolated gates (the
# Eq. 1 error must fire and exit nonzero), while dependent chains and the
# loosened-clock parametric closure interlock their LUTs (exit 0, at most
# SEM008 warnings).  test/test_lint.ml pins the same seed.
sttc gen -b s27 -o "$tmpdir/s27.bench"
if timeout 120 "$STTC_BIN" lint -i "$tmpdir/s27.bench" -a independent --count 2 \
     --seed 7 --semantic --rules "SEM003,SEM006,SEM008" \
     > "$tmpdir/s27.independent.lint"; then
  echo "SEMANTIC GATE FAILED: independent selection on s27 must trip SEM008" >&2
  cat "$tmpdir/s27.independent.lint" >&2
  exit 1
fi
if ! grep -q "SEM008" "$tmpdir/s27.independent.lint"; then
  echo "SEMANTIC GATE FAILED: independent nonzero exit but no SEM008 finding" >&2
  cat "$tmpdir/s27.independent.lint" >&2
  exit 1
fi
if ! timeout 120 "$STTC_BIN" lint -i "$tmpdir/s27.bench" -a dependent \
     --seed 7 --semantic --rules "SEM003,SEM006,SEM008"; then
  echo "SEMANTIC GATE FAILED: dependent selection on s27 must pass SEM lint" >&2
  exit 1
fi
if ! timeout 120 "$STTC_BIN" lint -i "$tmpdir/s27.bench" -a parametric \
     --clock-factor 2.0 --seed 7 --semantic --rules "SEM003,SEM006,SEM008"; then
  echo "SEMANTIC GATE FAILED: parametric selection on s27 must pass SEM lint" >&2
  exit 1
fi

echo "== campaign gate (SIGKILLed worker, resume, byte-identical report)"
# A 2-shard sweep of s27 (3 algorithms x 2 seeds = 6 runs).  Pass 1 runs
# it clean.  Pass 2 injects a SIGKILL into shard 0's worker after its
# first run with a zero retry budget: the shard must degrade (exit 2)
# into a footnoted partial report.  A --resume of the same directory
# must finish from the checkpoint (exit 0) and produce a report.json
# byte-identical to the clean pass.
cat > "$tmpdir/campaign.json" <<'EOF'
{
  "name": "ci",
  "circuits": ["s27"],
  "algorithms": ["dependent", {"name": "independent", "count": 3}, "parametric"],
  "seeds": [1, 2],
  "shards": 2,
  "retries": 1,
  "heartbeat_timeout_s": 60.0
}
EOF
timeout 300 "$STTC_BIN" campaign --manifest "$tmpdir/campaign.json" \
  --dir "$tmpdir/camp.clean" -j 2 > /dev/null 2>&1
kill_status=0
STTC_CAMPAIGN_KILL="0:1" timeout 300 "$STTC_BIN" campaign \
  --manifest "$tmpdir/campaign.json" --dir "$tmpdir/camp.kill" \
  --retries 0 -j 2 > "$tmpdir/camp.kill.out" 2>&1 || kill_status=$?
if [ "$kill_status" -ne 2 ]; then
  echo "CAMPAIGN GATE FAILED: killed run must exit 2 (degraded), got $kill_status" >&2
  cat "$tmpdir/camp.kill.out" >&2
  exit 1
fi
if ! grep -q "degraded" "$tmpdir/camp.kill.out"; then
  echo "CAMPAIGN GATE FAILED: degraded run must footnote the lost shard" >&2
  cat "$tmpdir/camp.kill.out" >&2
  exit 1
fi
timeout 300 "$STTC_BIN" campaign --resume "$tmpdir/camp.kill" > /dev/null 2>&1
if ! diff "$tmpdir/camp.clean/report.json" "$tmpdir/camp.kill/report.json"; then
  echo "CAMPAIGN GATE FAILED: resumed report differs from the clean single-pass report" >&2
  exit 1
fi
sttc obs-check --metrics "$tmpdir/camp.kill/campaign.metrics.json" \
  --require campaign.shard_retries,campaign.worker_respawns,campaign.heartbeat_misses,campaign.shards_degraded

status=0
for b in $benches; do
  echo "== lint $b (structural + all three algorithms)"
  sttc gen -b "$b" -o "$tmpdir/$b.bench"
  if ! sttc lint -i "$tmpdir/$b.bench" -a all; then
    echo "LINT FAILED: $b" >&2
    status=1
  fi
done

exit $status
