(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section V) on the structural ISCAS'89 twins, plus an
   empirical attack campaign and Bechamel micro-benchmarks of the core
   computations.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig1      # one experiment
     dune exec bench/main.exe -- table1 table2 fig3 attacks faults micro
     dune exec bench/main.exe -- quick table1   # small-benchmark subset
     dune exec bench/main.exe -- -j 4 table1    # 4 worker domains
     dune exec bench/main.exe -- parallel       # serial-vs-parallel record
     dune exec bench/main.exe -- lint           # semantic-lint record
     dune exec bench/main.exe -- --trace t.json --metrics m.json quick table1
                                           # record observability output *)

module Runner = Sttc_experiments.Runner
module Flow = Sttc_core.Flow
module Profiles = Sttc_netlist.Iscas_profiles

let protect_strict ?backend ~seed alg nl =
  (Flow.run ~seed ?backend ~policy:Flow.Strict alg nl).Flow.accepted

let section title =
  Printf.printf
    "\n==============================================\n%s\n==============================================\n%!"
    title

let cached_rows = ref None

let run_config ~quick ~jobs =
  Runner.Config.(
    default |> with_quick quick |> with_jobs jobs
    |> with_on_event (function
         | Runner.Started _ -> ()
         | ev -> Printf.printf "  %s\n%!" (Runner.string_of_event ev)))

let rows ~quick ~jobs () =
  match !cached_rows with
  | Some (q, rows) when q = quick -> rows
  | _ ->
      let r = Runner.rows (run_config ~quick ~jobs) in
      cached_rows := Some (quick, r);
      r

let fig1 () =
  section "Fig. 1 - STT-based LUT vs static CMOS (normalized to CMOS)";
  print_string (Runner.fig1 ())

let table1 ~quick ~jobs () =
  section "Table I - performance / power / area overhead and #STT LUTs";
  print_string (Runner.table1 (rows ~quick ~jobs ()))

let table2 ~quick ~jobs () =
  section "Table II - CPU time for gate selection (MM:SS.d)";
  print_string (Runner.table2 (rows ~quick ~jobs ()))

let fig3 ~quick ~jobs () =
  section "Fig. 3 - required test clocks to determine the missing gates";
  print_string (Runner.fig3 (rows ~quick ~jobs ()))

let attacks ~jobs () =
  section "Attack campaign (empirical; small circuits where attacks finish)";
  print_string (Runner.attack_campaign ~jobs ())

let sidechannel () =
  section "Side-channel experiment: DPA difference-of-means, CMOS vs hybrid";
  print_string (Runner.sidechannel ())

let baselines () =
  section "Baselines: camouflaging [12] and SRAM LUTs [8] vs STT LUTs";
  print_string (Runner.baselines ())

let faults ~jobs () =
  section
    "Fault injection: stochastic MTJ writes, provisioning yield and repair";
  print_string (Runner.fault_sweep ~jobs ());
  match Runner.resume_selftest () with
  | Ok msg -> Printf.printf "\n%s\n" msg
  | Error m ->
      Printf.printf "\nresume self-test FAILED: %s\n" m;
      exit 1

let ablations () =
  section "Ablation: parametric timing-constraint factor (s1196)";
  print_string (Runner.ablation_parametric ());
  section "Ablation: Section IV-A.3 hardening (dummy inputs / absorption)";
  print_string (Runner.ablation_hardening ());
  section "Ablation: Fig. 3 sensitivity to the alpha/P constants";
  print_string (Runner.ablation_constants ())

(* ---------- serial vs parallel speedup record ---------- *)

(* Times the quick Table I fan-out at one worker and at [jobs] workers,
   checks the rows are byte-identical (the Pool determinism contract),
   and leaves a machine-readable record in BENCH_parallel.json. *)
let parallel ~jobs () =
  let jobs = if jobs > 1 then jobs else Sttc_util.Pool.default_jobs () in
  section
    (Printf.sprintf "Parallel speedup - quick Table I rows, 1 vs %d workers"
       jobs);
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let run j = Runner.rows Runner.Config.(default |> with_quick true |> with_jobs j) in
  let serial_rows, serial_s = time (fun () -> run 1) in
  let par_rows, parallel_s = time (fun () -> run jobs) in
  let identical = Runner.table1 serial_rows = Runner.table1 par_rows in
  let speedup = serial_s /. parallel_s in
  Printf.printf
    "  serial %.2fs, %d workers %.2fs -> %.2fx; rows identical: %b\n" serial_s
    jobs parallel_s speedup identical;
  Sttc_obs.Export.write_text "BENCH_parallel.json"
    (Printf.sprintf
       "{\n\
       \  \"experiment\": \"table1-quick\",\n\
       \  \"jobs\": %d,\n\
       \  \"serial_s\": %.3f,\n\
       \  \"parallel_s\": %.3f,\n\
       \  \"speedup\": %.3f,\n\
       \  \"rows_identical\": %b\n\
        }\n"
       jobs serial_s parallel_s speedup identical);
  Printf.printf "  wrote BENCH_parallel.json\n";
  if not identical then begin
    Printf.printf "parallel rows DIFFER from serial rows\n";
    exit 1
  end

(* ---------- incremental vs scratch SAT-attack record ---------- *)

(* Runs the combinational SAT attack twice per benchmark x algorithm —
   once rebuilding a scratch solver every iteration (the pre-incremental
   cost profile) and once on a single persistent solver — checks that
   verdicts and recovered keys are identical, and leaves the speedup and
   per-mode solver statistics in BENCH_sat.json. *)
let sat_bench () =
  section "SAT attack - one persistent solver vs scratch per iteration";
  let module Sat_attack = Sttc_attack.Sat_attack in
  let module Hybrid = Sttc_core.Hybrid in
  let gen name n_gates n_pi n_po levels =
    Sttc_netlist.Generator.generate ~seed:11
      {
        Sttc_netlist.Generator.design_name = name;
        n_pi;
        n_po;
        n_ff = 0;
        n_gates;
        levels;
      }
  in
  let circuits =
    [ gen "atk150" 150 10 8 7; gen "atk300" 300 12 10 8; gen "atk500" 500 14 10 9 ]
  in
  let algorithms =
    [
      ("independent", Flow.Independent { count = 10 });
      ("dependent", Flow.Dependent);
      ("parametric", Flow.Parametric Sttc_core.Algorithms.default_parametric);
    ]
  in
  let key_string bitstream =
    String.concat ";"
      (List.map
         (fun (id, t) -> Printf.sprintf "%d=%s" id (Sttc_logic.Truth.to_string t))
         bitstream)
  in
  let attack mode hybrid =
    let t0 = Unix.gettimeofday () in
    let outcome = Sat_attack.run ~timeout_s:120. ~mode hybrid in
    let seconds = Unix.gettimeofday () -. t0 in
    match outcome with
    | Sat_attack.Broken b ->
        (seconds, "broken", key_string b.bitstream, b.iterations, b.stats)
    | Sat_attack.Exhausted e ->
        (seconds, "exhausted:" ^ e.reason, "", e.iterations, e.stats)
  in
  let rows =
    List.concat_map
      (fun nl ->
        List.map
          (fun (alg_name, alg) ->
            let hybrid = (protect_strict ~seed:1 alg nl).Flow.hybrid in
            let s_s, s_verdict, s_key, s_iters, s_stats =
              attack Sat_attack.Scratch hybrid
            in
            let i_s, i_verdict, i_key, i_iters, i_stats =
              attack Sat_attack.Incremental hybrid
            in
            let identical = s_verdict = i_verdict && s_key = i_key in
            Printf.printf
              "  %-8s %-12s scratch %6.2fs (%3d it)  incremental %6.2fs \
               (%3d it)  %5.2fx  %s %s\n\
               %!"
              (Sttc_netlist.Netlist.design_name nl)
              alg_name s_s s_iters i_s i_iters (s_s /. i_s) i_verdict
              (if identical then "identical" else "MISMATCH");
            ( Sttc_netlist.Netlist.design_name nl,
              alg_name,
              Sttc_core.Hybrid.lut_count hybrid,
              (s_s, s_verdict, s_iters, s_stats),
              (i_s, i_verdict, i_iters, i_stats),
              identical ))
          algorithms)
      circuits
  in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0. rows in
  let scratch_total = total (fun (_, _, _, (s, _, _, _), _, _) -> s) in
  let incr_total = total (fun (_, _, _, _, (s, _, _, _), _) -> s) in
  let speedup = scratch_total /. incr_total in
  let all_identical = List.for_all (fun (_, _, _, _, _, id) -> id) rows in
  Printf.printf
    "  total: scratch %.2fs, incremental %.2fs -> %.2fx; rows identical: %b\n"
    scratch_total incr_total speedup all_identical;
  let stats_json (s : Sttc_logic.Sat.stats) =
    Printf.sprintf
      "{\"decisions\": %d, \"propagations\": %d, \"conflicts\": %d, \
       \"learned\": %d, \"kept\": %d, \"removed\": %d, \"restarts\": %d}"
      s.decisions s.propagations s.conflicts s.learned s.kept s.removed
      s.restarts
  in
  let row_json
      ( circuit,
        alg,
        luts,
        (s_s, s_verdict, s_iters, s_stats),
        (i_s, i_verdict, i_iters, i_stats),
        identical ) =
    Printf.sprintf
      "    {\"circuit\": \"%s\", \"algorithm\": \"%s\", \"luts\": %d,\n\
      \     \"scratch\": {\"seconds\": %.3f, \"verdict\": \"%s\", \
       \"iterations\": %d, \"stats\": %s},\n\
      \     \"incremental\": {\"seconds\": %.3f, \"verdict\": \"%s\", \
       \"iterations\": %d, \"stats\": %s},\n\
      \     \"speedup\": %.3f, \"identical\": %b}"
      circuit alg luts s_s s_verdict s_iters (stats_json s_stats) i_s
      i_verdict i_iters (stats_json i_stats) (s_s /. i_s) identical
  in
  Sttc_obs.Export.write_text "BENCH_sat.json"
    (Printf.sprintf
       "{\n\
       \  \"experiment\": \"sat-attack-incremental\",\n\
       \  \"scratch_total_s\": %.3f,\n\
       \  \"incremental_total_s\": %.3f,\n\
       \  \"speedup\": %.3f,\n\
       \  \"rows_identical\": %b,\n\
       \  \"rows\": [\n%s\n  ]\n\
        }\n"
       scratch_total incr_total speedup all_identical
       (String.concat ",\n" (List.map row_json rows)));
  Printf.printf "  wrote BENCH_sat.json\n";
  if not all_identical then begin
    Printf.printf "incremental verdicts/keys DIFFER from scratch baseline\n";
    exit 1
  end

(* ---------- semantic lint record ---------- *)

(* Protects each ISCAS'89 profile with independent selection, runs the
   full semantic (SEM) pack — the Eq. 1 prover included — on the foundry
   view with the true bitstream, and records wall-clock, SAT query
   counts and findings per profile in BENCH_lint.json. *)
let lint_bench () =
  section "Semantic lint - Eq. 1 prover across the ISCAS'89 profiles";
  let module J = Sttc_obs.Json in
  let module Metrics = Sttc_obs.Metrics in
  let module D = Sttc_lint.Diagnostic in
  let module Sem = Sttc_lint.Semantic_rules in
  let profiles =
    [ "s641"; "s820"; "s832"; "s953"; "s1196"; "s1238"; "s1488";
      "s5378a"; "s9234a" ]
  in
  let counters snap =
    (* conflicts land in one histogram per query label
       (lint.sem.<label>.solver_conflicts); sum them all *)
    let conflicts =
      List.fold_left
        (fun acc (name, p) ->
          match p with
          | Metrics.Histogram s
            when String.starts_with ~prefix:"lint.sem." name
                 && String.ends_with ~suffix:".solver_conflicts" name ->
              acc + int_of_float s.Metrics.sum
          | _ -> acc)
        0 snap
    in
    ( Metrics.counter_value snap "lint.sem.queries",
      Metrics.counter_value snap "lint.sem.cutoffs",
      conflicts )
  in
  (* the prover reports its query counts through the metrics registry,
     which records only while observability is on; switch it on for this
     section unless a --metrics/--trace run already did *)
  let was_enabled = Sttc_obs.Control.enabled () in
  if not was_enabled then Sttc_obs.Control.enable ();
  let rows =
    List.map
      (fun name ->
        let nl = Profiles.build_by_name name in
        let r = protect_strict ~seed:1 (Flow.Independent { count = 5 }) nl in
        let h = r.Flow.hybrid in
        let q0, c0, k0 = counters (Metrics.snapshot ()) in
        let t0 = Unix.gettimeofday () in
        let ds =
          Sem.run
            (Sem.view
               ~luts:(Sttc_core.Hybrid.lut_ids h)
               ~configs:(Sttc_core.Hybrid.bitstream h)
               (Sttc_core.Hybrid.foundry_view h))
        in
        let seconds = Unix.gettimeofday () -. t0 in
        let q1, c1, k1 = counters (Metrics.snapshot ()) in
        let errors = D.errors ds and total = List.length ds in
        Printf.printf
          "  %-8s %6.2fs  %5d queries  %3d cutoffs  %6d conflicts  %3d findings (%d errors)\n%!"
          name seconds (q1 - q0) (c1 - c0) (k1 - k0) total errors;
        ( name,
          J.Obj
            [
              ("benchmark", J.String name);
              ("seconds", J.Float seconds);
              ("queries", J.Int (q1 - q0));
              ("cutoffs", J.Int (c1 - c0));
              ("conflicts", J.Int (k1 - k0));
              ("findings", J.Int total);
              ("errors", J.Int errors);
            ] ))
      profiles
  in
  if not was_enabled then Sttc_obs.Control.disable ();
  let doc =
    J.Obj
      [
        ("experiment", J.String "semantic-lint");
        ("algorithm", J.String "independent");
        ("seed", J.Int 1);
        ("rows", J.List (List.map snd rows));
      ]
  in
  Sttc_obs.Export.write_file "BENCH_lint.json" doc;
  Printf.printf "  wrote BENCH_lint.json\n"

(* ---------- campaign engine record ---------- *)

(* Runs a small 2-shard campaign twice — once clean, once with a worker
   SIGKILLed mid-shard and then resumed — asserts the two aggregated
   reports are byte-identical (the crash-tolerance contract), and
   records throughput plus the supervision counters in
   BENCH_campaign.json. *)
let campaign_bench () =
  section "Campaign engine - supervised shards, kill + resume";
  let module C = Sttc_campaign in
  let manifest =
    C.Manifest.make ~name:"bench" ~circuits:[ "s27" ] ~seeds:[ 1; 2 ]
      ~shards:2 ~retries:1 ()
  in
  let total_runs = C.Manifest.run_count manifest in
  (* the CLI binary sits next to this executable in the build tree; fall
     back to in-process shards (no kill injection) when it is absent *)
  let sttc =
    let root = Filename.dirname (Filename.dirname Sys.executable_name) in
    Filename.concat (Filename.concat root "bin") "sttc.exe"
  in
  let spawned = Sys.file_exists sttc in
  let worker =
    if spawned then
      C.Supervisor.Spawn
        (fun ~dir ~shard ~attempt ->
          [|
            sttc; "worker"; "--dir"; dir; "--shard"; string_of_int shard;
            "--attempt"; string_of_int attempt;
          |])
    else C.Supervisor.In_process
  in
  let fresh_dir tag =
    let path = Filename.temp_file ("bench-campaign-" ^ tag) "" in
    Sys.remove path;
    C.Shard.prepare_dir path;
    C.Manifest.save (C.Shard.manifest_path path) manifest;
    path
  in
  let supervise ?retries dir =
    C.Supervisor.run
      (C.Supervisor.config ~jobs:2 ?retries ~worker ~dir ~manifest ())
  in
  let report dir outcome =
    let degraded =
      List.filter_map
        (function
          | s, C.Supervisor.Exhausted { last; _ } ->
              Some (s, C.Supervisor.cause_to_string last)
          | _, C.Supervisor.Complete -> None)
        outcome.C.Supervisor.statuses
    in
    (match C.Aggregate.write ~dir (C.Aggregate.collect ~degraded ~dir manifest)
     with
    | Ok () -> ()
    | Error e ->
        Printf.printf "campaign report validation failed: %s\n" e;
        exit 1);
    In_channel.with_open_bin (C.Shard.report_json_path dir)
      In_channel.input_all
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* pass 1: uninterrupted *)
  let clean_dir = fresh_dir "clean" in
  let clean_outcome, clean_s = time (fun () -> supervise clean_dir) in
  let clean_report = report clean_dir clean_outcome in
  (* pass 2: SIGKILL shard 0's worker after its first run, no retries —
     the shard degrades; then resume without the fault *)
  let kill_dir = fresh_dir "kill" in
  if spawned then Unix.putenv C.Worker.kill_injection_env "0:1";
  let first = supervise ~retries:0 kill_dir in
  if spawned then Unix.putenv C.Worker.kill_injection_env "";
  let resumed, resume_s = time (fun () -> supervise kill_dir) in
  let killed_report = report kill_dir resumed in
  let identical = clean_report = killed_report in
  Printf.printf
    "  %d runs x 2 shards%s: clean %.2fs, kill+resume %.2fs; degraded first \
     pass: %d; reports identical: %b\n"
    total_runs
    (if spawned then "" else " (in-process fallback)")
    clean_s resume_s first.C.Supervisor.degraded identical;
  Sttc_obs.Export.write_text "BENCH_campaign.json"
    (Printf.sprintf
       "{\n\
       \  \"experiment\": \"campaign-kill-resume\",\n\
       \  \"runs\": %d,\n\
       \  \"shards\": %d,\n\
       \  \"spawned_workers\": %b,\n\
       \  \"clean_s\": %.3f,\n\
       \  \"resume_s\": %.3f,\n\
       \  \"runs_per_s\": %.3f,\n\
       \  \"first_pass_degraded\": %d,\n\
       \  \"retries\": %d,\n\
       \  \"respawns\": %d,\n\
       \  \"heartbeat_misses\": %d,\n\
       \  \"reports_identical\": %b\n\
        }\n"
       total_runs manifest.C.Manifest.shards spawned clean_s resume_s
       (float_of_int total_runs /. Float.max 1e-9 clean_s)
       first.C.Supervisor.degraded
       (first.C.Supervisor.retries + resumed.C.Supervisor.retries)
       (first.C.Supervisor.respawns + resumed.C.Supervisor.respawns)
       (first.C.Supervisor.heartbeat_misses
       + resumed.C.Supervisor.heartbeat_misses)
       identical);
  Printf.printf "  wrote BENCH_campaign.json\n";
  if not identical then begin
    Printf.printf "killed+resumed report DIFFERS from the clean report\n";
    exit 1
  end

(* ---------- serve daemon load record ---------- *)

(* Boots the [sttc serve] daemon twice on a throwaway socket — once with
   the netlist cache disabled (every request re-parses and re-warms its
   netlist) and once with it enabled — fires the same mixed request
   stream at it from concurrent client domains, and records p50/p95/p99
   latency plus sustained req/s per pass in BENCH_serve.json.  The
   warm-cache p50 sitting measurably below the cold one is the point of
   a persistent daemon. *)
let serve_bench ~jobs () =
  section "Serve daemon - cold vs warm netlist cache over the Unix socket";
  let module Serve = Sttc_serve in
  let workers = max 2 jobs in
  let n_clients = 4 and per_client = 250 in
  (* the cache-sensitive request: lint an inline netlist big enough that
     parsing + warming it is a visible share of the request *)
  let text =
    Sttc_netlist.Bench_io.to_string
      (Sttc_netlist.Generator.generate ~seed:7
         {
           Sttc_netlist.Generator.design_name = "srv40";
           n_pi = 8;
           n_po = 6;
           n_ff = 0;
           n_gates = 40;
           levels = 5;
         })
  in
  let req payload = { Serve.Request.id = None; timeout_s = None; payload } in
  let lint_req =
    req
      (Serve.Request.Lint
         {
           source = Serve.Request.Inline { name = "srv40"; text };
           algorithms = [];
           semantic = false;
           seed = 1;
           fraction = None;
           budget = None;
           rules = [];
           suppress = [];
           format = `Json;
         })
  in
  let protect_req =
    req
      (Serve.Request.Protect
         {
           source = Serve.Request.Named "s27";
           algorithm = Flow.Independent { count = 3 };
           config = Sttc_campaign.Manifest.default_config;
           seed = 1;
           backend = "stt";
           sign_off = false;
           emit_foundry = false;
           emit_bitstream = false;
           emit_verilog = false;
           timing = false;
         })
  in
  let mix =
    [|
      lint_req; lint_req; lint_req; protect_req; lint_req; lint_req;
      req (Serve.Request.Ping { sleep_s = 0. }); req Serve.Request.Stats;
    |]
  in
  let percentile sorted p =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))
  in
  let pass ~tag ~cache_capacity =
    let socket =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "sttc-bench-%s-%d.sock" tag (Unix.getpid ()))
    in
    if Sys.file_exists socket then Sys.remove socket;
    let cfg =
      Serve.Server.Config.(
        default |> with_socket socket |> with_jobs workers
        |> with_queue_capacity 256
        |> with_cache_capacity cache_capacity)
    in
    let srv = Domain.spawn (fun () -> Serve.Server.run cfg) in
    let rec await tries =
      if Sys.file_exists socket then ()
      else if tries = 0 then failwith ("daemon never bound " ^ socket)
      else begin
        Unix.sleepf 0.02;
        await (tries - 1)
      end
    in
    await 250;
    let t0 = Unix.gettimeofday () in
    let client c =
      Serve.Client.with_connection socket (fun conn ->
          let lats = Array.make per_client 0. in
          let rec go i =
            if i = per_client then Ok lats
            else
              let r = mix.((c + i) mod Array.length mix) in
              let u0 = Unix.gettimeofday () in
              match Serve.Client.request conn r with
              | Ok (Serve.Response.Ok _) ->
                  lats.(i) <- (Unix.gettimeofday () -. u0) *. 1000.;
                  go (i + 1)
              | Ok (Serve.Response.Error { message; _ }) -> Error message
              | Ok (Serve.Response.Overloaded _) -> Error "overloaded"
              | Error _ as e -> e
          in
          go 0)
    in
    let domains = List.init n_clients (fun c -> Domain.spawn (fun () -> client c)) in
    let results = List.map Domain.join domains in
    let wall = Unix.gettimeofday () -. t0 in
    (match
       Serve.Client.with_connection socket (fun conn ->
           Serve.Client.request conn (req Serve.Request.Shutdown))
     with
    | Ok _ -> ()
    | Error e -> failwith ("shutdown failed: " ^ e));
    Domain.join srv;
    let lats =
      List.concat_map
        (function
          | Ok a -> Array.to_list a
          | Error e -> failwith ("serve bench client failed: " ^ e))
        results
    in
    let sorted = Array.of_list lats in
    Array.sort compare sorted;
    let total = Array.length sorted in
    let rps = float_of_int total /. wall in
    let p50 = percentile sorted 50.
    and p95 = percentile sorted 95.
    and p99 = percentile sorted 99. in
    Printf.printf
      "  %-4s cache: %4d reqs in %5.2fs -> %7.1f req/s   p50 %.3fms  p95 \
       %.3fms  p99 %.3fms\n\
       %!"
      tag total wall rps p50 p95 p99;
    (rps, p50, p95, p99)
  in
  let cold_rps, cold_p50, cold_p95, cold_p99 = pass ~tag:"cold" ~cache_capacity:0 in
  let warm_rps, warm_p50, warm_p95, warm_p99 = pass ~tag:"warm" ~cache_capacity:32 in
  let faster = warm_p50 < cold_p50 in
  Printf.printf "  warm p50 below cold p50: %b\n" faster;
  Sttc_obs.Export.write_text "BENCH_serve.json"
    (Printf.sprintf
       "{\n\
       \  \"experiment\": \"serve-load\",\n\
       \  \"workers\": %d,\n\
       \  \"clients\": %d,\n\
       \  \"requests_per_client\": %d,\n\
       \  \"cold\": {\"req_per_s\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": \
        %.4f, \"p99_ms\": %.4f},\n\
       \  \"warm\": {\"req_per_s\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": \
        %.4f, \"p99_ms\": %.4f},\n\
       \  \"warm_p50_below_cold\": %b\n\
        }\n"
       workers n_clients per_client cold_rps cold_p50 cold_p95 cold_p99
       warm_rps warm_p50 warm_p95 warm_p99 faster);
  Printf.printf "  wrote BENCH_serve.json\n";
  if not faster then begin
    Printf.printf "warm-cache p50 is NOT below cold-cache p50\n";
    exit 1
  end

(* ---------- Bechamel micro-benchmarks ---------- *)

let micro () =
  section "Bechamel micro-benchmarks (core computations per table)";
  let open Bechamel in
  let nl = Profiles.build_by_name "s1196" in
  let lib = Sttc_tech.Library.cmos90 in
  let tests =
    [
      (* Fig. 1: the technology model *)
      Test.make ~name:"fig1/stt-lut-model"
        (Staged.stage (fun () ->
             List.iter
               (fun (row : Sttc_tech.Stt_lib.fig1_row) ->
                 ignore
                   (Sttc_tech.Stt_lib.fig1_model row.Sttc_tech.Stt_lib.gate))
               Sttc_tech.Stt_lib.fig1_reference));
      (* Table I: the three selection algorithms end to end on s1196 *)
      Test.make ~name:"table1/independent-s1196"
        (Staged.stage (fun () ->
             ignore (protect_strict ~seed:1 (Flow.Independent { count = 5 }) nl)));
      Test.make ~name:"table1/dependent-s1196"
        (Staged.stage (fun () ->
             ignore (protect_strict ~seed:1 Flow.Dependent nl)));
      Test.make ~name:"table1/parametric-s1196"
        (Staged.stage (fun () ->
             ignore
               (protect_strict ~seed:1
                  (Flow.Parametric Sttc_core.Algorithms.default_parametric)
                  nl)));
      (* Table II's underlying primitives *)
      Test.make ~name:"table2/sta-s1196"
        (Staged.stage (fun () -> ignore (Sttc_analysis.Sta.analyze lib nl)));
      Test.make ~name:"table2/power-s1196"
        (Staged.stage (fun () -> ignore (Sttc_analysis.Power.estimate lib nl)));
      (* Fig. 3: the security equations *)
      Test.make ~name:"fig3/security-eval"
        (Staged.stage
           (let hybrid =
              (protect_strict ~seed:1 Flow.Dependent nl).Flow.hybrid
            in
            let foundry = Sttc_core.Hybrid.foundry_view hybrid in
            let luts = Sttc_core.Hybrid.lut_ids hybrid in
            fun () -> ignore (Sttc_core.Security.evaluate foundry ~luts)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let tbl = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.printf "  %-32s %14.1f ns/run\n" name est
          | Some [] | None -> Printf.printf "  %-32s (no estimate)\n" name)
        tbl)
    tests

(* ---------- scale families: incremental timing record ---------- *)

(* Sweeps the s-like scale family from 10^3 to 10^6 gates.  Per size it
   times generation, one full STA, and the protect flow in its default
   incremental mode; where a second protect run is affordable the legacy
   full-re-analysis mode (STTC_FULL_STA=1) runs too and the two hybrids
   are checked byte-identical.  The per-candidate cost is also measured
   directly — K speculative gate->LUT evaluations through Sta.trial
   against K from-scratch analyses of the same modified netlists, with
   the delays asserted equal — and everything lands in BENCH_scale.json.
   Override the size list with STTC_SCALE_SIZES=1000,10000 for a quick
   pass (tools/bench_diff.sh does). *)
let scale_bench () =
  section "Scale families - incremental timing vs full re-analysis";
  let module J = Sttc_obs.Json in
  let module Metrics = Sttc_obs.Metrics in
  let module Gen = Sttc_netlist.Generator in
  let module Netlist = Sttc_netlist.Netlist in
  let module Transform = Sttc_netlist.Transform in
  let module Sta = Sttc_analysis.Sta in
  let lib = Sttc_tech.Library.cmos90 in
  let sizes =
    match Sys.getenv_opt "STTC_SCALE_SIZES" with
    | None | Some "" -> [ 1_000; 10_000; 50_000; 100_000; 1_000_000 ]
    | Some s ->
        List.filter_map
          (fun tok ->
            let tok = String.trim tok in
            if tok = "" then None
            else
              match int_of_string_opt tok with
              | Some v when v >= 8 -> Some v
              | _ ->
                  failwith ("STTC_SCALE_SIZES: bad gate count '" ^ tok ^ "'"))
          (String.split_on_char ',' s)
  in
  (* full-mode protect re-runs Sta.analyze per candidate; above this
     size that costs minutes per run, so the sweep records null there
     and the per-candidate speedup stands in for it *)
  let full_protect_ceiling = 100_000 in
  (* a tight clock budget keeps the repair loop busy, which is exactly
     the hot path the incremental engine exists for; n_paths keeps the
     paper default (gates/1500), so candidate counts grow with size *)
  let algorithm =
    Flow.Parametric
      {
        Sttc_core.Algorithms.default_parametric with
        Sttc_core.Algorithms.clock_factor = 1.02;
      }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let peak_rss_kb () =
    (* VmHWM of /proc/self/status — the process high-water mark, hence
       monotonic across the sweep; 0 where procfs is unavailable *)
    try
      In_channel.with_open_text "/proc/self/status" (fun ic ->
          let rec go () =
            match In_channel.input_line ic with
            | None -> 0
            | Some line when String.starts_with ~prefix:"VmHWM:" line ->
                Scanf.sscanf
                  (String.sub line 6 (String.length line - 6))
                  " %d" Fun.id
            | Some _ -> go ()
          in
          go ())
    with _ -> 0
  in
  let hybrid_fingerprint (r : Flow.result) =
    let h = r.Flow.hybrid in
    Sttc_netlist.Bench_io.to_string (Sttc_core.Hybrid.foundry_view h)
    ^ Sttc_core.Provision.to_string (Sttc_core.Provision.of_hybrid h)
  in
  let cone_stats snap =
    match Metrics.find snap "sta.retime.cone_nodes" with
    | Some (Metrics.Histogram s) -> (s.Metrics.count, s.Metrics.sum)
    | _ -> (0, 0.)
  in
  (* K single-gate speculative evaluations: the trial engine against a
     from-scratch analysis of the identical modified netlist *)
  let candidate_speedup nl sta =
    let rng = Sttc_util.Rng.make 42 in
    let gates =
      Array.of_seq
        (Seq.filter
           (fun id ->
             match Netlist.kind nl id with
             | Netlist.Gate _ -> true
             | _ -> false)
           (Seq.init (Netlist.node_count nl) Fun.id))
    in
    let picks = Array.init 20 (fun _ -> Sttc_util.Rng.pick rng gates) in
    let overlay = Transform.Overlay.create nl in
    let tr = Sta.trial lib sta in
    let c0, s0 = cone_stats (Metrics.snapshot ()) in
    let trial_delays, trial_s =
      time (fun () ->
          Array.map
            (fun g ->
              Transform.Overlay.stage overlay g;
              let d =
                Sta.trial_delay_ps tr
                  ~kind_of:(Transform.Overlay.kind overlay)
                  [ g ]
              in
              Transform.Overlay.clear overlay;
              d)
            picks)
    in
    let c1, s1 = cone_stats (Metrics.snapshot ()) in
    let full_delays, full_s =
      time (fun () ->
          Array.map
            (fun g ->
              Sta.critical_delay_ps
                (Sta.analyze lib
                   (Transform.replace_many ~keep_function:false nl [ g ])))
            picks)
    in
    if trial_delays <> full_delays then begin
      Printf.printf "trial delays DIFFER from from-scratch delays\n";
      exit 1
    end;
    let cone_mean =
      if c1 > c0 then (s1 -. s0) /. float_of_int (c1 - c0) else 0.
    in
    (full_s /. trial_s, cone_mean)
  in
  (* the trial engine reports cone sizes through the metrics registry,
     which records only while observability is on *)
  let was_enabled = Sttc_obs.Control.enabled () in
  if not was_enabled then Sttc_obs.Control.enable ();
  let rows =
    List.map
      (fun gates ->
        let nl, gen_s = time (fun () -> Gen.generate_family ~seed:7 ~gates ()) in
        let nodes = Netlist.node_count nl in
        let sta, full_sta_s = time (fun () -> Sta.analyze lib nl) in
        let eval_speedup, cone_mean = candidate_speedup nl sta in
        let inc_r, protect_s =
          time (fun () -> protect_strict ~seed:1 algorithm nl)
        in
        let protect_full_s =
          if gates > full_protect_ceiling then None
          else begin
            Unix.putenv "STTC_FULL_STA" "1";
            let full_r, full_s =
              time (fun () -> protect_strict ~seed:1 algorithm nl)
            in
            Unix.putenv "STTC_FULL_STA" "";
            if hybrid_fingerprint inc_r <> hybrid_fingerprint full_r then begin
              Printf.printf
                "incremental hybrid DIFFERS from full-mode hybrid at %d gates\n"
                gates;
              exit 1
            end;
            Some full_s
          end
        in
        let rss_kb = peak_rss_kb () in
        Printf.printf
          "  %8d gates (%8d nodes)  gen %6.2fs  sta %6.3fs  protect %7.2fs  \
           %s  candidate %8.1fx (cone ~%.0f)  rss %d MB\n\
           %!"
          gates nodes gen_s full_sta_s protect_s
          (match protect_full_s with
          | Some f ->
              Printf.sprintf "full %7.2fs (%5.1fx, identical)" f
                (f /. protect_s)
          | None -> "full    --     (skipped)      ")
          eval_speedup cone_mean (rss_kb / 1024);
        J.Obj
          [
            ("gates", J.Int gates);
            ("nodes", J.Int nodes);
            ("profile", J.String (Gen.profile_name Gen.Slike));
            ("gen_s", J.Float gen_s);
            ("full_sta_s", J.Float full_sta_s);
            ("protect_s", J.Float protect_s);
            ( "protect_full_s",
              match protect_full_s with Some f -> J.Float f | None -> J.Null );
            ( "protect_speedup",
              match protect_full_s with
              | Some f -> J.Float (f /. protect_s)
              | None -> J.Null );
            ("trial_eval_speedup", J.Float eval_speedup);
            ("trial_cone_nodes_mean", J.Float cone_mean);
            ("peak_rss_kb", J.Int rss_kb);
          ])
      sizes
  in
  if not was_enabled then Sttc_obs.Control.disable ();
  Sttc_obs.Export.write_file "BENCH_scale.json"
    (J.Obj
       [
         ("experiment", J.String "scale-incremental-timing");
         ("profile", J.String (Gen.profile_name Gen.Slike));
         ("seed", J.Int 1);
         ("clock_factor", J.Float 1.02);
         ("full_protect_ceiling", J.Int full_protect_ceiling);
         ("rows", J.List rows);
       ]);
  Printf.printf "  wrote BENCH_scale.json\n"

(* ---------- cross-technology backend record ---------- *)

(* Protects each circuit under every registered protection backend with
   the same seed, asserts the selections (the replaced gates) are
   identical across technologies — pricing differs, the flow's choices
   must not — then runs the combinational SAT attack under each
   backend's attacker model (TVD keys constrained to the known candidate
   family) and records overhead, keyspace and attack cost side by side
   in BENCH_backend.json. *)
let backend_bench () =
  section "Protection backends - STT-MRAM LUTs vs TVD camouflaged cells";
  let module J = Sttc_obs.Json in
  let module Backend = Sttc_backend.Backend in
  let module Hybrid = Sttc_core.Hybrid in
  let module Netlist = Sttc_netlist.Netlist in
  let module Sat_attack = Sttc_attack.Sat_attack in
  let circuits = [ "s27"; "c17"; "s641"; "s1196" ] in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rows =
    List.concat_map
      (fun name ->
        let nl = Runner.build_circuit name in
        let per_backend =
          List.map
            (fun backend ->
              let r, protect_s =
                time (fun () ->
                    protect_strict ~backend ~seed:1
                      (Flow.Independent { count = 5 })
                      nl)
              in
              (backend, r, protect_s))
            Backend.all
        in
        (* selection is backend-independent: same netlist, same seed,
           same replaced gates whatever the cell technology *)
        let selections =
          List.map (fun (_, r, _) -> Hybrid.lut_ids r.Flow.hybrid) per_backend
        in
        (match selections with
        | first :: rest when List.for_all (( = ) first) rest -> ()
        | _ ->
            Printf.printf "backend selections DIFFER on %s\n" name;
            exit 1);
        List.map
          (fun (backend, (r : Flow.result), protect_s) ->
            let hybrid = r.Flow.hybrid in
            let foundry = Hybrid.foundry_view hybrid in
            let arities =
              List.map
                (fun id ->
                  match Netlist.kind foundry id with
                  | Netlist.Lut { arity; _ } -> arity
                  | _ -> assert false)
                (Hybrid.lut_ids hybrid)
            in
            let keyspace = Backend.search_space backend ~arities in
            let candidates =
              Backend.sat_candidates backend foundry (Hybrid.lut_ids hybrid)
            in
            let outcome, attack_s =
              time (fun () -> Sat_attack.run ~timeout_s:60. ~candidates hybrid)
            in
            let verdict, iterations, queries =
              match outcome with
              | Sat_attack.Broken b -> ("broken", b.iterations, b.queries)
              | Sat_attack.Exhausted e ->
                  ("exhausted:" ^ e.reason, e.iterations, 0)
            in
            let o = r.Flow.overhead in
            Printf.printf
              "  %-6s %-4s protect %6.2fs  perf %+6.2f%%  power %+6.2f%%  \
               area %+6.2f%%  keys 10^%.1f  sat %-8s %6.2fs (%d it)\n%!"
              name (Backend.name backend) protect_s
              o.Sttc_core.Ppa.performance_pct o.Sttc_core.Ppa.power_pct
              o.Sttc_core.Ppa.area_pct
              (Sttc_util.Lognum.log10 keyspace)
              verdict attack_s iterations;
            J.Obj
              [
                ("circuit", J.String name);
                ("backend", J.String (Backend.name backend));
                ("luts", J.Int (Hybrid.lut_count hybrid));
                ("protect_s", J.Float protect_s);
                ("performance_pct", J.Float o.Sttc_core.Ppa.performance_pct);
                ("power_pct", J.Float o.Sttc_core.Ppa.power_pct);
                ("area_pct", J.Float o.Sttc_core.Ppa.area_pct);
                ("keyspace_log10", J.Float (Sttc_util.Lognum.log10 keyspace));
                ("sat_verdict", J.String verdict);
                ("sat_s", J.Float attack_s);
                ("sat_iterations", J.Int iterations);
                ("sat_queries", J.Int queries);
              ])
          per_backend)
      circuits
  in
  Sttc_obs.Export.write_file "BENCH_backend.json"
    (J.Obj
       [
         ("experiment", J.String "protection-backends");
         ("algorithm", J.String "independent");
         ("seed", J.Int 1);
         ("sat_timeout_s", J.Float 60.);
         ("rows", J.List rows);
       ]);
  Printf.printf "  wrote BENCH_backend.json\n"

(* ---------- driver ---------- *)

let sections =
  [
    "fig1"; "table1"; "table2"; "fig3"; "attacks"; "sidechannel"; "baseline";
    "ablation"; "faults"; "parallel"; "sat"; "lint"; "campaign"; "serve";
    "micro"; "scale"; "backend";
  ]

(* argument mistakes exit with the same sysexits EX_USAGE code 64 the
   sttc CLI uses for its typed usage errors *)
let usage_fail msg =
  prerr_endline ("bench: " ^ msg);
  prerr_endline
    (Printf.sprintf
       "usage: main.exe [-j N] [--trace FILE] [--metrics FILE] [quick] \
        [%s]..."
       (String.concat "|" sections));
  exit 64

let int_arg flag n =
  match int_of_string_opt n with
  | Some v -> v
  | None -> usage_fail (Printf.sprintf "%s needs an integer, got '%s'" flag n)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let jobs = ref 1 in
  let trace = ref None in
  let metrics = ref None in
  let rec strip = function
    | [] -> []
    | [ "-j" ] -> usage_fail "-j needs a worker count"
    | "-j" :: n :: rest ->
        jobs := int_arg "-j" n;
        strip rest
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" ->
        jobs := int_arg "-j" (String.sub a 2 (String.length a - 2));
        strip rest
    | [ "--trace" ] -> usage_fail "--trace needs a file path"
    | "--trace" :: path :: rest ->
        trace := Some path;
        strip rest
    | [ "--metrics" ] -> usage_fail "--metrics needs a file path"
    | "--metrics" :: path :: rest ->
        metrics := Some path;
        strip rest
    | a :: rest -> a :: strip rest
  in
  let args = strip args in
  let jobs =
    if !jobs <= 0 then Sttc_util.Pool.default_jobs () else !jobs
  in
  let quick = List.mem "quick" args in
  let args = List.filter (fun a -> a <> "quick") args in
  (match
     List.find_opt (fun a -> not (List.mem a sections)) args
   with
  | Some unknown -> usage_fail ("unknown experiment '" ^ unknown ^ "'")
  | None -> ());
  let all = args = [] in
  let want name = all || List.mem name args in
  Sttc_obs.Obs.with_run ?trace:!trace ?metrics:!metrics @@ fun () ->
  if want "fig1" then fig1 ();
  if want "table1" then table1 ~quick ~jobs ();
  if want "table2" then table2 ~quick ~jobs ();
  if want "fig3" then fig3 ~quick ~jobs ();
  if want "attacks" then attacks ~jobs ();
  if want "sidechannel" then sidechannel ();
  if want "baseline" then baselines ();
  if want "ablation" then ablations ();
  if want "faults" then faults ~jobs ();
  if want "parallel" then parallel ~jobs ();
  if want "sat" then sat_bench ();
  if want "lint" then lint_bench ();
  if want "campaign" then campaign_bench ();
  if want "serve" then serve_bench ~jobs ();
  if want "micro" then micro ();
  if want "scale" then scale_bench ();
  if want "backend" then backend_bench ();
  Printf.printf "\nbench: done\n"
