(* sttc — command-line front end to the hybrid STT-CMOS design flow.

   Subcommands:
     gen       generate a benchmark netlist (.bench)
     stats     print netlist statistics, timing, power and area
     protect   run the security-driven flow on a netlist
     attack    protect a netlist and run the attack campaign against it
     fig1 / table1 / table2 / fig3   regenerate the paper's experiments *)

open Cmdliner

let read_netlist path =
  try Ok (Sttc_netlist.Bench_io.parse_file path) with
  | Sttc_netlist.Bench_io.Parse_error (line, msg) ->
      Error (Printf.sprintf "%s:%d: %s" path line msg)
  | Sys_error msg -> Error msg

let netlist_arg =
  let doc = "Input gate-level netlist in ISCAS'89 .bench format." in
  Arg.(required & opt (some file) None & info [ "i"; "input" ] ~doc)

let seed_arg =
  let doc = "Random seed (experiments are deterministic per seed)." in
  Arg.(value & opt int Sttc_experiments.Runner.master_seed & info [ "seed" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel fan-out: 1 runs serially, 0 picks \
     one per core.  Output is identical at any value."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc)

let resolve_jobs j = if j <= 0 then Sttc_util.Pool.default_jobs () else j

(* ---------- the --backend flag ----------

   One doc string and one parser shared by every subcommand that takes
   the flag, so `--help` text and the usage-error message can never
   drift apart.  An unknown name is a cmdliner parse error and exits
   with the usage code 64 through [Cmd.eval' ~term_err] like every
   other argument mistake. *)

let backend_doc =
  Printf.sprintf
    "Protection backend: %s.  $(b,stt) is the paper's STT-MRAM LUT \
     technology (free 2^2^n function space per cell); $(b,tvd) models \
     threshold-voltage-defined camouflaged cells, whose candidate \
     functions are known and few."
    (String.concat " or "
       (List.map
          (fun n -> Printf.sprintf "$(b,%s)" n)
          (Sttc_backend.Backend.names ())))

let backend_conv =
  let parse s =
    match Sttc_backend.Backend.find s with
    | Some b -> Ok b
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown backend %s (expected one of %s)" s
               (String.concat ", " (Sttc_backend.Backend.names ()))))
  in
  let print fmt b =
    Format.pp_print_string fmt (Sttc_backend.Backend.name b)
  in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(
    value
    & opt backend_conv Sttc_backend.Backend.stt
    & info [ "backend" ] ~docv:"NAME" ~doc:backend_doc)

(* ---------- observability flags ---------- *)

let trace_arg =
  let doc =
    "Record tracing spans during the run and write them to $(docv) as \
     Chrome trace_event JSON (open in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Record metrics (counters, gauges, histograms) during the run and \
     write the merged snapshot to $(docv) as JSON."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* the CLI always wants the hard-failure semantics of the flow *)
let protect_strict ~seed ?fraction ?hardening ?backend alg nl =
  (Sttc_core.Flow.run ~seed ?fraction ?hardening ?backend
     ~policy:Sttc_core.Flow.Strict alg nl)
    .Sttc_core.Flow.accepted

(* protect/attack/lint are two-transport commands: they build the same
   [Sttc_serve.Request.t] the daemon parses off its socket and dispatch
   it through the same [Sttc_serve.Handler.handle] — the offline
   transport of the one API.  The CLI session is the degenerate
   single-process registry. *)
let offline_session = lazy (Sttc_serve.Session.create ~capacity:8 ())

let read_source path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text ->
      Ok
        (Sttc_serve.Request.Inline
           {
             name = Filename.remove_extension (Filename.basename path);
             text;
           })

let offline_handle payload =
  Sttc_serve.Handler.handle
    (Lazy.force offline_session)
    { Sttc_serve.Request.id = None; timeout_s = None; payload }

let exit_of_result = function
  | Ok () -> 0
  | Error msg ->
      prerr_endline ("sttc: " ^ msg);
      1

(* One typed usage-error path for every subcommand: argument mistakes
   (unknown names, missing required flags, inconsistent combinations)
   exit with the sysexits EX_USAGE code 64 and point at --help —
   distinct from runtime failures (exit 1) and lint findings.
   Cmdliner's own parse errors are routed to the same code through
   [Cmd.eval' ~term_err:64] at the bottom of this file. *)
let usage_exit = 64

let usage_error ~cmd msg =
  prerr_endline ("sttc: " ^ msg);
  prerr_endline (Printf.sprintf "Try 'sttc %s --help' for more information." cmd);
  usage_exit

(* ---------- gen ---------- *)

let gen_cmd =
  let bench =
    let doc =
      "Named ISCAS'89 structural twin (s641, s820, ..., s38584), or \
       'custom'."
    in
    Arg.(value & opt string "s641" & info [ "b"; "bench" ] ~doc)
  in
  let profile =
    let doc =
      "Scale-family profile (slike|wide|deep|fanout): derive the spec from \
       --gates alone, overriding --pis/--pos/--ffs/--levels.  Requires \
       --bench custom."
    in
    Arg.(value & opt (some string) None & info [ "profile" ] ~doc)
  in
  let gates = Arg.(value & opt int 200 & info [ "gates" ] ~doc:"Custom: gate count.") in
  let pis = Arg.(value & opt int 16 & info [ "pis" ] ~doc:"Custom: primary inputs.") in
  let pos = Arg.(value & opt int 16 & info [ "pos" ] ~doc:"Custom: primary outputs.") in
  let ffs = Arg.(value & opt int 8 & info [ "ffs" ] ~doc:"Custom: flip-flops.") in
  let levels = Arg.(value & opt int 10 & info [ "levels" ] ~doc:"Custom: logic depth.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output .bench path (stdout if omitted).")
  in
  let run bench profile gates pis pos ffs levels seed output =
    exit_of_result
      (try
         let nl =
           if bench = "custom" then
             match profile with
             | Some p -> (
                 match Sttc_netlist.Generator.profile_of_string p with
                 | Ok profile ->
                     Sttc_netlist.Generator.generate_family ~seed ~profile
                       ~gates ()
                 | Error m -> invalid_arg m)
             | None ->
                 Sttc_netlist.Generator.generate ~seed
                   {
                     Sttc_netlist.Generator.design_name = "custom";
                     n_pi = pis;
                     n_po = pos;
                     n_ff = ffs;
                     n_gates = gates;
                     levels;
                   }
           else if profile <> None then
             invalid_arg "--profile requires --bench custom"
           else
             try Sttc_netlist.Iscas_profiles.build_by_name ~seed bench
             with Invalid_argument _ -> (
               (* small real benchmarks (s27, c17) live in Iscas_data,
                  not the profile generator *)
               match List.assoc_opt bench Sttc_netlist.Iscas_data.all with
               | Some build -> build ()
               | None -> invalid_arg ("unknown benchmark " ^ bench))
         in
         let text = Sttc_netlist.Bench_io.to_string nl in
         (match output with
         | None -> print_string text
         | Some path ->
             let oc = open_out path in
             output_string oc text;
             close_out oc;
             Printf.printf "wrote %s (%s)\n" path (Sttc_netlist.Netlist.stats nl));
         Ok ()
       with Invalid_argument m -> Error m)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark netlist.")
    Term.(
      const run $ bench $ profile $ gates $ pis $ pos $ ffs $ levels $ seed_arg
      $ output)

(* ---------- stats ---------- *)

let stats_cmd =
  let run input =
    exit_of_result
      (match read_netlist input with
      | Error m -> Error m
      | Ok nl ->
          let lib = Sttc_tech.Library.cmos90 in
          print_endline (Sttc_netlist.Netlist.stats nl);
          print_string
            (Sttc_netlist.Profile_stats.render
               (Sttc_netlist.Profile_stats.compute nl));
          let sta = Sttc_analysis.Sta.analyze lib nl in
          Printf.printf "critical delay: %.1f ps (max %.3f GHz)\n"
            (Sttc_analysis.Sta.critical_delay_ps sta)
            (Sttc_analysis.Sta.max_frequency_ghz sta);
          Printf.printf "logic depth: %d levels\n" (Sttc_netlist.Query.depth nl);
          let power = Sttc_analysis.Power.estimate lib nl in
          Format.printf "%a@." Sttc_analysis.Power.pp_report power;
          let area = Sttc_analysis.Area.estimate lib nl in
          Format.printf "%a@." Sttc_analysis.Area.pp_report area;
          Ok ())
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Netlist statistics, timing, power, area.")
    Term.(const run $ netlist_arg)

(* ---------- protect ---------- *)

let algorithm_arg =
  let doc = "Selection algorithm: independent, dependent or parametric." in
  let parse = function
    | "independent" -> Ok (Sttc_core.Flow.Independent { count = 5 })
    | "dependent" -> Ok Sttc_core.Flow.Dependent
    | "parametric" ->
        Ok (Sttc_core.Flow.Parametric Sttc_core.Algorithms.default_parametric)
    | s -> Error (`Msg ("unknown algorithm " ^ s))
  in
  let print fmt alg =
    Format.pp_print_string fmt (Sttc_core.Flow.algorithm_name alg)
  in
  Arg.(
    value
    & opt (conv (parse, print)) (Sttc_core.Flow.Independent { count = 5 })
    & info [ "a"; "algorithm" ] ~doc)

let protect_cmd =
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Write the foundry-view hybrid netlist (.bench).")
  in
  let bitstream =
    Arg.(value & opt (some string) None
         & info [ "bitstream" ] ~doc:"Write the secret configuration bitstream.")
  in
  let verilog =
    Arg.(value & opt (some string) None
         & info [ "verilog" ] ~doc:"Write structural Verilog of the programmed hybrid.")
  in
  let sign_off =
    Arg.(value & flag
         & info [ "sign-off" ] ~doc:"Formally verify programmed hybrid == original (SAT).")
  in
  let harden =
    Arg.(value & flag
         & info [ "harden" ]
             ~doc:"Apply the Section IV-A.3 hardening: two dummy inputs per \
                   LUT and complex-function driver absorption.")
  in
  let run input alg seed backend output bitstream verilog sign_off harden
      trace metrics =
    Sttc_obs.Obs.with_run ?trace ?metrics @@ fun () ->
    exit_of_result
      (match read_source input with
      | Error m -> Error m
      | Ok source -> (
          let payload =
            Sttc_serve.Request.Protect
              {
                source;
                algorithm = alg;
                config =
                  { Sttc_campaign.Manifest.label = "cli"; fraction = None; harden };
                seed;
                backend = Sttc_backend.Backend.name backend;
                sign_off;
                emit_foundry = output <> None;
                emit_bitstream = bitstream <> None;
                emit_verilog = verilog <> None;
                timing = true;
              }
          in
          match offline_handle payload with
          | Sttc_serve.Response.Error { message; _ } -> Error message
          | Sttc_serve.Response.Overloaded _ -> Error "overloaded"
          | Sttc_serve.Response.Ok { payload = Sttc_serve.Response.Protect p; _ }
            ->
              print_string p.Sttc_serve.Response.report;
              let write_text path text =
                Out_channel.with_open_bin path (fun oc ->
                    Out_channel.output_string oc text)
              in
              (match (output, p.Sttc_serve.Response.foundry_bench) with
              | Some path, Some text ->
                  write_text path text;
                  Printf.printf "wrote foundry view to %s\n" path
              | _ -> ());
              (match (bitstream, p.Sttc_serve.Response.bitstream) with
              | Some path, Some text ->
                  write_text path text;
                  Option.iter print_string p.Sttc_serve.Response.programming_cost;
                  Printf.printf "wrote bitstream to %s\n" path
              | _ -> ());
              (match (verilog, p.Sttc_serve.Response.verilog) with
              | Some path, Some text ->
                  write_text path text;
                  Printf.printf "wrote Verilog to %s\n" path
              | _ -> ());
              (match p.Sttc_serve.Response.sign_off with
              | Some true ->
                  print_endline
                    "sign-off: programmed hybrid is equivalent to the original";
                  Ok ()
              | Some false -> Error "sign-off FAILED: hybrid differs from original"
              | None -> Ok ())
          | Sttc_serve.Response.Ok _ -> Error "unexpected response payload"))
  in
  Cmd.v
    (Cmd.info "protect" ~doc:"Run the security-driven hybrid STT-CMOS flow.")
    Term.(
      const run $ netlist_arg $ algorithm_arg $ seed_arg $ backend_arg
      $ output $ bitstream $ verilog $ sign_off $ harden $ trace_arg
      $ metrics_arg)

(* ---------- optimize ---------- *)

let optimize_cmd =
  let output =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Output .bench path.")
  in
  let run input output =
    exit_of_result
      (match read_netlist input with
      | Error m -> Error m
      | Ok nl ->
          let opt = Sttc_netlist.Opt.optimize nl in
          (match Sttc_sim.Equiv.check_sat nl opt with
          | Sttc_sim.Equiv.Equivalent ->
              Sttc_netlist.Bench_io.write_file output opt;
              Printf.printf
                "optimized: %d -> %d combinational nodes (%.1f%% smaller), \
                 equivalence SAT-proved, wrote %s\n"
                (Sttc_netlist.Netlist.gate_count nl)
                (Sttc_netlist.Netlist.gate_count opt)
                (Sttc_netlist.Opt.size_reduction ~before:nl ~after:opt)
                output;
              Ok ()
          | Sttc_sim.Equiv.Different f ->
              Error ("optimizer changed the function at " ^ f.Sttc_sim.Equiv.signal)
          | Sttc_sim.Equiv.Inconclusive m -> Error m))
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Constant-fold, collapse buffers and sweep dead logic (verified).")
    Term.(const run $ netlist_arg $ output)

(* ---------- program ---------- *)

let program_cmd =
  let bitstream =
    Arg.(required & opt (some file) None
         & info [ "bitstream" ] ~doc:"Bitstream file from 'protect --bitstream'.")
  in
  let output =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Programmed netlist output (.bench).")
  in
  let run input bitstream output =
    exit_of_result
      (match read_netlist input with
      | Error m -> Error m
      | Ok foundry -> (
          try
            let ic = open_in bitstream in
            let text = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let entries = Sttc_core.Provision.parse text in
            let programmed = Sttc_core.Provision.apply foundry entries in
            Sttc_netlist.Bench_io.write_file output programmed;
            Printf.printf "programmed %d LUTs, wrote %s\n"
              (List.length entries) output;
            Ok ()
          with
          | Failure m | Invalid_argument m -> Error m
          | Sys_error m -> Error m))
  in
  Cmd.v
    (Cmd.info "program"
       ~doc:"Install a configuration bitstream into a foundry-view netlist.")
    Term.(const run $ netlist_arg $ bitstream $ output)

(* ---------- lint ---------- *)

let lint_cmd =
  let algorithms =
    let doc =
      "Also protect the netlist and run the security rule pack on the \
       hybrid: $(b,none) (structural rules only), $(b,independent), \
       $(b,dependent), $(b,parametric), or $(b,all)."
    in
    let parse = function
      | "none" -> Ok []
      | "independent" -> Ok [ Sttc_core.Flow.Independent { count = 5 } ]
      | "dependent" -> Ok [ Sttc_core.Flow.Dependent ]
      | "parametric" ->
          Ok [ Sttc_core.Flow.Parametric Sttc_core.Algorithms.default_parametric ]
      | "all" -> Ok Sttc_core.Flow.default_algorithms
      | s -> Error (`Msg ("unknown algorithm " ^ s))
    in
    let print fmt algs =
      Format.pp_print_string fmt
        (match algs with
        | [] -> "none"
        | [ a ] -> Sttc_core.Flow.algorithm_name a
        | _ -> "all")
    in
    Arg.(value & opt (conv (parse, print)) [] & info [ "a"; "algorithm" ] ~doc)
  in
  let semantic =
    let doc =
      "Also run the semantic (SEM) rule pack: dataflow- and SAT-proved \
       findings, including the Eq. 1 independent-testability prover.  On \
       the plain netlist when no algorithm is selected; on each hybrid's \
       foundry view (with the true bitstream driving the SEM008 closure) \
       otherwise."
    in
    Arg.(value & flag & info [ "semantic" ] ~doc)
  in
  let count =
    let doc = "LUT count for independent selection (paper: 5)." in
    Arg.(value & opt int 5 & info [ "count" ] ~doc)
  in
  let fraction =
    let doc = "Fraction of gates considered for selection (default 0.02)." in
    Arg.(value & opt (some float) None & info [ "fraction" ] ~doc)
  in
  let clock_factor =
    let doc =
      "Timing budget for parametric selection as a multiple of the \
       baseline critical delay (paper: 1.08)."
    in
    Arg.(value & opt float 1.08 & info [ "clock-factor" ] ~doc)
  in
  let budget =
    let doc =
      "Conflict budget per semantic SAT query; exhausted queries degrade \
       to the SEM006 warning instead of hanging or erring."
    in
    Arg.(
      value
      & opt int Sttc_lint.Semantic_rules.default_budget
      & info [ "budget" ] ~doc)
  in
  let rules =
    let doc = "Comma-separated rule IDs or aliases to run (default: all)." in
    Arg.(value & opt (list string) [] & info [ "rules" ] ~doc)
  in
  let suppress =
    let doc = "Comma-separated rule IDs or aliases to silence." in
    Arg.(value & opt (list string) [] & info [ "suppress" ] ~doc)
  in
  let format =
    let doc = "Output format: $(b,text) or $(b,json)." in
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~doc)
  in
  let baseline =
    let doc =
      "Baseline file of accepted diagnostics; only new findings are \
       reported and gated on."
    in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~doc)
  in
  let update_baseline =
    let doc = "Write the current diagnostics to the $(b,--baseline) file \
               and exit 0." in
    Arg.(value & flag & info [ "update-baseline" ] ~doc)
  in
  let list_rules =
    Arg.(value & flag
         & info [ "list-rules" ] ~doc:"Print the rule catalog and exit.")
  in
  let input =
    let doc = "Input gate-level netlist in ISCAS'89 .bench format." in
    Arg.(value & opt (some file) None & info [ "i"; "input" ] ~doc)
  in
  let run input algorithms seed semantic count fraction clock_factor budget
      rules suppress format baseline update_baseline list_rules =
    let algorithms =
      List.map
        (function
          | Sttc_core.Flow.Independent _ -> Sttc_core.Flow.Independent { count }
          | Sttc_core.Flow.Parametric options ->
              Sttc_core.Flow.Parametric
                { options with Sttc_core.Algorithms.clock_factor }
          | alg -> alg)
        algorithms
    in
    if list_rules then begin
      print_string (Sttc_lint.Lint.catalog_text ());
      0
    end
    else
      (* a typo'd rule name must not silently disable the gate *)
      match
        List.find_opt
          (fun r -> Sttc_lint.Lint.find_rule r = None)
          (rules @ suppress)
      with
      | Some unknown ->
          usage_error ~cmd:"lint"
            ("unknown rule " ^ unknown ^ " (see --list-rules)")
      | None -> (
          match (update_baseline, baseline, input) with
          | true, None, _ ->
              usage_error ~cmd:"lint" "--update-baseline needs --baseline"
          | _, _, None ->
              usage_error ~cmd:"lint" "lint needs --input (or --list-rules)"
          | _, _, Some input -> (
              match read_netlist input with
              | Error m ->
                  prerr_endline ("sttc: " ^ m);
                  1
              | Ok nl -> (
                  (* the same diagnostics pipeline the serve daemon runs;
                     the CLI only adds the baseline file handling around
                     it *)
                  match
                    Sttc_serve.Handler.lint_diagnostics ~algorithms ~semantic
                      ~seed ?fraction ~budget ~rules ~suppress nl
                  with
                  | Error m ->
                      prerr_endline ("sttc: " ^ m);
                      1
                  | Ok ds -> (
                      let base =
                        match baseline with
                        | Some path when Sys.file_exists path ->
                            let ic = open_in path in
                            let text =
                              really_input_string ic (in_channel_length ic)
                            in
                            close_in ic;
                            Sttc_lint.Diagnostic.baseline_of_string text
                        | _ -> Sttc_lint.Diagnostic.empty_baseline
                      in
                      match (update_baseline, baseline) with
                      | true, Some path ->
                          let oc = open_out path in
                          output_string oc
                            (Sttc_lint.Diagnostic.baseline_to_string
                               (Sttc_lint.Diagnostic.baseline_of_diagnostics ds));
                          close_out oc;
                          Printf.printf "wrote baseline (%d entries) to %s\n"
                            (List.length ds) path;
                          0
                      | _ ->
                          let ds =
                            Sttc_lint.Diagnostic.apply_baseline base ds
                          in
                          let design = Sttc_netlist.Netlist.design_name nl in
                          (match format with
                          | `Text ->
                              print_string
                                (Sttc_lint.Diagnostic.render_text ~design ds)
                          | `Json ->
                              print_string
                                (Sttc_lint.Diagnostic.render_json ~design ds));
                          Sttc_lint.Lint.exit_code ds))))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a netlist (and optionally its hybrid designs) \
          against the structural, security and semantic rule packs; exits \
          nonzero on error-severity findings.")
    Term.(
      const run $ input $ algorithms $ seed_arg $ semantic $ count $ fraction
      $ clock_factor $ budget $ rules $ suppress $ format $ baseline
      $ update_baseline $ list_rules)

(* ---------- attack ---------- *)

let attack_cmd =
  let timeout =
    Arg.(value & opt float 15. & info [ "timeout" ] ~doc:"SAT attack timeout (s).")
  in
  let solver =
    let mode =
      Arg.enum
        [
          ("incremental", Sttc_attack.Sat_attack.Incremental);
          ("scratch", Sttc_attack.Sat_attack.Scratch);
        ]
    in
    Arg.(
      value
      & opt mode Sttc_attack.Sat_attack.Incremental
      & info [ "solver" ]
          ~doc:
            "SAT engine discipline for the SAT attacks: $(b,incremental) \
             keeps one persistent solver across all attack iterations; \
             $(b,scratch) rebuilds the solver from the full formula on \
             every call (the pre-incremental baseline).  Both recover the \
             same key.")
  in
  let key_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "key-out" ] ~docv:"FILE"
          ~doc:
            "Run only the combinational SAT attack and write the recovered \
             key to $(docv), one 'node-id truth-table' line per LUT.  CI \
             diffs this file across --solver modes byte-for-byte.")
  in
  let run input alg seed backend timeout jobs solver key_out trace metrics =
    Sttc_obs.Obs.with_run ?trace ?metrics @@ fun () ->
    exit_of_result
      (match key_out with
      | Some path -> (
          (* key extraction stays a direct call: it needs the raw
             bitstream, not the campaign summary the API returns *)
          match read_netlist input with
          | Error m -> Error m
          | Ok nl -> (
              let r = protect_strict ~seed ~backend alg nl in
              let hybrid = r.Sttc_core.Flow.hybrid in
              let candidates =
                Sttc_backend.Backend.sat_candidates backend
                  (Sttc_core.Hybrid.foundry_view hybrid)
                  (Sttc_core.Hybrid.lut_ids hybrid)
              in
              match
                Sttc_attack.Sat_attack.run ~timeout_s:timeout ~candidates
                  ~mode:solver hybrid
              with
              | Sttc_attack.Sat_attack.Broken b ->
                  let oc = open_out path in
                  List.iter
                    (fun (id, t) ->
                      Printf.fprintf oc "%d %s\n" id
                        (Sttc_logic.Truth.to_string t))
                    b.bitstream;
                  close_out oc;
                  Printf.printf
                    "sat attack: broken in %d iterations (%.2fs, %d \
                     queries); key written to %s\n"
                    b.iterations b.seconds b.queries path;
                  Ok ()
              | Sttc_attack.Sat_attack.Exhausted e ->
                  Error
                    (Printf.sprintf
                       "sat attack exhausted (%s) after %d iterations"
                       e.reason e.iterations)))
      | None -> (
          match read_source input with
          | Error m -> Error m
          | Ok source -> (
              let config =
                Sttc_attack.Harness.Config.(
                  default |> with_sat_timeout_s timeout
                  |> with_jobs (resolve_jobs jobs)
                  |> with_solver_mode solver)
              in
              match
                offline_handle
                  (Sttc_serve.Request.Attack
                     {
                       source;
                       algorithm = alg;
                       seed;
                       backend = Sttc_backend.Backend.name backend;
                       config;
                       timing = true;
                     })
              with
              | Sttc_serve.Response.Ok
                  { payload = Sttc_serve.Response.Attack { rendered; _ }; _ }
                ->
                  print_string rendered;
                  Ok ()
              | Sttc_serve.Response.Error { message; _ } -> Error message
              | Sttc_serve.Response.Overloaded _ -> Error "server overloaded"
              | Sttc_serve.Response.Ok _ ->
                  Error "unexpected response payload")))
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Protect a netlist, then run the reverse-engineering attack campaign against it.")
    Term.(
      const run $ netlist_arg $ algorithm_arg $ seed_arg $ backend_arg
      $ timeout $ jobs_arg $ solver $ key_out $ trace_arg $ metrics_arg)

(* ---------- experiments ---------- *)

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Only the sub-1000-gate benchmarks.")

let checkpoint_arg =
  let doc =
    "Checkpoint file: completed benchmarks are snapshotted there \
     atomically, and a rerun against the same file (and seed) skips \
     them."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~doc)

let timeout_arg =
  let doc =
    "Wall-clock budget in seconds per benchmark stage; expired stages \
     are reported as partial rows instead of hanging the table."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~doc)

let isolate_arg =
  let doc =
    "Crash isolation: a benchmark that raises becomes a partial row \
     with a footnote instead of aborting the whole run."
  in
  Arg.(value & flag & info [ "isolate" ] ~doc)

let experiment_cmd name doc render =
  let run quick seed backend checkpoint timeout isolate jobs trace metrics =
    Sttc_obs.Obs.with_run ?trace ?metrics @@ fun () ->
    let module R = Sttc_experiments.Runner in
    let cfg =
      {
        R.Config.quick;
        seed;
        only = None;
        timeout_s = timeout;
        isolate;
        checkpoint;
        jobs = resolve_jobs jobs;
        backend = Sttc_backend.Backend.name backend;
        on_event =
          (function
          | R.Started _ -> ()
          | ev -> Printf.eprintf "  %s\n%!" (R.string_of_event ev));
      }
    in
    print_string (render (R.rows cfg));
    0
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ quick_arg $ seed_arg $ backend_arg $ checkpoint_arg
      $ timeout_arg $ isolate_arg $ jobs_arg $ trace_arg $ metrics_arg)

let fig1_cmd =
  Cmd.v
    (Cmd.info "fig1" ~doc:"STT-LUT vs CMOS comparison (paper Fig. 1).")
    Term.(
      const (fun () ->
          print_string (Sttc_experiments.Runner.fig1 ());
          0)
      $ const ())

let table1_cmd =
  experiment_cmd "table1" "PPA overhead table (paper Table I)."
    Sttc_experiments.Runner.table1

let table2_cmd =
  experiment_cmd "table2" "Selection CPU time (paper Table II)."
    Sttc_experiments.Runner.table2

let fig3_cmd =
  experiment_cmd "fig3" "Required test clocks (paper Fig. 3)."
    Sttc_experiments.Runner.fig3

let string_cmd name doc render =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun seed ->
          print_string (render ~seed ());
          0)
      $ seed_arg)

let sidechannel_cmd =
  string_cmd "sidechannel" "DPA leakage: CMOS vs hybrid (beyond the paper)."
    (fun ~seed () -> Sttc_experiments.Runner.sidechannel ~seed ())

let baseline_cmd =
  string_cmd "baseline"
    "Camouflaging [12] and SRAM-LUT [8] baselines vs STT LUTs."
    (fun ~seed () -> Sttc_experiments.Runner.baselines ~seed ())

(* ---------- faults ---------- *)

let faults_cmd =
  let bench =
    Arg.(value & opt string "s641"
         & info [ "b"; "bench" ] ~doc:"ISCAS twin to protect and provision.")
  in
  let rates =
    Arg.(value & opt (list float) [ 1e-4; 1e-3; 1e-2; 5e-2 ]
         & info [ "rates" ]
             ~doc:"Comma-separated per-bit MTJ write-error rates to sweep.")
  in
  let stuck =
    Arg.(value & opt float 0.
         & info [ "stuck" ] ~doc:"As-fabricated stuck-cell rate.")
  in
  let dies =
    Arg.(value & opt int 12
         & info [ "dies" ] ~doc:"Independent dies per rate in the yield table.")
  in
  let retries =
    Arg.(value & opt int
           Sttc_core.Provision.default_resilience.Sttc_core.Provision.retry_budget
         & info [ "retries" ]
             ~doc:"Retry budget per cell for the resilient provisioner.")
  in
  let resume_check =
    Arg.(value & flag
         & info [ "resume-check" ]
             ~doc:"Run the checkpoint/resume self-test instead of the sweep.")
  in
  let run bench rates stuck dies retries seed resume_check jobs trace metrics =
    Sttc_obs.Obs.with_run ?trace ?metrics @@ fun () ->
    exit_of_result
      (if resume_check then
         match Sttc_experiments.Runner.resume_selftest ~seed () with
         | Ok msg ->
             print_endline msg;
             Ok ()
         | Error m -> Error ("resume self-test failed: " ^ m)
       else
         try
           let resilience =
             {
               Sttc_core.Provision.default_resilience with
               Sttc_core.Provision.retry_budget = retries;
             }
           in
           print_string
             (Sttc_experiments.Runner.fault_sweep ~seed ~bench ~rates
                ~stuck_rate:stuck ~dies ~resilience
                ~jobs:(resolve_jobs jobs) ());
           Ok ()
         with Invalid_argument m -> Error m)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Stochastic MTJ write-fault sweep: programming yield, retry/ECC \
          repair cost and post-repair equivalence of the provisioned part.")
    Term.(
      const run $ bench $ rates $ stuck $ dies $ retries $ seed_arg
      $ resume_check $ jobs_arg $ trace_arg $ metrics_arg)

let ablation_cmd =
  string_cmd "ablation"
    "Parametric-constraint, hardening and constants ablations."
    (fun ~seed () ->
      Sttc_experiments.Runner.ablation_parametric ~seed ()
      ^ "\n"
      ^ Sttc_experiments.Runner.ablation_hardening ~seed ()
      ^ "\n"
      ^ Sttc_experiments.Runner.ablation_constants ~seed ())

(* ---------- campaign / worker ---------- *)

let campaign_cmd =
  let module C = Sttc_campaign in
  let manifest =
    Arg.(value & opt (some file) None
         & info [ "manifest" ] ~docv:"FILE"
             ~doc:"Campaign manifest (JSON; see the README for the schema).")
  in
  let dir =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Directory to create for the campaign's state and report.")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"DIR"
             ~doc:
               "Continue an interrupted campaign directory: completed shards \
                are skipped, partial shards resume from their checkpoints, \
                and the final report is identical to an uninterrupted run.")
  in
  let retries =
    Arg.(value & opt (some int) None
         & info [ "retries" ]
             ~doc:"Override the manifest's per-shard retry budget.")
  in
  let in_process =
    Arg.(value & flag
         & info [ "in-process" ]
             ~doc:
               "Run shards inside this process instead of supervised worker \
                processes (no hang detection or crash isolation; mainly for \
                tests and benchmarks).")
  in
  let run manifest dir resume retries in_process jobs =
    let resolved =
      match (manifest, dir, resume) with
      | Some mf, Some d, None -> (
          match C.Manifest.load mf with
          | Error e -> Error (`Hard e)
          | Ok m ->
              C.Shard.prepare_dir d;
              C.Manifest.save (C.Shard.manifest_path d) m;
              Ok (d, m))
      | None, None, Some d -> (
          match C.Manifest.load (C.Shard.manifest_path d) with
          | Error e -> Error (`Hard e)
          | Ok m -> Ok (d, m))
      | _ ->
          Error
            (`Usage
              "use --manifest FILE --dir DIR to start a campaign, or --resume \
               DIR to continue one")
    in
    match resolved with
    | Error (`Usage e) -> usage_error ~cmd:"campaign" e
    | Error (`Hard e) ->
        prerr_endline ("sttc: " ^ e);
        1
    | Ok (d, m) ->
        Sttc_obs.Obs.enable ();
        let worker =
          if in_process then C.Supervisor.In_process
          else C.Supervisor.default_spawn
        in
        let cfg =
          C.Supervisor.config ~jobs:(resolve_jobs jobs) ?retries ~worker
            ~on_event:(fun e ->
              prerr_endline ("campaign: " ^ C.Supervisor.string_of_event e))
            ~dir:d ~manifest:m ()
        in
        let outcome = C.Supervisor.run cfg in
        let degraded =
          List.filter_map
            (function
              | s, C.Supervisor.Exhausted { last; _ } ->
                  Some (s, C.Supervisor.cause_to_string last)
              | _, C.Supervisor.Complete -> None)
            outcome.C.Supervisor.statuses
        in
        let agg = C.Aggregate.collect ~degraded ~dir:d m in
        (match C.Aggregate.write ~dir:d agg with
        | Error e ->
            prerr_endline ("sttc: " ^ e);
            1
        | Ok () ->
            C.Aggregate.write_metrics ~dir:d m;
            print_string (C.Aggregate.render_text agg);
            Printf.printf "report: %s\nmetrics: %s\n"
              (C.Shard.report_json_path d)
              (C.Shard.campaign_metrics_path d);
            if C.Aggregate.complete agg then 0 else 2)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a manifest-driven sweep (circuits x configs x algorithms x \
          seeds) as supervised, checkpointed worker processes.  Every \
          failure (crash, kill, hang, corrupt checkpoint) is retried with \
          capped backoff; shards that exhaust their budget degrade into \
          footnoted partial rows.  Exit: 0 complete, 2 degraded, 1 hard \
          error.")
    Term.(
      const run $ manifest $ dir $ resume $ retries $ in_process $ jobs_arg)

let worker_cmd =
  let dir =
    Arg.(required & opt (some string) None
         & info [ "dir" ] ~docv:"DIR" ~doc:"Campaign directory.")
  in
  let shard =
    Arg.(required & opt (some int) None
         & info [ "shard" ] ~docv:"K" ~doc:"Shard index to execute.")
  in
  let attempt =
    Arg.(value & opt int 1
         & info [ "attempt" ] ~docv:"A" ~doc:"Attempt number (1-based).")
  in
  let run dir shard attempt =
    match
      Sttc_campaign.Worker.run ~allow_kill_injection:true ~dir ~shard ~attempt
        ()
    with
    | Ok (o : Sttc_campaign.Worker.outcome) ->
        Printf.printf "shard %d: %d computed, %d restored, %d failed\n" shard
          o.computed o.restored o.failed;
        0
    | Error e ->
        prerr_endline ("sttc worker: " ^ e);
        1
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "(internal) Execute one campaign shard attempt.  Spawned by 'sttc \
          campaign'; honours the STTC_CAMPAIGN_KILL fault-injection hook.")
    Term.(const run $ dir $ shard $ attempt)

(* ---------- version / obs-check ---------- *)

let version_cmd =
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print build and version information (the same metadata stamped \
          into --trace/--metrics headers).")
    Term.(
      const (fun () ->
          print_string (Sttc_obs.Build_info.to_text ());
          0)
      $ const ())

let obs_check_cmd =
  let trace =
    Arg.(value & opt (some file) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Chrome-trace JSON file to validate.")
  in
  let metrics =
    Arg.(value & opt (some file) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Metrics JSON file to validate.")
  in
  let min_series =
    Arg.(value & opt int 0
         & info [ "min-series" ]
             ~doc:"Fail unless the metrics file has at least this many series.")
  in
  let require =
    Arg.(value & opt (some string) None
         & info [ "require" ] ~docv:"NAMES"
             ~doc:
               "Comma-separated metric series names that must all be present \
                in the metrics file (e.g. campaign.shard_retries).")
  in
  let run trace metrics min_series require =
    let require =
      Option.map
        (fun s ->
          List.filter (fun n -> n <> "") (String.split_on_char ',' s))
        require
    in
    exit_of_result
      (if trace = None && metrics = None then
         Error "obs-check needs --trace and/or --metrics"
       else
         Result.bind
           (match trace with
           | None -> Ok ()
           | Some p -> (
               match Sttc_obs.Obs.validate_trace_file p with
               | Ok n ->
                   Printf.printf "trace %s: OK (%d spans)\n" p n;
                   Ok ()
               | Error e -> Error (Printf.sprintf "trace %s: %s" p e)))
           (fun () ->
             match metrics with
             | None -> Ok ()
             | Some p -> (
                 match
                   Sttc_obs.Obs.validate_metrics_file ~min_series ?require p
                 with
                 | Ok n ->
                     Printf.printf "metrics %s: OK (%d series)\n" p n;
                     Ok ()
                 | Error e -> Error (Printf.sprintf "metrics %s: %s" p e))))
  in
  Cmd.v
    (Cmd.info "obs-check"
       ~doc:
         "Validate observability output files: the trace must parse as \
          Chrome trace_event JSON with well-nested spans, the metrics file \
          must carry typed series and a provenance header.")
    Term.(const run $ trace $ metrics $ min_series $ require)

(* ---------- serve / client ---------- *)

let socket_arg =
  Arg.(
    value
    & opt string "sttc.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path for the daemon.")

let serve_cmd =
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ]
          ~doc:
            "Bound on queued requests; beyond it clients receive a typed \
             'overloaded' response instead of waiting.")
  in
  let cache =
    Arg.(
      value & opt int 32
      & info [ "cache" ]
          ~doc:"Parsed-netlist cache entries (LRU); 0 disables caching.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Default per-request wall budget, applied to requests that \
             carry no timeout_s of their own.")
  in
  let run socket jobs queue cache timeout trace metrics =
    Sttc_obs.Obs.with_run ?trace ?metrics @@ fun () ->
    (* the stats verb and the serve.* counters must be live even when no
       --metrics file was requested *)
    Sttc_obs.Obs.enable ();
    let cfg =
      Sttc_serve.Server.Config.(
        default |> with_socket socket
        |> with_jobs (resolve_jobs jobs)
        |> with_queue_capacity queue |> with_cache_capacity cache
        |> with_on_event (fun e -> prerr_endline ("serve: " ^ e)))
    in
    let cfg =
      match timeout with
      | None -> cfg
      | Some s -> Sttc_serve.Server.Config.with_default_timeout_s s cfg
    in
    if queue < 1 then usage_error ~cmd:"serve" "--queue must be at least 1"
    else if cache < 0 then
      usage_error ~cmd:"serve" "--cache must be non-negative"
    else begin
      Sttc_serve.Server.run cfg;
      0
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent protection/attack daemon: a Unix-domain \
          socket speaking newline-delimited JSON requests (protect, \
          attack, lint, stats, ping, shutdown) with typed responses.  \
          The daemon executes the same handler as the offline \
          subcommands, so responses are byte-identical across \
          transports.")
    Term.(
      const run $ socket_arg $ jobs_arg $ queue $ cache $ timeout $ trace_arg
      $ metrics_arg)

let client_cmd =
  let offline =
    Arg.(
      value & flag
      & info [ "offline" ]
          ~doc:
            "Execute requests in-process through the same handler the \
             daemon runs, without a daemon — the reference output for \
             byte-diffing the two transports.")
  in
  let request =
    Arg.(
      value
      & opt (some string) None
      & info [ "request" ] ~docv:"JSON" ~doc:"One request frame to send.")
  in
  let request_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "request-file" ] ~docv:"FILE"
          ~doc:"File of newline-delimited request frames to send in order.")
  in
  let read_lines = function
    | Some text, _ -> Ok [ text ]
    | None, Some path -> (
        match In_channel.with_open_bin path In_channel.input_all with
        | exception Sys_error m -> Error m
        | text ->
            Ok
              (List.filter
                 (fun l -> String.trim l <> "")
                 (String.split_on_char '\n' text)))
    | None, None ->
        Ok
          (In_channel.fold_lines
             (fun acc l -> if String.trim l = "" then acc else l :: acc)
             [] In_channel.stdin
          |> List.rev)
  in
  (* an ok frame keeps exit 0; error/overloaded (or a transport failure)
     turn it into 1, matching the daemon's own classification *)
  let ok_frame line =
    match Sttc_serve.Response.of_string line with
    | Ok (Sttc_serve.Response.Ok _) -> true
    | _ -> false
  in
  let run socket offline request request_file trace metrics =
    Sttc_obs.Obs.with_run ?trace ?metrics @@ fun () ->
    match read_lines (request, request_file) with
    | Error m ->
        prerr_endline ("sttc: " ^ m);
        1
    | Ok [] ->
        usage_error ~cmd:"client"
          "no requests: use --request, --request-file, or pipe frames on \
           stdin"
    | Ok lines ->
        if offline then (
          Sttc_obs.Obs.enable ();
          let all_ok =
            List.fold_left
              (fun acc line ->
                let resp =
                  match Sttc_serve.Request.of_string line with
                  | Error e ->
                      (* the exact frame the daemon would answer with *)
                      Sttc_serve.Response.Error
                        { id = None; message = "bad request: " ^ e }
                  | Ok req ->
                      Sttc_serve.Handler.handle
                        (Lazy.force offline_session)
                        req
                in
                let line = Sttc_serve.Response.to_string resp in
                print_endline line;
                acc && ok_frame line)
              true lines
          in
          if all_ok then 0 else 1)
        else
          let result =
            Sttc_serve.Client.with_connection socket (fun c ->
                let rec loop acc = function
                  | [] -> Ok acc
                  | line :: rest -> (
                      match Sttc_serve.Client.send_raw c line with
                      | Error _ as e -> e
                      | Ok () -> (
                          match Sttc_serve.Client.recv_line c with
                          | Error _ as e -> e
                          | Ok resp ->
                              print_endline resp;
                              loop (acc && ok_frame resp) rest))
                in
                loop true lines)
          in
          (match result with
          | Ok true -> 0
          | Ok false -> 1
          | Error m ->
              prerr_endline ("sttc: " ^ m);
              1)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send newline-delimited JSON request frames to a running \
          $(b,sttc serve) daemon (or execute them in-process with \
          --offline) and print each response frame.  Exits 0 only if \
          every response has status ok.")
    Term.(
      const run $ socket_arg $ offline $ request $ request_file $ trace_arg
      $ metrics_arg)

let () =
  let doc = "Hybrid STT-CMOS designs for reverse-engineering prevention." in
  let info = Cmd.info "sttc" ~version:Sttc_obs.Build_info.version ~doc in
  (* [~term_err] only covers term-evaluation errors; cmdliner reports a
     malformed command line (unknown flag, bad --backend name, …) as
     [Exit.cli_error].  Both are argument mistakes, so both exit 64. *)
  let route_cli_error code =
    if code = Cmd.Exit.cli_error then usage_exit else code
  in
  exit
    (route_cli_error
       (Cmd.eval' ~term_err:usage_exit
          (Cmd.group info
          [
            gen_cmd;
            stats_cmd;
            optimize_cmd;
            program_cmd;
            protect_cmd;
            lint_cmd;
            attack_cmd;
            fig1_cmd;
            table1_cmd;
            table2_cmd;
            fig3_cmd;
            sidechannel_cmd;
            baseline_cmd;
            ablation_cmd;
            faults_cmd;
            campaign_cmd;
            worker_cmd;
            serve_cmd;
            client_cmd;
            version_cmd;
            obs_check_cmd;
          ])))
