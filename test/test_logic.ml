(* Tests for Sttc_logic: truth tables, gate functions (incl. the paper's
   similarity/alpha metrics), ternary logic, BDDs, CNF encodings, the CDCL
   SAT solver and DIMACS IO. *)

module Truth = Sttc_logic.Truth
module Gate_fn = Sttc_logic.Gate_fn
module Ternary = Sttc_logic.Ternary
module Bdd = Sttc_logic.Bdd
module Cnf = Sttc_logic.Cnf
module Sat = Sttc_logic.Sat
module Dimacs = Sttc_logic.Dimacs
module Rng = Sttc_util.Rng

(* ---------- Truth ---------- *)

let test_truth_create_eval () =
  let and2 = Truth.create ~arity:2 (fun i -> i.(0) && i.(1)) in
  Alcotest.(check string) "and2 table" "0001" (Truth.to_string and2);
  Alcotest.(check bool) "eval 11" true (Truth.eval and2 [| true; true |]);
  Alcotest.(check bool) "eval 10" false (Truth.eval and2 [| true; false |]);
  Alcotest.(check int) "rows" 4 (Truth.rows and2)

let test_truth_string_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) ("roundtrip " ^ s) s
        (Truth.to_string (Truth.of_string s)))
    [ "01"; "0110"; "10010110"; "0001" ];
  Alcotest.check_raises "bad length"
    (Invalid_argument "Truth.of_string: length must be a power of two <= 64")
    (fun () -> ignore (Truth.of_string "011"))

let test_truth_ops () =
  let a = Truth.var ~arity:2 0 and b = Truth.var ~arity:2 1 in
  Alcotest.(check string) "var0" "0101" (Truth.to_string a);
  Alcotest.(check string) "var1" "0011" (Truth.to_string b);
  Alcotest.(check string) "and" "0001" (Truth.to_string (Truth.land_ a b));
  Alcotest.(check string) "or" "0111" (Truth.to_string (Truth.lor_ a b));
  Alcotest.(check string) "xor" "0110" (Truth.to_string (Truth.lxor_ a b));
  Alcotest.(check string) "not" "1010" (Truth.to_string (Truth.lnot a))

let test_truth_agreement () =
  (* the paper's examples: AND2/NOR2 similarity 2, AND2/NAND2 similarity 0 *)
  let tt fn = Gate_fn.truth fn in
  Alcotest.(check int) "and/nor" 2
    (Truth.agreement (tt (Gate_fn.And 2)) (tt (Gate_fn.Nor 2)));
  Alcotest.(check int) "and/nand" 0
    (Truth.agreement (tt (Gate_fn.And 2)) (tt (Gate_fn.Nand 2)));
  Alcotest.(check int) "self" 4
    (Truth.agreement (tt (Gate_fn.And 2)) (tt (Gate_fn.And 2)))

let test_truth_cofactor_support () =
  let and2 = Gate_fn.truth (Gate_fn.And 2) in
  Alcotest.(check string) "cofactor x0=1" "0011"
    (Truth.to_string (Truth.cofactor and2 0 true));
  Alcotest.(check string) "cofactor x0=0" "0000"
    (Truth.to_string (Truth.cofactor and2 0 false));
  Alcotest.(check bool) "depends 0" true (Truth.depends_on and2 0);
  Alcotest.(check int) "support" 2 (Truth.support_size and2);
  Alcotest.(check bool) "not degenerate" false (Truth.is_degenerate and2);
  (* a LUT ignoring one input is degenerate *)
  let deg = Truth.create ~arity:2 (fun i -> i.(0)) in
  Alcotest.(check bool) "degenerate" true (Truth.is_degenerate deg)

let test_truth_enumerate () =
  Alcotest.(check int) "arity 2 count" 16
    (List.length (List.of_seq (Truth.enumerate ~arity:2)));
  Alcotest.(check int) "arity 0 count" 2
    (List.length (List.of_seq (Truth.enumerate ~arity:0)))

let test_truth_of_bits_validation () =
  Alcotest.check_raises "stray bits"
    (Invalid_argument "Truth.of_bits: bits beyond 2^arity") (fun () ->
      ignore (Truth.of_bits ~arity:2 0x1FL))

let truth_props =
  let gen_table =
    QCheck2.Gen.(
      map2
        (fun arity seed -> Truth.random (Rng.make seed) ~arity)
        (int_range 1 4) int)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"double negation" ~count:300 gen_table
         (fun t -> Truth.equal t (Truth.lnot (Truth.lnot t))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"de morgan" ~count:300
         QCheck2.Gen.(pair gen_table gen_table)
         (fun (a, b) ->
           QCheck2.assume (Truth.arity a = Truth.arity b);
           Truth.equal
             (Truth.lnot (Truth.land_ a b))
             (Truth.lor_ (Truth.lnot a) (Truth.lnot b))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"agreement symmetric" ~count:300
         QCheck2.Gen.(pair gen_table gen_table)
         (fun (a, b) ->
           QCheck2.assume (Truth.arity a = Truth.arity b);
           Truth.agreement a b = Truth.agreement b a));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"agreement complement" ~count:300
         QCheck2.Gen.(pair gen_table gen_table)
         (fun (a, b) ->
           QCheck2.assume (Truth.arity a = Truth.arity b);
           Truth.agreement a b + Truth.agreement a (Truth.lnot b)
           = Truth.rows a));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"string roundtrip" ~count:300 gen_table
         (fun t -> Truth.equal t (Truth.of_string (Truth.to_string t))));
  ]

(* ---------- Gate_fn ---------- *)

let test_gate_eval () =
  Alcotest.(check bool) "nand" true
    (Gate_fn.eval (Gate_fn.Nand 3) [| true; true; false |]);
  Alcotest.(check bool) "xor odd" true
    (Gate_fn.eval (Gate_fn.Xor 3) [| true; true; true |]);
  Alcotest.(check bool) "xnor" false
    (Gate_fn.eval (Gate_fn.Xnor 2) [| true; false |]);
  Alcotest.(check bool) "not" false (Gate_fn.eval Gate_fn.Not [| true |]);
  Alcotest.(check bool) "buf" true (Gate_fn.eval Gate_fn.Buf [| true |])

let test_gate_bench_names () =
  Alcotest.(check (option string)) "AND" (Some "AND3")
    (Option.map Gate_fn.to_string (Gate_fn.of_bench_name "AND" ~arity:3));
  Alcotest.(check (option string)) "BUFF" (Some "BUF")
    (Option.map Gate_fn.to_string (Gate_fn.of_bench_name "BUFF" ~arity:1));
  Alcotest.(check (option string)) "unknown" None
    (Option.map Gate_fn.to_string (Gate_fn.of_bench_name "MAJ" ~arity:3));
  Alcotest.(check (option string)) "arity 1 AND invalid" None
    (Option.map Gate_fn.to_string (Gate_fn.of_bench_name "AND" ~arity:1))

let test_gate_similarity_metrics () =
  (* paper: AND2 vs NOR2 -> 2, AND2 vs NAND2 -> 0 *)
  Alcotest.(check int) "and/nor sim" 2
    (Gate_fn.similarity (Gate_fn.And 2) (Gate_fn.Nor 2));
  Alcotest.(check int) "and/nand sim" 0
    (Gate_fn.similarity (Gate_fn.And 2) (Gate_fn.Nand 2));
  (* the computed 2-input average sits near the paper's 1.45 *)
  let avg = Gate_fn.average_similarity 2 in
  Alcotest.(check bool) "avg similarity plausible" true (avg > 1.2 && avg < 1.8);
  let alpha = Gate_fn.computed_alpha 2 in
  Alcotest.(check bool) "alpha = avg+1" true
    (Float.abs (alpha -. (avg +. 1.)) < 1e-9)

let test_gate_paper_constants () =
  Alcotest.(check (float 1e-9)) "alpha2" 2.45 (Gate_fn.paper_alpha 2);
  Alcotest.(check (float 1e-9)) "alpha3" 4.2 (Gate_fn.paper_alpha 3);
  Alcotest.(check (float 1e-9)) "alpha4" 7.4 (Gate_fn.paper_alpha 4);
  Alcotest.(check (float 1e-9)) "p2" 2.5 (Gate_fn.paper_p 2);
  Alcotest.(check int) "6 meaningful 2-input gates" 6
    (Gate_fn.candidate_count 2)

let test_gate_validation () =
  Alcotest.check_raises "arity 1 and"
    (Invalid_argument "Gate_fn.validate: arity out of [2, 6]") (fun () ->
      Gate_fn.validate (Gate_fn.And 1));
  Alcotest.check_raises "arity 7"
    (Invalid_argument "Gate_fn.validate: arity out of [2, 6]") (fun () ->
      Gate_fn.validate (Gate_fn.Xor 7))

(* ---------- Ternary ---------- *)

let test_ternary_ops () =
  Alcotest.(check bool) "0 and X = 0" true
    (Ternary.equal (Ternary.land_ Ternary.Zero Ternary.X) Ternary.Zero);
  Alcotest.(check bool) "1 and X = X" true
    (Ternary.equal (Ternary.land_ Ternary.One Ternary.X) Ternary.X);
  Alcotest.(check bool) "1 or X = 1" true
    (Ternary.equal (Ternary.lor_ Ternary.One Ternary.X) Ternary.One);
  Alcotest.(check bool) "X xor 1 = X" true
    (Ternary.equal (Ternary.lxor_ Ternary.X Ternary.One) Ternary.X);
  Alcotest.(check bool) "not X = X" true
    (Ternary.equal (Ternary.lnot Ternary.X) Ternary.X)

let test_ternary_gate_eval () =
  (* controlling values decide outputs despite X *)
  Alcotest.(check bool) "nand with 0 input" true
    (Ternary.equal
       (Ternary.eval_gate (Gate_fn.Nand 2) [| Ternary.Zero; Ternary.X |])
       Ternary.One);
  Alcotest.(check bool) "nor with 1 input" true
    (Ternary.equal
       (Ternary.eval_gate (Gate_fn.Nor 2) [| Ternary.One; Ternary.X |])
       Ternary.Zero);
  Alcotest.(check bool) "and all 1" true
    (Ternary.equal
       (Ternary.eval_gate (Gate_fn.And 2) [| Ternary.One; Ternary.One |])
       Ternary.One)

let test_ternary_truth_eval () =
  let and2 = Gate_fn.truth (Gate_fn.And 2) in
  (* known inputs *)
  Alcotest.(check bool) "known" true
    (Ternary.equal
       (Ternary.eval_truth and2 [| Ternary.One; Ternary.One |])
       Ternary.One);
  (* 0 on an AND forces the output even with X *)
  Alcotest.(check bool) "forced" true
    (Ternary.equal
       (Ternary.eval_truth and2 [| Ternary.Zero; Ternary.X |])
       Ternary.Zero);
  (* X that matters stays X *)
  Alcotest.(check bool) "unknown" true
    (Ternary.equal
       (Ternary.eval_truth and2 [| Ternary.One; Ternary.X |])
       Ternary.X)

let ternary_props =
  let gen_v = QCheck2.Gen.oneofl [ Ternary.Zero; Ternary.One; Ternary.X ] in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"ternary gate agrees with boolean" ~count:500
         QCheck2.Gen.(pair (int_range 0 7) (int_range 0 3))
         (fun (bits, fn_idx) ->
           let fn =
             List.nth
               [ Gate_fn.And 3; Gate_fn.Nand 3; Gate_fn.Or 3; Gate_fn.Xor 3 ]
               fn_idx
           in
           let bools = Array.init 3 (fun k -> (bits lsr k) land 1 = 1) in
           let tern = Array.map Ternary.of_bool bools in
           Ternary.equal
             (Ternary.eval_gate fn tern)
             (Ternary.of_bool (Gate_fn.eval fn bools))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"ternary monotone wrt X" ~count:500
         QCheck2.Gen.(array_size (return 2) gen_v)
         (fun inputs ->
           (* replacing an input by X can only keep or lose knowledge *)
           let out = Ternary.eval_gate (Gate_fn.And 2) inputs in
           let blurred = [| inputs.(0); Ternary.X |] in
           let out' = Ternary.eval_gate (Gate_fn.And 2) blurred in
           match (out, out') with
           | _, Ternary.X -> true
           | a, b -> Ternary.equal a b));
  ]

(* ---------- Bdd ---------- *)

let test_bdd_basics () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.land_ m x y in
  Alcotest.(check bool) "eval 11" true (Bdd.eval f (fun _ -> true));
  Alcotest.(check bool) "eval 01" false
    (Bdd.eval f (fun v -> v = 1));
  Alcotest.(check bool) "tautology" true
    (Bdd.is_one m (Bdd.lor_ m x (Bdd.lnot m x)));
  Alcotest.(check bool) "contradiction" true
    (Bdd.is_zero m (Bdd.land_ m x (Bdd.lnot m x)))

let test_bdd_hash_consing () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f1 = Bdd.lor_ m (Bdd.land_ m x y) (Bdd.land_ m x y) in
  let f2 = Bdd.land_ m x y in
  Alcotest.(check bool) "structural sharing" true (Bdd.equal f1 f2)

let test_bdd_sat_count () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check (float 1e-9)) "and" 1. (Bdd.sat_count (Bdd.land_ m x y) ~nvars:2);
  Alcotest.(check (float 1e-9)) "or" 3. (Bdd.sat_count (Bdd.lor_ m x y) ~nvars:2);
  Alcotest.(check (float 1e-9)) "xor over 3 vars" 4.
    (Bdd.sat_count (Bdd.lxor_ m x y) ~nvars:3)

let test_bdd_any_sat () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.land_ m x (Bdd.lnot m y) in
  (match Bdd.any_sat f with
  | Some assignment ->
      let value v = try List.assoc v assignment with Not_found -> false in
      Alcotest.(check bool) "witness satisfies" true (Bdd.eval f value)
  | None -> Alcotest.fail "expected SAT");
  Alcotest.(check bool) "unsat" true (Bdd.any_sat (Bdd.zero m) = None)

let test_bdd_restrict_support () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.lxor_ m x y in
  Alcotest.(check (list int)) "support" [ 0; 1 ] (Bdd.support f);
  let g = Bdd.restrict m f 0 true in
  Alcotest.(check (list int)) "restricted support" [ 1 ] (Bdd.support g);
  Alcotest.(check bool) "restrict = not y" true (Bdd.equal g (Bdd.lnot m y))

let test_bdd_manager_mixing () =
  let m1 = Bdd.manager () and m2 = Bdd.manager () in
  let x1 = Bdd.var m1 0 and x2 = Bdd.var m2 0 in
  Alcotest.check_raises "mixing" (Invalid_argument "Bdd: mixing managers")
    (fun () -> ignore (Bdd.land_ m1 x1 x2))

let bdd_props =
  let gen_table =
    QCheck2.Gen.(
      map2
        (fun arity seed -> Truth.random (Rng.make seed) ~arity)
        (int_range 1 4) int)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"bdd of_truth/to_truth roundtrip" ~count:200
         gen_table
         (fun t ->
           let m = Bdd.manager () in
           let vars = Array.init (Truth.arity t) Fun.id in
           let f = Bdd.of_truth m t ~vars in
           Truth.equal t (Bdd.to_truth f ~vars)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"bdd ops match truth ops" ~count:200
         QCheck2.Gen.(pair gen_table gen_table)
         (fun (a, b) ->
           QCheck2.assume (Truth.arity a = Truth.arity b);
           let m = Bdd.manager () in
           let vars = Array.init (Truth.arity a) Fun.id in
           let fa = Bdd.of_truth m a ~vars and fb = Bdd.of_truth m b ~vars in
           Bdd.equal
             (Bdd.lxor_ m fa fb)
             (Bdd.of_truth m (Truth.lxor_ a b) ~vars)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"sat_count matches popcount" ~count:200
         gen_table
         (fun t ->
           let m = Bdd.manager () in
           let vars = Array.init (Truth.arity t) Fun.id in
           let f = Bdd.of_truth m t ~vars in
           int_of_float (Bdd.sat_count f ~nvars:(Truth.arity t))
           = Truth.count_ones t));
  ]

(* ---------- Cnf / Sat ---------- *)

let solve_value cnf =
  match Sat.solve_exn cnf with
  | Sat.Sat model -> Some model
  | Sat.Unsat -> None

let test_sat_trivial () =
  let cnf = Cnf.create () in
  let a = Cnf.fresh_var cnf in
  Cnf.add_clause cnf [ a ];
  (match solve_value cnf with
  | Some model -> Alcotest.(check bool) "a true" true (Sat.model_value model a)
  | None -> Alcotest.fail "expected sat");
  Cnf.add_clause cnf [ -a ];
  Alcotest.(check bool) "now unsat" false (Sat.is_satisfiable cnf)

let test_sat_pigeonhole () =
  (* 3 pigeons, 2 holes: classic small UNSAT instance *)
  let cnf = Cnf.create () in
  let v = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Cnf.fresh_var cnf)) in
  for p = 0 to 2 do
    Cnf.add_clause cnf [ v.(p).(0); v.(p).(1) ]
  done;
  for h = 0 to 1 do
    for p1 = 0 to 2 do
      for p2 = p1 + 1 to 2 do
        Cnf.add_clause cnf [ -v.(p1).(h); -v.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php(3,2) unsat" false (Sat.is_satisfiable cnf)

let test_sat_assumptions () =
  let cnf = Cnf.create () in
  let a = Cnf.fresh_var cnf and b = Cnf.fresh_var cnf in
  Cnf.add_clause cnf [ a; b ];
  Alcotest.(check bool) "sat under a" true
    (match Sat.solve_exn ~assumptions:[ a ] cnf with
    | Sat.Sat _ -> true
    | Sat.Unsat -> false);
  Cnf.add_clause cnf [ -a ];
  Alcotest.(check bool) "unsat under a" true
    (match Sat.solve_exn ~assumptions:[ a ] cnf with
    | Sat.Sat _ -> false
    | Sat.Unsat -> true);
  Alcotest.(check bool) "still sat without assumption" true
    (Sat.is_satisfiable cnf)

let test_sat_gate_encodings () =
  (* every gate encoding agrees with Gate_fn.eval on all input rows *)
  List.iter
    (fun fn ->
      let arity = Gate_fn.arity fn in
      for row = 0 to (1 lsl arity) - 1 do
        let cnf = Cnf.create () in
        let inputs = List.init arity (fun _ -> Cnf.fresh_var cnf) in
        let out = Cnf.fresh_var cnf in
        Cnf.encode_gate cnf out fn inputs;
        List.iteri
          (fun k v ->
            Cnf.add_clause cnf [ (if (row lsr k) land 1 = 1 then v else -v) ])
          inputs;
        let expected =
          Gate_fn.eval fn (Array.init arity (fun k -> (row lsr k) land 1 = 1))
        in
        match solve_value cnf with
        | None -> Alcotest.fail "gate encoding unsat"
        | Some model ->
            Alcotest.(check bool)
              (Printf.sprintf "%s row %d" (Gate_fn.to_string fn) row)
              expected (Sat.model_value model out)
      done)
    [
      Gate_fn.Buf; Gate_fn.Not; Gate_fn.And 2; Gate_fn.Nand 3; Gate_fn.Or 2;
      Gate_fn.Nor 4; Gate_fn.Xor 3; Gate_fn.Xnor 2;
    ]

let test_sat_symbolic_lut () =
  (* a 2-input LUT with symbolic key must be forced to XOR by its I/O *)
  let cnf = Cnf.create () in
  let i0 = Cnf.fresh_var cnf and i1 = Cnf.fresh_var cnf in
  let out = Cnf.fresh_var cnf in
  let key = Array.init 4 (fun _ -> Cnf.fresh_var cnf) in
  Cnf.encode_truth_lut cnf out ~key ~inputs:[| i0; i1 |];
  (* pin row 01 -> out must equal key.(1) *)
  Cnf.add_clause cnf [ i0 ];
  Cnf.add_clause cnf [ -i1 ];
  Cnf.add_clause cnf [ out ];
  (match solve_value cnf with
  | None -> Alcotest.fail "lut encoding unsat"
  | Some model ->
      Alcotest.(check bool) "key row 1 forced true" true
        (Sat.model_value model key.(1)))

let sat_props =
  (* random 3-CNF solved by our CDCL vs brute force *)
  let gen_cnf =
    QCheck2.Gen.(
      let* nvars = int_range 3 8 in
      let* nclauses = int_range 3 24 in
      let* seeds = list_size (return (nclauses * 3)) (int_range 0 1_000_000) in
      return (nvars, nclauses, seeds))
  in
  let build (nvars, nclauses, seeds) =
    let cnf = Cnf.create () in
    Cnf.reserve cnf nvars;
    let seeds = Array.of_list seeds in
    for c = 0 to nclauses - 1 do
      let lit k =
        let s = seeds.((3 * c) + k) in
        let v = (s mod nvars) + 1 in
        if s / nvars mod 2 = 0 then v else -v
      in
      Cnf.add_clause cnf [ lit 0; lit 1; lit 2 ]
    done;
    cnf
  in
  let brute_sat cnf =
    let n = Cnf.nvars cnf in
    let clauses = Cnf.clauses cnf in
    let rec try_assign a =
      if a >= 1 lsl n then false
      else
        let value v = (a lsr (v - 1)) land 1 = 1 in
        let ok =
          List.for_all
            (fun clause ->
              Array.exists
                (fun l -> if l > 0 then value l else not (value (-l)))
                clause)
            clauses
        in
        ok || try_assign (a + 1)
    in
    try_assign 0
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"cdcl agrees with brute force" ~count:150
         gen_cnf
         (fun params ->
           let cnf = build params in
           Sat.is_satisfiable cnf = brute_sat cnf));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"models really satisfy" ~count:150 gen_cnf
         (fun params ->
           let cnf = build params in
           match Sat.solve_exn cnf with
           | Sat.Unsat -> true
           | Sat.Sat model ->
               List.for_all
                 (fun clause ->
                   Array.exists
                     (fun l ->
                       if l > 0 then Sat.model_value model l
                       else not (Sat.model_value model (-l)))
                     clause)
                 (Cnf.clauses cnf)));
  ]

(* ---------- Dimacs ---------- *)

let test_dimacs_roundtrip () =
  let cnf = Cnf.create () in
  let a = Cnf.fresh_var cnf and b = Cnf.fresh_var cnf in
  Cnf.add_clause cnf [ a; -b ];
  Cnf.add_clause cnf [ -a ];
  let text = Dimacs.to_string cnf in
  let cnf2 = Dimacs.parse_string text in
  Alcotest.(check int) "nvars" (Cnf.nvars cnf) (Cnf.nvars cnf2);
  Alcotest.(check int) "nclauses" (Cnf.nclauses cnf) (Cnf.nclauses cnf2);
  Alcotest.(check bool) "same satisfiability" (Sat.is_satisfiable cnf)
    (Sat.is_satisfiable cnf2)

let test_dimacs_comments () =
  let cnf = Dimacs.parse_string "c a comment\np cnf 2 1\n1 -2 0\n" in
  Alcotest.(check int) "vars" 2 (Cnf.nvars cnf);
  Alcotest.(check int) "clauses" 1 (Cnf.nclauses cnf)

let test_dimacs_errors () =
  Alcotest.(check bool) "bad literal raises" true
    (try
       ignore (Dimacs.parse_string "p cnf 1 1\nfoo 0\n");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "unterminated clause raises" true
    (try
       ignore (Dimacs.parse_string "p cnf 1 1\n1\n");
       false
     with Failure _ -> true)

let () =
  Alcotest.run "sttc_logic"
    [
      ( "truth",
        [
          Alcotest.test_case "create/eval" `Quick test_truth_create_eval;
          Alcotest.test_case "string roundtrip" `Quick test_truth_string_roundtrip;
          Alcotest.test_case "boolean ops" `Quick test_truth_ops;
          Alcotest.test_case "agreement (paper examples)" `Quick test_truth_agreement;
          Alcotest.test_case "cofactor/support" `Quick test_truth_cofactor_support;
          Alcotest.test_case "enumerate" `Quick test_truth_enumerate;
          Alcotest.test_case "of_bits validation" `Quick test_truth_of_bits_validation;
        ]
        @ truth_props );
      ( "gate_fn",
        [
          Alcotest.test_case "eval" `Quick test_gate_eval;
          Alcotest.test_case "bench names" `Quick test_gate_bench_names;
          Alcotest.test_case "similarity metrics" `Quick test_gate_similarity_metrics;
          Alcotest.test_case "paper constants" `Quick test_gate_paper_constants;
          Alcotest.test_case "validation" `Quick test_gate_validation;
        ] );
      ( "ternary",
        [
          Alcotest.test_case "ops" `Quick test_ternary_ops;
          Alcotest.test_case "gate eval" `Quick test_ternary_gate_eval;
          Alcotest.test_case "truth eval" `Quick test_ternary_truth_eval;
        ]
        @ ternary_props );
      ( "bdd",
        [
          Alcotest.test_case "basics" `Quick test_bdd_basics;
          Alcotest.test_case "hash consing" `Quick test_bdd_hash_consing;
          Alcotest.test_case "sat count" `Quick test_bdd_sat_count;
          Alcotest.test_case "any_sat" `Quick test_bdd_any_sat;
          Alcotest.test_case "restrict/support" `Quick test_bdd_restrict_support;
          Alcotest.test_case "manager mixing" `Quick test_bdd_manager_mixing;
        ]
        @ bdd_props );
      ( "sat",
        [
          Alcotest.test_case "trivial" `Quick test_sat_trivial;
          Alcotest.test_case "pigeonhole unsat" `Quick test_sat_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_sat_assumptions;
          Alcotest.test_case "gate encodings" `Quick test_sat_gate_encodings;
          Alcotest.test_case "symbolic LUT" `Quick test_sat_symbolic_lut;
        ]
        @ sat_props );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "comments" `Quick test_dimacs_comments;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
        ] );
    ]
