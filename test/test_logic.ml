(* Tests for Sttc_logic: truth tables, gate functions (incl. the paper's
   similarity/alpha metrics), ternary logic, BDDs, CNF encodings, the CDCL
   SAT solver and DIMACS IO. *)

module Truth = Sttc_logic.Truth
module Gate_fn = Sttc_logic.Gate_fn
module Ternary = Sttc_logic.Ternary
module Bdd = Sttc_logic.Bdd
module Cnf = Sttc_logic.Cnf
module Sat = Sttc_logic.Sat
module Dimacs = Sttc_logic.Dimacs
module Rng = Sttc_util.Rng

(* ---------- Truth ---------- *)

let test_truth_create_eval () =
  let and2 = Truth.create ~arity:2 (fun i -> i.(0) && i.(1)) in
  Alcotest.(check string) "and2 table" "0001" (Truth.to_string and2);
  Alcotest.(check bool) "eval 11" true (Truth.eval and2 [| true; true |]);
  Alcotest.(check bool) "eval 10" false (Truth.eval and2 [| true; false |]);
  Alcotest.(check int) "rows" 4 (Truth.rows and2)

let test_truth_string_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) ("roundtrip " ^ s) s
        (Truth.to_string (Truth.of_string s)))
    [ "01"; "0110"; "10010110"; "0001" ];
  Alcotest.check_raises "bad length"
    (Invalid_argument "Truth.of_string: length must be a power of two <= 64")
    (fun () -> ignore (Truth.of_string "011"))

let test_truth_ops () =
  let a = Truth.var ~arity:2 0 and b = Truth.var ~arity:2 1 in
  Alcotest.(check string) "var0" "0101" (Truth.to_string a);
  Alcotest.(check string) "var1" "0011" (Truth.to_string b);
  Alcotest.(check string) "and" "0001" (Truth.to_string (Truth.land_ a b));
  Alcotest.(check string) "or" "0111" (Truth.to_string (Truth.lor_ a b));
  Alcotest.(check string) "xor" "0110" (Truth.to_string (Truth.lxor_ a b));
  Alcotest.(check string) "not" "1010" (Truth.to_string (Truth.lnot a))

let test_truth_agreement () =
  (* the paper's examples: AND2/NOR2 similarity 2, AND2/NAND2 similarity 0 *)
  let tt fn = Gate_fn.truth fn in
  Alcotest.(check int) "and/nor" 2
    (Truth.agreement (tt (Gate_fn.And 2)) (tt (Gate_fn.Nor 2)));
  Alcotest.(check int) "and/nand" 0
    (Truth.agreement (tt (Gate_fn.And 2)) (tt (Gate_fn.Nand 2)));
  Alcotest.(check int) "self" 4
    (Truth.agreement (tt (Gate_fn.And 2)) (tt (Gate_fn.And 2)))

let test_truth_cofactor_support () =
  let and2 = Gate_fn.truth (Gate_fn.And 2) in
  Alcotest.(check string) "cofactor x0=1" "0011"
    (Truth.to_string (Truth.cofactor and2 0 true));
  Alcotest.(check string) "cofactor x0=0" "0000"
    (Truth.to_string (Truth.cofactor and2 0 false));
  Alcotest.(check bool) "depends 0" true (Truth.depends_on and2 0);
  Alcotest.(check int) "support" 2 (Truth.support_size and2);
  Alcotest.(check bool) "not degenerate" false (Truth.is_degenerate and2);
  (* a LUT ignoring one input is degenerate *)
  let deg = Truth.create ~arity:2 (fun i -> i.(0)) in
  Alcotest.(check bool) "degenerate" true (Truth.is_degenerate deg)

let test_truth_enumerate () =
  Alcotest.(check int) "arity 2 count" 16
    (List.length (List.of_seq (Truth.enumerate ~arity:2)));
  Alcotest.(check int) "arity 0 count" 2
    (List.length (List.of_seq (Truth.enumerate ~arity:0)))

let test_truth_of_bits_validation () =
  Alcotest.check_raises "stray bits"
    (Invalid_argument "Truth.of_bits: bits beyond 2^arity") (fun () ->
      ignore (Truth.of_bits ~arity:2 0x1FL))

let truth_props =
  let gen_table =
    QCheck2.Gen.(
      map2
        (fun arity seed -> Truth.random (Rng.make seed) ~arity)
        (int_range 1 4) int)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"double negation" ~count:300 gen_table
         (fun t -> Truth.equal t (Truth.lnot (Truth.lnot t))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"de morgan" ~count:300
         QCheck2.Gen.(pair gen_table gen_table)
         (fun (a, b) ->
           QCheck2.assume (Truth.arity a = Truth.arity b);
           Truth.equal
             (Truth.lnot (Truth.land_ a b))
             (Truth.lor_ (Truth.lnot a) (Truth.lnot b))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"agreement symmetric" ~count:300
         QCheck2.Gen.(pair gen_table gen_table)
         (fun (a, b) ->
           QCheck2.assume (Truth.arity a = Truth.arity b);
           Truth.agreement a b = Truth.agreement b a));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"agreement complement" ~count:300
         QCheck2.Gen.(pair gen_table gen_table)
         (fun (a, b) ->
           QCheck2.assume (Truth.arity a = Truth.arity b);
           Truth.agreement a b + Truth.agreement a (Truth.lnot b)
           = Truth.rows a));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"string roundtrip" ~count:300 gen_table
         (fun t -> Truth.equal t (Truth.of_string (Truth.to_string t))));
  ]

(* ---------- Gate_fn ---------- *)

let test_gate_eval () =
  Alcotest.(check bool) "nand" true
    (Gate_fn.eval (Gate_fn.Nand 3) [| true; true; false |]);
  Alcotest.(check bool) "xor odd" true
    (Gate_fn.eval (Gate_fn.Xor 3) [| true; true; true |]);
  Alcotest.(check bool) "xnor" false
    (Gate_fn.eval (Gate_fn.Xnor 2) [| true; false |]);
  Alcotest.(check bool) "not" false (Gate_fn.eval Gate_fn.Not [| true |]);
  Alcotest.(check bool) "buf" true (Gate_fn.eval Gate_fn.Buf [| true |])

let test_gate_bench_names () =
  Alcotest.(check (option string)) "AND" (Some "AND3")
    (Option.map Gate_fn.to_string (Gate_fn.of_bench_name "AND" ~arity:3));
  Alcotest.(check (option string)) "BUFF" (Some "BUF")
    (Option.map Gate_fn.to_string (Gate_fn.of_bench_name "BUFF" ~arity:1));
  Alcotest.(check (option string)) "unknown" None
    (Option.map Gate_fn.to_string (Gate_fn.of_bench_name "MAJ" ~arity:3));
  Alcotest.(check (option string)) "arity 1 AND invalid" None
    (Option.map Gate_fn.to_string (Gate_fn.of_bench_name "AND" ~arity:1))

let test_gate_similarity_metrics () =
  (* paper: AND2 vs NOR2 -> 2, AND2 vs NAND2 -> 0 *)
  Alcotest.(check int) "and/nor sim" 2
    (Gate_fn.similarity (Gate_fn.And 2) (Gate_fn.Nor 2));
  Alcotest.(check int) "and/nand sim" 0
    (Gate_fn.similarity (Gate_fn.And 2) (Gate_fn.Nand 2));
  (* the computed 2-input average sits near the paper's 1.45 *)
  let avg = Gate_fn.average_similarity 2 in
  Alcotest.(check bool) "avg similarity plausible" true (avg > 1.2 && avg < 1.8);
  let alpha = Gate_fn.computed_alpha 2 in
  Alcotest.(check bool) "alpha = avg+1" true
    (Float.abs (alpha -. (avg +. 1.)) < 1e-9)

let test_gate_paper_constants () =
  Alcotest.(check (float 1e-9)) "alpha2" 2.45 (Gate_fn.paper_alpha 2);
  Alcotest.(check (float 1e-9)) "alpha3" 4.2 (Gate_fn.paper_alpha 3);
  Alcotest.(check (float 1e-9)) "alpha4" 7.4 (Gate_fn.paper_alpha 4);
  Alcotest.(check (float 1e-9)) "p2" 2.5 (Gate_fn.paper_p 2);
  Alcotest.(check int) "6 meaningful 2-input gates" 6
    (Gate_fn.candidate_count 2)

let test_gate_validation () =
  Alcotest.check_raises "arity 1 and"
    (Invalid_argument "Gate_fn.validate: arity out of [2, 6]") (fun () ->
      Gate_fn.validate (Gate_fn.And 1));
  Alcotest.check_raises "arity 7"
    (Invalid_argument "Gate_fn.validate: arity out of [2, 6]") (fun () ->
      Gate_fn.validate (Gate_fn.Xor 7))

(* ---------- Ternary ---------- *)

let test_ternary_ops () =
  Alcotest.(check bool) "0 and X = 0" true
    (Ternary.equal (Ternary.land_ Ternary.Zero Ternary.X) Ternary.Zero);
  Alcotest.(check bool) "1 and X = X" true
    (Ternary.equal (Ternary.land_ Ternary.One Ternary.X) Ternary.X);
  Alcotest.(check bool) "1 or X = 1" true
    (Ternary.equal (Ternary.lor_ Ternary.One Ternary.X) Ternary.One);
  Alcotest.(check bool) "X xor 1 = X" true
    (Ternary.equal (Ternary.lxor_ Ternary.X Ternary.One) Ternary.X);
  Alcotest.(check bool) "not X = X" true
    (Ternary.equal (Ternary.lnot Ternary.X) Ternary.X)

let test_ternary_gate_eval () =
  (* controlling values decide outputs despite X *)
  Alcotest.(check bool) "nand with 0 input" true
    (Ternary.equal
       (Ternary.eval_gate (Gate_fn.Nand 2) [| Ternary.Zero; Ternary.X |])
       Ternary.One);
  Alcotest.(check bool) "nor with 1 input" true
    (Ternary.equal
       (Ternary.eval_gate (Gate_fn.Nor 2) [| Ternary.One; Ternary.X |])
       Ternary.Zero);
  Alcotest.(check bool) "and all 1" true
    (Ternary.equal
       (Ternary.eval_gate (Gate_fn.And 2) [| Ternary.One; Ternary.One |])
       Ternary.One)

let test_ternary_truth_eval () =
  let and2 = Gate_fn.truth (Gate_fn.And 2) in
  (* known inputs *)
  Alcotest.(check bool) "known" true
    (Ternary.equal
       (Ternary.eval_truth and2 [| Ternary.One; Ternary.One |])
       Ternary.One);
  (* 0 on an AND forces the output even with X *)
  Alcotest.(check bool) "forced" true
    (Ternary.equal
       (Ternary.eval_truth and2 [| Ternary.Zero; Ternary.X |])
       Ternary.Zero);
  (* X that matters stays X *)
  Alcotest.(check bool) "unknown" true
    (Ternary.equal
       (Ternary.eval_truth and2 [| Ternary.One; Ternary.X |])
       Ternary.X)

let ternary_props =
  let gen_v = QCheck2.Gen.oneofl [ Ternary.Zero; Ternary.One; Ternary.X ] in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"ternary gate agrees with boolean" ~count:500
         QCheck2.Gen.(pair (int_range 0 7) (int_range 0 3))
         (fun (bits, fn_idx) ->
           let fn =
             List.nth
               [ Gate_fn.And 3; Gate_fn.Nand 3; Gate_fn.Or 3; Gate_fn.Xor 3 ]
               fn_idx
           in
           let bools = Array.init 3 (fun k -> (bits lsr k) land 1 = 1) in
           let tern = Array.map Ternary.of_bool bools in
           Ternary.equal
             (Ternary.eval_gate fn tern)
             (Ternary.of_bool (Gate_fn.eval fn bools))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"ternary monotone wrt X" ~count:500
         QCheck2.Gen.(array_size (return 2) gen_v)
         (fun inputs ->
           (* replacing an input by X can only keep or lose knowledge *)
           let out = Ternary.eval_gate (Gate_fn.And 2) inputs in
           let blurred = [| inputs.(0); Ternary.X |] in
           let out' = Ternary.eval_gate (Gate_fn.And 2) blurred in
           match (out, out') with
           | _, Ternary.X -> true
           | a, b -> Ternary.equal a b));
  ]

(* ---------- Bdd ---------- *)

let test_bdd_basics () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.land_ m x y in
  Alcotest.(check bool) "eval 11" true (Bdd.eval f (fun _ -> true));
  Alcotest.(check bool) "eval 01" false
    (Bdd.eval f (fun v -> v = 1));
  Alcotest.(check bool) "tautology" true
    (Bdd.is_one m (Bdd.lor_ m x (Bdd.lnot m x)));
  Alcotest.(check bool) "contradiction" true
    (Bdd.is_zero m (Bdd.land_ m x (Bdd.lnot m x)))

let test_bdd_hash_consing () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f1 = Bdd.lor_ m (Bdd.land_ m x y) (Bdd.land_ m x y) in
  let f2 = Bdd.land_ m x y in
  Alcotest.(check bool) "structural sharing" true (Bdd.equal f1 f2)

let test_bdd_sat_count () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check (float 1e-9)) "and" 1. (Bdd.sat_count (Bdd.land_ m x y) ~nvars:2);
  Alcotest.(check (float 1e-9)) "or" 3. (Bdd.sat_count (Bdd.lor_ m x y) ~nvars:2);
  Alcotest.(check (float 1e-9)) "xor over 3 vars" 4.
    (Bdd.sat_count (Bdd.lxor_ m x y) ~nvars:3)

let test_bdd_any_sat () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.land_ m x (Bdd.lnot m y) in
  (match Bdd.any_sat f with
  | Some assignment ->
      let value v = try List.assoc v assignment with Not_found -> false in
      Alcotest.(check bool) "witness satisfies" true (Bdd.eval f value)
  | None -> Alcotest.fail "expected SAT");
  Alcotest.(check bool) "unsat" true (Bdd.any_sat (Bdd.zero m) = None)

let test_bdd_restrict_support () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.lxor_ m x y in
  Alcotest.(check (list int)) "support" [ 0; 1 ] (Bdd.support f);
  let g = Bdd.restrict m f 0 true in
  Alcotest.(check (list int)) "restricted support" [ 1 ] (Bdd.support g);
  Alcotest.(check bool) "restrict = not y" true (Bdd.equal g (Bdd.lnot m y))

let test_bdd_manager_mixing () =
  let m1 = Bdd.manager () and m2 = Bdd.manager () in
  let x1 = Bdd.var m1 0 and x2 = Bdd.var m2 0 in
  Alcotest.check_raises "mixing" (Invalid_argument "Bdd: mixing managers")
    (fun () -> ignore (Bdd.land_ m1 x1 x2))

let bdd_props =
  let gen_table =
    QCheck2.Gen.(
      map2
        (fun arity seed -> Truth.random (Rng.make seed) ~arity)
        (int_range 1 4) int)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"bdd of_truth/to_truth roundtrip" ~count:200
         gen_table
         (fun t ->
           let m = Bdd.manager () in
           let vars = Array.init (Truth.arity t) Fun.id in
           let f = Bdd.of_truth m t ~vars in
           Truth.equal t (Bdd.to_truth f ~vars)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"bdd ops match truth ops" ~count:200
         QCheck2.Gen.(pair gen_table gen_table)
         (fun (a, b) ->
           QCheck2.assume (Truth.arity a = Truth.arity b);
           let m = Bdd.manager () in
           let vars = Array.init (Truth.arity a) Fun.id in
           let fa = Bdd.of_truth m a ~vars and fb = Bdd.of_truth m b ~vars in
           Bdd.equal
             (Bdd.lxor_ m fa fb)
             (Bdd.of_truth m (Truth.lxor_ a b) ~vars)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"sat_count matches popcount" ~count:200
         gen_table
         (fun t ->
           let m = Bdd.manager () in
           let vars = Array.init (Truth.arity t) Fun.id in
           let f = Bdd.of_truth m t ~vars in
           int_of_float (Bdd.sat_count f ~nvars:(Truth.arity t))
           = Truth.count_ones t));
  ]

(* ---------- Cnf / Sat ---------- *)

let solve_value cnf =
  match Sat.solve cnf with
  | Sat.Sat model -> Some model
  | Sat.Unsat -> None
  | Sat.Unknown r -> Alcotest.failf "unbudgeted solve returned Unknown %s" r

let test_sat_trivial () =
  let cnf = Cnf.create () in
  let a = Cnf.fresh_var cnf in
  Cnf.add_clause cnf [ a ];
  (match solve_value cnf with
  | Some model -> Alcotest.(check bool) "a true" true (Sat.model_value model a)
  | None -> Alcotest.fail "expected sat");
  Cnf.add_clause cnf [ -a ];
  Alcotest.(check bool) "now unsat" false (Sat.is_satisfiable cnf)

let test_sat_pigeonhole () =
  (* 3 pigeons, 2 holes: classic small UNSAT instance *)
  let cnf = Cnf.create () in
  let v = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Cnf.fresh_var cnf)) in
  for p = 0 to 2 do
    Cnf.add_clause cnf [ v.(p).(0); v.(p).(1) ]
  done;
  for h = 0 to 1 do
    for p1 = 0 to 2 do
      for p2 = p1 + 1 to 2 do
        Cnf.add_clause cnf [ -v.(p1).(h); -v.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php(3,2) unsat" false (Sat.is_satisfiable cnf)

let test_sat_assumptions () =
  let cnf = Cnf.create () in
  let a = Cnf.fresh_var cnf and b = Cnf.fresh_var cnf in
  Cnf.add_clause cnf [ a; b ];
  Alcotest.(check bool) "sat under a" true
    (match Sat.solve ~assumptions:[ a ] cnf with
    | Sat.Sat _ -> true
    | Sat.Unsat | Sat.Unknown _ -> false);
  Cnf.add_clause cnf [ -a ];
  Alcotest.(check bool) "unsat under a" true
    (match Sat.solve ~assumptions:[ a ] cnf with
    | Sat.Sat _ | Sat.Unknown _ -> false
    | Sat.Unsat -> true);
  Alcotest.(check bool) "still sat without assumption" true
    (Sat.is_satisfiable cnf)

let test_sat_gate_encodings () =
  (* every gate encoding agrees with Gate_fn.eval on all input rows *)
  List.iter
    (fun fn ->
      let arity = Gate_fn.arity fn in
      for row = 0 to (1 lsl arity) - 1 do
        let cnf = Cnf.create () in
        let inputs = List.init arity (fun _ -> Cnf.fresh_var cnf) in
        let out = Cnf.fresh_var cnf in
        Cnf.encode_gate cnf out fn inputs;
        List.iteri
          (fun k v ->
            Cnf.add_clause cnf [ (if (row lsr k) land 1 = 1 then v else -v) ])
          inputs;
        let expected =
          Gate_fn.eval fn (Array.init arity (fun k -> (row lsr k) land 1 = 1))
        in
        match solve_value cnf with
        | None -> Alcotest.fail "gate encoding unsat"
        | Some model ->
            Alcotest.(check bool)
              (Printf.sprintf "%s row %d" (Gate_fn.to_string fn) row)
              expected (Sat.model_value model out)
      done)
    [
      Gate_fn.Buf; Gate_fn.Not; Gate_fn.And 2; Gate_fn.Nand 3; Gate_fn.Or 2;
      Gate_fn.Nor 4; Gate_fn.Xor 3; Gate_fn.Xnor 2;
    ]

let test_sat_symbolic_lut () =
  (* a 2-input LUT with symbolic key must be forced to XOR by its I/O *)
  let cnf = Cnf.create () in
  let i0 = Cnf.fresh_var cnf and i1 = Cnf.fresh_var cnf in
  let out = Cnf.fresh_var cnf in
  let key = Array.init 4 (fun _ -> Cnf.fresh_var cnf) in
  Cnf.encode_truth_lut cnf out ~key ~inputs:[| i0; i1 |];
  (* pin row 01 -> out must equal key.(1) *)
  Cnf.add_clause cnf [ i0 ];
  Cnf.add_clause cnf [ -i1 ];
  Cnf.add_clause cnf [ out ];
  (match solve_value cnf with
  | None -> Alcotest.fail "lut encoding unsat"
  | Some model ->
      Alcotest.(check bool) "key row 1 forced true" true
        (Sat.model_value model key.(1)))

(* random 3-CNF generator shared by the direct CDCL properties and the
   incremental-interface properties below *)
let gen_cnf =
  QCheck2.Gen.(
    let* nvars = int_range 3 8 in
    let* nclauses = int_range 3 24 in
    let* seeds = list_size (return (nclauses * 3)) (int_range 0 1_000_000) in
    return (nvars, nclauses, seeds))

let build_cnf (nvars, nclauses, seeds) =
  let cnf = Cnf.create () in
  Cnf.reserve cnf nvars;
  let seeds = Array.of_list seeds in
  for c = 0 to nclauses - 1 do
    let lit k =
      let s = seeds.((3 * c) + k) in
      let v = (s mod nvars) + 1 in
      if s / nvars mod 2 = 0 then v else -v
    in
    Cnf.add_clause cnf [ lit 0; lit 1; lit 2 ]
  done;
  cnf

let model_satisfies model cnf =
  List.for_all
    (fun clause ->
      Array.exists
        (fun l ->
          if l > 0 then Sat.model_value model l
          else not (Sat.model_value model (-l)))
        clause)
    (Cnf.clauses cnf)

let sat_props =
  (* random 3-CNF solved by our CDCL vs brute force *)
  let build = build_cnf in
  let brute_sat cnf =
    let n = Cnf.nvars cnf in
    let clauses = Cnf.clauses cnf in
    let rec try_assign a =
      if a >= 1 lsl n then false
      else
        let value v = (a lsr (v - 1)) land 1 = 1 in
        let ok =
          List.for_all
            (fun clause ->
              Array.exists
                (fun l -> if l > 0 then value l else not (value (-l)))
                clause)
            clauses
        in
        ok || try_assign (a + 1)
    in
    try_assign 0
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"cdcl agrees with brute force" ~count:150
         gen_cnf
         (fun params ->
           let cnf = build params in
           Sat.is_satisfiable cnf = brute_sat cnf));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"models really satisfy" ~count:150 gen_cnf
         (fun params ->
           let cnf = build params in
           match Sat.solve cnf with
           | Sat.Unsat -> true
           | Sat.Unknown _ -> false
           | Sat.Sat model -> model_satisfies model cnf));
  ]

(* ---------- incremental interface ---------- *)

(* [solve ~assumptions] on a persistent solver — which keeps learned
   clauses, activities and saved phases from every earlier call — must
   agree with a throwaway solve of the same CNF with the assumptions
   added as unit clauses. *)
let incremental_props =
  let gen =
    QCheck2.Gen.(
      let* params = gen_cnf in
      let* assum_seeds = list_size (return 9) (int_range 0 1_000_000) in
      return (params, assum_seeds))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"persistent solve ~assumptions = scratch solve with units"
         ~count:150 gen
         (fun (params, assum_seeds) ->
           let nvars, _, _ = params in
           let cnf = build_cnf params in
           let solver = Sat.Solver.create () in
           Sat.Solver.sync solver cnf;
           let seeds = Array.of_list assum_seeds in
           List.for_all
             (fun round ->
               (* rounds reuse the same solver with 1..3 assumption lits *)
               let assumptions =
                 List.init (round + 1) (fun k ->
                     let s = seeds.((3 * round) + k) in
                     let v = (s mod nvars) + 1 in
                     if s / nvars mod 2 = 0 then v else -v)
               in
               let scratch_cnf = build_cnf params in
               List.iter (fun l -> Cnf.add_clause scratch_cnf [ l ]) assumptions;
               match
                 (Sat.Solver.solve ~assumptions solver, Sat.solve scratch_cnf)
               with
               | Sat.Unsat, Sat.Unsat -> true
               | Sat.Sat model, Sat.Sat _ ->
                   model_satisfies model cnf
                   && List.for_all
                        (fun l ->
                          if l > 0 then Sat.model_value model l
                          else not (Sat.model_value model (-l)))
                        assumptions
               | _ -> false)
             [ 0; 1; 2 ]));
  ]

(* Clause-database reduction must be invisible to callers: a solver
   reused across several solve calls with a reduction limit low enough
   to actually trigger still returns correct models, and the statistics
   confirm learned clauses really were discarded. *)
let test_sat_reuse_after_reduction () =
  (* deterministic random 3-CNF near the phase transition: hard enough
     for hundreds of conflicts, so Luby restarts and DB reductions fire *)
  let lcg = ref 0x2545F49 in
  let next () =
    lcg := (!lcg * 1103515245) + 12345;
    (!lcg lsr 7) land 0xFFFFFF
  in
  (* one CNF, two faces: a pigeonhole principle PHP(9,8) relaxed by a
     fresh literal [r] (assuming [-r] makes it the classic hard UNSAT
     instance; [r] switches it off), plus a planted-SAT random 3-CNF on
     separate variables for the model-returning calls *)
  let holes = 8 in
  let pigeons = holes + 1 in
  let r = 1 in
  let pvar p h = 2 + (p * holes) + h in
  let base = 1 + (pigeons * holes) in
  let nvars2 = 40 in
  let plant = Array.init (nvars2 + 1) (fun _ -> next () land 1 = 1) in
  let cnf = Cnf.create () in
  Cnf.reserve cnf (base + nvars2);
  for p = 0 to pigeons - 1 do
    Cnf.add_clause cnf (r :: List.init holes (fun h -> pvar p h))
  done;
  for h = 0 to holes - 1 do
    for p = 0 to pigeons - 1 do
      for q = p + 1 to pigeons - 1 do
        Cnf.add_clause cnf [ r; -pvar p h; -pvar q h ]
      done
    done
  done;
  for _ = 1 to 160 do
    let lit () =
      let v = (next () mod nvars2) + 1 in
      if next () land 1 = 0 then base + v else -(base + v)
    in
    let sat_under_plant l =
      if l > 0 then plant.(l - base) else not plant.(-l - base)
    in
    let c = [| lit (); lit (); lit () |] in
    if not (Array.exists sat_under_plant c) then begin
      let k = next () mod 3 in
      c.(k) <- -c.(k)
    end;
    Cnf.add_clause cnf (Array.to_list c)
  done;
  let solver = Sat.Solver.of_cnf ~reduce_limit:50 cnf in
  (* call 1: the hard UNSAT face — thousands of conflicts, so Luby
     restarts and clause-DB reductions fire before it refutes *)
  (match Sat.Solver.solve ~assumptions:[ -r ] solver with
  | Sat.Unsat -> ()
  | Sat.Sat _ -> Alcotest.fail "relaxed pigeonhole: bogus model"
  | Sat.Unknown reason -> Alcotest.failf "pigeonhole call unknown: %s" reason);
  Alcotest.(check bool) "reduction actually fired (removed > 0)" true
    ((Sat.Solver.stats solver).Sat.removed > 0);
  (* calls 2..4: SAT faces on the same solver — the surviving learned
     clauses and rewritten clause DB must still yield correct models *)
  for call = 2 to 4 do
    let v = (call * 13 mod nvars2) + 1 in
    let lit = if plant.(v) then base + v else -(base + v) in
    match Sat.Solver.solve ~assumptions:[ r; lit ] solver with
    | Sat.Sat model ->
        Alcotest.(check bool)
          (Printf.sprintf "call %d model satisfies" call)
          true (model_satisfies model cnf);
        Alcotest.(check bool)
          (Printf.sprintf "call %d assumption honoured" call)
          true
          (if lit > 0 then Sat.model_value model lit
           else not (Sat.model_value model (-lit)))
    | Sat.Unsat -> Alcotest.failf "call %d unexpectedly unsat" call
    | Sat.Unknown reason -> Alcotest.failf "call %d unknown: %s" call reason
  done;
  let stats = Sat.Solver.stats solver in
  Alcotest.(check bool) "solver retained clauses (kept > 0)" true
    (stats.Sat.kept > 0)

(* ---------- Dimacs ---------- *)

let test_dimacs_roundtrip () =
  let cnf = Cnf.create () in
  let a = Cnf.fresh_var cnf and b = Cnf.fresh_var cnf in
  Cnf.add_clause cnf [ a; -b ];
  Cnf.add_clause cnf [ -a ];
  let text = Dimacs.to_string cnf in
  let cnf2 = Dimacs.parse_string text in
  Alcotest.(check int) "nvars" (Cnf.nvars cnf) (Cnf.nvars cnf2);
  Alcotest.(check int) "nclauses" (Cnf.nclauses cnf) (Cnf.nclauses cnf2);
  Alcotest.(check bool) "same satisfiability" (Sat.is_satisfiable cnf)
    (Sat.is_satisfiable cnf2)

let test_dimacs_comments () =
  let cnf = Dimacs.parse_string "c a comment\np cnf 2 1\n1 -2 0\n" in
  Alcotest.(check int) "vars" 2 (Cnf.nvars cnf);
  Alcotest.(check int) "clauses" 1 (Cnf.nclauses cnf)

let test_dimacs_errors () =
  Alcotest.(check bool) "bad literal raises" true
    (try
       ignore (Dimacs.parse_string "p cnf 1 1\nfoo 0\n");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "unterminated clause raises" true
    (try
       ignore (Dimacs.parse_string "p cnf 1 1\n1\n");
       false
     with Failure _ -> true)

let test_dimacs_corpus () =
  (* every .cnf under test/dimacs/ declares its expected satisfiability
     in a leading "c expect sat|unsat" comment; parse and solve each *)
  (* the corpus is staged next to the test binary by the dune deps rule;
     resolve it relative to the executable so `dune exec` from the
     project root finds it too *)
  let dir =
    if Sys.file_exists "dimacs" then "dimacs"
    else Filename.concat (Filename.dirname Sys.executable_name) "dimacs"
  in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cnf")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus present" true (List.length files >= 5);
  List.iter
    (fun file ->
      let path = Filename.concat dir file in
      let ic = open_in path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      let expected =
        if String.length text >= 13 && String.sub text 0 13 = "c expect sat\n"
        then true
        else if
          String.length text >= 15 && String.sub text 0 15 = "c expect unsat\n"
        then false
        else Alcotest.failf "%s: missing 'c expect sat|unsat' header" file
      in
      let cnf = Dimacs.parse_string text in
      (match Sat.solve cnf with
      | Sat.Sat model ->
          Alcotest.(check bool) (file ^ ": expected satisfiable") true expected;
          Alcotest.(check bool)
            (file ^ ": model satisfies")
            true
            (model_satisfies model cnf)
      | Sat.Unsat ->
          Alcotest.(check bool) (file ^ ": expected unsat") false expected
      | Sat.Unknown r -> Alcotest.failf "%s: unknown: %s" file r);
      (* same answer through the incremental interface on a reused solver *)
      let solver = Sat.Solver.create () in
      Sat.Solver.sync solver cnf;
      let first = Sat.Solver.solve solver in
      let second = Sat.Solver.solve solver in
      let decided = function
        | Sat.Sat _ -> true
        | Sat.Unsat -> false
        | Sat.Unknown r -> Alcotest.failf "%s: incremental unknown: %s" file r
      in
      Alcotest.(check bool) (file ^ ": incremental agrees") expected
        (decided first);
      Alcotest.(check bool) (file ^ ": repeat solve agrees") expected
        (decided second))
    files

let () =
  Alcotest.run "sttc_logic"
    [
      ( "truth",
        [
          Alcotest.test_case "create/eval" `Quick test_truth_create_eval;
          Alcotest.test_case "string roundtrip" `Quick test_truth_string_roundtrip;
          Alcotest.test_case "boolean ops" `Quick test_truth_ops;
          Alcotest.test_case "agreement (paper examples)" `Quick test_truth_agreement;
          Alcotest.test_case "cofactor/support" `Quick test_truth_cofactor_support;
          Alcotest.test_case "enumerate" `Quick test_truth_enumerate;
          Alcotest.test_case "of_bits validation" `Quick test_truth_of_bits_validation;
        ]
        @ truth_props );
      ( "gate_fn",
        [
          Alcotest.test_case "eval" `Quick test_gate_eval;
          Alcotest.test_case "bench names" `Quick test_gate_bench_names;
          Alcotest.test_case "similarity metrics" `Quick test_gate_similarity_metrics;
          Alcotest.test_case "paper constants" `Quick test_gate_paper_constants;
          Alcotest.test_case "validation" `Quick test_gate_validation;
        ] );
      ( "ternary",
        [
          Alcotest.test_case "ops" `Quick test_ternary_ops;
          Alcotest.test_case "gate eval" `Quick test_ternary_gate_eval;
          Alcotest.test_case "truth eval" `Quick test_ternary_truth_eval;
        ]
        @ ternary_props );
      ( "bdd",
        [
          Alcotest.test_case "basics" `Quick test_bdd_basics;
          Alcotest.test_case "hash consing" `Quick test_bdd_hash_consing;
          Alcotest.test_case "sat count" `Quick test_bdd_sat_count;
          Alcotest.test_case "any_sat" `Quick test_bdd_any_sat;
          Alcotest.test_case "restrict/support" `Quick test_bdd_restrict_support;
          Alcotest.test_case "manager mixing" `Quick test_bdd_manager_mixing;
        ]
        @ bdd_props );
      ( "sat",
        [
          Alcotest.test_case "trivial" `Quick test_sat_trivial;
          Alcotest.test_case "pigeonhole unsat" `Quick test_sat_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_sat_assumptions;
          Alcotest.test_case "gate encodings" `Quick test_sat_gate_encodings;
          Alcotest.test_case "symbolic LUT" `Quick test_sat_symbolic_lut;
          Alcotest.test_case "reuse across clause-DB reduction" `Quick
            test_sat_reuse_after_reduction;
        ]
        @ sat_props @ incremental_props );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "comments" `Quick test_dimacs_comments;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
          Alcotest.test_case "regression corpus" `Quick test_dimacs_corpus;
        ] );
    ]
