(* Tests for Sttc_analysis: static timing, path sampling (Section IV-A),
   activity propagation, power and area estimation. *)

module Netlist = Sttc_netlist.Netlist
module Generator = Sttc_netlist.Generator
module Transform = Sttc_netlist.Transform
module Gate_fn = Sttc_logic.Gate_fn
module Sta = Sttc_analysis.Sta
module Paths = Sttc_analysis.Paths
module Activity = Sttc_analysis.Activity
module Power = Sttc_analysis.Power
module Area = Sttc_analysis.Area
module Library = Sttc_tech.Library
module Rng = Sttc_util.Rng

let lib = Library.cmos90

(* chain: a -> NOT n1 -> NOT n2 -> NOT n3 -> y *)
let inverter_chain n =
  let b = Netlist.Builder.create ~design_name:"chain" () in
  let a = Netlist.Builder.add_pi b "a" in
  let last = ref a in
  for i = 1 to n do
    last := Netlist.Builder.add_gate b (Printf.sprintf "n%d" i) Gate_fn.Not [ !last ]
  done;
  Netlist.Builder.add_output b "y" !last;
  Netlist.Builder.finalize b

let pipeline_circuit () =
  (* PI -> g1 -> FF1 -> g2 -> FF2 -> g3 -> PO; depth 2 FFs *)
  let b = Netlist.Builder.create ~design_name:"pipe" () in
  let a = Netlist.Builder.add_pi b "a" in
  let c = Netlist.Builder.add_pi b "c" in
  let g1 = Netlist.Builder.add_gate b "g1" (Gate_fn.And 2) [ a; c ] in
  let ff1 = Netlist.Builder.add_dff b "ff1" g1 in
  let g2 = Netlist.Builder.add_gate b "g2" (Gate_fn.Or 2) [ ff1; c ] in
  let ff2 = Netlist.Builder.add_dff b "ff2" g2 in
  let g3 = Netlist.Builder.add_gate b "g3" (Gate_fn.Xor 2) [ ff2; a ] in
  Netlist.Builder.add_output b "y" g3;
  Netlist.Builder.finalize b

(* ---------- STA ---------- *)

let test_sta_chain_delay () =
  let nl = inverter_chain 5 in
  let sta = Sta.analyze lib nl in
  let not_delay = (Sttc_tech.Cmos_lib.gate Gate_fn.Not).Sttc_tech.Cell.delay_ps in
  Alcotest.(check (float 1e-6)) "5 inverters" (5. *. not_delay)
    (Sta.critical_delay_ps sta)

let test_sta_critical_path () =
  let nl = inverter_chain 3 in
  let sta = Sta.analyze lib nl in
  let path = Sta.critical_path sta in
  Alcotest.(check int) "path length (pi + 3 gates)" 4 (List.length path);
  Alcotest.(check string) "starts at pi" "a"
    (Netlist.name nl (List.hd path));
  Alcotest.(check string) "ends at endpoint" "n3"
    (Netlist.name nl (Sta.critical_endpoint sta))

let test_sta_pipeline_stages () =
  let nl = pipeline_circuit () in
  let sta = Sta.analyze lib nl in
  (* endpoints: ff1.D (g1), ff2.D (g2), y (g3) *)
  Alcotest.(check int) "three endpoints" 3
    (List.length (Sta.endpoint_arrivals sta));
  (* FF-launched stages include the clk-to-q delay *)
  let dffq = (Sttc_tech.Cmos_lib.dff).Sttc_tech.Cell.delay_ps in
  let g3 = Netlist.find_exn nl "g3" in
  let xor_d = (Sttc_tech.Cmos_lib.gate (Gate_fn.Xor 2)).Sttc_tech.Cell.delay_ps in
  Alcotest.(check (float 1e-6)) "g3 arrival" (dffq +. xor_d)
    (Sta.arrival_ps sta g3)

let test_sta_slack () =
  let nl = inverter_chain 2 in
  let sta = Sta.analyze lib nl in
  let crit = Sta.critical_delay_ps sta in
  Alcotest.(check (float 1e-9)) "zero slack at critical" 0.
    (Sta.slack_ps sta ~clock_ps:crit);
  Alcotest.(check bool) "negative slack when faster" true
    (Sta.slack_ps sta ~clock_ps:(crit -. 1.) < 0.)

let test_sta_lut_slows_path () =
  let nl = inverter_chain 4 in
  let sta = Sta.analyze lib nl in
  let g = Netlist.find_exn nl "n2" in
  (* an inverter cannot be replaced by our flow (fan-in 1 is allowed for
     LUTs in general); replace and expect the critical delay to grow *)
  let nl2 = Transform.replace_gate_with_lut nl g in
  let sta2 = Sta.analyze lib nl2 in
  Alcotest.(check bool) "slower with LUT" true
    (Sta.critical_delay_ps sta2 > Sta.critical_delay_ps sta)

let test_sta_worst_paths_report () =
  let nl = pipeline_circuit () in
  let sta = Sta.analyze lib nl in
  let paths = Sta.worst_paths sta ~k:2 in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  (match paths with
  | (a1, p1) :: (a2, _) :: _ ->
      Alcotest.(check bool) "sorted" true (a1 >= a2);
      Alcotest.(check (float 1e-9)) "worst = critical"
        (Sta.critical_delay_ps sta) a1;
      Alcotest.(check bool) "path nonempty" true (p1 <> [])
  | _ -> Alcotest.fail "expected two paths");
  let r = Sta.report ~k:2 sta in
  Alcotest.(check bool) "report mentions GHz" true
    (let needle = "GHz" in
     let n = String.length needle and h = String.length r in
     let rec go i = (i + n <= h) && (String.sub r i n = needle || go (i + 1)) in
     go 0)

(* ---------- Paths ---------- *)

let test_paths_find_io_path () =
  let nl = pipeline_circuit () in
  let rng = Rng.make 1 in
  let g2 = Netlist.find_exn nl "g2" in
  match Paths.find_io_path ~rng nl g2 with
  | None -> Alcotest.fail "expected a path"
  | Some p ->
      (* path passes through g2, starts at a PI, ends at the PO driver *)
      Alcotest.(check bool) "contains g2" true (List.mem g2 p.Paths.nodes);
      let first = List.hd p.Paths.nodes in
      (match Netlist.kind nl first with
      | Netlist.Pi -> ()
      | _ -> Alcotest.fail "must start at a PI");
      let last = List.nth p.Paths.nodes (List.length p.Paths.nodes - 1) in
      Alcotest.(check string) "ends at PO driver" "g3" (Netlist.name nl last)

let test_paths_segments () =
  let nl = pipeline_circuit () in
  let rng = Rng.make 3 in
  (* walk until we get the full-depth path (2 FFs) *)
  let rec find k =
    if k > 50 then Alcotest.fail "no 2-FF path found"
    else
      match Paths.find_io_path ~rng nl (Netlist.find_exn nl "g2") with
      | Some p when p.Paths.ff_count = 2 -> p
      | _ -> find (k + 1)
  in
  let p = find 0 in
  let segs = Paths.segments nl p in
  Alcotest.(check int) "three segments" 3 (List.length segs);
  (match segs with
  | [ s1; s2; s3 ] ->
      Alcotest.(check bool) "s1 launches at PI" false s1.Paths.launches_at_ff;
      Alcotest.(check bool) "s1 captures at FF" true s1.Paths.captures_at_ff;
      Alcotest.(check bool) "s2 launches at FF" true s2.Paths.launches_at_ff;
      Alcotest.(check bool) "s3 captures at PO" false s3.Paths.captures_at_ff
  | _ -> Alcotest.fail "expected 3 segments");
  Alcotest.(check int) "replaceable gates" 3
    (List.length (Paths.gates_on_path nl p))

let test_paths_sample_sorted_and_deduped () =
  let nl =
    Generator.generate ~seed:4
      {
        Generator.design_name = "s";
        n_pi = 8;
        n_po = 6;
        n_ff = 10;
        n_gates = 120;
        levels = 8;
      }
  in
  let rng = Rng.make 7 in
  let paths = Paths.sample ~rng ~fraction:0.3 ~min_ffs:1 nl in
  Alcotest.(check bool) "found some" true (paths <> []);
  (* sorted by descending ff_count *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Paths.ff_count >= b.Paths.ff_count && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted paths);
  (* unique *)
  let keys = List.map (fun p -> p.Paths.nodes) paths in
  Alcotest.(check int) "deduped" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_paths_sample_excludes_critical () =
  let nl =
    Generator.generate ~seed:9
      {
        Generator.design_name = "s";
        n_pi = 8;
        n_po = 6;
        n_ff = 10;
        n_gates = 150;
        levels = 8;
      }
  in
  let sta = Sta.analyze lib nl in
  let crit = Sta.critical_path sta in
  let rng = Rng.make 7 in
  let paths = Paths.sample ~rng ~fraction:0.5 ~min_ffs:1 ~exclude_critical:crit nl in
  let module Int_set = Set.Make (Int) in
  let crit_set = Int_set.of_list crit in
  (* under the preferred rule, no sampled path shares a node with the
     critical path (unless the fallback had to fire, in which case no path
     may contain the whole critical path) *)
  let disjoint =
    List.for_all
      (fun p -> not (List.exists (fun id -> Int_set.mem id crit_set) p.Paths.nodes))
      paths
  in
  let no_superset =
    List.for_all
      (fun p -> not (Int_set.subset crit_set (Int_set.of_list p.Paths.nodes)))
      paths
  in
  Alcotest.(check bool) "critical excluded" true (disjoint || no_superset)

let test_paths_fraction_validation () =
  let nl = pipeline_circuit () in
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Paths.sample: fraction") (fun () ->
      ignore (Paths.sample ~rng:(Rng.make 1) ~fraction:0. nl))

(* ---------- Activity ---------- *)

let test_activity_constants () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_pi b "a" in
  let c1 = Netlist.Builder.add_const b "c1" true in
  let g = Netlist.Builder.add_gate b "g" (Gate_fn.And 2) [ a; c1 ] in
  Netlist.Builder.add_output b "y" g;
  let nl = Netlist.Builder.finalize b in
  let act = Activity.analyze nl in
  Alcotest.(check (float 1e-9)) "const prob" 1. (Activity.probability act c1);
  Alcotest.(check (float 1e-9)) "const switching" 0. (Activity.switching act c1);
  (* AND with constant-1 passes a through: p = 0.5 *)
  Alcotest.(check (float 1e-9)) "gate prob" 0.5 (Activity.probability act g)

let test_activity_gate_probabilities () =
  let b = Netlist.Builder.create () in
  let x = Netlist.Builder.add_pi b "x" in
  let y = Netlist.Builder.add_pi b "y" in
  let and_g = Netlist.Builder.add_gate b "and_g" (Gate_fn.And 2) [ x; y ] in
  let xor_g = Netlist.Builder.add_gate b "xor_g" (Gate_fn.Xor 2) [ x; y ] in
  Netlist.Builder.add_output b "o1" and_g;
  Netlist.Builder.add_output b "o2" xor_g;
  let nl = Netlist.Builder.finalize b in
  let act = Activity.analyze nl in
  Alcotest.(check (float 1e-9)) "and prob 1/4" 0.25 (Activity.probability act and_g);
  Alcotest.(check (float 1e-9)) "xor prob 1/2" 0.5 (Activity.probability act xor_g);
  Alcotest.(check (float 1e-9)) "and switching" 0.375 (Activity.switching act and_g)

let test_activity_pi_probability () =
  let nl = inverter_chain 1 in
  let act = Activity.analyze ~pi_probability:0.9 nl in
  let g = Netlist.find_exn nl "n1" in
  Alcotest.(check (float 1e-9)) "not inverts probability" 0.1
    (Activity.probability act g)

let test_activity_sequential_fixpoint () =
  (* toggle flop: ff = DFF(NOT ff) settles at p = 0.5 *)
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_pi b "a" in
  ignore a;
  let ff = Netlist.Builder.add_dff_deferred b "ff" in
  let inv = Netlist.Builder.add_gate b "inv" Gate_fn.Not [ ff ] in
  Netlist.Builder.set_dff_input b ff inv;
  Netlist.Builder.add_output b "y" inv;
  let nl = Netlist.Builder.finalize b in
  let act = Activity.analyze nl in
  Alcotest.(check (float 0.05)) "toggle flop prob" 0.5
    (Activity.probability act ff)

let test_activity_unconfigured_lut () =
  let nl = inverter_chain 2 in
  let g = Netlist.find_exn nl "n1" in
  let nl2 = Transform.replace_gate_with_lut ~keep_function:false nl g in
  let act = Activity.analyze nl2 in
  Alcotest.(check (float 1e-9)) "missing LUT prob" 0.5 (Activity.probability act g)

let test_activity_bounds_property () =
  (* probabilities always within [0,1] on random circuits *)
  for seed = 0 to 9 do
    let nl =
      Generator.generate ~seed
        {
          Generator.design_name = "p";
          n_pi = 6;
          n_po = 5;
          n_ff = 4;
          n_gates = 60;
          levels = 6;
        }
    in
    let act = Activity.analyze nl in
    Netlist.iter
      (fun id _ ->
        let p = Activity.probability act id in
        Alcotest.(check bool) "p in [0,1]" true (p >= 0. && p <= 1.);
        let s = Activity.switching act id in
        Alcotest.(check bool) "alpha in [0,0.5]" true (s >= 0. && s <= 0.5))
      nl
  done

(* ---------- Power ---------- *)

let test_power_report_consistency () =
  let nl = inverter_chain 10 in
  let r = Power.estimate lib nl in
  Alcotest.(check (float 1e-9)) "total = dyn + leak"
    (r.Power.dynamic_uw +. r.Power.leakage_uw)
    r.Power.total_uw;
  Alcotest.(check (float 1e-9)) "no stt" 0. r.Power.stt_uw;
  Alcotest.(check bool) "positive" true (r.Power.total_uw > 0.)

let test_power_lut_increases () =
  let nl = inverter_chain 10 in
  let g = Netlist.find_exn nl "n5" in
  let nl2 = Transform.replace_gate_with_lut nl g in
  let r1 = Power.estimate lib nl and r2 = Power.estimate lib nl2 in
  Alcotest.(check bool) "hybrid burns more" true
    (r2.Power.total_uw > r1.Power.total_uw);
  Alcotest.(check bool) "stt share positive" true (r2.Power.stt_uw > 0.);
  Alcotest.(check bool) "overhead positive" true
    (Power.overhead_pct ~base:r1 ~modified:r2 > 0.)

let test_power_scales_with_clock () =
  let nl = inverter_chain 10 in
  let r1 = Power.estimate lib nl in
  let r2 = Power.estimate (Library.with_clock lib ~ghz:2.) nl in
  Alcotest.(check (float 1e-6)) "dynamic doubles" (2. *. r1.Power.dynamic_uw)
    r2.Power.dynamic_uw;
  Alcotest.(check (float 1e-9)) "leakage unchanged" r1.Power.leakage_uw
    r2.Power.leakage_uw

(* ---------- Area ---------- *)

let test_area_report () =
  let nl = pipeline_circuit () in
  let r = Area.estimate lib nl in
  Alcotest.(check (float 1e-9)) "total = parts"
    (r.Area.gates_um2 +. r.Area.luts_um2 +. r.Area.dffs_um2)
    r.Area.total_um2;
  Alcotest.(check bool) "dff area positive" true (r.Area.dffs_um2 > 0.)

let test_area_lut_overhead () =
  let nl = pipeline_circuit () in
  let g = Netlist.find_exn nl "g2" in
  let nl2 = Transform.replace_gate_with_lut nl g in
  let r1 = Area.estimate lib nl and r2 = Area.estimate lib nl2 in
  Alcotest.(check bool) "lut bigger than gate" true
    (Area.overhead_pct ~base:r1 ~modified:r2 > 0.)

let () =
  Alcotest.run "sttc_analysis"
    [
      ( "sta",
        [
          Alcotest.test_case "chain delay" `Quick test_sta_chain_delay;
          Alcotest.test_case "critical path" `Quick test_sta_critical_path;
          Alcotest.test_case "pipeline stages" `Quick test_sta_pipeline_stages;
          Alcotest.test_case "slack" `Quick test_sta_slack;
          Alcotest.test_case "lut slows path" `Quick test_sta_lut_slows_path;
          Alcotest.test_case "worst paths report" `Quick test_sta_worst_paths_report;
        ] );
      ( "paths",
        [
          Alcotest.test_case "find io path" `Quick test_paths_find_io_path;
          Alcotest.test_case "segments" `Quick test_paths_segments;
          Alcotest.test_case "sample sorted/deduped" `Quick
            test_paths_sample_sorted_and_deduped;
          Alcotest.test_case "critical excluded" `Quick
            test_paths_sample_excludes_critical;
          Alcotest.test_case "fraction validation" `Quick
            test_paths_fraction_validation;
        ] );
      ( "activity",
        [
          Alcotest.test_case "constants" `Quick test_activity_constants;
          Alcotest.test_case "gate probabilities" `Quick
            test_activity_gate_probabilities;
          Alcotest.test_case "pi probability" `Quick test_activity_pi_probability;
          Alcotest.test_case "sequential fixpoint" `Quick
            test_activity_sequential_fixpoint;
          Alcotest.test_case "unconfigured lut" `Quick test_activity_unconfigured_lut;
          Alcotest.test_case "bounds on random circuits" `Quick
            test_activity_bounds_property;
        ] );
      ( "power",
        [
          Alcotest.test_case "report consistency" `Quick test_power_report_consistency;
          Alcotest.test_case "lut increases power" `Quick test_power_lut_increases;
          Alcotest.test_case "scales with clock" `Quick test_power_scales_with_clock;
        ] );
      ( "area",
        [
          Alcotest.test_case "report" `Quick test_area_report;
          Alcotest.test_case "lut overhead" `Quick test_area_lut_overhead;
        ] );
    ]
