(* Tests for the lib/serve subsystem: the Request/Response wire codec
   (round trips and malformed-frame rejection), the Session netlist
   cache (hits return the same parsed value, capacity 0 disables, LRU
   eviction), and the daemon itself — concurrent clients receiving
   byte-identical responses to the offline handler, bounded-queue
   backpressure answering Overloaded instead of hanging, and cache-hit
   accounting surfaced through the stats verb. *)

module Request = Sttc_serve.Request
module Response = Sttc_serve.Response
module Session = Sttc_serve.Session
module Handler = Sttc_serve.Handler
module Server = Sttc_serve.Server
module Client = Sttc_serve.Client
module Flow = Sttc_core.Flow
module Harness = Sttc_attack.Harness
module Manifest = Sttc_campaign.Manifest
module Json = Sttc_obs.Json
module Metrics = Sttc_obs.Metrics
module Obs = Sttc_obs.Obs

let req ?id ?timeout_s payload = { Request.id; timeout_s; payload }

let s27_text =
  Sttc_netlist.Bench_io.to_string (Sttc_experiments.Runner.build_circuit "s27")

let protect_payload ?(source = Request.Named "s27") ?(seed = 1) () =
  Request.Protect
    {
      source;
      algorithm = Flow.Independent { count = 3 };
      config = Manifest.default_config;
      seed;
      backend = "stt";
      sign_off = false;
      emit_foundry = false;
      emit_bitstream = false;
      emit_verilog = false;
      timing = false;
    }

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sttc-serve-test-%d-%d.sock" (Unix.getpid ()) !n)

(* ---------- request codec ---------- *)

let roundtrip_request r =
  let line = Request.to_string r in
  match Request.of_string line with
  | Error e -> Alcotest.failf "decode failed on %s: %s" line e
  | Ok r' ->
      Alcotest.(check string)
        ("request round trip: " ^ line)
        line (Request.to_string r')

let test_request_roundtrip () =
  roundtrip_request (req ~id:"a1" (protect_payload ()));
  roundtrip_request
    (req ~timeout_s:2.5
       (protect_payload
          ~source:(Request.Inline { name = "s27"; text = s27_text })
          ~seed:7 ()));
  roundtrip_request
    (req
       (Request.Protect
          {
            source = Request.Named "c17";
            algorithm = Flow.Dependent;
            config =
              { Manifest.default_config with label = "hardened"; harden = true };
            seed = 3;
            backend = "stt";
            sign_off = true;
            emit_foundry = true;
            emit_bitstream = true;
            emit_verilog = true;
            timing = true;
          }));
  roundtrip_request
    (req ~id:"atk"
       (Request.Attack
          {
            source = Request.Named "s27";
            algorithm =
              Flow.Parametric
                { Sttc_core.Algorithms.default_parametric with
                  clock_factor = 1.3
                };
            seed = 2;
            backend = "tvd";
            config =
              Harness.Config.(
                default |> with_sat_timeout_s 5. |> with_jobs 2
                |> with_solver_mode Sttc_attack.Sat_attack.Scratch);
            timing = false;
          }));
  roundtrip_request
    (req
       (Request.Lint
          {
            source = Request.Inline { name = "x"; text = s27_text };
            algorithms = [ Flow.Independent { count = 2 }; Flow.Dependent ];
            semantic = true;
            seed = 4;
            fraction = Some 0.25;
            budget = Some 64;
            rules = [ "STR004" ];
            suppress = [ "SEC001" ];
            format = `Json;
          }));
  roundtrip_request (req Request.Stats);
  roundtrip_request (req ~id:"p" (Request.Ping { sleep_s = 0.25 }));
  roundtrip_request (req Request.Shutdown)

let test_request_defaults () =
  match Request.of_string {|{"verb":"protect","netlist":"s27"}|} with
  | Error e -> Alcotest.failf "minimal protect rejected: %s" e
  | Ok { payload = Request.Protect p; id = None; timeout_s = None } ->
      Alcotest.(check int) "default seed" Sttc_experiments.Runner.master_seed
        p.Request.seed;
      Alcotest.(check bool) "default algorithm"
        (p.Request.algorithm = Flow.Independent { count = 5 })
        true
  | Ok _ -> Alcotest.fail "decoded to an unexpected shape"

let test_malformed_frames () =
  let reject label line =
    match Request.of_string line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s was accepted: %s" label line
  in
  reject "truncated JSON" "{\"verb\":\"ping\"";
  reject "non-object" "[1,2,3]";
  reject "missing verb" "{\"netlist\":\"s27\"}";
  reject "unknown verb" {|{"verb":"explode"}|};
  reject "protect without netlist" {|{"verb":"protect"}|};
  reject "bad seed type" {|{"verb":"protect","netlist":"s27","seed":"one"}|};
  reject "bad timeout type" {|{"verb":"ping","timeout_s":"fast"}|};
  reject "bad solver mode"
    {|{"verb":"attack","netlist":"s27","config":{"solver_mode":"quantum"}}|};
  reject "bad lint format" {|{"verb":"lint","netlist":"s27","format":"xml"}|}

(* ---------- response codec ---------- *)

let roundtrip_response r =
  let line = Response.to_string r in
  match Response.of_string line with
  | Error e -> Alcotest.failf "decode failed on %s: %s" line e
  | Ok r' ->
      Alcotest.(check string)
        ("response round trip: " ^ line)
        line (Response.to_string r')

let test_response_roundtrip () =
  roundtrip_response
    (Response.Ok
       {
         id = Some "a1";
         payload =
           Response.Protect
             {
               report = "independent on s27\n";
               foundry_bench = Some "INPUT(a)\n";
               bitstream = Some "1 0110\n";
               programming_cost = Some "cost\n";
               verilog = None;
               sign_off = Some true;
             };
       });
  roundtrip_response
    (Response.Ok
       {
         id = None;
         payload = Response.Lint { rendered = "clean\n"; exit_code = 0 };
       });
  roundtrip_response (Response.Ok { id = None; payload = Response.Pong });
  roundtrip_response
    (Response.Ok { id = Some "s"; payload = Response.Shutting_down });
  roundtrip_response
    (Response.Error { id = Some "x"; message = "bad request: no verb" });
  roundtrip_response (Response.Overloaded { id = None })

let test_campaign_codec () =
  Obs.reset ();
  Obs.enable ();
  Metrics.incr ~by:42 "sat.decisions";
  Metrics.incr ~by:7 "sat.conflicts";
  let stats = Metrics.snapshot () in
  Obs.disable ();
  Obs.reset ();
  let campaign =
    {
      Harness.circuit = "s27";
      algorithm = "independent";
      lut_count = 3;
      entries =
        [
          {
            Harness.attack = "sat";
            verdict = Harness.Recovered;
            seconds = 0.25;
            oracle_queries = 11;
            detail = "11 iterations";
            sat_stats = Some stats;
          };
          {
            Harness.attack = "truth-table";
            verdict = Harness.Partial 0.75;
            seconds = 1.5;
            oracle_queries = 14;
            detail = "3/4 LUTs";
            sat_stats = None;
          };
          {
            Harness.attack = "brute-force";
            verdict = Harness.Resisted;
            seconds = 0.;
            oracle_queries = 0;
            detail = "space too large";
            sat_stats = None;
          };
        ];
    }
  in
  let j = Response.campaign_to_json campaign in
  match Response.campaign_of_json j with
  | Error e -> Alcotest.failf "campaign decode failed: %s" e
  | Ok c' ->
      Alcotest.(check string)
        "campaign json round trip"
        (Json.to_string j)
        (Json.to_string (Response.campaign_to_json c'))

(* ---------- session cache ---------- *)

let test_session_cache_identity () =
  let s = Session.create ~capacity:4 () in
  let source = Request.Inline { name = "s27"; text = s27_text } in
  match (Session.netlist s source, Session.netlist s source) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "second lookup returns the cached value" true
        (a == b)
  | Error e, _ | _, Error e -> Alcotest.failf "parse failed: %s" e

let test_session_capacity_zero () =
  let s = Session.create ~capacity:0 () in
  let source = Request.Inline { name = "s27"; text = s27_text } in
  match (Session.netlist s source, Session.netlist s source) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "capacity 0 re-parses every time" false (a == b)
  | Error e, _ | _, Error e -> Alcotest.failf "parse failed: %s" e

let test_session_eviction () =
  let s = Session.create ~capacity:1 () in
  let a = Request.Inline { name = "a"; text = s27_text } in
  let b = Request.Named "s27" in
  let first = Result.get_ok (Session.netlist s a) in
  ignore (Session.netlist s b);
  (* [a] was evicted to make room for [b]; a re-request re-parses *)
  let again = Result.get_ok (Session.netlist s a) in
  Alcotest.(check bool) "evicted entry is re-parsed" false (first == again)

let test_session_bad_source () =
  let s = Session.create () in
  (match Session.netlist s (Request.Named "nonexistent") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown named circuit accepted");
  match
    Session.netlist s (Request.Inline { name = "bad"; text = "INPUT((\n" })
  with
  | Error m ->
      Alcotest.(check bool)
        ("parse error carries design name: " ^ m)
        true
        (String.length m >= 4 && String.sub m 0 4 = "bad:")
  | Ok _ -> Alcotest.fail "garbage netlist accepted"

(* ---------- daemon integration ---------- *)

let start_server cfg =
  let socket = Server.Config.(cfg.socket) in
  if Sys.file_exists socket then Sys.remove socket;
  let d = Domain.spawn (fun () -> Server.run cfg) in
  let rec await tries =
    if Sys.file_exists socket then ()
    else if tries = 0 then Alcotest.failf "daemon never bound %s" socket
    else begin
      Unix.sleepf 0.02;
      await (tries - 1)
    end
  in
  await 250;
  d

let shutdown_server socket d =
  (match
     Client.with_connection socket (fun c ->
         Client.request c (req Request.Shutdown))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "shutdown failed: %s" e);
  Domain.join d;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

(* the same deterministic request must produce the same bytes from the
   daemon as from the offline handler — the one-API-two-transports
   contract the CLI relies on *)
let test_concurrent_byte_identity () =
  let mix c =
    [
      req ~id:(Printf.sprintf "%d-protect" c) (protect_payload ());
      req
        ~id:(Printf.sprintf "%d-inline" c)
        (protect_payload
           ~source:(Request.Inline { name = "s27"; text = s27_text })
           ~seed:(c + 1) ());
      req
        ~id:(Printf.sprintf "%d-lint" c)
        (Request.Lint
           {
             source = Request.Inline { name = "s27"; text = s27_text };
             algorithms = [ Flow.Independent { count = 2 } ];
             semantic = false;
             seed = 1;
             fraction = None;
             budget = None;
             rules = [];
             suppress = [];
             format = `Json;
           });
      req ~id:(Printf.sprintf "%d-ping" c) (Request.Ping { sleep_s = 0. });
    ]
  in
  let offline c =
    let session = Session.create () in
    List.map (fun r -> Response.to_string (Handler.handle session r)) (mix c)
  in
  let socket = fresh_socket () in
  let d =
    start_server
      Server.Config.(
        default |> with_socket socket |> with_jobs 2 |> with_queue_capacity 64)
  in
  let clients = [ 0; 1; 2; 3 ] in
  let domains =
    List.map
      (fun c ->
        Domain.spawn (fun () ->
            Client.with_connection socket (fun conn ->
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | r :: rest -> (
                      match Client.request conn r with
                      | Error _ as e -> e
                      | Ok resp -> go (Response.to_string resp :: acc) rest)
                in
                go [] (mix c))))
      clients
  in
  let got = List.map Domain.join domains in
  shutdown_server socket d;
  List.iter2
    (fun c result ->
      match result with
      | Error e -> Alcotest.failf "client %d failed: %s" c e
      | Ok lines ->
          List.iter2
            (Alcotest.(check string)
               (Printf.sprintf "client %d matches offline bytes" c))
            (offline c) lines)
    clients got

(* a full queue must answer Overloaded immediately — clients never hang *)
let test_backpressure_overloaded () =
  let socket = fresh_socket () in
  let d =
    start_server
      Server.Config.(
        default |> with_socket socket |> with_jobs 1 |> with_queue_capacity 1)
  in
  let result =
    Client.with_connection socket (fun conn ->
        let send i s =
          match
            Client.send_raw conn
              (Request.to_string
                 (req ~id:(string_of_int i) (Request.Ping { sleep_s = s })))
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "send %d failed: %s" i e
        in
        (* occupy the single worker, give intake time to dispatch it,
           then flood: queue holds one, the rest must bounce *)
        send 0 0.5;
        Unix.sleepf 0.1;
        for i = 1 to 6 do
          send i 0.
        done;
        let rec collect acc n =
          if n = 0 then Ok acc
          else
            match Client.recv_line conn with
            | Error _ as e -> e
            | Ok line -> (
                match Response.of_string line with
                | Error e -> Alcotest.failf "bad response frame %s: %s" line e
                | Ok r -> collect (r :: acc) (n - 1))
        in
        collect [] 7)
  in
  match result with
  | Error e ->
      (try ignore (shutdown_server socket d) with _ -> ());
      Alcotest.failf "backpressure client failed: %s" e
  | Ok responses ->
      shutdown_server socket d;
      let overloaded =
        List.length
          (List.filter
             (function Response.Overloaded _ -> true | _ -> false)
             responses)
      in
      let pongs =
        List.length
          (List.filter
             (function
               | Response.Ok { payload = Response.Pong; _ } -> true
               | _ -> false)
             responses)
      in
      Alcotest.(check int) "every request answered" 7 (List.length responses);
      Alcotest.(check bool) "at least one Overloaded" true (overloaded >= 1);
      Alcotest.(check bool) "busy + queued pings still answered" true
        (pongs >= 2);
      Alcotest.(check int) "no other outcomes" 7 (overloaded + pongs)

(* repeated requests for the same netlist hit the warm cache, and the
   stats verb exposes the count *)
let test_cache_hits_via_stats () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      let socket = fresh_socket () in
      let d =
        start_server
          Server.Config.(
            default |> with_socket socket |> with_jobs 1
            |> with_cache_capacity 8)
      in
      let result =
        Client.with_connection socket (fun conn ->
            let p =
              req
                (protect_payload
                   ~source:(Request.Inline { name = "s27"; text = s27_text })
                   ())
            in
            match (Client.request conn p, Client.request conn p) with
            | Ok (Response.Ok _), Ok (Response.Ok _) ->
                Client.request conn (req Request.Stats)
            | (Error e, _ | _, Error e) -> Error e
            | _ -> Error "protect did not succeed")
      in
      match result with
      | Error e ->
          (try ignore (shutdown_server socket d) with _ -> ());
          Alcotest.failf "cache client failed: %s" e
      | Ok (Response.Ok { payload = Response.Stats snap; _ }) ->
          shutdown_server socket d;
          Alcotest.(check bool) "at least one cache hit" true
            (Metrics.counter_value snap "serve.cache_hits" >= 1);
          Alcotest.(check bool) "first protect missed the base-STA memo" true
            (Metrics.counter_value snap "serve.sta_cache_misses" >= 1);
          Alcotest.(check bool) "second protect hit the base-STA memo" true
            (Metrics.counter_value snap "serve.sta_cache_hits" >= 1);
          Alcotest.(check bool) "requests counted" true
            (Metrics.counter_value snap "serve.requests" >= 2)
      | Ok _ ->
          (try ignore (shutdown_server socket d) with _ -> ());
          Alcotest.fail "stats verb returned an unexpected payload")

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          Alcotest.test_case "request round trips" `Quick
            test_request_roundtrip;
          Alcotest.test_case "request defaults" `Quick test_request_defaults;
          Alcotest.test_case "malformed frames rejected" `Quick
            test_malformed_frames;
          Alcotest.test_case "response round trips" `Quick
            test_response_roundtrip;
          Alcotest.test_case "campaign codec" `Quick test_campaign_codec;
        ] );
      ( "session",
        [
          Alcotest.test_case "cache identity" `Quick
            test_session_cache_identity;
          Alcotest.test_case "capacity zero" `Quick test_session_capacity_zero;
          Alcotest.test_case "lru eviction" `Quick test_session_eviction;
          Alcotest.test_case "bad sources" `Quick test_session_bad_source;
        ] );
      ( "server",
        [
          Alcotest.test_case "concurrent byte identity" `Quick
            test_concurrent_byte_identity;
          Alcotest.test_case "backpressure overloaded" `Quick
            test_backpressure_overloaded;
          Alcotest.test_case "cache hits via stats" `Quick
            test_cache_hits_via_stats;
        ] );
    ]
