(* Unit and property tests for Sttc_util: Lognum, Rng, Stats, Growable,
   Timing, Table. *)

module Lognum = Sttc_util.Lognum
module Rng = Sttc_util.Rng
module Stats = Sttc_util.Stats
module Growable = Sttc_util.Growable
module Timing = Sttc_util.Timing
module Table = Sttc_util.Table

let check_float = Alcotest.(check (float 1e-9))
let check_close msg expected got =
  Alcotest.(check (float (Float.abs expected *. 1e-9 +. 1e-12))) msg expected got

(* ---------- Lognum ---------- *)

let test_lognum_basics () =
  check_close "one" 1. (Lognum.to_float Lognum.one);
  check_close "of_float" 42. (Lognum.to_float (Lognum.of_float 42.));
  Alcotest.(check bool) "zero is zero" true (Lognum.is_zero Lognum.zero);
  check_float "zero to_float" 0. (Lognum.to_float Lognum.zero)

let test_lognum_mul () =
  let a = Lognum.of_float 6. and b = Lognum.of_float 7. in
  check_close "6*7" 42. (Lognum.to_float (Lognum.mul a b));
  Alcotest.(check bool) "x*0 = 0" true
    (Lognum.is_zero (Lognum.mul a Lognum.zero))

let test_lognum_add () =
  let a = Lognum.of_float 1.5 and b = Lognum.of_float 2.5 in
  check_close "1.5+2.5" 4. (Lognum.to_float (Lognum.add a b));
  check_close "x+0" 1.5 (Lognum.to_float (Lognum.add a Lognum.zero));
  check_close "0+x" 2.5 (Lognum.to_float (Lognum.add Lognum.zero b))

let test_lognum_pow () =
  check_close "2^10" 1024. (Lognum.to_float (Lognum.pow (Lognum.of_int 2) 10));
  check_close "x^0" 1. (Lognum.to_float (Lognum.pow (Lognum.of_float 9.) 0));
  Alcotest.(check bool) "0^5 = 0" true (Lognum.is_zero (Lognum.pow Lognum.zero 5));
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Lognum.pow: negative exponent") (fun () ->
      ignore (Lognum.pow Lognum.one (-1)))

let test_lognum_div () =
  check_close "42/6" 7.
    (Lognum.to_float (Lognum.div (Lognum.of_float 42.) (Lognum.of_float 6.)));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Lognum.div Lognum.one Lognum.zero))

let test_lognum_huge () =
  (* the s38584 figure from the paper: 6.07e219 must survive a product *)
  let n = Lognum.prod (List.init 166 (fun _ -> Lognum.of_float 21.2)) in
  let e = Lognum.log10 n in
  Alcotest.(check bool) "exponent around 220" true (e > 200. && e < 240.);
  (* beyond float range *)
  let big = Lognum.pow (Lognum.of_int 10) 1000 in
  check_float "log10 of 10^1000" 1000. (Lognum.log10 big);
  Alcotest.(check bool) "to_float saturates" true
    (Lognum.to_float big = infinity)

let test_lognum_to_string () =
  Alcotest.(check string) "zero" "0" (Lognum.to_string Lognum.zero);
  Alcotest.(check string) "small int" "42" (Lognum.to_string (Lognum.of_int 42));
  Alcotest.(check string) "sci" "6.07E+219"
    (Lognum.to_string (Lognum.of_log10 (Stdlib.log10 6.07 +. 219.)));
  (* mantissa rounding to 10.0 must carry into the exponent *)
  Alcotest.(check string) "carry" "1.00E+10"
    (Lognum.to_string (Lognum.of_log10 (Stdlib.log10 9.9999 +. 9.)))

let test_lognum_compare () =
  let a = Lognum.of_float 3. and b = Lognum.of_float 4. in
  Alcotest.(check bool) "3 < 4" true (Lognum.compare a b < 0);
  Alcotest.(check bool) "max" true (Lognum.equal (Lognum.max a b) b);
  Alcotest.(check bool) "min" true (Lognum.equal (Lognum.min a b) a);
  Alcotest.(check bool) "zero smallest" true
    (Lognum.compare Lognum.zero a < 0)

let test_lognum_years () =
  (* 1e9 clocks at 1e9/s = 1 second = 3.17e-8 years *)
  let y = Lognum.clocks_to_years ~rate_hz:1e9 (Lognum.of_float 1e9) in
  check_close "one second in years" (1. /. (365.25 *. 24. *. 3600.))
    (Lognum.to_float y)

let lognum_props =
  let pos_float = QCheck2.Gen.map (fun x -> Float.abs x +. 1e-6) QCheck2.Gen.float in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"lognum mul matches float" ~count:500
         QCheck2.Gen.(pair pos_float pos_float)
         (fun (a, b) ->
           QCheck2.assume (a < 1e100 && b < 1e100 && a > 1e-100 && b > 1e-100);
           let got = Lognum.to_float Lognum.(of_float a * of_float b) in
           let expected = a *. b in
           Float.abs (got -. expected) <= 1e-9 *. Float.abs expected));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"lognum add matches float" ~count:500
         QCheck2.Gen.(pair pos_float pos_float)
         (fun (a, b) ->
           QCheck2.assume (a < 1e100 && b < 1e100 && a > 1e-100 && b > 1e-100);
           let got = Lognum.to_float Lognum.(of_float a + of_float b) in
           let expected = a +. b in
           Float.abs (got -. expected) <= 1e-9 *. Float.abs expected));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"lognum add commutative" ~count:500
         QCheck2.Gen.(pair pos_float pos_float)
         (fun (a, b) ->
           let x = Lognum.of_float a and y = Lognum.of_float b in
           Float.abs (Lognum.log10 Lognum.(x + y) -. Lognum.log10 Lognum.(y + x))
           <= 1e-12));
  ]

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.make 1 and b = Rng.make 1 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.make 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_split_independent () =
  let a = Rng.make 5 in
  let b = Rng.split a in
  (* drawing from b must not replay a's stream *)
  let va = List.init 10 (fun _ -> Rng.int a 1_000_000) in
  let vb = List.init 10 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (va <> vb)

let test_rng_float_bounds () =
  let rng = Rng.make 3 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (v >= 0. && v < 2.5)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.make 11 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_distinct () =
  let rng = Rng.make 13 in
  let arr = Array.init 30 Fun.id in
  let s = Rng.sample rng 10 arr in
  Alcotest.(check int) "size" 10 (Array.length s);
  let module Int_set = Set.Make (Int) in
  Alcotest.(check int) "distinct" 10
    (Int_set.cardinal (Int_set.of_list (Array.to_list s)));
  (* oversampling clamps *)
  Alcotest.(check int) "clamped" 30 (Array.length (Rng.sample rng 100 arr))

let test_rng_uniformity () =
  (* coarse chi-square-free check: each bucket within 20 % of expectation *)
  let rng = Rng.make 99 in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Rng.int rng 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 8 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform" i)
        true
        (abs (c - expected) < expected / 5))
    buckets

(* ---------- Stats ---------- *)

let test_stats_mean () =
  check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check_float "empty mean" 0. (Stats.mean [])

let test_stats_stdev () =
  check_float "constant stdev" 0. (Stats.stdev [ 5.; 5.; 5. ]);
  check_close "known stdev" 1. (Stats.stdev [ 1.; 3.; 1.; 3. ]);
  check_float "singleton" 0. (Stats.stdev [ 7. ])

let test_stats_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ] in
  check_float "median" 5. (Stats.median xs);
  check_float "p100" 10. (Stats.percentile 100. xs);
  check_float "p10" 1. (Stats.percentile 10. xs);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Stats.percentile 50. []))

let test_stats_overhead () =
  check_float "overhead" 50. (Stats.relative_overhead ~base:2. ~modified:3.);
  check_float "zero base" 0. (Stats.relative_overhead ~base:0. ~modified:3.);
  check_float "improvement" (-25.)
    (Stats.relative_overhead ~base:4. ~modified:3.)

(* ---------- Growable ---------- *)

let test_growable_push_get () =
  let g = Growable.create () in
  for i = 0 to 99 do
    Alcotest.(check int) "index" i (Growable.push g (i * 2))
  done;
  Alcotest.(check int) "length" 100 (Growable.length g);
  Alcotest.(check int) "get" 84 (Growable.get g 42);
  Growable.set g 42 0;
  Alcotest.(check int) "set" 0 (Growable.get g 42)

let test_growable_pop () =
  let g = Growable.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "pop" 3 (Growable.pop g);
  Alcotest.(check int) "last" 2 (Growable.last g);
  Alcotest.(check int) "len" 2 (Growable.length g);
  Growable.clear g;
  Alcotest.(check bool) "empty" true (Growable.is_empty g);
  Alcotest.check_raises "pop empty" (Invalid_argument "Growable.pop: empty")
    (fun () -> ignore (Growable.pop g))

let test_growable_bounds () =
  let g = Growable.of_list [ 1 ] in
  Alcotest.check_raises "oob get" (Invalid_argument "Growable.get: index")
    (fun () -> ignore (Growable.get g 1));
  Alcotest.check_raises "oob set" (Invalid_argument "Growable.set: index")
    (fun () -> Growable.set g (-1) 0)

let test_growable_iter_fold () =
  let g = Growable.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sum" 10 (Growable.fold ( + ) 0 g);
  let acc = ref [] in
  Growable.iteri (fun i x -> acc := (i, x) :: !acc) g;
  Alcotest.(check int) "iteri count" 4 (List.length !acc);
  Alcotest.(check bool) "exists" true (Growable.exists (fun x -> x = 3) g);
  Alcotest.(check bool) "not exists" false (Growable.exists (fun x -> x = 9) g);
  Growable.truncate g 2;
  Alcotest.(check (list int)) "truncate" [ 1; 2 ] (Growable.to_list g)

(* ---------- Timing ---------- *)

let test_timing_format () =
  Alcotest.(check string) "zero" "00:00.0" (Timing.format_min_sec 0.);
  Alcotest.(check string) "75.5s" "01:15.5" (Timing.format_min_sec 75.5);
  Alcotest.(check string) "44s" "00:44.0" (Timing.format_min_sec 44.0);
  Alcotest.check_raises "negative"
    (Invalid_argument "Timing.format_min_sec: negative") (fun () ->
      ignore (Timing.format_min_sec (-1.)))

let test_timing_time () =
  let x, dt = Timing.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (dt >= 0.)

let test_timing_nested_rejected () =
  (* a nested with_timeout would clobber the single process timer; it
     must be refused loudly instead of silently disarming the outer
     budget *)
  Alcotest.(check bool) "nested call raises Invalid_argument" true
    (match
       Timing.with_timeout ~seconds:5. (fun () ->
           try
             ignore (Timing.with_timeout ~seconds:1. (fun () -> 0));
             false
           with Invalid_argument _ -> true)
     with
    | Ok flagged -> flagged
    | Error `Timeout -> false);
  (* the guard is released on the way out: a fresh outer call works *)
  match Timing.with_timeout ~seconds:5. (fun () -> 41 + 1) with
  | Ok n -> Alcotest.(check int) "timer re-armable" 42 n
  | Error `Timeout -> Alcotest.fail "trivial body timed out"

let test_timing_off_main_domain_rejected () =
  (* SIGALRM timers are per-process: arming one from a worker domain
     would race the main domain's budget, so it must be refused *)
  let raised =
    Domain.spawn (fun () ->
        try
          ignore (Timing.with_timeout ~seconds:1. (fun () -> 0));
          false
        with Invalid_argument _ -> true)
    |> Domain.join
  in
  Alcotest.(check bool) "non-main domain raises" true raised;
  (* the refusal leaves the main domain's timer usable *)
  match Timing.with_timeout ~seconds:5. (fun () -> 6 * 7) with
  | Ok n -> Alcotest.(check int) "main domain still works" 42 n
  | Error `Timeout -> Alcotest.fail "trivial body timed out"

(* ---------- Pool ---------- *)

module Pool = Sttc_util.Pool

let test_pool_map_orders_results () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let items = List.init 97 Fun.id in
      let out = Pool.map_exn pool (fun x -> (2 * x) + 1) items in
      Alcotest.(check (list int))
        "submission order kept"
        (List.map (fun x -> (2 * x) + 1) items)
        out)

let test_pool_single_worker_matches_serial () =
  let items = List.init 23 (fun i -> i * i) in
  let serial = List.map string_of_int items in
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (list string))
        "jobs=1 equals List.map" serial
        (Pool.map_exn pool string_of_int items))

let test_pool_zero_jobs_rejected () =
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_pool_captures_exceptions () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let out =
        Pool.map pool
          (fun x -> if x mod 10 = 3 then failwith "boom" else x)
          (List.init 30 Fun.id)
      in
      let errors =
        List.filter_map (function Error e -> Some e | Ok _ -> None) out
      in
      Alcotest.(check (list int))
        "exactly the failing indices" [ 3; 13; 23 ]
        (List.sort compare (List.map (fun e -> e.Pool.index) errors));
      Alcotest.(check bool) "message captured" true
        (List.for_all
           (fun e ->
             let n = String.length e.Pool.exn in
             let rec has i =
               i + 4 <= n && (String.sub e.Pool.exn i 4 = "boom" || has (i + 1))
             in
             has 0)
           errors);
      (* the successes around the failures are all intact *)
      Alcotest.(check int) "27 successes" 27
        (List.length (List.filter Result.is_ok out)))

let test_pool_map_exn_raises_first_error () =
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Pool.map_exn pool
          (fun x -> if x >= 5 then raise Exit else x)
          (List.init 9 Fun.id)
      with
      | _ -> Alcotest.fail "must raise"
      | exception Pool.Task_error e ->
          Alcotest.(check int) "smallest failing index" 5 e.Pool.index)

let test_pool_deadline_expires () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let out =
        Pool.map ~deadline_s:0.005 pool
          (fun slow ->
            if slow then begin
              let stop = Pool.now_s () +. 0.05 in
              while Pool.now_s () < stop do
                Pool.check_deadline ()
              done;
              "survived"
            end
            else "fast")
          [ true; false ]
      in
      match out with
      | [ Error e; Ok "fast" ] ->
          Alcotest.(check bool) "deadline error" true
            (e.Pool.exn = Printexc.to_string Pool.Deadline_exceeded)
      | _ -> Alcotest.fail "slow task must expire, fast task must pass")

let test_pool_deadline_noop_outside_tasks () =
  (* polling from ordinary code (no armed deadline) must be harmless *)
  Pool.check_deadline ();
  Alcotest.(check (option (float 1.))) "no deadline armed" None
    (Pool.remaining_s ())

let test_pool_map_reduce_order_stable () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let words = List.init 26 (fun i -> String.make 1 (Char.chr (65 + i))) in
      (* string concatenation is non-commutative: only a submission-order
         reduction gives the alphabet back *)
      let s =
        Pool.map_reduce pool ~map:Fun.id ~reduce:( ^ ) ~init:"" words
      in
      Alcotest.(check string) "alphabet" "ABCDEFGHIJKLMNOPQRSTUVWXYZ" s)

let test_pool_shutdown_refuses_new_work () =
  let pool = Pool.create ~jobs:2 () in
  Alcotest.(check (list int)) "works before shutdown" [ 2; 4 ]
    (Pool.map_exn pool (fun x -> 2 * x) [ 1; 2 ]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool Fun.id [ 1 ]))

let test_pool_empty_and_chunked () =
  Pool.with_pool ~chunk:2 ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "empty bag" [] (Pool.map_exn pool Fun.id []);
      Alcotest.(check (list int))
        "chunked bag keeps order"
        (List.init 11 Fun.id)
        (Pool.map_exn pool Fun.id (List.init 11 Fun.id)))

let test_pool_worthwhile () =
  (* one worker or one task can never beat the serial loop *)
  Alcotest.(check bool) "jobs=1" false
    (Pool.worthwhile ~jobs:1 ~tasks:100 ~work:infinity ());
  Alcotest.(check bool) "single task" false
    (Pool.worthwhile ~jobs:4 ~tasks:1 ~work:infinity ());
  (* the work estimate gates fan-out at min_work *)
  Alcotest.(check bool) "below min_work" false
    (Pool.worthwhile ~min_work:10. ~jobs:4 ~tasks:8 ~work:9.99 ());
  Alcotest.(check bool) "at min_work" true
    (Pool.worthwhile ~min_work:10. ~jobs:4 ~tasks:8 ~work:10. ());
  Alcotest.(check bool) "default min_work" true
    (Pool.worthwhile ~jobs:2 ~tasks:2 ~work:1. ());
  (* callers with no estimate pass infinity and rely on the task count *)
  Alcotest.(check bool) "unknown work fans out" true
    (Pool.worthwhile ~jobs:2 ~tasks:2 ~work:infinity ())

(* ---------- Table ---------- *)

let test_table_render () =
  let t = Table.create ~headers:[ ("A", Table.Left); ("B", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0
    && Option.is_some (String.index_opt s 'A'));
  (* row arity is checked *)
  Alcotest.check_raises "bad arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_alignment () =
  let t = Table.create ~headers:[ ("N", Table.Right) ] in
  Table.add_row t [ "7" ];
  Table.add_row t [ "123" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  (* the "7" must be right-aligned: padded on the left *)
  let row7 = List.find (fun l -> String.length l > 0 && String.contains l '7' && not (String.contains l '1')) lines in
  Alcotest.(check bool) "right aligned" true
    (Option.is_some (String.index_opt row7 ' '))

let () =
  Alcotest.run "sttc_util"
    [
      ( "lognum",
        [
          Alcotest.test_case "basics" `Quick test_lognum_basics;
          Alcotest.test_case "mul" `Quick test_lognum_mul;
          Alcotest.test_case "add" `Quick test_lognum_add;
          Alcotest.test_case "pow" `Quick test_lognum_pow;
          Alcotest.test_case "div" `Quick test_lognum_div;
          Alcotest.test_case "huge values" `Quick test_lognum_huge;
          Alcotest.test_case "to_string" `Quick test_lognum_to_string;
          Alcotest.test_case "compare" `Quick test_lognum_compare;
          Alcotest.test_case "years conversion" `Quick test_lognum_years;
        ]
        @ lognum_props );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "coarse uniformity" `Quick test_rng_uniformity;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stdev" `Quick test_stats_stdev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "relative overhead" `Quick test_stats_overhead;
        ] );
      ( "growable",
        [
          Alcotest.test_case "push/get/set" `Quick test_growable_push_get;
          Alcotest.test_case "pop/last/clear" `Quick test_growable_pop;
          Alcotest.test_case "bounds" `Quick test_growable_bounds;
          Alcotest.test_case "iter/fold/truncate" `Quick test_growable_iter_fold;
        ] );
      ( "timing",
        [
          Alcotest.test_case "format_min_sec" `Quick test_timing_format;
          Alcotest.test_case "time" `Quick test_timing_time;
          Alcotest.test_case "nested timeout rejected" `Quick
            test_timing_nested_rejected;
          Alcotest.test_case "off-main-domain timeout rejected" `Quick
            test_timing_off_main_domain_rejected;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map keeps order" `Quick
            test_pool_map_orders_results;
          Alcotest.test_case "jobs=1 matches serial" `Quick
            test_pool_single_worker_matches_serial;
          Alcotest.test_case "jobs=0 rejected" `Quick
            test_pool_zero_jobs_rejected;
          Alcotest.test_case "exceptions captured per task" `Quick
            test_pool_captures_exceptions;
          Alcotest.test_case "map_exn raises first error" `Quick
            test_pool_map_exn_raises_first_error;
          Alcotest.test_case "cooperative deadline expires" `Quick
            test_pool_deadline_expires;
          Alcotest.test_case "deadline no-op outside tasks" `Quick
            test_pool_deadline_noop_outside_tasks;
          Alcotest.test_case "map_reduce order stable" `Quick
            test_pool_map_reduce_order_stable;
          Alcotest.test_case "shutdown refuses new work" `Quick
            test_pool_shutdown_refuses_new_work;
          Alcotest.test_case "empty and chunked bags" `Quick
            test_pool_empty_and_chunked;
          Alcotest.test_case "worthwhile heuristic" `Quick
            test_pool_worthwhile;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
        ] );
    ]
