(* End-to-end integration tests: the whole Figure 2 flow on ISCAS'89
   structural twins, file-format interop between stages, and the
   experiment runner that regenerates the paper's tables. *)

module Netlist = Sttc_netlist.Netlist
module Bench_io = Sttc_netlist.Bench_io
module Profiles = Sttc_netlist.Iscas_profiles
module Flow = Sttc_core.Flow

(* strict single-attempt protection via the unified Flow.run entry point *)
let protect ?seed ?fraction ?hardening alg nl =
  (Flow.run ?seed ?fraction ?hardening ~policy:Flow.Strict alg nl)
    .Flow.accepted

module Hybrid = Sttc_core.Hybrid
module Runner = Sttc_experiments.Runner

let lib = Sttc_tech.Library.cmos90

(* full flow: generate -> write .bench -> reparse -> protect -> write
   hybrid .bench -> reparse -> program -> verify *)
let test_flow_through_files () =
  let nl = Profiles.build_by_name "s820" in
  let tmp1 = Filename.temp_file "sttc_base" ".bench" in
  Bench_io.write_file tmp1 nl;
  let nl2 = Bench_io.parse_file tmp1 in
  (match Sttc_sim.Equiv.check_sat nl nl2 with
  | Sttc_sim.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "write/parse must preserve semantics");
  let r = protect ~seed:1 (Flow.Independent { count = 5 }) nl2 in
  let tmp2 = Filename.temp_file "sttc_hybrid" ".bench" in
  Bench_io.write_file tmp2 (Hybrid.foundry_view r.Flow.hybrid);
  let foundry = Bench_io.parse_file tmp2 in
  Alcotest.(check int) "luts survive the file" 5
    (List.length (Netlist.luts foundry));
  (* program the reparsed foundry view with the bitstream, matching by
     name since reparsing renumbers nodes *)
  let configs =
    List.map
      (fun (id, c) ->
        (Netlist.find_exn foundry
           (Netlist.name (Hybrid.foundry_view r.Flow.hybrid) id), c))
      (Hybrid.bitstream r.Flow.hybrid)
  in
  let programmed = Sttc_netlist.Transform.program_luts foundry configs in
  (match Sttc_sim.Equiv.check_sat nl programmed with
  | Sttc_sim.Equiv.Equivalent -> ()
  | Sttc_sim.Equiv.Different f ->
      Alcotest.fail ("programmed file differs at " ^ f.Sttc_sim.Equiv.signal)
  | Sttc_sim.Equiv.Inconclusive m -> Alcotest.fail m);
  Sys.remove tmp1;
  Sys.remove tmp2

let test_all_profiles_protect_and_signoff () =
  (* every small benchmark x every algorithm: flow completes and the
     programmed hybrid simulates identically to the original *)
  List.iter
    (fun info ->
      if info.Profiles.n_gates <= 700 then begin
        let nl = Profiles.build info in
        List.iter
          (fun alg ->
            let r = protect ~seed:11 alg nl in
            Alcotest.(check bool)
              (info.Profiles.name ^ "/" ^ Flow.algorithm_name alg)
              true
              (Flow.sign_off ~method_:(`Random 4096) r))
          Flow.default_algorithms
      end)
    Profiles.all

let test_verilog_emission_for_hybrid () =
  let nl = Profiles.build_by_name "s820" in
  let r = protect ~seed:2 Flow.Dependent nl in
  let v = Sttc_netlist.Verilog_out.to_string (Hybrid.programmed r.Flow.hybrid) in
  let contains needle =
    let n = String.length needle and h = String.length v in
    let rec go i = (i + n <= h) && (String.sub v i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module" true (contains "module s820");
  Alcotest.(check bool) "stt lut instances" true (contains "STT_LUT")

let test_overheads_decrease_with_size () =
  (* the central Table I trend: independent-selection overheads shrink as
     the circuit grows *)
  let overhead name =
    let nl = Profiles.build_by_name name in
    let r = protect ~seed:Runner.master_seed (Flow.Independent { count = 5 }) nl in
    (r.Flow.overhead.Sttc_core.Ppa.power_pct, r.Flow.overhead.Sttc_core.Ppa.area_pct)
  in
  let p_small, a_small = overhead "s641" in
  let p_large, a_large = overhead "s5378a" in
  Alcotest.(check bool)
    (Printf.sprintf "power shrinks (%.2f -> %.2f)" p_small p_large)
    true (p_large < p_small);
  Alcotest.(check bool)
    (Printf.sprintf "area shrinks (%.2f -> %.2f)" a_small a_large)
    true (a_large < a_small)

let test_security_grows_with_algorithm () =
  (* Fig. 3's ordering on one benchmark: dependent/parametric demand
     astronomically more clocks than independent *)
  let nl = Profiles.build_by_name "s953" in
  let clocks alg pick =
    let r = protect ~seed:Runner.master_seed alg nl in
    pick r.Flow.security
  in
  let n1 =
    clocks (Flow.Independent { count = 5 }) (fun s -> s.Sttc_core.Security.n_indep)
  in
  let n2 = clocks Flow.Dependent (fun s -> s.Sttc_core.Security.n_dep) in
  Alcotest.(check bool) "dep >> indep" true
    (Sttc_util.Lognum.log10 n2 > Sttc_util.Lognum.log10 n1 +. 3.)

let test_genuine_s27_flow_and_attack () =
  (* the real ISCAS'89 s27 through the whole pipeline: protect, sign off,
     attack, recover *)
  let nl = Sttc_netlist.Iscas_data.s27 () in
  let r = protect ~seed:1 (Flow.Independent { count = 3 }) nl in
  Alcotest.(check bool) "sign-off" true (Flow.sign_off r);
  (match Sttc_attack.Sat_attack.run ~timeout_s:20. r.Flow.hybrid with
  | Sttc_attack.Sat_attack.Broken b ->
      Alcotest.(check bool) "recovered" true
        (Sttc_attack.Sat_attack.verify_break r.Flow.hybrid b.bitstream)
  | Sttc_attack.Sat_attack.Exhausted e ->
      Alcotest.fail ("s27 attack exhausted: " ^ e.reason));
  (* scan-disabled variant also terminates on so small a circuit *)
  match Sttc_attack.Sat_attack.run_sequential ~frames:4 ~timeout_s:30. r.Flow.hybrid with
  | Sttc_attack.Sat_attack.Broken _ | Sttc_attack.Sat_attack.Exhausted _ -> ()

let test_baselines_smoke () =
  let s = Runner.baselines () in
  Alcotest.(check bool) "mentions camouflaging" true
    (let needle = "camouflaging" in
     let n = String.length needle and h = String.length s in
     let rec go i = (i + n <= h) && (String.sub s i n = needle || go (i + 1)) in
     go 0)

let test_runner_quick_rows () =
  let rows = Runner.rows Runner.Config.(default |> with_quick true) in
  Alcotest.(check bool) "seven small benchmarks" true (List.length rows = 7);
  List.iter
    (fun row ->
      Alcotest.(check int) "three algorithms" 3
        (List.length row.Sttc_core.Report.results))
    rows;
  (* the three renderers accept the rows *)
  Alcotest.(check bool) "table1" true (String.length (Runner.table1 rows) > 0);
  Alcotest.(check bool) "table2" true (String.length (Runner.table2 rows) > 0);
  Alcotest.(check bool) "fig3" true (String.length (Runner.fig3 rows) > 0)

(* Table I and Fig. 3 depend only on the seed, so a pool fan-out must
   render them byte-identically to a serial run.  Table II carries wall
   clock, so only its deterministic shape is compared. *)
let test_parallel_rows_match_serial () =
  let run jobs =
    Runner.rows
      Runner.Config.(
        default |> with_only [ "s641"; "s820" ] |> with_jobs jobs)
  in
  let serial = run 1 and parallel = run 4 in
  Alcotest.(check string) "Table I byte-identical" (Runner.table1 serial)
    (Runner.table1 parallel);
  Alcotest.(check string) "Fig. 3 byte-identical" (Runner.fig3 serial)
    (Runner.fig3 parallel);
  List.iter2
    (fun s p ->
      Alcotest.(check string) "circuit" s.Sttc_core.Report.circuit
        p.Sttc_core.Report.circuit;
      Alcotest.(check (list string))
        "algorithm order"
        (List.map fst s.Sttc_core.Report.results)
        (List.map fst p.Sttc_core.Report.results))
    serial parallel

let test_parallel_events_complete () =
  (* one Started and one Finished per benchmark, even when they fire
     from worker domains *)
  let started = Atomic.make 0 and finished = Atomic.make 0 in
  let rows =
    Runner.rows
      Runner.Config.(
        default
        |> with_only [ "s641"; "s820" ]
        |> with_jobs 3
        |> with_on_event (function
             | Runner.Started _ -> Atomic.incr started
             | Runner.Finished _ -> Atomic.incr finished
             | _ -> ()))
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  Alcotest.(check int) "two started" 2 (Atomic.get started);
  Alcotest.(check int) "two finished" 2 (Atomic.get finished)

let test_fig1_renders () =
  let s = Runner.fig1 () in
  Alcotest.(check bool) "six gates x five metrics" true
    (String.length s > 500)

let test_sweep_renders () =
  let nl = Profiles.build_by_name "s820" in
  let s = Runner.sweep nl ~counts:[ 1; 3 ] in
  Alcotest.(check bool) "rendered" true (String.length s > 0)

let test_attack_campaign_smoke () =
  let s = Runner.attack_campaign ~sat_timeout_s:10. () in
  Alcotest.(check bool) "rendered" true (String.length s > 0)

let test_cross_benchmark_depth_profile () =
  (* structural twins respect their declared combinational depth and
     produce I/O paths with at least two flip-flops (the property the
     selection algorithms rely on) *)
  List.iter
    (fun name ->
      let nl = Profiles.build_by_name name in
      let info = Profiles.find_exn name in
      let depth = Sttc_netlist.Query.depth nl in
      Alcotest.(check bool)
        (Printf.sprintf "%s depth %d <= levels+1" name depth)
        true
        (depth <= info.Profiles.levels + 1);
      let rng = Sttc_util.Rng.make 3 in
      let paths = Sttc_analysis.Paths.sample ~rng nl in
      Alcotest.(check bool) (name ^ " has deep paths") true
        (List.exists (fun p -> p.Sttc_analysis.Paths.ff_count >= 2) paths))
    [ "s641"; "s953"; "s1488" ]

let test_hybrid_foundry_cannot_simulate () =
  (* the information barrier: a foundry-view netlist with missing gates
     cannot be simulated without the bitstream *)
  let nl = Profiles.build_by_name "s820" in
  let r = protect ~seed:5 (Flow.Independent { count = 5 }) nl in
  Alcotest.(check bool) "unprogrammed rejected" true
    (try
       ignore (Sttc_sim.Simulator.create (Hybrid.foundry_view r.Flow.hybrid));
       false
     with Invalid_argument _ -> true)

let test_sta_hybrid_uses_lut_cells () =
  (* the STA of a hybrid accounts for the slower STT LUT cells *)
  let nl = Profiles.build_by_name "s820" in
  let r = protect ~seed:6 Flow.Dependent nl in
  let base = Sttc_analysis.Sta.analyze lib nl in
  let hyb = Sttc_analysis.Sta.analyze lib (Hybrid.programmed r.Flow.hybrid) in
  Alcotest.(check bool) "hybrid slower or equal" true
    (Sttc_analysis.Sta.critical_delay_ps hyb
    >= Sttc_analysis.Sta.critical_delay_ps base)

(* Runner.Config's JSON codec carries the data fields (on_event has no
   wire form); an empty object parses to the default. *)
let test_runner_config_json_roundtrip () =
  let module C = Runner.Config in
  let config =
    C.(
      default |> with_quick true |> with_seed 7
      |> with_only [ "s27"; "s641" ]
      |> with_timeout_s 12.5 |> with_isolate true |> with_checkpoint "ck.bin"
      |> with_jobs 4)
  in
  (match C.of_json (C.to_json config) with
  | Ok c ->
      let strip t = C.to_json t |> Sttc_obs.Json.to_string in
      Alcotest.(check string) "round-trip" (strip config) (strip c)
  | Error e -> Alcotest.fail e);
  match C.of_json (Sttc_obs.Json.Obj []) with
  | Ok c ->
      Alcotest.(check string)
        "empty object = default"
        (Sttc_obs.Json.to_string (C.to_json C.default))
        (Sttc_obs.Json.to_string (C.to_json c))
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "integration"
    [
      ( "flow",
        [
          Alcotest.test_case "through files" `Slow test_flow_through_files;
          Alcotest.test_case "all small profiles sign off" `Slow
            test_all_profiles_protect_and_signoff;
          Alcotest.test_case "verilog emission" `Quick
            test_verilog_emission_for_hybrid;
          Alcotest.test_case "foundry cannot simulate" `Quick
            test_hybrid_foundry_cannot_simulate;
          Alcotest.test_case "sta uses lut cells" `Quick test_sta_hybrid_uses_lut_cells;
        ] );
      ( "paper trends",
        [
          Alcotest.test_case "overheads decrease with size" `Slow
            test_overheads_decrease_with_size;
          Alcotest.test_case "security ordering" `Slow
            test_security_grows_with_algorithm;
          Alcotest.test_case "depth profiles" `Quick
            test_cross_benchmark_depth_profile;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "quick rows" `Slow test_runner_quick_rows;
          Alcotest.test_case "config json roundtrip" `Quick
            test_runner_config_json_roundtrip;
          Alcotest.test_case "parallel rows match serial" `Slow
            test_parallel_rows_match_serial;
          Alcotest.test_case "parallel events complete" `Slow
            test_parallel_events_complete;
          Alcotest.test_case "fig1" `Quick test_fig1_renders;
          Alcotest.test_case "sweep" `Quick test_sweep_renders;
          Alcotest.test_case "attack campaign" `Slow test_attack_campaign_smoke;
          Alcotest.test_case "genuine s27" `Slow test_genuine_s27_flow_and_attack;
          Alcotest.test_case "baselines" `Slow test_baselines_smoke;
        ] );
    ]
