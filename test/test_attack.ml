(* Tests for Sttc_attack: the oracle, the symbolic-key CNF encoding, and
   all four attacks, including the security asymmetry the paper claims
   (independent selection resolvable, dependent selection resistant). *)

module Netlist = Sttc_netlist.Netlist
module Generator = Sttc_netlist.Generator
module Gate_fn = Sttc_logic.Gate_fn
module Truth = Sttc_logic.Truth
module Rng = Sttc_util.Rng
module Hybrid = Sttc_core.Hybrid
module Flow = Sttc_core.Flow

(* strict single-attempt protection via the unified Flow.run entry point *)
let protect ?seed ?fraction ?hardening alg nl =
  (Flow.run ?seed ?fraction ?hardening ~policy:Flow.Strict alg nl)
    .Flow.accepted

module Oracle = Sttc_attack.Oracle
module Encode = Sttc_attack.Encode
module Sat_attack = Sttc_attack.Sat_attack
module Tt_attack = Sttc_attack.Tt_attack
module Brute_force = Sttc_attack.Brute_force
module Guess_attack = Sttc_attack.Guess_attack
module Harness = Sttc_attack.Harness
module Dpa = Sttc_attack.Dpa

let small_circuit seed =
  Generator.generate ~seed
    {
      Generator.design_name = "atk";
      n_pi = 8;
      n_po = 6;
      n_ff = 5;
      n_gates = 60;
      levels = 6;
    }

let protect_n nl n seed =
  (* n observable gates replaced *)
  let seq_depth = Sttc_netlist.Query.sequential_depth_to_po nl in
  let gates =
    List.filter (fun id -> seq_depth.(id) < max_int) (Netlist.gates nl)
  in
  let rng = Rng.make seed in
  let picks = Array.to_list (Rng.sample rng n (Array.of_list gates)) in
  Hybrid.make nl picks

(* ---------- Oracle ---------- *)

let test_oracle_interface () =
  let nl = small_circuit 1 in
  let h = protect_n nl 2 1 in
  let o = Oracle.create h in
  Alcotest.(check int) "inputs = pis + ffs"
    (List.length (Netlist.pis nl) + List.length (Netlist.dffs nl))
    (List.length (Oracle.input_names o));
  Alcotest.(check int) "outputs = pos + ffs"
    (Array.length (Netlist.outputs nl) + List.length (Netlist.dffs nl))
    (List.length (Oracle.output_names o));
  Alcotest.(check int) "no queries yet" 0 (Oracle.queries o);
  let inputs = Array.make (List.length (Oracle.input_names o)) false in
  let out1 = Oracle.query o inputs in
  Alcotest.(check int) "counted" 1 (Oracle.queries o);
  Alcotest.(check int) "output width" (List.length (Oracle.output_names o))
    (Array.length out1)

let test_oracle_matches_programmed_netlist () =
  let nl = small_circuit 2 in
  let h = protect_n nl 3 2 in
  let o = Oracle.create h in
  (* the oracle must behave exactly like the original circuit *)
  let sim = Sttc_sim.Simulator.create nl in
  let pis = Array.of_list (Netlist.pis nl) in
  let dffs = Array.of_list (Netlist.dffs nl) in
  let rng = Rng.make 3 in
  for _ = 1 to 16 do
    let pi_lanes = Array.map (fun _ -> Rng.int64 rng) pis in
    let st_lanes = Array.map (fun _ -> Rng.int64 rng) dffs in
    Sttc_sim.Simulator.set_state sim st_lanes;
    let pos = Sttc_sim.Simulator.eval_comb sim pi_lanes in
    let values = Sttc_sim.Simulator.node_values sim in
    let next =
      Array.of_list
        (List.map (fun ff -> values.((Netlist.fanins nl ff).(0))) (Netlist.dffs nl))
    in
    let expected = Array.append pos next in
    let got = Oracle.query_lanes o (Array.append pi_lanes st_lanes) in
    Alcotest.(check bool) "oracle = original" true (expected = got)
  done

(* ---------- Encode ---------- *)

let test_encode_key_structure () =
  let nl = small_circuit 3 in
  let h = protect_n nl 2 3 in
  let keyed = Encode.encode (Hybrid.foundry_view h) in
  Alcotest.(check int) "two keyed luts" 2 (List.length keyed.Encode.keys);
  List.iter
    (fun (id, key) ->
      match Netlist.kind (Hybrid.foundry_view h) id with
      | Netlist.Lut { arity; _ } ->
          Alcotest.(check int) "key rows" (1 lsl arity) (Array.length key)
      | _ -> Alcotest.fail "key target must be a LUT")
    keyed.Encode.keys

let test_encode_correct_key_is_consistent () =
  (* pin the true bitstream into the key variables and a random I/O pair:
     the formula must be satisfiable and the outputs must match the
     oracle *)
  let nl = small_circuit 4 in
  let h = protect_n nl 2 4 in
  let keyed = Encode.encode (Hybrid.foundry_view h) in
  let cnf = keyed.Encode.cnf in
  List.iter
    (fun (id, key) ->
      let config = List.assoc id (Hybrid.bitstream h) in
      Array.iteri
        (fun r l ->
          Sttc_logic.Cnf.add_clause cnf [ (if Truth.row config r then l else -l) ])
        key)
    keyed.Encode.keys;
  let o = Oracle.create h in
  let inputs = Array.make (List.length keyed.Encode.inputs) false in
  Array.iteri (fun i _ -> inputs.(i) <- i mod 2 = 0) inputs;
  List.iteri
    (fun i (_, l) ->
      Sttc_logic.Cnf.add_clause cnf [ (if inputs.(i) then l else -l) ])
    keyed.Encode.inputs;
  let expected = Oracle.query o inputs in
  match Sttc_logic.Sat.solve cnf with
  | Sttc_logic.Sat.Unsat -> Alcotest.fail "true key must satisfy"
  | Sttc_logic.Sat.Unknown r -> Alcotest.fail ("unexpected Unknown: " ^ r)
  | Sttc_logic.Sat.Sat model ->
      List.iteri
        (fun i (name, l) ->
          Alcotest.(check bool)
            ("output " ^ name)
            expected.(i)
            (Sttc_logic.Sat.model_value model l))
        keyed.Encode.outputs

(* ---------- SAT attack ---------- *)

let test_sat_attack_breaks_independent () =
  let nl = small_circuit 5 in
  let h = protect_n nl 3 5 in
  match Sat_attack.run ~timeout_s:30. h with
  | Sat_attack.Broken b ->
      Alcotest.(check bool) "functionally correct" true
        (Sat_attack.verify_break h b.bitstream);
      Alcotest.(check bool) "used some queries" true (b.queries > 0)
  | Sat_attack.Exhausted e -> Alcotest.fail ("exhausted: " ^ e.reason)

let test_sat_attack_breaks_dependent_small () =
  (* on small circuits even dependent selection falls to the SAT attack
     (with scan access) -- the honest result from the literature *)
  let nl = small_circuit 6 in
  let r = protect ~seed:2 Flow.Dependent nl in
  match Sat_attack.run ~timeout_s:30. r.Flow.hybrid with
  | Sat_attack.Broken b ->
      Alcotest.(check bool) "verified" true
        (Sat_attack.verify_break r.Flow.hybrid b.bitstream)
  | Sat_attack.Exhausted _ ->
      (* also acceptable: resource-limited runs may not converge *)
      ()

let test_sat_attack_respects_limits () =
  let nl = small_circuit 7 in
  let h = protect_n nl 3 7 in
  match Sat_attack.run ~max_iterations:1 ~timeout_s:300. h with
  | Sat_attack.Broken b ->
      Alcotest.(check bool) "at most 1 iteration" true (b.iterations <= 1)
  | Sat_attack.Exhausted e ->
      Alcotest.(check string) "iteration limit" "iteration limit" e.reason

let test_sat_attack_modes_agree () =
  (* the persistent-solver attack must recover exactly the bitstream the
     scratch-per-iteration baseline does, and reach the same verdict *)
  let nl = small_circuit 9 in
  let h = protect_n nl 3 9 in
  match
    ( Sat_attack.run ~timeout_s:30. ~mode:Sat_attack.Scratch h,
      Sat_attack.run ~timeout_s:30. ~mode:Sat_attack.Incremental h )
  with
  | Sat_attack.Broken s, Sat_attack.Broken i ->
      Alcotest.(check int) "same number of keyed LUTs"
        (List.length s.bitstream) (List.length i.bitstream);
      List.iter2
        (fun (id_s, t_s) (id_i, t_i) ->
          Alcotest.(check int) "same LUT" id_s id_i;
          Alcotest.(check string) "same configuration" (Truth.to_string t_s)
            (Truth.to_string t_i))
        s.bitstream i.bitstream
  | Sat_attack.Exhausted s, Sat_attack.Exhausted i ->
      Alcotest.(check string) "same reason" s.reason i.reason
  | _ -> Alcotest.fail "solver modes reached different verdicts"

(* Property (satellite of the incremental-solver rework): on random
   netlist miters — the exact formula shape the SAT attack feeds the
   solver — [solve ~assumptions] on one persistent solver agrees with a
   throwaway solve of the same CNF with the assumptions as unit
   clauses. *)
let incremental_miter_props =
  let module Cnf = Sttc_logic.Cnf in
  let module Sat = Sttc_logic.Sat in
  let build_miter seed =
    let nl = small_circuit seed in
    let h = protect_n nl 2 seed in
    let fv = Hybrid.foundry_view h in
    let cnf = Cnf.create () in
    let c1 = Encode.encode ~cnf fv in
    let c2 = Encode.encode ~cnf ~share_inputs:c1.Encode.inputs fv in
    let diffs =
      List.map2
        (fun (_, l1) (_, l2) ->
          let d = Cnf.fresh_var cnf in
          Cnf.encode_xor cnf d l1 l2;
          d)
        c1.Encode.outputs c2.Encode.outputs
    in
    let act = Cnf.fresh_var cnf in
    Cnf.add_clause cnf (-act :: diffs);
    let _, key0 = List.hd c1.Encode.keys in
    (cnf, act, key0.(0))
  in
  let satisfies model cnf =
    List.for_all
      (fun clause ->
        Array.exists
          (fun l ->
            if l > 0 then Sat.model_value model l
            else not (Sat.model_value model (-l)))
          clause)
      (Cnf.clauses cnf)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"persistent solve = scratch solve on miters"
         ~count:20
         QCheck2.Gen.(int_range 0 1_000_000)
         (fun seed ->
           let cnf, act, k0 = build_miter seed in
           let solver = Sat.Solver.create () in
           Sat.Solver.sync solver cnf;
           List.for_all
             (fun assumptions ->
               let scratch_cnf, _, _ = build_miter seed in
               List.iter
                 (fun l -> Cnf.add_clause scratch_cnf [ l ])
                 assumptions;
               match
                 ( Sat.Solver.solve ~assumptions solver,
                   Sat.solve scratch_cnf )
               with
               | Sat.Unsat, Sat.Unsat -> true
               | Sat.Sat model, Sat.Sat _ ->
                   satisfies model cnf
                   && List.for_all
                        (fun l ->
                          if l > 0 then Sat.model_value model l
                          else not (Sat.model_value model (-l)))
                        assumptions
               | _ -> false)
             [ [ act ]; [ -act ]; [ act; k0 ]; [ -act; -k0 ] ]));
  ]

(* ---------- truth-table attack ---------- *)

let test_tt_attack_resolves_observable_independent () =
  let nl = small_circuit 8 in
  (* a single observable missing gate: no interference from other unknowns,
     so the testing technique must make progress *)
  let h = protect_n nl 1 8 in
  let r = Tt_attack.run ~budget_patterns:6000 h in
  Alcotest.(check int) "1 lut" 1 r.Tt_attack.lut_count;
  Alcotest.(check bool) "resolved something" true (r.Tt_attack.resolution > 0.);
  (* every resolved row must match the secret bitstream *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "progress consistent" true
        (p.Tt_attack.resolved_rows <= p.Tt_attack.total_rows))
    r.Tt_attack.per_lut

let test_tt_attack_targeted_improves () =
  (* the SAT-guided phase must not lose ground, and on a single LUT it
     should settle every row (resolve it or prove it unreachable) *)
  let nl = small_circuit 20 in
  let h = protect_n nl 1 20 in
  let random_only = Tt_attack.run ~budget_patterns:50 h in
  let targeted = Tt_attack.run ~budget_patterns:50 ~targeted:true h in
  Alcotest.(check bool) "no worse" true
    (targeted.Tt_attack.resolution >= random_only.Tt_attack.resolution);
  Alcotest.(check (float 1e-9)) "single LUT fully settled" 1.0
    targeted.Tt_attack.functional_resolution;
  (* settled rows agree with the secret config on the reachable part *)
  let _, secret = List.hd (Hybrid.bitstream h) in
  ignore secret;
  List.iter
    (fun p ->
      Alcotest.(check int) "rows partition" p.Tt_attack.total_rows
        (p.Tt_attack.total_rows - p.Tt_attack.resolved_rows
         - p.Tt_attack.unreachable_rows
        + p.Tt_attack.resolved_rows + p.Tt_attack.unreachable_rows))
    targeted.Tt_attack.per_lut

let test_tt_attack_functional_resolution_bounds () =
  let nl = small_circuit 21 in
  let h = protect_n nl 3 21 in
  let r = Tt_attack.run ~budget_patterns:300 ~targeted:true h in
  Alcotest.(check bool) "functional >= raw" true
    (r.Tt_attack.functional_resolution >= r.Tt_attack.resolution);
  Alcotest.(check bool) "within [0,1]" true
    (r.Tt_attack.functional_resolution >= 0.
    && r.Tt_attack.functional_resolution <= 1.)

let test_tt_attack_degrades_on_dependent () =
  let nl = small_circuit 9 in
  let indep = protect ~seed:3 (Flow.Independent { count = 4 }) nl in
  let dep = protect ~seed:3 Flow.Dependent nl in
  let r_indep = Tt_attack.run ~budget_patterns:3000 indep.Flow.hybrid in
  let r_dep = Tt_attack.run ~budget_patterns:3000 dep.Flow.hybrid in
  (* the paper's asymmetry: dependent selection leaves a (weakly) smaller
     resolved fraction *)
  Alcotest.(check bool)
    (Printf.sprintf "dependent harder (%.2f vs %.2f)" r_dep.Tt_attack.resolution
       r_indep.Tt_attack.resolution)
    true
    (r_dep.Tt_attack.resolution <= r_indep.Tt_attack.resolution +. 0.15)

(* ---------- brute force ---------- *)

let test_brute_force_tiny () =
  let nl = small_circuit 10 in
  let h = protect_n nl 1 10 in
  (* one LUT of arity <= 4: at most 16 bits, enumerable *)
  match Brute_force.run ~max_bits:16 h with
  | Brute_force.Broken b ->
      Alcotest.(check bool) "tested at least one" true
        (Sttc_util.Lognum.compare b.candidates_tested
           Sttc_util.Lognum.zero
        > 0)
  | Brute_force.Infeasible _ -> Alcotest.fail "1 LUT must be enumerable"

let test_brute_force_projects_large () =
  let nl = small_circuit 11 in
  let h = protect_n nl 8 11 in
  Alcotest.(check bool) "space large" true
    (Sttc_util.Lognum.compare (Brute_force.search_space h)
       (Sttc_util.Lognum.of_float 1e6)
    > 0);
  match Brute_force.run ~max_bits:10 h with
  | Brute_force.Infeasible i ->
      Alcotest.(check bool) "rate measured" true (i.tested_rate_per_s > 0.)
  | Brute_force.Broken _ -> Alcotest.fail "must report infeasible"

(* ---------- guess attack ---------- *)

let test_guess_attack_improves () =
  let nl = small_circuit 12 in
  let h = protect_n nl 3 12 in
  let r = Guess_attack.run ~rounds:6 ~probes:512 h in
  Alcotest.(check bool) "agreement in (0.4, 1.0]" true
    (r.Guess_attack.agreement > 0.4 && r.Guess_attack.agreement <= 1.0);
  Alcotest.(check bool) "queries counted" true (r.Guess_attack.oracle_queries > 0);
  if r.Guess_attack.recovered then
    Alcotest.(check bool) "recovery claim verified" true
      (Sat_attack.verify_break h r.Guess_attack.bitstream)

(* ---------- sequential (scan-disabled) attack ---------- *)

let test_oracle_query_sequence () =
  let nl = small_circuit 14 in
  let h = protect_n nl 2 14 in
  let o = Oracle.create h in
  let n_pi = List.length (Netlist.pis nl) in
  let seq = [ Array.make n_pi false; Array.make n_pi true ] in
  let outs = Oracle.query_sequence o seq in
  Alcotest.(check int) "one output vector per cycle" 2 (List.length outs);
  Alcotest.(check int) "queries counted" 2 (Oracle.queries o);
  (* must agree with simulating the original from reset *)
  let sim = Sttc_sim.Simulator.create nl in
  let expected =
    Sttc_sim.Simulator.run_sequence sim
      (List.map (Array.map (fun b -> if b then -1L else 0L)) seq)
  in
  List.iter2
    (fun got exp ->
      Array.iteri
        (fun i g ->
          Alcotest.(check bool) "po" (Int64.logand exp.(i) 1L = 1L) g)
        got)
    outs expected

let test_encode_unrolled_structure () =
  let nl = small_circuit 15 in
  let h = protect_n nl 2 15 in
  let u = Encode.encode_unrolled ~frames:3 (Hybrid.foundry_view h) in
  Alcotest.(check int) "3 pi frames" 3 (Array.length u.Encode.frame_pis);
  Alcotest.(check int) "3 po frames" 3 (Array.length u.Encode.frame_pos);
  let n_pi = List.length (Netlist.pis nl) in
  let n_po = Array.length (Netlist.outputs nl) in
  Array.iter
    (fun pis -> Alcotest.(check int) "pi width" n_pi (List.length pis))
    u.Encode.frame_pis;
  Array.iter
    (fun pos -> Alcotest.(check int) "po width" n_po (List.length pos))
    u.Encode.frame_pos;
  Alcotest.(check int) "2 shared keys" 2 (List.length u.Encode.u_keys)

let test_encode_unrolled_true_key_matches_oracle () =
  (* pin the secret key and a known PI sequence: the unrolled formula's
     per-frame PO literals must take the oracle's values *)
  let nl = small_circuit 16 in
  let h = protect_n nl 2 16 in
  let frames = 3 in
  let u = Encode.encode_unrolled ~frames (Hybrid.foundry_view h) in
  let cnf = u.Encode.u_cnf in
  List.iter
    (fun (id, key) ->
      let config = List.assoc id (Hybrid.bitstream h) in
      Array.iteri
        (fun r l ->
          Sttc_logic.Cnf.add_clause cnf
            [ (if Truth.row config r then l else -l) ])
        key)
    u.Encode.u_keys;
  let n_pi = List.length (Netlist.pis nl) in
  let rng = Rng.make 5 in
  let pi_seq =
    List.init frames (fun _ -> Array.init n_pi (fun _ -> Rng.bool rng))
  in
  List.iteri
    (fun frame pis ->
      List.iteri
        (fun i (_, l) ->
          Sttc_logic.Cnf.add_clause cnf [ (if pis.(i) then l else -l) ])
        u.Encode.frame_pis.(frame))
    pi_seq;
  let o = Oracle.create h in
  let po_seq = Oracle.query_sequence o pi_seq in
  (match Sttc_logic.Sat.solve cnf with
  | Sttc_logic.Sat.Unsat -> Alcotest.fail "true key must satisfy unrolling"
  | Sttc_logic.Sat.Unknown r -> Alcotest.fail ("unexpected Unknown: " ^ r)
  | Sttc_logic.Sat.Sat model ->
      List.iteri
        (fun frame pos ->
          List.iteri
            (fun i (_, l) ->
              Alcotest.(check bool)
                (Printf.sprintf "frame %d po %d" frame i)
                pos.(i)
                (Sttc_logic.Sat.model_value model l))
            u.Encode.frame_pos.(frame))
        po_seq)

let test_sequential_attack_small () =
  (* on a small circuit the sequential attack either recovers a correct
     key or stops at a principled limit -- never a wrong "Broken" *)
  let nl = small_circuit 17 in
  let h = protect_n nl 2 17 in
  match Sat_attack.run_sequential ~frames:4 ~timeout_s:30. h with
  | Sat_attack.Broken b ->
      Alcotest.(check bool) "verified" true
        (Sat_attack.verify_break h b.bitstream)
  | Sat_attack.Exhausted e ->
      Alcotest.(check bool) "principled reason" true
        (List.mem e.reason
           [ "timeout"; "iteration limit"; "conflict budget";
             "sequence-length limit" ])

(* ---------- DPA ---------- *)

let test_dpa_deterministic_and_sane () =
  let nl = small_circuit 18 in
  let lib = Sttc_tech.Library.cmos90 in
  let target = Netlist.name nl (List.hd (Netlist.gates nl)) in
  let r1 = Dpa.measure ~cycles:16 ~batches:4 ~seed:9 lib nl ~target in
  let r2 = Dpa.measure ~cycles:16 ~batches:4 ~seed:9 lib nl ~target in
  Alcotest.(check (float 1e-12)) "deterministic" r1.Dpa.dom_fj r2.Dpa.dom_fj;
  Alcotest.(check int) "traces" (64 * 4) r1.Dpa.traces;
  Alcotest.(check bool) "mean positive" true (r1.Dpa.mean_energy_fj > 0.);
  Alcotest.(check bool) "dom bounded by mean scale" true
    (r1.Dpa.dom_fj <= r1.Dpa.mean_energy_fj *. 10.);
  Alcotest.check_raises "unknown target"
    (Invalid_argument "Dpa.measure: unknown target signal ghost") (fun () ->
      ignore (Dpa.measure lib nl ~target:"ghost"))

let test_dpa_hybrid_leaks_less_on_target () =
  (* replace the target gate with a LUT: since the LUT's power is data
     independent, the energy correlated with the hidden signal drops *)
  let nl = small_circuit 19 in
  let lib = Sttc_tech.Library.cmos90 in
  (* pick a target with decent fanout so it carries measurable energy *)
  let target_id =
    List.fold_left
      (fun best id ->
        if
          Netlist.fanout_degree nl id > Netlist.fanout_degree nl best
        then id
        else best)
      (List.hd (Netlist.gates nl))
      (Netlist.gates nl)
  in
  let target = Netlist.name nl target_id in
  let h = Hybrid.make nl [ target_id ] in
  let reduction =
    Dpa.leakage_reduction ~cycles:24 ~batches:8 lib ~original:nl
      ~hybrid:(Sttc_core.Hybrid.programmed h) ~target
  in
  Alcotest.(check bool)
    (Printf.sprintf "leakage not amplified (%.2fx)" reduction)
    true (reduction >= 0.8)

let test_scan_oracle_matches_direct () =
  (* the pin-level scan protocol gives bit-exact combinational access at
     2*FFs + 1 clocks per query *)
  let nl = Sttc_netlist.Iscas_data.s27 () in
  let r = protect ~seed:1 (Flow.Independent { count = 3 }) nl in
  let direct = Oracle.create r.Flow.hybrid in
  let via_scan = Sttc_attack.Scan_oracle.create r.Flow.hybrid in
  Alcotest.(check int) "cycles per query" 7
    (Sttc_attack.Scan_oracle.cycles_per_query via_scan);
  let n_in = List.length (Oracle.input_names direct) in
  let rng = Rng.make 9 in
  for _ = 1 to 64 do
    let inputs = Array.init n_in (fun _ -> Rng.bool rng) in
    Alcotest.(check bool) "same answer" true
      (Oracle.query direct inputs
      = Sttc_attack.Scan_oracle.query via_scan inputs)
  done;
  Alcotest.(check int) "clock accounting" (64 * 7)
    (Sttc_attack.Scan_oracle.clock_cycles via_scan);
  Alcotest.(check int) "query count" 64
    (Sttc_attack.Scan_oracle.queries via_scan)

(* ---------- harness ---------- *)

let test_harness_campaign () =
  let nl = small_circuit 13 in
  let h = protect_n nl 2 13 in
  let config =
    Harness.Config.(
      default |> with_sat_timeout_s 20. |> with_tt_budget 1500
      |> with_guess_rounds 3 |> with_brute_max_bits 10)
  in
  let c = Harness.attack ~config ~circuit:"t" ~algorithm:"independent" h in
  Alcotest.(check int) "six attacks" 6 (List.length c.Harness.entries);
  Alcotest.(check int) "lut count" 2 c.Harness.lut_count;
  let table = Harness.to_table [ c ] in
  Alcotest.(check bool) "table rendered" true (String.length table > 0);
  (* the sat entry should report recovery on so small a target *)
  let sat_entry = List.find (fun e -> e.Harness.attack = "sat") c.Harness.entries in
  (match sat_entry.Harness.verdict with
  | Harness.Recovered -> ()
  | _ -> Alcotest.fail "sat should recover 2 LUTs on 60 gates")

(* The campaign fanned out over a pool must reach the same verdicts as
   a serial run: every attack is seeded up front, so only the (wall
   clock) seconds column may differ. *)
let test_harness_parallel_matches_serial () =
  let nl = small_circuit 13 in
  let h = protect_n nl 2 13 in
  let campaign jobs =
    let config =
      Harness.Config.(
        default |> with_sat_timeout_s 20. |> with_tt_budget 1500
        |> with_guess_rounds 3 |> with_brute_max_bits 10 |> with_jobs jobs)
    in
    Harness.attack ~config ~circuit:"t" ~algorithm:"independent" h
  in
  let serial = campaign 1 and parallel = campaign 3 in
  let signature c =
    List.map
      (fun e ->
        (* brute force reports a measured candidates/s rate in its
           detail, which is wall clock, not seed-derived — skip it *)
        let detail =
          if e.Harness.attack = "brute-force" then "-" else e.Harness.detail
        in
        Printf.sprintf "%s:%s:%d:%s" e.Harness.attack
          (Harness.verdict_string e.Harness.verdict)
          e.Harness.oracle_queries detail)
      c.Harness.entries
  in
  Alcotest.(check (list string))
    "same attacks, verdicts, queries and details in the same order"
    (signature serial) (signature parallel)

(* With a zero wall-clock budget no attack may even start: every entry
   must classify as Resisted, and do so instantly. *)
let test_harness_zero_budget () =
  let nl = small_circuit 14 in
  let h = protect_n nl 2 14 in
  let c =
    Harness.attack
      ~config:Harness.Config.(default |> with_sat_timeout_s 0.)
      ~circuit:"t" ~algorithm:"independent" h
  in
  Alcotest.(check int) "six attacks" 6 (List.length c.Harness.entries);
  List.iter
    (fun e ->
      (match e.Harness.verdict with
      | Harness.Resisted -> ()
      | _ ->
          Alcotest.fail
            (e.Harness.attack ^ " must be Resisted at zero budget"));
      Alcotest.(check string)
        (e.Harness.attack ^ " detail")
        "zero budget" e.Harness.detail;
      Alcotest.(check int)
        (e.Harness.attack ^ " queries")
        0 e.Harness.oracle_queries)
    c.Harness.entries

(* The sequential SAT attack gets its own budget; zeroing it must not
   silence the other attacks. *)
let test_harness_seq_budget_independent () =
  let nl = small_circuit 15 in
  let h = protect_n nl 2 15 in
  let config =
    Harness.Config.(
      default |> with_sat_timeout_s 20.
      |> with_seq_timeout_s (Some 0.)
      |> with_tt_budget 400 |> with_guess_rounds 1 |> with_brute_max_bits 10)
  in
  let c = Harness.attack ~config ~circuit:"t" ~algorithm:"independent" h in
  let seq = List.find (fun e -> e.Harness.attack = "sat-seq") c.Harness.entries in
  (match seq.Harness.verdict with
  | Harness.Resisted -> ()
  | _ -> Alcotest.fail "sat-seq must be Resisted at zero budget");
  Alcotest.(check string) "seq detail" "zero budget" seq.Harness.detail;
  let sat = List.find (fun e -> e.Harness.attack = "sat") c.Harness.entries in
  if sat.Harness.detail = "zero budget" then
    Alcotest.fail "combinational sat must still run"

(* The Config JSON codec: full round-trip, the empty object as the
   default config, and typed rejection of a bad solver mode. *)
let test_harness_config_json_roundtrip () =
  let module C = Harness.Config in
  let config =
    C.(
      default |> with_sat_timeout_s 12.5
      |> with_seq_timeout_s (Some 3.)
      |> with_tt_budget 123 |> with_guess_rounds 2 |> with_brute_max_bits 8
      |> with_seq_frames 6 |> with_seed 42 |> with_jobs 3
      |> with_solver_mode Sttc_attack.Sat_attack.Scratch)
  in
  (match C.of_json (C.to_json config) with
  | Ok c -> Alcotest.(check bool) "round-trip" true (c = config)
  | Error e -> Alcotest.fail e);
  (match C.of_json (Sttc_obs.Json.Obj []) with
  | Ok c -> Alcotest.(check bool) "empty object = default" true (c = C.default)
  | Error e -> Alcotest.fail e);
  match
    C.of_json
      (Sttc_obs.Json.Obj [ ("solver_mode", Sttc_obs.Json.String "magic") ])
  with
  | Ok _ -> Alcotest.fail "unknown solver_mode must be rejected"
  | Error _ -> ()

(* The stt backend is the harness default: passing it explicitly must
   change nothing about the campaign. *)
let test_harness_backend_default () =
  let nl = small_circuit 16 in
  let h = protect_n nl 2 16 in
  let config = Harness.Config.(default |> with_sat_timeout_s 0.) in
  let implicit =
    Harness.attack ~config ~circuit:"t" ~algorithm:"independent" h
  in
  let explicit =
    Harness.attack ~backend:Sttc_backend.Backend.stt ~config ~circuit:"t"
      ~algorithm:"independent" h
  in
  Alcotest.(check bool) "explicit stt equals default" true (implicit = explicit)

(* Recycling one solver arena across attacks (the serve daemon's
   per-worker discipline) must recover the exact bitstream a fresh
   solver does. *)
let test_solver_reuse_identical () =
  let nl = small_circuit 17 in
  let h = protect_n nl 2 17 in
  let nl2 = small_circuit 18 in
  let h2 = protect_n nl2 2 18 in
  let bitstream = function
    | Sttc_attack.Sat_attack.Broken b -> b.bitstream
    | Sttc_attack.Sat_attack.Exhausted _ ->
        Alcotest.fail "sat attack must break 2 LUTs on a small circuit"
  in
  let fresh = bitstream (Sttc_attack.Sat_attack.run h) in
  let solver = Sttc_logic.Sat.Solver.create () in
  (* dirty the arena on an unrelated formula first *)
  ignore (bitstream (Sttc_attack.Sat_attack.run ~solver h2));
  let recycled = bitstream (Sttc_attack.Sat_attack.run ~solver h) in
  Alcotest.(check bool) "recycled arena = fresh solver" true (fresh = recycled)

let () =
  Alcotest.run "sttc_attack"
    [
      ( "oracle",
        [
          Alcotest.test_case "interface" `Quick test_oracle_interface;
          Alcotest.test_case "matches programmed netlist" `Quick
            test_oracle_matches_programmed_netlist;
        ] );
      ( "encode",
        [
          Alcotest.test_case "key structure" `Quick test_encode_key_structure;
          Alcotest.test_case "correct key consistent" `Quick
            test_encode_correct_key_is_consistent;
        ] );
      ( "sat_attack",
        [
          Alcotest.test_case "breaks independent" `Slow
            test_sat_attack_breaks_independent;
          Alcotest.test_case "breaks dependent (small)" `Slow
            test_sat_attack_breaks_dependent_small;
          Alcotest.test_case "respects limits" `Quick test_sat_attack_respects_limits;
          Alcotest.test_case "solver modes agree" `Quick
            test_sat_attack_modes_agree;
        ]
        @ incremental_miter_props );
      ( "tt_attack",
        [
          Alcotest.test_case "resolves independent" `Slow
            test_tt_attack_resolves_observable_independent;
          Alcotest.test_case "degrades on dependent" `Slow
            test_tt_attack_degrades_on_dependent;
          Alcotest.test_case "targeted improves" `Slow
            test_tt_attack_targeted_improves;
          Alcotest.test_case "functional resolution bounds" `Slow
            test_tt_attack_functional_resolution_bounds;
        ] );
      ( "brute_force",
        [
          Alcotest.test_case "tiny" `Slow test_brute_force_tiny;
          Alcotest.test_case "projects large" `Quick test_brute_force_projects_large;
        ] );
      ( "guess_attack",
        [ Alcotest.test_case "improves" `Slow test_guess_attack_improves ] );
      ( "sequential",
        [
          Alcotest.test_case "oracle sequence" `Quick test_oracle_query_sequence;
          Alcotest.test_case "unrolled structure" `Quick
            test_encode_unrolled_structure;
          Alcotest.test_case "unrolled true key" `Quick
            test_encode_unrolled_true_key_matches_oracle;
          Alcotest.test_case "attack small" `Slow test_sequential_attack_small;
        ] );
      ( "scan_oracle",
        [
          Alcotest.test_case "matches direct access" `Quick
            test_scan_oracle_matches_direct;
        ] );
      ( "dpa",
        [
          Alcotest.test_case "deterministic/sane" `Quick
            test_dpa_deterministic_and_sane;
          Alcotest.test_case "hybrid leaks less" `Slow
            test_dpa_hybrid_leaks_less_on_target;
        ] );
      ( "harness",
        [
          Alcotest.test_case "campaign" `Slow test_harness_campaign;
          Alcotest.test_case "parallel matches serial" `Slow
            test_harness_parallel_matches_serial;
          Alcotest.test_case "zero budget resists" `Quick
            test_harness_zero_budget;
          Alcotest.test_case "seq budget independent" `Slow
            test_harness_seq_budget_independent;
          Alcotest.test_case "config json roundtrip" `Quick
            test_harness_config_json_roundtrip;
          Alcotest.test_case "backend default" `Quick
            test_harness_backend_default;
          Alcotest.test_case "solver reuse identical" `Slow
            test_solver_reuse_identical;
        ] );
    ]
