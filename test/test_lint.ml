(* Tests for Sttc_lint: the diagnostics core, both rule packs (each rule
   fires on a minimal violating design), and the clean-on-valid-input
   properties the subsystem guarantees. *)

module D = Sttc_lint.Diagnostic
module Graph = Sttc_lint.Graph
module Structural = Sttc_lint.Structural
module Sec = Sttc_lint.Security_rules
module Lint = Sttc_lint.Lint
module Netlist = Sttc_netlist.Netlist
module Transform = Sttc_netlist.Transform
module Generator = Sttc_netlist.Generator
module Gate_fn = Sttc_logic.Gate_fn
module Flow = Sttc_core.Flow

(* strict single-attempt protection via the unified Flow.run entry point *)
let protect ?seed ?fraction ?hardening alg nl =
  (Flow.run ?seed ?fraction ?hardening ~policy:Flow.Strict alg nl)
    .Flow.accepted


let fires rule ds = List.exists (D.matches_rule rule) ds

let check_fires name rule ds =
  Alcotest.(check bool) (name ^ ": " ^ rule ^ " fires") true (fires rule ds)

let check_silent name rule ds =
  Alcotest.(check bool) (name ^ ": " ^ rule ^ " silent") false (fires rule ds)

(* ---------- diagnostics core ---------- *)

let d1 = D.make ~rule:"STR001" ~alias:"comb-loop" ~severity:D.Error ~node:"g1" "x"
let d2 = D.make ~rule:"SEC001" ~alias:"trivial-lut" ~severity:D.Warning "y"

let test_diag_basics () =
  Alcotest.(check string) "key" "STR001@g1" (D.key d1);
  Alcotest.(check string) "key no node" "SEC001@-" (D.key d2);
  Alcotest.(check int) "errors" 1 (D.errors [ d1; d2 ]);
  Alcotest.(check bool) "match id" true (D.matches_rule "str001" d1);
  Alcotest.(check bool) "match alias" true (D.matches_rule "comb-loop" d1);
  Alcotest.(check bool) "no match" false (D.matches_rule "STR002" d1);
  Alcotest.(check int) "sort worst first" (-1)
    (compare (D.compare d1 d2) 0);
  Alcotest.(check int) "filter" 1
    (List.length (D.filter_rules ~only:[ "SEC001" ] [ d1; d2 ]));
  Alcotest.(check int) "suppress" 1
    (List.length (D.suppress ~rules:[ "trivial-lut" ] [ d1; d2 ]))

let test_diag_baseline () =
  let b = D.baseline_of_diagnostics [ d1 ] in
  Alcotest.(check int) "baselined dropped" 1
    (List.length (D.apply_baseline b [ d1; d2 ]));
  let b2 = D.baseline_of_string (D.baseline_to_string b ^ "\n# comment\n") in
  Alcotest.(check int) "roundtrip" 1
    (List.length (D.apply_baseline b2 [ d1; d2 ]));
  Alcotest.(check int) "empty keeps all" 2
    (List.length (D.apply_baseline D.empty_baseline [ d1; d2 ]))

let test_diag_render () =
  let txt = D.render_text ~design:"t" [ d1; d2 ] in
  Alcotest.(check bool) "text has summary" true
    (String.length txt > 0
    && List.exists
         (fun line ->
           String.length line >= 8 && String.sub line 0 8 = "summary:")
         (String.split_on_char '\n' txt));
  let json = D.render_json ~design:"t" [ d1; d2 ] in
  Alcotest.(check bool) "json mentions rule" true
    (let n = String.length json in
     let needle = "\"STR001\"" in
     let k = String.length needle in
     let rec go i = i + k <= n && (String.sub json i k = needle || go (i + 1)) in
     go 0);
  (* empty list renders an empty diagnostics array *)
  let empty = D.render_json ~design:"t" [] in
  Alcotest.(check bool) "empty json" true
    (let n = String.length empty in
     let needle = "\"diagnostics\": []" in
     let k = String.length needle in
     let rec go i = i + k <= n && (String.sub empty i k = needle || go (i + 1)) in
     go 0)

let test_catalog () =
  Alcotest.(check int) "14 rules" 14 (List.length Lint.catalog);
  (match Lint.find_rule "comb-loop" with
  | Some r -> Alcotest.(check string) "alias lookup" "STR001" r.Structural.id
  | None -> Alcotest.fail "comb-loop not found");
  (match Lint.find_rule "SEC004" with
  | Some r -> Alcotest.(check string) "id lookup" "unobservable-lut" r.Structural.alias
  | None -> Alcotest.fail "SEC004 not found");
  Alcotest.(check bool) "unknown" true (Lint.find_rule "XYZ999" = None);
  Alcotest.(check bool) "catalog text" true
    (String.length (Lint.catalog_text ()) > 100)

(* ---------- structural rules on minimal violating graphs ---------- *)

let graph ?(design = "g") ?(outputs = [||]) nodes =
  { Graph.design; nodes = Array.of_list nodes; outputs }

let n name kind fanins = { Graph.name; kind; fanins = Array.of_list fanins }

let test_str_comb_loop () =
  (* g1 = AND(a, g2); g2 = BUF(g1): a two-gate combinational cycle *)
  let g =
    graph
      ~outputs:[| ("y", 1) |]
      [
        n "a" Graph.Pi [];
        n "g1" (Graph.Gate (Gate_fn.And 2)) [ 0; 2 ];
        n "g2" (Graph.Gate Gate_fn.Buf) [ 1 ];
      ]
  in
  check_fires "loop" "comb-loop" (Structural.run g);
  (* the same shape through a flip-flop is legal *)
  let ok =
    graph
      ~outputs:[| ("y", 1) |]
      [
        n "a" Graph.Pi [];
        n "g1" (Graph.Gate (Gate_fn.And 2)) [ 0; 2 ];
        n "ff" Graph.Dff [ 1 ];
      ]
  in
  check_silent "dff breaks loop" "comb-loop" (Structural.run ok)

let test_str_undriven () =
  let g =
    graph ~outputs:[| ("y", 0) |]
      [ n "g" (Graph.Gate Gate_fn.Buf) [ -1 ] ]
  in
  check_fires "bad fanin" "undriven-net" (Structural.run g);
  (* an output naming a nonexistent driver too *)
  let g2 =
    graph ~outputs:[| ("y", 7) |] [ n "a" Graph.Pi [] ]
  in
  check_fires "bad po" "undriven-net" (Structural.run g2)

let test_str_multi_driver () =
  let g =
    graph ~outputs:[| ("y", 1) |]
      [
        n "a" Graph.Pi [];
        n "s" (Graph.Gate Gate_fn.Buf) [ 0 ];
        n "s" (Graph.Gate Gate_fn.Not) [ 0 ];
      ]
  in
  check_fires "two drivers of s" "multi-driver" (Structural.run g)

let test_str_dangling () =
  let g =
    graph ~outputs:[| ("y", 1) |]
      [
        n "a" Graph.Pi [];
        n "live" (Graph.Gate Gate_fn.Buf) [ 0 ];
        n "dead" (Graph.Gate Gate_fn.Not) [ 0 ];
      ]
  in
  let ds = Structural.run g in
  check_fires "dead gate" "dangling-gate" ds;
  (* it is a warning, not an error *)
  Alcotest.(check int) "no errors" 0 (D.errors ds);
  (* a gate feeding only a flip-flop is not dangling *)
  let ok =
    graph ~outputs:[| ("y", 1) |]
      [
        n "a" Graph.Pi [];
        n "live" (Graph.Gate Gate_fn.Buf) [ 0 ];
        n "pre" (Graph.Gate Gate_fn.Not) [ 0 ];
        n "ff" Graph.Dff [ 2 ];
      ]
  in
  check_silent "ff fanin live" "dangling-gate" (Structural.run ok)

let test_str_arity () =
  let g =
    graph ~outputs:[| ("y", 1) |]
      [ n "a" Graph.Pi []; n "g" (Graph.Gate (Gate_fn.And 2)) [ 0 ] ]
  in
  check_fires "AND2 with one fanin" "arity-mismatch" (Structural.run g);
  let wide =
    graph ~outputs:[| ("y", 1) |]
      [
        n "a" Graph.Pi [];
        n "l" (Graph.Lut { arity = 7; configured = false })
          [ 0; 0; 0; 0; 0; 0; 0 ];
      ]
  in
  check_fires "7-LUT beyond tech max" "arity-mismatch" (Structural.run wide);
  let dff =
    graph ~outputs:[| ("y", 1) |]
      [ n "a" Graph.Pi []; n "ff" Graph.Dff [] ]
  in
  check_fires "unwired dff" "arity-mismatch" (Structural.run dff)

let test_str_duplicate_output () =
  let g =
    graph
      ~outputs:[| ("y", 1); ("y", 0) |]
      [ n "a" Graph.Pi []; n "g" (Graph.Gate Gate_fn.Buf) [ 0 ] ]
  in
  check_fires "duplicate PO name" "duplicate-name" (Structural.run g)

let test_str_no_output () =
  let g = graph [ n "a" Graph.Pi [] ] in
  check_fires "no outputs" "no-output" (Structural.run g)

(* ---------- security rules on corrupted hybrids ---------- *)

(* PI a,b; g = AND(a,b); PO y = g. *)
let tiny_comb () =
  let b = Netlist.Builder.create ~design_name:"tiny" () in
  let a = Netlist.Builder.add_pi b "a" in
  let bb = Netlist.Builder.add_pi b "b" in
  let g = Netlist.Builder.add_gate b "g" (Gate_fn.And 2) [ a; bb ] in
  Netlist.Builder.add_output b "y" g;
  (Netlist.Builder.finalize b, g)

let test_sec_trivial () =
  let nl, g = tiny_comb () in
  let foundry = Transform.replace_many ~keep_function:false nl [ g ] in
  let v = Sec.view ~foundry ~luts:[ g ] () in
  check_fires "PI-fed PO-driving LUT" "trivial-lut" (Sec.run v)

let test_sec_broken_chain () =
  (* two replaced gates on disjoint paths: neither reaches the other *)
  let b = Netlist.Builder.create ~design_name:"split" () in
  let a = Netlist.Builder.add_pi b "a" in
  let c = Netlist.Builder.add_pi b "c" in
  let g1 = Netlist.Builder.add_gate b "g1" Gate_fn.Not [ a ] in
  let g2 = Netlist.Builder.add_gate b "g2" Gate_fn.Not [ c ] in
  Netlist.Builder.add_output b "y1" g1;
  Netlist.Builder.add_output b "y2" g2;
  let nl = Netlist.Builder.finalize b in
  let foundry = Transform.replace_many ~keep_function:false nl [ g1; g2 ] in
  let broken =
    Sec.view ~algorithm:Sec.Dependent ~foundry ~luts:[ g1; g2 ] ()
  in
  check_fires "disjoint LUTs" "broken-chain" (Sec.run broken);
  (* the rule is gated on dependent selection *)
  let ungated = Sec.view ~algorithm:Sec.Independent ~foundry ~luts:[ g1; g2 ] () in
  check_silent "independent not gated" "broken-chain" (Sec.run ungated);
  (* a genuine chain g1 -> g2 is clean *)
  let b = Netlist.Builder.create ~design_name:"chain" () in
  let a = Netlist.Builder.add_pi b "a" in
  let g1 = Netlist.Builder.add_gate b "g1" Gate_fn.Not [ a ] in
  let g2 = Netlist.Builder.add_gate b "g2" Gate_fn.Buf [ g1 ] in
  Netlist.Builder.add_output b "y" g2;
  let nl = Netlist.Builder.finalize b in
  let foundry = Transform.replace_many ~keep_function:false nl [ g1; g2 ] in
  let ok = Sec.view ~algorithm:Sec.Dependent ~foundry ~luts:[ g1; g2 ] () in
  check_silent "chained LUTs" "broken-chain" (Sec.run ok)

let test_sec_missing_neighbour () =
  let nl, g = tiny_comb () in
  let foundry = Transform.replace_many ~keep_function:false nl [ g ] in
  let a = Netlist.find_exn foundry "a" in
  (* the meta claims PI [a] was a replaced neighbourhood gate: it is not
     a LUT slot, so the record is inconsistent with the foundry view *)
  let v =
    Sec.view ~algorithm:Sec.Parametric
      ~meta:{ Sec.usl = []; neighbours = [ a ] }
      ~foundry ~luts:[ g ] ()
  in
  check_fires "neighbour kept as CMOS" "missing-neighbour" (Sec.run v);
  let ok =
    Sec.view ~algorithm:Sec.Parametric
      ~meta:{ Sec.usl = []; neighbours = [ g ] }
      ~foundry ~luts:[ g ] ()
  in
  check_silent "neighbour replaced" "missing-neighbour" (Sec.run ok)

let test_sec_unobservable () =
  (* dead = NOT(a) reaches no PO; replacing it buys nothing *)
  let b = Netlist.Builder.create ~design_name:"dead" () in
  let a = Netlist.Builder.add_pi b "a" in
  let live = Netlist.Builder.add_gate b "live" Gate_fn.Buf [ a ] in
  let dead = Netlist.Builder.add_gate b "dead" Gate_fn.Not [ a ] in
  Netlist.Builder.add_output b "y" live;
  let nl = Netlist.Builder.finalize b in
  let foundry = Transform.replace_many ~keep_function:false nl [ dead ] in
  let v = Sec.view ~foundry ~luts:[ dead ] () in
  check_fires "LUT in dead logic" "unobservable-lut" (Sec.run v);
  let live_foundry = Transform.replace_many ~keep_function:false nl [ live ] in
  let ok = Sec.view ~foundry:live_foundry ~luts:[ live ] () in
  check_silent "LUT on live path" "unobservable-lut" (Sec.run ok)

let test_sec_timing () =
  (* an impossible budget (half the original delay) must always violate;
     with a parametric claim and the LUT on the critical path this is an
     error, otherwise a warning *)
  let b = Netlist.Builder.create ~design_name:"slow" () in
  let a = Netlist.Builder.add_pi b "a" in
  let g1 = Netlist.Builder.add_gate b "g1" Gate_fn.Not [ a ] in
  let g2 = Netlist.Builder.add_gate b "g2" Gate_fn.Not [ g1 ] in
  Netlist.Builder.add_output b "y" g2;
  let nl = Netlist.Builder.finalize b in
  let foundry = Transform.replace_many ~keep_function:false nl [ g2 ] in
  let v =
    Sec.view ~algorithm:Sec.Parametric ~original:nl ~clock_factor:0.5 ~foundry
      ~luts:[ g2 ] ()
  in
  let ds = Sec.run v in
  check_fires "budget blown" "timing-violation" ds;
  Alcotest.(check bool) "error for parametric LUT on path" true
    (List.exists
       (fun d -> D.matches_rule "SEC005" d && d.D.severity = D.Error)
       ds);
  let warn =
    Sec.view ~algorithm:Sec.Independent ~original:nl ~clock_factor:0.5 ~foundry
      ~luts:[ g2 ] ()
  in
  Alcotest.(check bool) "warning when not parametric" true
    (List.exists
       (fun d -> D.matches_rule "SEC005" d && d.D.severity = D.Warning)
       (Sec.run warn));
  (* a generous budget passes *)
  let ok =
    Sec.view ~algorithm:Sec.Parametric ~original:nl ~clock_factor:100.0 ~foundry
      ~luts:[ g2 ] ()
  in
  check_silent "generous budget" "timing-violation" (Sec.run ok)

let test_sec_config_leak () =
  let nl, g = tiny_comb () in
  (* keep_function:true leaves the secret truth table in the "foundry" view *)
  let leaky = Transform.replace_many ~keep_function:true nl [ g ] in
  let v = Sec.view ~foundry:leaky ~luts:[ g ] () in
  check_fires "configured LUT shipped" "config-leak" (Sec.run v);
  let stripped = Transform.strip_configs leaky in
  let ok = Sec.view ~foundry:stripped ~luts:[ g ] () in
  check_silent "stripped" "config-leak" (Sec.run ok)

let test_sec_not_a_lut () =
  let nl, g = tiny_comb () in
  let foundry = Transform.replace_many ~keep_function:false nl [ g ] in
  let a = Netlist.find_exn foundry "a" in
  let v = Sec.view ~foundry ~luts:[ g; a ] () in
  check_fires "PI listed as missing gate" "not-a-lut" (Sec.run v);
  let oob = Sec.view ~foundry ~luts:[ 999 ] () in
  check_fires "out of range id" "not-a-lut" (Sec.run oob)

(* ---------- clean-on-valid-input properties ---------- *)

let gen_spec =
  {
    Generator.design_name = "lintprop";
    n_pi = 6;
    n_po = 5;
    n_ff = 4;
    n_gates = 60;
    levels = 6;
  }

let lint_props =
  let gen_seed = QCheck2.Gen.int_range 0 10_000 in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"generator output has no structural errors"
         ~count:30 gen_seed
         (fun seed ->
           let nl = Generator.generate ~seed gen_spec in
           D.errors (Lint.structural nl) = 0));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"protect output lints clean for every algorithm" ~count:8
         gen_seed
         (fun seed ->
           let nl = Generator.generate ~seed gen_spec in
           List.for_all
             (fun algorithm ->
               (* Parametric selection can legitimately miss its timing
                  budget on an unlucky seed (the lint flags it as
                  SEC005); the unconstrained algorithms must always
                  lint clean, and the resilient wrapper must reseed or
                  degrade until the accepted result does too. *)
               let plain_clean =
                 match algorithm with
                 | Flow.Parametric _ -> true
                 | Flow.Independent _ | Flow.Dependent ->
                     let r = protect ~seed ~fraction:0.1 algorithm nl in
                     D.errors (Flow.lint_security r) = 0
                     && D.errors r.Flow.lint = 0
               in
               let res =
                 Flow.run ~seed ~fraction:0.1
                   ~policy:(Flow.Resilient Flow.default_resilience) algorithm
                   nl
               in
               let r = res.Flow.accepted in
               plain_clean
               && D.errors (Flow.lint_security r) = 0
               && D.errors r.Flow.lint = 0)
             Flow.default_algorithms));
  ]

let () =
  Alcotest.run "sttc_lint"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "basics" `Quick test_diag_basics;
          Alcotest.test_case "baseline" `Quick test_diag_baseline;
          Alcotest.test_case "render" `Quick test_diag_render;
          Alcotest.test_case "catalog" `Quick test_catalog;
        ] );
      ( "structural",
        [
          Alcotest.test_case "comb-loop" `Quick test_str_comb_loop;
          Alcotest.test_case "undriven-net" `Quick test_str_undriven;
          Alcotest.test_case "multi-driver" `Quick test_str_multi_driver;
          Alcotest.test_case "dangling-gate" `Quick test_str_dangling;
          Alcotest.test_case "arity-mismatch" `Quick test_str_arity;
          Alcotest.test_case "duplicate-name" `Quick test_str_duplicate_output;
          Alcotest.test_case "no-output" `Quick test_str_no_output;
        ] );
      ( "security",
        [
          Alcotest.test_case "trivial-lut" `Quick test_sec_trivial;
          Alcotest.test_case "broken-chain" `Quick test_sec_broken_chain;
          Alcotest.test_case "missing-neighbour" `Quick test_sec_missing_neighbour;
          Alcotest.test_case "unobservable-lut" `Quick test_sec_unobservable;
          Alcotest.test_case "timing-violation" `Quick test_sec_timing;
          Alcotest.test_case "config-leak" `Quick test_sec_config_leak;
          Alcotest.test_case "not-a-lut" `Quick test_sec_not_a_lut;
        ] );
      ("properties", lint_props);
    ]
