(* Tests for Sttc_lint: the diagnostics core, both rule packs (each rule
   fires on a minimal violating design), and the clean-on-valid-input
   properties the subsystem guarantees. *)

module D = Sttc_lint.Diagnostic
module Graph = Sttc_lint.Graph
module Structural = Sttc_lint.Structural
module Sec = Sttc_lint.Security_rules
module Lint = Sttc_lint.Lint
module Netlist = Sttc_netlist.Netlist
module Transform = Sttc_netlist.Transform
module Generator = Sttc_netlist.Generator
module Gate_fn = Sttc_logic.Gate_fn
module Flow = Sttc_core.Flow
module Sem = Sttc_lint.Semantic_rules
module Sweep = Sttc_lint.Sweep

(* strict single-attempt protection via the unified Flow.run entry point *)
let protect ?seed ?fraction ?hardening ?semantic alg nl =
  (Flow.run ?seed ?fraction ?hardening ?semantic ~policy:Flow.Strict alg nl)
    .Flow.accepted


let fires rule ds = List.exists (D.matches_rule rule) ds

let check_fires name rule ds =
  Alcotest.(check bool) (name ^ ": " ^ rule ^ " fires") true (fires rule ds)

let check_silent name rule ds =
  Alcotest.(check bool) (name ^ ": " ^ rule ^ " silent") false (fires rule ds)

(* ---------- diagnostics core ---------- *)

let d1 = D.make ~rule:"STR001" ~alias:"comb-loop" ~severity:D.Error ~node:"g1" "x"
let d2 = D.make ~rule:"SEC001" ~alias:"trivial-lut" ~severity:D.Warning "y"

let test_diag_basics () =
  Alcotest.(check string) "key" "STR001@g1" (D.key d1);
  Alcotest.(check string) "key no node" "SEC001@-" (D.key d2);
  Alcotest.(check int) "errors" 1 (D.errors [ d1; d2 ]);
  Alcotest.(check bool) "match id" true (D.matches_rule "str001" d1);
  Alcotest.(check bool) "match alias" true (D.matches_rule "comb-loop" d1);
  Alcotest.(check bool) "no match" false (D.matches_rule "STR002" d1);
  Alcotest.(check int) "sort worst first" (-1)
    (compare (D.compare d1 d2) 0);
  Alcotest.(check int) "filter" 1
    (List.length (D.filter_rules ~only:[ "SEC001" ] [ d1; d2 ]));
  Alcotest.(check int) "suppress" 1
    (List.length (D.suppress ~rules:[ "trivial-lut" ] [ d1; d2 ]))

let test_diag_baseline () =
  let b = D.baseline_of_diagnostics [ d1 ] in
  Alcotest.(check int) "baselined dropped" 1
    (List.length (D.apply_baseline b [ d1; d2 ]));
  let b2 = D.baseline_of_string (D.baseline_to_string b ^ "\n# comment\n") in
  Alcotest.(check int) "roundtrip" 1
    (List.length (D.apply_baseline b2 [ d1; d2 ]));
  Alcotest.(check int) "empty keeps all" 2
    (List.length (D.apply_baseline D.empty_baseline [ d1; d2 ]))

let test_diag_render () =
  let txt = D.render_text ~design:"t" [ d1; d2 ] in
  Alcotest.(check bool) "text has summary" true
    (String.length txt > 0
    && List.exists
         (fun line ->
           String.length line >= 8 && String.sub line 0 8 = "summary:")
         (String.split_on_char '\n' txt));
  let json = D.render_json ~design:"t" [ d1; d2 ] in
  Alcotest.(check bool) "json mentions rule" true
    (let n = String.length json in
     let needle = "\"STR001\"" in
     let k = String.length needle in
     let rec go i = i + k <= n && (String.sub json i k = needle || go (i + 1)) in
     go 0);
  (* empty list renders an empty diagnostics array *)
  let empty = D.render_json ~design:"t" [] in
  Alcotest.(check bool) "empty json" true
    (let n = String.length empty in
     let needle = "\"diagnostics\": []" in
     let k = String.length needle in
     let rec go i = i + k <= n && (String.sub empty i k = needle || go (i + 1)) in
     go 0)

let test_catalog () =
  Alcotest.(check int) "22 rules" 22 (List.length Lint.catalog);
  (match Lint.find_rule "comb-loop" with
  | Some r -> Alcotest.(check string) "alias lookup" "STR001" r.Structural.id
  | None -> Alcotest.fail "comb-loop not found");
  (match Lint.find_rule "SEC004" with
  | Some r -> Alcotest.(check string) "id lookup" "unobservable-lut" r.Structural.alias
  | None -> Alcotest.fail "SEC004 not found");
  (match Lint.find_rule "const-net" with
  | Some r -> Alcotest.(check string) "SEM alias lookup" "SEM001" r.Structural.id
  | None -> Alcotest.fail "const-net not found");
  (match Lint.find_rule "SEM008" with
  | Some r ->
      Alcotest.(check string) "SEM id lookup" "independent-testability"
        r.Structural.alias
  | None -> Alcotest.fail "SEM008 not found");
  Alcotest.(check bool) "unknown" true (Lint.find_rule "XYZ999" = None);
  let text = Lint.catalog_text () in
  Alcotest.(check bool) "catalog text" true (String.length text > 100);
  (* the catalog is grouped by pack: each header names its prefix *)
  List.iter
    (fun pack ->
      Alcotest.(check bool) ("catalog mentions " ^ pack) true
        (let n = String.length text and k = String.length pack in
         let rec go i = i + k <= n && (String.sub text i k = pack || go (i + 1)) in
         go 0))
    [ "STR"; "SEC"; "SEM" ]

(* ---------- structural rules on minimal violating graphs ---------- *)

let graph ?(design = "g") ?(outputs = [||]) nodes =
  { Graph.design; nodes = Array.of_list nodes; outputs }

let n name kind fanins = { Graph.name; kind; fanins = Array.of_list fanins }

let test_str_comb_loop () =
  (* g1 = AND(a, g2); g2 = BUF(g1): a two-gate combinational cycle *)
  let g =
    graph
      ~outputs:[| ("y", 1) |]
      [
        n "a" Graph.Pi [];
        n "g1" (Graph.Gate (Gate_fn.And 2)) [ 0; 2 ];
        n "g2" (Graph.Gate Gate_fn.Buf) [ 1 ];
      ]
  in
  check_fires "loop" "comb-loop" (Structural.run g);
  (* the same shape through a flip-flop is legal *)
  let ok =
    graph
      ~outputs:[| ("y", 1) |]
      [
        n "a" Graph.Pi [];
        n "g1" (Graph.Gate (Gate_fn.And 2)) [ 0; 2 ];
        n "ff" Graph.Dff [ 1 ];
      ]
  in
  check_silent "dff breaks loop" "comb-loop" (Structural.run ok)

let test_str_undriven () =
  let g =
    graph ~outputs:[| ("y", 0) |]
      [ n "g" (Graph.Gate Gate_fn.Buf) [ -1 ] ]
  in
  check_fires "bad fanin" "undriven-net" (Structural.run g);
  (* an output naming a nonexistent driver too *)
  let g2 =
    graph ~outputs:[| ("y", 7) |] [ n "a" Graph.Pi [] ]
  in
  check_fires "bad po" "undriven-net" (Structural.run g2)

let test_str_multi_driver () =
  let g =
    graph ~outputs:[| ("y", 1) |]
      [
        n "a" Graph.Pi [];
        n "s" (Graph.Gate Gate_fn.Buf) [ 0 ];
        n "s" (Graph.Gate Gate_fn.Not) [ 0 ];
      ]
  in
  check_fires "two drivers of s" "multi-driver" (Structural.run g)

let test_str_dangling () =
  let g =
    graph ~outputs:[| ("y", 1) |]
      [
        n "a" Graph.Pi [];
        n "live" (Graph.Gate Gate_fn.Buf) [ 0 ];
        n "dead" (Graph.Gate Gate_fn.Not) [ 0 ];
      ]
  in
  let ds = Structural.run g in
  check_fires "dead gate" "dangling-gate" ds;
  (* it is a warning, not an error *)
  Alcotest.(check int) "no errors" 0 (D.errors ds);
  (* a gate feeding only a flip-flop is not dangling *)
  let ok =
    graph ~outputs:[| ("y", 1) |]
      [
        n "a" Graph.Pi [];
        n "live" (Graph.Gate Gate_fn.Buf) [ 0 ];
        n "pre" (Graph.Gate Gate_fn.Not) [ 0 ];
        n "ff" Graph.Dff [ 2 ];
      ]
  in
  check_silent "ff fanin live" "dangling-gate" (Structural.run ok)

let test_str_arity () =
  let g =
    graph ~outputs:[| ("y", 1) |]
      [ n "a" Graph.Pi []; n "g" (Graph.Gate (Gate_fn.And 2)) [ 0 ] ]
  in
  check_fires "AND2 with one fanin" "arity-mismatch" (Structural.run g);
  let wide =
    graph ~outputs:[| ("y", 1) |]
      [
        n "a" Graph.Pi [];
        n "l" (Graph.Lut { arity = 7; configured = false })
          [ 0; 0; 0; 0; 0; 0; 0 ];
      ]
  in
  check_fires "7-LUT beyond tech max" "arity-mismatch" (Structural.run wide);
  let dff =
    graph ~outputs:[| ("y", 1) |]
      [ n "a" Graph.Pi []; n "ff" Graph.Dff [] ]
  in
  check_fires "unwired dff" "arity-mismatch" (Structural.run dff)

let test_str_duplicate_output () =
  let g =
    graph
      ~outputs:[| ("y", 1); ("y", 0) |]
      [ n "a" Graph.Pi []; n "g" (Graph.Gate Gate_fn.Buf) [ 0 ] ]
  in
  check_fires "duplicate PO name" "duplicate-name" (Structural.run g)

let test_str_no_output () =
  let g = graph [ n "a" Graph.Pi [] ] in
  check_fires "no outputs" "no-output" (Structural.run g)

(* ---------- security rules on corrupted hybrids ---------- *)

(* PI a,b; g = AND(a,b); PO y = g. *)
let tiny_comb () =
  let b = Netlist.Builder.create ~design_name:"tiny" () in
  let a = Netlist.Builder.add_pi b "a" in
  let bb = Netlist.Builder.add_pi b "b" in
  let g = Netlist.Builder.add_gate b "g" (Gate_fn.And 2) [ a; bb ] in
  Netlist.Builder.add_output b "y" g;
  (Netlist.Builder.finalize b, g)

let test_sec_trivial () =
  let nl, g = tiny_comb () in
  let foundry = Transform.replace_many ~keep_function:false nl [ g ] in
  let v = Sec.view ~foundry ~luts:[ g ] () in
  check_fires "PI-fed PO-driving LUT" "trivial-lut" (Sec.run v)

let test_sec_broken_chain () =
  (* two replaced gates on disjoint paths: neither reaches the other *)
  let b = Netlist.Builder.create ~design_name:"split" () in
  let a = Netlist.Builder.add_pi b "a" in
  let c = Netlist.Builder.add_pi b "c" in
  let g1 = Netlist.Builder.add_gate b "g1" Gate_fn.Not [ a ] in
  let g2 = Netlist.Builder.add_gate b "g2" Gate_fn.Not [ c ] in
  Netlist.Builder.add_output b "y1" g1;
  Netlist.Builder.add_output b "y2" g2;
  let nl = Netlist.Builder.finalize b in
  let foundry = Transform.replace_many ~keep_function:false nl [ g1; g2 ] in
  let broken =
    Sec.view ~algorithm:Sec.Dependent ~foundry ~luts:[ g1; g2 ] ()
  in
  check_fires "disjoint LUTs" "broken-chain" (Sec.run broken);
  (* the rule is gated on dependent selection *)
  let ungated = Sec.view ~algorithm:Sec.Independent ~foundry ~luts:[ g1; g2 ] () in
  check_silent "independent not gated" "broken-chain" (Sec.run ungated);
  (* a genuine chain g1 -> g2 is clean *)
  let b = Netlist.Builder.create ~design_name:"chain" () in
  let a = Netlist.Builder.add_pi b "a" in
  let g1 = Netlist.Builder.add_gate b "g1" Gate_fn.Not [ a ] in
  let g2 = Netlist.Builder.add_gate b "g2" Gate_fn.Buf [ g1 ] in
  Netlist.Builder.add_output b "y" g2;
  let nl = Netlist.Builder.finalize b in
  let foundry = Transform.replace_many ~keep_function:false nl [ g1; g2 ] in
  let ok = Sec.view ~algorithm:Sec.Dependent ~foundry ~luts:[ g1; g2 ] () in
  check_silent "chained LUTs" "broken-chain" (Sec.run ok)

let test_sec_missing_neighbour () =
  let nl, g = tiny_comb () in
  let foundry = Transform.replace_many ~keep_function:false nl [ g ] in
  let a = Netlist.find_exn foundry "a" in
  (* the meta claims PI [a] was a replaced neighbourhood gate: it is not
     a LUT slot, so the record is inconsistent with the foundry view *)
  let v =
    Sec.view ~algorithm:Sec.Parametric
      ~meta:{ Sec.usl = []; neighbours = [ a ] }
      ~foundry ~luts:[ g ] ()
  in
  check_fires "neighbour kept as CMOS" "missing-neighbour" (Sec.run v);
  let ok =
    Sec.view ~algorithm:Sec.Parametric
      ~meta:{ Sec.usl = []; neighbours = [ g ] }
      ~foundry ~luts:[ g ] ()
  in
  check_silent "neighbour replaced" "missing-neighbour" (Sec.run ok)

let test_sec_unobservable () =
  (* dead = NOT(a) reaches no PO; replacing it buys nothing *)
  let b = Netlist.Builder.create ~design_name:"dead" () in
  let a = Netlist.Builder.add_pi b "a" in
  let live = Netlist.Builder.add_gate b "live" Gate_fn.Buf [ a ] in
  let dead = Netlist.Builder.add_gate b "dead" Gate_fn.Not [ a ] in
  Netlist.Builder.add_output b "y" live;
  let nl = Netlist.Builder.finalize b in
  let foundry = Transform.replace_many ~keep_function:false nl [ dead ] in
  let v = Sec.view ~foundry ~luts:[ dead ] () in
  check_fires "LUT in dead logic" "unobservable-lut" (Sec.run v);
  let live_foundry = Transform.replace_many ~keep_function:false nl [ live ] in
  let ok = Sec.view ~foundry:live_foundry ~luts:[ live ] () in
  check_silent "LUT on live path" "unobservable-lut" (Sec.run ok)

let test_sec_timing () =
  (* an impossible budget (half the original delay) must always violate;
     with a parametric claim and the LUT on the critical path this is an
     error, otherwise a warning *)
  let b = Netlist.Builder.create ~design_name:"slow" () in
  let a = Netlist.Builder.add_pi b "a" in
  let g1 = Netlist.Builder.add_gate b "g1" Gate_fn.Not [ a ] in
  let g2 = Netlist.Builder.add_gate b "g2" Gate_fn.Not [ g1 ] in
  Netlist.Builder.add_output b "y" g2;
  let nl = Netlist.Builder.finalize b in
  let foundry = Transform.replace_many ~keep_function:false nl [ g2 ] in
  let v =
    Sec.view ~algorithm:Sec.Parametric ~original:nl ~clock_factor:0.5 ~foundry
      ~luts:[ g2 ] ()
  in
  let ds = Sec.run v in
  check_fires "budget blown" "timing-violation" ds;
  Alcotest.(check bool) "error for parametric LUT on path" true
    (List.exists
       (fun d -> D.matches_rule "SEC005" d && d.D.severity = D.Error)
       ds);
  let warn =
    Sec.view ~algorithm:Sec.Independent ~original:nl ~clock_factor:0.5 ~foundry
      ~luts:[ g2 ] ()
  in
  Alcotest.(check bool) "warning when not parametric" true
    (List.exists
       (fun d -> D.matches_rule "SEC005" d && d.D.severity = D.Warning)
       (Sec.run warn));
  (* a generous budget passes *)
  let ok =
    Sec.view ~algorithm:Sec.Parametric ~original:nl ~clock_factor:100.0 ~foundry
      ~luts:[ g2 ] ()
  in
  check_silent "generous budget" "timing-violation" (Sec.run ok)

let test_sec_config_leak () =
  let nl, g = tiny_comb () in
  (* keep_function:true leaves the secret truth table in the "foundry" view *)
  let leaky = Transform.replace_many ~keep_function:true nl [ g ] in
  let v = Sec.view ~foundry:leaky ~luts:[ g ] () in
  check_fires "configured LUT shipped" "config-leak" (Sec.run v);
  let stripped = Transform.strip_configs leaky in
  let ok = Sec.view ~foundry:stripped ~luts:[ g ] () in
  check_silent "stripped" "config-leak" (Sec.run ok)

let test_sec_not_a_lut () =
  let nl, g = tiny_comb () in
  let foundry = Transform.replace_many ~keep_function:false nl [ g ] in
  let a = Netlist.find_exn foundry "a" in
  let v = Sec.view ~foundry ~luts:[ g; a ] () in
  check_fires "PI listed as missing gate" "not-a-lut" (Sec.run v);
  let oob = Sec.view ~foundry ~luts:[ 999 ] () in
  check_fires "out of range id" "not-a-lut" (Sec.run oob)

(* ---------- semantic rules ---------- *)

let contains hay needle =
  let n = String.length hay and k = String.length needle in
  let rec go i = i + k <= n && (String.sub hay i k = needle || go (i + 1)) in
  go 0

let sem ?luts ?configs ?budget ?only nl =
  Sem.run ?only (Sem.view ?luts ?configs ?budget nl)

let test_sem_const_net () =
  (* g = AND(a, NOT a) is stuck at 0, but only a semantic analysis can
     see it; o = OR(g, b) keeps the cone alive *)
  let b = Netlist.Builder.create ~design_name:"const" () in
  let a = Netlist.Builder.add_pi b "a" in
  let bb = Netlist.Builder.add_pi b "b" in
  let na = Netlist.Builder.add_gate b "na" Gate_fn.Not [ a ] in
  let g = Netlist.Builder.add_gate b "g" (Gate_fn.And 2) [ a; na ] in
  let o = Netlist.Builder.add_gate b "o" (Gate_fn.Or 2) [ g; bb ] in
  Netlist.Builder.add_output b "y" o;
  let nl = Netlist.Builder.finalize b in
  let ds = sem nl in
  check_fires "contradiction" "const-net" ds;
  (match List.find_opt (D.matches_rule "SEM001") ds with
  | Some d ->
      Alcotest.(check (option string)) "flags g" (Some "g") d.D.node;
      Alcotest.(check bool) "proved by SAT" true (contains d.D.detail "SAT")
  | None -> Alcotest.fail "no SEM001 diagnostic");
  (* a plain AND of two PIs is not constant *)
  let nl, _ = tiny_comb () in
  check_silent "free AND" "const-net" (sem nl)

(* PI a,b; unconfigured LUT l(a,b); m = AND(l, const0); PO y = OR(m, b):
   the constant masks every path from l to the PO *)
let masked_lut () =
  let b = Netlist.Builder.create ~design_name:"masked" () in
  let a = Netlist.Builder.add_pi b "a" in
  let bb = Netlist.Builder.add_pi b "b" in
  let z = Netlist.Builder.add_const b "z" false in
  let l = Netlist.Builder.add_lut b "l" [ a; bb ] in
  let m = Netlist.Builder.add_gate b "m" (Gate_fn.And 2) [ l; z ] in
  let o = Netlist.Builder.add_gate b "o" (Gate_fn.Or 2) [ m; bb ] in
  Netlist.Builder.add_output b "y" o;
  (Netlist.Builder.finalize b, l)

let test_sem_dead_logic () =
  let nl, _ = masked_lut () in
  let ds = sem nl in
  check_fires "masked LUT" "dead-logic" ds;
  Alcotest.(check bool) "flags l" true
    (List.exists
       (fun d -> D.matches_rule "SEM002" d && d.D.node = Some "l")
       ds);
  let nl, _ = tiny_comb () in
  check_silent "live AND" "dead-logic" (sem nl)

let test_sem_key_collapse () =
  let nl, l = masked_lut () in
  let ds = sem ~luts:[ l ] nl in
  check_fires "masked key bits" "key-collapse" ds;
  Alcotest.(check bool) "collapse is an error" true
    (List.exists
       (fun d -> D.matches_rule "SEM003" d && d.D.severity = D.Error)
       ds);
  (* an observable LUT keeps its key bits meaningful *)
  let nl, g = tiny_comb () in
  let foundry = Transform.replace_many ~keep_function:false nl [ g ] in
  check_silent "observable LUT" "key-collapse" (sem ~luts:[ g ] foundry)

let test_sem_redundant_node () =
  (* two structurally distinct but equal gates; a buffer alias of one *)
  let b = Netlist.Builder.create ~design_name:"dup" () in
  let a = Netlist.Builder.add_pi b "a" in
  let bb = Netlist.Builder.add_pi b "b" in
  let g1 = Netlist.Builder.add_gate b "g1" (Gate_fn.Or 2) [ a; bb ] in
  let g2 = Netlist.Builder.add_gate b "g2" (Gate_fn.Or 2) [ bb; a ] in
  let g3 = Netlist.Builder.add_gate b "g3" Gate_fn.Buf [ g1 ] in
  Netlist.Builder.add_output b "y1" g1;
  Netlist.Builder.add_output b "y2" g2;
  Netlist.Builder.add_output b "y3" g3;
  let nl = Netlist.Builder.finalize b in
  let ds = sem nl in
  (match List.find_opt (D.matches_rule "SEM004") ds with
  | Some d ->
      Alcotest.(check (option string)) "flags g2" (Some "g2") d.D.node;
      Alcotest.(check bool) "names partner" true (contains d.D.detail "g1")
  | None -> Alcotest.fail "no SEM004 diagnostic");
  (* the buffer alias is definitional, not a semantic discovery *)
  Alcotest.(check bool) "buffer not flagged" false
    (List.exists
       (fun d -> D.matches_rule "SEM004" d && d.D.node = Some "g3")
       ds)

let test_sem_const_lut_input () =
  let b = Netlist.Builder.create ~design_name:"clutin" () in
  let a = Netlist.Builder.add_pi b "a" in
  let na = Netlist.Builder.add_gate b "na" Gate_fn.Not [ a ] in
  let g = Netlist.Builder.add_gate b "g" (Gate_fn.And 2) [ a; na ] in
  let l = Netlist.Builder.add_lut b "l" [ a; g ] in
  Netlist.Builder.add_output b "y" l;
  let nl = Netlist.Builder.finalize b in
  let ds = sem nl in
  check_fires "const-fed LUT" "const-lut-input" ds;
  let nl, g = tiny_comb () in
  let foundry = Transform.replace_many ~keep_function:false nl [ g ] in
  check_silent "PI-fed LUT" "const-lut-input" (sem ~luts:[ g ] foundry)

(* chain NOT -> NOT where the first gate also drives its own PO: the
   first is independently resolvable, the second only via closure *)
let not_chain () =
  let b = Netlist.Builder.create ~design_name:"chain2" () in
  let a = Netlist.Builder.add_pi b "a" in
  let g1 = Netlist.Builder.add_gate b "g1" Gate_fn.Not [ a ] in
  let g2 = Netlist.Builder.add_gate b "g2" Gate_fn.Not [ g1 ] in
  Netlist.Builder.add_output b "y1" g1;
  Netlist.Builder.add_output b "y2" g2;
  (Netlist.Builder.finalize b, g1, g2)

let test_sem_eq1_error () =
  (* a single isolated missing gate: Eq. 1 holds verbatim, the
     design-level error fires with a finite clock estimate *)
  let nl, g = tiny_comb () in
  let foundry = Transform.replace_many ~keep_function:false nl [ g ] in
  let ds = sem ~luts:[ g ] foundry in
  (match List.find_opt (D.matches_rule "SEM008") ds with
  | Some d ->
      Alcotest.(check bool) "error severity" true (d.D.severity = D.Error);
      Alcotest.(check bool) "cites Eq. 1" true (contains d.D.detail "Eq. 1");
      Alcotest.(check bool) "finite estimate" true
        (contains d.D.detail "clocks")
  | None -> Alcotest.fail "no SEM008 on an isolated LUT")

let test_sem_eq1_chain () =
  (* without the bitstream only the PO-driving gate resolves: warnings,
     no error *)
  let nl, g1, g2 = not_chain () in
  let foundry = Transform.replace_many ~keep_function:false nl [ g1; g2 ] in
  let ds = sem ~luts:[ g1; g2 ] foundry in
  Alcotest.(check int) "no errors" 0 (D.errors ds);
  Alcotest.(check bool) "g1 resolvable warning" true
    (List.exists
       (fun d -> D.matches_rule "SEM008" d && d.D.node = Some "g1")
       ds);
  Alcotest.(check bool) "g2 not resolvable" false
    (List.exists
       (fun d -> D.matches_rule "SEM008" d && d.D.node = Some "g2")
       ds)

let test_sem_eq1_closure () =
  (* with the true bitstream the attacker substitutes g1 and peels g2 in
     round 2 — reported as closure intel, still not the Eq. 1 error *)
  let nl, g1, g2 = not_chain () in
  let configured = Transform.replace_many ~keep_function:true nl [ g1; g2 ] in
  let configs =
    List.filter_map
      (fun l ->
        match Netlist.kind configured l with
        | Netlist.Lut { config = Some c; _ } -> Some (l, c)
        | _ -> None)
      [ g1; g2 ]
  in
  let foundry = Transform.strip_configs configured in
  let ds = sem ~luts:[ g1; g2 ] ~configs foundry in
  Alcotest.(check int) "no errors" 0 (D.errors ds);
  (match
     List.find_opt
       (fun d -> D.matches_rule "SEM008" d && d.D.node = Some "g2")
       ds
   with
  | Some d ->
      Alcotest.(check bool) "closure round 2" true
        (contains d.D.detail "round 2")
  | None -> Alcotest.fail "closure did not peel g2")

let test_sem_budget () =
  (* budget 0: any query needing even one conflict is cut off; the pack
     degrades to the SEM006 warning and must claim no error (a tiny
     circuit would solve everything by pure propagation, so use a
     protected 60-gate netlist where real search is required) *)
  let spec =
    {
      Generator.design_name = "budget";
      n_pi = 6;
      n_po = 5;
      n_ff = 4;
      n_gates = 60;
      levels = 6;
    }
  in
  let nl = Generator.generate ~seed:1 spec in
  let r = protect ~seed:1 ~fraction:0.1 (Flow.Independent { count = 3 }) nl in
  let h = r.Flow.hybrid in
  let ds =
    sem
      ~luts:(Sttc_core.Hybrid.lut_ids h)
      ~budget:0
      (Sttc_core.Hybrid.foundry_view h)
  in
  check_fires "cutoffs surface" "sem-budget" ds;
  Alcotest.(check int) "no errors under cutoff" 0 (D.errors ds)

(* brute-force differential check: every SEM001/SEM004 claim on a small
   netlist verified by exhaustive enumeration of the <= 2^12 source
   assignments, and every true constant claimed (completeness) *)
let test_sem_differential () =
  let spec =
    {
      Generator.design_name = "diff";
      n_pi = 8;
      n_po = 5;
      n_ff = 4;
      n_gates = 40;
      levels = 5;
    }
  in
  List.iter
    (fun seed ->
      let nl = Sttc_netlist.Opt.optimize (Generator.generate ~seed spec) in
      let ds = sem nl in
      let n = Netlist.node_count nl in
      let n_pi = List.length (Netlist.pis nl) in
      let n_ff = List.length (Netlist.dffs nl) in
      let total = 1 lsl (n_pi + n_ff) in
      (* enumerate all source assignments in 64-lane batches, collecting
         per-node: the set of values seen *)
      let simr = Sttc_sim.Simulator.create nl in
      let seen0 = Array.make n false and seen1 = Array.make n false in
      let values = Array.make n [] (* per batch, lanes *) in
      let batches = (total + 63) / 64 in
      for batch = 0 to batches - 1 do
        let lane_bits k =
          (* bit [k] of assignment (batch*64 + lane), packed over lanes *)
          let v = ref 0L in
          for lane = 0 to 63 do
            let a = (batch * 64) + lane in
            if a < total && (a lsr k) land 1 = 1 then
              v := Int64.logor !v (Int64.shift_left 1L lane)
          done;
          !v
        in
        let pis = Array.init n_pi lane_bits in
        let state = Array.init n_ff (fun i -> lane_bits (n_pi + i)) in
        Sttc_sim.Simulator.set_state simr state;
        ignore (Sttc_sim.Simulator.eval_comb simr pis);
        let nv = Sttc_sim.Simulator.node_values simr in
        let mask =
          (* only the first [total - batch*64] lanes are real *)
          let live = min 64 (total - (batch * 64)) in
          if live = 64 then -1L
          else Int64.sub (Int64.shift_left 1L live) 1L
        in
        for id = 0 to n - 1 do
          let v = Int64.logand nv.(id) mask in
          if v <> 0L then seen1.(id) <- true;
          if Int64.logand (Int64.lognot nv.(id)) mask <> 0L then
            seen0.(id) <- true;
          values.(id) <- Int64.logand nv.(id) mask :: values.(id)
        done
      done;
      let by_name nm =
        match Netlist.find nl nm with
        | Some id -> id
        | None -> Alcotest.fail ("diagnostic names unknown node " ^ nm)
      in
      List.iter
        (fun d ->
          match (d.D.rule, d.D.node) with
          | "SEM001", Some nm ->
              let id = by_name nm in
              let claimed_one = contains d.D.detail "stuck at 1" in
              Alcotest.(check bool)
                (Printf.sprintf "seed %d: %s constant" seed nm)
                true
                (if claimed_one then seen1.(id) && not seen0.(id)
                 else seen0.(id) && not seen1.(id))
          | "SEM004", Some nm ->
              let id = by_name nm in
              (* detail: "SAT-proved equal to <partner> on every ..." *)
              let partner =
                let words = String.split_on_char ' ' d.D.detail in
                let rec after = function
                  | "to" :: p :: _ -> p
                  | _ :: rest -> after rest
                  | [] -> Alcotest.fail "SEM004 detail names no partner"
                in
                after words
              in
              let pid = by_name partner in
              Alcotest.(check bool)
                (Printf.sprintf "seed %d: %s = %s" seed nm partner)
                true
                (List.for_all2 Int64.equal values.(id) values.(pid))
          | _ -> ())
        ds;
      (* completeness: a gate constant across the full enumeration must
         be claimed by SEM001 (small circuit: no budget cutoffs) *)
      for id = 0 to n - 1 do
        let eligible =
          match Netlist.kind nl id with
          | Netlist.Gate _ -> true
          | _ -> false
        in
        if eligible && not (seen0.(id) && seen1.(id)) then
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: constant %s claimed" seed
               (Netlist.name nl id))
            true
            (List.exists
               (fun d ->
                 D.matches_rule "SEM001" d
                 && d.D.node = Some (Netlist.name nl id))
               ds)
      done)
    [ 3; 11; 42 ]

(* the ci.sh gate, in-process: at seed 7 on s27, independent selection
   of two gates is Eq. 1-weak (error), the loosened-clock parametric
   closure is not (exit 0 = no errors) *)
let test_sem_s27_gate () =
  let nl = (List.assoc "s27" Sttc_netlist.Iscas_data.all) () in
  let sem_of alg =
    let r = protect ~seed:7 alg nl in
    let h = r.Flow.hybrid in
    sem
      ~luts:(Sttc_core.Hybrid.lut_ids h)
      ~configs:(Sttc_core.Hybrid.bitstream h)
      (Sttc_core.Hybrid.foundry_view h)
  in
  let ind = sem_of (Flow.Independent { count = 2 }) in
  Alcotest.(check bool) "independent trips SEM008" true
    (List.exists
       (fun d -> D.matches_rule "SEM008" d && d.D.severity = D.Error)
       ind);
  let par =
    sem_of
      (Flow.Parametric
         { Sttc_core.Algorithms.default_parametric with clock_factor = 2.0 })
  in
  Alcotest.(check int) "parametric passes" 0 (D.errors par);
  (* the same gate through Flow.run ~semantic: Strict raises on the
     independent weakness, accepts the parametric selection *)
  (match
     protect ~seed:7 ~semantic:true (Flow.Independent { count = 2 }) nl
   with
  | _ -> Alcotest.fail "strict semantic gate did not raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "raises with the SEM008 finding" true
        (contains msg "fails semantic lint" && contains msg "SEM008"));
  let ok =
    protect ~seed:7 ~semantic:true
      (Flow.Parametric
         { Sttc_core.Algorithms.default_parametric with clock_factor = 2.0 })
      nl
  in
  Alcotest.(check int) "accepted result lint-clean" 0 (D.errors ok.Flow.lint)

(* ---------- clean-on-valid-input properties ---------- *)

let gen_spec =
  {
    Generator.design_name = "lintprop";
    n_pi = 6;
    n_po = 5;
    n_ff = 4;
    n_gates = 60;
    levels = 6;
  }

let lint_props =
  let gen_seed = QCheck2.Gen.int_range 0 10_000 in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"generator output has no structural errors"
         ~count:30 gen_seed
         (fun seed ->
           let nl = Generator.generate ~seed gen_spec in
           D.errors (Lint.structural nl) = 0));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"protect output lints clean for every algorithm" ~count:8
         gen_seed
         (fun seed ->
           let nl = Generator.generate ~seed gen_spec in
           List.for_all
             (fun algorithm ->
               (* Parametric selection can legitimately miss its timing
                  budget on an unlucky seed (the lint flags it as
                  SEC005); the unconstrained algorithms must always
                  lint clean, and the resilient wrapper must reseed or
                  degrade until the accepted result does too. *)
               let plain_clean =
                 match algorithm with
                 | Flow.Parametric _ -> true
                 | Flow.Independent _ | Flow.Dependent ->
                     let r = protect ~seed ~fraction:0.1 algorithm nl in
                     D.errors (Flow.lint_security r) = 0
                     && D.errors r.Flow.lint = 0
               in
               let res =
                 Flow.run ~seed ~fraction:0.1
                   ~policy:(Flow.Resilient Flow.default_resilience) algorithm
                   nl
               in
               let r = res.Flow.accepted in
               plain_clean
               && D.errors (Flow.lint_security r) = 0
               && D.errors r.Flow.lint = 0)
             Flow.default_algorithms));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"semantic pack is silent on SAT-swept generated netlists"
         ~count:10 gen_seed
         (fun seed ->
           let nl = Generator.generate ~seed gen_spec in
           let swept, _ = Sweep.run ~seed nl in
           Sem.run (Sem.view swept) = []));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"SAT sweeping preserves sequential PO behaviour" ~count:10
         gen_seed
         (fun seed ->
           let orig = Generator.generate ~seed gen_spec in
           let swept, _ = Sweep.run ~seed orig in
           let rng = Random.State.make [| seed; 0x5eed |] in
           let sim_o = Sttc_sim.Simulator.create orig in
           let sim_s = Sttc_sim.Simulator.create swept in
           let pi_names nl =
             List.map (Netlist.name nl) (Netlist.pis nl)
           in
           let names_o = pi_names orig and names_s = pi_names swept in
           (* 20 cycles of 64 random patterns, fed by PI name *)
           let cycles =
             List.init 20 (fun _ ->
                 List.map
                   (fun n -> (n, Random.State.int64 rng Int64.max_int))
                   names_o)
           in
           let lanes names cyc =
             Array.of_list (List.map (fun n -> List.assoc n cyc) names)
           in
           let po_o =
             Sttc_sim.Simulator.run_sequence sim_o
               (List.map (lanes names_o) cycles)
           in
           let po_s =
             Sttc_sim.Simulator.run_sequence sim_s
               (List.map (lanes names_s) cycles)
           in
           let outs_o = Netlist.outputs orig in
           let outs_s = Netlist.outputs swept in
           List.for_all2
             (fun vo vs ->
               Array.for_all
                 (fun (nm, _) ->
                   let slot outs =
                     let r = ref (-1) in
                     Array.iteri (fun k (n2, _) -> if n2 = nm then r := k) outs;
                     !r
                   in
                   Int64.equal vo.(slot outs_o) vs.(slot outs_s))
                 outs_o)
             po_o po_s));
  ]

let () =
  Alcotest.run "sttc_lint"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "basics" `Quick test_diag_basics;
          Alcotest.test_case "baseline" `Quick test_diag_baseline;
          Alcotest.test_case "render" `Quick test_diag_render;
          Alcotest.test_case "catalog" `Quick test_catalog;
        ] );
      ( "structural",
        [
          Alcotest.test_case "comb-loop" `Quick test_str_comb_loop;
          Alcotest.test_case "undriven-net" `Quick test_str_undriven;
          Alcotest.test_case "multi-driver" `Quick test_str_multi_driver;
          Alcotest.test_case "dangling-gate" `Quick test_str_dangling;
          Alcotest.test_case "arity-mismatch" `Quick test_str_arity;
          Alcotest.test_case "duplicate-name" `Quick test_str_duplicate_output;
          Alcotest.test_case "no-output" `Quick test_str_no_output;
        ] );
      ( "security",
        [
          Alcotest.test_case "trivial-lut" `Quick test_sec_trivial;
          Alcotest.test_case "broken-chain" `Quick test_sec_broken_chain;
          Alcotest.test_case "missing-neighbour" `Quick test_sec_missing_neighbour;
          Alcotest.test_case "unobservable-lut" `Quick test_sec_unobservable;
          Alcotest.test_case "timing-violation" `Quick test_sec_timing;
          Alcotest.test_case "config-leak" `Quick test_sec_config_leak;
          Alcotest.test_case "not-a-lut" `Quick test_sec_not_a_lut;
        ] );
      ( "semantic",
        [
          Alcotest.test_case "const-net" `Quick test_sem_const_net;
          Alcotest.test_case "dead-logic" `Quick test_sem_dead_logic;
          Alcotest.test_case "key-collapse" `Quick test_sem_key_collapse;
          Alcotest.test_case "redundant-node" `Quick test_sem_redundant_node;
          Alcotest.test_case "const-lut-input" `Quick test_sem_const_lut_input;
          Alcotest.test_case "eq1-error" `Quick test_sem_eq1_error;
          Alcotest.test_case "eq1-chain" `Quick test_sem_eq1_chain;
          Alcotest.test_case "eq1-closure" `Quick test_sem_eq1_closure;
          Alcotest.test_case "budget" `Quick test_sem_budget;
          Alcotest.test_case "differential" `Slow test_sem_differential;
          Alcotest.test_case "s27-gate" `Slow test_sem_s27_gate;
        ] );
      ("properties", lint_props);
    ]
