(* Tests for Sttc_fault (MTJ write channel, SECDED code, design-level
   fault injection) and the resilience built on it: the retrying
   provisioner, the hardened bitstream parser and the crash-tolerant
   experiment runner. *)

module Netlist = Sttc_netlist.Netlist
module Generator = Sttc_netlist.Generator
module Truth = Sttc_logic.Truth
module Rng = Sttc_util.Rng
module Timing = Sttc_util.Timing
module Mtj = Sttc_fault.Mtj
module Ecc = Sttc_fault.Ecc
module Inject = Sttc_fault.Inject
module Flow = Sttc_core.Flow

(* strict single-attempt protection via the unified Flow.run entry point *)
let protect ?seed ?fraction ?hardening alg nl =
  (Flow.run ?seed ?fraction ?hardening ~policy:Flow.Strict alg nl)
    .Flow.accepted

module Hybrid = Sttc_core.Hybrid
module Provision = Sttc_core.Provision
module Runner = Sttc_experiments.Runner

let to_case = QCheck_alcotest.to_alcotest

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let small_circuit seed =
  Generator.generate ~seed
    {
      Generator.design_name = "flt";
      n_pi = 8;
      n_po = 6;
      n_ff = 5;
      n_gates = 70;
      levels = 6;
    }

let equivalent a b =
  match Sttc_sim.Equiv.check_sat a b with
  | Sttc_sim.Equiv.Equivalent -> true
  | _ -> false

(* ---------- Ecc ---------- *)

let test_ecc_parity_bits () =
  Alcotest.(check int) "4 data" 4 (Ecc.parity_bits 4);
  Alcotest.(check int) "8 data" 5 (Ecc.parity_bits 8);
  Alcotest.(check int) "16 data" 6 (Ecc.parity_bits 16);
  Alcotest.(check int) "64 data" 8 (Ecc.parity_bits 64);
  Alcotest.(check bool) "n < 1 rejected" true
    (try
       ignore (Ecc.parity_bits 0);
       false
     with Invalid_argument _ -> true)

let prop_ecc_clean_roundtrip =
  QCheck2.Test.make ~name:"ecc: undisturbed codeword decodes Clean" ~count:200
    QCheck2.Gen.(pair (int_range 1 64) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Rng.make seed in
      let data = Array.init n (fun _ -> Rng.bool rng) in
      Ecc.decode ~data ~parity:(Ecc.encode data) = Ecc.Clean)

let prop_ecc_single_data_flip_corrected =
  QCheck2.Test.make ~name:"ecc: any single data flip is corrected" ~count:200
    QCheck2.Gen.(pair (int_range 1 64) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Rng.make seed in
      let data = Array.init n (fun _ -> Rng.bool rng) in
      let parity = Ecc.encode data in
      let flip_at = Rng.int rng n in
      let bad = Array.copy data in
      bad.(flip_at) <- not bad.(flip_at);
      match Ecc.decode ~data:bad ~parity with
      | Ecc.Corrected repaired -> repaired = data
      | Ecc.Clean | Ecc.Uncorrectable -> false)

let prop_ecc_single_parity_flip_corrected =
  QCheck2.Test.make ~name:"ecc: any single parity flip leaves data intact"
    ~count:200
    QCheck2.Gen.(pair (int_range 1 64) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Rng.make seed in
      let data = Array.init n (fun _ -> Rng.bool rng) in
      let parity = Ecc.encode data in
      let flip_at = Rng.int rng (Array.length parity) in
      let bad = Array.copy parity in
      bad.(flip_at) <- not bad.(flip_at);
      match Ecc.decode ~data ~parity:bad with
      | Ecc.Corrected repaired -> repaired = data
      | Ecc.Clean | Ecc.Uncorrectable -> false)

let prop_ecc_double_flip_detected =
  QCheck2.Test.make ~name:"ecc: any double data flip is Uncorrectable"
    ~count:200
    QCheck2.Gen.(pair (int_range 2 64) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Rng.make seed in
      let data = Array.init n (fun _ -> Rng.bool rng) in
      let parity = Ecc.encode data in
      let i = Rng.int rng n in
      let j = (i + 1 + Rng.int rng (n - 1)) mod n in
      let bad = Array.copy data in
      bad.(i) <- not bad.(i);
      bad.(j) <- not bad.(j);
      Ecc.decode ~data:bad ~parity = Ecc.Uncorrectable)

(* ---------- Mtj ---------- *)

let test_mtj_ideal_channel () =
  let ch = Mtj.channel ~seed:3 Mtj.ideal in
  for cell = 0 to 15 do
    let target = cell mod 3 = 0 in
    Alcotest.(check bool) "write sticks" target
      (Mtj.write ch ~lut:"u1" ~cell target);
    Alcotest.(check bool) "read agrees" target (Mtj.read ch ~lut:"u1" ~cell)
  done;
  Alcotest.(check int) "attempts counted" 16 (Mtj.attempts ch);
  Alcotest.(check bool) "no stuck cells" false (Mtj.is_stuck ch ~lut:"u1" ~cell:0)

let test_mtj_deterministic_across_order () =
  let spec = Mtj.spec ~write_error_rate:0.3 ~stuck_cell_rate:0.1 () in
  let addresses =
    List.concat_map
      (fun lut -> List.init 8 (fun cell -> (lut, cell)))
      [ "u1"; "u2"; "u3" ]
  in
  let program order =
    let ch = Mtj.channel ~seed:42 spec in
    List.iter (fun (lut, cell) -> ignore (Mtj.write ch ~lut ~cell true)) order;
    List.map (fun (lut, cell) -> Mtj.read ch ~lut ~cell) addresses
  in
  Alcotest.(check (list bool)) "write order is irrelevant"
    (program addresses)
    (program (List.rev addresses))

let test_mtj_always_failing_writes () =
  (* rate 1: no write ever changes a cell, so read-back equals the
     as-fabricated value regardless of target *)
  let spec = Mtj.spec ~write_error_rate:1.0 () in
  let ch = Mtj.channel ~seed:5 spec in
  for cell = 0 to 31 do
    let fabricated = Mtj.read ch ~lut:"u9" ~cell in
    Alcotest.(check bool) "failed write keeps value" fabricated
      (Mtj.write ch ~lut:"u9" ~cell (not fabricated))
  done

let test_mtj_stuck_cells () =
  let spec = Mtj.spec ~stuck_cell_rate:1.0 () in
  let ch = Mtj.channel ~seed:6 spec in
  for cell = 0 to 15 do
    Alcotest.(check bool) "all stuck" true (Mtj.is_stuck ch ~lut:"u2" ~cell);
    let fabricated = Mtj.read ch ~lut:"u2" ~cell in
    ignore (Mtj.write ch ~lut:"u2" ~cell (not fabricated));
    Alcotest.(check bool) "stuck cell never changes" fabricated
      (Mtj.read ch ~lut:"u2" ~cell)
  done

let test_mtj_escalation_energy () =
  let spec = Mtj.spec ~escalation_gain:10. () in
  let ch = Mtj.channel ~seed:7 spec in
  ignore (Mtj.write ch ~lut:"u1" ~cell:0 true);
  ignore (Mtj.write ch ~lut:"u1" ~cell:1 ~escalation:2 true);
  (* 10^0 + 10^2 units *)
  Alcotest.(check (float 1e-9)) "energy accounting" 101. (Mtj.energy_units ch);
  Alcotest.(check int) "verify per attempt" 2 (Mtj.verify_reads ch)

let test_mtj_spec_validation () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "rate > 1" true
    (rejects (fun () -> Mtj.spec ~write_error_rate:1.5 ()));
  Alcotest.(check bool) "negative rate" true
    (rejects (fun () -> Mtj.spec ~stuck_cell_rate:(-0.1) ()));
  Alcotest.(check bool) "gain < 1" true
    (rejects (fun () -> Mtj.spec ~escalation_gain:0.5 ()))

(* ---------- Inject ---------- *)

let programmed_hybrid seed =
  let nl = small_circuit seed in
  let r = protect ~seed (Flow.Independent { count = 4 }) nl in
  (nl, r.Flow.hybrid)

let test_inject_retention_rate_bounds () =
  let _, h = programmed_hybrid 31 in
  let nl = Hybrid.programmed h in
  let none, flips0 = Inject.retention_flips ~rng:(Rng.make 1) ~rate:0. nl in
  Alcotest.(check int) "rate 0 flips nothing" 0 (List.length flips0);
  Alcotest.(check bool) "rate 0 is the identity" true (equivalent nl none);
  let _, flips1 = Inject.retention_flips ~rng:(Rng.make 1) ~rate:1. nl in
  Alcotest.(check int) "rate 1 flips every config bit"
    (Hybrid.bitstream_bits h) (List.length flips1);
  Alcotest.(check bool) "bad rate rejected" true
    (try
       ignore (Inject.retention_flips ~rng:(Rng.make 1) ~rate:2. nl);
       false
     with Invalid_argument _ -> true)

let test_inject_stuck_at () =
  let _, h = programmed_hybrid 32 in
  let nl = Hybrid.programmed h in
  let net = Netlist.name nl (List.hd (Netlist.gates nl)) in
  let faulty = Inject.stuck_at nl ~net true in
  (match Netlist.kind faulty (Netlist.find_exn faulty net) with
  | Netlist.Const true -> ()
  | _ -> Alcotest.fail "driver must become Const true");
  Alcotest.(check bool) "unknown net rejected" true
    (try
       ignore (Inject.stuck_at nl ~net:"no-such-net" false);
       false
     with Invalid_argument _ -> true)

let test_inject_random_stuck_ats () =
  let _, h = programmed_hybrid 33 in
  let nl = Hybrid.programmed h in
  let faulty, faults = Inject.random_stuck_ats ~rng:(Rng.make 5) ~count:3 nl in
  Alcotest.(check int) "three faults" 3 (List.length faults);
  Alcotest.(check int) "distinct nets" 3
    (List.length (List.sort_uniq compare (List.map fst faults)));
  List.iter
    (fun (net, v) ->
      match Netlist.kind faulty (Netlist.find_exn faulty net) with
      | Netlist.Const c ->
          Alcotest.(check bool) ("constant at " ^ net) v c
      | _ -> Alcotest.fail ("no constant at " ^ net))
    faults

(* ---------- Provision.parse hardening ---------- *)

let reference_entries seed =
  let _, h = programmed_hybrid seed in
  Provision.of_hybrid h

let test_parse_crlf_and_whitespace () =
  let entries = reference_entries 34 in
  let text = Provision.to_string entries in
  let crlf =
    String.concat "\r\n" (String.split_on_char '\n' text) ^ "\r\n"
  in
  let padded =
    String.concat "\n"
      (List.map (fun l -> l ^ "   \t") (String.split_on_char '\n' text))
  in
  List.iter
    (fun mangled ->
      let back = Provision.parse mangled in
      Alcotest.(check int) "entry count survives" (List.length entries)
        (List.length back);
      List.iter2
        (fun a b ->
          Alcotest.(check string) "name" a.Provision.lut_name b.Provision.lut_name;
          Alcotest.(check bool) "config" true
            (Truth.equal a.Provision.config b.Provision.config))
        entries back)
    [ crlf; padded ]

let test_parse_reports_line_numbers () =
  let fails_with_line text =
    match Provision.parse_result text with
    | Ok _ -> Alcotest.fail "malformed bitstream accepted"
    | Error msg ->
        Alcotest.(check bool) ("labelled: " ^ msg) true (contains msg "bitstream:")
  in
  fails_with_line "u1 01x0";
  fails_with_line "u1 010";
  (* not a power of two *)
  fails_with_line "u1 01\nu1 10";
  (* duplicate *)
  fails_with_line "justaname"

let prop_parse_never_escapes =
  QCheck2.Test.make
    ~name:"corrupted bitstream: parse is total modulo labelled Failure"
    ~count:300
    QCheck2.Gen.(
      triple (int_range 0 1_000_000) (int_range 0 12) (int_range 0 400))
    (fun (seed, char_flips, cut) ->
      let entries = reference_entries 35 in
      let text = Provision.to_string entries in
      let mangled =
        Inject.corrupt_bitstream ~rng:(Rng.make seed) ~char_flips
          ~truncate_at:(min cut (String.length text))
          text
      in
      match Provision.parse mangled with
      | _ -> true
      | exception Failure msg ->
          (* the contract: a Failure naming the offending line *)
          contains msg "bitstream:"
      | exception _ -> false)

(* ---------- Provision.program: resilient provisioning ---------- *)

(* The ISCAS-profile acceptance scenario: at write-error rate 1e-3 the
   one-shot provisioner fails this die (channel seed 9, found by
   search), while the retrying one programs it exactly, with sign-off
   equivalence on the repaired view. *)
let acceptance_fixture () =
  let nl = Sttc_netlist.Iscas_profiles.build_by_name "s641" in
  let r = protect ~seed:7 Flow.Dependent nl in
  (nl, Hybrid.foundry_view r.Flow.hybrid, Provision.of_hybrid r.Flow.hybrid)

let test_program_acceptance_1e3 () =
  let nl, foundry, entries = acceptance_fixture () in
  let spec = Mtj.spec ~write_error_rate:1e-3 () in
  let zero =
    Provision.program ~resilience:Provision.no_resilience
      ~channel:(Mtj.channel ~seed:9 spec) foundry entries
  in
  (match zero.Provision.outcome with
  | Provision.Failed (Provision.Unprogrammable cells) ->
      Alcotest.(check bool) "names the bad cells" true (cells <> [])
  | _ -> Alcotest.fail "zero-retry provisioning must fail on this die");
  let resilient =
    Provision.program ~resilience:Provision.default_resilience
      ~channel:(Mtj.channel ~seed:9 spec) foundry entries
  in
  (match resilient.Provision.outcome with
  | Provision.Programmed | Provision.Degraded _ -> ()
  | Provision.Failed _ -> Alcotest.fail "retrying provisioner must succeed");
  Alcotest.(check (list (pair string int))) "no failed bits" []
    resilient.Provision.failed_bits;
  (match resilient.Provision.view with
  | Some view ->
      Alcotest.(check bool) "sign-off equivalence on the repaired view" true
        (equivalent nl view)
  | None -> Alcotest.fail "resilient report must carry the programmed view");
  Alcotest.(check bool) "extra write attempts were spent" true
    (resilient.Provision.write_attempts > zero.Provision.write_attempts)

let test_program_degraded_by_spares () =
  let nl, foundry, entries = acceptance_fixture () in
  let spec = Mtj.spec ~write_error_rate:1e-4 ~stuck_cell_rate:0.01 () in
  let report =
    Provision.program ~resilience:Provision.default_resilience
      ~channel:(Mtj.channel ~seed:1 spec) foundry entries
  in
  (match report.Provision.outcome with
  | Provision.Degraded { spared_bits; _ } ->
      Alcotest.(check bool) "stuck rows remapped to spares" true (spared_bits > 0)
  | _ -> Alcotest.fail "this die must come out Degraded");
  match report.Provision.view with
  | Some view ->
      Alcotest.(check bool) "degraded part still equivalent" true
        (equivalent nl view)
  | None -> Alcotest.fail "degraded report must carry the view"

let test_program_degraded_by_ecc () =
  let nl, foundry, entries = acceptance_fixture () in
  let spec = Mtj.spec ~write_error_rate:1e-4 ~stuck_cell_rate:0.01 () in
  let resilience = { Provision.default_resilience with spare_rows = 0 } in
  let report =
    Provision.program ~resilience ~channel:(Mtj.channel ~seed:1 spec) foundry
      entries
  in
  (match report.Provision.outcome with
  | Provision.Degraded { corrected_bits; spared_bits } ->
      Alcotest.(check bool) "ECC repaired the stuck rows" true
        (corrected_bits > 0);
      Alcotest.(check int) "no spares available" 0 spared_bits
  | _ -> Alcotest.fail "this die must come out Degraded via ECC");
  match report.Provision.view with
  | Some view ->
      Alcotest.(check bool) "ECC-corrected part equivalent" true
        (equivalent nl view)
  | None -> Alcotest.fail "report must carry the corrected view"

let test_program_structural_failures () =
  let _, foundry, entries = acceptance_fixture () in
  let channel () = Mtj.channel ~seed:2 Mtj.ideal in
  (* an entry naming a node the netlist lacks *)
  let ghost =
    { Provision.lut_name = "no_such_lut"; config = (List.hd entries).Provision.config }
  in
  (match
     (Provision.program ~channel:(channel ()) foundry (ghost :: List.tl entries))
       .Provision.outcome
   with
  | Provision.Failed (Provision.Missing_lut "no_such_lut") -> ()
  | _ -> Alcotest.fail "missing LUT must classify as Missing_lut");
  (* a missing entry leaves a LUT unconfigured *)
  (match
     (Provision.program ~channel:(channel ()) foundry (List.tl entries))
       .Provision.outcome
   with
  | Provision.Failed (Provision.Unconfigured names) ->
      Alcotest.(check bool) "names the unconfigured slot" true (names <> [])
  | _ -> Alcotest.fail "partial bitstream must classify as Unconfigured");
  (* duplicates *)
  match
    (Provision.program ~channel:(channel ()) foundry
       (List.hd entries :: entries))
      .Provision.outcome
  with
  | Provision.Failed (Provision.Duplicate_entry _) -> ()
  | _ -> Alcotest.fail "duplicate entries must classify as Duplicate_entry"

let test_program_ideal_channel_matches_apply () =
  let _, foundry, entries = acceptance_fixture () in
  let report =
    Provision.program ~channel:(Mtj.channel ~seed:0 Mtj.ideal) foundry entries
  in
  (match report.Provision.outcome with
  | Provision.Programmed -> ()
  | _ -> Alcotest.fail "ideal channel must program exactly");
  match report.Provision.view with
  | Some view ->
      Alcotest.(check bool) "same netlist as Provision.apply" true
        (equivalent (Provision.apply foundry entries) view)
  | None -> Alcotest.fail "view missing"

(* ---------- Timing.with_timeout ---------- *)

let test_with_timeout () =
  (match Timing.with_timeout ~seconds:5. (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "fast f returns" 42 v
  | Error `Timeout -> Alcotest.fail "must not time out");
  (match
     Timing.with_timeout ~seconds:0.05 (fun () ->
         while true do
           ignore (Sys.opaque_identity (ref 0))
         done)
   with
  | Ok () -> Alcotest.fail "infinite loop cannot return"
  | Error `Timeout -> ());
  (match Timing.with_timeout ~seconds:0. (fun () -> 1) with
  | Ok _ -> Alcotest.fail "zero budget must refuse to run"
  | Error `Timeout -> ());
  (* exceptions propagate, they are not misreported as timeouts *)
  Alcotest.(check bool) "exception escapes" true
    (try
       ignore (Timing.with_timeout ~seconds:5. (fun () -> failwith "boom"));
       false
     with Failure m -> m = "boom")

(* ---------- Runner: isolation, timeout, checkpoint ---------- *)

let test_runner_zero_timeout_partial_rows () =
  let rows =
    Runner.rows
      Runner.Config.(default |> with_only [ "s641" ] |> with_timeout_s 0.)
  in
  match rows with
  | [ row ] ->
      Alcotest.(check (list string)) "no results" []
        (List.map fst row.Sttc_core.Report.results);
      Alcotest.(check int) "all three algorithms reported failed" 3
        (List.length row.Sttc_core.Report.failures);
      let t1 = Runner.table1 rows in
      Alcotest.(check bool) "rendered as partial" true
        (contains t1 "partial results:")
  | _ -> Alcotest.fail "expected exactly one row"

let test_runner_unknown_benchmark_rejected () =
  Alcotest.(check bool) "unknown name raises before any work" true
    (try
       ignore
         (Runner.rows
            Runner.Config.(default |> with_only [ "definitely-not-a-bench" ]));
       false
     with Invalid_argument _ | Failure _ -> true)

let test_runner_checkpoint_resume () =
  match Runner.resume_selftest () with
  | Ok msg ->
      Alcotest.(check bool) "mentions the restore" true
        (contains msg "restored")
  | Error m -> Alcotest.fail ("resume self-test: " ^ m)

let test_runner_corrupt_checkpoint_ignored () =
  let path = Filename.temp_file "sttc-ckpt" ".bad" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "this is not a checkpoint";
      close_out oc;
      let rows =
        Runner.rows
          Runner.Config.(
            default |> with_only [ "s641" ] |> with_checkpoint path)
      in
      Alcotest.(check int) "still computes the row" 1 (List.length rows);
      match rows with
      | [ row ] ->
          Alcotest.(check (list string)) "all algorithms present"
            [ "independent"; "dependent"; "parametric" ]
            (List.map fst row.Sttc_core.Report.results)
      | _ -> assert false)

(* ---------- fault sweep (the CLI/bench surface) ---------- *)

let test_fault_sweep_renders () =
  let out =
    Runner.fault_sweep ~rates:[ 1e-3 ] ~dies:2 ()
  in
  Alcotest.(check bool) "mentions yield" true
    (contains out "programming yield over dies");
  Alcotest.(check bool) "compares both provisioners" true
    (contains out "zero-retry" && contains out "resilient")

(* Every die draws from a seed pre-derived from the die index, so the
   sweep renders byte-identically at any job count. *)
let test_fault_sweep_parallel_identical () =
  let serial = Runner.fault_sweep ~rates:[ 1e-3 ] ~dies:4 () in
  let parallel = Runner.fault_sweep ~rates:[ 1e-3 ] ~dies:4 ~jobs:3 () in
  Alcotest.(check string) "sweep byte-identical" serial parallel

(* ---------- runner event rendering (legacy progress strings) ---------- *)

let test_event_strings () =
  let check name expect ev =
    Alcotest.(check string) name expect (Runner.string_of_event ev)
  in
  check "restored" "s641: restored from checkpoint" (Runner.Restored "s641");
  check "build timeout" "FAILED s641: build: timeout after 2.0s"
    (Runner.Timed_out
       { benchmark = "s641"; stage = Runner.Build; budget_s = 2.0 });
  check "protect timeout" "FAILED s641/dependent: protect: timeout after 0.5s"
    (Runner.Timed_out
       { benchmark = "s641"; stage = Runner.Protect "dependent"; budget_s = 0.5 });
  check "build failure" "FAILED s641: build: boom"
    (Runner.Failed
       { Runner.benchmark = "s641"; stage = Runner.Build; reason = "boom" })

let () =
  Alcotest.run "sttc_fault"
    [
      ( "ecc",
        [
          Alcotest.test_case "parity bits" `Quick test_ecc_parity_bits;
          to_case prop_ecc_clean_roundtrip;
          to_case prop_ecc_single_data_flip_corrected;
          to_case prop_ecc_single_parity_flip_corrected;
          to_case prop_ecc_double_flip_detected;
        ] );
      ( "mtj",
        [
          Alcotest.test_case "ideal channel" `Quick test_mtj_ideal_channel;
          Alcotest.test_case "order-independent" `Quick
            test_mtj_deterministic_across_order;
          Alcotest.test_case "always-failing writes" `Quick
            test_mtj_always_failing_writes;
          Alcotest.test_case "stuck cells" `Quick test_mtj_stuck_cells;
          Alcotest.test_case "escalation energy" `Quick
            test_mtj_escalation_energy;
          Alcotest.test_case "spec validation" `Quick test_mtj_spec_validation;
        ] );
      ( "inject",
        [
          Alcotest.test_case "retention rate bounds" `Quick
            test_inject_retention_rate_bounds;
          Alcotest.test_case "stuck-at" `Quick test_inject_stuck_at;
          Alcotest.test_case "random stuck-ats" `Quick
            test_inject_random_stuck_ats;
        ] );
      ( "parse",
        [
          Alcotest.test_case "crlf and whitespace" `Quick
            test_parse_crlf_and_whitespace;
          Alcotest.test_case "line numbers" `Quick
            test_parse_reports_line_numbers;
          to_case prop_parse_never_escapes;
        ] );
      ( "program",
        [
          Alcotest.test_case "acceptance at 1e-3" `Slow
            test_program_acceptance_1e3;
          Alcotest.test_case "degraded by spares" `Slow
            test_program_degraded_by_spares;
          Alcotest.test_case "degraded by ECC" `Slow test_program_degraded_by_ecc;
          Alcotest.test_case "structural failures" `Quick
            test_program_structural_failures;
          Alcotest.test_case "ideal channel = apply" `Quick
            test_program_ideal_channel_matches_apply;
        ] );
      ( "timeout",
        [ Alcotest.test_case "with_timeout" `Quick test_with_timeout ] );
      ( "runner",
        [
          Alcotest.test_case "zero timeout partial rows" `Quick
            test_runner_zero_timeout_partial_rows;
          Alcotest.test_case "unknown benchmark rejected" `Quick
            test_runner_unknown_benchmark_rejected;
          Alcotest.test_case "checkpoint resume" `Slow
            test_runner_checkpoint_resume;
          Alcotest.test_case "event strings" `Quick test_event_strings;
          Alcotest.test_case "corrupt checkpoint ignored" `Quick
            test_runner_corrupt_checkpoint_ignored;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "renders" `Slow test_fault_sweep_renders;
          Alcotest.test_case "parallel identical" `Slow
            test_fault_sweep_parallel_identical;
        ] );
    ]
