(* Tests for Sttc_tech: cell model invariants, the CMOS logical-effort
   behaviour Section III describes, the Fig. 1 reference data and the
   analytical STT-LUT model's shape properties. *)

module Cell = Sttc_tech.Cell
module Cmos = Sttc_tech.Cmos_lib
module Stt = Sttc_tech.Stt_lib
module Library = Sttc_tech.Library
module Gate_fn = Sttc_logic.Gate_fn

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Cell ---------- *)

let test_cell_power_model () =
  let nand2 = Cmos.gate (Gate_fn.Nand 2) in
  let p0 = Cell.dynamic_power_uw nand2 ~activity:0. ~clock_ghz:1. in
  check_float "idle cmos has no dynamic power" 0. p0;
  let p1 = Cell.dynamic_power_uw nand2 ~activity:0.2 ~clock_ghz:1. in
  let p2 = Cell.dynamic_power_uw nand2 ~activity:0.4 ~clock_ghz:1. in
  check_float "cmos dynamic power linear in activity" (2. *. p1) p2;
  Alcotest.check_raises "activity range"
    (Invalid_argument "Cell.dynamic_power_uw: activity out of [0,1]")
    (fun () -> ignore (Cell.dynamic_power_uw nand2 ~activity:1.5 ~clock_ghz:1.))

let test_cell_stt_activity_independent () =
  let lut = Stt.lut 2 in
  Alcotest.(check bool) "flag" true (Cell.activity_independent lut);
  let p_low = Cell.dynamic_power_uw lut ~activity:0.05 ~clock_ghz:1. in
  let p_high = Cell.dynamic_power_uw lut ~activity:0.45 ~clock_ghz:1. in
  check_float "same power at any activity" p_low p_high;
  Alcotest.(check bool) "cmos is activity dependent" false
    (Cell.activity_independent (Cmos.gate (Gate_fn.Nand 2)))

let test_cell_total_power () =
  let c = Cmos.gate Gate_fn.Not in
  let total = Cell.total_power_uw c ~activity:0.1 ~clock_ghz:1. in
  let dyn = Cell.dynamic_power_uw c ~activity:0.1 ~clock_ghz:1. in
  check_float "total = dyn + leak" (dyn +. (c.Cell.leakage_nw /. 1000.)) total

(* ---------- CMOS library ---------- *)

let test_cmos_fanin_slows_gates () =
  let d fn = (Cmos.gate fn).Cell.delay_ps in
  Alcotest.(check bool) "nand4 slower than nand2" true
    (d (Gate_fn.Nand 4) > d (Gate_fn.Nand 2));
  Alcotest.(check bool) "nor slower than nand (PMOS stack)" true
    (d (Gate_fn.Nor 3) > d (Gate_fn.Nand 3));
  Alcotest.(check bool) "xor slowest 2-input" true
    (d (Gate_fn.Xor 2) > d (Gate_fn.Nand 2)
    && d (Gate_fn.Xor 2) > d (Gate_fn.Nor 2))

let test_cmos_stacking_leakage () =
  (* Section III: series stacks suppress leakage per transistor *)
  let leak_per_pair fn =
    (Cmos.gate fn).Cell.leakage_nw
    /. (float_of_int (Cmos.transistor_count fn) /. 2.)
  in
  Alcotest.(check bool) "nand4 leaks less per pair than nand2" true
    (leak_per_pair (Gate_fn.Nand 4) < leak_per_pair (Gate_fn.Nand 2))

let test_cmos_area_grows_with_transistors () =
  let a fn = (Cmos.gate fn).Cell.area_um2 in
  Alcotest.(check bool) "xor2 bigger than nand2" true
    (a (Gate_fn.Xor 2) > a (Gate_fn.Nand 2));
  Alcotest.(check bool) "nand4 bigger than nand2" true
    (a (Gate_fn.Nand 4) > a (Gate_fn.Nand 2));
  Alcotest.(check int) "nand2 transistor count" 4
    (Cmos.transistor_count (Gate_fn.Nand 2));
  Alcotest.(check int) "and2 = nand2 + inv" 6
    (Cmos.transistor_count (Gate_fn.And 2))

(* ---------- Fig. 1 reference data ---------- *)

let test_fig1_reference_values () =
  (* spot-check embedded published numbers *)
  let row gate =
    List.find (fun r -> r.Stt.gate = gate) Stt.fig1_reference
  in
  let nand2 = row (Gate_fn.Nand 2) in
  check_float "nand2 delay" 6.46 nand2.Stt.delay_ratio;
  check_float "nand2 ap10" 90.35 nand2.Stt.active_power_ratio_10;
  check_float "nand2 standby" 0.48 nand2.Stt.standby_power_ratio;
  let nor4 = row (Gate_fn.Nor 4) in
  check_float "nor4 delay" 3.06 nor4.Stt.delay_ratio;
  check_float "nor4 eps" 7.42 nor4.Stt.energy_per_switching_ratio;
  Alcotest.(check int) "six rows" 6 (List.length Stt.fig1_reference)

let test_fig1_reference_consistency () =
  (* LUT power is data-independent, so ap10 / ap30 must be 3:1 *)
  List.iter
    (fun r ->
      Alcotest.(check (float 0.02))
        (Gate_fn.to_string r.Stt.gate ^ " ap10/ap30")
        3.0
        (r.Stt.active_power_ratio_10 /. r.Stt.active_power_ratio_30))
    Stt.fig1_reference

let test_fig1_model_shape () =
  let m fn = Stt.fig1_model fn in
  (* delay overhead shrinks as the CMOS gate gets more complex *)
  Alcotest.(check bool) "nand4 < nand2 delay ratio" true
    ((m (Gate_fn.Nand 4)).Stt.delay_ratio < (m (Gate_fn.Nand 2)).Stt.delay_ratio);
  Alcotest.(check bool) "nor4 < nor2 delay ratio" true
    ((m (Gate_fn.Nor 4)).Stt.delay_ratio < (m (Gate_fn.Nor 2)).Stt.delay_ratio);
  (* NOR benefits more than NAND (weak PMOS in CMOS NOR) *)
  Alcotest.(check bool) "nor2 ratio < nand2 ratio" true
    ((m (Gate_fn.Nor 2)).Stt.delay_ratio < (m (Gate_fn.Nand 2)).Stt.delay_ratio);
  (* active power ratio falls with activity *)
  List.iter
    (fun fn ->
      let r = m fn in
      Alcotest.(check bool)
        (Gate_fn.to_string fn ^ " ap30 < ap10")
        true
        (r.Stt.active_power_ratio_30 < r.Stt.active_power_ratio_10))
    [ Gate_fn.Nand 2; Gate_fn.Nand 4; Gate_fn.Nor 2; Gate_fn.Nor 4; Gate_fn.Xor 2 ];
  (* standby (leakage) is below CMOS for 2-input gates *)
  Alcotest.(check bool) "nand2 standby < 1" true
    ((m (Gate_fn.Nand 2)).Stt.standby_power_ratio < 1.);
  (* ... and approaches/exceeds parity for stacked high fan-in NAND/NOR *)
  Alcotest.(check bool) "nand4 standby > nand2 standby" true
    ((m (Gate_fn.Nand 4)).Stt.standby_power_ratio
    > (m (Gate_fn.Nand 2)).Stt.standby_power_ratio)

let test_fig1_model_arity_guard () =
  Alcotest.check_raises "arity 5" (Invalid_argument "Stt_lib.fig1_model: arity 2..4")
    (fun () -> ignore (Stt.fig1_model (Gate_fn.Nand 5)))

(* ---------- STT LUT cells ---------- *)

let test_lut_cells_monotone () =
  let l2 = Stt.lut 2 and l3 = Stt.lut 3 and l4 = Stt.lut 4 in
  Alcotest.(check bool) "delay grows" true
    (l2.Cell.delay_ps < l3.Cell.delay_ps && l3.Cell.delay_ps < l4.Cell.delay_ps);
  Alcotest.(check bool) "energy grows" true
    (l2.Cell.switch_energy_fj < l3.Cell.switch_energy_fj
    && l3.Cell.switch_energy_fj < l4.Cell.switch_energy_fj);
  Alcotest.(check bool) "area grows" true
    (l2.Cell.area_um2 < l3.Cell.area_um2 && l3.Cell.area_um2 < l4.Cell.area_um2);
  Alcotest.check_raises "arity 0" (Invalid_argument "Stt_lib.lut: arity out of range")
    (fun () -> ignore (Stt.lut 0))

let test_lut_vs_cmos_calibration () =
  (* the Table I power scale: a LUT2 burns several times an average active
     gate, and its delay ratio to NAND2 matches Fig. 1's 5-7x *)
  let lut2 = Stt.lut 2 in
  let nand2 = Cmos.gate (Gate_fn.Nand 2) in
  let ratio = lut2.Cell.delay_ps /. nand2.Cell.delay_ps in
  Alcotest.(check bool) "delay ratio 4.5-8x" true (ratio > 4.5 && ratio < 8.);
  let lut_power = Cell.total_power_uw lut2 ~activity:0.2 ~clock_ghz:1. in
  let gate_power = Cell.total_power_uw nand2 ~activity:0.2 ~clock_ghz:1. in
  Alcotest.(check bool) "power ratio 5-20x" true
    (lut_power /. gate_power > 5. && lut_power /. gate_power < 20.);
  (* non-volatility constants are present and sane *)
  Alcotest.(check bool) "retention" true (Stt.retention_years >= 10.);
  Alcotest.(check bool) "endurance" true (Stt.endurance_writes >= 1e15);
  Alcotest.(check bool) "write costly" true
    (Stt.write_energy_fj > lut2.Cell.switch_energy_fj)

let test_sram_baseline () =
  let sram2 = Sttc_tech.Sram_lib.lut 2 and stt2 = Stt.lut 2 in
  (* the Section II trade-off: SRAM reads faster but leaks much more *)
  Alcotest.(check bool) "sram faster" true
    (sram2.Cell.delay_ps < stt2.Cell.delay_ps);
  Alcotest.(check bool) "sram leaks more" true
    (sram2.Cell.leakage_nw > 3. *. stt2.Cell.leakage_nw);
  Alcotest.(check bool) "sram bigger" true
    (sram2.Cell.area_um2 > stt2.Cell.area_um2);
  Alcotest.(check bool) "bitstream exposed" true
    Sttc_tech.Sram_lib.bitstream_exposed;
  (* library style switch reaches the analyses *)
  let stt_lib = Library.cmos90 in
  let sram_lib = Library.with_lut_style stt_lib Library.Sram in
  Alcotest.(check bool) "style recorded" true
    (Library.lut_style sram_lib = Library.Sram);
  let kind = Sttc_netlist.Netlist.Lut { arity = 2; config = None } in
  Alcotest.(check bool) "delays differ" true
    (Library.node_delay_ps stt_lib kind <> Library.node_delay_ps sram_lib kind)

(* ---------- Library ---------- *)

let test_library_lookup () =
  let lib = Library.cmos90 in
  check_float "default clock" 1.0 (Library.clock_ghz lib);
  let lib2 = Library.with_clock lib ~ghz:2.0 in
  check_float "override clock" 2.0 (Library.clock_ghz lib2);
  Alcotest.(check bool) "pi has no cell" true
    (Library.cell_of_kind lib Sttc_netlist.Netlist.Pi = None);
  (match Library.cell_of_kind lib (Sttc_netlist.Netlist.Gate (Gate_fn.Nand 2)) with
  | Some c -> Alcotest.(check string) "nand cell" "NAND2" c.Cell.cell_name
  | None -> Alcotest.fail "expected cell");
  (match
     Library.cell_of_kind lib (Sttc_netlist.Netlist.Lut { arity = 3; config = None })
   with
  | Some c -> Alcotest.(check string) "lut cell" "STT_LUT3" c.Cell.cell_name
  | None -> Alcotest.fail "expected cell");
  check_float "pi delay" 0. (Library.node_delay_ps lib Sttc_netlist.Netlist.Pi)

let () =
  Alcotest.run "sttc_tech"
    [
      ( "cell",
        [
          Alcotest.test_case "power model" `Quick test_cell_power_model;
          Alcotest.test_case "stt activity independence" `Quick
            test_cell_stt_activity_independent;
          Alcotest.test_case "total power" `Quick test_cell_total_power;
        ] );
      ( "cmos",
        [
          Alcotest.test_case "fan-in slows gates" `Quick test_cmos_fanin_slows_gates;
          Alcotest.test_case "stacking leakage" `Quick test_cmos_stacking_leakage;
          Alcotest.test_case "area" `Quick test_cmos_area_grows_with_transistors;
        ] );
      ( "fig1",
        [
          Alcotest.test_case "reference values" `Quick test_fig1_reference_values;
          Alcotest.test_case "reference consistency" `Quick
            test_fig1_reference_consistency;
          Alcotest.test_case "model shape" `Quick test_fig1_model_shape;
          Alcotest.test_case "model arity guard" `Quick test_fig1_model_arity_guard;
        ] );
      ( "stt_lut",
        [
          Alcotest.test_case "monotone in fan-in" `Quick test_lut_cells_monotone;
          Alcotest.test_case "calibration vs CMOS" `Quick test_lut_vs_cmos_calibration;
        ] );
      ("library", [ Alcotest.test_case "lookup" `Quick test_library_lookup ]);
      ("sram", [ Alcotest.test_case "baseline trade-offs" `Quick test_sram_baseline ]);
    ]
