(* Tests for Sttc_netlist: builder/validation, queries, bench IO, Verilog
   output, transforms, the synthetic generator and the ISCAS profiles. *)

module Netlist = Sttc_netlist.Netlist
module Query = Sttc_netlist.Query
module Bench_io = Sttc_netlist.Bench_io
module Verilog_out = Sttc_netlist.Verilog_out
module Transform = Sttc_netlist.Transform
module Generator = Sttc_netlist.Generator
module Profiles = Sttc_netlist.Iscas_profiles
module Gate_fn = Sttc_logic.Gate_fn
module Truth = Sttc_logic.Truth

(* A small reference circuit used across the tests:
   PI a,b; g1 = NAND(a,b); ff = DFF(g2); g2 = XOR(g1, ff); PO y = g2. *)
let small_circuit () =
  let b = Netlist.Builder.create ~design_name:"small" () in
  let a = Netlist.Builder.add_pi b "a" in
  let bb = Netlist.Builder.add_pi b "b" in
  let g1 = Netlist.Builder.add_gate b "g1" (Gate_fn.Nand 2) [ a; bb ] in
  let ff = Netlist.Builder.add_dff_deferred b "ff" in
  let g2 = Netlist.Builder.add_gate b "g2" (Gate_fn.Xor 2) [ g1; ff ] in
  Netlist.Builder.set_dff_input b ff g2;
  Netlist.Builder.add_output b "y" g2;
  Netlist.Builder.finalize b

(* ---------- builder / validation ---------- *)

let test_builder_basic () =
  let nl = small_circuit () in
  Alcotest.(check int) "nodes" 5 (Netlist.node_count nl);
  Alcotest.(check int) "gate count" 2 (Netlist.gate_count nl);
  Alcotest.(check int) "pis" 2 (List.length (Netlist.pis nl));
  Alcotest.(check int) "dffs" 1 (List.length (Netlist.dffs nl));
  Alcotest.(check int) "pos" 1 (List.length (Netlist.pos nl));
  Alcotest.(check string) "find" "g1"
    (Netlist.name nl (Netlist.find_exn nl "g1"))

let test_builder_duplicate_name () =
  let b = Netlist.Builder.create () in
  ignore (Netlist.Builder.add_pi b "a");
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Builder: duplicate node name a") (fun () ->
      ignore (Netlist.Builder.add_pi b "a"))

let test_builder_arity_mismatch () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_pi b "a" in
  Alcotest.check_raises "arity"
    (Invalid_argument "Builder.add_gate: arity mismatch at g") (fun () ->
      ignore (Netlist.Builder.add_gate b "g" (Gate_fn.And 2) [ a ]))

let test_builder_unwired_dff () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_pi b "a" in
  ignore (Netlist.Builder.add_dff_deferred b "ff");
  Netlist.Builder.add_output b "y" a;
  Alcotest.check_raises "unwired"
    (Invalid_argument "Builder.finalize: unwired DFF ff") (fun () ->
      ignore (Netlist.Builder.finalize b))

let test_builder_no_outputs () =
  let b = Netlist.Builder.create () in
  ignore (Netlist.Builder.add_pi b "a");
  Alcotest.check_raises "no outputs"
    (Invalid_argument "Builder.finalize: no outputs") (fun () ->
      ignore (Netlist.Builder.finalize b))

let test_builder_combinational_cycle () =
  (* cycles through DFFs are fine (small_circuit); a pure combinational
     cycle must be rejected: build via with_kinds rewiring *)
  let nl = small_circuit () in
  let g1 = Netlist.find_exn nl "g1" and g2 = Netlist.find_exn nl "g2" in
  Alcotest.(check bool) "cycle rejected" true
    (try
       (* rewire g1 to read g2: combinational loop g1 -> g2 -> g1 *)
       ignore
         (Netlist.with_kinds nl (fun id kind fanins ->
              if id = g1 then (kind, [| fanins.(0); g2 |])
              else (kind, fanins)));
       false
     with Invalid_argument _ -> true)

let test_fanouts () =
  let nl = small_circuit () in
  let g2 = Netlist.find_exn nl "g2" in
  let ff = Netlist.find_exn nl "ff" in
  Alcotest.(check (list int)) "g2 feeds ff" [ ff ] (Netlist.fanouts nl g2);
  Alcotest.(check int) "fanout degree" 1 (Netlist.fanout_degree nl g2)

let test_topo_order () =
  let nl = small_circuit () in
  let order = Netlist.topo_order nl in
  Alcotest.(check int) "covers all nodes" (Netlist.node_count nl)
    (Array.length order);
  let position = Hashtbl.create 8 in
  Array.iteri (fun i id -> Hashtbl.add position id i) order;
  (* every combinational node comes after its fanins *)
  Netlist.iter
    (fun id node ->
      if Netlist.is_combinational node.Netlist.kind then
        Array.iter
          (fun src ->
            Alcotest.(check bool) "fanin before node" true
              (Hashtbl.find position src < Hashtbl.find position id))
          node.Netlist.fanins)
    nl

(* ---------- queries ---------- *)

let test_query_cones () =
  let nl = small_circuit () in
  let g1 = Netlist.find_exn nl "g1" and g2 = Netlist.find_exn nl "g2" in
  let a = Netlist.find_exn nl "a" in
  let cone = Query.fanin_cone nl g2 in
  Alcotest.(check bool) "g1 in cone" true (List.mem g1 cone);
  Alcotest.(check bool) "a in cone" true (List.mem a cone);
  let inputs = Query.cone_inputs nl [ g2 ] in
  Alcotest.(check int) "3 cone inputs (a, b, ff)" 3 (List.length inputs)

let test_query_levels_depth () =
  let nl = small_circuit () in
  let lv = Query.levels nl in
  Alcotest.(check int) "pi level" 0 lv.(Netlist.find_exn nl "a");
  Alcotest.(check int) "g1 level" 1 lv.(Netlist.find_exn nl "g1");
  Alcotest.(check int) "g2 level" 2 lv.(Netlist.find_exn nl "g2");
  Alcotest.(check int) "depth" 2 (Query.depth nl)

let test_query_reaches () =
  let nl = small_circuit () in
  let a = Netlist.find_exn nl "a" in
  let g2 = Netlist.find_exn nl "g2" in
  let ff = Netlist.find_exn nl "ff" in
  Alcotest.(check bool) "a reaches g2" true (Query.reaches nl a g2);
  Alcotest.(check bool) "a reaches g2 comb" true
    (Query.reaches_combinationally nl a g2);
  (* reaching a flip-flop means reaching its D input, which is a purely
     combinational path; what does NOT exist is a combinational path from
     the flip-flop's own output back to g1's fanin cone sources *)
  Alcotest.(check bool) "g2 reaches ff seq" true (Query.reaches nl g2 ff);
  Alcotest.(check bool) "g2 reaches ff.D combinationally" true
    (Query.reaches_combinationally nl g2 ff);
  let a = Netlist.find_exn nl "a" in
  Alcotest.(check bool) "ff does not reach a" false (Query.reaches nl ff a)

let test_query_seq_depth () =
  let nl = small_circuit () in
  let d = Query.sequential_depth_to_po nl in
  Alcotest.(check int) "g2 drives PO directly" 0 (d.(Netlist.find_exn nl "g2"));
  (* ff feeds g2 which is the PO: no flop crossing needed *)
  Alcotest.(check int) "ff to po" 0 (d.(Netlist.find_exn nl "ff"))

let test_query_connected_pairs () =
  let nl = small_circuit () in
  let g1 = Netlist.find_exn nl "g1" and g2 = Netlist.find_exn nl "g2" in
  let pairs = Query.connected_lut_pairs nl [ g1; g2 ] in
  Alcotest.(check (list (pair int int))) "g1 -> g2" [ (g1, g2) ] pairs

(* ---------- bench IO ---------- *)

let bench_text =
  {|# sample
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = NAND(a, b)
s = DFF(n2)
n2 = XOR(n1, s)
y = BUFF(n2)
|}

let test_bench_parse () =
  let nl = Bench_io.parse_string bench_text in
  Alcotest.(check int) "pis" 2 (List.length (Netlist.pis nl));
  Alcotest.(check int) "dffs" 1 (List.length (Netlist.dffs nl));
  Alcotest.(check int) "gates" 3 (List.length (Netlist.gates nl));
  Alcotest.(check string) "output name" "y" (fst (Netlist.outputs nl).(0))

let test_bench_roundtrip_semantics () =
  let nl = small_circuit () in
  let nl2 = Bench_io.parse_string (Bench_io.to_string nl) in
  (* aliasing may add buffers; functional equivalence must hold *)
  match Sttc_sim.Equiv.check_sat nl nl2 with
  | Sttc_sim.Equiv.Equivalent -> ()
  | Sttc_sim.Equiv.Different f ->
      Alcotest.fail ("roundtrip differs at " ^ f.Sttc_sim.Equiv.signal)
  | Sttc_sim.Equiv.Inconclusive m -> Alcotest.fail m

let test_bench_lut_roundtrip () =
  let nl = small_circuit () in
  let g1 = Netlist.find_exn nl "g1" in
  let hybrid = Transform.replace_many ~keep_function:true nl [ g1 ] in
  let text = Bench_io.to_string hybrid in
  let nl2 = Bench_io.parse_string text in
  (match Netlist.kind nl2 (Netlist.find_exn nl2 "g1") with
  | Netlist.Lut { config = Some c; _ } ->
      Alcotest.(check string) "config preserved" "1110" (Truth.to_string c)
  | _ -> Alcotest.fail "expected configured LUT");
  (* stripped (missing) LUTs round-trip too *)
  let foundry = Transform.strip_configs hybrid in
  let nl3 = Bench_io.parse_string (Bench_io.to_string foundry) in
  match Netlist.kind nl3 (Netlist.find_exn nl3 "g1") with
  | Netlist.Lut { config = None; _ } -> ()
  | _ -> Alcotest.fail "expected missing LUT"

let test_bench_errors () =
  let expect_error text =
    try
      ignore (Bench_io.parse_string text);
      false
    with Bench_io.Parse_error _ -> true
  in
  Alcotest.(check bool) "undefined signal" true
    (expect_error "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n");
  Alcotest.(check bool) "unknown gate" true
    (expect_error "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MAJ3(a, b, a)\n");
  Alcotest.(check bool) "combinational cycle" true
    (expect_error "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = OR(a, y)\n");
  Alcotest.(check bool) "redefined" true
    (expect_error "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n")

let test_bench_strict_errors () =
  (* validation failures surface as Parse_error with the offending line *)
  let expect_line text line =
    try
      ignore (Bench_io.parse_string text);
      Alcotest.fail "expected Parse_error"
    with Bench_io.Parse_error (l, _) ->
      Alcotest.(check int) "error line" line l
  in
  (* duplicate OUTPUT declaration, reported at the second declaration *)
  expect_line "INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n" 3;
  (* constants take no arguments *)
  expect_line "INPUT(a)\nOUTPUT(y)\nc = VCC(a)\ny = AND(a, c)\n" 3;
  expect_line "INPUT(a)\nOUTPUT(y)\nc = GND(a)\ny = AND(a, c)\n" 3;
  (* a known gate at an impossible arity names the gate, not "unknown" *)
  (try
     ignore (Bench_io.parse_string "INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n");
     Alcotest.fail "expected Parse_error"
   with Bench_io.Parse_error (l, m) ->
     Alcotest.(check int) "NOT arity line" 3 l;
     Alcotest.(check string) "NOT arity message" "gate NOT cannot take 2 input(s)" m);
  (* builder rejections (LUT arity beyond the technology maximum) are
     wrapped into Parse_error instead of escaping as Invalid_argument *)
  let wide_lut =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nINPUT(g)\n\
     OUTPUT(y)\ny = LUT(a, b, c, d, e, f, g)\n"
  in
  expect_line wide_lut 9

let test_bench_constants () =
  let nl =
    Bench_io.parse_string "INPUT(a)\nOUTPUT(y)\nc1 = VCC()\ny = AND(a, c1)\n"
  in
  match Netlist.kind nl (Netlist.find_exn nl "c1") with
  | Netlist.Const true -> ()
  | _ -> Alcotest.fail "expected constant true"

(* ---------- Verilog ---------- *)

let test_verilog_output () =
  let nl = small_circuit () in
  let g1 = Netlist.find_exn nl "g1" in
  let hybrid = Transform.replace_many ~keep_function:true nl [ g1 ] in
  let v = Verilog_out.to_string hybrid in
  let contains needle =
    let n = String.length needle and h = String.length v in
    let rec go i = i + n <= h && (String.sub v i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module header" true (contains "module small");
  Alcotest.(check bool) "dff cell" true (contains "STT_DFF");
  Alcotest.(check bool) "lut cell" true (contains "STT_LUT");
  Alcotest.(check bool) "config param" true (contains "CONFIG")

(* ---------- transforms ---------- *)

let test_transform_replace_preserves_ids () =
  let nl = small_circuit () in
  let g1 = Netlist.find_exn nl "g1" in
  let nl2 = Transform.replace_gate_with_lut nl g1 in
  Alcotest.(check int) "same node count" (Netlist.node_count nl)
    (Netlist.node_count nl2);
  Alcotest.(check int) "same id" g1 (Netlist.find_exn nl2 "g1");
  match Netlist.kind nl2 g1 with
  | Netlist.Lut { arity = 2; config = Some c } ->
      Alcotest.(check string) "nand config" "1110" (Truth.to_string c)
  | _ -> Alcotest.fail "expected configured 2-LUT"

let test_transform_missing_gate () =
  let nl = small_circuit () in
  let g1 = Netlist.find_exn nl "g1" in
  let nl2 = Transform.replace_gate_with_lut ~keep_function:false nl g1 in
  match Netlist.kind nl2 g1 with
  | Netlist.Lut { config = None; _ } -> ()
  | _ -> Alcotest.fail "expected missing gate"

let test_transform_extra_inputs () =
  let nl = small_circuit () in
  let g1 = Netlist.find_exn nl "g1" in
  let ff = Netlist.find_exn nl "ff" in
  let nl2 = Transform.replace_gate_with_lut ~extra_inputs:[ ff ] nl g1 in
  (match Netlist.kind nl2 g1 with
  | Netlist.Lut { arity = 3; config = Some c } ->
      (* extra input is ignored logically *)
      Alcotest.(check bool) "degenerate in the extra input" true
        (not (Truth.depends_on c 2))
  | _ -> Alcotest.fail "expected 3-LUT");
  (* connecting a downstream signal must be refused (cycle) *)
  let g2 = Netlist.find_exn nl "g2" in
  Alcotest.check_raises "cycle refused"
    (Invalid_argument
       "Transform.replace_gate_with_lut: extra input would create a cycle")
    (fun () -> ignore (Transform.replace_gate_with_lut ~extra_inputs:[ g2 ] nl g1))

let test_transform_program_strip () =
  let nl = small_circuit () in
  let g1 = Netlist.find_exn nl "g1" in
  let hybrid = Transform.replace_many ~keep_function:true nl [ g1 ] in
  let foundry = Transform.strip_configs hybrid in
  (match Netlist.kind foundry g1 with
  | Netlist.Lut { config = None; _ } -> ()
  | _ -> Alcotest.fail "strip failed");
  let programmed =
    Transform.program_luts foundry [ (g1, Truth.of_string "1110") ]
  in
  (match Netlist.kind programmed g1 with
  | Netlist.Lut { config = Some _; _ } -> ()
  | _ -> Alcotest.fail "program failed");
  (* arity mismatch rejected *)
  Alcotest.check_raises "bad config"
    (Invalid_argument "Transform.program_luts: config arity mismatch")
    (fun () ->
      ignore (Transform.program_luts foundry [ (g1, Truth.of_string "01") ]))

let test_transform_absorb_driver () =
  (* y = AND(NAND(a,b), c): absorbing the NAND into the AND yields one
     3-input LUT computing (a NAND b) AND c *)
  let b = Netlist.Builder.create ~design_name:"absorb" () in
  let a = Netlist.Builder.add_pi b "a" in
  let bb = Netlist.Builder.add_pi b "b" in
  let c = Netlist.Builder.add_pi b "c" in
  let n1 = Netlist.Builder.add_gate b "n1" (Gate_fn.Nand 2) [ a; bb ] in
  let g = Netlist.Builder.add_gate b "g" (Gate_fn.And 2) [ n1; c ] in
  Netlist.Builder.add_output b "y" g;
  let nl = Netlist.Builder.finalize b in
  let nl2 = Transform.absorb_driver nl g ~driver:n1 in
  (match Netlist.kind nl2 g with
  | Netlist.Lut { arity = 3; config = Some cfg } ->
      (* rows over [a; b; c] *)
      let expect inputs = (not (inputs.(0) && inputs.(1))) && inputs.(2) in
      for r = 0 to 7 do
        let inputs = Array.init 3 (fun k -> (r lsr k) land 1 = 1) in
        Alcotest.(check bool)
          (Printf.sprintf "row %d" r)
          (expect inputs) (Truth.eval cfg inputs)
      done
  | _ -> Alcotest.fail "expected configured 3-LUT");
  (* function preserved end to end *)
  (match Sttc_sim.Equiv.check_sat nl nl2 with
  | Sttc_sim.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "absorption changed the function");
  (* absorbable_driver finds n1 *)
  Alcotest.(check (option int)) "absorbable" (Some n1)
    (Transform.absorbable_driver nl g)

let test_transform_absorb_rejections () =
  (* driver with a second fanout must be refused *)
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_pi b "a" in
  let bb = Netlist.Builder.add_pi b "b" in
  let n1 = Netlist.Builder.add_gate b "n1" (Gate_fn.Nand 2) [ a; bb ] in
  let g = Netlist.Builder.add_gate b "g" (Gate_fn.And 2) [ n1; bb ] in
  let h = Netlist.Builder.add_gate b "h" (Gate_fn.Or 2) [ n1; a ] in
  Netlist.Builder.add_output b "y" g;
  Netlist.Builder.add_output b "z" h;
  let nl = Netlist.Builder.finalize b in
  Alcotest.check_raises "multi-fanout driver"
    (Invalid_argument "Transform.absorb_driver: driver has other fanouts")
    (fun () -> ignore (Transform.absorb_driver nl g ~driver:n1));
  Alcotest.(check (option int)) "no absorbable driver" None
    (Transform.absorbable_driver nl g)

let test_transform_sweep () =
  let b = Netlist.Builder.create ~design_name:"dead" () in
  let a = Netlist.Builder.add_pi b "a" in
  let live = Netlist.Builder.add_gate b "live" Gate_fn.Not [ a ] in
  let dead = Netlist.Builder.add_gate b "dead" Gate_fn.Buf [ a ] in
  let _dead2 = Netlist.Builder.add_gate b "dead2" Gate_fn.Not [ dead ] in
  Netlist.Builder.add_output b "y" live;
  let nl = Netlist.Builder.finalize b in
  let swept, map = Transform.sweep nl in
  Alcotest.(check int) "dead nodes removed" 2 (Netlist.node_count swept);
  Alcotest.(check int) "dead unmapped" (-1) map.(dead);
  Alcotest.(check bool) "live mapped" true (map.(live) >= 0);
  match Sttc_sim.Equiv.check_sat nl swept with
  | Sttc_sim.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "sweep changed the function"

let test_transform_replace_not_a_gate () =
  let nl = small_circuit () in
  let a = Netlist.find_exn nl "a" in
  Alcotest.check_raises "pi refused"
    (Invalid_argument "Transform.replace_gate_with_lut: not a gate") (fun () ->
      ignore (Transform.replace_gate_with_lut nl a))

let test_iscas_data_genuine () =
  (* genuine s27 parses to the published statistics and simulates *)
  let s27 = Sttc_netlist.Iscas_data.s27 () in
  Alcotest.(check int) "s27 pis" 4 (List.length (Netlist.pis s27));
  Alcotest.(check int) "s27 dffs" 3 (List.length (Netlist.dffs s27));
  Alcotest.(check int) "s27 gates" 10 (List.length (Netlist.gates s27));
  Alcotest.(check int) "s27 pos" 1 (Array.length (Netlist.outputs s27));
  let c17 = Sttc_netlist.Iscas_data.c17 () in
  Alcotest.(check int) "c17 gates" 6 (List.length (Netlist.gates c17));
  Alcotest.(check int) "c17 dffs" 0 (List.length (Netlist.dffs c17));
  (* the bench text round-trips semantically *)
  List.iter
    (fun (_, build) ->
      let nl = build () in
      let nl2 = Bench_io.parse_string (Bench_io.to_string nl) in
      match Sttc_sim.Equiv.check_sat nl nl2 with
      | Sttc_sim.Equiv.Equivalent -> ()
      | _ -> Alcotest.fail "genuine netlist roundtrip failed")
    Sttc_netlist.Iscas_data.all

let test_c17_truth () =
  (* c17 outputs have known values: N22 = NAND(N10,N16), spot-check one
     full input row against hand evaluation *)
  let c17 = Sttc_netlist.Iscas_data.c17 () in
  let sim = Sttc_sim.Simulator.create c17 in
  (* all inputs 1: N10 = NAND(1,1)=0, N11=0, N16=NAND(1,0)=1, N19=1,
     N22=NAND(0,1)=1, N23=NAND(1,1)=0 *)
  let outs = Sttc_sim.Simulator.eval_comb sim [| -1L; -1L; -1L; -1L; -1L |] in
  Alcotest.(check int64) "N22" 1L (Int64.logand outs.(0) 1L);
  Alcotest.(check int64) "N23" 0L (Int64.logand outs.(1) 1L)

(* ---------- optimization ---------- *)

let test_opt_const_fold () =
  let b = Netlist.Builder.create ~design_name:"cf" () in
  let a = Netlist.Builder.add_pi b "a" in
  let one = Netlist.Builder.add_const b "one" true in
  let zero = Netlist.Builder.add_const b "zero" false in
  let g_and = Netlist.Builder.add_gate b "g_and" (Gate_fn.And 2) [ a; one ] in
  let g_nand = Netlist.Builder.add_gate b "g_nand" (Gate_fn.Nand 2) [ a; zero ] in
  let g_or = Netlist.Builder.add_gate b "g_or" (Gate_fn.Or 2) [ a; one ] in
  let g_xor = Netlist.Builder.add_gate b "g_xor" (Gate_fn.Xor 2) [ a; one ] in
  Netlist.Builder.add_output b "y1" g_and;
  Netlist.Builder.add_output b "y2" g_nand;
  Netlist.Builder.add_output b "y3" g_or;
  Netlist.Builder.add_output b "y4" g_xor;
  let nl = Netlist.Builder.finalize b in
  let folded = Sttc_netlist.Opt.const_fold nl in
  (* AND(a,1) -> BUF(a); NAND(a,0) -> const 1; OR(a,1) -> const 1;
     XOR(a,1) -> NOT(a) *)
  (match Netlist.kind folded g_and with
  | Netlist.Gate Gate_fn.Buf -> ()
  | _ -> Alcotest.fail "AND(a,1) should fold to BUF");
  (match Netlist.kind folded g_nand with
  | Netlist.Const true -> ()
  | _ -> Alcotest.fail "NAND(a,0) should fold to 1");
  (match Netlist.kind folded g_or with
  | Netlist.Const true -> ()
  | _ -> Alcotest.fail "OR(a,1) should fold to 1");
  (match Netlist.kind folded g_xor with
  | Netlist.Gate Gate_fn.Not -> ()
  | _ -> Alcotest.fail "XOR(a,1) should fold to NOT");
  match Sttc_sim.Equiv.check_sat nl folded with
  | Sttc_sim.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "const_fold changed the function"

let test_opt_collapse_buffers () =
  let b = Netlist.Builder.create ~design_name:"cb" () in
  let a = Netlist.Builder.add_pi b "a" in
  let b1 = Netlist.Builder.add_gate b "b1" Gate_fn.Buf [ a ] in
  let n1 = Netlist.Builder.add_gate b "n1" Gate_fn.Not [ b1 ] in
  let n2 = Netlist.Builder.add_gate b "n2" Gate_fn.Not [ n1 ] in
  let g = Netlist.Builder.add_gate b "g" (Gate_fn.And 2) [ n2; a ] in
  Netlist.Builder.add_output b "y" g;
  let nl = Netlist.Builder.finalize b in
  let collapsed = Sttc_netlist.Opt.collapse_buffers nl in
  (* g's first fanin re-routed through the double inverter to a *)
  Alcotest.(check int) "rerouted to a" a (Netlist.fanins collapsed g).(0);
  match Sttc_sim.Equiv.check_sat nl collapsed with
  | Sttc_sim.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "collapse changed the function"

let test_opt_optimize_random_equivalence () =
  for seed = 0 to 4 do
    let nl =
      Generator.generate ~seed
        {
          Generator.design_name = "opt";
          n_pi = 6;
          n_po = 5;
          n_ff = 4;
          n_gates = 60;
          levels = 6;
        }
    in
    let opt = Sttc_netlist.Opt.optimize nl in
    Alcotest.(check bool) "not larger" true
      (Netlist.gate_count opt <= Netlist.gate_count nl);
    match Sttc_sim.Equiv.check_sat nl opt with
    | Sttc_sim.Equiv.Equivalent -> ()
    | Sttc_sim.Equiv.Different f ->
        Alcotest.fail
          (Printf.sprintf "seed %d: optimize differs at %s" seed
             f.Sttc_sim.Equiv.signal)
    | Sttc_sim.Equiv.Inconclusive m -> Alcotest.fail m
  done

(* ---------- profile stats ---------- *)

let test_profile_stats () =
  let nl = small_circuit () in
  let st = Sttc_netlist.Profile_stats.compute nl in
  Alcotest.(check int) "nodes" 5 st.Sttc_netlist.Profile_stats.nodes;
  Alcotest.(check int) "gates" 2 st.Sttc_netlist.Profile_stats.gates;
  Alcotest.(check int) "depth" 2 st.Sttc_netlist.Profile_stats.depth;
  Alcotest.(check (float 1e-9)) "avg fanin" 2.
    st.Sttc_netlist.Profile_stats.avg_fanin;
  Alcotest.(check bool) "mix has NAND" true
    (List.mem_assoc "NAND" st.Sttc_netlist.Profile_stats.gate_mix);
  Alcotest.(check bool) "renders" true
    (String.length (Sttc_netlist.Profile_stats.render st) > 0)

(* ---------- scan chains ---------- *)

let test_scan_insert_functional_mode () =
  let nl = Sttc_netlist.Iscas_data.s27 () in
  let chain = Sttc_netlist.Scan.insert nl in
  let snl = chain.Sttc_netlist.Scan.netlist in
  (* two extra PIs, one extra PO, 3 mux gates per FF + shared inverter *)
  Alcotest.(check int) "pis" (4 + 2) (List.length (Netlist.pis snl));
  Alcotest.(check int) "pos" 2 (Array.length (Netlist.outputs snl));
  Alcotest.(check int) "gates" (10 + (3 * 3) + 1) (List.length (Netlist.gates snl));
  Alcotest.(check int) "shift cycles" 3 (Sttc_netlist.Scan.shift_cycles chain);
  (* functional mode (scan_en = 0) is cycle-exact to the original *)
  let sim0 = Sttc_sim.Simulator.create nl in
  let sim1 = Sttc_sim.Simulator.create snl in
  Sttc_sim.Simulator.reset sim0;
  Sttc_sim.Simulator.reset sim1;
  let rng = Sttc_util.Rng.make 5 in
  for _ = 1 to 24 do
    let pi0 =
      Array.map (fun _ -> Sttc_util.Rng.int64 rng) (Array.of_list (Netlist.pis nl))
    in
    let pi1 = Array.append pi0 [| 0L; 0L |] in
    let o0 = Sttc_sim.Simulator.step sim0 pi0 in
    let o1 = Sttc_sim.Simulator.step sim1 pi1 in
    Array.iteri
      (fun i v -> Alcotest.(check int64) "output lane" v o1.(i))
      o0
  done

let test_scan_shift_loads_state () =
  let nl = Sttc_netlist.Iscas_data.s27 () in
  let chain = Sttc_netlist.Scan.insert nl in
  let snl = chain.Sttc_netlist.Scan.netlist in
  let sim = Sttc_sim.Simulator.create snl in
  let target = [| true; false; true |] in
  Sttc_sim.Simulator.reset sim;
  List.iter
    (fun v ->
      let lanes = Array.map (fun b -> if b then -1L else 0L) v in
      ignore (Sttc_sim.Simulator.step sim lanes))
    (Sttc_netlist.Scan.shift_sequence chain target);
  let st = Sttc_sim.Simulator.state sim in
  let dffs = Netlist.dffs snl in
  List.iteri
    (fun i ff ->
      let pos = ref 0 in
      List.iteri (fun j f -> if f = ff then pos := j) dffs;
      Alcotest.(check int64)
        ("chain position " ^ string_of_int i)
        (if target.(i) then 1L else 0L)
        (Int64.logand st.(!pos) 1L))
    chain.Sttc_netlist.Scan.order

let test_scan_lock_removes_chain () =
  let nl = Sttc_netlist.Iscas_data.s27 () in
  let chain = Sttc_netlist.Scan.insert nl in
  let locked = Sttc_netlist.Scan.lock chain.Sttc_netlist.Scan.netlist in
  let cleaned = Sttc_netlist.Opt.optimize locked in
  (* the mux logic folds away entirely *)
  Alcotest.(check int) "back to 10 gates" 10 (List.length (Netlist.gates cleaned));
  Alcotest.check_raises "lock needs scan_en"
    (Invalid_argument "Scan.lock: no scan_en input") (fun () ->
      ignore (Sttc_netlist.Scan.lock nl))

let test_scan_insert_validation () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_pi b "a" in
  Netlist.Builder.add_output b "y" a;
  let comb = Netlist.Builder.finalize b in
  Alcotest.check_raises "no ffs" (Invalid_argument "Scan.insert: no flip-flops")
    (fun () -> ignore (Sttc_netlist.Scan.insert comb))

(* ---------- generator ---------- *)

let test_generator_spec_counts () =
  let spec =
    {
      Generator.design_name = "t";
      n_pi = 9;
      n_po = 7;
      n_ff = 5;
      n_gates = 120;
      levels = 9;
    }
  in
  let nl = Generator.generate ~seed:1 spec in
  Alcotest.(check int) "pis" 9 (List.length (Netlist.pis nl));
  Alcotest.(check int) "outputs" 7 (Array.length (Netlist.outputs nl));
  Alcotest.(check int) "ffs" 5 (List.length (Netlist.dffs nl));
  Alcotest.(check int) "gates" 120 (List.length (Netlist.gates nl));
  Alcotest.(check bool) "depth within levels+1" true
    (Query.depth nl <= 10)

let test_generator_determinism () =
  let spec = Generator.default_spec in
  let a = Bench_io.to_string (Generator.generate ~seed:5 spec) in
  let b = Bench_io.to_string (Generator.generate ~seed:5 spec) in
  Alcotest.(check string) "same seed same circuit" a b;
  let c = Bench_io.to_string (Generator.generate ~seed:6 spec) in
  Alcotest.(check bool) "different seed different circuit" true (a <> c)

let test_generator_validation () =
  Alcotest.check_raises "bad spec"
    (Invalid_argument "Generator: n_pi >= 1 required") (fun () ->
      ignore
        (Generator.generate ~seed:1
           { Generator.default_spec with Generator.n_pi = 0 }))

let test_generator_combinational () =
  let nl = Generator.random_combinational ~seed:2 ~n_pi:6 ~n_gates:40 ~n_po:5 in
  Alcotest.(check int) "no ffs" 0 (List.length (Netlist.dffs nl));
  Alcotest.(check int) "gates" 40 (List.length (Netlist.gates nl))

(* ---------- profiles ---------- *)

let test_profiles_match_paper_sizes () =
  (* Table I's size column *)
  let expect =
    [
      ("s641", 287); ("s820", 289); ("s832", 379); ("s953", 395);
      ("s1196", 508); ("s1238", 529); ("s1488", 657); ("s5378a", 2779);
      ("s9234a", 5597); ("s13207", 7951); ("s15850a", 9772); ("s38584", 19253);
    ]
  in
  List.iter
    (fun (name, size) ->
      let info = Profiles.find_exn name in
      Alcotest.(check int) (name ^ " size") size info.Profiles.n_gates;
      let nl = Profiles.build info in
      Alcotest.(check int)
        (name ^ " generated gates")
        size
        (List.length (Netlist.gates nl)))
    expect

(* ---------- scale families ---------- *)

let test_family_profiles_generate () =
  (* every profile must yield a valid netlist of exactly the requested
     gate count, deterministically; the bench sweep extends this check
     to 10^6 gates *)
  List.iter
    (fun profile ->
      let name = Generator.profile_name profile in
      List.iter
        (fun gates ->
          let nl = Generator.generate_family ~seed:7 ~profile ~gates () in
          Alcotest.(check int)
            (Printf.sprintf "%s/%d gate count" name gates)
            gates
            (List.length (Netlist.gates nl));
          Alcotest.(check bool)
            (Printf.sprintf "%s/%d has flip-flops" name gates)
            true
            (Netlist.dffs nl <> []);
          let again = Generator.generate_family ~seed:7 ~profile ~gates () in
          Alcotest.(check string)
            (Printf.sprintf "%s/%d deterministic" name gates)
            (Bench_io.to_string nl) (Bench_io.to_string again))
        [ 1_000; 5_000 ])
    Generator.all_profiles

let test_family_profile_names () =
  List.iter
    (fun p ->
      match Generator.profile_of_string (Generator.profile_name p) with
      | Ok p' ->
          Alcotest.(check string)
            "name roundtrip"
            (Generator.profile_name p)
            (Generator.profile_name p')
      | Error m -> Alcotest.fail m)
    Generator.all_profiles;
  (match Generator.profile_of_string "s-like" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  match Generator.profile_of_string "nope" with
  | Ok _ -> Alcotest.fail "accepted bogus profile"
  | Error _ -> ()

let test_profiles_unknown () =
  Alcotest.(check bool) "find none" true (Profiles.find "s99999" = None);
  Alcotest.check_raises "find_exn"
    (Invalid_argument "Iscas_profiles.find_exn: unknown benchmark s99999")
    (fun () -> ignore (Profiles.find_exn "s99999"))

let netlist_props =
  let gen_seed = QCheck2.Gen.int_range 0 10_000 in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"generated netlists validate and roundtrip"
         ~count:30 gen_seed
         (fun seed ->
           let nl =
             Generator.generate ~seed
               {
                 Generator.design_name = "prop";
                 n_pi = 6;
                 n_po = 5;
                 n_ff = 4;
                 n_gates = 50;
                 levels = 6;
               }
           in
           let nl2 = Bench_io.parse_string (Bench_io.to_string nl) in
           match Sttc_sim.Equiv.check_random ~vectors:512 ~seed:1 nl nl2 with
           | Sttc_sim.Equiv.Equivalent -> true
           | _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"replace+program preserves function" ~count:30
         gen_seed
         (fun seed ->
           let nl =
             Generator.random_combinational ~seed ~n_pi:6 ~n_gates:30 ~n_po:4
           in
           match Netlist.gates nl with
           | [] -> true
           | g :: _ ->
               let nl2 = Transform.replace_gate_with_lut nl g in
               (match Sttc_sim.Equiv.check_sat nl nl2 with
               | Sttc_sim.Equiv.Equivalent -> true
               | _ -> false)));
  ]

let () =
  Alcotest.run "sttc_netlist"
    [
      ( "builder",
        [
          Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "duplicate name" `Quick test_builder_duplicate_name;
          Alcotest.test_case "arity mismatch" `Quick test_builder_arity_mismatch;
          Alcotest.test_case "unwired dff" `Quick test_builder_unwired_dff;
          Alcotest.test_case "no outputs" `Quick test_builder_no_outputs;
          Alcotest.test_case "combinational cycle" `Quick test_builder_combinational_cycle;
          Alcotest.test_case "fanouts" `Quick test_fanouts;
          Alcotest.test_case "topo order" `Quick test_topo_order;
        ] );
      ( "query",
        [
          Alcotest.test_case "cones" `Quick test_query_cones;
          Alcotest.test_case "levels/depth" `Quick test_query_levels_depth;
          Alcotest.test_case "reaches" `Quick test_query_reaches;
          Alcotest.test_case "sequential depth" `Quick test_query_seq_depth;
          Alcotest.test_case "connected pairs" `Quick test_query_connected_pairs;
        ] );
      ( "bench_io",
        [
          Alcotest.test_case "parse" `Quick test_bench_parse;
          Alcotest.test_case "roundtrip semantics" `Quick test_bench_roundtrip_semantics;
          Alcotest.test_case "lut roundtrip" `Quick test_bench_lut_roundtrip;
          Alcotest.test_case "errors" `Quick test_bench_errors;
          Alcotest.test_case "strict errors" `Quick test_bench_strict_errors;
          Alcotest.test_case "constants" `Quick test_bench_constants;
        ] );
      ("verilog", [ Alcotest.test_case "output" `Quick test_verilog_output ]);
      ( "transform",
        [
          Alcotest.test_case "replace preserves ids" `Quick test_transform_replace_preserves_ids;
          Alcotest.test_case "missing gate" `Quick test_transform_missing_gate;
          Alcotest.test_case "extra inputs" `Quick test_transform_extra_inputs;
          Alcotest.test_case "program/strip" `Quick test_transform_program_strip;
          Alcotest.test_case "not a gate" `Quick test_transform_replace_not_a_gate;
          Alcotest.test_case "absorb driver" `Quick test_transform_absorb_driver;
          Alcotest.test_case "absorb rejections" `Quick test_transform_absorb_rejections;
          Alcotest.test_case "sweep" `Quick test_transform_sweep;
        ] );
      ( "iscas_data",
        [
          Alcotest.test_case "genuine benchmarks" `Quick test_iscas_data_genuine;
          Alcotest.test_case "c17 truth" `Quick test_c17_truth;
        ] );
      ( "opt",
        [
          Alcotest.test_case "const fold" `Quick test_opt_const_fold;
          Alcotest.test_case "collapse buffers" `Quick test_opt_collapse_buffers;
          Alcotest.test_case "optimize equivalence" `Quick
            test_opt_optimize_random_equivalence;
        ] );
      ( "profile_stats",
        [ Alcotest.test_case "compute/render" `Quick test_profile_stats ] );
      ( "scan",
        [
          Alcotest.test_case "functional mode" `Quick test_scan_insert_functional_mode;
          Alcotest.test_case "shift loads state" `Quick test_scan_shift_loads_state;
          Alcotest.test_case "lock removes chain" `Quick test_scan_lock_removes_chain;
          Alcotest.test_case "validation" `Quick test_scan_insert_validation;
        ] );
      ( "generator",
        [
          Alcotest.test_case "spec counts" `Quick test_generator_spec_counts;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          Alcotest.test_case "validation" `Quick test_generator_validation;
          Alcotest.test_case "combinational" `Quick test_generator_combinational;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "paper sizes" `Quick test_profiles_match_paper_sizes;
          Alcotest.test_case "unknown" `Quick test_profiles_unknown;
        ] );
      ( "families",
        [
          Alcotest.test_case "profiles generate" `Quick
            test_family_profiles_generate;
          Alcotest.test_case "profile names" `Quick test_family_profile_names;
        ] );
      ("properties", netlist_props);
    ]
