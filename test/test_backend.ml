(* Tests for lib/backend: the registry, per-cell keyspace accounting,
   the cross-backend invariants of the flow (selection is a pure
   function of (netlist, algorithm, seed) — never of the cell
   technology), the restricted SAT attacker model, and the [backend]
   field threaded through the Runner/Manifest/serve JSON schemas. *)

module Backend = Sttc_backend.Backend
module Flow = Sttc_core.Flow
module Hybrid = Sttc_core.Hybrid
module Netlist = Sttc_netlist.Netlist
module Generator = Sttc_netlist.Generator
module Gate_fn = Sttc_logic.Gate_fn
module Truth = Sttc_logic.Truth
module Lognum = Sttc_util.Lognum
module Sat_attack = Sttc_attack.Sat_attack
module Runner = Sttc_experiments.Runner
module Manifest = Sttc_campaign.Manifest
module Request = Sttc_serve.Request
module Json = Sttc_obs.Json

let protect ?seed ?backend alg nl =
  (Flow.run ?seed ?backend ~policy:Flow.Strict alg nl).Flow.accepted

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let small_spec =
  {
    Generator.design_name = "bk";
    n_pi = 6;
    n_po = 5;
    n_ff = 4;
    n_gates = 45;
    levels = 5;
  }

let gen_netlist seed = Generator.generate ~seed small_spec
let gen_seed = QCheck2.Gen.int_range 0 100_000
let to_case = QCheck_alcotest.to_alcotest

(* ---------- registry ---------- *)

let test_registry () =
  Alcotest.(check (list string)) "names" [ "stt"; "tvd" ] (Backend.names ());
  (match Backend.find "tvd" with
  | Some b ->
      Alcotest.(check string) "find tvd" "tvd" (Backend.name b);
      Alcotest.(check bool) "tvd is restricted" true (Backend.restricted b)
  | None -> Alcotest.fail "tvd not registered");
  Alcotest.(check bool) "stt is free" false (Backend.restricted Backend.stt);
  Alcotest.(check bool) "unknown name" true (Backend.find "sram" = None);
  match Backend.find_exn "sram" with
  | exception Invalid_argument m ->
      Alcotest.(check bool) "error names the offender" true
        (contains m "sram");
      Alcotest.(check bool) "error lists the registry" true
        (contains m "stt" && contains m "tvd")
  | _ -> Alcotest.fail "find_exn must raise on unknown names"

(* ---------- keyspace accounting ---------- *)

(* An stt cell of arity n is worth 2^2^n configurations; a tvd cell is
   worth exactly its candidate family — and for n >= 2 that family is
   strictly smaller, which is the whole security trade-off. *)
let test_cell_keyspace () =
  for n = 1 to 4 do
    let stt = Backend.cell_keyspace Backend.stt ~arity:n in
    let expected = Lognum.pow (Lognum.of_int 2) (1 lsl n) in
    Alcotest.(check bool)
      (Printf.sprintf "stt arity %d = 2^2^%d" n n)
      true
      (Lognum.equal stt expected);
    let tvd = Backend.cell_keyspace Backend.tvd ~arity:n in
    let family = Gate_fn.candidate_count n in
    Alcotest.(check bool)
      (Printf.sprintf "tvd arity %d = candidate family" n)
      true
      (Lognum.equal tvd (Lognum.of_int family));
    Alcotest.(check int)
      (Printf.sprintf "family matches Tvd_lib at arity %d" n)
      family
      (List.length (Sttc_tech.Tvd_lib.candidate_functions n));
    if n >= 2 then
      Alcotest.(check bool)
        (Printf.sprintf "tvd < stt at arity %d" n)
        true
        (Lognum.compare tvd stt < 0)
  done;
  let arities = [ 2; 3; 3; 4 ] in
  let prod b =
    List.fold_left
      (fun acc n -> Lognum.mul acc (Backend.cell_keyspace b ~arity:n))
      Lognum.one arities
  in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Backend.name b ^ " search space is the product")
        true
        (Lognum.equal (Backend.search_space b ~arities) (prod b)))
    Backend.all

(* ---------- flow invariants ---------- *)

(* Same netlist, same algorithm, same seed: every backend must pick the
   same gates and store the same truth tables.  Only pricing differs. *)
let prop_selection_backend_independent =
  QCheck2.Test.make ~name:"selection identical across backends" ~count:10
    QCheck2.Gen.(pair gen_seed (int_range 0 2))
    (fun (seed, alg_idx) ->
      let nl = gen_netlist seed in
      let alg = List.nth Flow.default_algorithms alg_idx in
      let per_backend =
        List.map (fun b -> (protect ~seed ~backend:b alg nl).Flow.hybrid)
          Backend.all
      in
      match per_backend with
      | [] -> false
      | first :: rest ->
          List.for_all
            (fun h ->
              Hybrid.lut_ids h = Hybrid.lut_ids first
              && Hybrid.bitstream h = Hybrid.bitstream first)
            rest)

(* The hidden function of every tvd cell must be inside the candidate
   family the attacker is told about — otherwise the restricted CNF
   would exclude the true key and the keyspace accounting would lie. *)
let prop_tvd_secret_in_candidate_family =
  QCheck2.Test.make ~name:"tvd secret within candidate family" ~count:10
    gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      let r = protect ~seed ~backend:Backend.tvd (Flow.Independent { count = 4 }) nl in
      let h = r.Flow.hybrid in
      let foundry = Hybrid.foundry_view h in
      List.for_all
        (fun (id, config) ->
          match Netlist.kind foundry id with
          | Netlist.Lut { arity; _ } -> (
              match Backend.candidate_tables Backend.tvd ~arity with
              | Some family -> List.mem config family
              | None -> false)
          | _ -> false)
        (Hybrid.bitstream h))

(* The SAT attack must recover an oracle-confirmed key under both
   attacker models (free CNF for stt, candidate-restricted for tvd). *)
let prop_sat_breaks_both_backends =
  QCheck2.Test.make ~name:"sat attack oracle-confirmed per backend" ~count:6
    gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      List.for_all
        (fun backend ->
          let r = protect ~seed ~backend (Flow.Independent { count = 3 }) nl in
          let h = r.Flow.hybrid in
          let candidates =
            Backend.sat_candidates backend (Hybrid.foundry_view h)
              (Hybrid.lut_ids h)
          in
          match Sat_attack.run ~timeout_s:30. ~candidates h with
          | Sat_attack.Broken b -> Sat_attack.verify_break h b.bitstream
          | Sat_attack.Exhausted _ -> false)
        Backend.all)

let test_stt_sat_candidates_empty () =
  let nl = gen_netlist 3 in
  let r = protect ~seed:3 ~backend:Backend.stt (Flow.Independent { count = 3 }) nl in
  let h = r.Flow.hybrid in
  Alcotest.(check int) "stt imposes no candidate restriction" 0
    (List.length
       (Backend.sat_candidates Backend.stt (Hybrid.foundry_view h)
          (Hybrid.lut_ids h)))

let test_hardening_requires_free_backend () =
  let nl = gen_netlist 5 in
  let hardening = { Flow.extra_inputs_per_lut = 1; absorb_drivers = false } in
  match
    Flow.run ~seed:1 ~hardening ~backend:Backend.tvd ~policy:Flow.Strict
      (Flow.Independent { count = 2 })
      nl
  with
  | exception Invalid_argument m ->
      Alcotest.(check bool) "error names the backend" true (contains m "tvd")
  | _ -> Alcotest.fail "hardening under tvd must be rejected"

(* ---------- JSON threading ---------- *)

let has_backend_field = function
  | Json.Obj fields -> List.mem_assoc "backend" fields
  | _ -> Alcotest.fail "expected an object"

let test_runner_config_json () =
  let module C = Runner.Config in
  Alcotest.(check bool) "default omits backend" false
    (has_backend_field (C.to_json C.default));
  let tvd = C.with_backend "tvd" C.default in
  Alcotest.(check bool) "non-default emits backend" true
    (has_backend_field (C.to_json tvd));
  (match C.of_json (C.to_json tvd) with
  | Ok c -> Alcotest.(check string) "round trip" "tvd" c.C.backend
  | Error e -> Alcotest.fail e);
  match C.of_json (Json.Obj [ ("backend", Json.String "sram") ]) with
  | Ok _ -> Alcotest.fail "unknown backend must be rejected"
  | Error e -> Alcotest.(check bool) "error names it" true (contains e "sram")

let test_manifest_json () =
  let stt = Manifest.make ~name:"m" ~circuits:[ "s27" ] ~seeds:[ 1 ] () in
  Alcotest.(check bool) "default omits backend" false
    (has_backend_field (Manifest.to_json stt));
  let tvd =
    Manifest.make ~backend:"tvd" ~name:"m" ~circuits:[ "s27" ] ~seeds:[ 1 ] ()
  in
  Alcotest.(check bool) "non-default emits backend" true
    (has_backend_field (Manifest.to_json tvd));
  (match Manifest.of_json (Manifest.to_json tvd) with
  | Ok m -> Alcotest.(check string) "round trip" "tvd" m.Manifest.backend
  | Error e -> Alcotest.fail e);
  match
    Manifest.validate
      (Manifest.make ~backend:"sram" ~name:"m" ~circuits:[ "s27" ]
         ~seeds:[ 1 ] ())
  with
  | Ok () -> Alcotest.fail "unknown backend must fail validation"
  | Error e -> Alcotest.(check bool) "error names it" true (contains e "sram")

let test_request_json () =
  (match Request.of_string {|{"verb":"protect","netlist":"s27"}|} with
  | Ok { payload = Request.Protect p; _ } ->
      Alcotest.(check string) "default backend" "stt" p.Request.backend;
      Alcotest.(check bool) "default render omits backend" false
        (contains
           (Request.to_string { id = None; timeout_s = None; payload = Request.Protect p })
           "backend")
  | Ok _ -> Alcotest.fail "unexpected payload"
  | Error e -> Alcotest.fail e);
  (match
     Request.of_string {|{"verb":"attack","netlist":"s27","backend":"tvd"}|}
   with
  | Ok { payload = Request.Attack a; _ } ->
      Alcotest.(check string) "explicit backend" "tvd" a.Request.backend
  | Ok _ -> Alcotest.fail "unexpected payload"
  | Error e -> Alcotest.fail e);
  match Request.of_string {|{"verb":"protect","netlist":"s27","backend":"sram"}|} with
  | Ok _ -> Alcotest.fail "unknown backend must fail the request parse"
  | Error e -> Alcotest.(check bool) "error names it" true (contains e "sram")

let () =
  Alcotest.run "backend"
    [
      ( "registry",
        [
          Alcotest.test_case "names and lookup" `Quick test_registry;
          Alcotest.test_case "cell keyspace" `Quick test_cell_keyspace;
        ] );
      ( "flow",
        [
          to_case prop_selection_backend_independent;
          to_case prop_tvd_secret_in_candidate_family;
          Alcotest.test_case "stt candidates empty" `Quick
            test_stt_sat_candidates_empty;
          Alcotest.test_case "hardening needs free backend" `Quick
            test_hardening_requires_free_backend;
        ] );
      ("attack", [ to_case prop_sat_breaks_both_backends ]);
      ( "json",
        [
          Alcotest.test_case "runner config" `Quick test_runner_config_json;
          Alcotest.test_case "manifest" `Quick test_manifest_json;
          Alcotest.test_case "serve request" `Quick test_request_json;
        ] );
    ]
