(* Tests for Sttc_sim: bit-parallel simulation, ternary simulation of
   hybrids, and the three equivalence-checking engines. *)

module Netlist = Sttc_netlist.Netlist
module Generator = Sttc_netlist.Generator
module Transform = Sttc_netlist.Transform
module Gate_fn = Sttc_logic.Gate_fn
module Truth = Sttc_logic.Truth
module Ternary = Sttc_logic.Ternary
module Simulator = Sttc_sim.Simulator
module Ternary_sim = Sttc_sim.Ternary_sim
module Equiv = Sttc_sim.Equiv

let full = -1L

(* adder-ish: s = a XOR b, c = a AND b *)
let half_adder () =
  let b = Netlist.Builder.create ~design_name:"ha" () in
  let x = Netlist.Builder.add_pi b "x" in
  let y = Netlist.Builder.add_pi b "y" in
  let s = Netlist.Builder.add_gate b "s" (Gate_fn.Xor 2) [ x; y ] in
  let c = Netlist.Builder.add_gate b "c" (Gate_fn.And 2) [ x; y ] in
  Netlist.Builder.add_output b "s" s;
  Netlist.Builder.add_output b "c" c;
  Netlist.Builder.finalize b

(* 2-bit counter: ff0 toggles, ff1 toggles when ff0 is 1 *)
let counter () =
  let b = Netlist.Builder.create ~design_name:"cnt" () in
  let en = Netlist.Builder.add_pi b "en" in
  let ff0 = Netlist.Builder.add_dff_deferred b "ff0" in
  let ff1 = Netlist.Builder.add_dff_deferred b "ff1" in
  let t0 = Netlist.Builder.add_gate b "t0" (Gate_fn.Xor 2) [ ff0; en ] in
  let carry = Netlist.Builder.add_gate b "carry" (Gate_fn.And 2) [ ff0; en ] in
  let t1 = Netlist.Builder.add_gate b "t1" (Gate_fn.Xor 2) [ ff1; carry ] in
  Netlist.Builder.set_dff_input b ff0 t0;
  Netlist.Builder.set_dff_input b ff1 t1;
  Netlist.Builder.add_output b "q0" ff0;
  Netlist.Builder.add_output b "q1" ff1;
  Netlist.Builder.finalize b

(* ---------- Simulator ---------- *)

let test_sim_half_adder () =
  let nl = half_adder () in
  let sim = Simulator.create nl in
  (* lanes: x = 0101..., y = 0011... encode all four combinations *)
  let x = 0b0101L and y = 0b0011L in
  let outs = Simulator.eval_comb sim [| x; y |] in
  Alcotest.(check int64) "sum = xor" 0b0110L (Int64.logand outs.(0) 0xFL);
  Alcotest.(check int64) "carry = and" 0b0001L (Int64.logand outs.(1) 0xFL)

let test_sim_counter_sequence () =
  let nl = counter () in
  let sim = Simulator.create nl in
  Simulator.reset sim;
  (* enable always on (all lanes); watch lane 0 count 00 01 10 11 00 *)
  let expect = [ (0, 0); (1, 0); (0, 1); (1, 1); (0, 0) ] in
  List.iter
    (fun (q0, q1) ->
      let outs = Simulator.step sim [| full |] in
      Alcotest.(check int) "q0" q0 (Int64.to_int (Int64.logand outs.(0) 1L));
      Alcotest.(check int) "q1" q1 (Int64.to_int (Int64.logand outs.(1) 1L)))
    expect

let test_sim_reset_and_state () =
  let nl = counter () in
  let sim = Simulator.create nl in
  Simulator.reset sim;
  ignore (Simulator.step sim [| full |]);
  Alcotest.(check bool) "state changed" true (Simulator.state sim <> [| 0L; 0L |]);
  Simulator.reset sim;
  Alcotest.(check bool) "reset clears" true (Simulator.state sim = [| 0L; 0L |]);
  Simulator.set_state sim [| full; 0L |];
  let st = Simulator.state sim in
  Alcotest.(check int64) "set state" full st.(0)

let test_sim_lut_config () =
  let nl = half_adder () in
  let s = Netlist.find_exn nl "s" in
  let foundry = Transform.replace_many ~keep_function:false nl [ s ] in
  (* unprogrammed LUT refuses to simulate *)
  Alcotest.(check bool) "unprogrammed rejected" true
    (try
       ignore (Simulator.create foundry);
       false
     with Invalid_argument _ -> true);
  (* override configs work without rewriting the netlist *)
  let sim =
    Simulator.create ~configs:[ (s, Truth.of_string "0110") ] foundry
  in
  let outs = Simulator.eval_comb sim [| 0b0101L; 0b0011L |] in
  Alcotest.(check int64) "xor restored" 0b0110L (Int64.logand outs.(0) 0xFL)

let test_sim_eval_truth_lanes () =
  let xor2 = Truth.of_string "0110" in
  Alcotest.(check int64) "lanes" 0b0110L
    (Int64.logand (Simulator.eval_truth_lanes xor2 [| 0b0101L; 0b0011L |]) 0xFL);
  let const1 = Truth.const_true ~arity:1 in
  Alcotest.(check int64) "const" (-1L)
    (Simulator.eval_truth_lanes const1 [| 0b01L |])

let test_sim_run_sequence () =
  let nl = counter () in
  let sim = Simulator.create nl in
  let outs = Simulator.run_sequence sim [ [| full |]; [| full |]; [| 0L |] ] in
  Alcotest.(check int) "three cycles" 3 (List.length outs)

let test_sim_matches_gate_semantics () =
  (* random circuits: bit-parallel sim vs naive per-gate evaluation *)
  for seed = 0 to 4 do
    let nl = Generator.random_combinational ~seed ~n_pi:5 ~n_gates:30 ~n_po:4 in
    let sim = Simulator.create nl in
    let pis = Array.of_list (Netlist.pis nl) in
    let rng = Sttc_util.Rng.make seed in
    let lanes = Array.map (fun _ -> Sttc_util.Rng.int64 rng) pis in
    let outs = Simulator.eval_comb sim lanes in
    (* naive single-bit reference on lane 17 *)
    let lane = 17 in
    let bit v = Int64.logand (Int64.shift_right_logical v lane) 1L = 1L in
    let values = Hashtbl.create 64 in
    Array.iteri (fun i pi -> Hashtbl.add values pi (bit lanes.(i))) pis;
    Array.iter
      (fun id ->
        let node = Netlist.node nl id in
        match node.Netlist.kind with
        | Netlist.Gate fn ->
            let ins =
              Array.map (fun s -> Hashtbl.find values s) node.Netlist.fanins
            in
            Hashtbl.add values id (Gate_fn.eval fn ins)
        | Netlist.Const v -> Hashtbl.add values id v
        | _ -> ())
      (Netlist.topo_order nl);
    Array.iteri
      (fun i (name, driver) ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d output %s" seed name)
          (Hashtbl.find values driver) (bit outs.(i)))
      (Netlist.outputs nl)
  done

(* ---------- Ternary_sim ---------- *)

let test_ternary_sim_known_inputs () =
  let nl = half_adder () in
  let values = Ternary_sim.eval_comb nl [| Ternary.One; Ternary.One |] in
  let outs = Ternary_sim.outputs nl values in
  Alcotest.(check bool) "sum 0" true (Ternary.equal outs.(0) Ternary.Zero);
  Alcotest.(check bool) "carry 1" true (Ternary.equal outs.(1) Ternary.One)

let test_ternary_sim_missing_lut_propagates_x () =
  let nl = half_adder () in
  let s = Netlist.find_exn nl "s" in
  let foundry = Transform.replace_many ~keep_function:false nl [ s ] in
  let values = Ternary_sim.eval_comb foundry [| Ternary.One; Ternary.One |] in
  let outs = Ternary_sim.outputs foundry values in
  Alcotest.(check bool) "sum unknown" true (Ternary.equal outs.(0) Ternary.X);
  Alcotest.(check bool) "carry still known" true
    (Ternary.equal outs.(1) Ternary.One);
  Alcotest.(check int) "one unknown output" 1
    (Ternary_sim.unknown_outputs foundry values);
  Alcotest.(check bool) "x reaches observation" true
    (Ternary_sim.x_reaches_observation foundry values)

let test_ternary_sim_default_state_is_x () =
  let nl = counter () in
  let values = Ternary_sim.eval_comb nl [| Ternary.One |] in
  let outs = Ternary_sim.outputs nl values in
  Alcotest.(check bool) "outputs unknown without state" true
    (Ternary.equal outs.(0) Ternary.X);
  let values =
    Ternary_sim.eval_comb ~state:[| Ternary.Zero; Ternary.Zero |] nl
      [| Ternary.One |]
  in
  let outs = Ternary_sim.outputs nl values in
  Alcotest.(check bool) "known with state" true
    (Ternary.equal outs.(0) Ternary.Zero)

(* ---------- Equiv ---------- *)

let test_equiv_identical () =
  let nl = counter () in
  (match Equiv.check_random ~vectors:1024 ~seed:1 nl nl with
  | Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "random: identical must be equivalent");
  (match Equiv.check_sat nl nl with
  | Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "sat: identical must be equivalent");
  match Equiv.check_bdd nl nl with
  | Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "bdd: identical must be equivalent"

let mutated_counter () =
  (* swap the carry AND for OR: functionally different *)
  let nl = counter () in
  Netlist.with_kinds nl (fun id kind fanins ->
      if Netlist.name nl id = "carry" then (Netlist.Gate (Gate_fn.Or 2), fanins)
      else (kind, fanins))

let test_equiv_detects_difference () =
  let a = counter () and b = mutated_counter () in
  (match Equiv.check_sat a b with
  | Equiv.Different f ->
      Alcotest.(check bool) "signal named" true (String.length f.Equiv.signal > 0)
  | _ -> Alcotest.fail "sat must find the difference");
  (match Equiv.check_bdd a b with
  | Equiv.Different _ -> ()
  | _ -> Alcotest.fail "bdd must find the difference");
  match Equiv.check_random ~vectors:2048 ~seed:3 a b with
  | Equiv.Different _ -> ()
  | _ -> Alcotest.fail "random must find the difference"

let test_equiv_witness_is_real () =
  let a = counter () and b = mutated_counter () in
  match Equiv.check_sat a b with
  | Equiv.Different f ->
      (* replay the witness on both circuits: outputs must differ *)
      let run nl =
        let sim = Simulator.create nl in
        let pis = Array.of_list (Netlist.pis nl) in
        let dffs = Array.of_list (Netlist.dffs nl) in
        let value name = List.assoc name f.Equiv.witness in
        let lanes names =
          Array.map
            (fun id -> if value (Netlist.name nl id) then full else 0L)
            names
        in
        Simulator.set_state sim (lanes dffs);
        let outs = Simulator.eval_comb sim (lanes pis) in
        let values = Simulator.node_values sim in
        let next =
          Array.of_list
            (List.map
               (fun ff -> values.((Netlist.fanins nl ff).(0)))
               (Netlist.dffs nl))
        in
        Array.append outs next
      in
      let oa = run a and ob = run b in
      Alcotest.(check bool) "witness distinguishes" true (oa <> ob)
  | _ -> Alcotest.fail "expected difference"

let test_equiv_interface_mismatch () =
  let a = counter () and b = half_adder () in
  match Equiv.check_sat a b with
  | Equiv.Inconclusive _ -> ()
  | _ -> Alcotest.fail "expected inconclusive on interface mismatch"

let test_equiv_unprogrammed_lut () =
  let nl = half_adder () in
  let s = Netlist.find_exn nl "s" in
  let foundry = Transform.replace_many ~keep_function:false nl [ s ] in
  match Equiv.check_sat nl foundry with
  | Equiv.Inconclusive _ -> ()
  | _ -> Alcotest.fail "unprogrammed LUT must be inconclusive"

let test_equiv_three_engines_agree () =
  for seed = 0 to 4 do
    let nl =
      Generator.generate ~seed
        {
          Generator.design_name = "eq";
          n_pi = 5;
          n_po = 4;
          n_ff = 3;
          n_gates = 40;
          levels = 5;
        }
    in
    (* replace two gates keeping function: all engines must say equal *)
    let gates = Netlist.gates nl in
    let picks = [ List.nth gates 0; List.nth gates (List.length gates / 2) ] in
    let nl2 = Transform.replace_many ~keep_function:true nl picks in
    let to_bool = function
      | Equiv.Equivalent -> true
      | Equiv.Different _ -> false
      | Equiv.Inconclusive m -> Alcotest.fail m
    in
    Alcotest.(check bool) "sat" true (to_bool (Equiv.check_sat nl nl2));
    Alcotest.(check bool) "bdd" true (to_bool (Equiv.check_bdd nl nl2));
    Alcotest.(check bool) "random" true
      (to_bool (Equiv.check_random ~vectors:512 ~seed nl nl2))
  done

let () =
  Alcotest.run "sttc_sim"
    [
      ( "simulator",
        [
          Alcotest.test_case "half adder" `Quick test_sim_half_adder;
          Alcotest.test_case "counter sequence" `Quick test_sim_counter_sequence;
          Alcotest.test_case "reset/state" `Quick test_sim_reset_and_state;
          Alcotest.test_case "lut config" `Quick test_sim_lut_config;
          Alcotest.test_case "eval_truth_lanes" `Quick test_sim_eval_truth_lanes;
          Alcotest.test_case "run_sequence" `Quick test_sim_run_sequence;
          Alcotest.test_case "matches gate semantics" `Quick
            test_sim_matches_gate_semantics;
        ] );
      ( "ternary_sim",
        [
          Alcotest.test_case "known inputs" `Quick test_ternary_sim_known_inputs;
          Alcotest.test_case "missing lut X" `Quick
            test_ternary_sim_missing_lut_propagates_x;
          Alcotest.test_case "default state X" `Quick
            test_ternary_sim_default_state_is_x;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "identical" `Quick test_equiv_identical;
          Alcotest.test_case "detects difference" `Quick test_equiv_detects_difference;
          Alcotest.test_case "witness is real" `Quick test_equiv_witness_is_real;
          Alcotest.test_case "interface mismatch" `Quick test_equiv_interface_mismatch;
          Alcotest.test_case "unprogrammed lut" `Quick test_equiv_unprogrammed_lut;
          Alcotest.test_case "three engines agree" `Quick
            test_equiv_three_engines_agree;
        ] );
    ]
