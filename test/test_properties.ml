(* Cross-module property-based tests: invariants that must hold on random
   circuits, random selections and random configurations — the contracts
   the whole flow rests on. *)

module Netlist = Sttc_netlist.Netlist
module Generator = Sttc_netlist.Generator
module Transform = Sttc_netlist.Transform
module Gate_fn = Sttc_logic.Gate_fn
module Truth = Sttc_logic.Truth
module Rng = Sttc_util.Rng
module Lognum = Sttc_util.Lognum
module Flow = Sttc_core.Flow

(* strict single-attempt protection via the unified Flow.run entry point *)
let protect ?seed ?fraction ?hardening alg nl =
  (Flow.run ?seed ?fraction ?hardening ~policy:Flow.Strict alg nl)
    .Flow.accepted

module Hybrid = Sttc_core.Hybrid

let gen_seed = QCheck2.Gen.int_range 0 100_000

let small_spec =
  {
    Generator.design_name = "prop";
    n_pi = 6;
    n_po = 5;
    n_ff = 4;
    n_gates = 45;
    levels = 5;
  }

let gen_netlist seed = Generator.generate ~seed small_spec

let equivalent a b =
  match Sttc_sim.Equiv.check_sat a b with
  | Sttc_sim.Equiv.Equivalent -> true
  | _ -> false

let to_case = QCheck_alcotest.to_alcotest

(* ---------- flow-level invariants ---------- *)

let prop_protect_program_identity =
  QCheck2.Test.make ~name:"protect then program restores the function"
    ~count:12
    QCheck2.Gen.(pair gen_seed (int_range 0 2))
    (fun (seed, alg_idx) ->
      let nl = gen_netlist seed in
      let alg = List.nth Flow.default_algorithms alg_idx in
      let r = protect ~seed alg nl in
      equivalent nl (Hybrid.programmed r.Flow.hybrid))

let prop_foundry_view_has_no_configs =
  QCheck2.Test.make ~name:"foundry view never carries configurations"
    ~count:12 gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      let r = protect ~seed (Flow.Independent { count = 4 }) nl in
      List.for_all
        (fun id ->
          match Netlist.kind (Hybrid.foundry_view r.Flow.hybrid) id with
          | Netlist.Lut { config = None; _ } -> true
          | _ -> false)
        (Hybrid.lut_ids r.Flow.hybrid))

let prop_hardening_preserves_function =
  QCheck2.Test.make ~name:"hardened hybrids stay equivalent" ~count:10
    QCheck2.Gen.(pair gen_seed (int_range 1 2))
    (fun (seed, extra) ->
      let nl = gen_netlist seed in
      let hardening =
        { Flow.extra_inputs_per_lut = extra; absorb_drivers = true }
      in
      let r = protect ~seed ~hardening (Flow.Independent { count = 3 }) nl in
      equivalent nl (Hybrid.programmed r.Flow.hybrid))

let prop_security_monotone =
  QCheck2.Test.make ~name:"N_dep and N_bf never shrink when LUTs are added"
    ~count:12 gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      let gates = Array.of_list (Netlist.gates nl) in
      QCheck2.assume (Array.length gates >= 8);
      let eval k =
        let h = Hybrid.make nl (Array.to_list (Array.sub gates 0 k)) in
        Sttc_core.Security.evaluate (Hybrid.foundry_view h)
          ~luts:(Hybrid.lut_ids h)
      in
      let a = eval 4 and b = eval 8 in
      Lognum.compare b.Sttc_core.Security.n_dep a.Sttc_core.Security.n_dep >= 0
      && Lognum.compare b.Sttc_core.Security.n_bf a.Sttc_core.Security.n_bf >= 0)

(* ---------- netlist transforms ---------- *)

let prop_optimize_equivalence =
  QCheck2.Test.make ~name:"Opt.optimize preserves the function" ~count:15
    gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      equivalent nl (Sttc_netlist.Opt.optimize nl))

let prop_sweep_equivalence_and_map =
  QCheck2.Test.make ~name:"Transform.sweep preserves function and maps ids"
    ~count:15 gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      let swept, map = Transform.sweep nl in
      equivalent nl swept
      && Array.for_all (fun m -> m >= -1 && m < Netlist.node_count swept) map)

let prop_scan_functional_mode =
  QCheck2.Test.make ~name:"scan insertion is invisible in functional mode"
    ~count:10 gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      QCheck2.assume (Netlist.dffs nl <> []);
      let chain = Sttc_netlist.Scan.insert nl in
      let snl = chain.Sttc_netlist.Scan.netlist in
      let sim0 = Sttc_sim.Simulator.create nl in
      let sim1 = Sttc_sim.Simulator.create snl in
      Sttc_sim.Simulator.reset sim0;
      Sttc_sim.Simulator.reset sim1;
      let rng = Rng.make seed in
      let pis0 = Array.of_list (Netlist.pis nl) in
      let ok = ref true in
      for _ = 1 to 12 do
        let v0 = Array.map (fun _ -> Rng.int64 rng) pis0 in
        let v1 = Array.append v0 [| 0L; 0L |] in
        let o0 = Sttc_sim.Simulator.step sim0 v0 in
        let o1 = Sttc_sim.Simulator.step sim1 v1 in
        Array.iteri (fun i v -> if v <> o1.(i) then ok := false) o0
      done;
      !ok)

let prop_scan_shift_any_state =
  QCheck2.Test.make ~name:"scan shifting loads any state" ~count:10
    QCheck2.Gen.(pair gen_seed (int_range 0 15))
    (fun (seed, state_bits) ->
      let nl = gen_netlist seed in
      QCheck2.assume (Netlist.dffs nl <> []);
      let chain = Sttc_netlist.Scan.insert nl in
      let snl = chain.Sttc_netlist.Scan.netlist in
      let m = Sttc_netlist.Scan.shift_cycles chain in
      let target = Array.init m (fun i -> (state_bits lsr (i mod 4)) land 1 = 1) in
      let sim = Sttc_sim.Simulator.create snl in
      Sttc_sim.Simulator.reset sim;
      List.iter
        (fun v ->
          ignore
            (Sttc_sim.Simulator.step sim
               (Array.map (fun b -> if b then -1L else 0L) v)))
        (Sttc_netlist.Scan.shift_sequence chain target);
      let st = Sttc_sim.Simulator.state sim in
      let dffs = Netlist.dffs snl in
      List.for_all
        (fun (i, ff) ->
          let pos = ref 0 in
          List.iteri (fun j f -> if f = ff then pos := j) dffs;
          Int64.logand st.(!pos) 1L = (if target.(i) then 1L else 0L))
        (List.mapi (fun i ff -> (i, ff)) chain.Sttc_netlist.Scan.order))

(* ---------- IO round-trips ---------- *)

let prop_bench_roundtrip_with_luts =
  QCheck2.Test.make ~name:"hybrid .bench round-trips semantically" ~count:12
    gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      let gates = Array.of_list (Netlist.gates nl) in
      let picks =
        Array.to_list (Rng.sample (Rng.make seed) 3 gates)
      in
      let h = Hybrid.make nl picks in
      let programmed = Hybrid.programmed h in
      let reparsed =
        Sttc_netlist.Bench_io.parse_string
          (Sttc_netlist.Bench_io.to_string programmed)
      in
      equivalent programmed reparsed)

let prop_provision_roundtrip =
  QCheck2.Test.make ~name:"bitstream serialize/parse/apply restores design"
    ~count:12 gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      let r = protect ~seed (Flow.Independent { count = 3 }) nl in
      let text =
        Sttc_core.Provision.to_string (Sttc_core.Provision.of_hybrid r.Flow.hybrid)
      in
      let programmed =
        Sttc_core.Provision.apply
          (Hybrid.foundry_view r.Flow.hybrid)
          (Sttc_core.Provision.parse text)
      in
      equivalent nl programmed)

(* ---------- analysis invariants ---------- *)

let prop_segments_partition_path =
  QCheck2.Test.make ~name:"segments partition a path's gates" ~count:15
    gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      let rng = Rng.make seed in
      let paths = Sttc_analysis.Paths.sample ~rng ~fraction:0.4 ~min_ffs:0 nl in
      List.for_all
        (fun p ->
          let from_segments =
            List.concat_map
              (fun s -> s.Sttc_analysis.Paths.gates)
              (Sttc_analysis.Paths.segments nl p)
          in
          from_segments = Sttc_analysis.Paths.gates_on_path nl p)
        paths)

let prop_sta_arrival_monotone =
  QCheck2.Test.make ~name:"STA arrivals never decrease along a path"
    ~count:15 gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      let sta = Sttc_analysis.Sta.analyze Sttc_tech.Library.cmos90 nl in
      List.for_all
        (fun (_, path) ->
          let rec increasing = function
            | a :: (b :: _ as rest) ->
                Sttc_analysis.Sta.arrival_ps sta a
                <= Sttc_analysis.Sta.arrival_ps sta b +. 1e-9
                && increasing rest
            | _ -> true
          in
          increasing path)
        (Sttc_analysis.Sta.worst_paths sta ~k:4))

let prop_power_hybrid_exceeds_base =
  QCheck2.Test.make ~name:"replacing gates with STT LUTs never cuts power"
    ~count:12 gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      let gates = Array.of_list (Netlist.gates nl) in
      let picks = Array.to_list (Rng.sample (Rng.make seed) 3 gates) in
      let h = Hybrid.make nl picks in
      let lib = Sttc_tech.Library.cmos90 in
      let base = Sttc_analysis.Power.estimate lib nl in
      let hyb = Sttc_analysis.Power.estimate lib (Hybrid.programmed h) in
      hyb.Sttc_analysis.Power.total_uw
      >= base.Sttc_analysis.Power.total_uw -. 1e-9)

(* ---------- simulator vs formal semantics ---------- *)

let prop_sim_matches_bdd =
  QCheck2.Test.make ~name:"bit-parallel simulator agrees with BDD semantics"
    ~count:10 gen_seed
    (fun seed ->
      let nl = Generator.random_combinational ~seed ~n_pi:6 ~n_gates:25 ~n_po:4 in
      let m = Sttc_logic.Bdd.manager () in
      let pis = Array.of_list (Netlist.pis nl) in
      let var_of = Hashtbl.create 8 in
      Array.iteri (fun i pi -> Hashtbl.add var_of pi i) pis;
      let bdds = Array.make (Netlist.node_count nl) (Sttc_logic.Bdd.zero m) in
      Array.iter
        (fun id ->
          let node = Netlist.node nl id in
          match node.Netlist.kind with
          | Netlist.Pi -> bdds.(id) <- Sttc_logic.Bdd.var m (Hashtbl.find var_of id)
          | Netlist.Const v ->
              bdds.(id) <-
                (if v then Sttc_logic.Bdd.one m else Sttc_logic.Bdd.zero m)
          | Netlist.Gate fn ->
              let ins =
                Array.to_list (Array.map (fun s -> bdds.(s)) node.Netlist.fanins)
              in
              bdds.(id) <-
                (match fn with
                | Gate_fn.Buf -> List.hd ins
                | Gate_fn.Not -> Sttc_logic.Bdd.lnot m (List.hd ins)
                | Gate_fn.And _ -> Sttc_logic.Bdd.land_list m ins
                | Gate_fn.Nand _ ->
                    Sttc_logic.Bdd.lnot m (Sttc_logic.Bdd.land_list m ins)
                | Gate_fn.Or _ -> Sttc_logic.Bdd.lor_list m ins
                | Gate_fn.Nor _ ->
                    Sttc_logic.Bdd.lnot m (Sttc_logic.Bdd.lor_list m ins)
                | Gate_fn.Xor _ -> Sttc_logic.Bdd.lxor_list m ins
                | Gate_fn.Xnor _ ->
                    Sttc_logic.Bdd.lnot m (Sttc_logic.Bdd.lxor_list m ins))
          | Netlist.Lut _ | Netlist.Dff -> ())
        (Netlist.topo_order nl);
      let sim = Sttc_sim.Simulator.create nl in
      let rng = Rng.make (seed + 1) in
      let lanes = Array.map (fun _ -> Rng.int64 rng) pis in
      let outs = Sttc_sim.Simulator.eval_comb sim lanes in
      let lane = 13 in
      let bit v = Int64.logand (Int64.shift_right_logical v lane) 1L = 1L in
      Array.for_all Fun.id
        (Array.mapi
           (fun i (_, driver) ->
             let assign v = bit lanes.(v) in
             Sttc_logic.Bdd.eval bdds.(driver) assign = bit outs.(i))
           (Netlist.outputs nl)))

(* ---------- incremental timing & activity differentials ----------

   The incremental engine's contract is exactness, not approximation:
   every quantity it produces must be bit-identical to a from-scratch
   analysis of the modified netlist.  These properties drive random
   netlists through random replacement sets and compare with [=]. *)

module Sta = Sttc_analysis.Sta
module Activity = Sttc_analysis.Activity
module Algorithms = Sttc_core.Algorithms

let cmos = Sttc_tech.Library.cmos90

let random_gate_subset seed nl k =
  let gates = Array.of_list (Netlist.gates nl) in
  let k = min k (Array.length gates) in
  if k = 0 then [] else Array.to_list (Rng.sample (Rng.make seed) k gates)

let arrivals_equal nl a b =
  let n = Netlist.node_count nl in
  let rec go i =
    i >= n || (Sta.arrival_ps a i = Sta.arrival_ps b i && go (i + 1))
  in
  go 0

let prop_retime_matches_analyze =
  QCheck2.Test.make ~name:"retime is bit-identical to from-scratch analyze"
    ~count:15
    QCheck2.Gen.(pair gen_seed (int_range 1 8))
    (fun (seed, k) ->
      let nl = gen_netlist seed in
      let base = Sta.analyze cmos nl in
      let picks = random_gate_subset (seed + 17) nl k in
      let nl' = Transform.replace_many ~keep_function:false nl picks in
      let inc = Sta.retime cmos base nl' ~changed:[] in
      let full = Sta.analyze cmos nl' in
      arrivals_equal nl' inc full
      && Sta.critical_delay_ps inc = Sta.critical_delay_ps full
      && Sta.critical_path inc = Sta.critical_path full)

let prop_trial_session_matches_scratch =
  (* a persistent trial session advanced through a drifting sequence of
     candidate sets must agree with a fresh replace+analyze at every
     step — the exact access pattern of the selection loops *)
  QCheck2.Test.make ~name:"trial sessions track from-scratch STA exactly"
    ~count:10 gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      let base = Sta.analyze cmos nl in
      let tr = Sta.trial cmos base in
      let ov = Transform.Overlay.create nl in
      let current = ref [] in
      List.for_all
        (fun (i, k) ->
          let target = random_gate_subset (seed + (31 * i) + 7) nl k in
          let removed =
            List.filter (fun g -> not (List.mem g target)) !current
          in
          let added =
            List.filter (fun g -> not (List.mem g !current)) target
          in
          List.iter (Transform.Overlay.unstage ov) removed;
          Transform.Overlay.stage_all ov added;
          (match List.rev_append removed added with
          | [] -> ()
          | seeds ->
              ignore
                (Sta.trial_advance tr
                   ~kind_of:(Transform.Overlay.kind ov)
                   seeds));
          current := target;
          let full =
            Sta.analyze cmos
              (Transform.replace_many ~keep_function:false nl target)
          in
          let d, p = Sta.trial_current_critical tr in
          d = Sta.critical_delay_ps full
          && p = Sta.critical_path full
          && Sta.trial_current_delay_ps tr = Sta.critical_delay_ps full)
        [ (0, 3); (1, 5); (2, 1); (3, 4); (4, 0); (5, 2) ])

let prop_activity_refine_matches_full =
  QCheck2.Test.make ~name:"Activity.refine is bit-identical to the full fixpoint"
    ~count:12
    QCheck2.Gen.(triple gen_seed (int_range 1 6) bool)
    (fun (seed, k, keep_function) ->
      let nl = gen_netlist seed in
      let base = Activity.analyze nl in
      let picks = random_gate_subset (seed + 5) nl k in
      let nl' = Transform.replace_many ~keep_function nl picks in
      let inc = Activity.refine base nl' ~changed:[] in
      let full = Activity.analyze nl' in
      let n = Netlist.node_count nl' in
      let rec go i =
        i >= n
        || (Activity.probability inc i = Activity.probability full i
           && Activity.switching inc i = Activity.switching full i
           && go (i + 1))
      in
      go 0)

let prop_parametric_incremental_matches_full =
  (* the whole parametric flow — including its repair loop, which
     retracts gates from an accepted set — must emit byte-identical
     hybrids whether candidate timing runs on the incremental session
     or on the legacy full re-analysis (STTC_FULL_STA=1) *)
  QCheck2.Test.make
    ~name:"parametric flow is byte-identical with and without incremental STA"
    ~count:6 gen_seed
    (fun seed ->
      let nl = gen_netlist seed in
      let alg =
        Flow.Parametric
          { Algorithms.default_parametric with Algorithms.clock_factor = 1.05 }
      in
      let fingerprint () =
        match protect ~seed alg nl with
        | r ->
            Ok
              ( Sttc_netlist.Bench_io.to_string
                  (Hybrid.foundry_view r.Flow.hybrid),
                Hybrid.bitstream r.Flow.hybrid )
        | exception e -> Error (Printexc.to_string e)
      in
      Unix.putenv "STTC_FULL_STA" "1";
      let full = fingerprint () in
      Unix.putenv "STTC_FULL_STA" "";
      let inc = fingerprint () in
      full = inc)

let prop_lognum_prod_is_log_sum =
  QCheck2.Test.make ~name:"Lognum.prod equals the sum of logs" ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) (float_range 0.5 1e6))
    (fun xs ->
      let p = Lognum.prod (List.map Lognum.of_float xs) in
      let expected = List.fold_left (fun acc x -> acc +. log10 x) 0. xs in
      Float.abs (Lognum.log10 p -. expected) < 1e-6)

let () =
  Alcotest.run "properties"
    [
      ( "flow",
        List.map to_case
          [
            prop_protect_program_identity;
            prop_foundry_view_has_no_configs;
            prop_hardening_preserves_function;
            prop_security_monotone;
          ] );
      ( "transforms",
        List.map to_case
          [
            prop_optimize_equivalence;
            prop_sweep_equivalence_and_map;
            prop_scan_functional_mode;
            prop_scan_shift_any_state;
          ] );
      ( "io",
        List.map to_case
          [ prop_bench_roundtrip_with_luts; prop_provision_roundtrip ] );
      ( "analysis",
        List.map to_case
          [
            prop_segments_partition_path;
            prop_sta_arrival_monotone;
            prop_power_hybrid_exceeds_base;
          ] );
      ( "incremental",
        List.map to_case
          [
            prop_retime_matches_analyze;
            prop_trial_session_matches_scratch;
            prop_activity_refine_matches_full;
            prop_parametric_incremental_matches_full;
          ] );
      ( "semantics",
        List.map to_case [ prop_sim_matches_bdd; prop_lognum_prod_is_log_sum ] );
    ]
