(* Tests for the lib/obs observability subsystem: the JSON codec, the
   span/metrics recorders (including their disabled fast path and their
   cross-domain merge semantics), the exporters and their validators,
   and the Pool probe wiring. *)

module Obs = Sttc_obs.Obs
module Json = Sttc_obs.Json
module Span = Sttc_obs.Span
module Metrics = Sttc_obs.Metrics
module Export = Sttc_obs.Export
module Build_info = Sttc_obs.Build_info
module Pool = Sttc_util.Pool

(* Every test leaves the global recorder off and empty, whatever
   happens inside. *)
let recording f () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* ---------- Json ---------- *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("yes", Json.Bool true);
      ("n", Json.Int (-42));
      ("x", Json.Float 1.5);
      ("s", Json.String "a \"quoted\" line\nwith\ttabs \\ and slashes");
      ("l", Json.List [ Json.Int 1; Json.Int 2; Json.Obj [] ]);
    ]

let test_json_round_trip () =
  List.iter
    (fun minify ->
      match Json.of_string (Json.to_string ~minify sample_json) with
      | Ok j ->
          Alcotest.(check bool)
            (Printf.sprintf "round trip (minify=%b)" minify)
            true (j = sample_json)
      | Error e -> Alcotest.fail ("parse of own output failed: " ^ e))
    [ true; false ]

let test_json_unicode_escapes () =
  (* UTF-8 carried verbatim, standard escapes decoded *)
  (match Json.of_string {|"ABé\n"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "decoded" "AB\xc3\xa9\n" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.fail e);
  (* \uXXXX escapes decode to UTF-8 bytes *)
  match Json.of_string {|"\u0041\u00e9"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "u-escapes" "A\xc3\xa9" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.fail e

let test_json_parse_errors () =
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted malformed input: " ^ bad))
    [ "tru"; "{"; "[1,]"; "{\"a\":1,}"; "1 x"; ""; "\"unterminated" ]

let test_json_accessors () =
  Alcotest.(check (option int))
    "member int" (Some (-42))
    (Option.bind (Json.member "n" sample_json) Json.to_int_opt);
  Alcotest.(check (option (float 1e-9)))
    "to_float_opt accepts Int" (Some (-42.))
    (Option.bind (Json.member "n" sample_json) Json.to_float_opt);
  Alcotest.(check bool)
    "missing member" true
    (Json.member "absent" sample_json = None);
  Alcotest.(check (option int))
    "list length" (Some 3)
    (Option.map List.length
       (Option.bind (Json.member "l" sample_json) Json.to_list_opt))

let test_json_rejects_nan () =
  Alcotest.(check bool)
    "nan raises" true
    (match Json.to_string (Json.Float Float.nan) with
    | (_ : string) -> false
    | exception Invalid_argument _ -> true)

(* ---------- disabled fast path ---------- *)

let test_disabled_records_nothing () =
  Obs.reset ();
  Alcotest.(check bool) "off by default" false (Obs.enabled ());
  let r = Span.with_ "t.off" (fun () -> 7) in
  Span.instant "t.off_instant";
  Metrics.incr "t.off_counter";
  Metrics.observe "t.off_hist" 1.;
  Alcotest.(check int) "thunk result passes through" 7 r;
  Alcotest.(check int) "no spans" 0 (List.length (Span.events ()));
  Alcotest.(check int) "no series" 0 (List.length (Metrics.snapshot ()))

(* ---------- spans ---------- *)

(* [Span.event]'s payloads are inline records, which cannot escape
   their constructor — copy the fields the assertions need. *)
type span_view = {
  ts_us : float;
  dur_us : float;
  depth : int;
  parent : string option;
  attrs : (string * string) list;
}

let find_span name events =
  List.find_map
    (function
      | Span.Complete c when c.name = name ->
          Some
            {
              ts_us = c.ts_us;
              dur_us = c.dur_us;
              depth = c.depth;
              parent = c.parent;
              attrs = c.attrs;
            }
      | Span.Complete _ | Span.Instant _ -> None)
    events

let test_span_nesting =
  recording (fun () ->
      let v =
        Span.with_ "t.outer" ~attrs:[ ("k", "v") ] (fun () ->
            Span.with_ "t.inner" (fun () -> 5))
      in
      Alcotest.(check int) "result" 5 v;
      let evs = Span.events () in
      match (find_span "t.outer" evs, find_span "t.inner" evs) with
      | Some o, Some i ->
          Alcotest.(check int) "outer depth" 0 o.depth;
          Alcotest.(check bool) "outer has no parent" true (o.parent = None);
          Alcotest.(check int) "inner depth" 1 i.depth;
          Alcotest.(check bool) "inner parent" true (i.parent = Some "t.outer");
          Alcotest.(check bool)
            "inner starts after outer" true
            (i.ts_us >= o.ts_us);
          Alcotest.(check bool)
            "inner contained" true
            (i.ts_us +. i.dur_us <= o.ts_us +. o.dur_us +. 1e-6);
          Alcotest.(check bool) "attrs kept" true (o.attrs = [ ("k", "v") ])
      | _ -> Alcotest.fail "spans not recorded")

let test_span_records_on_exception =
  recording (fun () ->
      (match Span.with_ "t.boom" (fun () -> failwith "boom") with
      | () -> Alcotest.fail "should have raised"
      | exception Failure _ -> ());
      Alcotest.(check bool)
        "span recorded despite raise" true
        (find_span "t.boom" (Span.events ()) <> None))

let test_span_instant =
  recording (fun () ->
      Span.instant "t.mark" ~attrs:[ ("rows", "3") ];
      let found =
        List.exists
          (function
            | Span.Instant i -> i.name = "t.mark" && i.attrs = [ ("rows", "3") ]
            | Span.Complete _ -> false)
          (Span.events ())
      in
      Alcotest.(check bool) "instant recorded" true found)

(* ---------- metrics ---------- *)

let test_metrics_cross_domain_merge =
  recording (fun () ->
      Metrics.incr ~by:2 "t.cross";
      Metrics.set_gauge "t.level" 1.;
      let ds =
        List.init 2 (fun k ->
            Domain.spawn (fun () ->
                Metrics.incr ~by:5 "t.cross";
                Metrics.set_gauge "t.level" (float_of_int (3 + k))))
      in
      List.iter Domain.join ds;
      let snap = Metrics.snapshot () in
      Alcotest.(check int)
        "counters sum across domains" 12
        (Metrics.counter_value snap "t.cross");
      match Metrics.find snap "t.level" with
      | Some (Metrics.Gauge g) ->
          Alcotest.(check (float 1e-9)) "gauges merge as max" 4. g
      | _ -> Alcotest.fail "gauge series missing")

let test_metrics_peak_gauge =
  recording (fun () ->
      Metrics.peak_gauge "t.peak" 2.;
      Metrics.peak_gauge "t.peak" 9.;
      Metrics.peak_gauge "t.peak" 4.;
      match Metrics.find (Metrics.snapshot ()) "t.peak" with
      | Some (Metrics.Gauge g) ->
          Alcotest.(check (float 1e-9)) "high-water mark" 9. g
      | _ -> Alcotest.fail "gauge series missing")

let test_metrics_histogram =
  recording (fun () ->
      (* lowest bucket, two mid-grid samples, one overflow (> 1e3) *)
      List.iter (Metrics.observe "t.h") [ 0.; 0.5; 2.; 5000. ];
      match Metrics.find (Metrics.snapshot ()) "t.h" with
      | Some (Metrics.Histogram h) ->
          Alcotest.(check int) "count" 4 h.Metrics.count;
          Alcotest.(check (float 1e-9)) "sum" 5002.5 h.Metrics.sum;
          Alcotest.(check (float 1e-9)) "min" 0. h.Metrics.min;
          Alcotest.(check (float 1e-9)) "max" 5000. h.Metrics.max;
          Alcotest.(check int) "overflow" 1 h.Metrics.overflow;
          let in_buckets =
            List.fold_left (fun a (_, n) -> a + n) 0 h.Metrics.buckets
          in
          Alcotest.(check int)
            "buckets + overflow = count" h.Metrics.count
            (in_buckets + h.Metrics.overflow);
          let bounds = List.map fst h.Metrics.buckets in
          let rec increasing = function
            | a :: (b :: _ as rest) -> a < b && increasing rest
            | [ _ ] | [] -> true
          in
          Alcotest.(check bool)
            "bounds strictly increasing" true (increasing bounds)
      | _ -> Alcotest.fail "histogram series missing")

let test_metrics_snapshot_sorted =
  recording (fun () ->
      Metrics.incr "t.zz";
      Metrics.incr "t.aa";
      Metrics.incr "t.mm";
      let names = List.map fst (Metrics.snapshot ()) in
      Alcotest.(check (list string))
        "sorted by name"
        (List.sort compare names)
        names)

(* ---------- export / validate ---------- *)

let test_export_round_trip =
  recording (fun () ->
      Span.with_ "t.a" (fun () -> Span.with_ "t.b" (fun () -> ()));
      Span.instant "t.i";
      Metrics.incr "t.c";
      Metrics.observe "t.h" 0.25;
      (match Export.validate_trace (Export.trace_json ()) with
      | Ok n -> Alcotest.(check int) "span count" 2 n
      | Error e -> Alcotest.fail ("trace invalid: " ^ e));
      match Export.validate_metrics ~min_series:2 (Export.metrics_json ()) with
      | Ok n -> Alcotest.(check int) "series count" 2 n
      | Error e -> Alcotest.fail ("metrics invalid: " ^ e))

let test_export_files =
  recording (fun () ->
      Span.with_ "t.file" (fun () -> ());
      Metrics.incr "t.file_counter";
      let tf = Filename.temp_file "sttc_trace" ".json" in
      let mf = Filename.temp_file "sttc_metrics" ".json" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove tf;
          Sys.remove mf)
        (fun () ->
          Obs.write_trace tf;
          Obs.write_metrics mf;
          (match Obs.validate_trace_file tf with
          | Ok n -> Alcotest.(check int) "file span count" 1 n
          | Error e -> Alcotest.fail e);
          match Obs.validate_metrics_file ~min_series:1 mf with
          | Ok n -> Alcotest.(check int) "file series count" 1 n
          | Error e -> Alcotest.fail e))

let test_validators_reject_garbage () =
  Alcotest.(check bool)
    "empty object is not a trace" true
    (Result.is_error (Export.validate_trace (Json.Obj [])));
  Alcotest.(check bool)
    "missing meta is not a metrics file" true
    (Result.is_error
       (Export.validate_metrics (Json.Obj [ ("metrics", Json.Obj []) ])));
  Alcotest.(check bool)
    "min_series enforced" true
    (Result.is_error
       (Export.validate_metrics ~min_series:1
          (Json.Obj
             [
               ( "meta",
                 Export.metrics_json () |> Json.member "meta"
                 |> Option.value ~default:Json.Null );
               ("metrics", Json.Obj []);
             ])))

(* An overlapping-but-not-nested pair on one track must be rejected:
   that is the invariant the per-domain buffers guarantee. *)
let test_validator_rejects_bad_nesting () =
  let ev name ts dur =
    Json.Obj
      [
        ("name", Json.String name);
        ("cat", Json.String "t");
        ("ph", Json.String "X");
        ("ts", Json.Float ts);
        ("dur", Json.Float dur);
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
      ]
  in
  let meta =
    Export.trace_json () |> Json.member "otherData"
    |> Option.value ~default:Json.Null
  in
  let doc events =
    Json.Obj [ ("traceEvents", Json.List events); ("otherData", meta) ]
  in
  Alcotest.(check bool)
    "proper nesting accepted" true
    (Result.is_ok (Export.validate_trace (doc [ ev "a" 0. 10.; ev "b" 2. 3. ])));
  Alcotest.(check bool)
    "partial overlap rejected" true
    (Result.is_error
       (Export.validate_trace (doc [ ev "a" 0. 10.; ev "b" 5. 10. ])))

(* ---------- build info ---------- *)

let contains_substring text sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length text && (String.sub text i n = sub || go (i + 1))
  in
  go 0

let test_build_info () =
  Alcotest.(check bool)
    "version non-empty" true
    (String.length Build_info.version > 0);
  let fields = Build_info.to_fields () in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k fields))
    [ "tool"; "version"; "commit"; "ocaml" ];
  Alcotest.(check bool)
    "to_text mentions version" true
    (contains_substring (Build_info.to_text ()) Build_info.version)

(* ---------- pool probe ---------- *)

let test_pool_probe =
  recording (fun () ->
      Obs.attach_pool ();
      Fun.protect ~finally:Obs.detach_pool (fun () ->
          Pool.with_pool ~jobs:2 (fun pool ->
              let out =
                Pool.map_exn pool (fun x -> x * x) (List.init 64 Fun.id)
              in
              Alcotest.(check int) "results intact" 64 (List.length out));
          let snap = Metrics.snapshot () in
          Alcotest.(check int)
            "one submission" 1
            (Metrics.counter_value snap "pool.submits");
          Alcotest.(check int)
            "all tasks counted" 64
            (Metrics.counter_value snap "pool.tasks");
          Alcotest.(check bool)
            "chunks counted" true
            (Metrics.counter_value snap "pool.chunks" > 0);
          let chunk_spans =
            List.length
              (List.filter
                 (function
                   | Span.Complete c -> c.name = "pool.chunk"
                   | Span.Instant _ -> false)
                 (Span.events ()))
          in
          Alcotest.(check int)
            "one span per chunk"
            (Metrics.counter_value snap "pool.chunks")
            chunk_spans))

(* ---------- with_run ---------- *)

let test_with_run_noop_when_unrequested () =
  Obs.reset ();
  let r = Obs.with_run (fun () -> Obs.enabled ()) in
  Alcotest.(check bool) "stays disabled" false r

let test_with_run_exports_and_resets () =
  Obs.reset ();
  let tf = Filename.temp_file "sttc_run_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tf)
    (fun () ->
      Obs.with_run ~trace:tf (fun () ->
          Alcotest.(check bool) "enabled inside" true (Obs.enabled ());
          Span.with_ "t.run" (fun () -> ()));
      Alcotest.(check bool) "disabled after" false (Obs.enabled ());
      Alcotest.(check int) "buffers reset" 0 (List.length (Span.events ()));
      match Obs.validate_trace_file tf with
      | Ok n -> Alcotest.(check int) "exported span" 1 n
      | Error e -> Alcotest.fail e)

let () =
  Alcotest.run "sttc_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "rejects nan" `Quick test_json_rejects_nan;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "records on exception" `Quick
            test_span_records_on_exception;
          Alcotest.test_case "instant" `Quick test_span_instant;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "cross-domain merge" `Quick
            test_metrics_cross_domain_merge;
          Alcotest.test_case "peak gauge" `Quick test_metrics_peak_gauge;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "snapshot sorted" `Quick
            test_metrics_snapshot_sorted;
        ] );
      ( "export",
        [
          Alcotest.test_case "round trip" `Quick test_export_round_trip;
          Alcotest.test_case "files" `Quick test_export_files;
          Alcotest.test_case "rejects garbage" `Quick
            test_validators_reject_garbage;
          Alcotest.test_case "rejects bad nesting" `Quick
            test_validator_rejects_bad_nesting;
          Alcotest.test_case "build info" `Quick test_build_info;
        ] );
      ( "integration",
        [
          Alcotest.test_case "pool probe" `Quick test_pool_probe;
          Alcotest.test_case "with_run off" `Quick
            test_with_run_noop_when_unrequested;
          Alcotest.test_case "with_run exports" `Quick
            test_with_run_exports_and_resets;
        ] );
    ]
