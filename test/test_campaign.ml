(* Tests for the lib/campaign engine: manifest codec and validation,
   deterministic shard assignment, the versioned checkpoint container
   under truncation, worker checkpoint/resume equality, and the
   supervisor's failure paths — killed, stalled, lying and crashing
   workers — driven with /bin/sh stand-in workers so every failure is
   deterministic and fast. *)

module Manifest = Sttc_campaign.Manifest
module Shard = Sttc_campaign.Shard
module Worker = Sttc_campaign.Worker
module Supervisor = Sttc_campaign.Supervisor
module Aggregate = Sttc_campaign.Aggregate
module Ckpt = Sttc_util.Ckpt
module Flow = Sttc_core.Flow
module Metrics = Sttc_obs.Metrics
module Obs = Sttc_obs.Obs

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "sttc-campaign-test-%d-%d" (Unix.getpid ()) !n)
    in
    Shard.prepare_dir path;
    path

(* a manifest whose runs are real but tiny (s27: 10 gates) *)
let tiny ?(algorithms = [ Flow.Dependent ]) ?(seeds = [ 1 ]) ?(shards = 1)
    ?(retries = 1) ?(heartbeat_timeout_s = 5.) () =
  Manifest.make ~name:"t" ~circuits:[ "s27" ] ~algorithms ~seeds ~shards
    ~retries ~heartbeat_timeout_s ()

(* fabricated completed rows for one shard — supervisor/aggregate tests
   never need the flow to actually run *)
let fake_metrics =
  {
    Shard.gates = 10;
    luts = 2;
    config_bits = 8;
    perf_pct = 1.5;
    power_pct = 2.5;
    area_pct = 3.5;
    n_indep = "1.0e+03";
    n_dep = "1.0e+04";
    n_bf = "1.0e+05";
  }

let fake_rows m ~shard =
  List.map
    (fun (r : Manifest.run) ->
      {
        Shard.index = r.index;
        circuit = r.circuit;
        config = r.config.label;
        algorithm = Flow.algorithm_name r.algorithm;
        seed = r.seed;
        outcome = Shard.Done fake_metrics;
      })
    (Shard.assign m ~shard)

(* worker/supervisor runs flip the global recorder on; leave it clean *)
let scrubbed f () =
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* ---------- manifest ---------- *)

let test_manifest_round_trip () =
  let m =
    Manifest.make ~name:"rt" ~circuits:[ "s27"; "s641" ]
      ~algorithms:
        [
          Flow.Dependent;
          Flow.Independent { count = 7 };
          Flow.Parametric
            { Sttc_core.Algorithms.default_parametric with clock_factor = 1.1 };
        ]
      ~configs:
        [
          Manifest.default_config;
          { Manifest.label = "hard"; fraction = Some 0.25; harden = true };
        ]
      ~seeds:[ 3; 5 ] ~shards:3 ~timeout_s:12.5 ~retries:4
      ~heartbeat_timeout_s:7.5 ~attempt_timeout_s:90. ()
  in
  match Manifest.of_string (Manifest.to_string m) with
  | Ok m' -> Alcotest.(check bool) "round trip" true (m = m')
  | Error e -> Alcotest.fail e

let test_manifest_defaults_and_seeds_object () =
  match
    Manifest.of_string
      {|{"name": "d", "circuits": ["s27"], "seeds": {"base": 10, "count": 3}}|}
  with
  | Error e -> Alcotest.fail e
  | Ok m ->
      Alcotest.(check (list int)) "seeds expanded" [ 10; 11; 12 ] m.seeds;
      Alcotest.(check int)
        "default algorithms"
        (List.length Flow.default_algorithms)
        (List.length m.algorithms);
      Alcotest.(check int) "default shards" 1 m.shards;
      Alcotest.(check int) "default retries" 2 m.retries;
      Alcotest.(check int) "run count" (3 * List.length m.algorithms)
        (Manifest.run_count m)

let test_manifest_rejections () =
  let bad =
    [
      ( "unknown circuit",
        {|{"name": "x", "circuits": ["nosuch"], "seeds": [1]}|} );
      ("no seeds", {|{"name": "x", "circuits": ["s27"], "seeds": []}|});
      ( "bad shards",
        {|{"name": "x", "circuits": ["s27"], "seeds": [1], "shards": 0}|} );
      ( "dup labels",
        {|{"name": "x", "circuits": ["s27"], "seeds": [1],
           "configs": [{"label": "a"}, {"label": "a"}]}|} );
      ( "bad fraction",
        {|{"name": "x", "circuits": ["s27"], "seeds": [1],
           "configs": [{"label": "a", "fraction": 1.5}]}|} );
      ("not json", "][");
    ]
  in
  List.iter
    (fun (what, text) ->
      match Manifest.of_string text with
      | Ok _ -> Alcotest.fail (what ^ ": accepted")
      | Error _ -> ())
    bad

(* ---------- shard assignment ---------- *)

let test_shard_partition () =
  let m = tiny ~algorithms:Flow.default_algorithms ~seeds:[ 1; 2; 3 ] ~shards:4 () in
  let all = Manifest.runs m in
  let parts = List.init 4 (fun shard -> Shard.assign m ~shard) in
  let union = List.concat parts in
  Alcotest.(check int)
    "complete" (List.length all) (List.length union);
  let indices =
    List.sort compare (List.map (fun (r : Manifest.run) -> r.index) union)
  in
  Alcotest.(check (list int))
    "disjoint and complete"
    (List.init (List.length all) Fun.id)
    indices;
  List.iteri
    (fun shard part ->
      List.iter
        (fun (r : Manifest.run) ->
          Alcotest.(check int) "round robin" shard (r.index mod 4))
        part;
      Alcotest.(check bool)
        "deterministic" true
        (part = Shard.assign m ~shard))
    parts;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Shard.assign: shard 4 out of range [0, 4)") (fun () ->
      ignore (Shard.assign m ~shard:4))

(* ---------- the checkpoint container ---------- *)

let test_ckpt_round_trip_and_magic () =
  let path = Filename.temp_file "ckpt" ".bin" in
  let v = (42, [ "a"; "b" ]) in
  Ckpt.save path ~magic:"test-v1" v;
  (match Ckpt.load path ~magic:"test-v1" with
  | Ok (v' : int * string list) -> Alcotest.(check bool) "round trip" true (v = v')
  | Error e -> Alcotest.fail (Ckpt.error_to_string e));
  (match Ckpt.load path ~magic:"test-v2" with
  | Error (`Rejected r) ->
      Alcotest.(check bool)
        "names the mismatch" true
        (String.length r > 0)
  | Ok (_ : int * string list) -> Alcotest.fail "foreign magic accepted"
  | Error `Missing -> Alcotest.fail "file exists");
  (match Ckpt.load (path ^ ".nope") ~magic:"test-v1" with
  | Error `Missing -> ()
  | _ -> Alcotest.fail "missing file not reported as Missing");
  Sys.remove path

let ckpt_truncation_fuzz =
  QCheck.Test.make ~count:60 ~name:"truncated checkpoint is always rejected"
    QCheck.(int_bound 10_000)
    (fun salt ->
      let path = Filename.temp_file "ckpt-fuzz" ".bin" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Ckpt.save path ~magic:"fuzz-v1"
            (List.init 50 (fun i -> (i * salt, string_of_int i)));
          let full = In_channel.with_open_bin path In_channel.input_all in
          let len = String.length full in
          (* cut anywhere strictly inside the file, header included *)
          let cut = salt mod (len - 1) in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (String.sub full 0 cut));
          match Ckpt.load path ~magic:"fuzz-v1" with
          | Error (`Rejected _) -> true
          | Ok (_ : (int * string) list) ->
              QCheck.Test.fail_reportf "truncation at %d/%d accepted" cut len
          | Error `Missing ->
              QCheck.Test.fail_reportf "file exists but reported missing"))

(* ---------- worker: checkpoint resume convergence ---------- *)

let worker_manifest =
  tiny ~algorithms:[ Flow.Dependent; Flow.Independent { count = 3 } ]
    ~seeds:[ 1; 2 ] ()

let worker_rows dir =
  match Shard.load_result ~dir ~shard:0 with
  | Ok rows -> rows
  | Error e -> Alcotest.fail (Ckpt.error_to_string e)

let run_worker ?(attempt = 1) dir =
  Manifest.save (Shard.manifest_path dir) worker_manifest;
  match Worker.run ~dir ~shard:0 ~attempt () with
  | Ok o -> o
  | Error e -> Alcotest.fail e

let test_worker_resume_convergence () =
  (* reference: one uninterrupted pass *)
  let ref_dir = fresh_dir () in
  let full = run_worker ref_dir in
  Alcotest.(check int) "computed all" 4 full.computed;
  let reference = worker_rows ref_dir in
  Alcotest.(check int) "all rows" 4 (List.length reference);
  (* resumed: first two rows restored from a checkpoint, rest computed *)
  let res_dir = fresh_dir () in
  Shard.save_checkpoint ~dir:res_dir ~shard:0
    (List.filteri (fun i _ -> i < 2) reference);
  let o = run_worker ~attempt:2 res_dir in
  Alcotest.(check int) "restored" 2 o.restored;
  Alcotest.(check int) "computed rest" 2 o.computed;
  Alcotest.(check bool)
    "rows identical to uninterrupted run" true
    (worker_rows res_dir = reference);
  (* corrupt checkpoint: rejected cleanly, full recompute, same rows *)
  let bad_dir = fresh_dir () in
  Out_channel.with_open_bin
    (Shard.checkpoint_path ~dir:bad_dir 0)
    (fun oc -> Out_channel.output_string oc "not a checkpoint at all\n");
  let o = run_worker bad_dir in
  Alcotest.(check int) "nothing restored from garbage" 0 o.restored;
  Alcotest.(check int) "everything recomputed" 4 o.computed;
  Alcotest.(check bool)
    "rows still identical" true
    (worker_rows bad_dir = reference)

(* ---------- supervisor failure paths (sh stand-in workers) ---------- *)

(* Each script receives $1=dir $2=shard $3=attempt; paths that matter
   are substituted in directly. *)
let sh_worker script =
  Supervisor.Spawn
    (fun ~dir ~shard ~attempt ->
      [|
        "/bin/sh";
        "-c";
        script;
        "worker";
        dir;
        string_of_int shard;
        string_of_int attempt;
      |])

let supervise ?(retries = 1) ?(heartbeat_timeout_s = 5.) ~worker events =
  let m = tiny ~retries ~heartbeat_timeout_s () in
  let dir = fresh_dir () in
  Manifest.save (Shard.manifest_path dir) m;
  let cfg =
    Supervisor.config ~jobs:1 ~backoff_base_s:0.01 ~backoff_cap_s:0.05
      ~poll_interval_s:0.01 ~worker
      ~on_event:(fun e -> events := e :: !events)
      ~dir ~manifest:m ()
  in
  (dir, m, Supervisor.run cfg)

(* a stashed valid result the recovering attempt can "produce" *)
let stash_result m =
  let stash = fresh_dir () in
  Shard.save_result ~dir:stash ~shard:0 (fake_rows m ~shard:0);
  Shard.result_path ~dir:stash 0

let test_supervisor_exhausts_hard_failure =
  scrubbed @@ fun () ->
  let events = ref [] in
  let _, _, outcome = supervise ~retries:2 ~worker:(sh_worker "exit 3") events in
  (match outcome.Supervisor.statuses with
  | [ (0, Supervisor.Exhausted { attempts = 3; last = Supervisor.Exited 3 }) ]
    -> ()
  | _ -> Alcotest.fail "expected shard 0 exhausted after 3 attempts");
  Alcotest.(check int) "retries" 2 outcome.Supervisor.retries;
  Alcotest.(check int) "respawns" 2 outcome.Supervisor.respawns;
  Alcotest.(check int) "degraded" 1 outcome.Supervisor.degraded;
  Alcotest.(check bool) "not complete" false (Supervisor.all_complete outcome);
  let degraded_events =
    List.filter
      (function Supervisor.Degraded _ -> true | _ -> false)
      !events
  in
  Alcotest.(check int) "one degraded event" 1 (List.length degraded_events)

let test_supervisor_sigkill_then_recover =
  scrubbed @@ fun () ->
  let m = tiny () in
  let stash = stash_result m in
  let script =
    Printf.sprintf
      {|if [ "$3" = "1" ]; then kill -9 $$; else cp %s "$1/shards/shard-$2.done"; fi|}
      (Filename.quote stash)
  in
  let events = ref [] in
  let _, _, outcome = supervise ~worker:(sh_worker script) events in
  Alcotest.(check bool) "complete" true (Supervisor.all_complete outcome);
  Alcotest.(check int) "one retry" 1 outcome.Supervisor.retries;
  Alcotest.(check int) "one respawn" 1 outcome.Supervisor.respawns;
  let saw_sigkill =
    List.exists
      (function
        | Supervisor.Attempt_failed { cause = Supervisor.Signaled s; _ } ->
            s = Sys.sigkill
        | _ -> false)
      !events
  in
  Alcotest.(check bool) "failure recorded as SIGKILL" true saw_sigkill

let test_supervisor_stalled_heartbeat =
  scrubbed @@ fun () ->
  let m = tiny () in
  let stash = stash_result m in
  let script =
    Printf.sprintf
      {|if [ "$3" = "1" ]; then echo 1.1 > "$1/shards/shard-$2.hb"; exec sleep 30; else cp %s "$1/shards/shard-$2.done"; fi|}
      (Filename.quote stash)
  in
  let events = ref [] in
  let _, _, outcome =
    supervise ~heartbeat_timeout_s:0.2 ~worker:(sh_worker script) events
  in
  Alcotest.(check bool) "complete" true (Supervisor.all_complete outcome);
  Alcotest.(check int)
    "heartbeat miss counted" 1 outcome.Supervisor.heartbeat_misses;
  let saw_stall =
    List.exists
      (function
        | Supervisor.Attempt_failed { cause = Supervisor.Stalled _; _ } -> true
        | _ -> false)
      !events
  in
  Alcotest.(check bool) "failure recorded as stall" true saw_stall

let test_supervisor_bad_result_retried =
  scrubbed @@ fun () ->
  let m = tiny () in
  let stash = stash_result m in
  let script =
    Printf.sprintf
      {|if [ "$3" = "1" ]; then echo garbage > "$1/shards/shard-$2.done"; else cp %s "$1/shards/shard-$2.done"; fi|}
      (Filename.quote stash)
  in
  let events = ref [] in
  let _, _, outcome = supervise ~worker:(sh_worker script) events in
  Alcotest.(check bool) "complete" true (Supervisor.all_complete outcome);
  let saw_bad_result =
    List.exists
      (function
        | Supervisor.Attempt_failed { cause = Supervisor.Bad_result _; _ } ->
            true
        | _ -> false)
      !events
  in
  Alcotest.(check bool) "exit 0 with garbage is Bad_result" true saw_bad_result

let test_supervisor_in_process_counters =
  scrubbed @@ fun () ->
  Obs.enable ();
  let events = ref [] in
  let dir, m, outcome = supervise ~worker:Supervisor.In_process events in
  Alcotest.(check bool) "complete" true (Supervisor.all_complete outcome);
  let snap = Metrics.snapshot () in
  Alcotest.(check int)
    "shards completed counter" 1
    (Metrics.counter_value snap "campaign.shards_completed");
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " pre-seeded") 0
        (Metrics.counter_value snap name))
    [
      "campaign.shard_retries";
      "campaign.worker_respawns";
      "campaign.heartbeat_misses";
      "campaign.shards_degraded";
    ];
  (* the aggregated report over a real shard validates *)
  let agg = Aggregate.collect ~dir m in
  Alcotest.(check bool) "aggregate complete" true (Aggregate.complete agg);
  match Aggregate.validate (Aggregate.to_json agg) with
  | Ok n -> Alcotest.(check int) "validated rows" (Manifest.run_count m) n
  | Error e -> Alcotest.fail e

let test_supervisor_backoff () =
  let cfg =
    Supervisor.config ~backoff_base_s:0.25 ~backoff_cap_s:1.0
      ~dir:"/nonexistent" ~manifest:(tiny ()) ()
  in
  Alcotest.(check (float 1e-9)) "first retry" 0.25
    (Supervisor.backoff_s cfg ~attempt:2);
  Alcotest.(check (float 1e-9)) "doubles" 0.5
    (Supervisor.backoff_s cfg ~attempt:3);
  Alcotest.(check (float 1e-9)) "capped" 1.0
    (Supervisor.backoff_s cfg ~attempt:6)

(* ---------- aggregation and degradation ---------- *)

let test_aggregate_degraded_footnotes () =
  let m = tiny ~seeds:[ 1; 2 ] ~shards:2 () in
  let dir = fresh_dir () in
  (* shard 0 finished; shard 1 died before its first checkpoint *)
  Shard.save_result ~dir ~shard:0 (fake_rows m ~shard:0);
  let agg = Aggregate.collect ~degraded:[ (1, "SIGKILL") ] ~dir m in
  Alcotest.(check bool) "not complete" false (Aggregate.complete agg);
  Alcotest.(check int) "one missing run" 1 (List.length agg.Aggregate.missing);
  (match Aggregate.validate (Aggregate.to_json agg) with
  | Ok n -> Alcotest.(check int) "rows cover every run" 2 n
  | Error e -> Alcotest.fail e);
  let text = Aggregate.render_text agg in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "missing row footnoted" true (contains "missing [1]");
  Alcotest.(check bool)
    "footnote names the degraded shard" true
    (contains "shard 1 degraded: SIGKILL");
  (* writing re-reads and validates the json from disk *)
  match Aggregate.write ~dir agg with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_aggregate_json_rejects_inconsistency () =
  let m = tiny () in
  let dir = fresh_dir () in
  Shard.save_result ~dir ~shard:0 (fake_rows m ~shard:0);
  let j = Aggregate.to_json (Aggregate.collect ~dir m) in
  match j with
  | Sttc_obs.Json.Obj fields ->
      let broken =
        Sttc_obs.Json.Obj
          (List.map
             (function
               | "completed", Sttc_obs.Json.Int _ ->
                   ("completed", Sttc_obs.Json.Int 99)
               | f -> f)
             fields)
      in
      (match Aggregate.validate broken with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "inconsistent counts accepted")
  | _ -> Alcotest.fail "report is not an object"

(* ---------- metrics snapshots across processes ---------- *)

let test_metrics_snapshot_round_trip_and_merge =
  scrubbed @@ fun () ->
  Obs.enable ();
  Metrics.incr ~by:3 "campaign.worker.runs";
  Metrics.set_gauge "campaign.peak" 7.;
  List.iter (Metrics.observe "campaign.unit_seconds") [ 0.004; 1.7; 250. ];
  let snap = Metrics.snapshot () in
  (match Metrics.of_json (Metrics.to_json snap) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check bool)
        "snapshot json round trip" true
        (Metrics.to_json parsed = Metrics.to_json snap);
      let doubled = Metrics.merge snap parsed in
      Alcotest.(check int)
        "merge sums counters" 6
        (Metrics.counter_value doubled "campaign.worker.runs"))

let () =
  Alcotest.run "sttc_campaign"
    [
      ( "manifest",
        [
          Alcotest.test_case "round trip" `Quick test_manifest_round_trip;
          Alcotest.test_case "defaults and seeds object" `Quick
            test_manifest_defaults_and_seeds_object;
          Alcotest.test_case "rejections" `Quick test_manifest_rejections;
        ] );
      ( "shard",
        [
          Alcotest.test_case "partition" `Quick test_shard_partition;
        ] );
      ( "ckpt",
        [
          Alcotest.test_case "round trip and magic" `Quick
            test_ckpt_round_trip_and_magic;
          QCheck_alcotest.to_alcotest ckpt_truncation_fuzz;
        ] );
      ( "worker",
        [
          Alcotest.test_case "resume convergence" `Quick
            (scrubbed test_worker_resume_convergence);
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "exhausts hard failure" `Quick
            test_supervisor_exhausts_hard_failure;
          Alcotest.test_case "sigkill then recover" `Quick
            test_supervisor_sigkill_then_recover;
          Alcotest.test_case "stalled heartbeat" `Quick
            test_supervisor_stalled_heartbeat;
          Alcotest.test_case "bad result retried" `Quick
            test_supervisor_bad_result_retried;
          Alcotest.test_case "in-process counters" `Quick
            test_supervisor_in_process_counters;
          Alcotest.test_case "backoff schedule" `Quick test_supervisor_backoff;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "degraded footnotes" `Quick
            test_aggregate_degraded_footnotes;
          Alcotest.test_case "rejects inconsistency" `Quick
            test_aggregate_json_rejects_inconsistency;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "snapshot round trip and merge" `Quick
            test_metrics_snapshot_round_trip_and_merge;
        ] );
    ]
