(* Tests for Sttc_core: hybrids, the three selection algorithms, the
   security equations, PPA evaluation, the flow driver and reporting. *)

module Netlist = Sttc_netlist.Netlist
module Generator = Sttc_netlist.Generator
module Gate_fn = Sttc_logic.Gate_fn
module Truth = Sttc_logic.Truth
module Lognum = Sttc_util.Lognum
module Rng = Sttc_util.Rng
module Hybrid = Sttc_core.Hybrid
module Select = Sttc_core.Select
module Algorithms = Sttc_core.Algorithms
module Security = Sttc_core.Security
module Ppa = Sttc_core.Ppa
module Flow = Sttc_core.Flow

(* strict single-attempt protection via the unified Flow.run entry point *)
let protect ?seed ?fraction ?hardening alg nl =
  (Flow.run ?seed ?fraction ?hardening ~policy:Flow.Strict alg nl)
    .Flow.accepted

module Report = Sttc_core.Report

let lib = Sttc_tech.Library.cmos90

let medium_circuit seed =
  Generator.generate ~seed
    {
      Generator.design_name = "med";
      n_pi = 10;
      n_po = 8;
      n_ff = 8;
      n_gates = 120;
      levels = 8;
    }

(* ---------- Hybrid ---------- *)

let test_hybrid_views () =
  let nl = medium_circuit 1 in
  let gates = Netlist.gates nl in
  let picks = [ List.nth gates 3; List.nth gates 30; List.nth gates 60 ] in
  let h = Hybrid.make nl picks in
  Alcotest.(check int) "lut count" 3 (Hybrid.lut_count h);
  (* foundry view: all LUTs missing *)
  List.iter
    (fun id ->
      match Netlist.kind (Hybrid.foundry_view h) id with
      | Netlist.Lut { config = None; _ } -> ()
      | _ -> Alcotest.fail "foundry must not see configs")
    (Hybrid.lut_ids h);
  (* programmed view equivalent to the original *)
  (match Hybrid.verify ~method_:`Sat h with
  | Sttc_sim.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "programmed hybrid must equal original");
  (* bitstream restores the original when installed by hand *)
  let installed = Hybrid.program_with h (Hybrid.bitstream h) in
  match Sttc_sim.Equiv.check_sat nl installed with
  | Sttc_sim.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "bitstream reinstall failed"

let test_hybrid_bitstream_bits () =
  let nl = medium_circuit 2 in
  let two_input =
    List.filter
      (fun id ->
        match Netlist.kind nl id with
        | Netlist.Gate fn -> Gate_fn.arity fn = 2
        | _ -> false)
      (Netlist.gates nl)
  in
  let picks = [ List.hd two_input; List.nth two_input 1 ] in
  let h = Hybrid.make nl picks in
  Alcotest.(check int) "2 luts x 4 rows" 8 (Hybrid.bitstream_bits h)

let test_hybrid_wrong_bitstream_differs () =
  (* Inverting the configuration of an observable gate should change the
     function.  Logic masking can hide a single inversion, so probe a few
     gates and require that at least one inversion is detected. *)
  let nl = medium_circuit 3 in
  let seq_depth = Sttc_netlist.Query.sequential_depth_to_po nl in
  let reaching =
    List.filter (fun id -> seq_depth.(id) < max_int) (Netlist.gates nl)
  in
  let candidates =
    List.filteri (fun i _ -> i < 5) reaching
  in
  let detected =
    List.exists
      (fun pick ->
        let h = Hybrid.make nl [ pick ] in
        let _, correct = List.hd (Hybrid.bitstream h) in
        let wrong = Truth.lnot correct in
        let installed = Hybrid.program_with h [ (pick, wrong) ] in
        match Sttc_sim.Equiv.check_sat nl installed with
        | Sttc_sim.Equiv.Different _ -> true
        | Sttc_sim.Equiv.Equivalent -> false
        | Sttc_sim.Equiv.Inconclusive m -> Alcotest.fail m)
      candidates
  in
  Alcotest.(check bool) "some inversion detected" true detected

let test_hybrid_rejects_non_gate () =
  let nl = medium_circuit 4 in
  let pi = List.hd (Netlist.pis nl) in
  Alcotest.(check bool) "pi rejected" true
    (try
       ignore (Hybrid.make nl [ pi ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.check_raises "empty selection"
    (Invalid_argument "Hybrid.make: empty selection") (fun () ->
      ignore (Hybrid.make nl []))

let test_hybrid_extra_inputs () =
  let nl = medium_circuit 5 in
  let gates = Netlist.gates nl in
  (* find a 2-input gate and a signal outside its downstream cone *)
  let g =
    List.find
      (fun id ->
        match Netlist.kind nl id with
        | Netlist.Gate fn -> Gate_fn.arity fn = 2
        | _ -> false)
      gates
  in
  let pi = List.hd (Netlist.pis nl) in
  let h = Hybrid.make ~extra_inputs:[ (g, [ pi ]) ] nl [ g ] in
  (match Netlist.kind (Hybrid.foundry_view h) g with
  | Netlist.Lut { arity = 3; _ } -> ()
  | _ -> Alcotest.fail "expected widened LUT");
  match Hybrid.verify ~method_:`Sat h with
  | Sttc_sim.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "extra input must not change function"

(* ---------- selection algorithms ---------- *)

let make_ctx ?(seed = 1) nl = Select.prepare ~rng:(Rng.make seed) lib nl

let test_select_prepare () =
  let nl = medium_circuit 6 in
  let ctx = make_ctx nl in
  Alcotest.(check bool) "paths found" true (ctx.Select.paths <> []);
  (* pool contains only CMOS gates *)
  List.iter
    (fun id ->
      match Netlist.kind nl id with
      | Netlist.Gate _ -> ()
      | _ -> Alcotest.fail "pool must contain gates only")
    (Select.pool ctx)

let test_independent_count () =
  let nl = medium_circuit 7 in
  let ctx = make_ctx nl in
  let rng = Rng.make 2 in
  let picks = Algorithms.independent ~rng ~count:5 ctx in
  Alcotest.(check int) "exactly 5" 5 (List.length picks);
  (* distinct *)
  Alcotest.(check int) "distinct" 5
    (List.length (List.sort_uniq Int.compare picks));
  Alcotest.check_raises "bad count"
    (Invalid_argument "Algorithms.independent: count") (fun () ->
      ignore (Algorithms.independent ~rng ~count:0 ctx))

let test_independent_small_circuit_fallback () =
  (* a circuit with fewer path gates than requested still yields 5 *)
  let nl = medium_circuit 8 in
  let ctx = make_ctx nl in
  let rng = Rng.make 3 in
  let picks = Algorithms.independent ~rng ~count:40 ctx in
  Alcotest.(check int) "widened to gate set" 40 (List.length picks)

let test_dependent_connected () =
  let nl = medium_circuit 9 in
  let ctx = make_ctx nl in
  let rng = Rng.make 4 in
  let picks = Algorithms.dependent ~rng ctx in
  Alcotest.(check bool) "non-empty" true (picks <> []);
  (* the replaced gates come from one I/O path: consecutive gates of the
     path are pairwise reachable, so at least one dependent pair exists
     whenever two or more gates were picked *)
  if List.length picks >= 2 then begin
    let h = Hybrid.make nl picks in
    let pairs =
      Sttc_netlist.Query.connected_lut_pairs (Hybrid.foundry_view h)
        (Hybrid.lut_ids h)
    in
    Alcotest.(check bool) "dependency exists" true (pairs <> [])
  end

let test_parametric_respects_timing () =
  let nl = medium_circuit 10 in
  let ctx = make_ctx nl in
  let rng = Rng.make 5 in
  let options =
    { Algorithms.default_parametric with Algorithms.clock_factor = 1.10 }
  in
  let picks = Algorithms.parametric ~rng ~options ctx in
  Alcotest.(check bool) "non-empty" true (picks <> []);
  let h = Hybrid.make nl picks in
  let sta_base = Sttc_analysis.Sta.analyze lib nl in
  let sta_h = Sttc_analysis.Sta.analyze lib (Hybrid.programmed h) in
  let degradation =
    Sttc_analysis.Sta.critical_delay_ps sta_h
    /. Sttc_analysis.Sta.critical_delay_ps sta_base
  in
  Alcotest.(check bool)
    (Printf.sprintf "within constraint (got %.3f)" degradation)
    true
    (degradation <= 1.10 +. 1e-9)

let test_timing_ok_early_out () =
  (* a staged gate outside every endpoint cone cannot move any arrival:
     timing_ok must answer from the session's current state without
     propagating (counter select.timing_early_out), and still agree
     with the legacy full-STA mode *)
  let module B = Netlist.Builder in
  let b = B.create ~design_name:"dangling" () in
  let a = B.add_pi b "a" in
  let c = B.add_pi b "c" in
  let g1 = B.add_gate b "g1" (Gate_fn.And 2) [ a; c ] in
  let g2 = B.add_gate b "g2" (Gate_fn.Or 2) [ a; c ] in
  B.add_output b "o" g1;
  let nl = B.finalize b in
  let clock_ps = 1000. in
  let module Metrics = Sttc_obs.Metrics in
  Sttc_obs.Obs.enable ();
  Metrics.reset ();
  let ctx = Select.prepare ~rng:(Rng.make 1) ~incremental:true lib nl in
  Alcotest.(check bool)
    "g2 is outside every endpoint cone" false
    ctx.Select.feeds_endpoint.(g2);
  let ok_inc = Select.timing_ok ctx ~clock_ps [ g2 ] in
  let early =
    Metrics.counter_value (Metrics.snapshot ()) "select.timing_early_out"
  in
  Sttc_obs.Obs.disable ();
  Alcotest.(check int) "early-out taken" 1 early;
  let ctx_full = Select.prepare ~rng:(Rng.make 1) ~incremental:false lib nl in
  let ok_full = Select.timing_ok ctx_full ~clock_ps [ g2 ] in
  Alcotest.(check bool) "same verdict as full STA" ok_full ok_inc;
  (* a second query with the same set is also a pure cache hit *)
  Alcotest.(check bool) "repeat query stable" ok_inc
    (Select.timing_ok ctx ~clock_ps [ g2 ])

let test_parametric_eligibility () =
  (* parametric only selects fan-in >= 2 gates on the timing paths; the
     USL closure may add others, but every replaced node is a former CMOS
     gate *)
  let nl = medium_circuit 11 in
  let ctx = make_ctx nl in
  let rng = Rng.make 6 in
  let picks = Algorithms.parametric ~rng ctx in
  List.iter
    (fun id ->
      match Netlist.kind nl id with
      | Netlist.Gate _ -> ()
      | _ -> Alcotest.fail "parametric picked a non-gate")
    picks

(* ---------- Security (Eqs. 1-3) ---------- *)

let test_security_formulas_tiny () =
  (* one 2-input missing gate driving a PO directly: D = 1
     Eq.1: alpha * D = 2.45; Eq.2: alpha * P * D = 6.125;
     Eq.3: 2^I * P^M * D with I = 2, M = 1 -> 4 * 2.5 = 10 *)
  let b = Netlist.Builder.create () in
  let x = Netlist.Builder.add_pi b "x" in
  let y = Netlist.Builder.add_pi b "y" in
  let g = Netlist.Builder.add_gate b "g" (Gate_fn.And 2) [ x; y ] in
  Netlist.Builder.add_output b "o" g;
  let nl = Netlist.Builder.finalize b in
  let h = Hybrid.make nl [ g ] in
  let r = Security.evaluate (Hybrid.foundry_view h) ~luts:(Hybrid.lut_ids h) in
  Alcotest.(check int) "M" 1 r.Security.missing_gates;
  Alcotest.(check int) "I" 2 r.Security.accessible_inputs;
  Alcotest.(check int) "bits" 4 r.Security.total_config_bits;
  Alcotest.(check (float 1e-6)) "Eq.1" 2.45 (Lognum.to_float r.Security.n_indep);
  Alcotest.(check (float 1e-6)) "Eq.2" 6.125 (Lognum.to_float r.Security.n_dep);
  Alcotest.(check (float 1e-6)) "Eq.3" 10. (Lognum.to_float r.Security.n_bf)

let test_security_monotone_in_m () =
  let nl = medium_circuit 12 in
  let gates = Array.of_list (Netlist.gates nl) in
  let eval k =
    let picks = Array.to_list (Array.sub gates 0 k) in
    let h = Hybrid.make nl picks in
    Security.evaluate (Hybrid.foundry_view h) ~luts:(Hybrid.lut_ids h)
  in
  let r5 = eval 5 and r20 = eval 20 in
  Alcotest.(check bool) "Eq.2 grows with M" true
    (Lognum.compare r20.Security.n_dep r5.Security.n_dep > 0);
  Alcotest.(check bool) "Eq.3 grows with M" true
    (Lognum.compare r20.Security.n_bf r5.Security.n_bf > 0)

let test_security_dependent_gt_independent () =
  (* for any nontrivial selection, N_dep >>> N_indep *)
  let nl = medium_circuit 13 in
  let ctx = make_ctx nl in
  let picks = Algorithms.dependent ~rng:(Rng.make 1) ctx in
  let h = Hybrid.make nl picks in
  let r = Security.evaluate (Hybrid.foundry_view h) ~luts:(Hybrid.lut_ids h) in
  Alcotest.(check bool) "N_dep > N_indep" true
    (Lognum.compare r.Security.n_dep r.Security.n_indep > 0)

let test_security_years () =
  let y = Security.years_to_break (Lognum.of_log10 220.) in
  (* 1e220 clocks at 1e9/s ~ 3e203 years: far beyond the paper's
     1000-year bar *)
  Alcotest.(check bool) "more than 1000 years" true
    (Lognum.compare y (Lognum.of_float 1000.) > 0)

let test_security_validation () =
  let nl = medium_circuit 14 in
  Alcotest.check_raises "no luts"
    (Invalid_argument "Security.evaluate: no missing gates") (fun () ->
      ignore (Security.evaluate nl ~luts:[]));
  Alcotest.check_raises "not a lut"
    (Invalid_argument "Security.evaluate: node is not a LUT") (fun () ->
      ignore (Security.evaluate nl ~luts:[ List.hd (Netlist.gates nl) ]))

let test_security_constants () =
  (* paper vs computed constants differ but stay in the same ballpark *)
  let nl = medium_circuit 15 in
  let gates = Array.of_list (Netlist.gates nl) in
  let picks = Array.to_list (Array.sub gates 0 8) in
  let h = Hybrid.make nl picks in
  let foundry = Hybrid.foundry_view h in
  let luts = Hybrid.lut_ids h in
  let rp = Security.evaluate ~constants:Security.paper_constants foundry ~luts in
  let rc =
    Security.evaluate ~constants:Security.computed_constants foundry ~luts
  in
  let gap =
    Float.abs (Lognum.log10 rp.Security.n_dep -. Lognum.log10 rc.Security.n_dep)
  in
  Alcotest.(check bool) "within 4 orders of magnitude" true (gap < 4.)

(* ---------- Ppa ---------- *)

let test_ppa_overheads_positive () =
  let nl = medium_circuit 16 in
  let gates = Netlist.gates nl in
  let picks = [ List.nth gates 10; List.nth gates 50 ] in
  let h = Hybrid.make nl picks in
  let o = Ppa.evaluate lib ~base:nl ~hybrid:(Hybrid.programmed h) in
  Alcotest.(check int) "n_stts" 2 o.Ppa.n_stts;
  Alcotest.(check bool) "power overhead > 0" true (o.Ppa.power_pct > 0.);
  Alcotest.(check bool) "area overhead > 0" true (o.Ppa.area_pct > 0.);
  Alcotest.(check bool) "perf overhead >= 0" true (o.Ppa.performance_pct >= 0.);
  Alcotest.(check (float 1e-9)) "identity" 0.
    (Ppa.evaluate lib ~base:nl ~hybrid:nl).Ppa.power_pct

(* ---------- Flow ---------- *)

let test_flow_protect_all_algorithms () =
  let nl = medium_circuit 17 in
  List.iter
    (fun alg ->
      let r = protect ~seed:3 alg nl in
      Alcotest.(check bool)
        (Flow.algorithm_name alg ^ " produced luts")
        true
        (Hybrid.lut_count r.Flow.hybrid > 0);
      Alcotest.(check bool)
        (Flow.algorithm_name alg ^ " sign-off")
        true
        (Flow.sign_off ~method_:(`Random 2048) r))
    Flow.default_algorithms

let test_flow_deterministic () =
  let nl = medium_circuit 18 in
  let r1 = protect ~seed:9 Flow.Dependent nl in
  let r2 = protect ~seed:9 Flow.Dependent nl in
  Alcotest.(check (list int)) "same selection"
    (Hybrid.lut_ids r1.Flow.hybrid)
    (Hybrid.lut_ids r2.Flow.hybrid)

(* Same seed must reproduce the run bit for bit: the secret bitstream
   text and every lint diagnostic, for all three algorithms.  This is
   what makes a checkpointed/resumed experiment trustworthy. *)
let test_flow_seed_identical_artifacts () =
  let nl = medium_circuit 23 in
  List.iter
    (fun alg ->
      let artifacts () =
        let r = protect ~seed:77 alg nl in
        let bitstream =
          Sttc_core.Provision.to_string (Sttc_core.Provision.of_hybrid r.Flow.hybrid)
        in
        let lint_text =
          String.concat "\n"
            (List.map Sttc_lint.Diagnostic.to_text
               (r.Flow.lint @ Flow.lint_security r))
        in
        (bitstream, lint_text)
      in
      let b1, l1 = artifacts () in
      let b2, l2 = artifacts () in
      let name = Flow.algorithm_name alg in
      Alcotest.(check string) (name ^ " bitstream identical") b1 b2;
      Alcotest.(check string) (name ^ " lint identical") l1 l2)
    Flow.default_algorithms

let test_protect_resilient_passthrough () =
  let nl = medium_circuit 24 in
  let r =
    Flow.run ~seed:5 ~policy:(Flow.Resilient Flow.default_resilience)
      Flow.Dependent nl
  in
  Alcotest.(check bool) "not degraded" false r.Flow.degraded;
  Alcotest.(check (list string)) "no rejections" []
    (List.map (fun rj -> rj.Flow.reason) r.Flow.rejections);
  Alcotest.(check string) "kept algorithm" "dependent"
    (Flow.algorithm_name r.Flow.accepted.Flow.algorithm)

let test_protect_resilient_degrades () =
  let nl = medium_circuit 25 in
  (* a clock factor this tight leaves no slack at all, so parametric
     selection cannot meet its own timing budget and the chain must
     fall back *)
  let options =
    { Sttc_core.Algorithms.default_parametric with clock_factor = 1.000001 }
  in
  let r =
    Flow.run ~seed:5
      ~policy:(Flow.Resilient { Flow.max_reseeds = 1 })
      (Flow.Parametric options) nl
  in
  if r.Flow.degraded then begin
    Alcotest.(check bool) "recorded rejections" true (r.Flow.rejections <> []);
    Alcotest.(check string) "degraded to the next chain step" "dependent"
      (Flow.algorithm_name r.Flow.accepted.Flow.algorithm)
  end
  else
    (* the tight budget happened to hold: then there is nothing to
       degrade and the result must be the parametric one *)
    Alcotest.(check string) "kept parametric" "parametric"
      (Flow.algorithm_name r.Flow.accepted.Flow.algorithm)

let test_flow_independent_uses_count () =
  let nl = medium_circuit 19 in
  let r = protect ~seed:4 (Flow.Independent { count = 7 }) nl in
  Alcotest.(check int) "seven luts" 7 (Hybrid.lut_count r.Flow.hybrid)

let test_flow_rejects_gateless () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_pi b "a" in
  Netlist.Builder.add_output b "y" a;
  let nl = Netlist.Builder.finalize b in
  Alcotest.check_raises "no gates"
    (Invalid_argument "Flow.run: netlist has no CMOS gates") (fun () ->
      ignore (protect (Flow.Independent { count = 1 }) nl))

(* ---------- Expand / hardening ---------- *)

let test_expand_extra_inputs () =
  let nl = medium_circuit 21 in
  let gates = Netlist.gates nl in
  let picks = [ List.nth gates 5; List.nth gates 40 ] in
  let extras =
    Sttc_core.Expand.pick_extra_inputs ~rng:(Rng.make 1) ~per_lut:2 nl picks
  in
  List.iter
    (fun (gate, added) ->
      Alcotest.(check bool) "at most 2" true (List.length added <= 2);
      let existing = Array.to_list (Netlist.fanins nl gate) in
      List.iter
        (fun e ->
          Alcotest.(check bool) "not already a fanin" false (List.mem e existing);
          Alcotest.(check bool) "no combinational cycle" false
            (Netlist.is_combinational (Netlist.kind nl e)
            && Sttc_netlist.Query.reaches_combinationally nl gate e))
        added)
    extras;
  (* hybrids built with extras still verify *)
  let h = Hybrid.make ~extra_inputs:extras nl picks in
  match Hybrid.verify ~method_:`Sat h with
  | Sttc_sim.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "extras broke equivalence"

let test_expand_absorptions () =
  let nl = medium_circuit 22 in
  let gates = Netlist.gates nl in
  let picks = List.filteri (fun i _ -> i mod 7 = 0) gates in
  let absorb = Sttc_core.Expand.pick_absorptions nl picks in
  List.iter
    (fun (gate, driver) ->
      Alcotest.(check bool) "gate selected" true (List.mem gate picks);
      Alcotest.(check bool) "driver not selected" false (List.mem driver picks);
      match Netlist.fanouts nl driver with
      | [ single ] -> Alcotest.(check int) "single fanout" gate single
      | _ -> Alcotest.fail "driver must have single fanout")
    absorb

let test_flow_hardening () =
  let nl = medium_circuit 23 in
  let hardening =
    { Flow.extra_inputs_per_lut = 2; absorb_drivers = true }
  in
  let plain = protect ~seed:4 (Flow.Independent { count = 5 }) nl in
  let hard = protect ~seed:4 ~hardening (Flow.Independent { count = 5 }) nl in
  (* hardening must preserve functionality *)
  Alcotest.(check bool) "hardened sign-off" true
    (Flow.sign_off ~method_:(`Random 2048) hard);
  (* ... and strictly enlarge the configuration space *)
  Alcotest.(check bool) "more config bits" true
    (hard.Flow.security.Security.total_config_bits
    > plain.Flow.security.Security.total_config_bits);
  Alcotest.(check bool) "brute-force space grows" true
    (Lognum.compare hard.Flow.security.Security.n_bf
       plain.Flow.security.Security.n_bf
    > 0)

(* ---------- Camouflage baseline ---------- *)

let test_camouflage_basics () =
  let nl = medium_circuit 27 in
  let cells = Sttc_core.Camouflage.eligible nl in
  Alcotest.(check bool) "some eligible" true (cells <> []);
  List.iter
    (fun id ->
      match Netlist.kind nl id with
      | Netlist.Gate fn ->
          Alcotest.(check bool) "2-input candidate" true
            (List.mem fn Sttc_core.Camouflage.candidate_functions)
      | _ -> Alcotest.fail "eligible must be gates")
    cells;
  let camo = Sttc_core.Camouflage.random ~rng:(Rng.make 1) ~count:3 nl in
  Alcotest.(check int) "3 cells" 3 (Sttc_core.Camouflage.cell_count camo);
  (* search space = 3^3 = 27, far below the 2^12 of three full 2-LUTs *)
  Alcotest.(check (float 1e-6)) "3^M" 27.
    (Lognum.to_float (Sttc_core.Camouflage.search_space camo));
  (* the camouflaged design still computes the original function *)
  match Hybrid.verify ~method_:`Sat (Sttc_core.Camouflage.hybrid camo) with
  | Sttc_sim.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "camouflage must preserve function"

let test_camouflage_rejects_ineligible () =
  let nl = medium_circuit 28 in
  let not_eligible =
    List.find
      (fun id ->
        match Netlist.kind nl id with
        | Netlist.Gate fn ->
            not (List.mem fn Sttc_core.Camouflage.candidate_functions)
        | _ -> false)
      (Netlist.gates nl)
  in
  Alcotest.check_raises "ineligible"
    (Invalid_argument "Camouflage.make: gate is not a camouflageable cell")
    (fun () -> ignore (Sttc_core.Camouflage.make nl [ not_eligible ]))

let test_camouflage_sat_candidates () =
  let nl = medium_circuit 29 in
  let camo = Sttc_core.Camouflage.random ~rng:(Rng.make 2) ~count:2 nl in
  let cands = Sttc_core.Camouflage.sat_candidates camo in
  Alcotest.(check int) "one entry per cell" 2 (List.length cands);
  List.iter
    (fun (_, tables) ->
      Alcotest.(check int) "three candidates" 3 (List.length tables);
      (* the true function must be among the candidates *)
      ())
    cands

(* ---------- Provision ---------- *)

let test_provision_roundtrip () =
  let nl = medium_circuit 24 in
  let r = protect ~seed:6 (Flow.Independent { count = 4 }) nl in
  let entries = Sttc_core.Provision.of_hybrid r.Flow.hybrid in
  Alcotest.(check int) "one entry per lut" 4 (List.length entries);
  let text = Sttc_core.Provision.to_string entries in
  let entries2 = Sttc_core.Provision.parse text in
  Alcotest.(check int) "parse count" 4 (List.length entries2);
  let programmed =
    Sttc_core.Provision.apply (Hybrid.foundry_view r.Flow.hybrid) entries2
  in
  match Sttc_sim.Equiv.check_sat nl programmed with
  | Sttc_sim.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "provisioned netlist differs"

let test_provision_errors () =
  let nl = medium_circuit 25 in
  let r = protect ~seed:7 (Flow.Independent { count = 2 }) nl in
  let foundry = Hybrid.foundry_view r.Flow.hybrid in
  (* malformed text *)
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Sttc_core.Provision.parse "not a bitstream line at all x y z");
       false
     with Failure _ -> true);
  (* unknown LUT name *)
  Alcotest.(check bool) "unknown name rejected" true
    (try
       ignore
         (Sttc_core.Provision.apply foundry
            [ { Sttc_core.Provision.lut_name = "ghost";
                config = Truth.of_string "0110" } ]);
       false
     with Invalid_argument _ -> true);
  (* incomplete bitstream leaves LUTs unconfigured *)
  let entries = Sttc_core.Provision.of_hybrid r.Flow.hybrid in
  Alcotest.(check bool) "partial rejected" true
    (try
       ignore (Sttc_core.Provision.apply foundry [ List.hd entries ]);
       false
     with Invalid_argument _ -> true)

let test_provision_cost () =
  let nl = medium_circuit 26 in
  let r = protect ~seed:8 (Flow.Independent { count = 3 }) nl in
  let cost = Sttc_core.Provision.programming_cost r.Flow.hybrid in
  Alcotest.(check int) "cells = bitstream bits"
    (Hybrid.bitstream_bits r.Flow.hybrid)
    cost.Sttc_core.Provision.mtj_cells;
  Alcotest.(check bool) "energy positive" true
    (cost.Sttc_core.Provision.write_energy_nj > 0.);
  Alcotest.(check bool) "time positive" true
    (cost.Sttc_core.Provision.write_time_us > 0.)

(* ---------- Report ---------- *)

let test_report_rendering () =
  let nl = medium_circuit 20 in
  let results =
    List.map
      (fun alg -> (Flow.algorithm_name alg, protect ~seed:5 alg nl))
      Flow.default_algorithms
  in
  let rows = [ Report.complete_row "med" 120 results ] in
  let t1 = Report.table1 rows in
  Alcotest.(check bool) "table1 has circuit" true
    (String.length t1 > 0
    &&
    let re = "med" in
    let rec contains i =
      i + String.length re <= String.length t1
      && (String.sub t1 i (String.length re) = re || contains (i + 1))
    in
    contains 0);
  let t2 = Report.table2 rows in
  Alcotest.(check bool) "table2 nonempty" true (String.length t2 > 0);
  let f3 = Report.fig3 rows in
  Alcotest.(check bool) "fig3 nonempty" true (String.length f3 > 0);
  let f1 = Report.fig1 () in
  Alcotest.(check bool) "fig1 mentions NAND2" true
    (let re = "NAND2" in
     let rec contains i =
       i + String.length re <= String.length f1
       && (String.sub f1 i (String.length re) = re || contains (i + 1))
     in
     contains 0)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay
    && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let test_report_partial_rows () =
  let nl = medium_circuit 20 in
  let results =
    [ ("independent", protect ~seed:5 (Flow.Independent { count = 5 }) nl) ]
  in
  let row =
    {
      Report.circuit = "med";
      size = 120;
      results;
      failures =
        [ ("dependent", "protect: timeout after 1.0s"); ("parametric", "boom") ];
    }
  in
  let t1 = Report.table1 [ row ] in
  Alcotest.(check bool) "footnote present" true (contains t1 "partial results:");
  Alcotest.(check bool) "names the timeout" true
    (contains t1 "! med/dependent: protect: timeout after 1.0s");
  Alcotest.(check bool) "names the crash" true (contains t1 "! med/parametric: boom");
  let t2 = Report.table2 [ row ] in
  Alcotest.(check bool) "table2 footnote" true (contains t2 "partial results:");
  (* complete rows must not grow a footnote *)
  let full = Report.complete_row "med" 120 results in
  Alcotest.(check bool) "no footnote when complete" false
    (contains (Report.table1 [ full ]) "partial results:")

let () =
  Alcotest.run "sttc_core"
    [
      ( "hybrid",
        [
          Alcotest.test_case "views" `Quick test_hybrid_views;
          Alcotest.test_case "bitstream bits" `Quick test_hybrid_bitstream_bits;
          Alcotest.test_case "wrong bitstream differs" `Quick
            test_hybrid_wrong_bitstream_differs;
          Alcotest.test_case "rejects non-gate" `Quick test_hybrid_rejects_non_gate;
          Alcotest.test_case "extra inputs" `Quick test_hybrid_extra_inputs;
        ] );
      ( "selection",
        [
          Alcotest.test_case "prepare" `Quick test_select_prepare;
          Alcotest.test_case "independent count" `Quick test_independent_count;
          Alcotest.test_case "independent fallback" `Quick
            test_independent_small_circuit_fallback;
          Alcotest.test_case "dependent connected" `Quick test_dependent_connected;
          Alcotest.test_case "parametric timing" `Quick
            test_parametric_respects_timing;
          Alcotest.test_case "parametric eligibility" `Quick
            test_parametric_eligibility;
          Alcotest.test_case "timing_ok early-out" `Quick
            test_timing_ok_early_out;
        ] );
      ( "security",
        [
          Alcotest.test_case "formulas on tiny circuit" `Quick
            test_security_formulas_tiny;
          Alcotest.test_case "monotone in M" `Quick test_security_monotone_in_m;
          Alcotest.test_case "dependent > independent" `Quick
            test_security_dependent_gt_independent;
          Alcotest.test_case "years" `Quick test_security_years;
          Alcotest.test_case "validation" `Quick test_security_validation;
          Alcotest.test_case "constants comparison" `Quick test_security_constants;
        ] );
      ("ppa", [ Alcotest.test_case "overheads" `Quick test_ppa_overheads_positive ]);
      ( "expand",
        [
          Alcotest.test_case "extra inputs" `Quick test_expand_extra_inputs;
          Alcotest.test_case "absorptions" `Quick test_expand_absorptions;
          Alcotest.test_case "flow hardening" `Quick test_flow_hardening;
        ] );
      ( "flow",
        [
          Alcotest.test_case "all algorithms" `Quick test_flow_protect_all_algorithms;
          Alcotest.test_case "deterministic" `Quick test_flow_deterministic;
          Alcotest.test_case "seed-identical artifacts" `Quick
            test_flow_seed_identical_artifacts;
          Alcotest.test_case "resilient passthrough" `Quick
            test_protect_resilient_passthrough;
          Alcotest.test_case "resilient degradation" `Quick
            test_protect_resilient_degrades;
          Alcotest.test_case "independent count" `Quick
            test_flow_independent_uses_count;
          Alcotest.test_case "rejects gateless" `Quick test_flow_rejects_gateless;
        ] );
      ( "camouflage",
        [
          Alcotest.test_case "basics" `Quick test_camouflage_basics;
          Alcotest.test_case "rejects ineligible" `Quick
            test_camouflage_rejects_ineligible;
          Alcotest.test_case "sat candidates" `Quick test_camouflage_sat_candidates;
        ] );
      ( "provision",
        [
          Alcotest.test_case "roundtrip" `Quick test_provision_roundtrip;
          Alcotest.test_case "errors" `Quick test_provision_errors;
          Alcotest.test_case "cost" `Quick test_provision_cost;
        ] );
      ( "report",
        [
          Alcotest.test_case "rendering" `Quick test_report_rendering;
          Alcotest.test_case "partial rows" `Quick test_report_partial_rows;
        ] );
    ]
