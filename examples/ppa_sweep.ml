(* Security-vs-overhead frontier: sweep the number of inserted STT LUTs
   (independent selection at increasing budgets) on one benchmark and
   print overheads next to the Eq. (1)-(3) attack costs.

   Run with:  dune exec examples/ppa_sweep.exe [-- s1238]
   (default benchmark: s1196) *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s1196" in
  let nl =
    match Sttc_netlist.Iscas_profiles.find name with
    | Some info -> Sttc_netlist.Iscas_profiles.build info
    | None ->
        Printf.eprintf "unknown benchmark %s; available: %s\n" name
          (String.concat ", " Sttc_netlist.Iscas_profiles.names);
        exit 1
  in
  Printf.printf "%s\n\n" (Sttc_netlist.Netlist.stats nl);
  let counts = [ 1; 2; 5; 10; 20; 40; 80 ] in
  print_string (Sttc_experiments.Runner.sweep nl ~counts);
  print_newline ();
  print_endline
    "Each row doubles-ish the LUT budget: overheads grow roughly linearly";
  print_endline
    "while the dependent/brute-force attack costs (N_dep, N_bf) grow";
  print_endline "exponentially -- the asymmetry the defence rests on."
