(* Protect a full ISCAS'89-profile benchmark with all three selection
   algorithms and compare the resulting security / overhead trade-offs —
   the per-circuit slice of the paper's Table I and Fig. 3.

   Run with:  dune exec examples/protect_benchmark.exe [-- s1196]
   (default benchmark: s953) *)

module Flow = Sttc_core.Flow

(* strict single-attempt protection via the unified Flow.run entry point *)
let protect ?seed ?fraction ?hardening alg nl =
  (Flow.run ?seed ?fraction ?hardening ~policy:Flow.Strict alg nl)
    .Flow.accepted

module Profiles = Sttc_netlist.Iscas_profiles

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s953" in
  let info =
    match Profiles.find name with
    | Some i -> i
    | None ->
        Printf.eprintf "unknown benchmark %s; available: %s\n" name
          (String.concat ", " Profiles.names);
        exit 1
  in
  let nl = Profiles.build info in
  Printf.printf "%s\n\n" (Sttc_netlist.Netlist.stats nl);
  let lib = Sttc_tech.Library.cmos90 in
  let sta = Sttc_analysis.Sta.analyze lib nl in
  Printf.printf "baseline: %.0f ps critical delay, %.1f uW, %.0f um2\n\n"
    (Sttc_analysis.Sta.critical_delay_ps sta)
    (Sttc_analysis.Power.estimate lib nl).Sttc_analysis.Power.total_uw
    (Sttc_analysis.Area.estimate lib nl).Sttc_analysis.Area.total_um2;
  List.iter
    (fun alg ->
      let r = protect ~seed:Sttc_experiments.Runner.master_seed alg nl in
      Printf.printf "--- %s ---\n" (Flow.algorithm_name alg);
      Format.printf "%a@." Sttc_core.Ppa.pp r.Flow.overhead;
      Format.printf "%a@." Sttc_core.Security.pp_report r.Flow.security;
      let years =
        Sttc_core.Security.years_to_break r.Flow.security.Sttc_core.Security.n_dep
      in
      Printf.printf
        "breaking the dependency structure at 1e9 patterns/s would take %s years\n\n"
        (Sttc_util.Lognum.to_string years))
    Flow.default_algorithms;
  (* Emit the artefacts a design team would hand off. *)
  let r = protect ~seed:1 Flow.Dependent nl in
  let hybrid = r.Flow.hybrid in
  let bench_path = Filename.temp_file (name ^ "_hybrid_") ".bench" in
  Sttc_netlist.Bench_io.write_file bench_path
    (Sttc_core.Hybrid.foundry_view hybrid);
  let verilog_path = Filename.temp_file (name ^ "_hybrid_") ".v" in
  Sttc_netlist.Verilog_out.write_file verilog_path
    (Sttc_core.Hybrid.programmed hybrid);
  Printf.printf "foundry-view netlist: %s\nprogrammed Verilog:   %s\n"
    bench_path verilog_path
