(* Attack demonstration: protect one small circuit with each selection
   algorithm and let the implemented reverse-engineering attacks loose on
   the result.  Shows the paper's core security claim empirically: the
   same attacks that dismantle independent selection stall on the
   dependent variants.

   Run with:  dune exec examples/attack_demo.exe *)

module Flow = Sttc_core.Flow

(* strict single-attempt protection via the unified Flow.run entry point *)
let protect ?seed ?fraction ?hardening alg nl =
  (Flow.run ?seed ?fraction ?hardening ~policy:Flow.Strict alg nl)
    .Flow.accepted

module Harness = Sttc_attack.Harness

let () =
  let spec =
    {
      Sttc_netlist.Generator.design_name = "demo96";
      n_pi = 12;
      n_po = 8;
      n_ff = 8;
      n_gates = 96;
      levels = 8;
    }
  in
  let nl = Sttc_netlist.Generator.generate ~seed:2016 spec in
  Printf.printf "target: %s\n\n" (Sttc_netlist.Netlist.stats nl);
  let campaigns =
    List.map
      (fun alg ->
        let r = protect ~seed:7 alg nl in
        Printf.printf "protected with %s: %d LUT slots, %d config bits\n%!"
          (Flow.algorithm_name alg)
          (Sttc_core.Hybrid.lut_count r.Flow.hybrid)
          (Sttc_core.Hybrid.bitstream_bits r.Flow.hybrid);
        let config =
          Harness.Config.(
            default |> with_sat_timeout_s 20. |> with_tt_budget 4000
            |> with_guess_rounds 6)
        in
        Harness.attack ~config
          ~circuit:spec.Sttc_netlist.Generator.design_name
          ~algorithm:(Flow.algorithm_name alg) r.Flow.hybrid)
      Flow.default_algorithms
  in
  print_newline ();
  print_string (Harness.to_table campaigns);
  print_newline ();
  print_endline
    "Reading the table: the combinational SAT attack (scan access assumed)";
  print_endline
    "breaks small circuits regardless of selection, in line with the";
  print_endline
    "de-camouflaging literature the paper cites; the scan-disabled variant";
  print_endline
    "(sat-seq) pays reset-and-replay sequences per query and only refutes";
  print_endline
    "keys up to its unrolling depth; the truth-table and hill-climbing";
  print_endline
    "attacks degrade sharply on dependent/parametric hybrids; and brute";
  print_endline
    "force is already infeasible at a few dozen configuration bits (Eq. 3).";
  print_endline
    "The paper's deployment assumption -- scan locked, so only the";
  print_endline
    "sequential path remains -- is what the Fig. 3 clock counts quantify."
