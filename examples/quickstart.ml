(* Quickstart: build a small sequential circuit with the builder API,
   protect it with parametric-aware selection, program the LUTs back, and
   verify the programmed hybrid is equivalent to the original.

   Run with:  dune exec examples/quickstart.exe *)

module Netlist = Sttc_netlist.Netlist
module Gate_fn = Sttc_logic.Gate_fn
module Flow = Sttc_core.Flow

(* strict single-attempt protection via the unified Flow.run entry point *)
let protect ?seed ?fraction ?hardening alg nl =
  (Flow.run ?seed ?fraction ?hardening ~policy:Flow.Strict alg nl)
    .Flow.accepted

module Hybrid = Sttc_core.Hybrid

(* A 4-bit-ish datapath fragment: two stages of logic around a register. *)
let build_circuit () =
  let b = Netlist.Builder.create ~design_name:"quickstart" () in
  let a0 = Netlist.Builder.add_pi b "a0" in
  let a1 = Netlist.Builder.add_pi b "a1" in
  let b0 = Netlist.Builder.add_pi b "b0" in
  let b1 = Netlist.Builder.add_pi b "b1" in
  let en = Netlist.Builder.add_pi b "en" in
  (* stage 1: a XOR b per bit, gated by enable *)
  let x0 = Netlist.Builder.add_gate b "x0" (Gate_fn.Xor 2) [ a0; b0 ] in
  let x1 = Netlist.Builder.add_gate b "x1" (Gate_fn.Xor 2) [ a1; b1 ] in
  let g0 = Netlist.Builder.add_gate b "g0" (Gate_fn.And 2) [ x0; en ] in
  let g1 = Netlist.Builder.add_gate b "g1" (Gate_fn.And 2) [ x1; en ] in
  (* registers *)
  let r0 = Netlist.Builder.add_dff b "r0" g0 in
  let r1 = Netlist.Builder.add_dff b "r1" g1 in
  (* stage 2: carry-ish logic feeding the outputs and a feedback register *)
  let c = Netlist.Builder.add_gate b "c" (Gate_fn.And 2) [ r0; r1 ] in
  let fb = Netlist.Builder.add_dff_deferred b "fb" in
  let m = Netlist.Builder.add_gate b "m" (Gate_fn.Xor 2) [ c; fb ] in
  Netlist.Builder.set_dff_input b fb m;
  let out0 = Netlist.Builder.add_gate b "out0" (Gate_fn.Or 2) [ r0; m ] in
  let out1 = Netlist.Builder.add_gate b "out1" (Gate_fn.Nand 2) [ r1; m ] in
  Netlist.Builder.add_output b "y0" out0;
  Netlist.Builder.add_output b "y1" out1;
  Netlist.Builder.finalize b

let () =
  let nl = build_circuit () in
  Printf.printf "circuit: %s\n\n" (Netlist.stats nl);

  (* 1. protect: replace selected gates with unconfigured STT LUTs *)
  let result =
    protect ~seed:42
      (Flow.Parametric Sttc_core.Algorithms.default_parametric)
      nl
  in
  let hybrid = result.Flow.hybrid in
  Printf.printf "replaced %d gates with STT LUT slots:\n"
    (Hybrid.lut_count hybrid);
  List.iter
    (fun id ->
      Printf.printf "  %s (fan-in %d)\n"
        (Netlist.name (Hybrid.foundry_view hybrid) id)
        (Array.length (Netlist.fanins (Hybrid.foundry_view hybrid) id)))
    (Hybrid.lut_ids hybrid);

  (* 2. what the foundry sees: missing gates, unknown function *)
  Printf.printf "\nfoundry view (.bench):\n%s\n"
    (Sttc_netlist.Bench_io.to_string (Hybrid.foundry_view hybrid));

  (* 3. the design house programs the secret bitstream after fabrication *)
  Printf.printf "secret bitstream (%d configuration bits):\n"
    (Hybrid.bitstream_bits hybrid);
  List.iter
    (fun (id, config) ->
      Printf.printf "  %s <- %s\n"
        (Netlist.name (Hybrid.foundry_view hybrid) id)
        (Sttc_logic.Truth.to_string config))
    (Hybrid.bitstream hybrid);

  (* 4. sign-off: the programmed hybrid is the original design *)
  (match Hybrid.verify ~method_:`Sat hybrid with
  | Sttc_sim.Equiv.Equivalent ->
      print_endline "\nsign-off: programmed hybrid == original (SAT-proved)"
  | Sttc_sim.Equiv.Different f ->
      Printf.printf "\nsign-off FAILED at %s\n" f.Sttc_sim.Equiv.signal
  | Sttc_sim.Equiv.Inconclusive m -> Printf.printf "\nsign-off inconclusive: %s\n" m);

  (* 5. lint: the hybrid passes both rule packs... *)
  let module D = Sttc_lint.Diagnostic in
  let ds = Flow.lint_security result in
  Printf.printf "\nlint (security pack): %d error(s), clean\n" (D.errors ds);
  assert (D.errors ds = 0);

  (* ...and a corrupted one is caught before anyone attacks (or ships) it.
     Here the "foundry" view accidentally keeps the programmed configs —
     the exact leak SEC006 exists for. *)
  let leaky =
    Sttc_lint.Security_rules.view
      ~foundry:(Hybrid.programmed hybrid)
      ~luts:(Hybrid.lut_ids hybrid) ()
  in
  let caught = Sttc_lint.Security_rules.run leaky in
  Printf.printf "corrupted hybrid (configs left in the foundry view):\n%s"
    (D.render_text ~design:"quickstart-leaky" caught);
  assert (D.errors caught > 0);

  (* 6. the numbers the paper reports *)
  Format.printf "\n%a@." Sttc_core.Security.pp_report result.Flow.security;
  Format.printf "%a@." Sttc_core.Ppa.pp result.Flow.overhead
