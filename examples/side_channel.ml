(* Side-channel demonstration: the STT LUT's data-independent power draw
   (Section II's second security benefit) measured with a DPA-style
   difference-of-means analysis on simulated power traces.

   We hide one heavily-loaded gate inside an STT LUT and compare how much
   the chip's total per-cycle energy still tells an attacker about that
   signal's value.

   Run with:  dune exec examples/side_channel.exe *)

module Netlist = Sttc_netlist.Netlist
module Dpa = Sttc_attack.Dpa

let () =
  let lib = Sttc_tech.Library.cmos90 in
  let spec =
    {
      Sttc_netlist.Generator.design_name = "sc150";
      n_pi = 12;
      n_po = 10;
      n_ff = 8;
      n_gates = 150;
      levels = 8;
    }
  in
  let nl = Sttc_netlist.Generator.generate ~seed:77 spec in
  Printf.printf "circuit: %s\n\n" (Netlist.stats nl);
  (* the most-loaded gates carry the most energy, so they leak the most *)
  let ranked =
    List.sort
      (fun a b ->
        Int.compare (Netlist.fanout_degree nl b) (Netlist.fanout_degree nl a))
      (Netlist.gates nl)
  in
  let table =
    Sttc_util.Table.create
      ~headers:
        [
          ("Target", Sttc_util.Table.Left);
          ("Fan-out", Sttc_util.Table.Right);
          ("DoM/mean CMOS", Sttc_util.Table.Right);
          ("DoM/mean hybrid", Sttc_util.Table.Right);
          ("Reduction", Sttc_util.Table.Right);
        ]
  in
  List.iteri
    (fun i target_id ->
      if i < 5 then begin
        let target = Netlist.name nl target_id in
        let hybrid =
          Sttc_core.Hybrid.programmed (Sttc_core.Hybrid.make nl [ target_id ])
        in
        let orig = Dpa.measure ~cycles:24 ~batches:12 lib nl ~target in
        let hyb = Dpa.measure ~cycles:24 ~batches:12 lib hybrid ~target in
        let reduction =
          Dpa.leakage_reduction ~cycles:24 ~batches:12 lib ~original:nl ~hybrid
            ~target
        in
        Sttc_util.Table.add_row table
          [
            target;
            string_of_int (Netlist.fanout_degree nl target_id);
            Printf.sprintf "%.4f" orig.Dpa.dom_relative;
            Printf.sprintf "%.4f" hyb.Dpa.dom_relative;
            (if reduction = infinity then "inf"
             else Printf.sprintf "%.2fx" reduction);
          ]
      end)
    ranked;
  Sttc_util.Table.print table;
  print_newline ();
  print_endline
    "The hybrid's pre-charge energy is burned every cycle whatever the data,";
  print_endline
    "so hiding a gate inside an STT LUT removes that gate's contribution to";
  print_endline
    "the data-dependent power signature an attacker correlates against.";
  print_endline
    "Residual leakage comes from the CMOS fan-out the signal still drives."
