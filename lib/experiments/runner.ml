module Flow = Sttc_core.Flow
module Report = Sttc_core.Report
module Profiles = Sttc_netlist.Iscas_profiles

let master_seed = 20160605 (* DAC'16 *)

let benchmark_rows ?(quick = false) ?(seed = master_seed)
    ?(progress = fun _ -> ()) () =
  let infos =
    if quick then
      List.filter (fun i -> i.Profiles.n_gates <= 1000) Profiles.all
    else Profiles.all
  in
  List.map
    (fun info ->
      let nl = Profiles.build info in
      let results =
        List.map
          (fun alg ->
            let r = Flow.protect ~seed alg nl in
            (Flow.algorithm_name alg, r))
          Flow.default_algorithms
      in
      progress
        (Printf.sprintf "protected %s (%d gates)" info.Profiles.name
           info.Profiles.n_gates);
      { Report.circuit = info.Profiles.name; size = info.Profiles.n_gates; results })
    infos

let fig1 () = Report.fig1 ()
let table1 rows = Report.table1 rows
let table2 rows = Report.table2 rows
let fig3 rows = Report.fig3 rows

let attack_campaign ?(seed = master_seed) ?(sat_timeout_s = 15.) () =
  let spec =
    {
      Sttc_netlist.Generator.design_name = "atk80";
      n_pi = 10;
      n_po = 8;
      n_ff = 6;
      n_gates = 80;
      levels = 7;
    }
  in
  let nl = Sttc_netlist.Generator.generate ~seed:11 spec in
  let campaigns =
    List.map
      (fun alg ->
        let r = Flow.protect ~seed alg nl in
        Sttc_attack.Harness.run ~sat_timeout_s ~tt_budget:3000 ~guess_rounds:6
          ~circuit:spec.Sttc_netlist.Generator.design_name
          ~algorithm:(Flow.algorithm_name alg) r.Flow.hybrid)
      Flow.default_algorithms
  in
  Sttc_attack.Harness.to_table campaigns

let sidechannel ?(seed = master_seed) () =
  let lib = Sttc_tech.Library.cmos90 in
  let spec =
    {
      Sttc_netlist.Generator.design_name = "dpa120";
      n_pi = 12;
      n_po = 10;
      n_ff = 8;
      n_gates = 120;
      levels = 8;
    }
  in
  let nl = Sttc_netlist.Generator.generate ~seed:21 spec in
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("Algorithm", Sttc_util.Table.Left);
          ("Target signal", Sttc_util.Table.Left);
          ("DoM/mean CMOS", Sttc_util.Table.Right);
          ("DoM/mean hybrid", Sttc_util.Table.Right);
          ("Leakage reduction", Sttc_util.Table.Right);
        ]
  in
  List.iter
    (fun alg ->
      let r = Flow.protect ~seed alg nl in
      let hybrid = Sttc_core.Hybrid.programmed r.Flow.hybrid in
      (* target the first replaced gate's signal: the value the defence
         hides inside an STT LUT *)
      let target =
        Sttc_netlist.Netlist.name hybrid
          (List.hd (Sttc_core.Hybrid.lut_ids r.Flow.hybrid))
      in
      let orig = Sttc_attack.Dpa.measure lib nl ~target in
      let hyb = Sttc_attack.Dpa.measure lib hybrid ~target in
      let reduction =
        Sttc_attack.Dpa.leakage_reduction lib ~original:nl ~hybrid ~target
      in
      Sttc_util.Table.add_row t
        [
          Flow.algorithm_name alg;
          target;
          Printf.sprintf "%.4f" orig.Sttc_attack.Dpa.dom_relative;
          Printf.sprintf "%.4f" hyb.Sttc_attack.Dpa.dom_relative;
          (if reduction = infinity then "inf"
           else Printf.sprintf "%.2fx" reduction);
        ])
    Flow.default_algorithms;
  Sttc_util.Table.render t

let ablation_parametric ?(seed = master_seed) () =
  let nl = Profiles.build_by_name "s1196" in
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("Clock factor", Sttc_util.Table.Right);
          ("#STT LUTs", Sttc_util.Table.Right);
          ("Perf %", Sttc_util.Table.Right);
          ("Power %", Sttc_util.Table.Right);
          ("N_dep", Sttc_util.Table.Right);
        ]
  in
  List.iter
    (fun factor ->
      let options =
        {
          Sttc_core.Algorithms.default_parametric with
          Sttc_core.Algorithms.clock_factor = factor;
        }
      in
      let r = Flow.protect ~seed (Flow.Parametric options) nl in
      Sttc_util.Table.add_row t
        [
          Printf.sprintf "%.2f" factor;
          string_of_int r.Flow.overhead.Sttc_core.Ppa.n_stts;
          Printf.sprintf "%.2f" r.Flow.overhead.Sttc_core.Ppa.performance_pct;
          Printf.sprintf "%.2f" r.Flow.overhead.Sttc_core.Ppa.power_pct;
          Sttc_util.Lognum.to_string r.Flow.security.Sttc_core.Security.n_dep;
        ])
    [ 1.02; 1.05; 1.08; 1.15; 1.30 ];
  Sttc_util.Table.render t

let ablation_hardening ?(seed = master_seed) () =
  let spec =
    {
      Sttc_netlist.Generator.design_name = "hard100";
      n_pi = 10;
      n_po = 8;
      n_ff = 6;
      n_gates = 100;
      levels = 7;
    }
  in
  let nl = Sttc_netlist.Generator.generate ~seed:31 spec in
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("Hardening", Sttc_util.Table.Left);
          ("Config bits", Sttc_util.Table.Right);
          ("I", Sttc_util.Table.Right);
          ("N_bf", Sttc_util.Table.Right);
          ("Hill-climb agreement", Sttc_util.Table.Right);
          ("Power %", Sttc_util.Table.Right);
        ]
  in
  let variants =
    [
      ("plain", Flow.no_hardening);
      ("+2 dummy inputs", { Flow.extra_inputs_per_lut = 2; absorb_drivers = false });
      ("+absorb drivers", { Flow.extra_inputs_per_lut = 0; absorb_drivers = true });
      ("both", { Flow.extra_inputs_per_lut = 2; absorb_drivers = true });
    ]
  in
  List.iter
    (fun (label, hardening) ->
      let r =
        Flow.protect ~seed ~hardening (Flow.Independent { count = 5 }) nl
      in
      let g = Sttc_attack.Guess_attack.run ~rounds:5 r.Flow.hybrid in
      Sttc_util.Table.add_row t
        [
          label;
          string_of_int r.Flow.security.Sttc_core.Security.total_config_bits;
          string_of_int r.Flow.security.Sttc_core.Security.accessible_inputs;
          Sttc_util.Lognum.to_string r.Flow.security.Sttc_core.Security.n_bf;
          Printf.sprintf "%.1f%%" (100. *. g.Sttc_attack.Guess_attack.agreement);
          Printf.sprintf "%.2f" r.Flow.overhead.Sttc_core.Ppa.power_pct;
        ])
    variants;
  Sttc_util.Table.render t

let baselines ?(seed = master_seed) () =
  let buf = Buffer.create 2048 in
  (* ---- camouflaging vs STT LUTs: security ---- *)
  let spec =
    {
      Sttc_netlist.Generator.design_name = "base120";
      n_pi = 10;
      n_po = 8;
      n_ff = 6;
      n_gates = 120;
      levels = 8;
    }
  in
  let nl = Sttc_netlist.Generator.generate ~seed:41 spec in
  let rng = Sttc_util.Rng.make seed in
  let camo = Sttc_core.Camouflage.random ~rng ~count:5 nl in
  let m = Sttc_core.Camouflage.cell_count camo in
  (* STT hybrid with the same gates hidden, but as full LUTs *)
  let stt_hybrid = Sttc_core.Camouflage.hybrid camo in
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("Defence", Sttc_util.Table.Left);
          ("Hidden cells", Sttc_util.Table.Right);
          ("Search space", Sttc_util.Table.Right);
          ("SAT attack", Sttc_util.Table.Left);
          ("Iterations", Sttc_util.Table.Right);
          ("Time (s)", Sttc_util.Table.Right);
        ]
  in
  let describe label ~candidates hybrid space =
    match Sttc_attack.Sat_attack.run ~timeout_s:20. ?candidates hybrid with
    | Sttc_attack.Sat_attack.Broken b ->
        Sttc_util.Table.add_row t
          [
            label;
            string_of_int m;
            Sttc_util.Lognum.to_string space;
            "RECOVERED";
            string_of_int b.iterations;
            Printf.sprintf "%.2f" b.seconds;
          ]
    | Sttc_attack.Sat_attack.Exhausted e ->
        Sttc_util.Table.add_row t
          [
            label;
            string_of_int m;
            Sttc_util.Lognum.to_string space;
            "resisted (" ^ e.reason ^ ")";
            string_of_int e.iterations;
            Printf.sprintf "%.2f" e.seconds;
          ]
  in
  describe "camouflaging [12]"
    ~candidates:(Some (Sttc_core.Camouflage.sat_candidates camo))
    stt_hybrid
    (Sttc_core.Camouflage.search_space camo);
  describe "STT LUTs (this paper)" ~candidates:None stt_hybrid
    (Sttc_util.Lognum.pow (Sttc_util.Lognum.of_int 2)
       (Sttc_core.Hybrid.bitstream_bits stt_hybrid));
  Buffer.add_string buf "Camouflaging vs reconfigurable STT LUTs (same hidden cells):\n";
  Buffer.add_string buf (Sttc_util.Table.render t);
  (* ---- SRAM vs STT LUTs: PPA of the same hybrid ---- *)
  let hybrid_nl = Sttc_core.Hybrid.programmed stt_hybrid in
  let t2 =
    Sttc_util.Table.create
      ~headers:
        [
          ("LUT technology", Sttc_util.Table.Left);
          ("Perf %", Sttc_util.Table.Right);
          ("Power %", Sttc_util.Table.Right);
          ("Area %", Sttc_util.Table.Right);
          ("Volatile", Sttc_util.Table.Left);
          ("Bitstream exposed", Sttc_util.Table.Left);
        ]
  in
  List.iter
    (fun (label, style, volatile, exposed) ->
      let lib =
        Sttc_tech.Library.with_lut_style Sttc_tech.Library.cmos90 style
      in
      let o = Sttc_core.Ppa.evaluate lib ~base:nl ~hybrid:hybrid_nl in
      Sttc_util.Table.add_row t2
        [
          label;
          Printf.sprintf "%.2f" o.Sttc_core.Ppa.performance_pct;
          Printf.sprintf "%.2f" o.Sttc_core.Ppa.power_pct;
          Printf.sprintf "%.2f" o.Sttc_core.Ppa.area_pct;
          volatile;
          exposed;
        ])
    [
      ("STT (non-volatile)", Sttc_tech.Library.Stt, "no", "never leaves the die");
      ( "SRAM [8]",
        Sttc_tech.Library.Sram,
        "yes",
        "readable from external NVM at every power-up" );
    ];
  Buffer.add_string buf
    "\nSRAM-based LUTs [8] vs STT LUTs (same hybrid netlist):\n";
  Buffer.add_string buf (Sttc_util.Table.render t2);
  Buffer.contents buf

let ablation_constants ?(seed = master_seed) () =
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("Circuit", Sttc_util.Table.Left);
          ("N_dep (paper constants)", Sttc_util.Table.Right);
          ("N_dep (computed)", Sttc_util.Table.Right);
          ("log10 gap", Sttc_util.Table.Right);
        ]
  in
  List.iter
    (fun name ->
      let nl = Profiles.build_by_name name in
      let r = Flow.protect ~seed Flow.Dependent nl in
      let foundry = Sttc_core.Hybrid.foundry_view r.Flow.hybrid in
      let luts = Sttc_core.Hybrid.lut_ids r.Flow.hybrid in
      let rp =
        Sttc_core.Security.evaluate
          ~constants:Sttc_core.Security.paper_constants foundry ~luts
      in
      let rc =
        Sttc_core.Security.evaluate
          ~constants:Sttc_core.Security.computed_constants foundry ~luts
      in
      let lp = Sttc_util.Lognum.log10 rp.Sttc_core.Security.n_dep in
      let lc = Sttc_util.Lognum.log10 rc.Sttc_core.Security.n_dep in
      Sttc_util.Table.add_row t
        [
          name;
          Sttc_util.Lognum.to_string rp.Sttc_core.Security.n_dep;
          Sttc_util.Lognum.to_string rc.Sttc_core.Security.n_dep;
          Printf.sprintf "%.1f" (lc -. lp);
        ])
    [ "s641"; "s953"; "s1238" ];
  Sttc_util.Table.render t

let sweep ?(seed = master_seed) nl ~counts =
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("#STT LUTs", Sttc_util.Table.Right);
          ("Perf %", Sttc_util.Table.Right);
          ("Power %", Sttc_util.Table.Right);
          ("Area %", Sttc_util.Table.Right);
          ("N_indep", Sttc_util.Table.Right);
          ("N_dep", Sttc_util.Table.Right);
          ("N_bf", Sttc_util.Table.Right);
        ]
  in
  List.iter
    (fun count ->
      let r = Flow.protect ~seed (Flow.Independent { count }) nl in
      let o = r.Flow.overhead and s = r.Flow.security in
      Sttc_util.Table.add_row t
        [
          string_of_int o.Sttc_core.Ppa.n_stts;
          Printf.sprintf "%.2f" o.Sttc_core.Ppa.performance_pct;
          Printf.sprintf "%.2f" o.Sttc_core.Ppa.power_pct;
          Printf.sprintf "%.2f" o.Sttc_core.Ppa.area_pct;
          Sttc_util.Lognum.to_string s.Sttc_core.Security.n_indep;
          Sttc_util.Lognum.to_string s.Sttc_core.Security.n_dep;
          Sttc_util.Lognum.to_string s.Sttc_core.Security.n_bf;
        ])
    counts;
  Sttc_util.Table.render t
