module Flow = Sttc_core.Flow
module Report = Sttc_core.Report
module Profiles = Sttc_netlist.Iscas_profiles
module Timing = Sttc_util.Timing
module Pool = Sttc_util.Pool
module Backend = Sttc_backend.Backend

let master_seed = 20160605 (* DAC'16 *)

(* Every stage below is deterministic in its seed alone, so protecting a
   benchmark on a worker domain gives the same result as on the main
   one. *)
let strict ~seed ?hardening ?backend alg nl =
  (Flow.run ~seed ?hardening ?backend ~policy:Flow.Strict alg nl).Flow.accepted

(* ---------- progress events ---------- *)

type stage = Build | Protect of string

type exn_info = { benchmark : string; stage : stage; reason : string }

type event =
  | Started of string
  | Restored of string
  | Timed_out of { benchmark : string; stage : stage; budget_s : float }
  | Failed of exn_info
  | Finished of Report.benchmark_row

let stage_label = function Build -> "build" | Protect _ -> "protect"

let stage_target benchmark = function
  | Build -> benchmark
  | Protect alg -> benchmark ^ "/" ^ alg

let string_of_event = function
  | Started b -> b ^ ": starting"
  | Restored b -> b ^ ": restored from checkpoint"
  | Timed_out { benchmark; stage; budget_s } ->
      Printf.sprintf "FAILED %s: %s: timeout after %.1fs"
        (stage_target benchmark stage) (stage_label stage) budget_s
  | Failed { benchmark; stage; reason } ->
      Printf.sprintf "FAILED %s: %s: %s"
        (stage_target benchmark stage) (stage_label stage) reason
  | Finished row ->
      let failed = List.length row.Report.failures in
      let total = failed + List.length row.Report.results in
      Printf.sprintf "protected %s (%d gates)%s" row.Report.circuit
        row.Report.size
        (if failed = 0 then ""
         else Printf.sprintf " — %d of %d algorithms failed" failed total)

(* ---------- configuration ---------- *)

module Config = struct
  type t = {
    quick : bool;
    seed : int;
    only : string list option;
    timeout_s : float option;
    isolate : bool;
    checkpoint : string option;
    jobs : int;
    backend : string;
    on_event : event -> unit;
  }

  let default =
    {
      quick = false;
      seed = master_seed;
      only = None;
      timeout_s = None;
      isolate = false;
      checkpoint = None;
      jobs = 1;
      backend = "stt";
      on_event = ignore;
    }

  let with_quick quick t = { t with quick }
  let with_seed seed t = { t with seed }
  let with_only names t = { t with only = Some names }
  let with_timeout_s s t = { t with timeout_s = Some s }
  let with_isolate isolate t = { t with isolate }
  let with_checkpoint p t = { t with checkpoint = Some p }
  let with_jobs jobs t = { t with jobs }
  let with_backend backend t = { t with backend }
  let with_on_event on_event t = { t with on_event }

  module Json = Sttc_obs.Json

  let to_json t =
    Json.Obj
      ([ ("quick", Json.Bool t.quick); ("seed", Json.Int t.seed) ]
      @ (match t.only with
        | Some names ->
            [ ("only", Json.List (List.map (fun n -> Json.String n) names)) ]
        | None -> [])
      @ (match t.timeout_s with
        | Some s -> [ ("timeout_s", Json.Float s) ]
        | None -> [])
      @ [ ("isolate", Json.Bool t.isolate) ]
      @ (match t.checkpoint with
        | Some p -> [ ("checkpoint", Json.String p) ]
        | None -> [])
      @ [ ("jobs", Json.Int t.jobs) ]
      @
      if t.backend = default.backend then []
      else [ ("backend", Json.String t.backend) ])

  let ( let* ) = Result.bind
  let mem name j = Option.value (Json.member name j) ~default:Json.Null

  let of_json j =
    match j with
    | Json.Obj _ ->
        let bool_field name dflt =
          match mem name j with
          | Json.Null -> Ok dflt
          | Json.Bool b -> Ok b
          | _ -> Error (Printf.sprintf "runner config: %S must be a boolean" name)
        in
        let* quick = bool_field "quick" default.quick in
        let* seed =
          match mem "seed" j with
          | Json.Null -> Ok default.seed
          | Json.Int n -> Ok n
          | _ -> Error "runner config: \"seed\" must be an integer"
        in
        let* only =
          match mem "only" j with
          | Json.Null -> Ok None
          | Json.List items ->
              let rec go acc = function
                | [] -> Ok (Some (List.rev acc))
                | Json.String s :: rest -> go (s :: acc) rest
                | _ -> Error "runner config: \"only\" must list strings"
              in
              go [] items
          | _ -> Error "runner config: \"only\" must be a list"
        in
        let* timeout_s =
          match mem "timeout_s" j with
          | Json.Null -> Ok None
          | Json.Int n -> Ok (Some (float_of_int n))
          | Json.Float f -> Ok (Some f)
          | _ -> Error "runner config: \"timeout_s\" must be a number"
        in
        let* isolate = bool_field "isolate" default.isolate in
        let* checkpoint =
          match mem "checkpoint" j with
          | Json.Null -> Ok None
          | Json.String s -> Ok (Some s)
          | _ -> Error "runner config: \"checkpoint\" must be a string"
        in
        let* jobs =
          match mem "jobs" j with
          | Json.Null -> Ok default.jobs
          | Json.Int n -> Ok n
          | _ -> Error "runner config: \"jobs\" must be an integer"
        in
        let* backend =
          match mem "backend" j with
          | Json.Null -> Ok default.backend
          | Json.String s -> (
              match Backend.find s with
              | Some _ -> Ok s
              | None -> Error ("runner config: unknown backend " ^ s))
          | _ -> Error "runner config: \"backend\" must be a string"
        in
        Ok
          {
            quick;
            seed;
            only;
            timeout_s;
            isolate;
            checkpoint;
            jobs;
            backend;
            on_event = ignore;
          }
    | _ -> Error "runner config: not a JSON object"
end

(* ---------- crash-tolerant benchmark driver ---------- *)

(* The checkpoint is a whole-state snapshot rewritten atomically after
   every completed benchmark: a kill at any point leaves either the
   previous or the new snapshot, never a torn file.  The payload sits
   behind {!Sttc_util.Ckpt}'s format-version header, validated before
   any unmarshalling: a checkpoint from an older build (or plain
   garbage at the path) is rejected cleanly and the run recomputes from
   scratch instead of feeding [Marshal] undefined bytes.  A stale-seed
   file likewise degrades to an empty checkpoint. *)
let checkpoint_magic = "benchmark-rows-v3"

let load_checkpoint path seed backend =
  match Sttc_util.Ckpt.load path ~magic:checkpoint_magic with
  | Ok
      ((ckpt_seed, ckpt_backend, rows) :
        int * string * (string * Report.benchmark_row) list) ->
      if ckpt_seed = seed && ckpt_backend = backend then rows else []
  | Error `Missing -> []
  | Error (`Rejected _) ->
      Sttc_obs.Metrics.incr "runner.checkpoint_rejected";
      []

let save_checkpoint path seed backend rows =
  Sttc_util.Ckpt.save path ~magic:checkpoint_magic (seed, backend, rows);
  Sttc_obs.Metrics.incr "runner.checkpoint_saves";
  Sttc_obs.Span.instant "runner.checkpoint_save" ~cat:"experiments"
    ~attrs:[ ("rows", string_of_int (List.length rows)) ]

let exn_reason = function
  | Invalid_argument m | Failure m -> m
  | e -> Printexc.to_string e

(* A guarded stage either yields a value, overruns its budget, or (when
   isolating) crashes with a captured reason.  The serial guard enforces
   the budget preemptively with the setitimer-based [Timing.with_timeout];
   the pool guard cannot (signals are per-process), so it reports an
   overrun when the stage returns, and honours the pool's cooperative
   deadline if the stage polls it. *)
let serial_guard ~timeout_s ~isolate f =
  match timeout_s with
  | None -> (
      match f () with
      | v -> `Ok v
      | exception e when isolate -> `Crash (exn_reason e))
  | Some budget -> (
      match Timing.with_timeout ~seconds:budget f with
      | Ok v -> `Ok v
      | Error `Timeout -> `Timeout budget
      | exception e when isolate -> `Crash (exn_reason e))

(* one guard value is used at both the build and the protect result
   types, so it needs an explicitly polymorphic field *)
type guard = {
  guard :
    'a.
    (unit -> 'a) -> [ `Ok of 'a | `Timeout of float | `Crash of string ];
}

let pool_guard ~timeout_s ~isolate f =
  match timeout_s with
  | None -> (
      match f () with
      | v -> `Ok v
      | exception e when isolate -> `Crash (exn_reason e))
  | Some budget -> (
      let t0 = Pool.now_s () in
      match f () with
      | v -> if Pool.now_s () -. t0 > budget then `Timeout budget else `Ok v
      | exception Pool.Deadline_exceeded -> `Timeout budget
      | exception e when isolate -> `Crash (exn_reason e))

let attempt_reason label = function
  | `Timeout budget -> Printf.sprintf "%s: timeout after %.1fs" label budget
  | `Crash m -> label ^ ": " ^ m

let emit_attempt emit ~benchmark ~stage = function
  | `Timeout budget_s -> emit (Timed_out { benchmark; stage; budget_s })
  | `Crash reason -> emit (Failed { benchmark; stage; reason })

let build_failed_row info reason =
  {
    Report.circuit = info.Profiles.name;
    size = info.Profiles.n_gates;
    results = [];
    failures =
      List.map
        (fun alg -> (Flow.algorithm_name alg, reason))
        Flow.default_algorithms;
  }

let assemble_row info outcomes =
  let results =
    List.filter_map (function Ok p -> Some p | Error _ -> None) outcomes
  in
  let failures =
    List.filter_map (function Error p -> Some p | Ok _ -> None) outcomes
  in
  { Report.circuit = info.Profiles.name; size = info.Profiles.n_gates;
    results; failures }

let protect_outcome ~guard ~emit ~seed ~backend ~name nl alg =
  let alg_name = Flow.algorithm_name alg in
  let t0 = Pool.now_s () in
  let outcome =
    Sttc_obs.Span.with_ "runner.protect" ~cat:"experiments"
      ~attrs:[ ("benchmark", name); ("algorithm", alg_name) ]
      (fun () -> guard.guard (fun () -> strict ~seed ~backend alg nl))
  in
  Sttc_obs.Metrics.observe "runner.protect_seconds" (Pool.now_s () -. t0);
  match outcome with
  | `Ok r -> Ok (alg_name, r)
  | (`Timeout _ | `Crash _) as a ->
      emit_attempt emit ~benchmark:name ~stage:(Protect alg_name) a;
      Error (alg_name, attempt_reason "protect" a)

let guarded_build ~guard info =
  let name = info.Profiles.name in
  let t0 = Pool.now_s () in
  let b =
    Sttc_obs.Span.with_ "runner.build" ~cat:"experiments"
      ~attrs:[ ("benchmark", name) ]
      (fun () -> guard.guard (fun () -> Profiles.build info))
  in
  Sttc_obs.Metrics.observe "runner.build_seconds" (Pool.now_s () -. t0);
  b

let run_benchmark_serial ~guard ~emit ~seed ~backend info =
  let name = info.Profiles.name in
  emit (Started name);
  Sttc_obs.Metrics.incr "runner.benchmarks";
  Sttc_obs.Span.with_ "runner.row" ~cat:"experiments"
    ~attrs:[ ("benchmark", name) ]
  @@ fun () ->
  let t0 = Pool.now_s () in
  let finish row =
    Sttc_obs.Metrics.observe "runner.row_seconds" (Pool.now_s () -. t0);
    row
  in
  match guarded_build ~guard info with
  | (`Timeout _ | `Crash _) as a ->
      emit_attempt emit ~benchmark:name ~stage:Build a;
      finish (build_failed_row info (attempt_reason "build" a))
  | `Ok nl ->
      let outcomes =
        List.map (protect_outcome ~guard ~emit ~seed ~backend ~name nl)
          Flow.default_algorithms
      in
      let row = assemble_row info outcomes in
      emit (Finished row);
      Sttc_obs.Metrics.incr "runner.rows";
      finish row

(* Serial: benchmarks run one after the other, incrementally
   checkpointed — byte-for-byte the historical behaviour. *)
let rows_serial ~cfg ~backend infos completed0 =
  let { Config.seed; timeout_s; isolate; checkpoint; on_event = emit; _ } =
    cfg
  in
  let guard = { guard = (fun f -> serial_guard ~timeout_s ~isolate f) } in
  let completed = ref completed0 in
  List.map
    (fun info ->
      let name = info.Profiles.name in
      match List.assoc_opt name !completed with
      | Some row ->
          emit (Restored name);
          row
      | None ->
          let row = run_benchmark_serial ~guard ~emit ~seed ~backend info in
          (* rows that failed outright are not checkpointed, so a rerun
             with a longer budget recomputes them *)
          if row.Report.failures = [] then begin
            completed := !completed @ [ (name, row) ];
            Option.iter
              (fun p ->
                save_checkpoint p seed cfg.Config.backend !completed)
              checkpoint
          end;
          row)
    infos

(* Parallel: a build task per benchmark, then a protect task per
   benchmark × algorithm.  Each task depends only on [seed], so results
   merge in submission order into exactly the serial rows; the
   checkpoint is written during the merge, in the same benchmark order
   a serial run would use. *)
let rows_parallel ~cfg ~backend infos completed0 =
  let { Config.seed; timeout_s; isolate; checkpoint; jobs; on_event; _ } =
    cfg
  in
  let emit =
    let m = Mutex.create () in
    fun ev ->
      Mutex.lock m;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> on_event ev)
  in
  let guard = { guard = (fun f -> pool_guard ~timeout_s ~isolate f) } in
  let todo =
    List.filter
      (fun i -> not (List.mem_assoc i.Profiles.name completed0))
      infos
  in
  let computed =
    Pool.with_pool ~jobs (fun pool ->
        let builds =
          Pool.map_exn ?deadline_s:timeout_s pool
            (fun info ->
              let name = info.Profiles.name in
              emit (Started name);
              Sttc_obs.Metrics.incr "runner.benchmarks";
              match guarded_build ~guard info with
              | `Ok nl ->
                  (* force the lazy topology caches while the netlist is
                     still private to this task: the protect tasks read
                     it from several domains concurrently *)
                  Sttc_netlist.Netlist.warm nl;
                  (info, `Ok nl)
              | (`Timeout _ | `Crash _) as a ->
                  emit_attempt emit ~benchmark:name ~stage:Build a;
                  (info, a))
            todo
        in
        let protect_tasks =
          List.concat_map
            (fun (info, b) ->
              match b with
              | `Ok nl ->
                  List.map (fun alg -> (info, nl, alg)) Flow.default_algorithms
              | `Timeout _ | `Crash _ -> [])
            builds
        in
        let protects =
          Pool.map_exn ?deadline_s:timeout_s pool
            (fun (info, nl, alg) ->
              let name = info.Profiles.name in
              (name, protect_outcome ~guard ~emit ~seed ~backend ~name nl alg))
            protect_tasks
        in
        List.map
          (fun (info, b) ->
            let name = info.Profiles.name in
            match b with
            | (`Timeout _ | `Crash _) as a ->
                (name, build_failed_row info (attempt_reason "build" a))
            | `Ok _ ->
                let outcomes =
                  List.filter_map
                    (fun (n, o) -> if n = name then Some o else None)
                    protects
                in
                let row = assemble_row info outcomes in
                emit (Finished row);
                Sttc_obs.Metrics.incr "runner.rows";
                (name, row))
          builds)
  in
  let completed = ref completed0 in
  List.map
    (fun info ->
      let name = info.Profiles.name in
      match List.assoc_opt name !completed with
      | Some row ->
          emit (Restored name);
          row
      | None ->
          let row = List.assoc name computed in
          if row.Report.failures = [] then begin
            completed := !completed @ [ (name, row) ];
            Option.iter
              (fun p ->
                save_checkpoint p seed cfg.Config.backend !completed)
              checkpoint
          end;
          row)
    infos

let rows (cfg : Config.t) =
  if cfg.Config.jobs < 1 then invalid_arg "Runner.rows: jobs must be >= 1";
  let backend = Backend.find_exn cfg.Config.backend in
  let infos =
    match cfg.Config.only with
    | Some names ->
        List.iter (fun n -> ignore (Profiles.find_exn n)) names;
        List.filter (fun i -> List.mem i.Profiles.name names) Profiles.all
    | None ->
        if cfg.Config.quick then
          List.filter (fun i -> i.Profiles.n_gates <= 1000) Profiles.all
        else Profiles.all
  in
  let completed =
    match cfg.Config.checkpoint with
    | Some p -> load_checkpoint p cfg.Config.seed cfg.Config.backend
    | None -> []
  in
  if completed <> [] then begin
    Sttc_obs.Metrics.incr "runner.checkpoint_restores";
    Sttc_obs.Span.instant "runner.checkpoint_restore" ~cat:"experiments"
      ~attrs:[ ("rows", string_of_int (List.length completed)) ]
  end;
  (* Work left after checkpoint restore, in gate-level units: protect +
     re-simulate cost scales with circuit size times the algorithm
     count.  Small bags (the quick Table I set is ~9k units) lose more
     to domain spawning than they gain, so they run serially even when
     the caller asked for workers. *)
  let pending =
    List.filter
      (fun i -> not (List.mem_assoc i.Profiles.name completed))
      infos
  in
  let work =
    float_of_int
      (List.fold_left (fun acc i -> acc + i.Profiles.n_gates) 0 pending
      * List.length Flow.default_algorithms)
  in
  if
    Pool.worthwhile ~min_work:30_000. ~jobs:cfg.Config.jobs
      ~tasks:(List.length pending) ~work ()
  then rows_parallel ~cfg ~backend infos completed
  else rows_serial ~cfg ~backend infos completed

(* ---------- shard-scoped entry points (campaign engine) ---------- *)

let build_circuit ?seed name =
  match Profiles.find name with
  | Some info -> Profiles.build ?seed info
  | None -> (
      match List.assoc_opt name Sttc_netlist.Iscas_data.all with
      | Some build -> build ()
      | None -> invalid_arg ("unknown benchmark " ^ name))

let run_unit ?timeout_s ?fraction ?hardening ?backend ~seed ~benchmark alg =
  Sttc_obs.Span.with_ "runner.unit" ~cat:"experiments"
    ~attrs:
      [ ("benchmark", benchmark); ("algorithm", Flow.algorithm_name alg) ]
  @@ fun () ->
  let t0 = Pool.now_s () in
  let outcome =
    serial_guard ~timeout_s ~isolate:true (fun () ->
        let nl = build_circuit benchmark in
        (Flow.run ~seed ?fraction ?hardening ?backend ~policy:Flow.Strict alg
           nl)
          .Flow.accepted)
  in
  Sttc_obs.Metrics.observe "runner.unit_seconds" (Pool.now_s () -. t0);
  match outcome with
  | `Ok r -> Ok r
  | (`Timeout _ | `Crash _) as a -> Error (attempt_reason "run" a)

let fig1 () = Report.fig1 ()
let table1 rows = Report.table1 rows
let table2 rows = Report.table2 rows
let fig3 rows = Report.fig3 rows

let attack_campaign ?(seed = master_seed) ?(sat_timeout_s = 15.) ?(jobs = 1)
    ?(backend = Backend.stt) () =
  let spec =
    {
      Sttc_netlist.Generator.design_name = "atk80";
      n_pi = 10;
      n_po = 8;
      n_ff = 6;
      n_gates = 80;
      levels = 7;
    }
  in
  let nl = Sttc_netlist.Generator.generate ~seed:11 spec in
  let campaign alg =
    Sttc_obs.Span.with_ "runner.campaign" ~cat:"experiments"
      ~attrs:[ ("algorithm", Flow.algorithm_name alg) ]
    @@ fun () ->
    let r = strict ~seed ~backend alg nl in
    let config =
      Sttc_attack.Harness.Config.(
        default |> with_sat_timeout_s sat_timeout_s |> with_tt_budget 3000
        |> with_guess_rounds 6)
    in
    Sttc_attack.Harness.attack ~backend ~config
      ~circuit:spec.Sttc_netlist.Generator.design_name
      ~algorithm:(Flow.algorithm_name alg) r.Flow.hybrid
  in
  let campaigns =
    if jobs <= 1 then List.map campaign Flow.default_algorithms
    else begin
      Sttc_netlist.Netlist.warm nl;
      (* one campaign per algorithm; each harness runs serially inside
         its task and enforces budgets cooperatively off the main
         domain *)
      Pool.with_pool ~jobs (fun pool ->
          Pool.map_exn pool campaign Flow.default_algorithms)
    end
  in
  Sttc_attack.Harness.to_table campaigns

let sidechannel ?(seed = master_seed) () =
  let lib = Sttc_tech.Library.cmos90 in
  let spec =
    {
      Sttc_netlist.Generator.design_name = "dpa120";
      n_pi = 12;
      n_po = 10;
      n_ff = 8;
      n_gates = 120;
      levels = 8;
    }
  in
  let nl = Sttc_netlist.Generator.generate ~seed:21 spec in
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("Algorithm", Sttc_util.Table.Left);
          ("Target signal", Sttc_util.Table.Left);
          ("DoM/mean CMOS", Sttc_util.Table.Right);
          ("DoM/mean hybrid", Sttc_util.Table.Right);
          ("Leakage reduction", Sttc_util.Table.Right);
        ]
  in
  List.iter
    (fun alg ->
      let r = strict ~seed alg nl in
      let hybrid = Sttc_core.Hybrid.programmed r.Flow.hybrid in
      (* target the first replaced gate's signal: the value the defence
         hides inside an STT LUT *)
      let target =
        Sttc_netlist.Netlist.name hybrid
          (List.hd (Sttc_core.Hybrid.lut_ids r.Flow.hybrid))
      in
      let orig = Sttc_attack.Dpa.measure lib nl ~target in
      let hyb = Sttc_attack.Dpa.measure lib hybrid ~target in
      let reduction =
        Sttc_attack.Dpa.leakage_reduction lib ~original:nl ~hybrid ~target
      in
      Sttc_util.Table.add_row t
        [
          Flow.algorithm_name alg;
          target;
          Printf.sprintf "%.4f" orig.Sttc_attack.Dpa.dom_relative;
          Printf.sprintf "%.4f" hyb.Sttc_attack.Dpa.dom_relative;
          (if reduction = infinity then "inf"
           else Printf.sprintf "%.2fx" reduction);
        ])
    Flow.default_algorithms;
  Sttc_util.Table.render t

let ablation_parametric ?(seed = master_seed) () =
  let nl = Profiles.build_by_name "s1196" in
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("Clock factor", Sttc_util.Table.Right);
          ("#STT LUTs", Sttc_util.Table.Right);
          ("Perf %", Sttc_util.Table.Right);
          ("Power %", Sttc_util.Table.Right);
          ("N_dep", Sttc_util.Table.Right);
        ]
  in
  List.iter
    (fun factor ->
      let options =
        {
          Sttc_core.Algorithms.default_parametric with
          Sttc_core.Algorithms.clock_factor = factor;
        }
      in
      let r = strict ~seed (Flow.Parametric options) nl in
      Sttc_util.Table.add_row t
        [
          Printf.sprintf "%.2f" factor;
          string_of_int r.Flow.overhead.Sttc_core.Ppa.n_stts;
          Printf.sprintf "%.2f" r.Flow.overhead.Sttc_core.Ppa.performance_pct;
          Printf.sprintf "%.2f" r.Flow.overhead.Sttc_core.Ppa.power_pct;
          Sttc_util.Lognum.to_string r.Flow.security.Sttc_core.Security.n_dep;
        ])
    [ 1.02; 1.05; 1.08; 1.15; 1.30 ];
  Sttc_util.Table.render t

let ablation_hardening ?(seed = master_seed) () =
  let spec =
    {
      Sttc_netlist.Generator.design_name = "hard100";
      n_pi = 10;
      n_po = 8;
      n_ff = 6;
      n_gates = 100;
      levels = 7;
    }
  in
  let nl = Sttc_netlist.Generator.generate ~seed:31 spec in
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("Hardening", Sttc_util.Table.Left);
          ("Config bits", Sttc_util.Table.Right);
          ("I", Sttc_util.Table.Right);
          ("N_bf", Sttc_util.Table.Right);
          ("Hill-climb agreement", Sttc_util.Table.Right);
          ("Power %", Sttc_util.Table.Right);
        ]
  in
  let variants =
    [
      ("plain", Flow.no_hardening);
      ("+2 dummy inputs", { Flow.extra_inputs_per_lut = 2; absorb_drivers = false });
      ("+absorb drivers", { Flow.extra_inputs_per_lut = 0; absorb_drivers = true });
      ("both", { Flow.extra_inputs_per_lut = 2; absorb_drivers = true });
    ]
  in
  List.iter
    (fun (label, hardening) ->
      let r = strict ~seed ~hardening (Flow.Independent { count = 5 }) nl in
      let g = Sttc_attack.Guess_attack.run ~rounds:5 r.Flow.hybrid in
      Sttc_util.Table.add_row t
        [
          label;
          string_of_int r.Flow.security.Sttc_core.Security.total_config_bits;
          string_of_int r.Flow.security.Sttc_core.Security.accessible_inputs;
          Sttc_util.Lognum.to_string r.Flow.security.Sttc_core.Security.n_bf;
          Printf.sprintf "%.1f%%" (100. *. g.Sttc_attack.Guess_attack.agreement);
          Printf.sprintf "%.2f" r.Flow.overhead.Sttc_core.Ppa.power_pct;
        ])
    variants;
  Sttc_util.Table.render t

let baselines ?(seed = master_seed) () =
  let buf = Buffer.create 2048 in
  (* ---- camouflaging vs STT LUTs: security ---- *)
  let spec =
    {
      Sttc_netlist.Generator.design_name = "base120";
      n_pi = 10;
      n_po = 8;
      n_ff = 6;
      n_gates = 120;
      levels = 8;
    }
  in
  let nl = Sttc_netlist.Generator.generate ~seed:41 spec in
  let rng = Sttc_util.Rng.make seed in
  let camo = Sttc_core.Camouflage.random ~rng ~count:5 nl in
  let m = Sttc_core.Camouflage.cell_count camo in
  (* STT hybrid with the same gates hidden, but as full LUTs *)
  let stt_hybrid = Sttc_core.Camouflage.hybrid camo in
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("Defence", Sttc_util.Table.Left);
          ("Hidden cells", Sttc_util.Table.Right);
          ("Search space", Sttc_util.Table.Right);
          ("SAT attack", Sttc_util.Table.Left);
          ("Iterations", Sttc_util.Table.Right);
          ("Time (s)", Sttc_util.Table.Right);
        ]
  in
  let describe label ~candidates hybrid space =
    match Sttc_attack.Sat_attack.run ~timeout_s:20. ?candidates hybrid with
    | Sttc_attack.Sat_attack.Broken b ->
        Sttc_util.Table.add_row t
          [
            label;
            string_of_int m;
            Sttc_util.Lognum.to_string space;
            "RECOVERED";
            string_of_int b.iterations;
            Printf.sprintf "%.2f" b.seconds;
          ]
    | Sttc_attack.Sat_attack.Exhausted e ->
        Sttc_util.Table.add_row t
          [
            label;
            string_of_int m;
            Sttc_util.Lognum.to_string space;
            "resisted (" ^ e.reason ^ ")";
            string_of_int e.iterations;
            Printf.sprintf "%.2f" e.seconds;
          ]
  in
  describe "camouflaging [12]"
    ~candidates:(Some (Sttc_core.Camouflage.sat_candidates camo))
    stt_hybrid
    (Sttc_core.Camouflage.search_space camo);
  describe "STT LUTs (this paper)" ~candidates:None stt_hybrid
    (Sttc_util.Lognum.pow (Sttc_util.Lognum.of_int 2)
       (Sttc_core.Hybrid.bitstream_bits stt_hybrid));
  Buffer.add_string buf "Camouflaging vs reconfigurable STT LUTs (same hidden cells):\n";
  Buffer.add_string buf (Sttc_util.Table.render t);
  (* ---- SRAM vs STT LUTs: PPA of the same hybrid ---- *)
  let hybrid_nl = Sttc_core.Hybrid.programmed stt_hybrid in
  let t2 =
    Sttc_util.Table.create
      ~headers:
        [
          ("LUT technology", Sttc_util.Table.Left);
          ("Perf %", Sttc_util.Table.Right);
          ("Power %", Sttc_util.Table.Right);
          ("Area %", Sttc_util.Table.Right);
          ("Volatile", Sttc_util.Table.Left);
          ("Bitstream exposed", Sttc_util.Table.Left);
        ]
  in
  List.iter
    (fun (label, style, volatile, exposed) ->
      let lib =
        Sttc_tech.Library.with_lut_style Sttc_tech.Library.cmos90 style
      in
      let o = Sttc_core.Ppa.evaluate lib ~base:nl ~hybrid:hybrid_nl in
      Sttc_util.Table.add_row t2
        [
          label;
          Printf.sprintf "%.2f" o.Sttc_core.Ppa.performance_pct;
          Printf.sprintf "%.2f" o.Sttc_core.Ppa.power_pct;
          Printf.sprintf "%.2f" o.Sttc_core.Ppa.area_pct;
          volatile;
          exposed;
        ])
    [
      ("STT (non-volatile)", Sttc_tech.Library.Stt, "no", "never leaves the die");
      ( "SRAM [8]",
        Sttc_tech.Library.Sram,
        "yes",
        "readable from external NVM at every power-up" );
    ];
  Buffer.add_string buf
    "\nSRAM-based LUTs [8] vs STT LUTs (same hybrid netlist):\n";
  Buffer.add_string buf (Sttc_util.Table.render t2);
  Buffer.contents buf

let ablation_constants ?(seed = master_seed) () =
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("Circuit", Sttc_util.Table.Left);
          ("N_dep (paper constants)", Sttc_util.Table.Right);
          ("N_dep (computed)", Sttc_util.Table.Right);
          ("log10 gap", Sttc_util.Table.Right);
        ]
  in
  List.iter
    (fun name ->
      let nl = Profiles.build_by_name name in
      let r = strict ~seed Flow.Dependent nl in
      let foundry = Sttc_core.Hybrid.foundry_view r.Flow.hybrid in
      let luts = Sttc_core.Hybrid.lut_ids r.Flow.hybrid in
      let rp =
        Sttc_core.Security.evaluate
          ~constants:Sttc_core.Security.paper_constants foundry ~luts
      in
      let rc =
        Sttc_core.Security.evaluate
          ~constants:Sttc_core.Security.computed_constants foundry ~luts
      in
      let lp = Sttc_util.Lognum.log10 rp.Sttc_core.Security.n_dep in
      let lc = Sttc_util.Lognum.log10 rc.Sttc_core.Security.n_dep in
      Sttc_util.Table.add_row t
        [
          name;
          Sttc_util.Lognum.to_string rp.Sttc_core.Security.n_dep;
          Sttc_util.Lognum.to_string rc.Sttc_core.Security.n_dep;
          Printf.sprintf "%.1f" (lc -. lp);
        ])
    [ "s641"; "s953"; "s1238" ];
  Sttc_util.Table.render t

(* ---------- fault-injection sweep (beyond paper) ---------- *)

module Provision = Sttc_core.Provision
module Mtj = Sttc_fault.Mtj

let outcome_label = function
  | Provision.Programmed -> "programmed"
  | Provision.Degraded { corrected_bits; spared_bits } ->
      Printf.sprintf "degraded (%dc/%ds)" corrected_bits spared_bits
  | Provision.Failed cause ->
      "FAILED (" ^ Provision.failure_to_string cause ^ ")"

let fault_sweep ?(seed = master_seed) ?(bench = "s641")
    ?(algorithm = Flow.Dependent) ?(rates = [ 1e-4; 1e-3; 1e-2; 5e-2 ])
    ?(stuck_rate = 0.) ?(dies = 12)
    ?(resilience = Provision.default_resilience) ?(jobs = 1) () =
  Sttc_obs.Span.with_ "runner.fault_sweep" ~cat:"experiments"
    ~attrs:[ ("bench", bench) ]
  @@ fun () ->
  let nl = Profiles.build_by_name bench in
  let r = strict ~seed algorithm nl in
  let hybrid = r.Flow.hybrid in
  let foundry = Sttc_core.Hybrid.foundry_view hybrid in
  let entries = Provision.of_hybrid hybrid in
  let ideal = Provision.programming_cost hybrid in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "fault sweep: %s / %s, %d LUTs, %d config bits, %d dies per rate\n\
        resilience: %d retries%s%s, %d spare rows per LUT\n"
       bench (Flow.algorithm_name algorithm)
       (Sttc_core.Hybrid.lut_count hybrid)
       ideal.Provision.mtj_cells dies resilience.Provision.retry_budget
       (if resilience.Provision.escalate then " (escalating current)" else "")
       (if resilience.Provision.ecc then ", ECC" else ", no ECC")
       resilience.Provision.spare_rows);
  (* detail: one die per rate, zero-retry vs resilient, on the same die *)
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("Write-err rate", Sttc_util.Table.Right);
          ("Provisioner", Sttc_util.Table.Left);
          ("Outcome", Sttc_util.Table.Left);
          ("Retried", Sttc_util.Table.Right);
          ("Corrected", Sttc_util.Table.Right);
          ("Spared", Sttc_util.Table.Right);
          ("Attempts", Sttc_util.Table.Right);
          ("Energy ovh", Sttc_util.Table.Right);
          ("Sign-off", Sttc_util.Table.Left);
        ]
  in
  let sign_off report =
    match report.Provision.view with
    | None -> "-"
    | Some view -> (
        match Sttc_sim.Equiv.check_sat nl view with
        | Sttc_sim.Equiv.Equivalent -> "equivalent"
        | Sttc_sim.Equiv.Different f -> "DIFFERS at " ^ f.Sttc_sim.Equiv.signal
        | Sttc_sim.Equiv.Inconclusive m -> "inconclusive: " ^ m)
  in
  let detail rate =
    let spec =
      Mtj.spec ~write_error_rate:rate ~stuck_cell_rate:stuck_rate ()
    in
    List.iter
      (fun (label, res) ->
        (* same channel seed: both provisioners face the same die *)
        let channel = Mtj.channel ~seed spec in
        let report = Provision.program ~resilience:res ~channel foundry entries in
        Sttc_util.Table.add_row t
          [
            Printf.sprintf "%.0e" rate;
            label;
            outcome_label report.Provision.outcome;
            string_of_int report.Provision.retried_bits;
            string_of_int report.Provision.corrected_bits;
            string_of_int report.Provision.spared_bits;
            string_of_int report.Provision.write_attempts;
            Printf.sprintf "%+.1f%%"
              (100.
               *. (report.Provision.cost.Provision.write_energy_nj
                   /. ideal.Provision.write_energy_nj
                  -. 1.));
            sign_off report;
          ])
      [ ("zero-retry", Provision.no_resilience); ("resilient", resilience) ];
    Sttc_util.Table.add_separator t
  in
  List.iter detail rates;
  Buffer.add_string buf (Sttc_util.Table.render t);
  (* yield: many dies per rate.  Every die's channel seed is derived up
     front from the master seed, so the table is identical at any job
     count; with [jobs > 1] the dies of each rate are programmed on a
     pool. *)
  let t2 =
    Sttc_util.Table.create
      ~headers:
        [
          ("Write-err rate", Sttc_util.Table.Right);
          ("Yield zero-retry", Sttc_util.Table.Right);
          ("Yield resilient", Sttc_util.Table.Right);
          ("Mean extra attempts", Sttc_util.Table.Right);
        ]
  in
  let ok report =
    match report.Provision.outcome with
    | Provision.Programmed | Provision.Degraded _ -> true
    | Provision.Failed _ -> false
  in
  let yield_row pool rate =
    let spec =
      Mtj.spec ~write_error_rate:rate ~stuck_cell_rate:stuck_rate ()
    in
    let one_die die =
      let die_seed = seed + (7919 * die) in
      let ch0 = Mtj.channel ~seed:die_seed spec in
      let r0 =
        Provision.program ~resilience:Provision.no_resilience ~channel:ch0
          foundry entries
      in
      let ch1 = Mtj.channel ~seed:die_seed spec in
      let r1 = Provision.program ~resilience ~channel:ch1 foundry entries in
      ( (if ok r0 then 1 else 0),
        (if ok r1 then 1 else 0),
        r1.Provision.write_attempts - ideal.Provision.mtj_cells )
    in
    let die_indices = List.init dies Fun.id in
    let good0, good1, extra =
      let reduce (a, b, c) (x, y, z) = (a + x, b + y, c + z) in
      match pool with
      | None -> List.fold_left reduce (0, 0, 0) (List.map one_die die_indices)
      | Some pool ->
          Pool.map_reduce pool ~map:one_die ~reduce ~init:(0, 0, 0) die_indices
    in
    Sttc_util.Table.add_row t2
      [
        Printf.sprintf "%.0e" rate;
        Printf.sprintf "%d/%d" good0 dies;
        Printf.sprintf "%d/%d" good1 dies;
        Printf.sprintf "%.1f" (float_of_int extra /. float_of_int dies);
      ]
  in
  if jobs <= 1 then List.iter (yield_row None) rates
  else begin
    Sttc_netlist.Netlist.warm foundry;
    Pool.with_pool ~jobs (fun pool ->
        List.iter (yield_row (Some pool)) rates)
  end;
  Buffer.add_string buf "\nprogramming yield over dies:\n";
  Buffer.add_string buf (Sttc_util.Table.render t2);
  Buffer.contents buf

(* ---------- checkpoint/resume self-test (CI smoke) ---------- *)

let resume_selftest ?(seed = master_seed) () =
  let path = Filename.temp_file "sttc-resume" ".ckpt" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
      let run cfg names = rows Config.(cfg |> with_seed seed |> with_only names) in
      let first = run Config.(default |> with_checkpoint path) [ "s641" ] in
      let restored = ref 0 in
      let resumed =
        run
          Config.(
            default |> with_checkpoint path
            |> with_on_event (function
                 | Restored _ -> incr restored
                 | _ -> ()))
          [ "s641"; "s820" ]
      in
      let fresh = run Config.default [ "s641"; "s820" ] in
      if List.length first <> 1 then Error "first pass must produce one row"
      else if !restored <> 1 then
        Error
          (Printf.sprintf
             "resume must restore exactly the checkpointed benchmark (got %d)"
             !restored)
      else if Report.table1 resumed <> Report.table1 fresh then
        Error "resumed rows differ from a fresh run"
      else
        Ok
          (Printf.sprintf
             "checkpoint round-trip: 1 benchmark restored, %d recomputed, \
              Table I identical to a fresh run"
             (List.length resumed - 1)))

let sweep ?(seed = master_seed) nl ~counts =
  let t =
    Sttc_util.Table.create
      ~headers:
        [
          ("#STT LUTs", Sttc_util.Table.Right);
          ("Perf %", Sttc_util.Table.Right);
          ("Power %", Sttc_util.Table.Right);
          ("Area %", Sttc_util.Table.Right);
          ("N_indep", Sttc_util.Table.Right);
          ("N_dep", Sttc_util.Table.Right);
          ("N_bf", Sttc_util.Table.Right);
        ]
  in
  List.iter
    (fun count ->
      let r = strict ~seed (Flow.Independent { count }) nl in
      let o = r.Flow.overhead and s = r.Flow.security in
      Sttc_util.Table.add_row t
        [
          string_of_int o.Sttc_core.Ppa.n_stts;
          Printf.sprintf "%.2f" o.Sttc_core.Ppa.performance_pct;
          Printf.sprintf "%.2f" o.Sttc_core.Ppa.power_pct;
          Printf.sprintf "%.2f" o.Sttc_core.Ppa.area_pct;
          Sttc_util.Lognum.to_string s.Sttc_core.Security.n_indep;
          Sttc_util.Lognum.to_string s.Sttc_core.Security.n_dep;
          Sttc_util.Lognum.to_string s.Sttc_core.Security.n_bf;
        ])
    counts;
  Sttc_util.Table.render t
