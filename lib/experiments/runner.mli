(** Experiment driver shared by the benchmark harness and the CLI.

    One call protects every ISCAS'89 structural twin with the paper's
    three algorithms under a fixed master seed; the resulting rows feed
    the Table I / Table II / Fig. 3 renderers.  The attack campaign runs
    the empirical attacks on a small circuit where they terminate.

    The driver fans its work out over {!Sttc_util.Pool} when
    [Config.jobs > 1]; per-task seeds are derived before submission, so
    rows are bit-identical at any job count. *)

val master_seed : int
(** 20160605 — fixed so published output is reproducible. *)

(** {1 Progress events}

    The run reports progress as a typed stream instead of pre-rendered
    strings, so the CLI, the bench harness and future tracing can each
    render (or aggregate) it their own way. *)

type stage =
  | Build  (** constructing the benchmark netlist *)
  | Protect of string  (** running one named selection algorithm *)

type exn_info = {
  benchmark : string;
  stage : stage;
  reason : string;  (** the exception message, without the stage label *)
}

type event =
  | Started of string  (** benchmark name, before any work on it *)
  | Restored of string  (** benchmark row loaded from the checkpoint *)
  | Timed_out of { benchmark : string; stage : stage; budget_s : float }
  | Failed of exn_info  (** stage crashed (isolation captured it) *)
  | Finished of Sttc_core.Report.benchmark_row
      (** benchmark done (only when its build stage succeeded; the row
          may still carry per-algorithm failures) *)

val string_of_event : event -> string
(** The classic progress-line rendering of an event, e.g.
    ["s641: restored from checkpoint"] or
    ["FAILED s641/dependent: protect: timeout after 2.0s"]. *)

(** {1 Configuration}

    The driver's knobs as one value instead of a growing pile of
    optional arguments.  Build one with {!Config.default} and the
    [with_*] setters:
    {[ Config.(default |> with_quick true |> with_jobs 4) ]} *)

module Config : sig
  type t = {
    quick : bool;  (** restrict to the sub-1000-gate benchmarks *)
    seed : int;  (** master seed; every row is deterministic in it *)
    only : string list option;
        (** restrict to these benchmarks (unknown names raise up front) *)
    timeout_s : float option;
        (** wall-clock budget per build / per protect stage *)
    isolate : bool;
        (** turn per-benchmark crashes into partial rows instead of
            aborting the whole table *)
    checkpoint : string option;
        (** snapshot file rewritten atomically as benchmarks complete *)
    jobs : int;
        (** worker domains; [1] = serial (identical rows either way) *)
    backend : string;
        (** protection backend name ({!Sttc_backend.Backend.names});
            default ["stt"] *)
    on_event : event -> unit;  (** progress stream consumer *)
  }

  val default : t
  (** quick=false, seed={!master_seed}, no restriction, no timeout, no
      isolation, no checkpoint, jobs=1, backend="stt", events dropped. *)

  val with_quick : bool -> t -> t
  val with_seed : int -> t -> t
  val with_only : string list -> t -> t
  val with_timeout_s : float -> t -> t
  val with_isolate : bool -> t -> t
  val with_checkpoint : string -> t -> t
  val with_jobs : int -> t -> t
  val with_backend : string -> t -> t
  val with_on_event : (event -> unit) -> t -> t

  val to_json : t -> Sttc_obs.Json.t
  (** The data fields only — [on_event] is a function and has no wire
      form.  Optional fields ([only], [timeout_s], [checkpoint]) are
      omitted when unset, and [backend] is omitted at its default, so
      historical configs render byte-identically. *)

  val of_json : Sttc_obs.Json.t -> (t, string) result
  (** Missing fields take their {!default}s; [on_event] is always
      [ignore] (attach one with {!with_on_event} after parsing). *)
end

val rows : Config.t -> Sttc_core.Report.benchmark_row list
(** Protect every selected benchmark with the paper's three algorithms.

    Crash tolerance (see the {!Config} fields): [timeout_s] budgets each
    build and protect stage, [isolate] degrades crashes to partial rows
    (rendered as ["-"] cells with a footnote), and [checkpoint] lets a
    killed run resume where it stopped — a corrupt, foreign or
    different-seed or different-backend checkpoint is ignored, and
    partial rows are never checkpointed, so a rerun with a longer budget
    recomputes them.

    [backend] selects the protection technology for every protect stage
    (resolved up front with {!Sttc_backend.Backend.find_exn}, so an
    unknown name raises before any work starts).

    Parallelism: with [jobs > 1] the build stages and the benchmark ×
    algorithm protect stages run on a {!Sttc_util.Pool}.  Rows (and the
    final checkpoint file) are bit-identical to a serial run because
    each task's result depends only on [seed]; three differences are
    semantic, not numeric:
    - stage budgets are enforced cooperatively (an overrunning stage is
      reported as timed out when it completes) rather than interrupted
      by [setitimer], which does not compose with domains;
    - the checkpoint is written as results are merged after the fan-out
      rather than after each benchmark;
    - [on_event] may be invoked from worker domains (calls are
      serialized by a mutex), and event order across benchmarks is not
      deterministic;
    - without [isolate], a crashing stage surfaces as
      {!Sttc_util.Pool.Task_error} instead of the original exception. *)

(** {1 Shard-scoped entry points}

    The campaign engine ({!Sttc_campaign}) executes sweeps as bags of
    single [benchmark x algorithm x seed] units inside supervised worker
    processes; these two functions are that unit of work. *)

val build_circuit : ?seed:int -> string -> Sttc_netlist.Netlist.t
(** Resolve a benchmark name to its netlist: the ISCAS'89 structural
    twins ({!Sttc_netlist.Iscas_profiles}) first, then the embedded
    genuine benchmarks ({!Sttc_netlist.Iscas_data}: s27, c17).  Raises
    [Invalid_argument] on unknown names.  Without [seed] the profile's
    own name-derived seed is used, so every caller sees the same
    circuit. *)

val run_unit :
  ?timeout_s:float ->
  ?fraction:float ->
  ?hardening:Sttc_core.Flow.hardening ->
  ?backend:Sttc_backend.Backend.t ->
  seed:int ->
  benchmark:string ->
  Sttc_core.Flow.algorithm ->
  (Sttc_core.Flow.result, string) result
(** One protect run, isolated: build the benchmark, run the strict flow
    at [seed], and capture any crash or [timeout_s] overrun as [Error]
    with the reason — the caller (a campaign worker) records it as a
    footnoted partial row rather than dying.  Deterministic in [seed]
    when no timeout fires.  [backend] selects the protection technology
    (default STT).  The timeout uses
    {!Sttc_util.Timing.with_timeout} and is therefore main-domain
    only — exactly the situation of a worker process. *)

val fig1 : unit -> string
val table1 : Sttc_core.Report.benchmark_row list -> string
val table2 : Sttc_core.Report.benchmark_row list -> string
val fig3 : Sttc_core.Report.benchmark_row list -> string

val attack_campaign :
  ?seed:int ->
  ?sat_timeout_s:float ->
  ?jobs:int ->
  ?backend:Sttc_backend.Backend.t ->
  unit ->
  string
(** Protect an 80-gate circuit three ways and run the SAT / truth-table /
    hill-climb / brute-force attacks against each.  [jobs > 1] runs one
    pool task per algorithm (each campaign's attacks then enforce their
    budgets cooperatively).  [backend] (default STT) applies to both the
    defence and the attacker model. *)

val sweep :
  ?seed:int ->
  Sttc_netlist.Netlist.t ->
  counts:int list ->
  string
(** Security-vs-overhead frontier: independent selection at increasing
    LUT budgets on one circuit (used by the ppa_sweep example). *)

val sidechannel : ?seed:int -> unit -> string
(** DPA leakage (difference-of-means relative to mean power) of an
    original circuit versus its three hybrids, targeting each replaced
    gate's signal — the side-channel robustness claim of Section II made
    measurable. *)

val ablation_parametric : ?seed:int -> unit -> string
(** Sweep of the parametric algorithm's timing-constraint factor on
    s1196: inserted LUTs, measured degradation and attack cost per
    allowed slack. *)

val ablation_hardening : ?seed:int -> unit -> string
(** Effect of the Section IV-A.3 hardening measures (dummy extra LUT
    inputs, complex-function absorption) on the brute-force space and the
    hill-climbing attack. *)

val baselines : ?seed:int -> unit -> string
(** The paper's two comparison points made runnable (Section II and
    IV-A.3):
    - {e camouflaging} [12]: same number of hidden cells, but the attacker
      knows each cell is one of only three functions — search spaces and
      SAT-attack effort side by side;
    - {e SRAM-based LUTs} [8]: the same hybrid netlist priced with SRAM
      LUT cells — PPA comparison plus the volatility problem (the
      bitstream is exposed on every power-up, so its effective search
      space is 1). *)

val fault_sweep :
  ?seed:int ->
  ?bench:string ->
  ?algorithm:Sttc_core.Flow.algorithm ->
  ?rates:float list ->
  ?stuck_rate:float ->
  ?dies:int ->
  ?resilience:Sttc_core.Provision.resilience ->
  ?jobs:int ->
  unit ->
  string
(** Stochastic-write provisioning study (beyond the paper): protect one
    ISCAS twin (default s641, dependent selection), then program its
    foundry view through {!Sttc_fault.Mtj} channels across a sweep of
    write-error rates.  Two tables: a per-die detail comparing the
    zero-retry provisioner against the resilient one on the same die
    (outcome, retried/corrected/spared bits, write attempts, energy
    overhead versus the ideal channel, SAT sign-off of the effective
    view), and a programming-yield summary over [dies] independent
    dies per rate.  [jobs > 1] programs the yield table's dies in
    parallel; every die's channel seed is derived up front, so the
    output is identical at any job count. *)

val resume_selftest : ?seed:int -> unit -> (string, string) result
(** Checkpoint round-trip smoke test (the [@fault] alias): run s641
    into a fresh checkpoint, rerun s641+s820 against it, and require
    exactly one restore plus a Table I byte-identical to a fresh run.
    [Error] carries the first violated expectation. *)

val ablation_constants : ?seed:int -> unit -> string
(** Eq. (2) attack cost under the paper's published alpha/P constants
    versus the constants computed from the meaningful-gate similarity
    metric in this repo — the sensitivity of Fig. 3 to that modelling
    choice. *)
