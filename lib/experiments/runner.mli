(** Experiment driver shared by the benchmark harness and the CLI.

    One call protects every ISCAS'89 structural twin with the paper's
    three algorithms under a fixed master seed; the resulting rows feed
    the Table I / Table II / Fig. 3 renderers.  The attack campaign runs
    the empirical attacks on a small circuit where they terminate. *)

val master_seed : int
(** 20160605 — fixed so published output is reproducible. *)

val benchmark_rows :
  ?quick:bool ->
  ?seed:int ->
  ?progress:(string -> unit) ->
  ?only:string list ->
  ?timeout_s:float ->
  ?isolate:bool ->
  ?checkpoint:string ->
  unit ->
  Sttc_core.Report.benchmark_row list
(** [quick] restricts to the sub-1000-gate benchmarks (default false).
    [progress] receives a line per benchmark as it completes.

    Crash tolerance:
    - [only] restricts to the named benchmarks (unknown names raise
      up front, before any work);
    - [timeout_s] puts a wall-clock budget on each build and each
      protect run ({!Sttc_util.Timing.with_timeout});
    - [isolate] turns per-benchmark exceptions into partial rows
      (rendered as ["-"] cells with a footnote) instead of aborting the
      whole table;
    - [checkpoint] names a snapshot file rewritten atomically after
      every fully-successful benchmark, so a killed run resumes where
      it stopped.  A corrupt, foreign or different-seed checkpoint is
      ignored.  Partial rows are never checkpointed: a rerun with a
      longer budget recomputes them. *)

val fig1 : unit -> string
val table1 : Sttc_core.Report.benchmark_row list -> string
val table2 : Sttc_core.Report.benchmark_row list -> string
val fig3 : Sttc_core.Report.benchmark_row list -> string

val attack_campaign :
  ?seed:int -> ?sat_timeout_s:float -> unit -> string
(** Protect an 80-gate circuit three ways and run the SAT / truth-table /
    hill-climb / brute-force attacks against each. *)

val sweep :
  ?seed:int ->
  Sttc_netlist.Netlist.t ->
  counts:int list ->
  string
(** Security-vs-overhead frontier: independent selection at increasing
    LUT budgets on one circuit (used by the ppa_sweep example). *)

val sidechannel : ?seed:int -> unit -> string
(** DPA leakage (difference-of-means relative to mean power) of an
    original circuit versus its three hybrids, targeting each replaced
    gate's signal — the side-channel robustness claim of Section II made
    measurable. *)

val ablation_parametric : ?seed:int -> unit -> string
(** Sweep of the parametric algorithm's timing-constraint factor on
    s1196: inserted LUTs, measured degradation and attack cost per
    allowed slack. *)

val ablation_hardening : ?seed:int -> unit -> string
(** Effect of the Section IV-A.3 hardening measures (dummy extra LUT
    inputs, complex-function absorption) on the brute-force space and the
    hill-climbing attack. *)

val baselines : ?seed:int -> unit -> string
(** The paper's two comparison points made runnable (Section II and
    IV-A.3):
    - {e camouflaging} [12]: same number of hidden cells, but the attacker
      knows each cell is one of only three functions — search spaces and
      SAT-attack effort side by side;
    - {e SRAM-based LUTs} [8]: the same hybrid netlist priced with SRAM
      LUT cells — PPA comparison plus the volatility problem (the
      bitstream is exposed on every power-up, so its effective search
      space is 1). *)

val fault_sweep :
  ?seed:int ->
  ?bench:string ->
  ?algorithm:Sttc_core.Flow.algorithm ->
  ?rates:float list ->
  ?stuck_rate:float ->
  ?dies:int ->
  ?resilience:Sttc_core.Provision.resilience ->
  unit ->
  string
(** Stochastic-write provisioning study (beyond the paper): protect one
    ISCAS twin (default s641, dependent selection), then program its
    foundry view through {!Sttc_fault.Mtj} channels across a sweep of
    write-error rates.  Two tables: a per-die detail comparing the
    zero-retry provisioner against the resilient one on the same die
    (outcome, retried/corrected/spared bits, write attempts, energy
    overhead versus the ideal channel, SAT sign-off of the effective
    view), and a programming-yield summary over [dies] independent
    dies per rate. *)

val resume_selftest : ?seed:int -> unit -> (string, string) result
(** Checkpoint round-trip smoke test (the [@fault] alias): run s641
    into a fresh checkpoint, rerun s641+s820 against it, and require
    exactly one restore plus a Table I byte-identical to a fresh run.
    [Error] carries the first violated expectation. *)

val ablation_constants : ?seed:int -> unit -> string
(** Eq. (2) attack cost under the paper's published alpha/P constants
    versus the constants computed from the meaningful-gate similarity
    metric in this repo — the sensitivity of Fig. 3 to that modelling
    choice. *)
