let catalog = Structural.rules @ Security_rules.rules @ Semantic_rules.rules

let find_rule name =
  let name = String.lowercase_ascii name in
  List.find_opt
    (fun (r : Structural.rule) ->
      String.lowercase_ascii r.Structural.id = name
      || String.lowercase_ascii r.Structural.alias = name)
    catalog

let packs =
  [
    ("STR", "structural: netlist well-formedness", Structural.rules);
    ("SEC", "security: selection invariants (Eqs. 1-3)", Security_rules.rules);
    ("SEM", "semantic: dataflow + SAT-proved findings", Semantic_rules.rules);
  ]

let catalog_text () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "rule catalog:\n";
  List.iter
    (fun (_, heading, rules) ->
      Buffer.add_string buf (Printf.sprintf "\n%s\n" heading);
      List.iter
        (fun (r : Structural.rule) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s  %-24s %-8s %s\n" r.Structural.id
               r.Structural.alias
               (Diagnostic.severity_name r.Structural.severity)
               r.Structural.doc))
        rules)
    packs;
  Buffer.contents buf

let structural ?only ?library nl = Structural.check ?only ?library nl

let hybrid ?only view =
  Structural.check ?only ~library:view.Security_rules.library
    view.Security_rules.foundry
  @ Security_rules.run ?only view

let semantic ?only view = Semantic_rules.run ?only view

let apply ?(only = []) ?(suppress = []) ?baseline ds =
  let ds = Diagnostic.filter_rules ~only ds in
  let ds = Diagnostic.suppress ~rules:suppress ds in
  let ds =
    match baseline with
    | None -> ds
    | Some b -> Diagnostic.apply_baseline b ds
  in
  List.sort Diagnostic.compare ds

let exit_code ds = if Diagnostic.errors ds > 0 then 1 else 0
