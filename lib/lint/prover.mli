(** SAT-backed semantic prover: one incremental solver per analysis run.

    The netlist is lowered once to a {e dual-rail ternary} CNF — rails
    [(t, f)] per net with [not (t && f)]; [(0,0)] is X — so the
    three-valued semantics of the testing attack (unresolved missing
    gates read as X, sources are controllable and known) becomes pure
    assumption setting against a single persistent
    {!Sttc_logic.Sat.Solver}.  A second copy of the logic downstream of
    the missing gates, sharing sources, forms the justify/propagate
    miter of Eq. 1.  Queries that must add clauses (equivalence) guard
    them behind an activation literal and retire it afterwards.  Every
    query runs under the conflict budget: lint can be wrong about
    nothing and late about nothing — budget exhaustion is a distinct
    {!answer}, never silence or a false claim. *)

type t

(** Three-valued query outcome.  [Cutoff] means the conflict budget was
    exhausted: no claim either way. *)
type answer = Holds | Refuted | Cutoff

val create : ?budget:int -> Sttc_netlist.Netlist.t -> t
(** Lower the netlist and start the solver.  [budget] (default 50_000)
    bounds the conflicts of each individual query. *)

val set_label : t -> string -> unit
(** Metric label: subsequent queries record under
    [lint.sem.<label>.solver_seconds] / [.solver_conflicts]. *)

val value_reachable :
  t -> Sttc_netlist.Netlist.node_id -> Sttc_logic.Ternary.v -> answer
(** Can the net take the value for {e some} input, state and
    missing-gate behaviour?  [Refuted] on the complement values proves a
    constant net. *)

val justify_row :
  t -> Sttc_netlist.Netlist.node_id -> row:int -> exact:bool -> answer
(** With every missing gate X: can an input/state pattern drive the
    LUT's fanins to the row ([exact]) — or merely remain three-valued
    compatible with it ([exact:false])?  A row that is not even
    compatible is unreachable and needs no test pattern. *)

val toggle_observable :
  t -> Sttc_netlist.Netlist.node_id -> others:[ `X | `Free ] -> answer
(** Miter query: forcing the LUT low in copy A and high in copy B,
    under shared inputs/state, can some primary output or flip-flop D
    input take {e known, opposite} values?  [`X] holds the other
    missing gates at X (Eq. 1 propagation: no other gate may be needed);
    [`Free] lets the solver pick any behaviour for them, so [Refuted]
    proves the LUT's configuration influences no observation point under
    any circumstances (keyspace collapse). *)

val equivalent :
  t -> Sttc_netlist.Netlist.node_id -> Sttc_netlist.Netlist.node_id -> answer
(** [Holds] proves the two nets equal on every input and state.  Only
    sound for nets that are not downstream of a missing gate (the caller
    filters on {!Dataflow.tainted}). *)

val unconfigured_luts : t -> Sttc_netlist.Netlist.node_id list
val budget : t -> int
val queries : t -> int
val cutoffs : t -> int
(** Queries that exhausted the budget so far. *)

val conflicts : t -> int
(** Solver conflicts spent by this prover's queries. *)

val seconds : t -> float
val has_observable_miter : t -> bool
(** False when no observation point is downstream of any missing gate —
    every toggle query is then vacuously [Refuted]. *)

val downstream : t -> Sttc_netlist.Netlist.node_id -> bool
(** Combinationally downstream of a missing gate: two-valued claims
    ({!value_reachable}-based constancy, {!equivalent}) are not sound
    there. *)
