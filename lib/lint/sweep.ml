(* SAT sweeping: use the semantic pack's own machinery (sampling +
   dual-rail prover) to *remove* what SEM001/SEM004 would report, instead
   of merely reporting it.  Proved-constant nets become [Const] nodes and
   proved-duplicate nets become buffers onto their earliest equivalent,
   then [Opt.optimize] folds the debris away; repeat to a fixpoint. *)

module Netlist = Sttc_netlist.Netlist
module Query = Sttc_netlist.Query
module Opt = Sttc_netlist.Opt
module Ternary = Sttc_logic.Ternary

type stats = { rounds : int; constants : int; duplicates : int; dead : int }

let max_pairs = 256

(* Nodes eligible for rewriting: plain gates and programmed LUTs.  PIs,
   DFFs and existing constants stay; unconfigured LUTs make the whole
   cone tainted and are filtered by [Dataflow.tainted] anyway. *)
let eligible nl id =
  match Netlist.kind nl id with
  | Netlist.Gate _ | Netlist.Lut { config = Some _; _ } -> true
  | Netlist.Pi | Netlist.Const _ | Netlist.Lut { config = None; _ }
  | Netlist.Dff ->
      false

(* One analyze-and-rewrite pass.  Returns [None] when nothing was proved
   (the netlist is SEM001/SEM004-silent at this budget). *)
let pass ~budget ~seed nl =
  let dt = Dataflow.compute ~seed nl in
  let prover = lazy (Prover.create ~budget nl) in
  let n = Netlist.node_count nl in
  (* Proved constants: propagation alone, or a sampling-stable candidate
     confirmed by refuting the complement value. *)
  let const_of = Array.make n None in
  for id = 0 to n - 1 do
    if eligible nl id && not (Dataflow.tainted dt id) then
      match Dataflow.const dt id with
      | Ternary.Zero -> const_of.(id) <- Some false
      | Ternary.One -> const_of.(id) <- Some true
      | Ternary.X -> (
          match Dataflow.stuck dt id with
          | Ternary.X -> ()
          | (Ternary.Zero | Ternary.One) as v ->
              let other =
                if v = Ternary.One then Ternary.Zero else Ternary.One
              in
              let p = Lazy.force prover in
              Prover.set_label p "sweep";
              if Prover.value_reachable p id other = Prover.Refuted then
                const_of.(id) <- Some (v = Ternary.One))
  done;
  (* Proved duplicates: bucket by (sample signature, support hash) — both
     must agree for equivalence to be possible — then confirm each later
     node against the bucket's earliest member.  Earliest-id targets keep
     the buffer edges acyclic (builder ids are topologically ordered). *)
  let summary = Dataflow.summary dt in
  let buckets = Hashtbl.create 64 in
  for id = 0 to n - 1 do
    if
      eligible nl id
      && (not (Dataflow.tainted dt id))
      && const_of.(id) = None
      && Netlist.kind nl id <> Netlist.Gate Sttc_logic.Gate_fn.Buf
    then begin
      let key = (Dataflow.signature dt id, summary.Query.support_hash.(id)) in
      let prev = try Hashtbl.find buckets key with Not_found -> [] in
      Hashtbl.replace buckets key (id :: prev)
    end
  done;
  (* Provably dead logic (SEM002's liveness proof: no value change can
     ever reach a primary output, across any number of clock cycles):
     anything goes there, so pin it to 0 and let [Opt] erase the cone.
     Dead flip-flops are included — [Transform.sweep] keeps registers
     whose outputs feed live-looking but masked logic. *)
  let is_po = Array.make n false in
  List.iter (fun id -> is_po.(id) <- true) (Netlist.pos nl);
  let dead = ref 0 in
  let dead_of = Array.make n false in
  for id = 0 to n - 1 do
    let can_rewrite =
      match Netlist.kind nl id with
      | Netlist.Gate _ | Netlist.Lut { config = Some _; _ } | Netlist.Dff ->
          true
      | Netlist.Pi | Netlist.Const _ | Netlist.Lut { config = None; _ } ->
          false
    in
    if can_rewrite && (not (Dataflow.live dt id)) && not is_po.(id) then begin
      dead_of.(id) <- true;
      incr dead
    end
  done;
  (* All pairs within a bucket, earliest member first: a signature
     collision can pull an unrelated node into the bucket, so testing
     only against the first member could shadow a genuine duplicate
     deeper in.  Matched nodes stop being representatives, which keeps
     the work near-linear on honest buckets. *)
  let dup_of = Array.make n None in
  let pairs = ref 0 in
  Hashtbl.iter
    (fun _ members ->
      let reps = ref [] in
      List.iter
        (fun id ->
          let rec try_reps = function
            | [] -> reps := !reps @ [ id ]
            | rep :: rest ->
                if !pairs >= max_pairs then reps := !reps @ [ id ]
                else begin
                  incr pairs;
                  let p = Lazy.force prover in
                  Prover.set_label p "sweep";
                  if Prover.equivalent p rep id = Prover.Holds then
                    dup_of.(id) <- Some rep
                  else try_reps rest
                end
          in
          try_reps !reps)
        (List.rev members))
    buckets;
  let constants = Array.fold_left (fun a c -> if c = None then a else a + 1) 0 const_of in
  let duplicates = Array.fold_left (fun a d -> if d = None then a else a + 1) 0 dup_of in
  if constants = 0 && duplicates = 0 && !dead = 0 then None
  else
    let rewritten =
      Netlist.with_kinds nl (fun id kind fanins ->
          if dead_of.(id) then (Netlist.Const false, [||])
          else
            match const_of.(id) with
            | Some b -> (Netlist.Const b, [||])
            | None -> (
                match dup_of.(id) with
                | Some rep -> (Netlist.Gate Sttc_logic.Gate_fn.Buf, [| rep |])
                | None -> (kind, fanins)))
    in
    Some (Opt.optimize rewritten, constants, duplicates, !dead)

let run ?(budget = 50_000) ?(seed = 0) ?(max_rounds = 4) nl =
  let rec go nl round constants duplicates dead =
    if round >= max_rounds then (nl, { rounds = round; constants; duplicates; dead })
    else
      match pass ~budget ~seed nl with
      | None -> (nl, { rounds = round; constants; duplicates; dead })
      | Some (nl', c, dup, dd) ->
          go nl' (round + 1) (constants + c) (duplicates + dup) (dead + dd)
  in
  go (Opt.optimize nl) 0 0 0 0
