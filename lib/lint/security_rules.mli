(** Security rule pack: invariants of the paper's three selection
    algorithms (Section IV-A, Eqs. 1-3) checked on a hybrid design.

    The pack runs on a {!view}: the foundry netlist (missing gates as
    unconfigured LUTs), the list of missing-gate ids, and optional
    context — which algorithm produced the selection, the parametric
    selection metadata, and the original netlist for timing comparison.
    A malformed hybrid silently produces wrong security numbers; these
    rules catch it before the attack/PPA pipelines burn time on it.

    {t
    | ID     | alias               | severity | gated on | finding |
    |--------|---------------------|----------|----------|---------|
    | SEC001 | trivial-lut         | warning  | —        | isolated LUT trivially justifiable and propagatable (Eq. 1 attack surface) |
    | SEC002 | broken-chain        | error    | dependent | LUT outside every LUT-to-LUT dependency chain (Eq. 2) |
    | SEC003 | missing-neighbour   | error    | parametric meta | recorded off-path neighbourhood gate not replaced (Eq. 3) |
    | SEC004 | unobservable-lut    | error    | —        | LUT output reaches no primary output (zero corruptibility) |
    | SEC005 | timing-violation    | error/warning | original | post-replacement critical delay beyond the clock budget |
    | SEC006 | config-leak         | error    | —        | foundry view carries a programmed configuration (secret leak) |
    | SEC007 | not-a-lut           | error    | —        | listed missing-gate id is not a LUT slot |
    }

    SEC005 is an error only when the selection claimed to be
    parametric-aware {e and} a replacement LUT sits on the violating
    critical path; otherwise the (expected) slowdown is reported as a
    warning. *)

type algorithm = Independent | Dependent | Parametric

type parametric_meta = {
  usl : Sttc_netlist.Netlist.node_id list;
      (** unselected on-path gates (Algorithm 2's USL) *)
  neighbours : Sttc_netlist.Netlist.node_id list;
      (** off-path neighbourhood gates the closure replaced *)
}

type view = {
  foundry : Sttc_netlist.Netlist.t;
  luts : Sttc_netlist.Netlist.node_id list;
  algorithm : algorithm option;
  meta : parametric_meta option;
  original : Sttc_netlist.Netlist.t option;
  library : Sttc_tech.Library.t;
  clock_factor : float;
      (** clock budget as a multiple of the original critical delay *)
}

val view :
  ?algorithm:algorithm ->
  ?meta:parametric_meta ->
  ?original:Sttc_netlist.Netlist.t ->
  ?library:Sttc_tech.Library.t ->
  ?clock_factor:float ->
  foundry:Sttc_netlist.Netlist.t ->
  luts:Sttc_netlist.Netlist.node_id list ->
  unit ->
  view
(** Defaults: no algorithm/meta/original, {!Sttc_tech.Library.cmos90},
    clock factor 1.08 (the paper's worst accepted degradation). *)

val rules : Structural.rule list
(** The catalog above, in ID order. *)

val run : ?only:string list -> view -> Diagnostic.t list
