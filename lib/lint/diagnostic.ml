type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  rule : string;
  alias : string;
  severity : severity;
  node : string option;
  detail : string;
}

let make ~rule ~alias ~severity ?node detail =
  { rule; alias; severity; node; detail }

let key d =
  Printf.sprintf "%s@%s" d.rule (Option.value d.node ~default:"-")

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      String.compare
        (Option.value a.node ~default:"")
        (Option.value b.node ~default:"")

let errors ds =
  List.fold_left (fun n d -> if d.severity = Error then n + 1 else n) 0 ds

let matches_rule r d =
  let r = String.lowercase_ascii r in
  String.lowercase_ascii d.rule = r || String.lowercase_ascii d.alias = r

let filter_rules ~only ds =
  if only = [] then ds
  else List.filter (fun d -> List.exists (fun r -> matches_rule r d) only) ds

let suppress ~rules ds =
  List.filter (fun d -> not (List.exists (fun r -> matches_rule r d) rules)) ds

(* ---------- baselines ---------- *)

type baseline = (string, unit) Hashtbl.t

let empty_baseline : baseline = Hashtbl.create 1

let baseline_of_diagnostics ds =
  let b = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace b (key d) ()) ds;
  b

let baseline_to_string b =
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) b [] in
  let keys = List.sort String.compare keys in
  "# sttc lint baseline: one accepted diagnostic key per line\n"
  ^ String.concat "\n" keys
  ^ if keys = [] then "" else "\n"

let baseline_of_string text =
  let b = Hashtbl.create 16 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then Hashtbl.replace b line ())
    (String.split_on_char '\n' text);
  b

let apply_baseline b ds = List.filter (fun d -> not (Hashtbl.mem b (key d))) ds

(* ---------- rendering ---------- *)

let pp fmt d =
  Format.fprintf fmt "%s %s(%s)%s: %s" (severity_name d.severity) d.rule
    d.alias
    (match d.node with Some n -> " at " ^ n | None -> "")
    d.detail

let to_text d = Format.asprintf "%a" pp d

let count sev ds =
  List.fold_left (fun n d -> if d.severity = sev then n + 1 else n) 0 ds

let render_text ~design ds =
  let ds = List.sort compare ds in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "lint %s:\n" design);
  if ds = [] then Buffer.add_string buf "  clean (no diagnostics)\n"
  else
    List.iter
      (fun d -> Buffer.add_string buf (Printf.sprintf "  %s\n" (to_text d)))
      ds;
  Buffer.add_string buf
    (Printf.sprintf "summary: %d error(s), %d warning(s), %d info\n"
       (count Error ds) (count Warning ds) (count Info ds));
  Buffer.contents buf

let render_json ~design ds =
  let ds = List.sort compare ds in
  let module J = Sttc_obs.Json in
  let entry d =
    J.Obj
      [
        ("rule", J.String d.rule);
        ("alias", J.String d.alias);
        ("severity", J.String (severity_name d.severity));
        ("node", match d.node with Some n -> J.String n | None -> J.Null);
        ("detail", J.String d.detail);
      ]
  in
  let doc =
    J.Obj
      [
        ("design", J.String design);
        ("diagnostics", J.List (List.map entry ds));
        ("errors", J.Int (count Error ds));
        ("warnings", J.Int (count Warning ds));
        ("infos", J.Int (count Info ds));
      ]
  in
  J.to_string doc ^ "\n"
