type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  rule : string;
  alias : string;
  severity : severity;
  node : string option;
  detail : string;
}

let make ~rule ~alias ~severity ?node detail =
  { rule; alias; severity; node; detail }

let key d =
  Printf.sprintf "%s@%s" d.rule (Option.value d.node ~default:"-")

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      String.compare
        (Option.value a.node ~default:"")
        (Option.value b.node ~default:"")

let errors ds =
  List.fold_left (fun n d -> if d.severity = Error then n + 1 else n) 0 ds

let matches_rule r d =
  let r = String.lowercase_ascii r in
  String.lowercase_ascii d.rule = r || String.lowercase_ascii d.alias = r

let filter_rules ~only ds =
  if only = [] then ds
  else List.filter (fun d -> List.exists (fun r -> matches_rule r d) only) ds

let suppress ~rules ds =
  List.filter (fun d -> not (List.exists (fun r -> matches_rule r d) rules)) ds

(* ---------- baselines ---------- *)

type baseline = (string, unit) Hashtbl.t

let empty_baseline : baseline = Hashtbl.create 1

let baseline_of_diagnostics ds =
  let b = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace b (key d) ()) ds;
  b

let baseline_to_string b =
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) b [] in
  let keys = List.sort String.compare keys in
  "# sttc lint baseline: one accepted diagnostic key per line\n"
  ^ String.concat "\n" keys
  ^ if keys = [] then "" else "\n"

let baseline_of_string text =
  let b = Hashtbl.create 16 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then Hashtbl.replace b line ())
    (String.split_on_char '\n' text);
  b

let apply_baseline b ds = List.filter (fun d -> not (Hashtbl.mem b (key d))) ds

(* ---------- rendering ---------- *)

let pp fmt d =
  Format.fprintf fmt "%s %s(%s)%s: %s" (severity_name d.severity) d.rule
    d.alias
    (match d.node with Some n -> " at " ^ n | None -> "")
    d.detail

let to_text d = Format.asprintf "%a" pp d

let count sev ds =
  List.fold_left (fun n d -> if d.severity = sev then n + 1 else n) 0 ds

let render_text ~design ds =
  let ds = List.sort compare ds in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "lint %s:\n" design);
  if ds = [] then Buffer.add_string buf "  clean (no diagnostics)\n"
  else
    List.iter
      (fun d -> Buffer.add_string buf (Printf.sprintf "  %s\n" (to_text d)))
      ds;
  Buffer.add_string buf
    (Printf.sprintf "summary: %d error(s), %d warning(s), %d info\n"
       (count Error ds) (count Warning ds) (count Info ds));
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json ~design ds =
  let ds = List.sort compare ds in
  let entry d =
    Printf.sprintf
      "    { \"rule\": \"%s\", \"alias\": \"%s\", \"severity\": \"%s\", \
       \"node\": %s, \"detail\": \"%s\" }"
      (json_escape d.rule) (json_escape d.alias)
      (severity_name d.severity)
      (match d.node with
      | Some n -> Printf.sprintf "\"%s\"" (json_escape n)
      | None -> "null")
      (json_escape d.detail)
  in
  let body =
    if ds = [] then "[]"
    else
      Printf.sprintf "[\n%s\n  ]" (String.concat ",\n" (List.map entry ds))
  in
  Printf.sprintf
    "{\n  \"design\": \"%s\",\n  \"diagnostics\": %s,\n  \"errors\": %d,\n  \
     \"warnings\": %d,\n  \"infos\": %d\n}\n"
    (json_escape design) body (count Error ds) (count Warning ds)
    (count Info ds)
