(** Diagnostics: the currency of the lint subsystem.

    A diagnostic carries a stable rule ID (e.g. ["STR001"]), a
    human-readable alias (["comb-loop"]), a severity, an optional
    gate-level location (the node name) and a message.  Renderers produce
    the CLI's text and JSON outputs; suppression and baselines let CI
    gate on {e new} findings only. *)

type severity = Error | Warning | Info

val severity_name : severity -> string
(** ["error"] / ["warning"] / ["info"]. *)

val severity_rank : severity -> int
(** [Error] = 0 (worst) .. [Info] = 2; used for sorting. *)

type t = {
  rule : string;  (** stable ID, e.g. "STR001" *)
  alias : string;  (** slug, e.g. "comb-loop" *)
  severity : severity;
  node : string option;  (** gate-level location (node name) if any *)
  detail : string;
}

val make :
  rule:string -> alias:string -> severity:severity -> ?node:string ->
  string -> t

val key : t -> string
(** Stable identity for baselines: ["RULE@node"] (or ["RULE@-"]). *)

val compare : t -> t -> int
(** Severity (worst first), then rule ID, then location. *)

val errors : t list -> int
(** Count of error-severity diagnostics. *)

val matches_rule : string -> t -> bool
(** Case-insensitive match against the rule ID or the alias. *)

val filter_rules : only:string list -> t list -> t list
(** Keep only diagnostics whose rule ID or alias is listed; an empty
    list keeps everything. *)

val suppress : rules:string list -> t list -> t list
(** Drop diagnostics whose rule ID or alias is listed. *)

(** {1 Baselines}

    A baseline is the set of diagnostic {!key}s already known and
    accepted; applying it drops exactly those, so CI fails only on new
    findings.  The serialized form is one key per line ([#] comments
    allowed). *)

type baseline

val empty_baseline : baseline
val baseline_of_diagnostics : t list -> baseline
val baseline_to_string : baseline -> string
val baseline_of_string : string -> baseline
val apply_baseline : baseline -> t list -> t list

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit
(** One line: [severity RULE(alias) at node: detail]. *)

val to_text : t -> string

val render_text : design:string -> t list -> string
(** Sorted report with a [summary:] trailer line. *)

val render_json : design:string -> t list -> string
(** Stable schema:
    {v
    { "design": string,
      "diagnostics": [ { "rule": string, "alias": string,
                         "severity": "error"|"warning"|"info",
                         "node": string|null, "detail": string } ],
      "errors": int, "warnings": int, "infos": int }
    v} *)
