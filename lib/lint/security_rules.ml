module D = Diagnostic
module Netlist = Sttc_netlist.Netlist
module Query = Sttc_netlist.Query
module Sta = Sttc_analysis.Sta

type algorithm = Independent | Dependent | Parametric

type parametric_meta = {
  usl : Netlist.node_id list;
  neighbours : Netlist.node_id list;
}

type view = {
  foundry : Netlist.t;
  luts : Netlist.node_id list;
  algorithm : algorithm option;
  meta : parametric_meta option;
  original : Netlist.t option;
  library : Sttc_tech.Library.t;
  clock_factor : float;
}

let view ?algorithm ?meta ?original ?(library = Sttc_tech.Library.cmos90)
    ?(clock_factor = 1.08) ~foundry ~luts () =
  { foundry; luts; algorithm; meta; original; library; clock_factor }

type rule = Structural.rule = {
  id : string;
  alias : string;
  severity : D.severity;
  doc : string;
}

let r_trivial =
  {
    id = "SEC001";
    alias = "trivial-lut";
    severity = D.Warning;
    doc =
      "Isolated LUT fed only by primary inputs/constants whose output \
       reaches a primary output through no other LUT and no flip-flop: \
       trivially justifiable and propagatable, so it contributes almost \
       nothing to the Eq. 1 attack cost.";
  }

let r_broken_chain =
  {
    id = "SEC002";
    alias = "broken-chain";
    severity = D.Error;
    doc =
      "Under dependent selection every missing gate must sit on a \
       LUT-to-LUT dependency chain (Eq. 2); this LUT neither reaches nor \
       is reached by any other LUT.";
  }

let r_missing_neighbour =
  {
    id = "SEC003";
    alias = "missing-neighbour";
    severity = D.Error;
    doc =
      "Parametric-aware selection recorded this gate as a replaced \
       off-path neighbourhood member (Eq. 3 / Algorithm 2 USL closure), \
       but the foundry view does not show a LUT slot there.";
  }

let r_unobservable =
  {
    id = "SEC004";
    alias = "unobservable-lut";
    severity = D.Error;
    doc =
      "LUT output reaches no primary output: zero corruptibility, the \
       slot adds cost but no security.";
  }

let r_timing =
  {
    id = "SEC005";
    alias = "timing-violation";
    severity = D.Error;
    doc =
      "Post-replacement critical delay exceeds the clock budget \
       (clock_factor x original critical delay).  Error when a \
       parametric-aware selection put a LUT on the violating path, \
       warning otherwise.";
  }

let r_config_leak =
  {
    id = "SEC006";
    alias = "config-leak";
    severity = D.Error;
    doc =
      "The foundry view carries a programmed LUT configuration: the \
       secret bitstream would ship to the untrusted fab.";
  }

let r_not_a_lut =
  {
    id = "SEC007";
    alias = "not-a-lut";
    severity = D.Error;
    doc = "A listed missing-gate id is not a LUT slot in the foundry view.";
  }

let rules =
  [
    r_trivial;
    r_broken_chain;
    r_missing_neighbour;
    r_unobservable;
    r_timing;
    r_config_leak;
    r_not_a_lut;
  ]

let diag rule ?node ?severity detail =
  D.make ~rule:rule.id ~alias:rule.alias
    ~severity:(Option.value severity ~default:rule.severity)
    ?node detail

let valid_id v id = id >= 0 && id < Netlist.node_count v.foundry

let lut_name v id =
  if valid_id v id then Netlist.name v.foundry id
  else "#" ^ string_of_int id

(* Out-of-range ids are SEC007's finding; every other check must skip
   them rather than crash dereferencing the foundry view. *)
let valid_luts v = List.filter (valid_id v) v.luts

(* ---------- SEC001 ---------- *)

let check_trivial v =
  let nl = v.foundry in
  let module Int_set = Set.Make (Int) in
  let po_set = Int_set.of_list (Netlist.pos nl) in
  let trivially_propagates lut =
    (* forward through combinational CMOS logic only: stop at DFFs and at
       other LUT slots (both mask the value) *)
    let visited = Hashtbl.create 16 in
    let rec go id =
      if Hashtbl.mem visited id then false
      else begin
        Hashtbl.add visited id ();
        if Int_set.mem id po_set then true
        else
          List.exists
            (fun reader ->
              match Netlist.kind nl reader with
              | Netlist.Dff -> false
              | Netlist.Lut _ -> false
              | Netlist.Gate _ ->
                  if Int_set.mem reader po_set then true else go reader
              | Netlist.Pi | Netlist.Const _ -> false)
            (Netlist.fanouts nl id)
      end
    in
    go lut
  in
  List.filter_map
    (fun lut ->
      let fanins = Netlist.fanins nl lut in
      let all_primary =
        Array.for_all
          (fun src ->
            match Netlist.kind nl src with
            | Netlist.Pi | Netlist.Const _ -> true
            | _ -> false)
          fanins
      in
      if all_primary && Array.length fanins > 0 && trivially_propagates lut
      then
        Some
          (diag r_trivial ~node:(lut_name v lut)
             "fed only by primary inputs and observable through CMOS-only \
              logic; sensitization is immediate")
      else None)
    (valid_luts v)

(* ---------- SEC002 ---------- *)

(* Dependency here is reachability across flip-flops: Eq. 2's argument
   is that resolving LUT [i] requires resolving the LUTs feeding it,
   with the flip-flop depth [D_i] only delaying observation.  Purely
   combinational pairs are a stronger (and separately reported) subset. *)
let check_broken_chain v =
  let luts = valid_luts v in
  match v.algorithm with
  | Some Dependent when List.length luts >= 2 ->
      let chained lut =
        List.exists
          (fun other ->
            other <> lut
            && (Query.reaches v.foundry lut other
               || Query.reaches v.foundry other lut))
          luts
      in
      List.filter_map
        (fun lut ->
          if chained lut then None
          else
            Some
              (diag r_broken_chain ~node:(lut_name v lut)
                 "no other missing gate is reachable from it, and it is \
                  reachable from none (isolated from every dependency \
                  chain)"))
        luts
  | _ -> []

(* ---------- SEC003 ---------- *)

let check_missing_neighbour v =
  match v.meta with
  | None -> []
  | Some meta ->
      let module Int_set = Set.Make (Int) in
      let lut_set = Int_set.of_list v.luts in
      List.filter_map
        (fun id ->
          let is_lut_slot =
            valid_id v id
            && Int_set.mem id lut_set
            &&
            match Netlist.kind v.foundry id with
            | Netlist.Lut _ -> true
            | _ -> false
          in
          if is_lut_slot then None
          else
            Some
              (diag r_missing_neighbour ~node:(lut_name v id)
                 "recorded as a replaced off-path neighbourhood gate, but \
                  the foundry view keeps it as CMOS"))
        meta.neighbours

(* ---------- SEC004 ---------- *)

let check_unobservable v =
  let depth = Query.sequential_depth_to_po v.foundry in
  List.filter_map
    (fun lut ->
      if lut >= 0 && lut < Array.length depth && depth.(lut) = max_int then
        Some
          (diag r_unobservable ~node:(lut_name v lut)
             "no path from this LUT to any primary output; corrupting it \
              is unobservable")
      else None)
    v.luts

(* ---------- SEC005 ---------- *)

let check_timing v =
  match v.original with
  | None -> []
  | Some original ->
      let base = Sta.analyze v.library original in
      let hyb = Sta.analyze v.library v.foundry in
      let budget = v.clock_factor *. Sta.critical_delay_ps base in
      let delay = Sta.critical_delay_ps hyb in
      if delay <= budget +. 1e-6 then []
      else
        let critical = Sta.critical_path hyb in
        let lut_on_path = List.exists (fun id -> List.mem id v.luts) critical in
        let severity =
          if v.algorithm = Some Parametric && lut_on_path then D.Error
          else D.Warning
        in
        let node =
          match List.filter (fun id -> List.mem id v.luts) critical with
          | lut :: _ -> Some (lut_name v lut)
          | [] -> None
        in
        [
          diag r_timing ?node ~severity
            (Printf.sprintf
               "critical delay %.1f ps exceeds budget %.1f ps (%.2f x \
                original %.1f ps)"
               delay budget v.clock_factor
               (Sta.critical_delay_ps base));
        ]

(* ---------- SEC006 / SEC007 ---------- *)

let check_foundry_luts v =
  List.concat_map
    (fun lut ->
      if lut < 0 || lut >= Netlist.node_count v.foundry then
        [
          diag r_not_a_lut
            (Printf.sprintf "missing-gate id %d is out of range" lut);
        ]
      else
        match Netlist.kind v.foundry lut with
        | Netlist.Lut { config = Some _; _ } ->
            [
              diag r_config_leak ~node:(lut_name v lut)
                "LUT is configured in the foundry view; the secret must \
                 only live in the provisioning bitstream";
            ]
        | Netlist.Lut { config = None; _ } -> []
        | _ ->
            [
              diag r_not_a_lut ~node:(lut_name v lut)
                "listed as a missing gate but the foundry view holds a \
                 CMOS node here";
            ])
    v.luts

(* ---------- driver ---------- *)

let enabled only (rule : rule) =
  only = []
  || List.exists
       (fun r ->
         let r = String.lowercase_ascii r in
         String.lowercase_ascii rule.id = r
         || String.lowercase_ascii rule.alias = r)
       only

let run ?(only = []) v =
  let packs =
    [
      ([ r_trivial ], fun () -> check_trivial v);
      ([ r_broken_chain ], fun () -> check_broken_chain v);
      ([ r_missing_neighbour ], fun () -> check_missing_neighbour v);
      ([ r_unobservable ], fun () -> check_unobservable v);
      ([ r_timing ], fun () -> check_timing v);
      ([ r_config_leak; r_not_a_lut ], fun () -> check_foundry_luts v);
    ]
  in
  List.concat_map
    (fun (rules, check) ->
      if List.exists (enabled only) rules then check () else [])
    packs
  |> D.filter_rules ~only
