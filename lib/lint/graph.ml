module Netlist = Sttc_netlist.Netlist

type kind =
  | Pi
  | Const of bool
  | Gate of Sttc_logic.Gate_fn.t
  | Lut of { arity : int; configured : bool }
  | Dff

type node = {
  name : string;
  kind : kind;
  fanins : int array;
}

type t = {
  design : string;
  nodes : node array;
  outputs : (string * int) array;
}

let of_netlist nl =
  let kind_of = function
    | Netlist.Pi -> Pi
    | Netlist.Const v -> Const v
    | Netlist.Gate fn -> Gate fn
    | Netlist.Lut { arity; config } ->
        Lut { arity; configured = config <> None }
    | Netlist.Dff -> Dff
  in
  let nodes =
    Array.init (Netlist.node_count nl) (fun id ->
        let n = Netlist.node nl id in
        {
          name = n.Netlist.name;
          kind = kind_of n.Netlist.kind;
          fanins = Array.copy n.Netlist.fanins;
        })
  in
  { design = Netlist.design_name nl; nodes; outputs = Netlist.outputs nl }

let is_combinational = function
  | Gate _ | Lut _ -> true
  | Pi | Const _ | Dff -> false

let valid_ref t id = id >= 0 && id < Array.length t.nodes

let fanouts t =
  let f = Array.make (Array.length t.nodes) [] in
  Array.iteri
    (fun id n ->
      Array.iter
        (fun src -> if valid_ref t src then f.(src) <- id :: f.(src))
        n.fanins)
    t.nodes;
  Array.map List.rev f
