(** Shared dataflow substrate of the semantic (SEM) rule pack.

    One [compute] per analysis run produces everything the rules read:

    - three-valued {e constant propagation} (all sources X — what the
      circuit forces regardless of inputs, state or missing-gate
      contents);
    - a {e taint} bit per node: combinationally downstream of an
      unconfigured LUT, where no two-valued claim is sound;
    - random known-source {e sampling}: a per-node response signature
      (the equivalence pre-filter) and a stuck-at candidate value
      (a net that varied in any sample is definitely not constant, so
      the SAT prover is only consulted about the survivors);
    - SCOAP-style {e controllability/observability} costs with X
      blocking: unconfigured LUT outputs are uncontrollable and
      unobservable-through, which makes finite [cc]/[co] a cheap
      sufficient signal of Eq. 1 independence;
    - backward {e liveness} with constant masking (dead-logic rule);
    - the {!Sttc_netlist.Query.cone_summary} bitset sweeps and the
      sequential depths [D_i] of Eqs. 1–2. *)

type t

val infinite : int
(** Saturation value of the SCOAP cost domain (uncontrollable /
    unobservable). *)

val compute : ?patterns:int -> ?seed:int -> Sttc_netlist.Netlist.t -> t
(** Run every analysis once.  [patterns] (default 24, capped at 30)
    random known-source simulations feed the signatures; [seed] makes
    them deterministic per run. *)

val netlist : t -> Sttc_netlist.Netlist.t

val const : t -> Sttc_netlist.Netlist.node_id -> Sttc_logic.Ternary.v
(** Known iff constant propagation alone forces the node's value. *)

val tainted : t -> Sttc_netlist.Netlist.node_id -> bool
(** Combinationally downstream of (or itself) an unconfigured LUT. *)

val stuck : t -> Sttc_netlist.Netlist.node_id -> Sttc_logic.Ternary.v
(** The node's value if it was the same known value in {e every} random
    sample — a stuck-at candidate for the prover.  [X] means the node
    varied (definitely not constant) or went unknown in some sample. *)

val signature : t -> Sttc_netlist.Netlist.node_id -> int
(** Packed three-valued responses over the samples; unequal signatures
    prove two nodes inequivalent. *)

val cc0 : t -> Sttc_netlist.Netlist.node_id -> int
val cc1 : t -> Sttc_netlist.Netlist.node_id -> int
(** SCOAP 0-/1-controllability ({!infinite} when uncontrollable without
    resolving a missing gate). *)

val co : t -> Sttc_netlist.Netlist.node_id -> int
(** SCOAP observability to any primary output or flip-flop D input,
    {!infinite} when every path crosses an unconfigured LUT. *)

val live : t -> Sttc_netlist.Netlist.node_id -> bool
(** False when no value change at the node can ever reach an observation
    point, accounting for constant-masked edges (AND with a stuck-0
    sibling, ...).  Optimistic across unconfigured LUTs. *)

val summary : t -> Sttc_netlist.Query.cone_summary
val seq_depth : t -> Sttc_netlist.Netlist.node_id -> int
(** [D_i] of Eqs. 1–2: flip-flops between the node and the nearest
    primary output ([max_int] when unreachable). *)

val patterns : t -> int
(** Number of random samples actually used. *)
