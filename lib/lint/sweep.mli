(** SAT sweeping: optimization with the semantic pack's prover.

    {!Sttc_netlist.Opt.optimize} is purely local — it folds constants and
    buffers it can see one node at a time.  The SEM rules routinely prove
    {e deeper} facts: nets stuck at a value through reconvergence
    (SEM001), logic whose value can never reach a primary output
    (SEM002), and structurally different but functionally identical nets
    (SEM004).  [run] closes that gap by rewriting what the analyses
    prove — constants become [Const] nodes, dead cones (flip-flops
    included) are pinned to 0, duplicates become buffers onto their
    earliest equivalent — and re-optimizing, to a fixpoint.

    The result is functionally equivalent (every rewrite is SAT-proved)
    and SEM001/SEM004-silent at the given budget: the property the test
    suite checks on generated netlists. *)

type stats = {
  rounds : int;  (** rewrite rounds until fixpoint (0 = already clean) *)
  constants : int;  (** nets replaced by [Const] across all rounds *)
  duplicates : int;  (** nets re-routed onto an equivalent across all rounds *)
  dead : int;  (** provably unobservable nodes pinned across all rounds *)
}

val run :
  ?budget:int ->
  ?seed:int ->
  ?max_rounds:int ->
  Sttc_netlist.Netlist.t ->
  Sttc_netlist.Netlist.t * stats
(** [run nl] is [Opt.optimize nl] plus prover-backed rewriting.  [budget]
    (default 50_000 conflicts) bounds each SAT query — a query that hits
    the budget simply leaves its node alone; [seed] feeds the sampling
    pre-filter; [max_rounds] (default 4) bounds the rewrite loop.
    Equivalence candidates are capped per pass, so a pathological
    netlist converges over rounds rather than exploding in one. *)
