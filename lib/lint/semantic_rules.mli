(** Semantic (SEM) rule pack: what the circuit {e means}, proved.

    Where the structural pack checks graph shape and the security pack
    checks selection invariants, this pack reasons about values: a
    shared {!Dataflow} substrate (three-valued constant propagation,
    SCOAP testability, liveness, sampling) filters candidates, and a
    single incremental {!Prover} settles them.  Every SAT query runs
    under a conflict budget; exhaustion surfaces as the SEM006 warning,
    never as a missed error claim or a hang.

    {t
    | ID     | alias                   | severity | finding |
    |--------|-------------------------|----------|---------|
    | SEM001 | const-net               | warning  | net provably constant (propagation or SAT) |
    | SEM002 | dead-logic              | warning  | constant-masked logic, structurally connected but unobservable |
    | SEM003 | key-collapse            | error    | missing gate whose configuration influences no observation point |
    | SEM004 | redundant-node          | warning  | SAT-proved duplicate net (signature + support-hash filtered) |
    | SEM005 | const-lut-input         | warning  | unconfigured LUT fed by a proved constant (keyspace halves) |
    | SEM006 | sem-budget              | warning  | conflict budget exhausted on some queries |
    | SEM007 | easy-test-lut           | warning  | finite SCOAP cc/co with other missing gates at X |
    | SEM008 | independent-testability | error    | Eq. 1 holds for every missing gate (see below) |
    }

    SEM008 is the headline: a missing gate is {e independently
    resolvable} when every table row has an exact justification pattern
    (or is unreachable) and its output toggle propagates to a primary
    output or flip-flop D input with all other missing gates held at X —
    the static form of the paper's Eq. 1 testing attack, with the test
    length estimated as [sum npat * (D + 1)] clocks from the statically
    computed sequential depths.  The design-level error fires only when
    {e every} missing gate is resolvable in isolation (Eq. 1 verbatim) —
    independent-selection-grade weakness.  When the caller supplies the
    configuration bitstream, resolved gates are additionally substituted
    and the check re-runs (the closure an attacker would perform);
    gates that fall only in later closure rounds are reported as
    per-gate warnings, never as the error. *)

type view = {
  netlist : Sttc_netlist.Netlist.t;
      (** foundry view (or any netlist; the pack degrades gracefully
          when no unconfigured LUT is present) *)
  luts : Sttc_netlist.Netlist.node_id list;  (** unconfigured LUT slots *)
  configs : (Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t) list;
      (** optional true bitstream, enabling the SEM008 closure rounds *)
  budget : int;  (** per-query conflict budget *)
}

val default_budget : int
(** 50_000 conflicts, matching the attack layer's ATPG budget. *)

val view :
  ?luts:Sttc_netlist.Netlist.node_id list ->
  ?configs:(Sttc_netlist.Netlist.node_id * Sttc_logic.Truth.t) list ->
  ?budget:int ->
  Sttc_netlist.Netlist.t ->
  view
(** Defaults: every unconfigured LUT of the netlist, no bitstream,
    {!default_budget}. *)

val rules : Structural.rule list
(** The catalog above, in ID order. *)

val run : ?only:string list -> view -> Diagnostic.t list
(** Run the pack (or the [only] subset, by ID or alias).  Analyses are
    shared and lazy: a run restricted to dataflow-only rules never
    builds the CNF. *)
