module Netlist = Sttc_netlist.Netlist
module Transform = Sttc_netlist.Transform
module Ternary = Sttc_logic.Ternary
module Truth = Sttc_logic.Truth
module Span = Sttc_obs.Span

type view = {
  netlist : Netlist.t;
  luts : Netlist.node_id list;
  configs : (Netlist.node_id * Truth.t) list;
  budget : int;
}

let default_budget = 50_000

let view ?luts ?(configs = []) ?(budget = default_budget) netlist =
  let luts =
    match luts with
    | Some ls -> ls
    | None ->
        List.filter
          (fun id ->
            match Netlist.kind netlist id with
            | Netlist.Lut { config = None; _ } -> true
            | _ -> false)
          (Netlist.luts netlist)
  in
  { netlist; luts; configs; budget }

let rules : Structural.rule list =
  [
    {
      id = "SEM001";
      alias = "const-net";
      severity = Diagnostic.Warning;
      doc = "net provably constant over every input, state and key choice";
    };
    {
      id = "SEM002";
      alias = "dead-logic";
      severity = Diagnostic.Warning;
      doc =
        "constant-masked logic: no value change can reach an observation \
         point despite a structural path";
    };
    {
      id = "SEM003";
      alias = "key-collapse";
      severity = Diagnostic.Error;
      doc =
        "missing-gate configuration proven to influence no observation \
         point (its key bits are free: keyspace collapse)";
    };
    {
      id = "SEM004";
      alias = "redundant-node";
      severity = Diagnostic.Warning;
      doc = "two nets SAT-proved equal on every input and state";
    };
    {
      id = "SEM005";
      alias = "const-lut-input";
      severity = Diagnostic.Warning;
      doc =
        "unconfigured LUT fed by a provably-constant net: the effective \
         keyspace halves per constant input";
    };
    {
      id = "SEM006";
      alias = "sem-budget";
      severity = Diagnostic.Warning;
      doc =
        "semantic queries exhausted the conflict budget: findings are \
         incomplete, never wrong";
    };
    {
      id = "SEM007";
      alias = "easy-test-lut";
      severity = Diagnostic.Warning;
      doc =
        "SCOAP: every LUT input independently controllable and the output \
         observable with other missing gates at X (Eq. 1 attack surface)";
    };
    {
      id = "SEM008";
      alias = "independent-testability";
      severity = Diagnostic.Error;
      doc =
        "Eq. 1 prover: each missing-gate row justifiable and its toggle \
         propagatable with the other gates unresolved - the independent \
         testing attack reads the design back";
    };
  ]

let diag id node detail =
  let r = List.find (fun (r : Structural.rule) -> r.Structural.id = id) rules in
  Diagnostic.make ~rule:r.Structural.id ~alias:r.Structural.alias
    ~severity:r.Structural.severity ?node detail

let warn id node detail =
  let r = List.find (fun (r : Structural.rule) -> r.Structural.id = id) rules in
  Diagnostic.make ~rule:r.Structural.id ~alias:r.Structural.alias
    ~severity:Diagnostic.Warning ?node detail

(* ---------- SEM008: the Eq. 1 closure ---------- *)

(* One round of the independent-testability check on [nl]: a missing gate
   is resolvable iff every table row either has an exact justification
   pattern (with all other missing gates held at X) or is not even
   three-valued reachable, and forcing its output low-vs-high produces a
   known difference at an observation point under the same X stance.
   This is the static mirror of the per-row testing attack in
   [Sttc_attack.Tt_attack]. *)
type row_status = Resolvable of int (* patterns needed *) | Stuck | Unknown_rows

let check_lut prover nl l =
  let arity =
    match Netlist.kind nl l with
    | Netlist.Lut { arity; _ } -> arity
    | _ -> invalid_arg "Semantic_rules.check_lut: not a LUT"
  in
  let rows = 1 lsl arity in
  let npat = ref 0 in
  let state = ref `Ok in
  for r = 0 to rows - 1 do
    if !state = `Ok then
      match Prover.justify_row prover l ~row:r ~exact:true with
      | Prover.Holds -> incr npat
      | Prover.Cutoff -> state := `Unknown
      | Prover.Refuted -> (
          (* no exact pattern; the row is harmless only if unreachable *)
          match Prover.justify_row prover l ~row:r ~exact:false with
          | Prover.Refuted -> ()
          | Prover.Holds -> state := `Stuck
          | Prover.Cutoff -> state := `Unknown)
  done;
  match !state with
  | `Stuck -> Stuck
  | `Unknown -> Unknown_rows
  | `Ok -> (
      match Prover.toggle_observable prover l ~others:`X with
      | Prover.Holds -> Resolvable !npat
      | Prover.Refuted -> Stuck
      | Prover.Cutoff -> Unknown_rows)

(* Closure: once a round's resolvable gates are known, substitute their
   true configurations (when the caller supplied the bitstream) and
   retry the rest - exactly how the testing attack peels dependent
   selections apart when one gate happens to be independently testable. *)
let run_eq1 view dt first_prover cutoffs =
  let total_luts = List.length view.luts in
  if total_luts = 0 then []
  else begin
    let clocks_of l npat =
      let d = Dataflow.seq_depth dt l in
      let d = if d = max_int then 0 else d in
      npat * (d + 1)
    in
    let resolved = Hashtbl.create 16 in
    (* (lut, npat, clocks, round) in resolution order *)
    let order = ref [] in
    (* the first round reuses the run's shared prover, whose cutoffs the
       driver counts itself; later rounds own their prover *)
    let rec round ~n ~own nl prover pending =
      Prover.set_label prover "eq1";
      let newly =
        List.filter_map
          (fun l ->
            match check_lut prover nl l with
            | Resolvable npat -> Some (l, npat)
            | Stuck | Unknown_rows -> None)
          pending
      in
      if own then cutoffs := !cutoffs + Prover.cutoffs prover;
      List.iter
        (fun (l, npat) ->
          Hashtbl.replace resolved l ();
          order := (l, npat, clocks_of l npat, n) :: !order)
        newly;
      let pending =
        List.filter (fun l -> not (Hashtbl.mem resolved l)) pending
      in
      if newly = [] || pending = [] then ()
      else
        (* substitute what the attacker just learned and go again *)
        let known =
          List.filter (fun (l, _) -> Hashtbl.mem resolved l) view.configs
        in
        if List.length known < Hashtbl.length resolved then ()
          (* no bitstream for some resolved gate: cannot substitute *)
        else
          let nl' = Transform.program_luts view.netlist known in
          round ~n:(n + 1) ~own:true nl'
            (Prover.create ~budget:view.budget nl')
            pending
    in
    round ~n:1 ~own:false view.netlist first_prover view.luts;
    let order = List.rev !order in
    let round1 = List.filter (fun (_, _, _, n) -> n = 1) order in
    (* the design-level error is Eq. 1 verbatim: every missing gate
       justified and propagated in isolation, no substitution allowed.
       Gates that only fall in later closure rounds are attack intel,
       not independent-selection-grade weakness. *)
    if List.length round1 = total_luts then
      let clocks =
        List.fold_left (fun acc (_, _, c, _) -> acc + c) 0 order
      in
      [
        diag "SEM008" None
          (Printf.sprintf
             "independent testing attack succeeds: all %d missing gates \
              resolvable row-by-row in isolation; estimated test length \
              ~%d clocks (Eq. 1)"
             total_luts clocks);
      ]
    else
      List.map
        (fun (l, npat, clocks, n) ->
          warn "SEM008"
            (Some (Netlist.name view.netlist l))
            (if n = 1 then
               Printf.sprintf
                 "missing gate independently resolvable: %d test patterns, \
                  toggle observable with the others at X (~%d clocks)"
                 npat clocks
             else
               Printf.sprintf
                 "missing gate falls to the testing-attack closure in round \
                  %d once earlier gates are substituted (%d patterns, ~%d \
                  clocks)"
                 n npat clocks))
        order
  end

(* ---------- the driver ---------- *)

let run ?(only = []) view =
  let nl = view.netlist in
  let want id alias =
    only = []
    || List.exists
         (fun s ->
           let s = String.lowercase_ascii s in
           s = String.lowercase_ascii id || s = alias)
         only
  in
  let name id = Some (Netlist.name nl id) in
  let cutoffs = ref 0 in
  Span.with_ ~cat:"lint" "lint.sem" @@ fun () ->
  let dt = lazy (Span.with_ ~cat:"lint" "lint.sem.dataflow" (fun () -> Dataflow.compute nl)) in
  let prover =
    lazy
      (Span.with_ ~cat:"lint" "lint.sem.lower" (fun () ->
           Prover.create ~budget:view.budget nl))
  in
  let finish_prover () =
    if Lazy.is_val prover then
      cutoffs := !cutoffs + Prover.cutoffs (Lazy.force prover)
  in
  (* constant nets proved either by three-valued propagation alone or by
     one SAT refutation of the opposite value; shared by SEM001/SEM005 *)
  let const_proved =
    lazy
      (let dt = Lazy.force dt in
       let proved = Hashtbl.create 32 in
       for id = 0 to Netlist.node_count nl - 1 do
         let kind = Netlist.kind nl id in
         let interesting =
           match kind with
           | Netlist.Gate _ | Netlist.Lut { config = Some _; _ } -> true
           | _ -> false
         in
         if interesting && not (Dataflow.tainted dt id) then
           match Dataflow.const dt id with
           | (Ternary.Zero | Ternary.One) as v ->
               Hashtbl.replace proved id (v, "constant propagation")
           | Ternary.X -> (
               match Dataflow.stuck dt id with
               | Ternary.X -> ()
               | v ->
                   let p = Lazy.force prover in
                   Prover.set_label p "const";
                   let opposite =
                     if Ternary.equal v Ternary.One then Ternary.Zero
                     else Ternary.One
                   in
                   (match Prover.value_reachable p id opposite with
                   | Prover.Refuted -> Hashtbl.replace proved id (v, "SAT")
                   | Prover.Holds -> ()
                   | Prover.Cutoff -> ()))
       done;
       proved)
  in
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let rule id alias f =
    if want id alias then
      Span.with_ ~cat:"lint" ("lint.sem." ^ id) f
  in

  rule "SEM001" "const-net" (fun () ->
      Hashtbl.iter
        (fun id (v, how) ->
          emit
            (diag "SEM001" (name id)
               (Printf.sprintf "provably stuck at %s (%s)"
                  (if Ternary.equal v Ternary.One then "1" else "0")
                  how)))
        (Lazy.force const_proved));

  rule "SEM002" "dead-logic" (fun () ->
      let dt = Lazy.force dt in
      let summary = Dataflow.summary dt in
      let is_po = Hashtbl.create 16 in
      List.iter (fun id -> Hashtbl.replace is_po id ()) (Netlist.pos nl);
      for id = 0 to Netlist.node_count nl - 1 do
        if
          Netlist.is_combinational (Netlist.kind nl id)
          && (not (Dataflow.live dt id))
          && (not (Hashtbl.mem is_po id))
          && summary.Sttc_netlist.Query.obs_points.(id) > 0
        then
          emit
            (diag "SEM002" (name id)
               "dead logic: every path to an observation point is masked \
                by a propagated constant")
      done);

  rule "SEM003" "key-collapse" (fun () ->
      let p = Lazy.force prover in
      Prover.set_label p "collapse";
      List.iter
        (fun l ->
          match Prover.toggle_observable p l ~others:`Free with
          | Prover.Refuted ->
              emit
                (diag "SEM003" (name l)
                   "configuration influences no primary output or flip-flop \
                    under any behaviour of the other missing gates: its key \
                    bits are free (keyspace collapse)")
          | Prover.Holds | Prover.Cutoff -> ())
        view.luts);

  rule "SEM004" "redundant-node" (fun () ->
      let dt = Lazy.force dt in
      let summary = Dataflow.summary dt in
      let consts = Lazy.force const_proved in
      let p = Lazy.force prover in
      Prover.set_label p "equiv";
      (* bucket by sampled response + input-support hash; only pairs that
         agree on both are worth a SAT query *)
      let buckets = Hashtbl.create 64 in
      for id = 0 to Netlist.node_count nl - 1 do
        (* buffers are excluded: a BUF is equal to its source by
           definition, not by discovery, and the only ones [Opt] cannot
           collapse are primary-output aliases *)
        let eligible =
          match Netlist.kind nl id with
          | Netlist.Gate Sttc_logic.Gate_fn.Buf -> false
          | Netlist.Gate _ | Netlist.Lut { config = Some _; _ } -> true
          | _ -> false
        in
        if
          eligible
          && (not (Dataflow.tainted dt id))
          && not (Hashtbl.mem consts id)
        then begin
          let key =
            ( Dataflow.signature dt id,
              summary.Sttc_netlist.Query.support_hash.(id) )
          in
          let prev = try Hashtbl.find buckets key with Not_found -> [] in
          Hashtbl.replace buckets key (id :: prev)
        end
      done;
      let budget_pairs = ref 48 in
      Hashtbl.iter
        (fun _ members ->
          match List.rev members with
          | [] | [ _ ] -> ()
          | first :: rest ->
              List.iter
                (fun other ->
                  if !budget_pairs > 0 then begin
                    decr budget_pairs;
                    match Prover.equivalent p first other with
                    | Prover.Holds ->
                        emit
                          (diag "SEM004" (name other)
                             (Printf.sprintf
                                "SAT-proved equal to %s on every input and \
                                 state"
                                (Netlist.name nl first)))
                    | Prover.Refuted | Prover.Cutoff -> ()
                  end)
                rest)
        buckets);

  rule "SEM005" "const-lut-input" (fun () ->
      let consts = Lazy.force const_proved in
      List.iter
        (fun l ->
          let fanins = Netlist.fanins nl l in
          let n_const =
            Array.fold_left
              (fun acc s ->
                let is_const =
                  Hashtbl.mem consts s
                  ||
                  match Netlist.kind nl s with
                  | Netlist.Const _ -> true
                  | _ -> false
                in
                if is_const then acc + 1 else acc)
              0 fanins
          in
          if n_const > 0 then
            emit
              (diag "SEM005" (name l)
                 (Printf.sprintf
                    "%d of %d inputs provably constant: only 2^%d of the \
                     2^%d table rows are live (keyspace collapse)"
                    n_const (Array.length fanins)
                    (Array.length fanins - n_const)
                    (Array.length fanins))))
        view.luts);

  rule "SEM007" "easy-test-lut" (fun () ->
      let dt = Lazy.force dt in
      List.iter
        (fun l ->
          let fanins = Netlist.fanins nl l in
          let controllable =
            Array.for_all
              (fun s ->
                Dataflow.cc0 dt s < Dataflow.infinite
                && Dataflow.cc1 dt s < Dataflow.infinite)
              fanins
          in
          if controllable && Dataflow.co dt l < Dataflow.infinite then
            emit
              (diag "SEM007" (name l)
                 (Printf.sprintf
                    "every input controllable (max cc %d) and output \
                     observable (co %d) without resolving another missing \
                     gate - prime Eq. 1 target"
                    (Array.fold_left
                       (fun acc s ->
                         max acc
                           (max (Dataflow.cc0 dt s) (Dataflow.cc1 dt s)))
                       0 fanins)
                    (Dataflow.co dt l))))
        view.luts);

  rule "SEM008" "independent-testability" (fun () ->
      if view.luts <> [] then begin
        let dt = Lazy.force dt in
        let p = Lazy.force prover in
        List.iter emit (run_eq1 view dt p cutoffs)
      end);

  finish_prover ();
  if want "SEM006" "sem-budget" && !cutoffs > 0 then
    emit
      (warn "SEM006" None
         (Printf.sprintf
            "%d semantic quer%s exhausted the %d-conflict budget: the \
             report is incomplete, not wrong (raise --budget to decide \
             them)"
            !cutoffs
            (if !cutoffs = 1 then "y" else "ies")
            view.budget));
  List.rev !ds
