(** Raw design graphs: the representation the structural rule pack runs
    on.

    [Netlist.t] enforces most structural invariants at construction time
    (no combinational cycles, no dangling references, unique names), so a
    finalized netlist can never exhibit the worst violations.  The lint
    rules therefore operate on this unvalidated mirror, which can be built
    from a finalized netlist ({!of_netlist}) {e or} assembled by hand —
    by tests exercising each rule, and by front ends that want to lint a
    design {e before} attempting to build it. *)

type kind =
  | Pi
  | Const of bool
  | Gate of Sttc_logic.Gate_fn.t
  | Lut of { arity : int; configured : bool }
  | Dff

type node = {
  name : string;
  kind : kind;
  fanins : int array;
      (** indices into [nodes]; out-of-range (e.g. [-1]) marks an
          unresolved reference *)
}

type t = {
  design : string;
  nodes : node array;
  outputs : (string * int) array;  (** primary outputs as (name, driver) *)
}

val of_netlist : Sttc_netlist.Netlist.t -> t

val is_combinational : kind -> bool
(** True for [Gate] and [Lut]. *)

val valid_ref : t -> int -> bool

val fanouts : t -> int list array
(** Reader lists per node (invalid fanin references ignored). *)
