(** Structural rule pack: netlist well-formedness.

    These rules run on any design graph — typically {!Graph.of_netlist}
    of a base netlist, a foundry view or a programmed hybrid — and catch
    the malformations that would make every downstream security or PPA
    number meaningless.

    {t
    | ID     | alias          | severity | finding |
    |--------|----------------|----------|---------|
    | STR001 | comb-loop      | error    | combinational cycle (no flip-flop on the loop) |
    | STR002 | undriven-net   | error    | fanin reference to no driver (undefined / unwired) |
    | STR003 | multi-driver   | error    | one signal name driven by several nodes |
    | STR004 | dangling-gate  | warning  | combinational node reaching no output or flip-flop |
    | STR005 | arity-mismatch | error    | fan-in count vs. gate function / tech-library cell |
    | STR006 | duplicate-name | error    | duplicate primary-output name |
    | STR007 | no-output      | error    | design has no primary outputs |
    } *)

type rule = {
  id : string;
  alias : string;
  severity : Diagnostic.severity;
  doc : string;
}

val rules : rule list
(** The catalog above, in ID order. *)

val run :
  ?only:string list ->
  ?library:Sttc_tech.Library.t ->
  Graph.t ->
  Diagnostic.t list
(** Run the pack (or the [only] subset, by ID or alias) on a raw graph.
    [library] (default {!Sttc_tech.Library.cmos90}) supplies the cell
    models for STR005. *)

val check :
  ?only:string list ->
  ?library:Sttc_tech.Library.t ->
  Sttc_netlist.Netlist.t ->
  Diagnostic.t list
(** [run] on {!Graph.of_netlist}. *)
