(** Facade over the lint subsystem: rule catalog, combined runs, and the
    CI gate.

    Typical use:
    {[
      let ds = Lint.structural netlist in
      print_string (Diagnostic.render_text ~design ds);
      exit (Lint.exit_code ds)
    ]} *)

val catalog : Structural.rule list
(** Every rule of all three packs — structural, security, semantic — in
    ID order within each pack. *)

val find_rule : string -> Structural.rule option
(** Look up by ID or alias, case-insensitively; covers STR, SEC and SEM
    rules alike. *)

val catalog_text : unit -> string
(** Human-readable rule listing for [--list-rules], grouped by pack. *)

val structural :
  ?only:string list ->
  ?library:Sttc_tech.Library.t ->
  Sttc_netlist.Netlist.t ->
  Diagnostic.t list
(** The structural pack on a netlist ({!Structural.check}). *)

val hybrid :
  ?only:string list -> Security_rules.view -> Diagnostic.t list
(** Both packs on a hybrid: structural rules on the foundry view plus
    the security pack on the view. *)

val semantic :
  ?only:string list -> Semantic_rules.view -> Diagnostic.t list
(** The semantic pack ({!Semantic_rules.run}): dataflow- and SAT-backed
    findings, including the Eq. 1 independent-testability prover. *)

val apply :
  ?only:string list ->
  ?suppress:string list ->
  ?baseline:Diagnostic.baseline ->
  Diagnostic.t list ->
  Diagnostic.t list
(** Post-process a diagnostic list: keep [only], drop [suppress], drop
    baselined entries, sort worst-first. *)

val exit_code : Diagnostic.t list -> int
(** 0 when no error-severity diagnostic remains, 1 otherwise — the CI
    contract of [sttc lint]. *)
