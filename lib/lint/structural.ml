module D = Diagnostic
module Gate_fn = Sttc_logic.Gate_fn
module Truth = Sttc_logic.Truth

type rule = {
  id : string;
  alias : string;
  severity : D.severity;
  doc : string;
}

let r_comb_loop =
  {
    id = "STR001";
    alias = "comb-loop";
    severity = D.Error;
    doc =
      "Combinational cycle: a feedback loop that passes through no \
       flip-flop (Tarjan SCC over the gate graph).";
  }

let r_undriven =
  {
    id = "STR002";
    alias = "undriven-net";
    severity = D.Error;
    doc =
      "Undriven or floating net: a fanin that references no driver \
       (undefined signal, unwired flip-flop input).";
  }

let r_multi_driver =
  {
    id = "STR003";
    alias = "multi-driver";
    severity = D.Error;
    doc = "One signal name driven by more than one node.";
  }

let r_dangling =
  {
    id = "STR004";
    alias = "dangling-gate";
    severity = D.Warning;
    doc =
      "Dead logic: a combinational node from which no primary output \
       and no flip-flop can be reached.";
  }

let r_arity =
  {
    id = "STR005";
    alias = "arity-mismatch";
    severity = D.Error;
    doc =
      "Fan-in count disagrees with the node's gate function, or the \
       technology library has no cell for it.";
  }

let r_dup_name =
  {
    id = "STR006";
    alias = "duplicate-name";
    severity = D.Error;
    doc = "Duplicate primary-output name.";
  }

let r_no_output =
  {
    id = "STR007";
    alias = "no-output";
    severity = D.Error;
    doc = "The design declares no primary output.";
  }

let rules =
  [
    r_comb_loop;
    r_undriven;
    r_multi_driver;
    r_dangling;
    r_arity;
    r_dup_name;
    r_no_output;
  ]

let diag rule ?node detail =
  D.make ~rule:rule.id ~alias:rule.alias ~severity:rule.severity ?node detail

(* ---------- STR001: Tarjan SCC over combinational edges ---------- *)

(* Edges: src -> dst for every valid fanin reference of a combinational
   dst.  Flip-flops break loops (their D input is a sequential edge), so
   any SCC of size > 1 — or a combinational self-loop — is a
   combinational cycle. *)
let check_comb_loop (g : Graph.t) =
  let n = Array.length g.Graph.nodes in
  let succs =
    (* src -> combinational readers *)
    let f = Array.make n [] in
    Array.iteri
      (fun dst node ->
        if Graph.is_combinational node.Graph.kind then
          Array.iter
            (fun src -> if Graph.valid_ref g src then f.(src) <- dst :: f.(src))
            node.Graph.fanins)
      g.Graph.nodes;
    f
  in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let sccs = ref [] in
  (* Iterative Tarjan: the work stack holds (node, remaining succs). *)
  let strongconnect root =
    let work = ref [ (root, succs.(root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !work <> [] do
      match !work with
      | [] -> ()
      | (v, remaining) :: rest -> (
          match remaining with
          | w :: tail ->
              work := (v, tail) :: rest;
              if index.(w) < 0 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                work := (w, succs.(w)) :: !work
              end
              else if on_stack.(w) then
                lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
              work := rest;
              (match rest with
              | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(v)
              | [] -> ());
              if lowlink.(v) = index.(v) then begin
                (* pop the SCC rooted at v *)
                let scc = ref [] in
                let continue = ref true in
                while !continue do
                  match !stack with
                  | [] -> continue := false
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      scc := w :: !scc;
                      if w = v then continue := false
                done;
                sccs := !scc :: !sccs
              end)
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  let self_loop v = List.mem v succs.(v) in
  List.filter_map
    (fun scc ->
      match scc with
      | [] -> None
      | [ v ] when not (self_loop v) -> None
      | members ->
          let names =
            List.map (fun v -> g.Graph.nodes.(v).Graph.name) members
            |> List.sort String.compare
          in
          let anchor = List.hd names in
          Some
            (diag r_comb_loop ~node:anchor
               (Printf.sprintf
                  "combinational cycle through %d node(s): %s" (List.length members)
                  (String.concat " -> " names))))
    !sccs

(* ---------- STR002: undriven / floating references ---------- *)

let check_undriven (g : Graph.t) =
  let bad = ref [] in
  Array.iter
    (fun node ->
      let missing =
        Array.to_list node.Graph.fanins
        |> List.filter (fun src -> not (Graph.valid_ref g src))
      in
      if missing <> [] then
        bad :=
          diag r_undriven ~node:node.Graph.name
            (Printf.sprintf "%d fanin(s) have no driver" (List.length missing))
          :: !bad)
    g.Graph.nodes;
  Array.iter
    (fun (name, drv) ->
      if not (Graph.valid_ref g drv) then
        bad :=
          diag r_undriven ~node:name
            "primary output references no driver"
          :: !bad)
    g.Graph.outputs;
  List.rev !bad

(* ---------- STR003: multiple drivers of one name ---------- *)

let check_multi_driver (g : Graph.t) =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun node ->
      let name = node.Graph.name in
      Hashtbl.replace seen name (1 + Option.value (Hashtbl.find_opt seen name) ~default:0))
    g.Graph.nodes;
  Hashtbl.fold
    (fun name count acc ->
      if count > 1 then
        diag r_multi_driver ~node:name
          (Printf.sprintf "signal is driven by %d nodes" count)
        :: acc
      else acc)
    seen []
  |> List.sort D.compare

(* ---------- STR004: dangling combinational nodes ---------- *)

let check_dangling (g : Graph.t) =
  let n = Array.length g.Graph.nodes in
  let useful = Array.make n false in
  let rec mark v =
    if Graph.valid_ref g v && not (useful.(v)) then begin
      useful.(v) <- true;
      Array.iter mark g.Graph.nodes.(v).Graph.fanins
    end
  in
  Array.iter (fun (_, drv) -> mark drv) g.Graph.outputs;
  Array.iteri
    (fun _ node ->
      match node.Graph.kind with
      | Graph.Dff -> Array.iter mark node.Graph.fanins
      | _ -> ())
    g.Graph.nodes;
  let out = ref [] in
  Array.iteri
    (fun id node ->
      if Graph.is_combinational node.Graph.kind && not useful.(id) then
        out :=
          diag r_dangling ~node:node.Graph.name
            "drives no primary output and no flip-flop (dead logic)"
          :: !out)
    g.Graph.nodes;
  List.rev !out

(* ---------- STR005: arity / technology-cell mismatches ---------- *)

let check_arity ~library (g : Graph.t) =
  let out = ref [] in
  let bad node detail = out := diag r_arity ~node detail :: !out in
  Array.iter
    (fun node ->
      let fi = Array.length node.Graph.fanins in
      let name = node.Graph.name in
      match node.Graph.kind with
      | Graph.Pi | Graph.Const _ ->
          if fi <> 0 then
            bad name (Printf.sprintf "source node carries %d fanin(s)" fi)
      | Graph.Dff ->
          if fi <> 1 then
            bad name (Printf.sprintf "flip-flop has %d fanins (wants 1)" fi)
      | Graph.Gate fn -> (
          match Gate_fn.validate fn with
          | () ->
              if fi <> Gate_fn.arity fn then
                bad name
                  (Printf.sprintf "%s has %d fanins (cell wants %d)"
                     (Gate_fn.to_string fn) fi (Gate_fn.arity fn))
              else begin
                match Sttc_tech.Library.gate_cell library fn with
                | (_ : Sttc_tech.Cell.t) -> ()
                | exception Invalid_argument m ->
                    bad name ("no technology cell: " ^ m)
              end
          | exception Invalid_argument m -> bad name ("invalid gate: " ^ m))
      | Graph.Lut { arity; _ } ->
          if arity < 1 || arity > Truth.max_arity then
            bad name
              (Printf.sprintf "LUT arity %d outside [1, %d]" arity
                 Truth.max_arity)
          else if fi <> arity then
            bad name
              (Printf.sprintf "LUT has %d fanins (arity says %d)" fi arity)
          else begin
            match Sttc_tech.Library.lut_cell library arity with
            | (_ : Sttc_tech.Cell.t) -> ()
            | exception Invalid_argument m ->
                bad name ("no technology cell: " ^ m)
          end)
    g.Graph.nodes;
  List.rev !out

(* ---------- STR006 / STR007: output declarations ---------- *)

let check_dup_name (g : Graph.t) =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (name, _) ->
      Hashtbl.replace seen name
        (1 + Option.value (Hashtbl.find_opt seen name) ~default:0))
    g.Graph.outputs;
  Hashtbl.fold
    (fun name count acc ->
      if count > 1 then
        diag r_dup_name ~node:name
          (Printf.sprintf "primary output declared %d times" count)
        :: acc
      else acc)
    seen []
  |> List.sort D.compare

let check_no_output (g : Graph.t) =
  if Array.length g.Graph.outputs = 0 then
    [ diag r_no_output "design has no primary outputs" ]
  else []

(* ---------- driver ---------- *)

let enabled only rule =
  only = []
  || List.exists
       (fun r ->
         let r = String.lowercase_ascii r in
         String.lowercase_ascii rule.id = r
         || String.lowercase_ascii rule.alias = r)
       only

let run ?(only = []) ?(library = Sttc_tech.Library.cmos90) g =
  let packs =
    [
      (r_comb_loop, fun () -> check_comb_loop g);
      (r_undriven, fun () -> check_undriven g);
      (r_multi_driver, fun () -> check_multi_driver g);
      (r_dangling, fun () -> check_dangling g);
      (r_arity, fun () -> check_arity ~library g);
      (r_dup_name, fun () -> check_dup_name g);
      (r_no_output, fun () -> check_no_output g);
    ]
  in
  List.concat_map
    (fun (rule, check) -> if enabled only rule then check () else [])
    packs

let check ?only ?library nl = run ?only ?library (Graph.of_netlist nl)
