module Netlist = Sttc_netlist.Netlist
module Query = Sttc_netlist.Query
module Ternary = Sttc_logic.Ternary
module Truth = Sttc_logic.Truth
module Gate_fn = Sttc_logic.Gate_fn
module Rng = Sttc_util.Rng

let infinite = 1_000_000

type t = {
  nl : Netlist.t;
  const : Ternary.v array;
  tainted : bool array;
  stuck : Ternary.v array;
  signature : int array;
  cc0 : int array;
  cc1 : int array;
  co : int array;
  live : bool array;
  summary : Query.cone_summary;
  seq_depth : int array;
  patterns : int;
}

(* saturating arithmetic in the SCOAP cost domain *)
let ( +! ) a b = if a >= infinite || b >= infinite then infinite else a + b
let sat v = if v >= infinite then infinite else v

(* ---------- ternary evaluation under one source assignment ---------- *)

(* [eval_pass nl source_value] evaluates every node: sources take
   [source_value id], unconfigured LUTs yield X, everything else follows
   the pessimistic three-valued gate semantics of {!Sttc_logic.Ternary}. *)
let eval_pass nl order source_value =
  let n = Netlist.node_count nl in
  let v = Array.make n Ternary.X in
  Array.iter
    (fun id ->
      let node = Netlist.node nl id in
      match node.Netlist.kind with
      | Netlist.Pi | Netlist.Dff -> v.(id) <- source_value id
      | Netlist.Const b -> v.(id) <- Ternary.of_bool b
      | Netlist.Gate fn ->
          v.(id) <-
            Ternary.eval_gate fn
              (Array.map (fun s -> v.(s)) node.Netlist.fanins)
      | Netlist.Lut { config = Some c; _ } ->
          v.(id) <-
            Ternary.eval_truth c
              (Array.map (fun s -> v.(s)) node.Netlist.fanins)
      | Netlist.Lut { config = None; _ } -> v.(id) <- Ternary.X)
    order;
  v

(* ---------- LUT taint: combinationally downstream of a missing gate *)

let compute_taint nl order =
  let taint = Array.make (Netlist.node_count nl) false in
  Array.iter
    (fun id ->
      match Netlist.kind nl id with
      | Netlist.Lut { config = None; _ } -> taint.(id) <- true
      | k when Netlist.is_combinational k ->
          taint.(id) <-
            Array.exists (fun s -> taint.(s)) (Netlist.fanins nl id)
      | _ -> ())
    order;
  taint

(* ---------- SCOAP controllability / observability ---------- *)

(* Standard SCOAP cost recurrences, with two three-valued twists: an
   unconfigured LUT's output is uncontrollable (the attacker cannot set
   a value they do not know), and observability through an unconfigured
   LUT is blocked — both sides of the Eq. 1 independence question. *)
let compute_scoap nl order =
  let n = Netlist.node_count nl in
  let cc0 = Array.make n infinite and cc1 = Array.make n infinite in
  let pair id = (cc0.(id), cc1.(id)) in
  (* running (cost of 0, cost of 1) over a parity chain *)
  let xor_fold pairs =
    match Array.length pairs with
    | 0 -> (infinite, infinite)
    | _ ->
        let c0 = ref (fst pairs.(0)) and c1 = ref (snd pairs.(0)) in
        for k = 1 to Array.length pairs - 1 do
          let d0, d1 = pairs.(k) in
          let n0 = min (!c0 +! d0) (!c1 +! d1)
          and n1 = min (!c0 +! d1) (!c1 +! d0) in
          c0 := n0;
          c1 := n1
        done;
        (!c0, !c1)
  in
  Array.iter
    (fun id ->
      let node = Netlist.node nl id in
      let fp () = Array.map pair node.Netlist.fanins in
      let set (a, b) =
        cc0.(id) <- sat (a +! 1);
        cc1.(id) <- sat (b +! 1)
      in
      match node.Netlist.kind with
      | Netlist.Pi | Netlist.Dff ->
          cc0.(id) <- 1;
          cc1.(id) <- 1
      | Netlist.Const b ->
          if b then cc1.(id) <- 1 else cc0.(id) <- 1
      | Netlist.Gate fn -> (
          let ps = fp () in
          let sum sel = Array.fold_left (fun acc p -> acc +! sel p) 0 ps in
          let mn sel =
            Array.fold_left (fun acc p -> min acc (sel p)) infinite ps
          in
          match fn with
          | Gate_fn.Buf -> set (fst ps.(0), snd ps.(0))
          | Gate_fn.Not -> set (snd ps.(0), fst ps.(0))
          | Gate_fn.And _ -> set (mn fst, sum snd)
          | Gate_fn.Nand _ -> set (sum snd, mn fst)
          | Gate_fn.Or _ -> set (sum fst, mn snd)
          | Gate_fn.Nor _ -> set (mn snd, sum fst)
          | Gate_fn.Xor _ -> set (xor_fold ps)
          | Gate_fn.Xnor _ ->
              let a, b = xor_fold ps in
              set (b, a))
      | Netlist.Lut { config = Some c; arity } ->
          (* cost of a row is the sum of controlling each input to the
             row's bit; the table's cheapest 0-row / 1-row wins *)
          let ps = fp () in
          let best0 = ref infinite and best1 = ref infinite in
          for r = 0 to (1 lsl arity) - 1 do
            let cost = ref 0 in
            for k = 0 to arity - 1 do
              let c0, c1 = ps.(k) in
              cost := !cost +! (if (r lsr k) land 1 = 1 then c1 else c0)
            done;
            if Truth.row c r then best1 := min !best1 !cost
            else best0 := min !best0 !cost
          done;
          set (!best0, !best1)
      | Netlist.Lut { config = None; _ } -> ())
    order;
  (* observability: reverse pass from the observation points *)
  let co = Array.make n infinite in
  List.iter (fun id -> co.(id) <- 0) (Netlist.pos nl);
  List.iter
    (fun ff ->
      let d = (Netlist.fanins nl ff).(0) in
      co.(d) <- 0)
    (Netlist.dffs nl);
  for i = Array.length order - 1 downto 0 do
    let id = order.(i) in
    List.iter
      (fun reader ->
        let node = Netlist.node nl reader in
        let through =
          match node.Netlist.kind with
          | Netlist.Dff -> Some 0 (* the D input is an observation point *)
          | Netlist.Gate fn ->
              let side sel =
                Array.fold_left
                  (fun acc s -> if s = id then acc else acc +! sel (pair s))
                  0 node.Netlist.fanins
              in
              let cost =
                match fn with
                | Gate_fn.Buf | Gate_fn.Not -> 0
                | Gate_fn.And _ | Gate_fn.Nand _ -> side snd
                | Gate_fn.Or _ | Gate_fn.Nor _ -> side fst
                | Gate_fn.Xor _ | Gate_fn.Xnor _ ->
                    side (fun (a, b) -> min a b)
              in
              Some (co.(reader) +! cost +! 1)
          | Netlist.Lut { config = Some c; _ } ->
              let depends = ref false in
              Array.iteri
                (fun k s -> if s = id && Truth.depends_on c k then depends := true)
                node.Netlist.fanins;
              if not !depends then None
              else
                let cost =
                  Array.fold_left
                    (fun acc s ->
                      if s = id then acc
                      else
                        let c0, c1 = pair s in
                        acc +! min c0 c1)
                    0 node.Netlist.fanins
                in
                Some (co.(reader) +! cost +! 1)
          | Netlist.Lut { config = None; _ } ->
              None (* X blocks: propagation would need the missing table *)
          | _ -> None
        in
        match through with
        | Some cost ->
            let cost = if cost = 0 && co.(id) = 0 then 0 else cost in
            co.(id) <- min co.(id) (sat cost)
        | None -> ())
      (Netlist.fanouts nl id)
  done;
  (cc0, cc1, co)

(* ---------- liveness: can the node's value ever matter? ---------- *)

(* Backward "transparency" analysis.  An edge from [src] into a reader
   transmits unless a sibling input is a propagated constant that forces
   the reader's output (0 on an AND, 1 on an OR, ...) or the reader is a
   configured LUT that provably ignores the position.  Unconfigured LUTs
   are treated as transparent: the missing table could be anything, so
   deadness through them is never claimed. *)
let compute_live nl order const =
  let n = Netlist.node_count nl in
  let live = Array.make n false in
  let is_po = Array.make n false in
  List.iter (fun id -> is_po.(id) <- true) (Netlist.pos nl);
  let transmits reader src =
    let node = Netlist.node nl reader in
    match node.Netlist.kind with
    | Netlist.Dff -> true
    | Netlist.Gate fn -> (
        let blocked v =
          Array.exists
            (fun s -> s <> src && Ternary.equal const.(s) v)
            node.Netlist.fanins
        in
        match fn with
        | Gate_fn.Buf | Gate_fn.Not -> true
        | Gate_fn.And _ | Gate_fn.Nand _ -> not (blocked Ternary.Zero)
        | Gate_fn.Or _ | Gate_fn.Nor _ -> not (blocked Ternary.One)
        | Gate_fn.Xor _ | Gate_fn.Xnor _ -> true)
    | Netlist.Lut { config = Some c; _ } ->
        let depends = ref false in
        Array.iteri
          (fun k s -> if s = src && Truth.depends_on c k then depends := true)
          node.Netlist.fanins;
        !depends
    | Netlist.Lut { config = None; _ } -> true
    | _ -> false
  in
  (* fixpoint: one reverse-topological sweep settles the combinational
     part; repeating until stable lets liveness cross flip-flop
     boundaries (a DFF is live only if its output is) *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = Array.length order - 1 downto 0 do
      let id = order.(i) in
      if not live.(id) then begin
        let now =
          is_po.(id)
          || List.exists
               (fun reader -> live.(reader) && transmits reader id)
               (Netlist.fanouts nl id)
        in
        if now then begin
          live.(id) <- true;
          changed := true
        end
      end
    done
  done;
  live

(* ---------- entry point ---------- *)

let max_patterns = 30 (* 2 bits per pattern must fit an OCaml int *)

let compute ?(patterns = 24) ?(seed = 0xda7a) nl =
  let patterns = max 1 (min patterns max_patterns) in
  Netlist.warm nl;
  let order = Netlist.topo_order nl in
  let n = Netlist.node_count nl in
  (* constant propagation: every source unknown *)
  let const = eval_pass nl order (fun _ -> Ternary.X) in
  let tainted = compute_taint nl order in
  (* random known-source sampling: signatures and stuck-at candidates *)
  let rng = Rng.make seed in
  let signature = Array.make n 0 in
  let stuck = Array.make n Ternary.X in
  let varied = Array.make n false in
  for p = 0 to patterns - 1 do
    let v = eval_pass nl order (fun _ -> Ternary.of_bool (Rng.bool rng)) in
    for id = 0 to n - 1 do
      let code =
        match v.(id) with Ternary.Zero -> 1 | Ternary.One -> 2 | Ternary.X -> 3
      in
      signature.(id) <- signature.(id) lor (code lsl (2 * p));
      (if p = 0 then stuck.(id) <- v.(id)
       else if not (Ternary.equal stuck.(id) v.(id)) then varied.(id) <- true);
      if not (Ternary.is_known v.(id)) then varied.(id) <- true
    done
  done;
  for id = 0 to n - 1 do
    if varied.(id) then stuck.(id) <- Ternary.X
  done;
  let cc0, cc1, co = compute_scoap nl order in
  let live = compute_live nl order const in
  let summary = Query.cone_summary nl in
  let seq_depth = Query.sequential_depth_to_po nl in
  {
    nl;
    const;
    tainted;
    stuck;
    signature;
    cc0;
    cc1;
    co;
    live;
    summary;
    seq_depth;
    patterns;
  }

let netlist t = t.nl
let const t id = t.const.(id)
let tainted t id = t.tainted.(id)
let stuck t id = t.stuck.(id)
let signature t id = t.signature.(id)
let cc0 t id = t.cc0.(id)
let cc1 t id = t.cc1.(id)
let co t id = t.co.(id)
let live t id = t.live.(id)
let summary t = t.summary
let seq_depth t id = t.seq_depth.(id)
let patterns t = t.patterns
