module Netlist = Sttc_netlist.Netlist
module Cnf = Sttc_logic.Cnf
module Sat = Sttc_logic.Sat
module Truth = Sttc_logic.Truth
module Ternary = Sttc_logic.Ternary
module Gate_fn = Sttc_logic.Gate_fn

type answer = Holds | Refuted | Cutoff

(* Dual-rail ternary encoding: every net [n] carries two literals
   [(t, f)] with the invariant not-both — (1,0) is known 1, (0,1) is
   known 0, (0,0) is X.  Sources (PIs, flip-flop outputs) are total
   (t XOR f): the scan-capable attacker of Section IV-A controls them.
   An unconfigured LUT's rails are left free under the not-both clause
   only, so one encoding answers every per-query stance by assumption:
   force (0,0) to model "this missing gate is unresolved" (the ternary
   attack semantics of the testing attack), force a known value to probe
   it, or leave the rails free to quantify over every possible content.
   Free rails over-approximate the keyed behaviours, which keeps every
   UNSAT-based claim sound.

   Copy B duplicates only the logic combinationally downstream of a
   missing gate and shares everything else, giving the justify/propagate
   miter of Eq. 1 for the price of the affected cone. *)

type rails = { t : Cnf.lit; f : Cnf.lit }

type t = {
  nl : Netlist.t;
  cnf : Cnf.t;
  solver : Sat.Solver.t;
  budget : int;
  a : rails array; (* copy A, indexed by node id *)
  b : rails array; (* copy B; shares A's literals off the LUT cones *)
  luts : Netlist.node_id list; (* unconfigured LUTs, id order *)
  downstream : bool array;
  any_diff : Cnf.lit option;
      (* some observation point differs (known, opposite) between copies *)
  mutable label : string;
  mutable queries : int;
  mutable cutoffs : int;
  mutable conflicts : int;
  mutable seconds : float;
}

let and_lits cnf = function
  | [] -> invalid_arg "Prover.and_lits: empty"
  | [ l ] -> l
  | lits ->
      let v = Cnf.fresh_var cnf in
      Cnf.encode_and cnf v lits;
      v

let or_lits cnf = function
  | [] -> invalid_arg "Prover.or_lits: empty"
  | [ l ] -> l
  | lits ->
      let v = Cnf.fresh_var cnf in
      Cnf.encode_or cnf v lits;
      v

(* rails of one gate output from its fanin rails *)
let encode_gate cnf fn (ins : rails array) =
  let ts = Array.to_list (Array.map (fun r -> r.t) ins)
  and fs = Array.to_list (Array.map (fun r -> r.f) ins) in
  let xor_pair x y =
    {
      t = or_lits cnf [ and_lits cnf [ x.t; y.f ]; and_lits cnf [ x.f; y.t ] ];
      f = or_lits cnf [ and_lits cnf [ x.t; y.t ]; and_lits cnf [ x.f; y.f ] ];
    }
  in
  match fn with
  | Gate_fn.Buf -> ins.(0)
  | Gate_fn.Not -> { t = ins.(0).f; f = ins.(0).t }
  | Gate_fn.And _ -> { t = and_lits cnf ts; f = or_lits cnf fs }
  | Gate_fn.Nand _ -> { t = or_lits cnf fs; f = and_lits cnf ts }
  | Gate_fn.Or _ -> { t = or_lits cnf ts; f = and_lits cnf fs }
  | Gate_fn.Nor _ -> { t = and_lits cnf fs; f = or_lits cnf ts }
  | Gate_fn.Xor _ ->
      Array.fold_left xor_pair ins.(0) (Array.sub ins 1 (Array.length ins - 1))
  | Gate_fn.Xnor _ ->
      let r =
        Array.fold_left xor_pair ins.(0)
          (Array.sub ins 1 (Array.length ins - 1))
      in
      { t = r.f; f = r.t }

(* rails of a configured LUT: the three-valued table semantics of
   [Ternary.eval_truth] — known v iff every input-compatible row agrees
   on v *)
let encode_lut cnf config arity (ins : rails array) ~true_lit =
  let rows = 1 lsl arity in
  let compat = Array.make rows 0 in
  for r = 0 to rows - 1 do
    let lits = ref [] in
    for k = 0 to arity - 1 do
      (* compatible with bit b at input k: the opposite rail is low *)
      if (r lsr k) land 1 = 1 then lits := -ins.(k).f :: !lits
      else lits := -ins.(k).t :: !lits
    done;
    compat.(r) <- and_lits cnf !lits
  done;
  let off = ref [] and on_ = ref [] in
  for r = 0 to rows - 1 do
    if Truth.row config r then on_ := -compat.(r) :: !on_
    else off := -compat.(r) :: !off
  done;
  {
    t = (match !off with [] -> true_lit | ls -> and_lits cnf ls);
    f = (match !on_ with [] -> true_lit | ls -> and_lits cnf ls);
  }

let free_rails cnf ~total =
  let t = Cnf.fresh_var cnf in
  let f = Cnf.fresh_var cnf in
  Cnf.add_clause cnf [ -t; -f ];
  if total then Cnf.add_clause cnf [ t; f ];
  { t; f }

let create ?(budget = 50_000) nl =
  Netlist.warm nl;
  let n = Netlist.node_count nl in
  let order = Netlist.topo_order nl in
  let cnf = Cnf.create () in
  let true_lit = Cnf.fresh_var cnf in
  Cnf.add_clause cnf [ true_lit ];
  (* copy B differs only combinationally downstream of a missing gate *)
  let downstream = Array.make n false in
  Array.iter
    (fun id ->
      match Netlist.kind nl id with
      | Netlist.Lut { config = None; _ } -> downstream.(id) <- true
      | k when Netlist.is_combinational k ->
          downstream.(id) <-
            Array.exists (fun s -> downstream.(s)) (Netlist.fanins nl id)
      | _ -> ())
    order;
  let a = Array.make n { t = true_lit; f = true_lit } in
  let b = Array.make n { t = true_lit; f = true_lit } in
  let luts = ref [] in
  let encode_node which rails_of id =
    let node = Netlist.node nl id in
    match node.Netlist.kind with
    | Netlist.Pi | Netlist.Dff -> free_rails cnf ~total:true
    | Netlist.Const v ->
        if v then { t = true_lit; f = -true_lit }
        else { t = -true_lit; f = true_lit }
    | Netlist.Gate fn ->
        encode_gate cnf fn (Array.map rails_of node.Netlist.fanins)
    | Netlist.Lut { config = Some c; arity } ->
        encode_lut cnf c arity (Array.map rails_of node.Netlist.fanins) ~true_lit
    | Netlist.Lut { config = None; _ } ->
        if which = `A then luts := id :: !luts;
        free_rails cnf ~total:false
  in
  Array.iter
    (fun id -> a.(id) <- encode_node `A (fun s -> a.(s)) id)
    order;
  Array.iter
    (fun id ->
      if downstream.(id) then
        b.(id) <- encode_node `B (fun s -> b.(s)) id
      else b.(id) <- a.(id))
    order;
  (* per-observation-point difference literals, only where the copies
     can actually diverge *)
  let obs = ref [] in
  List.iter (fun id -> obs := id :: !obs) (Netlist.pos nl);
  List.iter
    (fun ff -> obs := (Netlist.fanins nl ff).(0) :: !obs)
    (Netlist.dffs nl);
  let diffs =
    List.filter_map
      (fun o ->
        if not downstream.(o) then None
        else
          Some
            (or_lits cnf
               [
                 and_lits cnf [ a.(o).t; b.(o).f ];
                 and_lits cnf [ a.(o).f; b.(o).t ];
               ]))
      (List.sort_uniq Int.compare !obs)
  in
  let any_diff = match diffs with [] -> None | ds -> Some (or_lits cnf ds) in
  let solver = Sat.Solver.of_cnf cnf in
  {
    nl;
    cnf;
    solver;
    budget;
    a;
    b;
    luts = List.rev !luts;
    downstream;
    any_diff;
    label = "sem";
    queries = 0;
    cutoffs = 0;
    conflicts = 0;
    seconds = 0.;
  }

let set_label t l = t.label <- l

let solve t assumptions =
  Sat.Solver.sync t.solver t.cnf;
  let before = (Sat.Solver.stats t.solver).Sat.conflicts in
  let result, dt =
    Sttc_util.Timing.time (fun () ->
        Sat.Solver.solve ~assumptions ~max_conflicts:t.budget t.solver)
  in
  let dc = (Sat.Solver.stats t.solver).Sat.conflicts - before in
  t.queries <- t.queries + 1;
  t.conflicts <- t.conflicts + dc;
  t.seconds <- t.seconds +. dt;
  Sttc_obs.Metrics.(
    incr "lint.sem.queries";
    observe (Printf.sprintf "lint.sem.%s.solver_seconds" t.label) dt;
    observe
      (Printf.sprintf "lint.sem.%s.solver_conflicts" t.label)
      (float_of_int dc));
  match result with
  | Sat.Sat _ -> Holds
  | Sat.Unsat -> Refuted
  | Sat.Unknown _ ->
      t.cutoffs <- t.cutoffs + 1;
      Sttc_obs.Metrics.incr "lint.sem.cutoffs";
      Cutoff

(* force X on the given missing gates, in both copies *)
let x_context t except =
  List.concat_map
    (fun l ->
      if List.mem l except then []
      else
        let base = [ -t.a.(l).t; -t.a.(l).f ] in
        if t.b.(l).t = t.a.(l).t then base
        else base @ [ -t.b.(l).t; -t.b.(l).f ])
    t.luts

let assume_value rails = function
  | Ternary.One -> [ rails.t ]
  | Ternary.Zero -> [ rails.f ]
  | Ternary.X -> [ -rails.t; -rails.f ]

(* can the net take this three-valued value, for some input, state and
   missing-gate behaviour? *)
let value_reachable t id v = solve t (assume_value t.a.(id) v)

(* row justification at a LUT's fanins with every missing gate X:
   [exact] requires the fanins known and equal to the row; otherwise
   mere three-valued compatibility is enough *)
let justify_row t lut ~row ~exact =
  let fanins = Netlist.fanins t.nl lut in
  let per_bit k =
    let r = t.a.(fanins.(k)) in
    if (row lsr k) land 1 = 1 then if exact then r.t else -r.f
    else if exact then r.f
    else -r.t
  in
  let just = List.init (Array.length fanins) per_bit in
  solve t (just @ x_context t [])

(* is there an input/state pattern where forcing the LUT's output low
   vs high produces a known difference at an observation point?
   [others] chooses the stance on the other missing gates: [`X] is the
   testing-attack semantics (unresolved gates block), [`Free] quantifies
   over all their behaviours (UNSAT then proves the LUT's configuration
   can never influence an observation point at all). *)
let toggle_observable t lut ~others =
  match t.any_diff with
  | None -> Refuted
  | Some d ->
      let target =
        [ t.a.(lut).f; t.b.(lut).t ]
        (* not-both clauses make f => not t on free rails *)
      in
      let context =
        match others with `X -> x_context t [ lut ] | `Free -> []
      in
      solve t ((d :: target) @ context)

(* activation-literal scoped equivalence of two nets in copy A: clauses
   added for the query are guarded by a fresh activation literal and
   retired with a unit clause afterwards, so the solver's learned
   clauses stay valid across queries *)
let equivalent t x y =
  let act = Cnf.fresh_var t.cnf in
  let m1 = and_lits t.cnf [ t.a.(x).t; t.a.(y).f ] in
  let m2 = and_lits t.cnf [ t.a.(x).f; t.a.(y).t ] in
  Cnf.add_clause t.cnf [ -act; m1; m2 ];
  let r = solve t [ act ] in
  Cnf.add_clause t.cnf [ -act ];
  match r with Holds -> Refuted | Refuted -> Holds | Cutoff -> Cutoff

let unconfigured_luts t = t.luts
let budget t = t.budget
let queries t = t.queries
let cutoffs t = t.cutoffs
let conflicts t = t.conflicts
let seconds t = t.seconds
let has_observable_miter t = t.any_diff <> None
let downstream t id = t.downstream.(id)
