(** A CDCL SAT solver: two-watched literals, first-UIP clause learning,
    VSIDS-style activity ordering, phase saving and Luby restarts.

    This is the engine behind the oracle-guided SAT attack of
    [Sttc_attack.Sat_attack] and the miter-based equivalence check of
    [Sttc_sim.Equiv].  Scale target: the formulas arising from circuits of
    a few thousand gates. *)

type result =
  | Sat of bool array
      (** [Sat model]: [model.(v)] is the value of variable [v]
          (index 0 unused). *)
  | Unsat

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  learned : int;
  restarts : int;
}

val solve :
  ?assumptions:Cnf.lit list ->
  ?max_conflicts:int ->
  Cnf.t ->
  result option
(** [solve cnf] decides satisfiability.  [assumptions] are literals forced
    at decision level 0 for this call only.  [None] is returned when
    [max_conflicts] is exhausted (resource-limited attacks). *)

val solve_exn : ?assumptions:Cnf.lit list -> Cnf.t -> result
(** Like {!solve} without a conflict budget. *)

val last_stats : unit -> stats
(** Statistics of the most recent {!solve} call on the current domain
    (domain-local, so parallel solver tasks do not race). *)

val is_satisfiable : Cnf.t -> bool
(** Convenience wrapper. *)

val model_value : bool array -> int -> bool
(** [model_value model v] reads variable [v] from a {!Sat} model. *)
