(** A CDCL SAT solver: two-watched literals, first-UIP clause learning,
    VSIDS-style activity ordering, phase saving and Luby restarts.

    The engine is a {e persistent, incremental} solver ({!Solver}):
    clauses can be appended after construction, and each
    {!Solver.solve} call runs under a set of assumption literals while
    retaining learned clauses, variable activities and saved phases
    from previous calls.  Learned-clause retention is kept in check by
    LBD-based clause-database reduction.  This is the engine behind the
    oracle-guided SAT attack of [Sttc_attack.Sat_attack] and the
    miter-based equivalence check of [Sttc_sim.Equiv].  Scale target:
    the formulas arising from circuits of a few thousand gates. *)

type result =
  | Sat of bool array
      (** [Sat model]: [model.(v)] is the value of variable [v]
          (index 0 unused). *)
  | Unsat
      (** Unsatisfiable — under the given assumptions if any were
          passed, unconditionally otherwise. *)
  | Unknown of string
      (** The solve was cut short ([max_conflicts] exhausted); the
          payload names the spent budget.  Never returned by an
          unbudgeted call.  Distinct from {!Unsat} so resource
          exhaustion cannot masquerade as proven unsatisfiability. *)

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  learned : int;  (** clauses learned (total, including later removed) *)
  kept : int;  (** learned clauses currently retained in the database *)
  removed : int;  (** learned clauses deleted by LBD-based reduction *)
  restarts : int;
}

val zero_stats : stats

(** {1 The persistent incremental solver} *)

module Solver : sig
  type t
  (** A stateful solver handle.  Not thread-safe; use one handle per
      domain. *)

  val create : ?reduce_limit:int -> unit -> t
  (** A solver over the empty formula.  [reduce_limit] is the retained
      learned-clause count that first triggers database reduction
      (default 2000; tests lower it to exercise reduction). *)

  val of_cnf : ?reduce_limit:int -> Cnf.t -> t
  (** [create] followed by {!sync}. *)

  val sync : t -> Cnf.t -> unit
  (** Append the clauses added to [cnf] since the last [sync] of this
      solver (a cursor over [cnf]'s clause list), together with any new
      variables.  A solver tracks one growing formula: always [sync]
      against the same [Cnf.t]. *)

  val add_clause : t -> Cnf.lit list -> unit
  (** Append one clause directly (variables are allocated on demand).
      Like [sync], this may backtrack the solver to decision level 0. *)

  val ensure_vars : t -> int -> unit
  (** Make variables [1..n] available. *)

  val reset : t -> unit
  (** Return the solver to the empty-formula state of {!create} while
      keeping every allocated array, so the arena can be recycled
      across unrelated formulas — the reuse discipline of a
      long-running service that holds one solver per worker.
      Behaviourally identical to a fresh solver: clauses, learned
      clauses, activities, saved phases, the restart schedule and
      {!stats} all restart from zero, so a recycled solver recovers
      byte-identical answers to a newly created one.  After [reset]
      the solver may be {!sync}ed against a different [Cnf.t]. *)

  val nvars : t -> int

  val solve : ?assumptions:Cnf.lit list -> ?max_conflicts:int -> t -> result
  (** Decide satisfiability of the accumulated clauses under
      [assumptions], MiniSat-style: assumptions are decided (not
      asserted), so everything learned during the call is implied by
      the clauses alone and remains valid for later calls with
      different assumptions.  [Unsat] with assumptions means
      "unsatisfiable under these assumptions"; once [Unsat] is derived
      with no assumptions the solver is permanently unsatisfiable.
      [max_conflicts] bounds this call's conflicts; exhaustion returns
      {!Unknown}. *)

  val stats : t -> stats
  (** Cumulative statistics over the solver's lifetime; [kept] is the
      current retained learned-clause count. *)
end

(** {1 One-shot convenience wrappers}

    Each call builds a fresh throwaway {!Solver.t} — the scratch
    baseline the incremental interface is benchmarked against. *)

val solve :
  ?assumptions:Cnf.lit list -> ?max_conflicts:int -> Cnf.t -> result
(** [solve cnf] decides satisfiability of a formula from scratch. *)

val last_stats : unit -> stats
(** Statistics of the most recent solve call on the current domain —
    per-call deltas, domain-local so parallel solver tasks do not
    race. *)

val is_satisfiable : Cnf.t -> bool
(** Convenience wrapper (unbudgeted, so never {!Unknown}). *)

val model_value : bool array -> int -> bool
(** [model_value model v] reads variable [v] from a {!Sat} model. *)
