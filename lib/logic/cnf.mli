(** CNF formulas and Tseitin encoding of gate netlists.

    Variables are positive integers; a literal is a non-zero integer whose
    sign is the polarity (DIMACS convention).  The SAT attack encodes the
    hybrid circuit as a miter over these formulas. *)

type lit = int
type clause = lit array

type t
(** A mutable formula under construction. *)

val create : unit -> t
val fresh_var : t -> int
(** Allocate a new variable (starting from 1). *)

val reserve : t -> int -> unit
(** Ensure variables [1..n] are considered allocated. *)

val nvars : t -> int
val nclauses : t -> int

val add_clause : t -> lit list -> unit
(** Raises [Invalid_argument] if a literal references variable 0 or an
    unallocated variable. *)

val add_clause_a : t -> clause -> unit

val clauses : t -> clause list
(** In insertion order. *)

val clause : t -> int -> clause
(** [clause t i] is the [i]th clause added (0-based).  The returned array
    is the stored clause: callers must not mutate it.  This is the cursor
    interface [Sat.Solver.sync] uses to consume a growing formula
    incrementally.  Raises [Invalid_argument] when out of range. *)

val iter_clauses : (clause -> unit) -> t -> unit

(* --- Tseitin gate encodings: the output literal is constrained to equal
   the gate function of the input literals. --- *)

val encode_not : t -> lit -> lit -> unit
(** [encode_not t out a]: out = NOT a. *)

val encode_buf : t -> lit -> lit -> unit
val encode_and : t -> lit -> lit list -> unit
val encode_or : t -> lit -> lit list -> unit
val encode_xor : t -> lit -> lit -> lit -> unit
(** out = a XOR b. *)

val encode_gate : t -> lit -> Gate_fn.t -> lit list -> unit
(** Encode any supported gate function. *)

val encode_mux : t -> lit -> sel:lit -> lo:lit -> hi:lit -> unit
(** out = sel ? hi : lo. *)

val encode_truth_lut : t -> lit -> key:lit array -> inputs:lit array -> unit
(** Encode a LUT whose content is symbolic: [key] holds one literal per
    truth-table row ([2^arity] literals, row 0 first); the output equals
    the key bit addressed by the inputs.  This is how missing STT gates
    enter the SAT-attack formula. *)

val pp_stats : Format.formatter -> t -> unit
