let write oc cnf =
  Printf.fprintf oc "p cnf %d %d\n" (Cnf.nvars cnf) (Cnf.nclauses cnf);
  Cnf.iter_clauses
    (fun c ->
      Array.iter (fun l -> Printf.fprintf oc "%d " l) c;
      output_string oc "0\n")
    cnf

let to_string cnf =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Cnf.nvars cnf) (Cnf.nclauses cnf));
  Cnf.iter_clauses
    (fun c ->
      Array.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    cnf;
  Buffer.contents buf

let parse_string s =
  let cnf = Cnf.create () in
  let lines = String.split_on_char '\n' s in
  let lineno = ref 0 in
  let pending = ref [] in
  let fail msg = failwith (Printf.sprintf "dimacs:%d: %s" !lineno msg) in
  List.iter
    (fun line ->
      incr lineno;
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; _nc ] -> (
            match int_of_string_opt nv with
            | Some n when n >= 0 -> Cnf.reserve cnf n
            | _ -> fail "bad variable count")
        | _ -> fail "bad problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> fail ("bad literal " ^ tok)
               | Some 0 ->
                   Cnf.add_clause cnf (List.rev !pending);
                   pending := []
               | Some l ->
                   Cnf.reserve cnf (abs l);
                   pending := l :: !pending))
    lines;
  if !pending <> [] then failwith "dimacs: clause not terminated by 0";
  cnf

let read ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  parse_string (Buffer.contents buf)
