type v = Zero | One | X

let of_bool b = if b then One else Zero
let to_bool = function Zero -> Some false | One -> Some true | X -> None
let is_known = function X -> false | Zero | One -> true

let lnot = function Zero -> One | One -> Zero | X -> X

let land_ a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | _ -> X

let lor_ a b =
  match (a, b) with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | _ -> X

let lxor_ a b =
  match (a, b) with
  | X, _ | _, X -> X
  | One, One | Zero, Zero -> Zero
  | _ -> One

let land_n arr = Array.fold_left land_ One arr
let lor_n arr = Array.fold_left lor_ Zero arr
let lxor_n arr = Array.fold_left lxor_ Zero arr

let eval_gate fn inputs =
  if Array.length inputs <> Gate_fn.arity fn then
    invalid_arg "Ternary.eval_gate: arity";
  match fn with
  | Gate_fn.Buf -> inputs.(0)
  | Gate_fn.Not -> lnot inputs.(0)
  | Gate_fn.And _ -> land_n inputs
  | Gate_fn.Nand _ -> lnot (land_n inputs)
  | Gate_fn.Or _ -> lor_n inputs
  | Gate_fn.Nor _ -> lnot (lor_n inputs)
  | Gate_fn.Xor _ -> lxor_n inputs
  | Gate_fn.Xnor _ -> lnot (lxor_n inputs)

let eval_truth table inputs =
  let n = Truth.arity table in
  if Array.length inputs <> n then invalid_arg "Ternary.eval_truth: arity";
  (* Fold over all rows compatible with the known inputs. *)
  let out = ref None and conflict = ref false in
  for r = 0 to (1 lsl n) - 1 do
    if not !conflict then begin
      let compatible = ref true in
      for k = 0 to n - 1 do
        let bit = (r lsr k) land 1 = 1 in
        match inputs.(k) with
        | Zero -> if bit then compatible := false
        | One -> if not bit then compatible := false
        | X -> ()
      done;
      if !compatible then
        let v = Truth.row table r in
        match !out with
        | None -> out := Some v
        | Some v0 -> if v0 <> v then conflict := true
    end
  done;
  if !conflict then X
  else match !out with None -> X | Some v -> of_bool v

let equal a b = a = b

let to_char = function Zero -> '0' | One -> '1' | X -> 'X'

let of_char = function
  | '0' -> Zero
  | '1' -> One
  | 'x' | 'X' -> X
  | _ -> invalid_arg "Ternary.of_char"

let pp fmt v = Format.pp_print_char fmt (to_char v)
