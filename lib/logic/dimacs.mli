(** DIMACS CNF reader and writer, for interoperability with external SAT
    tooling and for golden tests of the built-in solver. *)

val write : out_channel -> Cnf.t -> unit

val to_string : Cnf.t -> string

val parse_string : string -> Cnf.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val read : in_channel -> Cnf.t
