(* CDCL with two-watched literals.  Literal encoding internally:
   lit l (nonzero int) -> index [2*v] for positive, [2*v+1] for negative,
   where v = abs l.  Variable indices are 1-based as in Cnf. *)

type result =
  | Sat of bool array
  | Unsat

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  learned : int;
  restarts : int;
}

let empty_stats =
  { decisions = 0; propagations = 0; conflicts = 0; learned = 0; restarts = 0 }

(* domain-local: parallel solves (pool tasks) each see their own last
   stats instead of racing on one global cell *)
let stats_key = Domain.DLS.new_key (fun () -> empty_stats)
let last_stats () = Domain.DLS.get stats_key

type value = Vfree | Vtrue | Vfalse

type solver = {
  nvars : int;
  mutable clauses : int array array; (* clause store; learned appended *)
  mutable nclauses : int;
  watches : int list array; (* watch lists indexed by literal index *)
  assign : value array; (* by variable *)
  level : int array; (* by variable *)
  reason : int array; (* clause index or -1; by variable *)
  trail : int array; (* literal indices in assignment order *)
  mutable trail_len : int;
  trail_lim : int array; (* trail length at each decision level *)
  mutable dlevel : int;
  mutable qhead : int;
  activity : float array; (* by variable *)
  mutable var_inc : float;
  phase : bool array; (* saved phase by variable *)
  seen : bool array; (* scratch for conflict analysis *)
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable learned_count : int;
  mutable restarts : int;
}

let lit_index l = if l > 0 then 2 * l else (2 * -l) + 1
let index_var i = i / 2
let index_neg i = i lxor 1
let index_sign i = i land 1 = 0 (* true when positive literal *)

let lit_of_index i = if index_sign i then index_var i else -index_var i

let value_of s i =
  (* value of the literal with index i *)
  match s.assign.(index_var i) with
  | Vfree -> Vfree
  | Vtrue -> if index_sign i then Vtrue else Vfalse
  | Vfalse -> if index_sign i then Vfalse else Vtrue

let create cnf =
  let nvars = Cnf.nvars cnf in
  let s =
    {
      nvars;
      clauses = Array.make 16 [||];
      nclauses = 0;
      watches = Array.make (2 * (nvars + 1) + 2) [];
      assign = Array.make (nvars + 1) Vfree;
      level = Array.make (nvars + 1) 0;
      reason = Array.make (nvars + 1) (-1);
      trail = Array.make (nvars + 1) 0;
      trail_len = 0;
      trail_lim = Array.make (nvars + 2) 0;
      dlevel = 0;
      qhead = 0;
      activity = Array.make (nvars + 1) 0.;
      var_inc = 1.;
      phase = Array.make (nvars + 1) false;
      seen = Array.make (nvars + 1) false;
      decisions = 0;
      propagations = 0;
      conflicts = 0;
      learned_count = 0;
      restarts = 0;
    }
  in
  s

exception Found_unsat

let enqueue s lit_idx reason =
  let v = index_var lit_idx in
  s.assign.(v) <- (if index_sign lit_idx then Vtrue else Vfalse);
  s.level.(v) <- s.dlevel;
  s.reason.(v) <- reason;
  s.phase.(v) <- index_sign lit_idx;
  s.trail.(s.trail_len) <- lit_idx;
  s.trail_len <- s.trail_len + 1

let add_clause_internal s (c : int array) =
  (* c holds literal indices.  Returns false if the formula is trivially
     unsat at level 0. *)
  match Array.length c with
  | 0 -> false
  | 1 ->
      let l = c.(0) in
      (match value_of s l with
      | Vtrue -> true
      | Vfalse -> false
      | Vfree ->
          enqueue s l (-1);
          true)
  | _ ->
      if s.nclauses = Array.length s.clauses then begin
        let bigger = Array.make (2 * Array.length s.clauses) [||] in
        Array.blit s.clauses 0 bigger 0 s.nclauses;
        s.clauses <- bigger
      end;
      let ci = s.nclauses in
      s.clauses.(ci) <- c;
      s.nclauses <- ci + 1;
      s.watches.(c.(0)) <- ci :: s.watches.(c.(0));
      s.watches.(c.(1)) <- ci :: s.watches.(c.(1));
      true

(* Propagate; return conflicting clause index or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict = -1 && s.qhead < s.trail_len do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let np = index_neg p in
    (* clauses watching np must find a new watch *)
    let watching = s.watches.(np) in
    s.watches.(np) <- [];
    let rec walk = function
      | [] -> ()
      | ci :: rest ->
          if !conflict <> -1 then
            (* conflict already found: retain the remaining watchers *)
            s.watches.(np) <- ci :: (rest @ s.watches.(np))
          else begin
            let c = s.clauses.(ci) in
            (* normalize: put np at position 1 *)
            if c.(0) = np then begin
              c.(0) <- c.(1);
              c.(1) <- np
            end;
            if value_of s c.(0) = Vtrue then begin
              (* clause satisfied; keep watching np *)
              s.watches.(np) <- ci :: s.watches.(np)
            end
            else begin
              (* look for a new watch *)
              let n = Array.length c in
              let found = ref false in
              let k = ref 2 in
              while (not !found) && !k < n do
                if value_of s c.(!k) <> Vfalse then begin
                  let tmp = c.(1) in
                  c.(1) <- c.(!k);
                  c.(!k) <- tmp;
                  s.watches.(c.(1)) <- ci :: s.watches.(c.(1));
                  found := true
                end;
                incr k
              done;
              if not !found then begin
                (* unit or conflict *)
                s.watches.(np) <- ci :: s.watches.(np);
                match value_of s c.(0) with
                | Vfalse -> conflict := ci
                | Vfree -> enqueue s c.(0) ci
                | Vtrue -> ()
              end
            end;
            walk rest
          end
    in
    walk watching
  done;
  !conflict

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay_activity s = s.var_inc <- s.var_inc /. 0.95

(* First-UIP conflict analysis.  Returns (learned clause as lit indices,
   backtrack level). *)
let analyze s conflict_ci =
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let ci = ref conflict_ci in
  let btlevel = ref 0 in
  let continue = ref true in
  let trail_pos = ref (s.trail_len - 1) in
  while !continue do
    let c = s.clauses.(!ci) in
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = index_var q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            bump_var s v;
            if s.level.(v) >= s.dlevel then incr counter
            else begin
              learned := q :: !learned;
              if s.level.(v) > !btlevel then btlevel := s.level.(v)
            end
          end
        end)
      c;
    (* pick next literal from trail *)
    let rec next_seen i =
      if s.seen.(index_var s.trail.(i)) then i else next_seen (i - 1)
    in
    trail_pos := next_seen !trail_pos;
    let q = s.trail.(!trail_pos) in
    let v = index_var q in
    s.seen.(v) <- false;
    decr counter;
    if !counter = 0 then begin
      (* q is the first UIP; learned clause asserts its negation *)
      learned := index_neg q :: !learned;
      continue := false
    end
    else begin
      ci := s.reason.(v);
      p := q;
      decr trail_pos
    end
  done;
  List.iter (fun q -> s.seen.(index_var q) <- false) !learned;
  (* the asserting (first-UIP) literal was consed last, so it already sits
     at position 0 *)
  let arr = Array.of_list !learned in
  let n = Array.length arr in
  (* second watch: a literal from btlevel, put at position 1 *)
  if n > 1 then begin
    let best = ref 1 in
    for k = 2 to n - 1 do
      if s.level.(index_var arr.(k)) > s.level.(index_var arr.(!best)) then
        best := k
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp
  end;
  (arr, !btlevel)

let backtrack s lvl =
  if s.dlevel > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_len - 1 downto bound do
      let v = index_var s.trail.(i) in
      s.assign.(v) <- Vfree;
      s.reason.(v) <- -1
    done;
    s.trail_len <- bound;
    s.qhead <- bound;
    s.dlevel <- lvl
  end

let pick_branch s =
  let best = ref 0 and best_act = ref neg_infinity in
  for v = 1 to s.nvars do
    if s.assign.(v) = Vfree && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

(* Luby restart sequence, 1-based: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby n =
  let k = ref 1 in
  while (1 lsl !k) - 1 < n do
    incr k
  done;
  if (1 lsl !k) - 1 = n then 1 lsl (!k - 1)
  else luby (n - (1 lsl (!k - 1)) + 1)

let solve ?(assumptions = []) ?(max_conflicts = max_int) cnf =
  let s = create cnf in
  let ok = ref true in
  Cnf.iter_clauses
    (fun c ->
      if !ok then begin
        (* drop duplicate literals; detect tautologies *)
        let lits = Array.to_list c in
        let module IS = Set.Make (Int) in
        let set = IS.of_list lits in
        let taut = IS.exists (fun l -> IS.mem (-l) set) set in
        if not taut then begin
          let arr = Array.of_list (List.map lit_index (IS.elements set)) in
          if not (add_clause_internal s arr) then ok := false
        end
      end)
    cnf;
  let result =
    if not !ok then Some Unsat
    else if propagate s <> -1 then Some Unsat
    else begin
      (* assumptions as level-0 units after initial propagation *)
      let assumption_conflict =
        List.exists
          (fun l ->
            let li = lit_index l in
            match value_of s li with
            | Vtrue -> false
            | Vfalse -> true
            | Vfree ->
                enqueue s li (-1);
                propagate s <> -1)
          assumptions
      in
      if assumption_conflict then Some Unsat
      else begin
        let answer = ref None in
        let restart_count = ref 0 in
        let conflicts_until_restart = ref (100 * luby 1) in
        (try
           while !answer = None do
             let conflict = propagate s in
             if conflict <> -1 then begin
               s.conflicts <- s.conflicts + 1;
               if s.dlevel = 0 then raise Found_unsat;
               let learned, btlevel = analyze s conflict in
               backtrack s btlevel;
               if Array.length learned = 1 then enqueue s learned.(0) (-1)
               else begin
                 let ci = s.nclauses in
                 if not (add_clause_internal s learned) then raise Found_unsat;
                 s.learned_count <- s.learned_count + 1;
                 enqueue s learned.(0) ci
               end;
               decay_activity s;
               if s.conflicts >= max_conflicts then answer := Some None;
               decr conflicts_until_restart;
               if !conflicts_until_restart <= 0 && s.dlevel > 0 then begin
                 incr restart_count;
                 s.restarts <- s.restarts + 1;
                 conflicts_until_restart := 100 * luby (!restart_count + 1);
                 backtrack s 0;
                 (* re-assert assumptions after restart *)
                 List.iter
                   (fun l ->
                     let li = lit_index l in
                     if value_of s li = Vfree then enqueue s li (-1))
                   assumptions
               end
             end
             else begin
               let v = pick_branch s in
               if v = 0 then begin
                 (* full assignment: SAT *)
                 let model = Array.make (s.nvars + 1) false in
                 for u = 1 to s.nvars do
                   model.(u) <- s.assign.(u) = Vtrue
                 done;
                 answer := Some (Some (Sat model))
               end
               else begin
                 s.decisions <- s.decisions + 1;
                 s.trail_lim.(s.dlevel) <- s.trail_len;
                 s.dlevel <- s.dlevel + 1;
                 let li = lit_index (if s.phase.(v) then v else -v) in
                 enqueue s li (-1)
               end
             end
           done
         with Found_unsat -> answer := Some (Some Unsat));
        match !answer with Some r -> r | None -> assert false
      end
    end
  in
  Domain.DLS.set stats_key
    {
      decisions = s.decisions;
      propagations = s.propagations;
      conflicts = s.conflicts;
      learned = s.learned_count;
      restarts = s.restarts;
    };
  result

let solve_exn ?assumptions cnf =
  match solve ?assumptions cnf with
  | Some r -> r
  | None -> assert false (* no conflict budget given *)

let is_satisfiable cnf =
  match solve_exn cnf with Sat _ -> true | Unsat -> false

let model_value model v =
  if v <= 0 || v >= Array.length model then invalid_arg "Sat.model_value";
  model.(v)

(* silence unused warnings for helpers kept for debugging *)
let _ = lit_of_index
