(* A persistent, incremental CDCL solver.

   Architecture notes (see DESIGN.md for the policy-level discussion):

   - Literals are encoded as array indices: variable v's positive literal
     is 2v, its negation 2v+1 (so negation is [lxor 1]).  Indices 0/1 are
     unused (variables start at 1).

   - Watch lists are growable flat [int array]s (clause indices) with an
     explicit length, one per literal index.  Propagation compacts a
     watch list in place with a read/write cursor pair and never
     allocates: moving a watch appends to the destination list's flat
     array (amortized doubling) and simply doesn't copy the entry
     forward in the source list.

   - Assumptions are decided, MiniSat-style, at decision levels
     1..n_assum rather than asserted as level-0 units.  Every clause the
     solver learns is therefore implied by the clause database alone and
     stays valid for later [solve] calls with different assumptions —
     this is what makes one solver reusable across the whole SAT-attack
     DIP loop.  An assumption already true by propagation still gets its
     own (empty) decision level so level k always means "under the first
     k assumptions".

   - Learned clauses carry their LBD (number of distinct decision levels
     among their literals, computed at learn time).  When the retained
     learned-clause count passes [reduce_limit] the database is reduced
     at decision level 0 (right after a Luby restart, propagation at
     fixpoint): glue clauses (LBD <= 2) and locked clauses (the reason
     of a level-0 assignment) are kept, then the worst half of the
     remaining learned clauses — highest LBD first — is dropped and the
     clause array is compacted, remapping reasons and rebuilding
     watches. *)

type result = Sat of bool array | Unsat | Unknown of string

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  learned : int;
  kept : int;
  removed : int;
  restarts : int;
}

let zero_stats =
  {
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    learned = 0;
    kept = 0;
    removed = 0;
    restarts = 0;
  }

(* domain-local: parallel solves (pool tasks) each see their own last
   stats instead of racing on one global cell *)
let stats_key = Domain.DLS.new_key (fun () -> ref zero_stats)
let last_stats () = !(Domain.DLS.get stats_key)

type value = Vfree | Vtrue | Vfalse

let lit_index l = if l > 0 then 2 * l else (2 * -l) + 1
let index_var i = i / 2
let index_neg i = i lxor 1
let restart_base = 100
let reduce_step = 500
let var_decay = 0.95

(* MiniSat's reluctant-doubling sequence: 1 1 2 1 1 2 4 ... *)
let luby i =
  let seq = ref 0 and size = ref 1 and x = ref i in
  while !size < !x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

module Solver = struct
  type t = {
    mutable nvars : int;
    mutable unsat : bool; (* a level-0 conflict was derived: permanent *)
    mutable synced : int; (* clauses consumed from the attached Cnf.t *)
    (* clause database: parallel arrays indexed by clause id *)
    mutable clauses : int array array;
    mutable clause_lbd : int array;
    mutable clause_learnt : bool array;
    mutable nclauses : int;
    mutable learnt_live : int;
    mutable reduce_limit : int;
    initial_reduce_limit : int; (* what [reset] restores *)
    (* watch lists: flat arrays of clause ids, one per literal index *)
    mutable watch_data : int array array;
    mutable watch_len : int array;
    (* assignment state, indexed by variable *)
    mutable assign : value array;
    mutable level : int array;
    mutable reason : int array; (* clause id, or -1 for decision/unit *)
    mutable activity : float array;
    mutable phase : bool array;
    mutable seen : bool array;
    (* trail of assigned literal indices *)
    mutable trail : int array;
    mutable trail_len : int;
    mutable qhead : int;
    mutable trail_lim : int array; (* level l starts at trail_lim.(l-1) *)
    mutable level_mark : int array; (* generation stamps for LBD *)
    mutable mark_gen : int;
    mutable dlevel : int;
    mutable var_inc : float;
    mutable luby_index : int;
    (* cumulative statistics *)
    mutable s_decisions : int;
    mutable s_propagations : int;
    mutable s_conflicts : int;
    mutable s_learned : int;
    mutable s_removed : int;
    mutable s_restarts : int;
  }

  let create ?(reduce_limit = 2000) () =
    {
      nvars = 0;
      unsat = false;
      synced = 0;
      clauses = [||];
      clause_lbd = [||];
      clause_learnt = [||];
      nclauses = 0;
      learnt_live = 0;
      reduce_limit;
      initial_reduce_limit = reduce_limit;
      watch_data = Array.make 2 [||];
      watch_len = Array.make 2 0;
      assign = Array.make 1 Vfree;
      level = Array.make 1 0;
      reason = Array.make 1 (-1);
      activity = Array.make 1 0.0;
      phase = Array.make 1 false;
      seen = Array.make 1 false;
      trail = Array.make 1 0;
      trail_len = 0;
      qhead = 0;
      trail_lim = Array.make 4 0;
      level_mark = Array.make 4 0;
      mark_gen = 0;
      dlevel = 0;
      var_inc = 1.0;
      luby_index = 0;
      s_decisions = 0;
      s_propagations = 0;
      s_conflicts = 0;
      s_learned = 0;
      s_removed = 0;
      s_restarts = 0;
    }

  let nvars s = s.nvars

  let stats s =
    {
      decisions = s.s_decisions;
      propagations = s.s_propagations;
      conflicts = s.s_conflicts;
      learned = s.s_learned;
      kept = s.learnt_live;
      removed = s.s_removed;
      restarts = s.s_restarts;
    }

  (* Return the solver to the state [create] built, keeping every
     allocated array: a long-running service can hold one solver per
     worker and recycle it across unrelated formulas without paying the
     allocation (and GC) cost of a fresh arena per request.  Behavioural
     identity with a fresh solver is a hard contract — activities,
     phases, the restart schedule and the statistics all restart from
     zero, so a reused solver recovers byte-identical answers. *)
  let reset s =
    Array.fill s.assign 0 (Array.length s.assign) Vfree;
    Array.fill s.level 0 (Array.length s.level) 0;
    Array.fill s.reason 0 (Array.length s.reason) (-1);
    Array.fill s.activity 0 (Array.length s.activity) 0.0;
    Array.fill s.phase 0 (Array.length s.phase) false;
    Array.fill s.seen 0 (Array.length s.seen) false;
    Array.fill s.watch_len 0 (Array.length s.watch_len) 0;
    Array.fill s.level_mark 0 (Array.length s.level_mark) 0;
    s.nvars <- 0;
    s.unsat <- false;
    s.synced <- 0;
    s.nclauses <- 0;
    s.learnt_live <- 0;
    s.reduce_limit <- s.initial_reduce_limit;
    s.trail_len <- 0;
    s.qhead <- 0;
    s.dlevel <- 0;
    s.mark_gen <- 0;
    s.var_inc <- 1.0;
    s.luby_index <- 0;
    s.s_decisions <- 0;
    s.s_propagations <- 0;
    s.s_conflicts <- 0;
    s.s_learned <- 0;
    s.s_removed <- 0;
    s.s_restarts <- 0

  (* ---- growable state ---- *)

  let grow a n fill =
    if Array.length a >= n then a
    else begin
      let b = Array.make (max n (2 * Array.length a)) fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    end

  let ensure_vars s n =
    if n > s.nvars then begin
      let vn = n + 1 in
      s.assign <- grow s.assign vn Vfree;
      s.level <- grow s.level vn 0;
      s.reason <- grow s.reason vn (-1);
      s.activity <- grow s.activity vn 0.0;
      s.phase <- grow s.phase vn false;
      s.seen <- grow s.seen vn false;
      s.trail <- grow s.trail vn 0;
      s.watch_data <- grow s.watch_data (2 * vn) [||];
      s.watch_len <- grow s.watch_len (2 * vn) 0;
      s.nvars <- n
    end

  (* Decision levels can exceed nvars: an already-satisfied assumption
     still claims an (empty) level.  trail_lim and the LBD stamp array
     grow together on demand. *)
  let new_level s =
    if s.dlevel + 2 > Array.length s.trail_lim then begin
      s.trail_lim <- grow s.trail_lim (2 * (s.dlevel + 2)) 0;
      s.level_mark <- grow s.level_mark (2 * (s.dlevel + 2)) 0
    end;
    s.trail_lim.(s.dlevel) <- s.trail_len;
    s.dlevel <- s.dlevel + 1

  (* ---- assignment primitives ---- *)

  let value_of s li =
    match s.assign.(index_var li) with
    | Vfree -> Vfree
    | Vtrue -> if li land 1 = 0 then Vtrue else Vfalse
    | Vfalse -> if li land 1 = 0 then Vfalse else Vtrue

  let enqueue s li reason =
    let v = index_var li in
    s.assign.(v) <- (if li land 1 = 0 then Vtrue else Vfalse);
    s.level.(v) <- s.dlevel;
    s.reason.(v) <- reason;
    s.phase.(v) <- li land 1 = 0;
    s.trail.(s.trail_len) <- li;
    s.trail_len <- s.trail_len + 1

  let backtrack s lvl =
    if s.dlevel > lvl then begin
      let bound = s.trail_lim.(lvl) in
      for t = s.trail_len - 1 downto bound do
        let v = index_var s.trail.(t) in
        s.assign.(v) <- Vfree;
        s.reason.(v) <- -1
      done;
      s.trail_len <- bound;
      s.qhead <- bound;
      s.dlevel <- lvl
    end

  (* ---- watch lists ---- *)

  let push_watch s li ci =
    let data = s.watch_data.(li) in
    let len = s.watch_len.(li) in
    if len >= Array.length data then begin
      let ndata = Array.make (max 4 (2 * len)) 0 in
      Array.blit data 0 ndata 0 len;
      s.watch_data.(li) <- ndata;
      ndata.(len) <- ci
    end
    else data.(len) <- ci;
    s.watch_len.(li) <- len + 1

  let attach_clause s c ~learnt ~lbd =
    if s.nclauses >= Array.length s.clauses then begin
      let cap = max 16 (2 * s.nclauses) in
      s.clauses <- grow s.clauses cap [||];
      s.clause_lbd <- grow s.clause_lbd cap 0;
      s.clause_learnt <- grow s.clause_learnt cap false
    end;
    let ci = s.nclauses in
    s.clauses.(ci) <- c;
    s.clause_lbd.(ci) <- lbd;
    s.clause_learnt.(ci) <- learnt;
    s.nclauses <- ci + 1;
    push_watch s c.(0) ci;
    push_watch s c.(1) ci;
    if learnt then begin
      s.learnt_live <- s.learnt_live + 1;
      s.s_learned <- s.s_learned + 1
    end;
    ci

  (* ---- propagation ----

     Returns the conflicting clause id, or -1.  Invariant maintained for
     every clause that is the reason of a currently assigned variable:
     the asserting literal sits at position 0 (enqueue puts it there, and
     the position-0 swap below only fires when position 0 is false, which
     a reason's asserting literal never is while the variable stays
     assigned). *)

  let propagate s =
    let conflict = ref (-1) in
    while !conflict = -1 && s.qhead < s.trail_len do
      let p = s.trail.(s.qhead) in
      s.qhead <- s.qhead + 1;
      s.s_propagations <- s.s_propagations + 1;
      let np = index_neg p in
      let ws = s.watch_data.(np) in
      let n = s.watch_len.(np) in
      let j = ref 0 in
      for i = 0 to n - 1 do
        let ci = ws.(i) in
        if !conflict >= 0 then begin
          (* conflict already found: retain the remaining watchers *)
          ws.(!j) <- ci;
          incr j
        end
        else begin
          let c = s.clauses.(ci) in
          if c.(0) = np then begin
            c.(0) <- c.(1);
            c.(1) <- np
          end;
          if value_of s c.(0) = Vtrue then begin
            ws.(!j) <- ci;
            incr j
          end
          else begin
            (* look for a replacement watch *)
            let len = Array.length c in
            let k = ref 2 in
            while !k < len && value_of s c.(!k) = Vfalse do
              incr k
            done;
            if !k < len then begin
              (* c.(1) <> np afterwards, so the push below never touches
                 np's list and ws stays valid *)
              c.(1) <- c.(!k);
              c.(!k) <- np;
              push_watch s c.(1) ci
            end
            else begin
              ws.(!j) <- ci;
              incr j;
              match value_of s c.(0) with
              | Vfalse -> conflict := ci
              | _ -> enqueue s c.(0) ci
            end
          end
        end
      done;
      s.watch_len.(np) <- !j
    done;
    !conflict

  (* ---- activity ---- *)

  let bump s v =
    s.activity.(v) <- s.activity.(v) +. s.var_inc;
    if s.activity.(v) > 1e100 then begin
      for u = 1 to s.nvars do
        s.activity.(u) <- s.activity.(u) *. 1e-100
      done;
      s.var_inc <- s.var_inc *. 1e-100
    end

  let decay s = s.var_inc <- s.var_inc /. var_decay

  let pick_branch s =
    let best = ref 0 and best_act = ref neg_infinity in
    for v = 1 to s.nvars do
      if s.assign.(v) = Vfree && s.activity.(v) > !best_act then begin
        best := v;
        best_act := s.activity.(v)
      end
    done;
    !best

  (* ---- conflict analysis ----

     First-UIP resolution.  Returns the learned clause (UIP literal at
     position 0, a literal of the backjump level at position 1), the
     backjump level, and the clause's LBD. *)

  let analyze s confl =
    let learned = ref [] in
    let counter = ref 0 in
    let reason_ci = ref confl in
    let first = ref true in
    let t = ref (s.trail_len - 1) in
    let uip = ref (-1) in
    while !uip = -1 do
      let c = s.clauses.(!reason_ci) in
      let start = if !first then 0 else 1 in
      first := false;
      for k = start to Array.length c - 1 do
        let q = c.(k) in
        let v = index_var q in
        if (not s.seen.(v)) && s.level.(v) > 0 then begin
          s.seen.(v) <- true;
          bump s v;
          if s.level.(v) >= s.dlevel then incr counter
          else learned := q :: !learned
        end
      done;
      (* next marked literal down the trail *)
      while not s.seen.(index_var s.trail.(!t)) do
        decr t
      done;
      let q = s.trail.(!t) in
      decr t;
      s.seen.(index_var q) <- false;
      decr counter;
      if !counter = 0 then uip := index_neg q
      else reason_ci := s.reason.(index_var q)
    done;
    let rest = !learned in
    List.iter (fun q -> s.seen.(index_var q) <- false) rest;
    let arr = Array.of_list (!uip :: rest) in
    let n = Array.length arr in
    let btlevel = ref 0 in
    if n > 1 then begin
      let m = ref 1 in
      for k = 2 to n - 1 do
        if s.level.(index_var arr.(k)) > s.level.(index_var arr.(!m)) then
          m := k
      done;
      let tmp = arr.(1) in
      arr.(1) <- arr.(!m);
      arr.(!m) <- tmp;
      btlevel := s.level.(index_var arr.(1))
    end;
    s.mark_gen <- s.mark_gen + 1;
    let g = s.mark_gen in
    let lbd = ref 0 in
    Array.iter
      (fun q ->
        let lv = s.level.(index_var q) in
        if s.level_mark.(lv) <> g then begin
          s.level_mark.(lv) <- g;
          incr lbd
        end)
      arr;
    (arr, !btlevel, !lbd)

  (* ---- clause-database reduction ----

     Precondition: decision level 0, propagation at fixpoint. *)

  let reduce_db s =
    let locked = Array.make (max s.nclauses 1) false in
    for t = 0 to s.trail_len - 1 do
      let r = s.reason.(index_var s.trail.(t)) in
      if r >= 0 then locked.(r) <- true
    done;
    let cand = ref [] in
    for ci = s.nclauses - 1 downto 0 do
      if s.clause_learnt.(ci) && s.clause_lbd.(ci) > 2 && not locked.(ci) then
        cand := ci :: !cand
    done;
    let cand = Array.of_list !cand in
    (* drop the worst half of the live learned clauses: highest LBD
       first, older first among equals (deterministic) *)
    Array.sort
      (fun a b ->
        match compare s.clause_lbd.(b) s.clause_lbd.(a) with
        | 0 -> compare a b
        | c -> c)
      cand;
    let target = min (Array.length cand) (s.learnt_live / 2) in
    if target > 0 then begin
      let old_n = s.nclauses in
      let remove = Array.make old_n false in
      for k = 0 to target - 1 do
        remove.(cand.(k)) <- true
      done;
      let remap = Array.make old_n (-1) in
      let m = ref 0 in
      for ci = 0 to old_n - 1 do
        if not remove.(ci) then begin
          remap.(ci) <- !m;
          s.clauses.(!m) <- s.clauses.(ci);
          s.clause_lbd.(!m) <- s.clause_lbd.(ci);
          s.clause_learnt.(!m) <- s.clause_learnt.(ci);
          incr m
        end
      done;
      s.nclauses <- !m;
      s.learnt_live <- s.learnt_live - target;
      s.s_removed <- s.s_removed + target;
      for t = 0 to s.trail_len - 1 do
        let v = index_var s.trail.(t) in
        if s.reason.(v) >= 0 then s.reason.(v) <- remap.(s.reason.(v))
      done;
      (* rebuild watches: move two non-false literals into the watch
         slots.  A clause with a single non-false literal is a level-0
         reason (or satisfied clause): that literal lands at position 0,
         preserving the reason invariant. *)
      Array.fill s.watch_len 0 (Array.length s.watch_len) 0;
      for ci = 0 to s.nclauses - 1 do
        let c = s.clauses.(ci) in
        let len = Array.length c in
        let w = ref 0 in
        let k = ref 0 in
        while !w < 2 && !k < len do
          if value_of s c.(!k) <> Vfalse then begin
            let tmp = c.(!k) in
            c.(!k) <- c.(!w);
            c.(!w) <- tmp;
            incr w
          end;
          incr k
        done;
        push_watch s c.(0) ci;
        push_watch s c.(1) ci
      done
    end

  (* ---- clause addition (decision level 0 only) ----

     Sorts, dedups, drops tautologies, filters literals already false at
     level 0 and clauses already satisfied at level 0.  An empty result
     makes the solver permanently unsat; a unit is enqueued (propagated
     lazily by the next solve). *)

  let add_root s idx =
    if not s.unsat then begin
      Array.sort compare idx;
      let n = Array.length idx in
      let out = Array.make (max n 1) 0 in
      let m = ref 0 and sat = ref false and i = ref 0 in
      while (not !sat) && !i < n do
        let li = idx.(!i) in
        if !m > 0 && out.(!m - 1) = li then () (* duplicate *)
        else if !m > 0 && out.(!m - 1) = index_neg li then sat := true
        else begin
          match value_of s li with
          | Vtrue -> sat := true
          | Vfalse -> ()
          | Vfree ->
              out.(!m) <- li;
              incr m
        end;
        incr i
      done;
      if not !sat then
        match !m with
        | 0 -> s.unsat <- true
        | 1 -> enqueue s out.(0) (-1)
        | m -> ignore (attach_clause s (Array.sub out 0 m) ~learnt:false ~lbd:0)
    end

  let add_clause s lits =
    List.iter
      (fun l ->
        if l = 0 then invalid_arg "Sat.Solver.add_clause: literal 0";
        ensure_vars s (abs l))
      lits;
    backtrack s 0;
    add_root s (Array.of_list (List.map lit_index lits))

  let sync s cnf =
    backtrack s 0;
    ensure_vars s (Cnf.nvars cnf);
    let n = Cnf.nclauses cnf in
    while s.synced < n do
      add_root s (Array.map lit_index (Cnf.clause cnf s.synced));
      s.synced <- s.synced + 1
    done

  let of_cnf ?reduce_limit cnf =
    let s = create ?reduce_limit () in
    sync s cnf;
    s

  (* ---- the search loop ---- *)

  exception Done of result

  let solve ?(assumptions = []) ?(max_conflicts = max_int) s =
    let at_entry = stats s in
    let finish r =
      let now = stats s in
      let d =
        {
          decisions = now.decisions - at_entry.decisions;
          propagations = now.propagations - at_entry.propagations;
          conflicts = now.conflicts - at_entry.conflicts;
          learned = now.learned - at_entry.learned;
          kept = now.kept;
          removed = now.removed - at_entry.removed;
          restarts = now.restarts - at_entry.restarts;
        }
      in
      Domain.DLS.get stats_key := d;
      (* per-call deltas only: the search loop itself stays untouched,
         so tracing cost is per solve call, not per propagation *)
      if Sttc_obs.Obs.enabled () then
        Sttc_obs.Metrics.(
          incr "sat.solve_calls";
          incr ~by:d.decisions "sat.decisions";
          incr ~by:d.propagations "sat.propagations";
          incr ~by:d.conflicts "sat.conflicts";
          incr ~by:d.learned "sat.learned";
          incr ~by:d.removed "sat.removed";
          incr ~by:d.restarts "sat.restarts";
          peak_gauge "sat.kept_clauses" (float_of_int d.kept));
      r
    in
    if s.unsat then finish Unsat
    else begin
      backtrack s 0;
      let assum =
        Array.of_list
          (List.map
             (fun l ->
               if l = 0 then invalid_arg "Sat.Solver.solve: literal 0";
               ensure_vars s (abs l);
               lit_index l)
             assumptions)
      in
      let n_assum = Array.length assum in
      let conflicts0 = s.s_conflicts in
      let until_restart = ref (restart_base * luby s.luby_index) in
      try
        while true do
          let confl = propagate s in
          if confl >= 0 then begin
            s.s_conflicts <- s.s_conflicts + 1;
            if s.dlevel = 0 then begin
              s.unsat <- true;
              raise (Done Unsat)
            end;
            let arr, btlevel, lbd = analyze s confl in
            backtrack s btlevel;
            if Array.length arr = 1 then enqueue s arr.(0) (-1)
            else begin
              let ci = attach_clause s arr ~learnt:true ~lbd in
              enqueue s arr.(0) ci
            end;
            decay s;
            if s.s_conflicts - conflicts0 >= max_conflicts then
              raise (Done (Unknown "conflict budget"));
            decr until_restart;
            if !until_restart <= 0 then begin
              s.s_restarts <- s.s_restarts + 1;
              s.luby_index <- s.luby_index + 1;
              until_restart := restart_base * luby s.luby_index;
              backtrack s 0;
              if s.learnt_live >= s.reduce_limit then begin
                if propagate s >= 0 then begin
                  s.unsat <- true;
                  raise (Done Unsat)
                end;
                reduce_db s;
                Sttc_obs.Metrics.incr "sat.reduce_events";
                Sttc_obs.Span.instant "sat.reduce_db" ~cat:"sat"
                  ~attrs:[ ("live", string_of_int s.learnt_live) ];
                s.reduce_limit <- s.reduce_limit + reduce_step
              end
            end
          end
          else if s.dlevel < n_assum then begin
            (* establish the next assumption as a decision *)
            let p = assum.(s.dlevel) in
            match value_of s p with
            | Vtrue -> new_level s (* hold an empty level for it *)
            | Vfalse -> raise (Done Unsat)
            | Vfree ->
                new_level s;
                enqueue s p (-1)
          end
          else begin
            let v = pick_branch s in
            if v = 0 then begin
              let model = Array.make (s.nvars + 1) false in
              for u = 1 to s.nvars do
                model.(u) <- s.assign.(u) = Vtrue
              done;
              raise (Done (Sat model))
            end;
            s.s_decisions <- s.s_decisions + 1;
            new_level s;
            enqueue s (lit_index (if s.phase.(v) then v else -v)) (-1)
          end
        done;
        assert false
      with Done r -> finish r
    end
end

(* ---- one-shot wrappers over a throwaway solver ---- *)

let solve ?assumptions ?max_conflicts cnf =
  Solver.solve ?assumptions ?max_conflicts (Solver.of_cnf cnf)

let is_satisfiable cnf =
  match solve cnf with
  | Sat _ -> true
  | Unsat -> false
  | Unknown _ -> assert false (* unbudgeted solve never gives up *)

let model_value model v =
  if v <= 0 || v >= Array.length model then
    invalid_arg "Sat.model_value: variable out of range";
  model.(v)
