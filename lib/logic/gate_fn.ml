type t =
  | Buf
  | Not
  | And of int
  | Nand of int
  | Or of int
  | Nor of int
  | Xor of int
  | Xnor of int

let arity = function
  | Buf | Not -> 1
  | And n | Nand n | Or n | Nor n | Xor n | Xnor n -> n

let validate t =
  match t with
  | Buf | Not -> ()
  | And n | Nand n | Or n | Nor n | Xor n | Xnor n ->
      if n < 2 || n > Truth.max_arity then
        invalid_arg "Gate_fn.validate: arity out of [2, 6]"

let eval t inputs =
  if Array.length inputs <> arity t then invalid_arg "Gate_fn.eval: arity";
  let conj () = Array.for_all Fun.id inputs in
  let disj () = Array.exists Fun.id inputs in
  let parity () = Array.fold_left (fun acc b -> acc <> b) false inputs in
  match t with
  | Buf -> inputs.(0)
  | Not -> not inputs.(0)
  | And _ -> conj ()
  | Nand _ -> not (conj ())
  | Or _ -> disj ()
  | Nor _ -> not (disj ())
  | Xor _ -> parity ()
  | Xnor _ -> not (parity ())

let truth t = Truth.create ~arity:(arity t) (eval t)

let name = function
  | Buf -> "BUFF"
  | Not -> "NOT"
  | And _ -> "AND"
  | Nand _ -> "NAND"
  | Or _ -> "OR"
  | Nor _ -> "NOR"
  | Xor _ -> "XOR"
  | Xnor _ -> "XNOR"

let to_string t =
  match t with
  | Buf -> "BUF"
  | Not -> "NOT"
  | And n -> Printf.sprintf "AND%d" n
  | Nand n -> Printf.sprintf "NAND%d" n
  | Or n -> Printf.sprintf "OR%d" n
  | Nor n -> Printf.sprintf "NOR%d" n
  | Xor n -> Printf.sprintf "XOR%d" n
  | Xnor n -> Printf.sprintf "XNOR%d" n

let of_bench_name s ~arity:n =
  match (String.uppercase_ascii s, n) with
  | ("BUF" | "BUFF"), 1 -> Some Buf
  | ("NOT" | "INV"), 1 -> Some Not
  | "AND", n when n >= 2 -> Some (And n)
  | "NAND", n when n >= 2 -> Some (Nand n)
  | "OR", n when n >= 2 -> Some (Or n)
  | "NOR", n when n >= 2 -> Some (Nor n)
  | "XOR", n when n >= 2 -> Some (Xor n)
  | "XNOR", n when n >= 2 -> Some (Xnor n)
  | _ -> None

let equal a b = a = b
let compare = Stdlib.compare
let pp fmt t = Format.pp_print_string fmt (to_string t)

let all_of_arity n =
  if n = 1 then [ Buf; Not ]
  else if n >= 2 && n <= Truth.max_arity then
    [ And n; Nand n; Or n; Nor n; Xor n; Xnor n ]
  else invalid_arg "Gate_fn.all_of_arity"

let similarity a b = Truth.agreement (truth a) (truth b)

let average_similarity n =
  let gates = Array.of_list (all_of_arity n) in
  let count = ref 0 and total = ref 0 in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if j > i then begin
            incr count;
            total := !total + similarity a b
          end)
        gates)
    gates;
  if !count = 0 then 0. else float_of_int !total /. float_of_int !count

let computed_alpha n = average_similarity n +. 1.

(* Published constants from Section IV-A.  The paper's alpha for 2-input
   gates (2.45) implies an average similarity of 1.45, slightly below the
   1.6 obtained on the plain 6-gate set; the authors presumably average over
   a wider candidate mix.  We keep their constants for the Fig. 3
   reproduction and expose [computed_alpha] for sensitivity studies. *)
let paper_alpha = function
  | 1 -> 1.5
  | 2 -> 2.45
  | 3 -> 4.2
  | 4 -> 7.4
  | n when n > 4 ->
      (* extrapolate by the paper's observed ~1.75x per extra input *)
      7.4 *. (1.75 ** float_of_int (n - 4))
  | _ -> invalid_arg "Gate_fn.paper_alpha"

let candidate_count n = List.length (all_of_arity n)

(* P = 2.5 for 2-input (paper); scale the larger meaningful sets (the paper
   counts "more than 12" for 3-/4-input LUTs) by the same published ratio
   2.5/6. *)
let paper_p = function
  | 1 -> 1.5
  | 2 -> 2.5
  | 3 -> 5.0
  | 4 -> 5.4
  | n when n > 4 -> 5.4
  | _ -> invalid_arg "Gate_fn.paper_p"
