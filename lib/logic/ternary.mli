(** Three-valued logic (0, 1, X) for reasoning about circuits whose LUT
    contents are unknown.  The truth-table-extraction attack simulates the
    hybrid netlist with every missing gate producing X and measures where
    the unknowns reach observation points. *)

type v = Zero | One | X

val of_bool : bool -> v
val to_bool : v -> bool option
(** [None] for [X]. *)

val is_known : v -> bool

val lnot : v -> v
val land_ : v -> v -> v
val lor_ : v -> v -> v
val lxor_ : v -> v -> v

val land_n : v array -> v
val lor_n : v array -> v
val lxor_n : v array -> v

val eval_gate : Gate_fn.t -> v array -> v
(** Pessimistic gate evaluation: X inputs propagate unless the known inputs
    force the output (e.g. a 0 on an AND). *)

val eval_truth : Truth.t -> v array -> v
(** LUT evaluation under partial inputs: the output is known iff all rows
    compatible with the known inputs agree. *)

val equal : v -> v -> bool
val to_char : v -> char
val of_char : char -> v
(** Raises [Invalid_argument] for characters outside ['0'], ['1'], ['x'],
    ['X']. *)

val pp : Format.formatter -> v -> unit
