(** Gate functions of the standard-cell netlists (ISCAS'89 vocabulary) and
    the security metrics the paper derives from them.

    Section IV-A quantifies attack effort through two per-gate constants:

    - [alpha], the average number of test patterns needed to determine an
      independent missing gate, derived from the pairwise output
      "similarity" of candidate gates (paper: 2.45 / 4.2 / 7.4 for
      2-/3-/4-input gates);
    - [p], the number of plausible candidate gates per missing gate
      (paper: 2.5 for 2-input).

    This module provides both the paper's published constants (used to
    regenerate Fig. 3 faithfully) and the metric computed from first
    principles on the meaningful-gate sets. *)

type t =
  | Buf
  | Not
  | And of int
  | Nand of int
  | Or of int
  | Nor of int
  | Xor of int
  | Xnor of int
      (** Arity of the multi-input constructors must be >= 2. *)

val arity : t -> int

val validate : t -> unit
(** Raises [Invalid_argument] for arities outside [2, Truth.max_arity] on
    multi-input gates. *)

val eval : t -> bool array -> bool
val truth : t -> Truth.t

val name : t -> string
(** ISCAS'89 [.bench] keyword, e.g. [And 3 -> "AND"]. *)

val to_string : t -> string
(** Human-readable with arity, e.g. ["NAND4"]. *)

val of_bench_name : string -> arity:int -> t option
(** Parse a [.bench] keyword (["AND"], ["NOT"], ["BUFF"], ...); [None] for
    unknown keywords (e.g. ["DFF"], which is not a combinational gate). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val all_of_arity : int -> t list
(** The "meaningful" gate set of a given arity, as counted by the paper:
    for arity 2 the six gates AND, NAND, OR, NOR, XOR, XNOR; for arity 1
    [Buf; Not]. *)

val similarity : t -> t -> int
(** Rows of agreement of the two gates' truth tables (paper Section IV-A:
    AND2/NOR2 -> 2, AND2/NAND2 -> 0).  Raises [Invalid_argument] when
    arities differ. *)

val average_similarity : int -> float
(** Mean pairwise similarity over the meaningful set of the arity. *)

val computed_alpha : int -> float
(** [average_similarity n + 1.]: expected patterns to single a gate out. *)

val paper_alpha : int -> float
(** The constants published in the paper: 2.45, 4.2, 7.4 for arities
    2, 3, 4.  Arity 1 falls back to 1.5; arities above 4 extrapolate by the
    paper's growth ratio.  Used for the Fig. 3 reproduction. *)

val paper_p : int -> float
(** Candidate-gate count per missing gate: 2.5 for 2-input (paper);
    we use the meaningful-set sizes scaled by the same ratio for 3-/4-input
    (6, 12, 13 candidates -> 2.5, 5.0, 5.4). *)

val candidate_count : int -> int
(** Size of {!all_of_arity}. *)
