(** Reduced ordered binary decision diagrams with hash-consing.

    Used for formal equivalence checking of protected-vs-original circuits
    (combinational cones) and as an executable specification the simulator
    and SAT attack are tested against.  Variables are integers ordered by
    their natural order. *)

type manager
type t

val manager : ?cache_size:int -> unit -> manager
(** A fresh node table.  Nodes from different managers must not be mixed;
    doing so raises [Invalid_argument]. *)

val zero : manager -> t
val one : manager -> t
val var : manager -> int -> t
(** [var m i] with [i >= 0]. *)

val nvar : manager -> int -> t
(** Complement of [var]. *)

val lnot : manager -> t -> t
val land_ : manager -> t -> t -> t
val lor_ : manager -> t -> t -> t
val lxor_ : manager -> t -> t -> t
val lxnor_ : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t

val land_list : manager -> t list -> t
val lor_list : manager -> t list -> t
val lxor_list : manager -> t list -> t

val restrict : manager -> t -> int -> bool -> t
(** Cofactor with respect to a variable. *)

val equal : t -> t -> bool
(** Constant-time thanks to hash-consing (within one manager). *)

val is_zero : manager -> t -> bool
val is_one : manager -> t -> bool

val eval : t -> (int -> bool) -> bool
(** Evaluate under an assignment. *)

val sat_count : t -> nvars:int -> float
(** Number of satisfying assignments over [nvars] variables. *)

val any_sat : t -> (int * bool) list option
(** Some partial satisfying assignment (variables not mentioned are
    irrelevant), or [None] for the zero BDD. *)

val size : t -> int
(** Number of distinct internal nodes reachable from [t]. *)

val node_count : manager -> int
(** Total nodes allocated in the manager (monitoring / tests). *)

val support : t -> int list
(** Sorted list of variables the function depends on. *)

val of_truth : manager -> Truth.t -> vars:int array -> t
(** Build the BDD of a truth table applied to the given variables
    ([vars.(k)] is the BDD variable feeding input [k]). *)

val to_truth : t -> vars:int array -> Truth.t
(** Tabulate over the listed variables; all support variables of [t] must
    appear in [vars].  Raises [Invalid_argument] otherwise. *)
