(** Bit-packed truth tables for Boolean functions of up to 6 variables.

    Row [i] of the table is bit [i] of a 64-bit word, where input variable
    [k] contributes bit [k] of the row index (input 0 is the least
    significant).  This is the representation stored inside STT-LUT
    configurations and used by the similarity metric of Section IV-A. *)

type t

val max_arity : int
(** 6: a 64-bit word holds [2^6] rows. *)

val arity : t -> int
val rows : t -> int
(** [2^arity]. *)

val create : arity:int -> (bool array -> bool) -> t
(** Tabulate a Boolean function.  Raises [Invalid_argument] if the arity is
    outside [0, max_arity]. *)

val of_bits : arity:int -> int64 -> t
(** Interpret the low [2^arity] bits as the table; higher bits must be 0. *)

val bits : t -> int64

val const_false : arity:int -> t
val const_true : arity:int -> t
val var : arity:int -> int -> t
(** [var ~arity k] is the projection onto input [k]. *)

val row : t -> int -> bool
(** [row t i] is the output for input row [i]. *)

val eval : t -> bool array -> bool
(** [eval t inputs] looks up the row addressed by [inputs]; the array length
    must equal the arity. *)

val lnot : t -> t
val land_ : t -> t -> t
val lor_ : t -> t -> t
val lxor_ : t -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val agreement : t -> t -> int
(** [agreement a b] is the number of input rows on which [a] and [b]
    produce the same output — the paper's "similarity" of two gates
    (e.g. AND2 vs NOR2 agree on 2 rows; AND2 vs NAND2 on 0).
    Raises [Invalid_argument] when arities differ. *)

val count_ones : t -> int
(** Number of rows producing 1 (the on-set size). *)

val cofactor : t -> int -> bool -> t
(** [cofactor t k v] fixes input [k] to [v]; the result keeps the same
    arity with input [k] becoming irrelevant. *)

val depends_on : t -> int -> bool
(** Whether the output actually depends on input [k]. *)

val support_size : t -> int
(** Number of inputs the function truly depends on. *)

val is_degenerate : t -> bool
(** True when the function ignores at least one of its declared inputs
    (including constants).  A "meaningful" LUT content is non-degenerate. *)

val to_string : t -> string
(** Rows as a 0/1 string, row 0 first, e.g. AND2 = ["0001"]. *)

val of_string : string -> t
(** Inverse of {!to_string}.  Raises [Invalid_argument] on bad input. *)

val pp : Format.formatter -> t -> unit

val enumerate : arity:int -> t Seq.t
(** All [2^(2^arity)] functions of the given arity (practical for
    arity <= 4). *)

val random : Sttc_util.Rng.t -> arity:int -> t
