(* Classic hash-consed ROBDD with an ITE computed-cache.  Node ids are
   dense non-negative integers; ids 0 and 1 are the terminals.  A value of
   type [t] carries its manager so that evaluation, counting and support
   queries need no explicit manager argument. *)

type node = {
  var : int;
  low : int;
  high : int;
}

type manager = {
  mutable nodes : node array;
  mutable next : int;
  unique : (int * int * int, int) Hashtbl.t;
  cache : (int * int * int, int) Hashtbl.t;
  mid : int;
}

type t = {
  mgr : manager;
  id : int;
}

let terminal_var = max_int

(* atomic so managers created on different domains (parallel attack or
   equivalence tasks) still get distinct ids for the mixing check *)
let counter = Atomic.make 0

let manager ?(cache_size = 1 lsl 14) () =
  let dummy = { var = terminal_var; low = 0; high = 0 } in
  {
    nodes = Array.make 1024 dummy;
    next = 2;
    unique = Hashtbl.create cache_size;
    cache = Hashtbl.create cache_size;
    mid = 1 + Atomic.fetch_and_add counter 1;
  }

let zero m = { mgr = m; id = 0 }
let one m = { mgr = m; id = 1 }

let is_terminal id = id < 2
let var_of m id = if is_terminal id then terminal_var else m.nodes.(id).var

let check m t =
  if t.mgr.mid <> m.mid then invalid_arg "Bdd: mixing managers";
  t.id

let mk m v low high =
  if low = high then low
  else
    match Hashtbl.find_opt m.unique (v, low, high) with
    | Some id -> id
    | None ->
        let id = m.next in
        m.next <- id + 1;
        if id >= Array.length m.nodes then begin
          let bigger =
            Array.make
              (2 * Array.length m.nodes)
              { var = terminal_var; low = 0; high = 0 }
          in
          Array.blit m.nodes 0 bigger 0 (Array.length m.nodes);
          m.nodes <- bigger
        end;
        m.nodes.(id) <- { var = v; low; high };
        Hashtbl.add m.unique (v, low, high) id;
        id

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative";
  { mgr = m; id = mk m i 0 1 }

let nvar m i =
  if i < 0 then invalid_arg "Bdd.nvar: negative";
  { mgr = m; id = mk m i 1 0 }

let rec ite_raw m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else
    match Hashtbl.find_opt m.cache (f, g, h) with
    | Some r -> r
    | None ->
        let v = min (var_of m f) (min (var_of m g) (var_of m h)) in
        let cof x b =
          if is_terminal x then x
          else
            let n = m.nodes.(x) in
            if n.var = v then (if b then n.high else n.low) else x
        in
        let high = ite_raw m (cof f true) (cof g true) (cof h true) in
        let low = ite_raw m (cof f false) (cof g false) (cof h false) in
        let r = mk m v low high in
        Hashtbl.add m.cache (f, g, h) r;
        r

let ite m f g h =
  { mgr = m; id = ite_raw m (check m f) (check m g) (check m h) }

let lnot m f = { mgr = m; id = ite_raw m (check m f) 0 1 }
let land_ m f g = { mgr = m; id = ite_raw m (check m f) (check m g) 0 }
let lor_ m f g = { mgr = m; id = ite_raw m (check m f) 1 (check m g) }

let lxor_ m f g =
  let gid = check m g in
  let ngid = ite_raw m gid 0 1 in
  { mgr = m; id = ite_raw m (check m f) ngid gid }

let lxnor_ m f g =
  let gid = check m g in
  let ngid = ite_raw m gid 0 1 in
  { mgr = m; id = ite_raw m (check m f) gid ngid }

let land_list m l = List.fold_left (land_ m) (one m) l
let lor_list m l = List.fold_left (lor_ m) (zero m) l
let lxor_list m l = List.fold_left (lxor_ m) (zero m) l

let restrict m f v b =
  let rec go id =
    if is_terminal id then id
    else
      let n = m.nodes.(id) in
      if n.var > v then id
      else if n.var = v then (if b then n.high else n.low)
      else mk m n.var (go n.low) (go n.high)
  in
  { mgr = m; id = go (check m f) }

let equal a b =
  if a.mgr.mid <> b.mgr.mid then invalid_arg "Bdd.equal: mixing managers";
  a.id = b.id

let is_zero m f = check m f = 0
let is_one m f = check m f = 1

let eval t assign =
  let m = t.mgr in
  let rec go id =
    if id = 0 then false
    else if id = 1 then true
    else
      let n = m.nodes.(id) in
      go (if assign n.var then n.high else n.low)
  in
  go t.id

let sat_count t ~nvars =
  let m = t.mgr in
  let memo = Hashtbl.create 64 in
  (* count over variables in [v, nvars) below node [id] *)
  let rec go id v =
    if id = 0 then 0.
    else if id = 1 then 2. ** float_of_int (nvars - v)
    else
      let n = m.nodes.(id) in
      if n.var >= nvars then
        invalid_arg "Bdd.sat_count: support exceeds nvars"
      else
        let key = (id, v) in
        match Hashtbl.find_opt memo key with
        | Some c -> c
        | None ->
            (* Each level skipped between [v] and [n.var] doubles the
               count; at [n.var] the low/high branches partition the
               remaining space. *)
            let skipped = 2. ** float_of_int (n.var - v) in
            let c = skipped *. (go n.low (n.var + 1) +. go n.high (n.var + 1)) in
            Hashtbl.add memo key c;
            c
  in
  go t.id 0

let any_sat t =
  let m = t.mgr in
  if t.id = 0 then None
  else
    let rec go id acc =
      if id = 1 then List.rev acc
      else
        let n = m.nodes.(id) in
        if n.high <> 0 then go n.high ((n.var, true) :: acc)
        else go n.low ((n.var, false) :: acc)
    in
    Some (go t.id [])

let size t =
  let m = t.mgr in
  let seen = Hashtbl.create 64 in
  let rec go id =
    if not (is_terminal id) && not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      let n = m.nodes.(id) in
      go n.low;
      go n.high
    end
  in
  go t.id;
  Hashtbl.length seen

let node_count m = m.next - 2

let support t =
  let m = t.mgr in
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go id =
    if not (is_terminal id) && not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      let n = m.nodes.(id) in
      Hashtbl.replace vars n.var ();
      go n.low;
      go n.high
    end
  in
  go t.id;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let of_truth m table ~vars =
  let n = Truth.arity table in
  if Array.length vars <> n then invalid_arg "Bdd.of_truth: vars arity";
  let acc = ref (zero m) in
  for r = 0 to (1 lsl n) - 1 do
    if Truth.row table r then begin
      let cube = ref (one m) in
      for k = 0 to n - 1 do
        let lit =
          if (r lsr k) land 1 = 1 then var m vars.(k) else nvar m vars.(k)
        in
        cube := land_ m !cube lit
      done;
      acc := lor_ m !acc !cube
    end
  done;
  !acc

let to_truth t ~vars =
  let sup = support t in
  let listed v = Array.exists (fun x -> x = v) vars in
  List.iter
    (fun v ->
      if not (listed v) then invalid_arg "Bdd.to_truth: support not covered")
    sup;
  let n = Array.length vars in
  Truth.create ~arity:n (fun inputs ->
      let assign v =
        (* find position of [v] in [vars]; vars are distinct by contract *)
        let rec find k =
          if k >= n then false else if vars.(k) = v then inputs.(k) else find (k + 1)
        in
        find 0
      in
      eval t assign)
