type lit = int
type clause = lit array

type t = {
  mutable nvars : int;
  clauses : clause Sttc_util.Growable.t;
}

let create () = { nvars = 0; clauses = Sttc_util.Growable.create () }

let fresh_var t =
  t.nvars <- t.nvars + 1;
  t.nvars

let reserve t n = if n > t.nvars then t.nvars <- n
let nvars t = t.nvars
let nclauses t = Sttc_util.Growable.length t.clauses

let check_lit t l =
  let v = abs l in
  if v = 0 || v > t.nvars then invalid_arg "Cnf: literal out of range"

let add_clause_a t c =
  Array.iter (check_lit t) c;
  ignore (Sttc_util.Growable.push t.clauses c)

let add_clause t lits = add_clause_a t (Array.of_list lits)

let clauses t = Sttc_util.Growable.to_list t.clauses
let clause t i = Sttc_util.Growable.get t.clauses i
let iter_clauses f t = Sttc_util.Growable.iter f t.clauses

let encode_buf t out a =
  add_clause t [ -out; a ];
  add_clause t [ out; -a ]

let encode_not t out a =
  add_clause t [ -out; -a ];
  add_clause t [ out; a ]

let encode_and t out inputs =
  (* out -> each input; all inputs -> out *)
  List.iter (fun a -> add_clause t [ -out; a ]) inputs;
  add_clause t (out :: List.map (fun a -> -a) inputs)

let encode_or t out inputs =
  List.iter (fun a -> add_clause t [ out; -a ]) inputs;
  add_clause t (-out :: inputs)

let encode_xor t out a b =
  add_clause t [ -out; a; b ];
  add_clause t [ -out; -a; -b ];
  add_clause t [ out; -a; b ];
  add_clause t [ out; a; -b ]

let encode_xor_list t out inputs =
  match inputs with
  | [] -> invalid_arg "Cnf.encode_xor_list: empty"
  | [ a ] -> encode_buf t out a
  | a :: rest ->
      let acc =
        List.fold_left
          (fun acc b ->
            let v = fresh_var t in
            encode_xor t v acc b;
            v)
          a rest
      in
      encode_buf t out acc

let encode_gate t out fn inputs =
  if List.length inputs <> Gate_fn.arity fn then
    invalid_arg "Cnf.encode_gate: arity";
  match fn with
  | Gate_fn.Buf -> encode_buf t out (List.hd inputs)
  | Gate_fn.Not -> encode_not t out (List.hd inputs)
  | Gate_fn.And _ -> encode_and t out inputs
  | Gate_fn.Nand _ ->
      let v = fresh_var t in
      encode_and t v inputs;
      encode_not t out v
  | Gate_fn.Or _ -> encode_or t out inputs
  | Gate_fn.Nor _ ->
      let v = fresh_var t in
      encode_or t v inputs;
      encode_not t out v
  | Gate_fn.Xor _ -> encode_xor_list t out inputs
  | Gate_fn.Xnor _ ->
      let v = fresh_var t in
      encode_xor_list t v inputs;
      encode_not t out v

let encode_mux t out ~sel ~lo ~hi =
  (* sel=1 -> out=hi ; sel=0 -> out=lo *)
  add_clause t [ -sel; -hi; out ];
  add_clause t [ -sel; hi; -out ];
  add_clause t [ sel; -lo; out ];
  add_clause t [ sel; lo; -out ]

let encode_truth_lut t out ~key ~inputs =
  let n = Array.length inputs in
  let rows = Array.length key in
  if rows <> 1 lsl n then invalid_arg "Cnf.encode_truth_lut: key size";
  (* For each row r: (inputs match r) -> out = key.(r).  The row match is a
     conjunction of input literals directly usable as clause antecedents. *)
  for r = 0 to rows - 1 do
    let antecedent =
      List.init n (fun k ->
          let l = inputs.(k) in
          if (r lsr k) land 1 = 1 then -l else l)
    in
    add_clause t ((out :: -key.(r) :: antecedent));
    add_clause t ((-out :: key.(r) :: antecedent))
  done

let pp_stats fmt t =
  Format.fprintf fmt "cnf: %d vars, %d clauses" (nvars t) (nclauses t)
