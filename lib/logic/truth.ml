type t = {
  arity : int;
  bits : int64;
}

let max_arity = 6

let check_arity n =
  if n < 0 || n > max_arity then invalid_arg "Truth: arity out of range"

let arity t = t.arity
let rows t = 1 lsl t.arity

let mask n = if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let of_bits ~arity bits =
  check_arity arity;
  if Int64.logand bits (Int64.lognot (mask arity)) <> 0L then
    invalid_arg "Truth.of_bits: bits beyond 2^arity";
  { arity; bits }

let bits t = t.bits

let create ~arity f =
  check_arity arity;
  let bits = ref 0L in
  let inputs = Array.make arity false in
  for r = 0 to (1 lsl arity) - 1 do
    for k = 0 to arity - 1 do
      inputs.(k) <- (r lsr k) land 1 = 1
    done;
    if f inputs then bits := Int64.logor !bits (Int64.shift_left 1L r)
  done;
  { arity; bits = !bits }

let const_false ~arity =
  check_arity arity;
  { arity; bits = 0L }

let const_true ~arity =
  check_arity arity;
  { arity; bits = mask arity }

let var ~arity k =
  if k < 0 || k >= arity then invalid_arg "Truth.var: index";
  create ~arity (fun inputs -> inputs.(k))

let row t i =
  if i < 0 || i >= rows t then invalid_arg "Truth.row: index";
  Int64.logand (Int64.shift_right_logical t.bits i) 1L = 1L

let eval t inputs =
  if Array.length inputs <> t.arity then invalid_arg "Truth.eval: arity";
  let r = ref 0 in
  for k = 0 to t.arity - 1 do
    if inputs.(k) then r := !r lor (1 lsl k)
  done;
  row t !r

let same_arity a b name =
  if a.arity <> b.arity then invalid_arg ("Truth." ^ name ^ ": arity mismatch")

let lnot t = { t with bits = Int64.logand (Int64.lognot t.bits) (mask t.arity) }

let land_ a b =
  same_arity a b "land_";
  { a with bits = Int64.logand a.bits b.bits }

let lor_ a b =
  same_arity a b "lor_";
  { a with bits = Int64.logor a.bits b.bits }

let lxor_ a b =
  same_arity a b "lxor_";
  { a with bits = Int64.logxor a.bits b.bits }

let equal a b = a.arity = b.arity && Int64.equal a.bits b.bits

let compare a b =
  match Int.compare a.arity b.arity with
  | 0 -> Int64.compare a.bits b.bits
  | c -> c

let hash t = Hashtbl.hash (t.arity, t.bits)

let popcount64 x =
  let rec loop acc x = if Int64.equal x 0L then acc
    else loop (acc + 1) (Int64.logand x (Int64.sub x 1L))
  in
  loop 0 x

let agreement a b =
  same_arity a b "agreement";
  rows a - popcount64 (Int64.logxor a.bits b.bits)

let count_ones t = popcount64 t.bits

let cofactor t k v =
  if k < 0 || k >= t.arity then invalid_arg "Truth.cofactor: index";
  create ~arity:t.arity (fun inputs ->
      let inputs = Array.copy inputs in
      inputs.(k) <- v;
      eval t inputs)

let depends_on t k =
  not (equal (cofactor t k false) (cofactor t k true))

let support_size t =
  let n = ref 0 in
  for k = 0 to t.arity - 1 do
    if depends_on t k then incr n
  done;
  !n

let is_degenerate t = support_size t < t.arity

let to_string t =
  String.init (rows t) (fun i -> if row t i then '1' else '0')

let of_string s =
  let n = String.length s in
  let arity =
    match n with
    | 1 -> 0
    | 2 -> 1
    | 4 -> 2
    | 8 -> 3
    | 16 -> 4
    | 32 -> 5
    | 64 -> 6
    | _ -> invalid_arg "Truth.of_string: length must be a power of two <= 64"
  in
  let bits = ref 0L in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> bits := Int64.logor !bits (Int64.shift_left 1L i)
      | '0' -> ()
      | _ -> invalid_arg "Truth.of_string: expected 0/1")
    s;
  { arity; bits = !bits }

let pp fmt t = Format.pp_print_string fmt (to_string t)

let enumerate ~arity =
  check_arity arity;
  if arity > 4 then invalid_arg "Truth.enumerate: arity too large to enumerate";
  let count = 1 lsl (1 lsl arity) in
  Seq.init count (fun i -> { arity; bits = Int64.of_int i })

let random rng ~arity =
  check_arity arity;
  { arity; bits = Int64.logand (Sttc_util.Rng.int64 rng) (mask arity) }
