module Gate_fn = Sttc_logic.Gate_fn

(* Technology anchors, 90 nm flavour. *)
let tau_ps = 32.
let energy_unit_fj = 1.1 (* per transistor pair switched *)
let leak_unit_nw = 2.4 (* per transistor pair *)
let area_unit_um2 = 0.55 (* per transistor *)

let transistor_count fn =
  match fn with
  | Gate_fn.Buf -> 4
  | Gate_fn.Not -> 2
  | Gate_fn.And n | Gate_fn.Or n -> (2 * n) + 2 (* NAND/NOR + inverter *)
  | Gate_fn.Nand n | Gate_fn.Nor n -> 2 * n
  | Gate_fn.Xor n | Gate_fn.Xnor n -> 6 * (n - 1) + 2

(* Logical-effort-style stage delay: series NMOS stacks slow NAND mildly,
   series PMOS stacks slow NOR substantially (PMOS mobility deficit ~2x). *)
let delay_ps fn =
  match fn with
  | Gate_fn.Buf -> 1.6 *. tau_ps
  | Gate_fn.Not -> 1.0 *. tau_ps
  | Gate_fn.Nand n -> tau_ps *. (1.0 +. (0.33 *. float_of_int (n - 1)))
  | Gate_fn.Nor n -> tau_ps *. (1.0 +. (0.62 *. float_of_int (n - 1)))
  | Gate_fn.And n -> tau_ps *. (2.0 +. (0.33 *. float_of_int (n - 1)))
  | Gate_fn.Or n -> tau_ps *. (2.0 +. (0.62 *. float_of_int (n - 1)))
  | Gate_fn.Xor n | Gate_fn.Xnor n ->
      tau_ps *. (2.2 +. (0.85 *. float_of_int (n - 1)))

let switch_energy_fj fn =
  energy_unit_fj *. float_of_int (transistor_count fn) /. 2.

(* Transistor stacking suppresses leakage in series stacks: high fan-in
   NAND/NOR leak less per transistor. *)
let leakage_nw fn =
  let pairs = float_of_int (transistor_count fn) /. 2. in
  let stack_factor =
    match fn with
    | Gate_fn.Nand n | Gate_fn.Nor n | Gate_fn.And n | Gate_fn.Or n ->
        1.0 /. (1.0 +. (0.45 *. float_of_int (n - 1)))
    | Gate_fn.Buf | Gate_fn.Not | Gate_fn.Xor _ | Gate_fn.Xnor _ -> 1.0
  in
  leak_unit_nw *. pairs *. stack_factor

let area_um2 fn = area_unit_um2 *. float_of_int (transistor_count fn)

let gate fn =
  Gate_fn.validate fn;
  {
    Cell.cell_name = Gate_fn.to_string fn;
    style = Cell.Cmos;
    arity = Gate_fn.arity fn;
    delay_ps = delay_ps fn;
    switch_energy_fj = switch_energy_fj fn;
    leakage_nw = leakage_nw fn;
    area_um2 = area_um2 fn;
  }

let inverter = gate Gate_fn.Not

let dff =
  {
    Cell.cell_name = "DFF";
    style = Cell.Sequential;
    arity = 1;
    delay_ps = 2.4 *. tau_ps; (* clk-to-q plus setup allocated to the cell *)
    switch_energy_fj = 6.0;
    leakage_nw = 9.0;
    area_um2 = 11.0;
  }

let average_gate =
  (* weighted like the generator's gate mix: mostly NAND2/NOR2-class *)
  let samples =
    [
      gate (Gate_fn.Nand 2);
      gate (Gate_fn.Nor 2);
      gate (Gate_fn.And 2);
      gate (Gate_fn.Or 2);
      gate Gate_fn.Not;
      gate (Gate_fn.Nand 3);
    ]
  in
  let n = float_of_int (List.length samples) in
  let avg f = List.fold_left (fun acc c -> acc +. f c) 0. samples /. n in
  {
    Cell.cell_name = "AVG";
    style = Cell.Cmos;
    arity = 2;
    delay_ps = avg (fun c -> c.Cell.delay_ps);
    switch_energy_fj = avg (fun c -> c.Cell.switch_energy_fj);
    leakage_nw = avg (fun c -> c.Cell.leakage_nw);
    area_um2 = avg (fun c -> c.Cell.area_um2);
  }
