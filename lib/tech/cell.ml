type style =
  | Cmos
  | Stt_lut
  | Tvd
  | Sequential

type t = {
  cell_name : string;
  style : style;
  arity : int;
  delay_ps : float;
  switch_energy_fj : float;
  leakage_nw : float;
  area_um2 : float;
}

let activity_independent c =
  match c.style with Stt_lut -> true | Cmos | Tvd | Sequential -> false

let dynamic_power_uw c ~activity ~clock_ghz =
  if activity < 0. || activity > 1. then
    invalid_arg "Cell.dynamic_power_uw: activity out of [0,1]";
  if clock_ghz <= 0. then invalid_arg "Cell.dynamic_power_uw: clock";
  (* fJ * GHz = microwatt *)
  let effective = if activity_independent c then 1. else activity in
  effective *. c.switch_energy_fj *. clock_ghz

let total_power_uw c ~activity ~clock_ghz =
  dynamic_power_uw c ~activity ~clock_ghz +. (c.leakage_nw /. 1000.)

let pp fmt c =
  Format.fprintf fmt "%s(arity %d): %.1f ps, %.2f fJ, %.2f nW, %.2f um2"
    c.cell_name c.arity c.delay_ps c.switch_energy_fj c.leakage_nw c.area_um2
