let lut n =
  if n < 1 || n > Sttc_logic.Truth.max_arity then
    invalid_arg "Sram_lib.lut: arity out of range";
  let fn = float_of_int n in
  {
    Cell.cell_name = Printf.sprintf "SRAM_LUT%d" n;
    style = Cell.Stt_lut;
    (* also a pre-charged mux-tree read path: activity independent *)
    arity = n;
    (* static read through a pass-transistor mux: faster than the MTJ
       sense amplifier *)
    delay_ps = 95. +. (22. *. fn);
    switch_energy_fj = 3.1 *. (1.55 ** (fn -. 2.));
    (* 6T cells leak; 2^n bits plus periphery *)
    leakage_nw = 6.5 +. (3.8 *. float_of_int (1 lsl n));
    (* 6T bitcell area dominates *)
    area_um2 = 4.2 +. (1.7 *. float_of_int (1 lsl n));
  }

let bitstream_exposed = true
let reload_time_us = 120.
