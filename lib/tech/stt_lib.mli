(** STT-MRAM LUT technology: the paper's Figure 1 reference data and the
    cells used by the hybrid flow.

    Two layers:

    - {!fig1_reference} embeds the published table (Suzuki-style MTJ LUT
      vs static CMOS, predictive 32 nm, normalized to CMOS) — the ground
      truth the paper takes from prior work [16, 9].
    - {!fig1_model} is an analytical circuit-style model (sense-amplifier
      read path + NMOS select tree, pre-charged every cycle) that
      regenerates the table's {e shape}: delay overhead shrinking with
      gate complexity, NOR favoured over NAND, active-power overhead
      shrinking as activity rises, standby power below CMOS except for
      high fan-in NAND/NOR.

    The {!lut} cells are 90 nm-calibrated absolute values consumed by the
    timing/power/area analyses of the hybrid flow (Table I).  Their key
    property, inherited from the technology: delay and power depend only
    on fan-in, never on the programmed function or the input activity. *)

type fig1_row = {
  gate : Sttc_logic.Gate_fn.t;
  delay_ratio : float;  (** LUT delay / CMOS delay *)
  active_power_ratio_10 : float;  (** at switching activity 10 % *)
  active_power_ratio_30 : float;  (** at 30 % *)
  standby_power_ratio : float;
  energy_per_switching_ratio : float;
}

val fig1_reference : fig1_row list
(** The six rows of the paper's Fig. 1: NAND2, NAND4, NOR2, NOR4, XOR2,
    XOR4. *)

val fig1_model : Sttc_logic.Gate_fn.t -> fig1_row
(** Analytical prediction for any supported 2-/3-/4-input gate. *)

val lut : int -> Cell.t
(** The STT LUT cell of a given fan-in (1..6 supported; the paper inserts
    2-4).  Delay/energy/area grow with fan-in only. *)

val write_energy_fj : float
(** Energy to program one MTJ cell — large (the technology's main cost),
    but paid only at configuration time, never during operation. *)

val write_time_ns : float
val retention_years : float
val endurance_writes : float
