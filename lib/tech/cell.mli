(** Technology cell descriptors shared by the CMOS and STT libraries.

    Units: delay in picoseconds, switching energy in femtojoules, leakage
    (standby) power in nanowatts, area in square micrometres. *)

type style =
  | Cmos  (** static custom CMOS gate *)
  | Stt_lut  (** non-volatile MTJ-based reconfigurable LUT *)
  | Tvd
      (** threshold-voltage-defined camouflaged cell: a static CMOS-style
          gate whose function is set by the implant, so its power is
          activity dependent like any other gate *)
  | Sequential  (** D flip-flop *)

type t = {
  cell_name : string;
  style : style;
  arity : int;
  delay_ps : float;  (** worst-case pin-to-output delay *)
  switch_energy_fj : float;
      (** energy per output switching event (CMOS, DFF); for STT LUTs this
          is the per-cycle read/pre-charge energy, burned every clock
          independent of data activity *)
  leakage_nw : float;
  area_um2 : float;
}

val activity_independent : t -> bool
(** True for STT LUTs: their active power does not depend on input data
    activity (Section III), the property that hardens them against
    power side channels. *)

val dynamic_power_uw :
  t -> activity:float -> clock_ghz:float -> float
(** Average dynamic power.  For CMOS/DFF cells this is
    [activity * E_sw * f]; for STT LUTs it is [E_sw * f] regardless of
    [activity]. *)

val total_power_uw : t -> activity:float -> clock_ghz:float -> float
(** Dynamic plus leakage. *)

val pp : Format.formatter -> t -> unit
