let lut n =
  if n < 1 || n > Sttc_logic.Truth.max_arity then
    invalid_arg "Tvd_lib.lut: arity out of range";
  let fn = float_of_int n in
  {
    Cell.cell_name = Printf.sprintf "TVD_CAMO%d" n;
    style = Cell.Tvd;
    arity = n;
    (* a static gate with threshold-selected pull networks: close to the
       plain CMOS gate it replaces, far below the MTJ sense amplifier *)
    delay_ps = 45. +. (18. *. fn);
    switch_energy_fj = 1.9 *. (1.35 ** (fn -. 2.));
    (* the always-on low-Vt branches leak more than standard CMOS, but
       only linearly in fan-in: there is no 2^n memory array *)
    leakage_nw = 3.2 +. (0.9 *. fn);
    (* one camouflaged gate footprint, linear in fan-in *)
    area_um2 = 2.6 +. (0.85 *. fn);
  }

let candidate_functions n = Sttc_logic.Gate_fn.all_of_arity n
let program_energy_fj = 820.
let program_time_ns = 85.
