type lut_style =
  | Stt
  | Sram
  | Tvd

type t = {
  clock_ghz : float;
  lut_style : lut_style;
}

let cmos90 = { clock_ghz = 1.0; lut_style = Stt }

let with_clock t ~ghz =
  if ghz <= 0. then invalid_arg "Library.with_clock";
  { t with clock_ghz = ghz }

let with_lut_style t style = { t with lut_style = style }
let lut_style t = t.lut_style
let clock_ghz t = t.clock_ghz

let gate_cell _t fn = Cmos_lib.gate fn

let lut_cell t n =
  match t.lut_style with
  | Stt -> Stt_lib.lut n
  | Sram -> Sram_lib.lut n
  | Tvd -> Tvd_lib.lut n

let dff_cell _t = Cmos_lib.dff

let cell_of_kind t kind =
  match kind with
  | Sttc_netlist.Netlist.Pi | Sttc_netlist.Netlist.Const _ -> None
  | Sttc_netlist.Netlist.Gate fn -> Some (gate_cell t fn)
  | Sttc_netlist.Netlist.Lut { arity; _ } -> Some (lut_cell t arity)
  | Sttc_netlist.Netlist.Dff -> Some (dff_cell t)

let node_delay_ps t kind =
  match cell_of_kind t kind with
  | None -> 0.
  | Some c -> c.Cell.delay_ps

let node_area_um2 t kind =
  match cell_of_kind t kind with
  | None -> 0.
  | Some c -> c.Cell.area_um2
