(** A 90 nm-flavoured static CMOS standard-cell library.

    Cell characteristics come from a small logical-effort-style analytical
    model rather than a foundry kit: delay grows with fan-in through
    series-transistor stacks (NOR suffers more than NAND because of the
    weaker PMOS pull-up), switching energy and area grow with transistor
    count, and leakage benefits from the stacking effect in high fan-in
    NAND/NOR — the qualitative behaviour Section III discusses. *)

val inverter : Cell.t
val dff : Cell.t

val gate : Sttc_logic.Gate_fn.t -> Cell.t
(** Cell for a combinational gate function.  Raises [Invalid_argument] on
    arities outside the supported range (1..6). *)

val average_gate : Cell.t
(** A representative "average" gate (mix-weighted NAND2-ish values), used
    for calibration summaries only. *)

(* Model parameters, exposed for documentation and tests. *)

val tau_ps : float
(** Base technology delay unit (inverter FO4-ish). *)

val transistor_count : Sttc_logic.Gate_fn.t -> int
