(** Unified technology lookup used by the timing, power and area analyses.

    A library maps netlist node kinds to cells.  The default [cmos90]
    instance pairs the {!Cmos_lib} gates with {!Stt_lib} LUTs, the
    combination the hybrid flow evaluates. *)

type lut_style =
  | Stt  (** non-volatile MTJ LUTs — the paper's technology *)
  | Sram  (** volatile SRAM LUTs — the prior-work baseline [8] *)
  | Tvd  (** threshold-voltage-defined camouflaged cells — {!Tvd_lib} *)

type t

val cmos90 : t
(** The default hybrid library (90 nm CMOS + STT LUT cells). *)

val with_clock : t -> ghz:float -> t
(** Same cells, different operating clock (default 1.0 GHz). *)

val with_lut_style : t -> lut_style -> t
(** Swap the reconfigurable-cell technology, e.g. to price the same
    hybrid netlist in SRAM-LUT form for the Section II comparison. *)

val lut_style : t -> lut_style
val clock_ghz : t -> float

val cell_of_kind : t -> Sttc_netlist.Netlist.kind -> Cell.t option
(** [None] for primary inputs and constants (they carry no cell). *)

val gate_cell : t -> Sttc_logic.Gate_fn.t -> Cell.t
val lut_cell : t -> int -> Cell.t
val dff_cell : t -> Cell.t

val node_delay_ps : t -> Sttc_netlist.Netlist.kind -> float
(** 0. for PIs and constants. *)

val node_area_um2 : t -> Sttc_netlist.Netlist.kind -> float
