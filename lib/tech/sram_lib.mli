(** SRAM-based reconfigurable LUTs — the prior-work baseline [8] the paper
    positions itself against (Section II).

    Functionally interchangeable with the STT LUTs, but: volatile (the
    configuration must be reloaded from an external non-volatile memory on
    every power-up, which re-exposes the bitstream the whole scheme is
    supposed to hide), leakier (6T cells vs near-zero MTJ standby), and
    bulkier per bit, while switching faster (no sense-amplifier read
    path). *)

val lut : int -> Cell.t
(** SRAM LUT cell of a given fan-in (1..6). *)

val bitstream_exposed : bool
(** [true]: an attacker who probes the external configuration memory or
    the power-up bus reads the secret directly — the paper's core
    criticism of SRAM-based obfuscation. *)

val reload_time_us : float
(** Configuration reload latency on every power-up. *)
