(** Threshold-voltage-defined (TVD) camouflaged cells — the adjacent
    defense family the backend layer prices against the paper's STT LUTs
    (Iyengar & Ghosh, arXiv:1512.01581; Collantes et al.,
    arXiv:1605.00684).

    A TVD cell is a static gate whose logic function is selected by a
    threshold-voltage implant (or a one-time charge trim) among a small
    family of candidates, all of which share one layout.  Compared with
    an STT LUT of the same fan-in it is faster, smaller and leakier only
    linearly in fan-in (no 2^n memory array), but its power is activity
    dependent like ordinary CMOS, and its keyspace per cell is the
    candidate-family size rather than [2^2^n]. *)

val lut : int -> Cell.t
(** TVD camouflaged cell of a given fan-in (1..6). *)

val candidate_functions : int -> Sttc_logic.Gate_fn.t list
(** The functions one TVD layout of the given fan-in can realize: the
    full standard-gate family of that arity ({!Sttc_logic.Gate_fn.all_of_arity}).
    Every replaced gate's function is in this family, and an attacker is
    assumed to know it — only the implant choice is secret. *)

val program_energy_fj : float
(** Energy to trim one cell's threshold at configuration time. *)

val program_time_ns : float
(** Serial per-cell trim time. *)
