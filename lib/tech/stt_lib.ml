module Gate_fn = Sttc_logic.Gate_fn

type fig1_row = {
  gate : Gate_fn.t;
  delay_ratio : float;
  active_power_ratio_10 : float;
  active_power_ratio_30 : float;
  standby_power_ratio : float;
  energy_per_switching_ratio : float;
}

(* Published values, Fig. 1 of the paper (normalized to static CMOS). *)
let fig1_reference =
  [
    {
      gate = Gate_fn.Nand 2;
      delay_ratio = 6.46;
      active_power_ratio_10 = 90.35;
      active_power_ratio_30 = 30.12;
      standby_power_ratio = 0.48;
      energy_per_switching_ratio = 58.36;
    };
    {
      gate = Gate_fn.Nand 4;
      delay_ratio = 4.49;
      active_power_ratio_10 = 76.73;
      active_power_ratio_30 = 25.57;
      standby_power_ratio = 0.96;
      energy_per_switching_ratio = 34.45;
    };
    {
      gate = Gate_fn.Nor 2;
      delay_ratio = 4.85;
      active_power_ratio_10 = 80.2;
      active_power_ratio_30 = 26.73;
      standby_power_ratio = 0.51;
      energy_per_switching_ratio = 38.89;
    };
    {
      gate = Gate_fn.Nor 4;
      delay_ratio = 3.06;
      active_power_ratio_10 = 24.25;
      active_power_ratio_30 = 8.08;
      standby_power_ratio = 1.06;
      energy_per_switching_ratio = 7.42;
    };
    {
      gate = Gate_fn.Xor 2;
      delay_ratio = 4.95;
      active_power_ratio_10 = 22.45;
      active_power_ratio_30 = 7.48;
      standby_power_ratio = 0.13;
      energy_per_switching_ratio = 11.11;
    };
    {
      gate = Gate_fn.Xor 4;
      delay_ratio = 4.18;
      active_power_ratio_10 = 90.06;
      active_power_ratio_30 = 30.02;
      standby_power_ratio = 0.04;
      energy_per_switching_ratio = 37.64;
    };
  ]

(* --- Analytical 32 nm-style model behind [fig1_model] ---

   The MTJ LUT read path is a pre-charge sense amplifier discharging
   through an NMOS select tree of depth n (the fan-in): delay is dominated
   by a fixed sense time plus one tree level per input, so the ratio to a
   CMOS gate falls as the CMOS gate itself slows with fan-in.  The
   pre-charge burns a fixed energy every clock, independent of data, so
   the active-power ratio to CMOS scales as 1/activity.  Standby power is
   near zero in the MTJ array; only the sense amplifier periphery leaks. *)

let tau32_ps = 14.

let cmos_delay32 fn =
  match fn with
  | Gate_fn.Buf -> 1.6 *. tau32_ps
  | Gate_fn.Not -> tau32_ps
  | Gate_fn.Nand n -> tau32_ps *. (1.0 +. (0.33 *. float_of_int (n - 1)))
  | Gate_fn.Nor n -> tau32_ps *. (1.0 +. (0.62 *. float_of_int (n - 1)))
  | Gate_fn.And n -> tau32_ps *. (2.0 +. (0.33 *. float_of_int (n - 1)))
  | Gate_fn.Or n -> tau32_ps *. (2.0 +. (0.62 *. float_of_int (n - 1)))
  | Gate_fn.Xor n | Gate_fn.Xnor n ->
      tau32_ps *. (2.2 +. (0.85 *. float_of_int (n - 1)))

let cmos_energy32_fj fn = 1.0 *. float_of_int (Cmos_lib.transistor_count fn) /. 2.

let cmos_leak32_nw fn =
  let pairs = float_of_int (Cmos_lib.transistor_count fn) /. 2. in
  let stack =
    match fn with
    | Gate_fn.Nand n | Gate_fn.Nor n | Gate_fn.And n | Gate_fn.Or n ->
        1.0 /. (1.0 +. (0.45 *. float_of_int (n - 1)))
    | _ -> 1.0
  in
  2.0 *. pairs *. stack

let lut_delay32_ps n = 110. +. (8. *. float_of_int n)
let lut_energy32_fj n = 9. *. (2. ** (float_of_int n /. 2.))
let lut_leak32_nw n = 0.55 +. (0.10 *. float_of_int (1 lsl n))

let fig1_model fn =
  Gate_fn.validate fn;
  let n = Gate_fn.arity fn in
  if n < 2 || n > 4 then invalid_arg "Stt_lib.fig1_model: arity 2..4";
  let d_ratio = lut_delay32_ps n /. cmos_delay32 fn in
  let power_ratio alpha =
    (* LUT burns its pre-charge energy every cycle; CMOS switches its
       output with probability alpha per cycle. *)
    lut_energy32_fj n /. (alpha *. cmos_energy32_fj fn)
  in
  {
    gate = fn;
    delay_ratio = d_ratio;
    active_power_ratio_10 = power_ratio 0.1;
    active_power_ratio_30 = power_ratio 0.3;
    standby_power_ratio = lut_leak32_nw n /. cmos_leak32_nw fn;
    energy_per_switching_ratio =
      (* LUT energy per CMOS output transition at the reference activity
         15.5 % implied by the published NAND2 row *)
      lut_energy32_fj n /. (0.155 *. cmos_energy32_fj fn);
  }

(* --- 90 nm-calibrated LUT cells for the hybrid flow --- *)

let lut n =
  if n < 1 || n > Sttc_logic.Truth.max_arity then
    invalid_arg "Stt_lib.lut: arity out of range";
  let fn = float_of_int n in
  {
    Cell.cell_name = Printf.sprintf "STT_LUT%d" n;
    style = Cell.Stt_lut;
    arity = n;
    (* sense time + one select-tree level per input *)
    delay_ps = 160. +. (25. *. fn);
    (* pre-charge energy per cycle, data independent; calibrated so a
       LUT2 burns ~7x an average always-active gate, reproducing the
       Table I power-overhead scale *)
    switch_energy_fj = 6.3 *. (1.6 ** (fn -. 2.));
    (* near-zero MTJ leakage; sense-amp periphery only *)
    leakage_nw = 1.1 +. (0.15 *. float_of_int (1 lsl n));
    area_um2 = 3.4 +. (1.05 *. float_of_int (1 lsl n));
  }

let write_energy_fj = 450.
let write_time_ns = 10.
let retention_years = 10.
let endurance_writes = 1e16
