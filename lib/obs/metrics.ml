(* Log-scale histogram grid: 4 buckets per decade over [1e-6, 1e3].
   Bucket i covers (10^(lo + i/4), 10^(lo + (i+1)/4)]. *)
let bpd = 4
let lo_exp = -6
let hi_exp = 3
let nbuckets = (hi_exp - lo_exp) * bpd

let bucket_bound i =
  (* upper bound of bucket i *)
  10. ** (float_of_int lo_exp +. (float_of_int (i + 1) /. float_of_int bpd))

let bucket_of v =
  if v <= 10. ** float_of_int lo_exp then 0
  else
    let idx =
      int_of_float
        (Float.floor ((Float.log10 v -. float_of_int lo_exp)
                      *. float_of_int bpd))
    in
    (* a sample exactly on a bound belongs to the bucket it closes *)
    let idx = if bucket_bound (idx - 1) >= v then idx - 1 else idx in
    if idx >= nbuckets then nbuckets (* overflow *) else max 0 idx

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  counts : int array;
  mutable overflow : int;
}

type cell =
  | Ccounter of int ref
  | Cgauge of float ref
  | Chist of hist

type shard = (string, cell) Hashtbl.t

(* Every domain's shard is registered here on first use; the mutex
   guards registration and snapshot/reset only — recording touches just
   the domain-local table. *)
let registry_mutex = Mutex.create ()
let registry : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s : shard = Hashtbl.create 32 in
      Mutex.lock registry_mutex;
      registry := s :: !registry;
      Mutex.unlock registry_mutex;
      s)

let kind_name = function
  | Ccounter _ -> "counter"
  | Cgauge _ -> "gauge"
  | Chist _ -> "histogram"

let cell name make expected =
  let s = Domain.DLS.get shard_key in
  match Hashtbl.find_opt s name with
  | Some c ->
      if kind_name c <> expected then
        invalid_arg
          (Printf.sprintf "Obs.Metrics: %s is a %s, not a %s" name
             (kind_name c) expected);
      c
  | None ->
      let c = make () in
      Hashtbl.add s name c;
      c

let incr ?(by = 1) name =
  if Control.enabled () then
    match cell name (fun () -> Ccounter (ref 0)) "counter" with
    | Ccounter r -> r := !r + by
    | Cgauge _ | Chist _ -> assert false

let set_gauge name v =
  if Control.enabled () then
    match cell name (fun () -> Cgauge (ref v)) "gauge" with
    | Cgauge r -> r := v
    | Ccounter _ | Chist _ -> assert false

let peak_gauge name v =
  if Control.enabled () then
    match cell name (fun () -> Cgauge (ref v)) "gauge" with
    | Cgauge r -> if v > !r then r := v
    | Ccounter _ | Chist _ -> assert false

let fresh_hist () =
  {
    count = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
    counts = Array.make nbuckets 0;
    overflow = 0;
  }

let observe name v =
  if Control.enabled () then
    match cell name (fun () -> Chist (fresh_hist ())) "histogram" with
    | Chist h ->
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if v < h.vmin then h.vmin <- v;
        if v > h.vmax then h.vmax <- v;
        let b = bucket_of v in
        if b >= nbuckets then h.overflow <- h.overflow + 1
        else h.counts.(b) <- h.counts.(b) + 1
    | Ccounter _ | Cgauge _ -> assert false

(* ---------- snapshot / merge ---------- *)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
  overflow : int;
}

type point = Counter of int | Gauge of float | Histogram of summary

type snapshot = (string * point) list

let summary_of_hist (h : hist) =
  {
    count = h.count;
    sum = h.sum;
    min = (if h.count = 0 then 0. else h.vmin);
    max = (if h.count = 0 then 0. else h.vmax);
    buckets =
      List.init nbuckets (fun i -> (bucket_bound i, h.counts.(i)));
    overflow = h.overflow;
  }

let merge_points name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (Float.max x y)
  | Histogram x, Histogram y ->
      Histogram
        {
          count = x.count + y.count;
          sum = x.sum +. y.sum;
          min =
            (if x.count = 0 then y.min
             else if y.count = 0 then x.min
             else Float.min x.min y.min);
          max = Float.max x.max y.max;
          buckets =
            List.map2
              (fun (le, cx) (_, cy) -> (le, cx + cy))
              x.buckets y.buckets;
          overflow = x.overflow + y.overflow;
        }
  | _ ->
      invalid_arg
        ("Obs.Metrics.snapshot: series " ^ name
       ^ " recorded with two different kinds")

let snapshot () =
  let shards =
    Mutex.lock registry_mutex;
    let s = !registry in
    Mutex.unlock registry_mutex;
    s
  in
  let merged : (string, point) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun shard ->
      Hashtbl.iter
        (fun name c ->
          let p =
            match c with
            | Ccounter r -> Counter !r
            | Cgauge r -> Gauge !r
            | Chist h -> Histogram (summary_of_hist h)
          in
          match Hashtbl.find_opt merged name with
          | None -> Hashtbl.add merged name p
          | Some q -> Hashtbl.replace merged name (merge_points name q p))
        shard)
    shards;
  Hashtbl.fold (fun name p acc -> (name, p) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find snap name = List.assoc_opt name snap

let counter_value snap name =
  match find snap name with Some (Counter n) -> n | _ -> 0

let to_json snap =
  let point_json = function
    | Counter n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
    | Gauge v ->
        Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
    | Histogram s ->
        Json.Obj
          [
            ("type", Json.String "histogram");
            ("count", Json.Int s.count);
            ("sum", Json.Float s.sum);
            ("min", Json.Float s.min);
            ("max", Json.Float s.max);
            ( "buckets",
              Json.List
                (List.filter_map
                   (fun (le, c) ->
                     (* the grid has 36 buckets; only occupied ones are
                        worth the bytes *)
                     if c = 0 then None
                     else
                       Some
                         (Json.Obj
                            [ ("le", Json.Float le); ("count", Json.Int c) ]))
                   s.buckets) );
            ("overflow", Json.Int s.overflow);
          ]
  in
  Json.Obj (List.map (fun (name, p) -> (name, point_json p)) snap)

let reset () =
  Mutex.lock registry_mutex;
  List.iter Hashtbl.reset !registry;
  Mutex.unlock registry_mutex
