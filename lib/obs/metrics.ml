(* Log-scale histogram grid: 4 buckets per decade over [1e-6, 1e3].
   Bucket i covers (10^(lo + i/4), 10^(lo + (i+1)/4)]. *)
let bpd = 4
let lo_exp = -6
let hi_exp = 3
let nbuckets = (hi_exp - lo_exp) * bpd

let bucket_bound i =
  (* upper bound of bucket i *)
  10. ** (float_of_int lo_exp +. (float_of_int (i + 1) /. float_of_int bpd))

let bucket_of v =
  if v <= 10. ** float_of_int lo_exp then 0
  else
    let idx =
      int_of_float
        (Float.floor ((Float.log10 v -. float_of_int lo_exp)
                      *. float_of_int bpd))
    in
    (* a sample exactly on a bound belongs to the bucket it closes *)
    let idx = if bucket_bound (idx - 1) >= v then idx - 1 else idx in
    if idx >= nbuckets then nbuckets (* overflow *) else max 0 idx

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  counts : int array;
  mutable overflow : int;
}

type cell =
  | Ccounter of int ref
  | Cgauge of float ref
  | Chist of hist

type shard = (string, cell) Hashtbl.t

(* Every domain's shard is registered here on first use; the mutex
   guards registration and snapshot/reset only — recording touches just
   the domain-local table. *)
let registry_mutex = Mutex.create ()
let registry : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s : shard = Hashtbl.create 32 in
      Mutex.lock registry_mutex;
      registry := s :: !registry;
      Mutex.unlock registry_mutex;
      s)

let kind_name = function
  | Ccounter _ -> "counter"
  | Cgauge _ -> "gauge"
  | Chist _ -> "histogram"

let cell name make expected =
  let s = Domain.DLS.get shard_key in
  match Hashtbl.find_opt s name with
  | Some c ->
      if kind_name c <> expected then
        invalid_arg
          (Printf.sprintf "Obs.Metrics: %s is a %s, not a %s" name
             (kind_name c) expected);
      c
  | None ->
      let c = make () in
      Hashtbl.add s name c;
      c

let incr ?(by = 1) name =
  if Control.enabled () then
    match cell name (fun () -> Ccounter (ref 0)) "counter" with
    | Ccounter r -> r := !r + by
    | Cgauge _ | Chist _ -> assert false

let set_gauge name v =
  if Control.enabled () then
    match cell name (fun () -> Cgauge (ref v)) "gauge" with
    | Cgauge r -> r := v
    | Ccounter _ | Chist _ -> assert false

let peak_gauge name v =
  if Control.enabled () then
    match cell name (fun () -> Cgauge (ref v)) "gauge" with
    | Cgauge r -> if v > !r then r := v
    | Ccounter _ | Chist _ -> assert false

let fresh_hist () =
  {
    count = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
    counts = Array.make nbuckets 0;
    overflow = 0;
  }

let observe name v =
  if Control.enabled () then
    match cell name (fun () -> Chist (fresh_hist ())) "histogram" with
    | Chist h ->
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if v < h.vmin then h.vmin <- v;
        if v > h.vmax then h.vmax <- v;
        let b = bucket_of v in
        if b >= nbuckets then h.overflow <- h.overflow + 1
        else h.counts.(b) <- h.counts.(b) + 1
    | Ccounter _ | Cgauge _ -> assert false

(* ---------- snapshot / merge ---------- *)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
  overflow : int;
}

type point = Counter of int | Gauge of float | Histogram of summary

type snapshot = (string * point) list

let summary_of_hist (h : hist) =
  {
    count = h.count;
    sum = h.sum;
    min = (if h.count = 0 then 0. else h.vmin);
    max = (if h.count = 0 then 0. else h.vmax);
    buckets =
      List.init nbuckets (fun i -> (bucket_bound i, h.counts.(i)));
    overflow = h.overflow;
  }

(* Buckets are united by bound instead of zipped: snapshots that
   travelled through JSON carry only their occupied buckets, and two
   such lists rarely share a shape. *)
let union_buckets xs ys =
  let rec go xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | (lx, cx) :: xt, (ly, cy) :: yt ->
        if lx = ly then (lx, cx + cy) :: go xt yt
        else if lx < ly then (lx, cx) :: go xt ys
        else (ly, cy) :: go xs yt
  in
  go xs ys

let merge_points name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (Float.max x y)
  | Histogram x, Histogram y ->
      Histogram
        {
          count = x.count + y.count;
          sum = x.sum +. y.sum;
          min =
            (if x.count = 0 then y.min
             else if y.count = 0 then x.min
             else Float.min x.min y.min);
          max = Float.max x.max y.max;
          buckets = union_buckets x.buckets y.buckets;
          overflow = x.overflow + y.overflow;
        }
  | _ ->
      invalid_arg
        ("Obs.Metrics.snapshot: series " ^ name
       ^ " recorded with two different kinds")

let snapshot () =
  let shards =
    Mutex.lock registry_mutex;
    let s = !registry in
    Mutex.unlock registry_mutex;
    s
  in
  let merged : (string, point) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun shard ->
      Hashtbl.iter
        (fun name c ->
          let p =
            match c with
            | Ccounter r -> Counter !r
            | Cgauge r -> Gauge !r
            | Chist h -> Histogram (summary_of_hist h)
          in
          match Hashtbl.find_opt merged name with
          | None -> Hashtbl.add merged name p
          | Some q -> Hashtbl.replace merged name (merge_points name q p))
        shard)
    shards;
  Hashtbl.fold (fun name p acc -> (name, p) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find snap name = List.assoc_opt name snap

let counter_value snap name =
  match find snap name with Some (Counter n) -> n | _ -> 0

let to_json snap =
  let point_json = function
    | Counter n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
    | Gauge v ->
        Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
    | Histogram s ->
        Json.Obj
          [
            ("type", Json.String "histogram");
            ("count", Json.Int s.count);
            ("sum", Json.Float s.sum);
            ("min", Json.Float s.min);
            ("max", Json.Float s.max);
            ( "buckets",
              Json.List
                (List.filter_map
                   (fun (le, c) ->
                     (* the grid has 36 buckets; only occupied ones are
                        worth the bytes *)
                     if c = 0 then None
                     else
                       Some
                         (Json.Obj
                            [ ("le", Json.Float le); ("count", Json.Int c) ]))
                   s.buckets) );
            ("overflow", Json.Int s.overflow);
          ]
  in
  Json.Obj (List.map (fun (name, p) -> (name, point_json p)) snap)

let merge a b =
  let rec go a b =
    match (a, b) with
    | [], l | l, [] -> l
    | ((na, pa) as xa) :: at, ((nb, pb) as xb) :: bt ->
        if na = nb then (na, merge_points na pa pb) :: go at bt
        else if na < nb then xa :: go at b
        else xb :: go a bt
  in
  (* snapshots are name-sorted by contract, but parsed ones might not
     be — sort defensively so the merge walk is correct *)
  let sorted s = List.sort (fun (a, _) (b, _) -> compare a b) s in
  go (sorted a) (sorted b)

(* ---------- JSON round-trip ---------- *)

(* Snap a parsed bucket bound back onto the canonical grid: bounds are
   printed with %.12g, so they come back a few ulps off the values
   [bucket_bound] computes, and bound equality is what {!merge} unites
   buckets by. *)
let canonical_bound le =
  let rec find i =
    if i >= nbuckets then le
    else
      let b = bucket_bound i in
      if Float.abs (le -. b) <= 1e-9 *. Float.max (Float.abs le) (Float.abs b)
      then b
      else find (i + 1)
  in
  find 0

let of_json j =
  let ( let* ) = Result.bind in
  let need msg = function Some x -> Ok x | None -> Error msg in
  let int_field ctx k v =
    need (ctx ^ ": missing or non-integer " ^ k)
      (Option.bind (Json.member k v) Json.to_int_opt)
  in
  let num_field ctx k v =
    need (ctx ^ ": missing or non-numeric " ^ k)
      (Option.bind (Json.member k v) Json.to_float_opt)
  in
  let series (name, v) =
    let ctx = "series " ^ name in
    let* ty =
      need (ctx ^ ": missing type")
        (Option.bind (Json.member "type" v) Json.to_string_opt)
    in
    match ty with
    | "counter" ->
        let* n = int_field ctx "value" v in
        Ok (name, Counter n)
    | "gauge" ->
        let* x = num_field ctx "value" v in
        Ok (name, Gauge x)
    | "histogram" ->
        let* count = int_field ctx "count" v in
        let* sum = num_field ctx "sum" v in
        let* min = num_field ctx "min" v in
        let* max = num_field ctx "max" v in
        let* overflow = int_field ctx "overflow" v in
        let* bs =
          need (ctx ^ ": missing buckets")
            (Option.bind (Json.member "buckets" v) Json.to_list_opt)
        in
        let* buckets =
          List.fold_left
            (fun acc b ->
              let* acc = acc in
              let* le = num_field ctx "le" b in
              let* c = int_field ctx "count" b in
              Ok ((canonical_bound le, c) :: acc))
            (Ok []) bs
        in
        Ok (name, Histogram { count; sum; min; max;
                              buckets = List.rev buckets; overflow })
    | other -> Error (ctx ^ ": unknown type " ^ other)
  in
  match j with
  | Json.Obj fields ->
      let* points =
        List.fold_left
          (fun acc f ->
            let* acc = acc in
            let* p = series f in
            Ok (p :: acc))
          (Ok []) fields
      in
      Ok (List.sort (fun (a, _) (b, _) -> compare a b) points)
  | _ -> Error "metrics: not a JSON object"

let reset () =
  Mutex.lock registry_mutex;
  List.iter Hashtbl.reset !registry;
  Mutex.unlock registry_mutex
