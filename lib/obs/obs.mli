(** Façade over the observability subsystem.

    Instrumentation sites use the sub-modules directly
    ([Sttc_obs.Span.with_ "sat.dip_iteration" f],
    [Sttc_obs.Metrics.incr "sat.conflicts"]); drivers use this module
    to switch recording on around a run and export the results:

    {[
      Sttc_obs.Obs.with_run ~trace:"run.trace.json"
        ~metrics:"run.metrics.json" (fun () -> Runner.table1 cfg)
    ]}

    With neither [?trace] nor [?metrics] requested, [with_run f] is
    exactly [f ()] — recording stays off and every instrumentation
    site costs one atomic load, which is what keeps benchmark output
    byte-identical to an uninstrumented build. *)

module Json = Json
module Build_info = Build_info
module Span = Span
module Metrics = Metrics
module Export = Export

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded spans and metrics and forget the trace clock
    origin. *)

val attach_pool : unit -> unit
(** Install the {!Sttc_util.Pool} probe: submissions and chunk
    executions become [pool.*] metrics and [pool.chunk] spans.  The
    pool itself sits below this library in the dependency order, which
    is why the wiring runs in this direction. *)

val detach_pool : unit -> unit

val write_trace : string -> unit
(** Export all recorded spans as Chrome [trace_event] JSON.  Call at a
    quiesce point (pools joined). *)

val write_metrics : string -> unit
(** Export the merged metrics snapshot as JSON. *)

val with_run : ?trace:string -> ?metrics:string -> (unit -> 'a) -> 'a
(** Enable recording (and the pool probe) around the thunk when at
    least one output file is requested, then export, reset, and detach
    — also on exception, so a crashed run still leaves its trace
    behind.  With neither file requested: just the thunk. *)

val validate_trace_file : string -> (int, string) result
(** Parse and structurally validate a trace file ({!Export.validate_trace});
    [Ok n] is the span count. *)

val validate_metrics_file :
  ?min_series:int -> ?require:string list -> string -> (int, string) result
(** Same for a metrics file; [Ok n] is the series count.  [require]
    names series that must be present (the campaign CI gate asserts its
    counters this way). *)
