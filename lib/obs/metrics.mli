(** Named metrics with atomic-overhead disabled mode and per-domain
    sharded recording.

    Three series kinds:

    - {b counters} — monotonically growing ints ([sat.conflicts],
      [pool.tasks], ...);
    - {b gauges} — a float level ([sat.kept_clauses],
      [pool.queue_depth]); merged across domains, and rendered, as the
      {e maximum}, the useful aggregate for "how deep did it get";
    - {b histograms} — log-scale (log10, four buckets per decade over
      [1e-6, 1e3]) distribution of positive floats, the right shape for
      wall-clock durations that span six orders of magnitude — the same
      reasoning that puts the paper's security counts in
      {!Sttc_util.Lognum}'s log10 domain.

    Every update lands in a domain-local shard (a plain hashtable
    reached through [Domain.DLS]), so pool workers record without
    taking any lock; {!snapshot} merges all shards.  Updates are
    no-ops while {!Control.enabled} is false — one atomic load each.

    Snapshots are meant for quiesce points (after a pool has joined,
    at the end of a run): merging while worker domains are still
    writing can miss in-flight updates, though it never corrupts the
    shards. *)

type summary = {
  count : int;
  sum : float;
  min : float;  (** 0. when [count = 0] *)
  max : float;  (** 0. when [count = 0] *)
  buckets : (float * int) list;
      (** (upper bound, samples at or below it and above the previous
          bound); bounds are the fixed log-scale grid *)
  overflow : int;  (** samples above the last bound *)
}

type point = Counter of int | Gauge of float | Histogram of summary

type snapshot = (string * point) list
(** Sorted by series name — two runs recording the same values produce
    identical snapshots regardless of domain scheduling. *)

val incr : ?by:int -> string -> unit
(** Bump a counter ([by] defaults to 1). *)

val set_gauge : string -> float -> unit
(** Overwrite this domain's level of a gauge. *)

val peak_gauge : string -> float -> unit
(** Raise this domain's level to at least the given value — records a
    high-water mark instead of the last write. *)

val observe : string -> float -> unit
(** Add a sample to a histogram.  Non-positive samples land in the
    lowest bucket. *)

val snapshot : unit -> snapshot
(** Merge every domain's shard: counters sum, gauges max, histograms
    add pointwise.  A series recorded with different kinds on
    different domains raises [Invalid_argument] — that is an
    instrumentation bug, not data. *)

val merge : snapshot -> snapshot -> snapshot
(** Merge two snapshots with the same semantics as the cross-domain
    merge: counters sum, gauges max, histograms add.  Histogram buckets
    are united by their bounds rather than assumed to share a grid, so
    snapshots that travelled through JSON (which drops empty buckets)
    merge correctly.  This is the cross-{e process} aggregation
    primitive: a campaign supervisor folds every worker's exported
    snapshot into one with it.  Raises [Invalid_argument] when the same
    series carries different kinds in the two snapshots. *)

val of_json : Json.t -> (snapshot, string) result
(** Parse a {!to_json} rendering back into a snapshot.  Histogram
    bucket bounds are snapped onto the canonical log-scale grid when
    they are within rounding distance of it, so a parsed snapshot
    {!merge}s exactly with a live one despite the [%.12g] float
    round-trip. *)

val find : snapshot -> string -> point option
val counter_value : snapshot -> string -> int
(** 0 when absent or not a counter. *)

val to_json : snapshot -> Json.t
(** The ["metrics"] object of the metrics file: one field per series,
    [{"type": ..., ...}]. *)

val reset : unit -> unit
(** Drop all recorded values (every shard of every domain seen so
    far). *)
