(** Build/runtime provenance, stamped into every trace and metrics file
    and printed by [sttc version].

    A trace that cannot be tied back to the build that produced it is
    noise, so the same metadata block flows to all three consumers.  The
    commit hash is read from the [STTC_COMMIT] environment variable
    (release scripts export it; development builds report ["unknown"]) —
    shelling out to git at build time would make builds non-hermetic. *)

val version : string
(** The tool version (also used by the CLI's [--version]). *)

val commit : unit -> string
(** [STTC_COMMIT] if set and non-empty, else ["unknown"]. *)

val to_fields : unit -> (string * Json.t) list
(** The metadata block: tool, version, commit, OCaml version, OS type,
    word size.  Deterministic for a given build and environment. *)

val to_text : unit -> string
(** Human rendering for [sttc version], one field per line. *)
