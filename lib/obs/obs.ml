module Json = Json
module Build_info = Build_info
module Span = Span
module Metrics = Metrics
module Export = Export

let enabled = Control.enabled
let enable = Control.enable
let disable = Control.disable

let reset () =
  Span.reset ();
  Metrics.reset ();
  Control.reset_origin ()

let attach_pool () =
  Sttc_util.Pool.set_probe
    (Some
       {
         on_submit =
           (fun ~tasks ~chunks ->
             Metrics.incr "pool.submits";
             Metrics.incr ~by:tasks "pool.tasks";
             Metrics.incr ~by:chunks "pool.chunks";
             Metrics.peak_gauge "pool.queue_depth" (float_of_int chunks));
         around_chunk =
           (fun ~size f ->
             if not (Control.enabled ()) then f ()
             else begin
               let t0 = Control.now_us () in
               Span.with_ "pool.chunk"
                 ~attrs:[ ("tasks", string_of_int size) ]
                 f;
               Metrics.observe "pool.chunk_seconds"
                 ((Control.now_us () -. t0) *. 1e-6)
             end);
       })

let detach_pool () = Sttc_util.Pool.set_probe None

let write_trace path = Export.write_file path (Export.trace_json ())
let write_metrics path = Export.write_file path (Export.metrics_json ())

let with_run ?trace ?metrics f =
  match (trace, metrics) with
  | None, None -> f ()
  | _ ->
      attach_pool ();
      enable ();
      Fun.protect
        ~finally:(fun () ->
          disable ();
          (match trace with Some p -> write_trace p | None -> ());
          (match metrics with Some p -> write_metrics p | None -> ());
          reset ();
          detach_pool ())
        f

let load_json path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | s -> Json.of_string s

let validate_trace_file path =
  Result.bind (load_json path) Export.validate_trace

let validate_metrics_file ?min_series ?require path =
  Result.bind (load_json path) (Export.validate_metrics ?min_series ?require)
