let version = "1.0.0"

let commit () =
  match Sys.getenv_opt "STTC_COMMIT" with
  | Some c when String.trim c <> "" -> String.trim c
  | Some _ | None -> "unknown"

let to_fields () =
  [
    ("tool", Json.String "sttc");
    ("version", Json.String version);
    ("commit", Json.String (commit ()));
    ("ocaml", Json.String Sys.ocaml_version);
    ("os", Json.String Sys.os_type);
    ("word_size", Json.Int Sys.word_size);
  ]

let to_text () =
  let field (k, v) =
    let s =
      match v with
      | Json.String s -> s
      | Json.Int i -> string_of_int i
      | v -> Json.to_string ~minify:true v
    in
    Printf.sprintf "%-10s %s" (k ^ ":") s
  in
  String.concat "\n" (List.map field (to_fields ())) ^ "\n"
