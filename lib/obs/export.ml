let ( let* ) = Result.bind

(* ---------- rendering ---------- *)

let tid_of = function
  | Span.Complete { tid; _ } | Span.Instant { tid; _ } -> tid

let track_name tid = if tid = 0 then "main" else Printf.sprintf "domain-%d" tid

let thread_meta tid =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String (track_name tid)) ]);
    ]

let attr_fields attrs = List.map (fun (k, v) -> (k, Json.String v)) attrs

let event_json = function
  | Span.Complete { name; cat; ts_us; dur_us; tid; depth; parent; attrs } ->
      let args =
        attr_fields attrs
        @ [ ("depth", Json.Int depth) ]
        @ (match parent with
          | None -> []
          | Some p -> [ ("parent", Json.String p) ])
      in
      Json.Obj
        [
          ("name", Json.String name);
          ("cat", Json.String cat);
          ("ph", Json.String "X");
          ("ts", Json.Float ts_us);
          ("dur", Json.Float dur_us);
          ("pid", Json.Int 1);
          ("tid", Json.Int tid);
          ("args", Json.Obj args);
        ]
  | Span.Instant { name; cat; ts_us; tid; attrs } ->
      Json.Obj
        [
          ("name", Json.String name);
          ("cat", Json.String cat);
          ("ph", Json.String "i");
          ("s", Json.String "t");
          ("ts", Json.Float ts_us);
          ("pid", Json.Int 1);
          ("tid", Json.Int tid);
          ("args", Json.Obj (attr_fields attrs));
        ]

let trace_json () =
  let evs = Span.events () in
  let tids = List.sort_uniq compare (List.map tid_of evs) in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (List.map thread_meta tids @ List.map event_json evs) );
      ( "otherData",
        Json.Obj
          (Build_info.to_fields ()
          @ [ ("dropped_events", Json.Int (Span.dropped ())) ]) );
    ]

let metrics_json_of_snapshot snap =
  Json.Obj
    [
      ("meta", Json.Obj (Build_info.to_fields ()));
      ("metrics", Metrics.to_json snap);
    ]

let metrics_json () = metrics_json_of_snapshot (Metrics.snapshot ())

let write_text path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text);
  Sys.rename tmp path

let write_file path j = write_text path (Json.to_string j ^ "\n")

(* ---------- validation ---------- *)

let need msg = function Some x -> Ok x | None -> Error msg

let str_field ctx k j =
  need
    (Printf.sprintf "%s: missing or non-string field %S" ctx k)
    (Option.bind (Json.member k j) Json.to_string_opt)

let int_field ctx k j =
  need
    (Printf.sprintf "%s: missing or non-integer field %S" ctx k)
    (Option.bind (Json.member k j) Json.to_int_opt)

let num_field ctx k j =
  need
    (Printf.sprintf "%s: missing or non-numeric field %S" ctx k)
    (Option.bind (Json.member k j) Json.to_float_opt)

let check_meta ctx j =
  let* _ = str_field ctx "version" j in
  let* _ = str_field ctx "commit" j in
  let* _ = str_field ctx "tool" j in
  Ok ()

(* Span containment tolerance: timestamps round-trip through a %.12g
   float representation, so parent/child boundaries can disagree by a
   few nanoseconds without anything being wrong. *)
let eps = 0.005

(* One domain's complete events must nest: sweeping in start order, a
   span starting inside a still-open span must also end inside it. *)
let check_nesting tid spans =
  let sorted =
    List.sort
      (fun (t1, d1, _) (t2, d2, _) ->
        match Float.compare t1 t2 with
        | 0 -> Float.compare d2 d1 (* enclosing span first on ties *)
        | c -> c)
      spans
  in
  let rec pop_finished ts = function
    | (e, _) :: tl when e <= ts +. eps -> pop_finished ts tl
    | stack -> stack
  in
  let rec sweep stack = function
    | [] -> Ok ()
    | (ts, dur, name) :: rest -> (
        let stack = pop_finished ts stack in
        match stack with
        | (pend, pname) :: _ when ts +. dur > pend +. eps ->
            Error
              (Printf.sprintf
                 "tid %d: span %S [%g, %g] overlaps but does not nest in \
                  open span %S (ends %g)"
                 tid name ts (ts +. dur) pname pend)
        | _ -> sweep ((ts +. dur, name) :: stack) rest)
  in
  sweep [] sorted

let validate_trace j =
  let* events =
    need "traceEvents: missing or not a list"
      (Option.bind (Json.member "traceEvents" j) Json.to_list_opt)
  in
  let* other = need "otherData: missing" (Json.member "otherData" j) in
  let* () = check_meta "otherData" other in
  let by_tid : (int, (float * float * string) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let spans = ref 0 in
  let rec check_events i = function
    | [] -> Ok ()
    | ev :: rest ->
        let ctx = Printf.sprintf "event %d" i in
        let* name = str_field ctx "name" ev in
        let* ph = str_field ctx "ph" ev in
        let* _pid = int_field ctx "pid" ev in
        let* tid = int_field ctx "tid" ev in
        let ctx = Printf.sprintf "event %d (%s)" i name in
        let* () =
          if ph = "M" then Ok ()
          else
            let* ts = num_field ctx "ts" ev in
            let* () =
              if ts < 0. then Error (ctx ^ ": negative ts") else Ok ()
            in
            match ph with
            | "X" ->
                let* dur = num_field ctx "dur" ev in
                if dur < 0. then Error (ctx ^ ": negative dur")
                else begin
                  incr spans;
                  let cell =
                    match Hashtbl.find_opt by_tid tid with
                    | Some r -> r
                    | None ->
                        let r = ref [] in
                        Hashtbl.add by_tid tid r;
                        r
                  in
                  cell := (ts, dur, name) :: !cell;
                  Ok ()
                end
            | "i" -> Ok ()
            | _ -> Error (Printf.sprintf "%s: unsupported ph %S" ctx ph)
        in
        check_events (i + 1) rest
  in
  let* () = check_events 0 events in
  let* () =
    Hashtbl.fold
      (fun tid cell acc ->
        let* () = acc in
        check_nesting tid !cell)
      by_tid (Ok ())
  in
  Ok !spans

let check_series (name, v) =
  let ctx = Printf.sprintf "series %s" name in
  let* ty = str_field ctx "type" v in
  match ty with
  | "counter" ->
      let* value = int_field ctx "value" v in
      if value < 0 then Error (ctx ^ ": negative counter") else Ok ()
  | "gauge" ->
      let* _ = num_field ctx "value" v in
      Ok ()
  | "histogram" ->
      let* count = int_field ctx "count" v in
      let* _sum = num_field ctx "sum" v in
      let* _min = num_field ctx "min" v in
      let* _max = num_field ctx "max" v in
      let* overflow = int_field ctx "overflow" v in
      let* buckets =
        need
          (ctx ^ ": missing or non-list field \"buckets\"")
          (Option.bind (Json.member "buckets" v) Json.to_list_opt)
      in
      let rec walk prev_le total = function
        | [] -> Ok total
        | b :: rest ->
            let* le = num_field ctx "le" b in
            let* c = int_field ctx "count" b in
            if le <= prev_le then
              Error (ctx ^ ": bucket bounds not strictly increasing")
            else if c <= 0 then
              Error (ctx ^ ": bucket with non-positive count")
            else walk le (total + c) rest
      in
      let* in_buckets = walk neg_infinity 0 buckets in
      if count < 0 then Error (ctx ^ ": negative count")
      else if overflow < 0 then Error (ctx ^ ": negative overflow")
      else if in_buckets + overflow <> count then
        Error
          (Printf.sprintf "%s: bucket counts (%d) + overflow (%d) <> count (%d)"
             ctx in_buckets overflow count)
      else Ok ()
  | other -> Error (Printf.sprintf "%s: unknown type %S" ctx other)

let validate_metrics ?(min_series = 0) ?(require = []) j =
  let* meta = need "meta: missing" (Json.member "meta" j) in
  let* () = check_meta "meta" meta in
  let* series =
    need "metrics: missing or not an object"
      (match Json.member "metrics" j with
      | Some (Json.Obj fields) -> Some fields
      | _ -> None)
  in
  let rec each = function
    | [] -> Ok ()
    | s :: rest ->
        let* () = check_series s in
        each rest
  in
  let* () = each series in
  let* () =
    match
      List.filter (fun name -> not (List.mem_assoc name series)) require
    with
    | [] -> Ok ()
    | missing ->
        Error ("missing required series: " ^ String.concat ", " missing)
  in
  let n = List.length series in
  if n < min_series then
    Error (Printf.sprintf "only %d metric series, need at least %d" n min_series)
  else Ok n
