type event =
  | Complete of {
      name : string;
      cat : string;
      ts_us : float;
      dur_us : float;
      tid : int;
      depth : int;
      parent : string option;
      attrs : (string * string) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      tid : int;
      attrs : (string * string) list;
    }

let max_events = 200_000

type buffer = {
  tid : int;
  mutable events : event list; (* newest first *)
  mutable n : int;
  mutable dropped : int;
  mutable stack : string list; (* open span names, innermost first *)
}

let registry_mutex = Mutex.create ()
let registry : buffer list ref = ref []

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          tid = (Domain.self () :> int);
          events = [];
          n = 0;
          dropped = 0;
          stack = [];
        }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let record b ev =
  if b.n >= max_events then b.dropped <- b.dropped + 1
  else begin
    b.events <- ev :: b.events;
    b.n <- b.n + 1
  end

let with_ ?(cat = "sttc") ?(attrs = []) name f =
  if not (Control.enabled ()) then f ()
  else begin
    let b = Domain.DLS.get buffer_key in
    let parent = match b.stack with p :: _ -> Some p | [] -> None in
    let depth = List.length b.stack in
    b.stack <- name :: b.stack;
    let ts_us = Control.now_us () in
    Fun.protect
      ~finally:(fun () ->
        let dur_us = Control.now_us () -. ts_us in
        (match b.stack with
        | _ :: rest -> b.stack <- rest
        | [] -> () (* unbalanced reset mid-span; drop silently *));
        if Control.enabled () then
          record b (Complete { name; cat; ts_us; dur_us; tid = b.tid; depth; parent; attrs }))
      f
  end

let instant ?(cat = "sttc") ?(attrs = []) name =
  if Control.enabled () then begin
    let b = Domain.DLS.get buffer_key in
    record b
      (Instant { name; cat; ts_us = Control.now_us (); tid = b.tid; attrs })
  end

let ts = function Complete { ts_us; _ } | Instant { ts_us; _ } -> ts_us

let events () =
  let buffers =
    Mutex.lock registry_mutex;
    let b = !registry in
    Mutex.unlock registry_mutex;
    b
  in
  List.concat_map (fun b -> List.rev b.events) buffers
  |> List.stable_sort (fun a b -> Float.compare (ts a) (ts b))

let dropped () =
  Mutex.lock registry_mutex;
  let n = List.fold_left (fun acc b -> acc + b.dropped) 0 !registry in
  Mutex.unlock registry_mutex;
  n

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun b ->
      b.events <- [];
      b.n <- 0;
      b.dropped <- 0;
      b.stack <- [])
    !registry;
  Mutex.unlock registry_mutex
