(** The observability master switch and the trace clock.

    Everything in [Sttc_obs] funnels its "should I record at all?"
    question through {!enabled}: one atomic load and a branch, so an
    uninstrumented binary and an instrumented-but-disabled run execute
    the same benchmark code and produce byte-identical output.

    The clock is the process monotonic clock re-based to the moment
    observability was first enabled, so trace timestamps start near
    zero and are comparable across domains (the monotonic clock is
    per-process, not per-domain). *)

val enabled : unit -> bool
(** Fast path: a single [Atomic.get]. *)

val enable : unit -> unit
(** Turn recording on; the first call fixes the trace clock origin. *)

val disable : unit -> unit
(** Turn recording off.  Already-buffered data stays until {!reset}. *)

val now_us : unit -> float
(** Microseconds since the clock origin (0. before the first
    {!enable}). *)

val reset_origin : unit -> unit
(** Forget the clock origin so the next {!enable} re-bases; used by the
    full [Obs.reset]. *)
