(** Exporters and validators for the two observability file formats.

    - {!trace_json} — Chrome [trace_event] JSON (the ["traceEvents"]
      object form), loadable in [chrome://tracing] and Perfetto.  Every
      span becomes a complete ("ph":"X") event on its recording
      domain's track; instants become "ph":"i" events; one metadata
      event per domain names its track.
    - {!metrics_json} — [{"meta": ..., "metrics": ...}] with one field
      per series.

    Both embed the {!Build_info} metadata block, so a file can always
    be tied back to the build that wrote it.

    The validators re-read a file through {!Json.of_string} and check
    the structural contract the CI gate relies on: required keys,
    typed fields, and — for traces — that the spans of each domain
    nest properly (no partially overlapping intervals).  They validate
    files this build did {e not} write, too; that is the point. *)

val trace_json : unit -> Json.t
(** Snapshot of all recorded span/instant events. *)

val metrics_json : unit -> Json.t
(** Snapshot of all metric series. *)

val metrics_json_of_snapshot : Metrics.snapshot -> Json.t
(** The same document shape for a caller-supplied snapshot — e.g. the
    cross-process merge a campaign aggregation produces with
    {!Metrics.merge}. *)

val write_file : string -> Json.t -> unit
(** Write atomically (temp file + rename), so a crash mid-export never
    leaves a torn half-JSON behind. *)

val write_text : string -> string -> unit
(** The same atomic temp-file + rename discipline for arbitrary text —
    the write path every generated report and benchmark record should
    go through, so an interrupted run never leaves a truncated file. *)

val validate_trace : Json.t -> (int, string) result
(** [Ok n] with [n] the number of complete span events. *)

val validate_metrics :
  ?min_series:int -> ?require:string list -> Json.t -> (int, string) result
(** [Ok n] with [n] the number of series; [min_series] (default 0)
    additionally requires at least that many, and every name in
    [require] must be present as a series. *)
