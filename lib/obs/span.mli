(** Tracing spans with per-domain lock-free buffers.

    [with_ "runner.protect" ~attrs f] times [f] on the monotonic trace
    clock and records a completed span carrying the current domain id,
    its nesting depth and its parent span's name.  Each domain appends
    to its own buffer (reached through [Domain.DLS] — no locks on the
    record path, which is what lets {!Sttc_util.Pool} workers trace
    freely); buffers are registered once per domain under a mutex and
    merged when {!events} collects them, i.e. after the parallel
    section has joined.

    While {!Control.enabled} is false, [with_ name f] is [f ()] plus
    one atomic load — tracing that is compiled in but switched off
    cannot perturb benchmark results.

    Buffers are bounded ({!max_events} per domain); past the cap new
    spans are counted in {!dropped} instead of recorded, so a runaway
    instrumentation site degrades the trace, never the run. *)

type event =
  | Complete of {
      name : string;
      cat : string;
      ts_us : float;  (** start, microseconds on the trace clock *)
      dur_us : float;
      tid : int;  (** recording domain's id *)
      depth : int;  (** 0 = top-level span of its domain *)
      parent : string option;  (** enclosing span's name, if any *)
      attrs : (string * string) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      tid : int;
      attrs : (string * string) list;
    }

val max_events : int
(** Per-domain buffer cap. *)

val with_ :
  ?cat:string -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  The span is recorded when the thunk
    returns {e or raises} (the exception propagates); the default
    category is ["sttc"]. *)

val instant : ?cat:string -> ?attrs:(string * string) list -> string -> unit
(** Record a point event (a checkpoint write, a clause-DB reduction). *)

val events : unit -> event list
(** Every recorded event from every domain, sorted by start time.
    Collect at a quiesce point (after pools have joined). *)

val dropped : unit -> int
(** Events discarded because a domain buffer hit {!max_events}. *)

val reset : unit -> unit
(** Clear all buffers and the drop count. *)
