let flag = Atomic.make false

(* ns on the process monotonic clock at the first enable; 0 = unset *)
let origin_ns = Atomic.make 0L

let enabled () = Atomic.get flag

let enable () =
  if Atomic.get origin_ns = 0L then
    ignore
      (Atomic.compare_and_set origin_ns 0L (Monotonic_clock.now ()));
  Atomic.set flag true

let disable () = Atomic.set flag false

let now_us () =
  let o = Atomic.get origin_ns in
  if o = 0L then 0.
  else Int64.to_float (Int64.sub (Monotonic_clock.now ()) o) /. 1e3

let reset_origin () = Atomic.set origin_ns 0L
