type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite float";
  (* shortest representation that still round-trips a telemetry value;
     a bare integer mantissa gets a ".0" so the reader sees a float *)
  let s = Printf.sprintf "%.12g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
  else s ^ ".0"

let to_string ?(minify = false) t =
  let buf = Buffer.create 1024 in
  let indent n =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * n) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            go (depth + 1) x)
          xs;
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape buf k;
            Buffer.add_string buf (if minify then ":" else ": ");
            go (depth + 1) v)
          kvs;
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse of int * string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected '%c', got '%c'" c got)
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("invalid literal, expected " ^ word)
  in
  let utf8_of_code buf c =
    (* decode \uXXXX escapes to UTF-8 bytes; surrogate pairs are not
       produced by our own exporters and parse as two replacement-free
       code points, which is fine for validation purposes *)
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = text.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (match peek () with
          | None -> fail "unterminated escape"
          | Some e ->
              advance ();
              (match e with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub text !pos 4 in
                  pos := !pos + 4;
                  (match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> utf8_of_code buf c
                  | None -> fail ("bad \\u escape " ^ hex))
              | c -> fail (Printf.sprintf "bad escape '\\%c'" c)));
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail ("invalid number " ^ s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input after document";
    v
  with
  | v -> Ok v
  | exception Parse (off, msg) ->
      Error (Printf.sprintf "offset %d: %s" off msg)

(* ---------- accessors ---------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
