(** Minimal JSON tree, printer and parser.

    The observability exporters need to {e write} Chrome-trace and
    metrics JSON, and the CI gate needs to {e read} them back to prove
    they are well formed — with no JSON library in the toolchain, both
    directions live here.  The dialect is plain RFC 8259 minus the
    corner cases the exporters never produce: numbers are OCaml [int]s
    or finite [float]s, strings are UTF-8 carried verbatim (with
    [\uXXXX] escapes decoded on input). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render; [minify:false] (default) pretty-prints with two-space
    indentation, the format the CI gate diffs and humans read.  Floats
    must be finite: NaN or infinities raise [Invalid_argument] rather
    than emit invalid JSON. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error is ["offset N: message"].
    Trailing non-whitespace input is an error. *)

val member : string -> t -> t option
(** [member k (Obj ...)] — field lookup; [None] on missing key or
    non-object. *)

val to_list_opt : t -> t list option
val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** Accepts both [Int] and [Float] nodes. *)

val to_string_opt : t -> string option
