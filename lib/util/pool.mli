(** Fixed-size domain work pool for embarrassingly parallel experiment
    fan-outs.

    The paper's evaluation is a bag of independent tasks (benchmark x
    algorithm protect runs, attack-harness entries, per-die provisioning
    trials), each deterministic given a pre-derived seed.  The pool runs
    such bags across OCaml 5 domains while keeping submission-order
    results, so serial and parallel runs produce identical output.

    Determinism contract: derive every task's random stream ({!Rng.split}
    or an explicit per-task seed) {e before} submission.  Tasks must not
    share mutable state; netlists shared read-only across tasks should
    have their lazy caches forced first ({!Sttc_netlist.Netlist.warm}).

    Deadlines: [setitimer]-based {!Timing.with_timeout} is per-process
    and does not compose with domains, so the pool instead carries a
    cooperative per-task deadline on a monotonic clock.  Long-running
    task code polls {!check_deadline} at convenient points; expiry is
    reported as an ordinary captured task error. *)

type error = {
  index : int;  (** submission position of the failed task *)
  exn : string;  (** [Printexc.to_string] of the captured exception *)
  backtrace : string;  (** captured backtrace text (may be empty) *)
}

exception Task_error of error
(** Raised by {!map_exn} / {!map_reduce} for the failed task with the
    smallest submission index. *)

exception Deadline_exceeded
(** Raised by {!check_deadline} when the current task is past its
    deadline; captured per task like any other exception. *)

type t

val create : ?chunk:int -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs] worker domains ([jobs >= 1]).
    [chunk] fixes the number of consecutive tasks handed to a worker at
    a time (default: computed from the submission size, about four
    chunks per worker). *)

val jobs : t -> int
(** Worker count the pool was created with. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [-j 0] resolves to. *)

val worthwhile :
  ?min_work:float -> jobs:int -> tasks:int -> work:float -> unit -> bool
(** [worthwhile ~jobs ~tasks ~work ()] — should this bag be fanned out
    at all?  Spawning and joining worker domains costs real time, so a
    pool over a small bag loses to a plain serial loop.  Returns [true]
    only when [jobs > 1], there is more than one task, and the caller's
    estimate of total work ([work], arbitrary units) reaches [min_work]
    (default [1.], i.e. the caller pre-scaled the estimate).  Callers
    that can't estimate work should pass [work = infinity] and rely on
    the task count alone. *)

val map : ?deadline_s:float -> t -> ('a -> 'b) -> 'a list -> ('b, error) result list
(** [map t f items] applies [f] to every item on the worker domains and
    returns the outcomes in submission order.  Exceptions (including
    {!Deadline_exceeded}) are captured per task: one failed task never
    aborts the bag.  [deadline_s] arms each task's cooperative deadline,
    starting when the task starts.

    Must not be called from inside a pool task of the same pool (the
    worker would wait on itself); nested fan-outs run serially instead. *)

val map_exn : ?deadline_s:float -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map}, but re-raises the first (by submission index) captured
    failure as {!Task_error} after the whole bag has settled. *)

val map_reduce :
  ?deadline_s:float ->
  t ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
(** [map_reduce t ~map ~reduce ~init items] maps on the workers, then
    folds the results in submission order on the calling domain — the
    reduction is order-stable, so a non-commutative [reduce] still gives
    the serial answer.  Raises {!Task_error} like {!map_exn}. *)

val shutdown : t -> unit
(** Graceful shutdown: already-queued work is drained, workers then exit
    and are joined.  Idempotent.  Subsequent {!map} calls raise
    [Invalid_argument]. *)

val with_pool : ?chunk:int -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down on
    the way out, exceptions included. *)

(** {1 Instrumentation probe}

    The pool sits below the observability layer in the dependency
    order, so rather than record anything itself it exposes one hook.
    [Sttc_obs.Obs.attach_pool] installs a probe that turns these
    callbacks into spans and metrics; without one, the overhead is a
    single atomic load per {!map} call. *)

type probe = {
  on_submit : tasks:int -> chunks:int -> unit;
      (** called once per {!map} submission, on the calling domain,
          before any work is enqueued *)
  around_chunk : size:int -> (unit -> unit) -> unit;
      (** wraps each chunk's execution on its worker domain; must call
          the thunk exactly once ([size] = tasks in the chunk) *)
}

val set_probe : probe option -> unit
(** Install or remove the global probe.  Affects subsequent {!map}
    calls; intended for process startup, not mid-run toggling. *)

(** {1 Cooperative deadlines}

    Available to task code regardless of which pool runs it. *)

val check_deadline : unit -> unit
(** Raise {!Deadline_exceeded} if the current task's deadline has
    passed.  No-op outside a deadline-armed task. *)

val remaining_s : unit -> float option
(** Seconds until the current task's deadline ([None] when no deadline
    is armed).  Negative once expired. *)

val now_s : unit -> float
(** The pool's monotonic clock, in seconds from an arbitrary origin. *)
