type align = Left | Right | Center

type row = Cells of string list | Rule

type t = {
  headers : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let missing = width - n in
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s
    | Center ->
        let l = missing / 2 in
        String.make l ' ' ^ s ^ String.make (missing - l) ' '

let render t =
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let rows = List.rev t.rows in
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  let account cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  account headers;
  List.iter (function Cells c -> account c | Rule -> ()) rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let line aligns cells =
    List.iteri
      (fun i c ->
        let a = List.nth aligns i in
        Buffer.add_string buf ("| " ^ pad a widths.(i) c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  rule ();
  line (List.map (fun _ -> Center) headers) headers;
  rule ();
  List.iter
    (function
      | Cells c -> line aligns c
      | Rule -> rule ())
    rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)
