(* splitmix64: tiny, fast, and good enough statistical quality for workload
   generation; chosen over [Random.State] to guarantee stream stability
   across OCaml releases. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let next_raw t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { state = Int64.of_int seed }

let split t = { state = next_raw t }
let copy t = { state = t.state }

let int64 t = next_raw t

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int.  Rejection-
     free: modulo bias is < 2^-38 for the bounds used in this code base
     (all far below 2^24). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_raw t) 2) in
  v mod bound

let bool t = Int64.logand (next_raw t) 1L = 1L

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound must be positive";
  let v = Int64.to_float (Int64.shift_right_logical (next_raw t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k arr =
  let n = Array.length arr in
  let k = Stdlib.min k n in
  let scratch = Array.copy arr in
  (* Partial Fisher-Yates: only the first [k] positions need settling. *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = scratch.(i) in
    scratch.(i) <- scratch.(j);
    scratch.(j) <- tmp
  done;
  Array.sub scratch 0 k
