(** Deterministic, splittable pseudo-random source.

    Every stochastic step of the flow (benchmark generation, gate selection,
    pattern generation) takes an explicit [Rng.t] so that experiments are
    reproducible from a single integer seed, as required to regenerate the
    paper's tables deterministically. *)

type t

val make : int -> t
(** [make seed] creates an independent generator. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    subsequent draws from [t].  Used to give each benchmark / algorithm its
    own stream so experiment order does not change results. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound > 0]. *)

val int64 : t -> int64
(** A uniform 64-bit value. *)

val bool : t -> bool
val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [min k (Array.length arr)] distinct elements,
    in random order. *)
