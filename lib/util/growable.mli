(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    Used by the netlist builder and the SAT solver, both of which append
    heavily and then iterate. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when the index is out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** [push t x] appends [x] and returns its index. *)

val pop : 'a t -> 'a
(** Removes and returns the last element.  Raises [Invalid_argument] when
    empty. *)

val last : 'a t -> 'a
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val truncate : 'a t -> int -> unit
(** [truncate t n] drops all elements at index [>= n]. *)
