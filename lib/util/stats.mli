(** Small descriptive-statistics helpers for experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean; 0. for the empty list. *)

val stdev : float list -> float
(** Population standard deviation; 0. for lists shorter than 2. *)

val median : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], nearest-rank method.
    Raises [Invalid_argument] on an empty list or [p] out of range. *)

val minimum : float list -> float
val maximum : float list -> float
val sum : float list -> float

val relative_overhead : base:float -> modified:float -> float
(** [(modified - base) / base * 100.], the percentage metric used across
    the paper's Table I.  Returns 0. when [base = 0.]. *)
