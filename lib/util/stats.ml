let sum = List.fold_left ( +. ) 0.

let mean = function
  | [] -> 0.
  | xs -> sum xs /. float_of_int (List.length xs)

let stdev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
      sqrt (sq /. float_of_int (List.length xs))

let sorted xs = List.sort Float.compare xs

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  arr.(max 0 (min (n - 1) (rank - 1)))

let median xs = percentile 50. xs

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty"
  | x :: xs -> List.fold_left Float.min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty"
  | x :: xs -> List.fold_left Float.max x xs

let relative_overhead ~base ~modified =
  if base = 0. then 0. else (modified -. base) /. base *. 100.
