type t = float
(* The base-10 logarithm of the represented value; [neg_infinity] encodes
   zero.  NaN never appears: all constructors reject it. *)

let zero = neg_infinity
let one = 0.

let of_float x =
  if Float.is_nan x || x < 0. then
    invalid_arg "Lognum.of_float: negative or NaN"
  else if x = 0. then zero
  else Stdlib.log10 x

let of_int n = of_float (float_of_int n)

let of_log10 e =
  if Float.is_nan e then invalid_arg "Lognum.of_log10: NaN" else e

let log10 t = t
let is_zero t = t = neg_infinity

let to_float t = if is_zero t then 0. else Float.pow 10. t

let mul a b = if is_zero a || is_zero b then zero else a +. b

let div a b =
  if is_zero b then raise Division_by_zero
  else if is_zero a then zero
  else a -. b

(* log10 (10^a + 10^b) = max + log10 (1 + 10^(min-max)) *)
let add a b =
  if is_zero a then b
  else if is_zero b then a
  else
    let hi = Float.max a b and lo = Float.min a b in
    hi +. Stdlib.log10 (1. +. Float.pow 10. (lo -. hi))

let pow a n =
  if n < 0 then invalid_arg "Lognum.pow: negative exponent"
  else if n = 0 then one
  else if is_zero a then zero
  else a *. float_of_int n

let pow_float a x =
  if Float.is_nan x || x < 0. then invalid_arg "Lognum.pow_float"
  else if x = 0. then one
  else if is_zero a then zero
  else a *. x

let compare = Float.compare
let equal a b = Float.equal a b
let ( * ) = mul
let ( + ) = add
let max a b = Float.max a b
let min a b = Float.min a b
let prod l = List.fold_left mul one l
let sum l = List.fold_left add zero l

let to_string t =
  if is_zero t then "0"
  else if t < 6. && t > -3. then
    let v = Float.pow 10. t in
    if Float.is_integer v && Float.abs v < 1e6 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.3g" v
  else
    let e = Float.to_int (Float.floor t) in
    let mant = Float.pow 10. (t -. Float.of_int e) in
    (* Rounding the mantissa to two decimals can push it to 10.00. *)
    let mant, e =
      if mant >= 9.995 then (1.0, Stdlib.( + ) e 1) else (mant, e)
    in
    Printf.sprintf "%.2fE%+d" mant e

let pp fmt t = Format.pp_print_string fmt (to_string t)

let seconds_per_year = 365.25 *. 24. *. 3600.
let seconds_to_years t = div t (of_float seconds_per_year)

let clocks_to_years ~rate_hz t =
  if rate_hz <= 0. then invalid_arg "Lognum.clocks_to_years: rate"
  else seconds_to_years (div t (of_float rate_hz))
