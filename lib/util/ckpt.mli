(** Versioned, crash-safe [Marshal] containers.

    Checkpoint and shard-interchange files are OCaml [Marshal] payloads,
    which are fast and exact but dangerous to read blind: feeding
    [Marshal.from_channel] a file written by an older build (or a file
    truncated by a crash) is undefined behaviour territory.  This module
    fences the payload behind a plain-text header line that is validated
    {e before} any unmarshalling happens:

    {v sttc-ckpt/1 <magic>\n<marshal bytes> v}

    where [<magic>] names the payload type and its format version
    (e.g. ["benchmark-rows-v2"]).  A file whose header does not match
    byte-for-byte is rejected without ever reaching [Marshal]; a file
    whose payload is truncated or corrupt is rejected by the exception
    fence around the unmarshal itself.

    Writes are atomic (temp file + [rename] in the same directory), so a
    kill at any point leaves either the previous file or the new one on
    disk — never a torn hybrid.  That makes rejected reads safe to treat
    as "retry from scratch". *)

type error =
  [ `Missing  (** no file at that path *)
  | `Rejected of string
    (** wrong container header, wrong magic, truncated or corrupt
        payload — the reason says which *) ]

val error_to_string : error -> string

val save : string -> magic:string -> 'a -> unit
(** [save path ~magic v] writes the container atomically.  [magic] must
    be non-empty and free of newlines ([Invalid_argument] otherwise). *)

val load : string -> magic:string -> ('a, error) result
(** [load path ~magic] validates the header line against this library's
    container version and [magic], then unmarshals the payload.  Never
    raises on bad input — every failure mode is a typed [error].

    The type ['a] is the caller's claim, exactly as with [Marshal]; the
    [magic] string is the discipline that keeps that claim honest, so
    bump it whenever the payload type changes. *)
