let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, t1 -. t0)

let format_min_sec seconds =
  if seconds < 0. then invalid_arg "Timing.format_min_sec: negative";
  let minutes = int_of_float (seconds /. 60.) in
  let rem = seconds -. (60. *. float_of_int minutes) in
  Printf.sprintf "%02d:%04.1f" minutes rem
