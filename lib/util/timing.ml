let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, t1 -. t0)

exception Timed_out

(* One ITIMER_REAL per process: a nested call would silently clobber the
   outer timer (the second setitimer overwrites the first and the outer
   stop () then disarms the inner one too).  The flag needs no atomics —
   only the main domain may get past the domain check below. *)
let timer_armed = ref false

let with_timeout ~seconds f =
  if not (Domain.is_main_domain ()) then
    invalid_arg
      "Timing.with_timeout: SIGALRM timers are per-process and only the main \
       domain may arm one; pool tasks must poll Pool.check_deadline instead";
  if !timer_armed then
    invalid_arg
      "Timing.with_timeout: nested call would clobber the armed timer; use \
       one outer budget or cooperative Pool deadlines";
  if seconds <= 0. then Error `Timeout
  else begin
    timer_armed := true;
    let old_handler =
      Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timed_out))
    in
    let stop () =
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_value = 0.; it_interval = 0. });
      Sys.set_signal Sys.sigalrm old_handler;
      timer_armed := false
    in
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_value = seconds; it_interval = 0. });
    match f () with
    | v ->
        stop ();
        Ok v
    | exception Timed_out ->
        stop ();
        Error `Timeout
    | exception e ->
        stop ();
        raise e
  end

let format_min_sec seconds =
  if seconds < 0. then invalid_arg "Timing.format_min_sec: negative";
  let minutes = int_of_float (seconds /. 60.) in
  let rem = seconds -. (60. *. float_of_int minutes) in
  Printf.sprintf "%02d:%04.1f" minutes rem
