(** Non-negative real numbers carried in the log10 domain.

    The security equations of the paper (Eqs. 1-3) produce values such as
    6.07E+219 test clocks, which overflow even IEEE double products when
    computed naively as running products.  [Lognum] stores [log10 x] and
    performs multiplication as addition and addition as log-sum-exp, so any
    quantity expressible as a finite power of ten is exact to double
    precision of its exponent. *)

type t

val zero : t
(** The number 0 (log is [-infinity]). *)

val one : t

val of_float : float -> t
(** [of_float x] represents [x].  Raises [Invalid_argument] if [x < 0.] or
    [x] is NaN. *)

val of_int : int -> t

val of_log10 : float -> t
(** [of_log10 e] is the number [10^e]. *)

val log10 : t -> float
(** [log10 t] is the base-10 logarithm; [neg_infinity] for {!zero}. *)

val to_float : t -> float
(** Best-effort conversion; [infinity] when the value exceeds the double
    range. *)

val is_zero : t -> bool

val mul : t -> t -> t
val div : t -> t -> t
(** [div a b] raises [Division_by_zero] when [b] is {!zero}. *)

val add : t -> t -> t
val pow : t -> int -> t
(** [pow a n] for [n >= 0].  Raises [Invalid_argument] on negative [n]. *)

val pow_float : t -> float -> t
(** [pow_float a x] is [a ** x] for [x >= 0.]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( * ) : t -> t -> t
val ( + ) : t -> t -> t

val max : t -> t -> t
val min : t -> t -> t

val prod : t list -> t
val sum : t list -> t

val to_string : t -> string
(** Scientific notation with three significant digits, e.g. ["6.07E+219"];
    values below 1e6 are printed in plain decimal. *)

val pp : Format.formatter -> t -> unit

val seconds_to_years : t -> t
(** Convert a count of seconds to years (365.25-day years). *)

val clocks_to_years : rate_hz:float -> t -> t
(** [clocks_to_years ~rate_hz n] is how many years applying [n] test clocks
    takes at [rate_hz] patterns per second (the paper assumes 1e9/s). *)
