(* Container version: bump when the header layout itself changes (the
   per-payload format version lives in the caller's magic string). *)
let container = "sttc-ckpt/1"

type error = [ `Missing | `Rejected of string ]

let error_to_string = function
  | `Missing -> "no such file"
  | `Rejected reason -> "rejected: " ^ reason

let check_magic magic =
  if magic = "" || String.contains magic '\n' then
    invalid_arg "Ckpt: magic must be non-empty and single-line"

let header magic = container ^ " " ^ magic

let save path ~magic v =
  check_magic magic;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc (header magic);
         output_char oc '\n';
         Marshal.to_channel oc v [])
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* The header is read with a hard length bound so a file that merely
   starts with unbounded garbage (no newline) cannot make us buffer it
   all: a valid header is short, and anything longer is already not
   ours. *)
let read_header ic ~magic =
  let expected = header magic in
  let limit = String.length expected + 1 in
  let buf = Buffer.create limit in
  let rec scan n =
    if n > limit then Error (`Rejected "not a sttc-ckpt container")
    else
      match input_char ic with
      | '\n' ->
          let line = Buffer.contents buf in
          if line = expected then Ok ()
          else if not (String.length line >= String.length container
                       && String.sub line 0 (String.length container)
                          = container)
          then Error (`Rejected "not a sttc-ckpt container")
          else Error (`Rejected ("magic mismatch: got " ^ line))
      | c ->
          Buffer.add_char buf c;
          scan (n + 1)
      | exception End_of_file ->
          Error (`Rejected "truncated before end of header")
  in
  scan 0

let load path ~magic =
  check_magic magic;
  if not (Sys.file_exists path) then Error `Missing
  else
    match open_in_bin path with
    | exception Sys_error m -> Error (`Rejected m)
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match read_header ic ~magic with
            | Error _ as e -> e
            | Ok () -> (
                (* the header vouches for the writer, not for the bytes:
                   a crash mid-rename never truncates (writes are
                   atomic), but disk-level corruption or a hand-edited
                   file still must land here, not in a segfault *)
                match Marshal.from_channel ic with
                | v -> Ok v
                | exception End_of_file ->
                    Error (`Rejected "truncated payload")
                | exception Failure m ->
                    Error (`Rejected ("corrupt payload: " ^ m))
                | exception _ -> Error (`Rejected "corrupt payload")))
