(* Work-stealing is overkill for our task shapes (tens to hundreds of
   coarse tasks): a single mutex-protected queue of chunks keeps the
   implementation dependency-free and the contention negligible next to
   task cost. *)

type error = {
  index : int;
  exn : string;
  backtrace : string;
}

exception Task_error of error
exception Deadline_exceeded

(* ---------- monotonic clock + cooperative deadlines ---------- *)

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* The deadline lives in domain-local storage so task code can poll it
   without threading a handle through every call. *)
let deadline_key : float option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_deadline d = Domain.DLS.get deadline_key := d

let check_deadline () =
  match !(Domain.DLS.get deadline_key) with
  | Some d when now_s () > d -> raise Deadline_exceeded
  | _ -> ()

let remaining_s () =
  Option.map (fun d -> d -. now_s ()) !(Domain.DLS.get deadline_key)

(* ---------- instrumentation probe ---------- *)

(* The pool sits below the observability library in the dependency
   order, so it cannot record spans or metrics itself; instead it
   exposes one hook that an observer installs at startup.  Absent a
   probe the cost is one [Atomic.get] per [map] call. *)

type probe = {
  on_submit : tasks:int -> chunks:int -> unit;
  around_chunk : size:int -> (unit -> unit) -> unit;
}

let probe : probe option Atomic.t = Atomic.make None

let set_probe p = Atomic.set probe p

(* ---------- the pool ---------- *)

type t = {
  mutex : Mutex.t;
  work_cond : Condition.t;  (* workers: work arrived or shutdown *)
  done_cond : Condition.t;  (* submitters: a chunk completed *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  size : int;
  chunk_hint : int option;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Spawning and joining a domain costs on the order of a millisecond
   each, and the quick experiment fan-outs finish in well under that
   budget per task — a pool over a tiny bag is strictly slower than a
   serial loop.  Callers estimate the bag's total work in arbitrary
   units and declare what one unit of fan-out overhead costs in the
   same units via [min_work]. *)
let worthwhile ?(min_work = 1.) ~jobs ~tasks ~work () =
  jobs > 1 && tasks > 1 && work >= min_work

let worker_loop t =
  let rec next () =
    (* drain queued work even when stopping: shutdown is graceful *)
    match Queue.take_opt t.queue with
    | Some task -> Some task
    | None ->
        if t.stop then None
        else begin
          Condition.wait t.work_cond t.mutex;
          next ()
        end
  in
  let rec loop () =
    Mutex.lock t.mutex;
    let task = next () in
    Mutex.unlock t.mutex;
    match task with
    | None -> ()
    | Some task ->
        task ();
        loop ()
  in
  loop ()

let create ?chunk ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.create: chunk must be >= 1"
  | _ -> ());
  let t =
    {
      mutex = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [||];
      size = jobs;
      chunk_hint = chunk;
    }
  in
  t.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?chunk ~jobs f =
  let t = create ?chunk ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map ?deadline_s t f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let chunk =
      match t.chunk_hint with
      | Some c -> c
      | None -> max 1 (n / (4 * t.size))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let pending = ref nchunks in
    let run_range lo hi =
      for i = lo to hi do
        let outcome =
          match
            set_deadline (Option.map (fun s -> now_s () +. s) deadline_s);
            f arr.(i)
          with
          | v -> Ok v
          | exception e ->
              Error
                {
                  index = i;
                  exn = Printexc.to_string e;
                  backtrace = Printexc.get_backtrace ();
                }
        in
        set_deadline None;
        (* distinct indices per worker; the caller only reads them after
           synchronizing on [pending] under the mutex *)
        results.(i) <- Some outcome
      done;
      Mutex.lock t.mutex;
      decr pending;
      if !pending = 0 then Condition.broadcast t.done_cond;
      Mutex.unlock t.mutex
    in
    let probe = Atomic.get probe in
    (match probe with
    | Some p -> p.on_submit ~tasks:n ~chunks:nchunks
    | None -> ());
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for c = 0 to nchunks - 1 do
      let lo = c * chunk in
      let hi = min (n - 1) (lo + chunk - 1) in
      let body () = run_range lo hi in
      let task =
        match probe with
        | Some p -> fun () -> p.around_chunk ~size:(hi - lo + 1) body
        | None -> body
      in
      Queue.add task t.queue
    done;
    Condition.broadcast t.work_cond;
    while !pending > 0 do
      Condition.wait t.done_cond t.mutex
    done;
    Mutex.unlock t.mutex;
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* pending = 0 implies every slot set *))
         results)
  end

let first_error outcomes =
  List.find_map (function Error e -> Some e | Ok _ -> None) outcomes

let map_exn ?deadline_s t f items =
  let outcomes = map ?deadline_s t f items in
  match first_error outcomes with
  | Some e -> raise (Task_error e)
  | None ->
      List.map (function Ok v -> v | Error _ -> assert false) outcomes

let map_reduce ?deadline_s t ~map:f ~reduce ~init items =
  List.fold_left
    (fun acc v -> reduce acc v)
    init
    (map_exn ?deadline_s t f items)
