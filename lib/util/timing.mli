(** Wall-clock measurement used for the Table II reproduction. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val with_timeout : seconds:float -> (unit -> 'a) -> ('a, [ `Timeout ]) result
(** [with_timeout ~seconds f] runs [f ()] under a wall-clock budget
    enforced with [ITIMER_REAL]/[SIGALRM]: if [f] has not returned after
    [seconds], it is interrupted at its next allocation point and
    [Error `Timeout] is returned.  A budget [<= 0] refuses to run [f] at
    all.  Exceptions raised by [f] propagate; the previous signal
    disposition is restored either way.

    Not reentrant, and enforced as such: there is one process-wide
    timer, so a nested call — which would silently clobber the outer
    budget — raises [Invalid_argument].  Likewise the signal-based
    mechanism does not compose with domains: calling from any domain but
    the main one raises [Invalid_argument].  Code running inside a
    {!Pool} task must use the pool's cooperative deadlines
    ({!Pool.check_deadline}) instead. *)

val format_min_sec : float -> string
(** Render seconds as the paper's Table II format ["MM:SS.d"], e.g.
    [format_min_sec 75.5 = "01:15.5"]. *)
