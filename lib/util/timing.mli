(** Wall-clock measurement used for the Table II reproduction. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val format_min_sec : float -> string
(** Render seconds as the paper's Table II format ["MM:SS.d"], e.g.
    [format_min_sec 75.5 = "01:15.5"]. *)
