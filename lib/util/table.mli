(** Plain-text table rendering in the style of the paper's Tables I and II.

    Columns are sized to their widest cell; headers may span two lines by
    embedding ['\n']. *)

type align = Left | Right | Center

type t

val create : headers:(string * align) list -> t
(** [create ~headers] starts a table; each entry is the column header and
    the alignment applied to its body cells. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header
    width. *)

val add_separator : t -> unit
(** Inserts a horizontal rule before the next row. *)

val render : t -> string
val print : t -> unit
