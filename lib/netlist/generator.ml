module Rng = Sttc_util.Rng

type spec = {
  design_name : string;
  n_pi : int;
  n_po : int;
  n_ff : int;
  n_gates : int;
  levels : int;
}

let default_spec =
  {
    design_name = "smoke";
    n_pi = 8;
    n_po = 8;
    n_ff = 6;
    n_gates = 60;
    levels = 6;
  }

let validate spec =
  if spec.n_pi < 1 then invalid_arg "Generator: n_pi >= 1 required";
  if spec.n_po < 1 then invalid_arg "Generator: n_po >= 1 required";
  if spec.n_ff < 0 then invalid_arg "Generator: n_ff >= 0 required";
  if spec.n_gates < 1 then invalid_arg "Generator: n_gates >= 1 required";
  if spec.levels < 1 then invalid_arg "Generator: levels >= 1 required"

(* Fan-in distribution loosely matching synthesized standard-cell netlists:
   mostly 2-input cells, a tail of 3/4-input, some inverters/buffers. *)
let pick_arity rng =
  let r = Rng.int rng 100 in
  if r < 12 then 1 else if r < 70 then 2 else if r < 88 then 3 else 4

let pick_fn rng arity =
  if arity = 1 then if Rng.int rng 100 < 80 then Sttc_logic.Gate_fn.Not
    else Sttc_logic.Gate_fn.Buf
  else
    let r = Rng.int rng 100 in
    if r < 25 then Sttc_logic.Gate_fn.Nand arity
    else if r < 45 then Sttc_logic.Gate_fn.Nor arity
    else if r < 65 then Sttc_logic.Gate_fn.And arity
    else if r < 82 then Sttc_logic.Gate_fn.Or arity
    else if r < 92 then Sttc_logic.Gate_fn.Xor arity
    else Sttc_logic.Gate_fn.Xnor arity

(* [hub_bias = Some pct] redirects [pct]% of non-level-pinning fanin draws
   to a small fixed pool of level-0 "hub" signals (clock enables, resets —
   the high-fanout nets of real netlists).  [None] performs no extra RNG
   draws, so circuits generated before this parameter existed are
   bit-identical. *)
let generate_internal ?hub_bias ~seed spec =
  validate spec;
  let rng = Rng.make (seed lxor Hashtbl.hash spec.design_name) in
  let b = Netlist.Builder.create ~design_name:spec.design_name () in
  let pis =
    Array.init spec.n_pi (fun i -> Netlist.Builder.add_pi b (Printf.sprintf "pi%d" i))
  in
  let ffs =
    Array.init spec.n_ff (fun i ->
        Netlist.Builder.add_dff_deferred b (Printf.sprintf "ff%d" i))
  in
  (* by_level.(l) = signals whose combinational level is l *)
  let levels = max 1 spec.levels in
  let by_level = Array.make (levels + 1) [||] in
  by_level.(0) <- Array.append pis ffs;
  (* Distribute gates over levels 1..levels, at least one per level while
     the budget lasts. *)
  let per_level = Array.make (levels + 1) 0 in
  let remaining = ref spec.n_gates in
  for l = 1 to levels do
    if !remaining > 0 then begin
      per_level.(l) <- 1;
      decr remaining
    end
  done;
  while !remaining > 0 do
    (* Bias towards shallow levels (min of two uniform draws): real
       synthesized circuits are wide near the inputs and narrow at the
       deepest logic levels, leaving only a few near-critical paths. *)
    let l = 1 + min (Rng.int rng levels) (Rng.int rng levels) in
    per_level.(l) <- per_level.(l) + 1;
    decr remaining
  done;
  let gate_count = ref 0 in
  (* [prior_signals] only ever contains signals from strictly earlier
     levels, so every fanin draw keeps the levelized depth bound intact *)
  let prior_signals = Sttc_util.Growable.create () in
  let consumed = Hashtbl.create 256 in
  Array.iter (fun id -> ignore (Sttc_util.Growable.push prior_signals id)) by_level.(0);
  let hubs =
    match hub_bias with
    | None -> None
    | Some pct ->
        let l0 = by_level.(0) in
        Some (pct, Array.sub l0 0 (min 64 (Array.length l0)))
  in
  for l = 1 to levels do
    (* snapshot once per level: [prior_signals] only grows between levels,
       so this is identical to converting at each use, without the O(n)
       copy inside the retry loops (which matters at 10^6 gates) *)
    let prior_arr = Sttc_util.Growable.to_array prior_signals in
    let created = Sttc_util.Growable.create () in
    for _ = 1 to per_level.(l) do
      let arity = pick_arity rng in
      let fn = pick_fn rng arity in
      (* first fanin from level l-1 (pins this gate's level); fall back to
         any earlier level when l-1 is empty *)
      let prev =
        if Array.length by_level.(l - 1) > 0 then by_level.(l - 1)
        else prior_arr
      in
      let first = Rng.pick rng prev in
      let rest =
        List.init (arity - 1) (fun _ ->
            match hubs with
            | Some (pct, pool) when Rng.int rng 100 < pct -> Rng.pick rng pool
            | _ ->
                (* bias towards recent levels for locality, fall back
                   uniform *)
                let source_level =
                  if Rng.int rng 100 < 60 then l - 1 else Rng.int rng l
                in
                let pool =
                  if Array.length by_level.(source_level) > 0 then
                    by_level.(source_level)
                  else prior_arr
                in
                Rng.pick rng pool)
      in
      (* gates must have distinct fanins to be meaningful; retry duplicates
         cheaply by drawing from the global pool *)
      let inputs =
        let seen = Hashtbl.create 4 in
        List.map
          (fun cand ->
            let cand = ref cand in
            let attempts = ref 0 in
            while Hashtbl.mem seen !cand && !attempts < 10 do
              cand := Rng.pick rng prior_arr;
              incr attempts
            done;
            Hashtbl.replace seen !cand ();
            !cand)
          (first :: rest)
      in
      (* degenerate duplicates may survive in tiny circuits; drop repeats *)
      let inputs = List.sort_uniq Int.compare inputs in
      let arity = List.length inputs in
      let fn =
        if arity = 1 then
          (match fn with
          | Sttc_logic.Gate_fn.Buf | Sttc_logic.Gate_fn.Not -> fn
          | Sttc_logic.Gate_fn.Nand _ | Sttc_logic.Gate_fn.Nor _
          | Sttc_logic.Gate_fn.Xnor _ ->
              Sttc_logic.Gate_fn.Not
          | Sttc_logic.Gate_fn.And _ | Sttc_logic.Gate_fn.Or _
          | Sttc_logic.Gate_fn.Xor _ ->
              Sttc_logic.Gate_fn.Buf)
        else
          match fn with
          | Sttc_logic.Gate_fn.Buf | Sttc_logic.Gate_fn.Not -> fn
          | Sttc_logic.Gate_fn.And _ -> Sttc_logic.Gate_fn.And arity
          | Sttc_logic.Gate_fn.Nand _ -> Sttc_logic.Gate_fn.Nand arity
          | Sttc_logic.Gate_fn.Or _ -> Sttc_logic.Gate_fn.Or arity
          | Sttc_logic.Gate_fn.Nor _ -> Sttc_logic.Gate_fn.Nor arity
          | Sttc_logic.Gate_fn.Xor _ -> Sttc_logic.Gate_fn.Xor arity
          | Sttc_logic.Gate_fn.Xnor _ -> Sttc_logic.Gate_fn.Xnor arity
      in
      let id =
        Netlist.Builder.add_gate b (Printf.sprintf "g%d" !gate_count) fn inputs
      in
      List.iter (fun src -> Hashtbl.replace consumed src ()) inputs;
      incr gate_count;
      ignore (Sttc_util.Growable.push created id)
    done;
    by_level.(l) <- Sttc_util.Growable.to_array created;
    Array.iter
      (fun id -> ignore (Sttc_util.Growable.push prior_signals id))
      by_level.(l)
  done;
  (* Sinks: FF inputs and POs.  First consume gates that no other gate
     reads (they would otherwise dangle), deepest level first; then fall
     back to random late-level gates. *)
  let dangling = Sttc_util.Growable.create () in
  for l = levels downto 1 do
    Array.iter
      (fun id ->
        if not (Hashtbl.mem consumed id) then
          ignore (Sttc_util.Growable.push dangling id))
      by_level.(l)
  done;
  let late_pool =
    let acc = Sttc_util.Growable.create () in
    let lo = max 1 (levels / 2) in
    for l = lo to levels do
      Array.iter (fun id -> ignore (Sttc_util.Growable.push acc id)) by_level.(l)
    done;
    if Sttc_util.Growable.is_empty acc then
      Sttc_util.Growable.to_array prior_signals
    else Sttc_util.Growable.to_array acc
  in
  let dangle_pos = ref 0 in
  let next_sink ?(pool = late_pool) () =
    if !dangle_pos < Sttc_util.Growable.length dangling then begin
      let id = Sttc_util.Growable.get dangling !dangle_pos in
      incr dangle_pos;
      id
    end
    else Rng.pick rng pool
  in
  (* Flip-flops split between short-hop state chains (D driven from a
     shallow level, as in counters and shift registers) and deep datapath
     capture; without the short hops every FF-to-FF segment would span the
     whole combinational depth, which real circuits do not do. *)
  let shallow_pool =
    let acc = Sttc_util.Growable.create () in
    let hi = max 1 (min levels 3) in
    for l = 1 to hi do
      Array.iter (fun id -> ignore (Sttc_util.Growable.push acc id)) by_level.(l)
    done;
    if Sttc_util.Growable.is_empty acc then late_pool
    else Sttc_util.Growable.to_array acc
  in
  Array.iter
    (fun ff ->
      (* Short-hop FFs draw straight from the shallow pool (bypassing the
         dangling queue, which is dominated by deep gates). *)
      let d =
        if Rng.int rng 100 < 55 then Rng.pick rng shallow_pool
        else next_sink ()
      in
      Netlist.Builder.set_dff_input b ff d)
    ffs;
  for i = 0 to spec.n_po - 1 do
    Netlist.Builder.add_output b (Printf.sprintf "po%d" i) (next_sink ())
  done;
  Netlist.Builder.finalize b

let generate ~seed spec = generate_internal ~seed spec

(* ---------- parameterized scale families ---------- *)

type profile = Slike | Wide | Deep | Fanout_heavy

let profile_name = function
  | Slike -> "slike"
  | Wide -> "wide"
  | Deep -> "deep"
  | Fanout_heavy -> "fanout"

let profile_of_string = function
  | "slike" | "s-like" -> Ok Slike
  | "wide" -> Ok Wide
  | "deep" -> Ok Deep
  | "fanout" | "fanout-heavy" -> Ok Fanout_heavy
  | s -> Error (Printf.sprintf "unknown profile %S (slike|wide|deep|fanout)" s)

let all_profiles = [ Slike; Wide; Deep; Fanout_heavy ]

let ilog2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 (max 1 n)

let family_spec ?(profile = Slike) ~gates () =
  if gates < 8 then invalid_arg "Generator.family_spec: gates >= 8 required";
  let b = ilog2 gates in
  let design_name = Printf.sprintf "%s%d" (profile_name profile) gates in
  match profile with
  | Slike | Fanout_heavy ->
      (* ISCAS'89-like interface/state ratios, depth growing with log size
         (s1238: 14 PI / 14 PO / 18 FF / 529 gates, depth ~20) *)
      {
        design_name;
        n_pi = max 8 (gates / 40);
        n_po = max 8 (gates / 40);
        n_ff = max 4 (gates / 30);
        n_gates = gates;
        levels = max 8 (2 * b);
      }
  | Wide ->
      (* shallow and wide: datapath-like, huge levels, few state bits *)
      {
        design_name;
        n_pi = max 16 (gates / 12);
        n_po = max 16 (gates / 25);
        n_ff = max 4 (gates / 50);
        n_gates = gates;
        levels = max 4 (b / 2);
      }
  | Deep ->
      (* long combinational chains: levels grow near-linearly in log size
         with a floor that keeps at least ~6 gates per level *)
      {
        design_name;
        n_pi = max 8 (gates / 200);
        n_po = max 8 (gates / 200);
        n_ff = max 2 (gates / 400);
        n_gates = gates;
        levels = max 24 (min (gates / 6) (25 * b));
      }

let generate_family ~seed ?(profile = Slike) ~gates () =
  let spec = family_spec ~profile ~gates () in
  let hub_bias = match profile with Fanout_heavy -> Some 30 | _ -> None in
  generate_internal ?hub_bias ~seed spec

let random_combinational ~seed ~n_pi ~n_gates ~n_po =
  generate ~seed
    {
      design_name = Printf.sprintf "comb%d" seed;
      n_pi;
      n_po;
      n_ff = 0;
      n_gates;
      levels = max 1 (min 12 (n_gates / 4));
    }
