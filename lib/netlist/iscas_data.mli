(** Genuine ISCAS benchmark netlists small enough to embed verbatim.

    The twelve evaluation circuits are structural twins (see
    [Iscas_profiles]); these two real netlists exist so that the
    [.bench] parser, the flow and the attacks are exercised against
    authentic inputs as well:

    - [s27]: the smallest ISCAS'89 sequential benchmark
      (4 PI, 1 PO, 3 DFF, 10 gates);
    - [c17]: the smallest ISCAS'85 combinational benchmark
      (5 PI, 2 PO, 6 NAND gates). *)

val s27_text : string
val c17_text : string

val s27 : unit -> Netlist.t
val c17 : unit -> Netlist.t

val all : (string * (unit -> Netlist.t)) list
