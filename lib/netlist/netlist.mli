(** Gate-level sequential netlists.

    A netlist is a frozen array of nodes.  Each node drives exactly one
    signal, identified by the node id; primary outputs are named references
    to driver nodes.  Combinational cycles are rejected at build time —
    every feedback loop must pass through a D flip-flop, matching the
    ISCAS'89 circuit model the paper evaluates on. *)

type node_id = int

type kind =
  | Pi  (** primary input *)
  | Const of bool
  | Gate of Sttc_logic.Gate_fn.t  (** custom CMOS gate *)
  | Lut of {
      arity : int;
      config : Sttc_logic.Truth.t option;
          (** [None] is a missing gate as seen by the foundry; [Some _] is a
              programmed STT LUT. *)
    }
  | Dff  (** D flip-flop; single fanin is the D input *)

type node = {
  name : string;
  kind : kind;
  fanins : node_id array;
}

type t

(** {1 Accessors} *)

val design_name : t -> string
val node_count : t -> int
val node : t -> node_id -> node
val kind : t -> node_id -> kind
val name : t -> node_id -> string
val fanins : t -> node_id -> node_id array
val find : t -> string -> node_id option
val find_exn : t -> string -> node_id

val outputs : t -> (string * node_id) array
(** Primary outputs as (name, driver). *)

val iter : (node_id -> node -> unit) -> t -> unit
val fold : (node_id -> node -> 'a -> 'a) -> t -> 'a -> 'a

val pis : t -> node_id list
val pos : t -> node_id list
(** Driver nodes of primary outputs (deduplicated, in output order). *)

val dffs : t -> node_id list
val gates : t -> node_id list
(** Combinational gate nodes (excludes LUTs). *)

val luts : t -> node_id list

val is_combinational : kind -> bool
(** True for [Gate] and [Lut]. *)

val gate_count : t -> int
(** Number of combinational nodes (gates + LUTs), the paper's circuit
    "size" (flip-flops excluded). *)

val fanouts : t -> node_id -> node_id list
(** Nodes reading this node's signal (computed once, cached). *)

val fanout_degree : t -> node_id -> int

val topo_order : t -> node_id array
(** All nodes in combinational topological order: PIs, constants and DFFs
    first (in id order), then every combinational node after all of its
    fanins.  DFF D-inputs do not constrain the order (they are sequential
    edges). *)

val warm : t -> unit
(** Force the lazily-computed fanout and topological-order caches.
    A netlist is otherwise immutable, so after [warm] it can be shared
    read-only across domains (e.g. {!Sttc_util.Pool} tasks) without the
    unsynchronized lazy-initialization race the caches would cause. *)

val stats : t -> string
(** One-line summary for logs. *)

(** {1 Construction} *)

module Builder : sig
  type netlist := t
  type t

  val create : ?design_name:string -> unit -> t

  val add_pi : t -> string -> node_id
  val add_const : t -> string -> bool -> node_id
  val add_gate : t -> string -> Sttc_logic.Gate_fn.t -> node_id list -> node_id
  val add_lut :
    t -> string -> ?config:Sttc_logic.Truth.t -> node_id list -> node_id

  val add_dff : t -> string -> node_id -> node_id
  val add_dff_deferred : t -> string -> node_id
  (** A flip-flop whose D input is wired later with {!set_dff_input} —
      needed to build feedback loops. *)

  val set_dff_input : t -> node_id -> node_id -> unit
  val add_output : t -> string -> node_id -> unit
  val node_count : t -> int

  val finalize : t -> netlist
  (** Validates and freezes.  Raises [Invalid_argument] on: duplicate
      names, dangling DFF inputs, arity mismatches, references to
      undefined nodes, combinational cycles, or empty output list. *)
end

val rename : t -> string -> t
(** Copy with a new design name. *)

val kind_delta : t -> t -> node_id list option
(** [kind_delta a b] is [Some ids] when [b] is {e id-compatible} with [a] —
    same node count and output list, and every node keeps its name and
    fanin array — with
    [ids] (ascending) the nodes whose kinds differ (necessarily
    combinational-to-combinational rewrites, i.e. gate/LUT kind or config
    changes).  [None] when the two netlists differ structurally, or when a
    kind change crosses the combinational/sequential/source boundary.
    This is the compatibility test behind the incremental re-analysis
    paths ({!Sttc_analysis.Sta.retime} and friends): [Some] guarantees the
    fanout and topological-order caches of [a] remain valid for [b]. *)

val with_kinds :
  t -> (node_id -> kind -> node_id array -> kind * node_id array) -> t
(** [with_kinds t f] copies [t], rewriting each node's kind and fanins with
    [f] while preserving node ids and names.  The result is re-validated
    (fanin arities, reference ranges, combinational acyclicity); raises
    [Invalid_argument] on violation.  This is the primitive beneath
    [Transform]. *)
