(** ISCAS'89 [.bench] format reader and writer.

    The grammar accepted:
    {v
    # comment
    INPUT(a)
    OUTPUT(z)
    n1 = NAND(a, b)
    s0 = DFF(n1)
    z = NOT(s0)
    v}

    Unconfigured LUT slots (missing gates) are written as [LUT(...)] and
    configured ones as [LUT "0110"(...)]; both are read back, so hybrid
    netlists round-trip.  Genuine ISCAS'89 files parse unchanged. *)

exception Parse_error of int * string
(** Line number and message. *)

val parse_string : ?design_name:string -> string -> Netlist.t
val parse_file : string -> Netlist.t
(** Design name defaults to the file's base name. *)

val to_string : Netlist.t -> string
val write_file : string -> Netlist.t -> unit
