exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

type stmt =
  | Sinput of string
  | Soutput of string
  | Sassign of string * string * string option * string list
      (** name = OP "config"? (args) *)

let lex_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then None
  else
    let parse_call s ctor =
      (* s looks like KEYWORD(name) *)
      match (String.index_opt s '(', String.rindex_opt s ')') with
      | Some l, Some r when r > l ->
          let arg = String.trim (String.sub s (l + 1) (r - l - 1)) in
          if arg = "" then fail lineno "empty argument list"
          else Some (ctor arg)
      | _ -> fail lineno ("malformed line: " ^ s)
    in
    let up = String.uppercase_ascii line in
    if String.length up >= 5 && String.sub up 0 5 = "INPUT" then
      parse_call line (fun a -> Sinput a)
    else if String.length up >= 6 && String.sub up 0 6 = "OUTPUT" then
      parse_call line (fun a -> Soutput a)
    else
      match String.index_opt line '=' with
      | None -> fail lineno ("expected assignment: " ^ line)
      | Some eq ->
          let lhs = String.trim (String.sub line 0 eq) in
          let rhs =
            String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
          in
          (match (String.index_opt rhs '(', String.rindex_opt rhs ')') with
          | Some l, Some r when r > l ->
              let head = String.trim (String.sub rhs 0 l) in
              let args_s = String.sub rhs (l + 1) (r - l - 1) in
              let args =
                String.split_on_char ',' args_s
                |> List.map String.trim
                |> List.filter (( <> ) "")
              in
              (* empty argument lists are legal for VCC()/GND() *)
              (* optional quoted config on LUTs: LUT "0110" *)
              let op, config =
                match String.index_opt head '"' with
                | None -> (String.trim head, None)
                | Some q1 -> (
                    match String.rindex_opt head '"' with
                    | Some q2 when q2 > q1 ->
                        ( String.trim (String.sub head 0 q1),
                          Some (String.sub head (q1 + 1) (q2 - q1 - 1)) )
                    | _ -> fail lineno "unterminated config string")
              in
              Some (Sassign (lhs, String.uppercase_ascii op, config, args))
          | _ -> fail lineno ("malformed right-hand side: " ^ rhs))

let parse_string ?(design_name = "bench") text =
  let stmts = ref [] in
  List.iteri
    (fun i line ->
      match lex_line (i + 1) line with
      | Some s -> stmts := (i + 1, s) :: !stmts
      | None -> ())
    (String.split_on_char '\n' text);
  let stmts = List.rev !stmts in
  let b = Netlist.Builder.create ~design_name () in
  (* Two passes: declare all signals (so forward references through DFFs
     work), then wire.  Signals defined by assignment become their node;
     INPUT declares a PI. *)
  let assigns = Hashtbl.create 64 in
  let input_names = Hashtbl.create 16 in
  let output_names = Hashtbl.create 16 in
  let inputs = ref [] and outs = ref [] in
  List.iter
    (fun (ln, s) ->
      match s with
      | Sinput a ->
          if Hashtbl.mem assigns a || Hashtbl.mem input_names a then
            fail ln ("redefined signal " ^ a);
          Hashtbl.add input_names a ();
          inputs := (ln, a) :: !inputs
      | Soutput a ->
          if Hashtbl.mem output_names a then fail ln ("duplicate OUTPUT " ^ a);
          Hashtbl.add output_names a ();
          outs := (ln, a) :: !outs
      | Sassign (lhs, op, config, args) ->
          if Hashtbl.mem assigns lhs || Hashtbl.mem input_names lhs then
            fail ln ("redefined signal " ^ lhs);
          Hashtbl.add assigns lhs (ln, op, config, args))
    stmts;
  let ids = Hashtbl.create 64 in
  List.iter
    (fun (ln, a) ->
      if Hashtbl.mem ids a then fail ln ("duplicate INPUT " ^ a);
      Hashtbl.add ids a (Netlist.Builder.add_pi b a))
    (List.rev !inputs);
  (* Declare DFFs first (deferred), then build combinational assignments in
     dependency order via recursion. *)
  Hashtbl.iter
    (fun lhs (ln, op, _config, args) ->
      if op = "DFF" then begin
        if List.length args <> 1 then fail ln "DFF takes one argument";
        Hashtbl.add ids lhs (Netlist.Builder.add_dff_deferred b lhs)
      end)
    assigns;
  let building = Hashtbl.create 16 in
  let rec node_of ln signal =
    match Hashtbl.find_opt ids signal with
    | Some id -> id
    | None -> (
        if Hashtbl.mem building signal then
          fail ln ("combinational cycle through " ^ signal);
        match Hashtbl.find_opt assigns signal with
        | None -> fail ln ("undefined signal " ^ signal)
        | Some (ln', op, config, args) ->
            Hashtbl.add building signal ();
            let arg_ids = List.map (node_of ln') args in
            let id = build_assign ln' signal op config arg_ids in
            Hashtbl.remove building signal;
            Hashtbl.add ids signal id;
            id)
  and build_assign ln lhs op config args =
    (* The builder re-validates everything structurally; anything it
       rejects (LUT arity out of range, ...) must surface as a
       Parse_error carrying the offending line, not a bare
       Invalid_argument. *)
    try
      match op with
      | "DFF" -> assert false (* pre-declared *)
      | "LUT" ->
          let arity = List.length args in
          let config =
            Option.map
              (fun s ->
                match Sttc_logic.Truth.of_string s with
                | t ->
                    if Sttc_logic.Truth.arity t <> arity then
                      fail ln "LUT config arity mismatch"
                    else t
                | exception Invalid_argument m -> fail ln m)
              config
          in
          Netlist.Builder.add_lut b lhs ?config args
      | "VCC" | "ONE" | "GND" | "ZERO" ->
          if args <> [] then fail ln (op ^ " takes no arguments");
          Netlist.Builder.add_const b lhs (op = "VCC" || op = "ONE")
      | _ -> (
          let arity = List.length args in
          match Sttc_logic.Gate_fn.of_bench_name op ~arity with
          | Some fn -> Netlist.Builder.add_gate b lhs fn args
          | None ->
              let known_with_other_arity =
                List.exists
                  (fun k ->
                    k <> arity
                    && Sttc_logic.Gate_fn.of_bench_name op ~arity:k <> None)
                  [ 1; 2; 3; 4; 5; 6 ]
              in
              if known_with_other_arity then
                fail ln
                  (Printf.sprintf "gate %s cannot take %d input(s)" op arity)
              else fail ln ("unknown gate " ^ op))
    with Invalid_argument m -> fail ln m
  in
  (* Build everything assigned. *)
  Hashtbl.iter
    (fun lhs (ln, op, _, _) -> if op <> "DFF" then ignore (node_of ln lhs))
    assigns;
  (* Wire DFF inputs. *)
  Hashtbl.iter
    (fun lhs (ln, op, _, args) ->
      if op = "DFF" then
        match args with
        | [ d ] ->
            let ff = Hashtbl.find ids lhs in
            Netlist.Builder.set_dff_input b ff (node_of ln d)
        | _ -> fail ln "DFF takes one argument")
    assigns;
  (* Outputs. *)
  List.iter
    (fun (ln, a) -> Netlist.Builder.add_output b a (node_of ln a))
    (List.rev !outs);
  try Netlist.Builder.finalize b
  with Invalid_argument m -> fail 0 m

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  let design_name = Filename.remove_extension (Filename.basename path) in
  parse_string ~design_name text

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Netlist.design_name t));
  List.iter
    (fun id ->
      Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Netlist.name t id)))
    (Netlist.pis t);
  Array.iter
    (fun (name, _) -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" name))
    (Netlist.outputs t);
  (* Emit an alias assignment when an output name differs from its driver
     node: OUTPUT(z) with driver n -> z = BUFF(n). *)
  let aliases =
    Array.to_list (Netlist.outputs t)
    |> List.filter (fun (name, id) -> name <> Netlist.name t id)
  in
  Netlist.iter
    (fun id n ->
      let args () =
        Netlist.fanins t id |> Array.to_list
        |> List.map (Netlist.name t)
        |> String.concat ", "
      in
      match n.Netlist.kind with
      | Netlist.Pi -> ()
      | Netlist.Const v ->
          Buffer.add_string buf
            (Printf.sprintf "%s = %s()\n" n.Netlist.name
               (if v then "VCC" else "GND"))
      | Netlist.Gate fn ->
          Buffer.add_string buf
            (Printf.sprintf "%s = %s(%s)\n" n.Netlist.name
               (Sttc_logic.Gate_fn.name fn) (args ()))
      | Netlist.Lut { config = None; _ } ->
          Buffer.add_string buf
            (Printf.sprintf "%s = LUT(%s)\n" n.Netlist.name (args ()))
      | Netlist.Lut { config = Some c; _ } ->
          Buffer.add_string buf
            (Printf.sprintf "%s = LUT \"%s\"(%s)\n" n.Netlist.name
               (Sttc_logic.Truth.to_string c) (args ()))
      | Netlist.Dff ->
          Buffer.add_string buf
            (Printf.sprintf "%s = DFF(%s)\n" n.Netlist.name (args ())))
    t;
  List.iter
    (fun (name, id) ->
      Buffer.add_string buf
        (Printf.sprintf "%s = BUFF(%s)\n" name (Netlist.name t id)))
    aliases;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
