(** Synthetic sequential benchmark generator.

    Produces circuits with controlled structural statistics — gate count,
    flip-flop count, I/O counts, combinational depth, fan-in mix — which is
    what the paper's experiments actually exercise (the selection
    algorithms never look at the Boolean functions, only at structure).
    See DESIGN.md §2 for why this substitutes for the genuine ISCAS'89
    netlists.

    Construction is levelized: gates are placed on [levels] combinational
    levels; a gate's first fanin comes from the previous level (pinning its
    level) and the rest from any earlier level, with primary inputs and
    flip-flop outputs forming level 0.  Flip-flop D-inputs and primary
    outputs are wired to late-level signals, preferring gates that would
    otherwise be dangling. *)

type spec = {
  design_name : string;
  n_pi : int;  (** >= 1 *)
  n_po : int;  (** >= 1 *)
  n_ff : int;  (** >= 0 *)
  n_gates : int;  (** combinational gates, >= 1 *)
  levels : int;  (** target combinational depth, >= 1 *)
}

val default_spec : spec
(** A small smoke-test circuit (8 PI, 8 PO, 6 FF, 60 gates, 6 levels). *)

val generate : seed:int -> spec -> Netlist.t
(** Deterministic in [seed] and [spec].  Raises [Invalid_argument] on
    nonsensical specs. *)

val random_combinational :
  seed:int -> n_pi:int -> n_gates:int -> n_po:int -> Netlist.t
(** Purely combinational variant (no flip-flops), used heavily by unit and
    property tests. *)

(** {1 Parameterized scale families}

    Structural profiles scaling from 10^3 to 10^6 gates, used by the
    [bench -- scale] sweep and the CI scale smoke gate. *)

type profile =
  | Slike  (** ISCAS'89-like interface/state ratios, depth ~ 2 log2 n *)
  | Wide  (** shallow datapath: few levels, huge level width *)
  | Deep  (** long combinational chains: hundreds of levels *)
  | Fanout_heavy
      (** [Slike] structure plus hub nets: ~30% of non-pinning fanins draw
          from a small pool of level-0 signals, producing the high-fanout
          nets (resets, enables) that stress incremental cone sizes *)

val profile_name : profile -> string
(** "slike" / "wide" / "deep" / "fanout". *)

val profile_of_string : string -> (profile, string) result
(** Inverse of {!profile_name}; also accepts "s-like" and "fanout-heavy". *)

val all_profiles : profile list

val family_spec : ?profile:profile -> gates:int -> unit -> spec
(** The concrete spec of a family member (default profile [Slike]).
    Raises [Invalid_argument] below 8 gates. *)

val generate_family : seed:int -> ?profile:profile -> gates:int -> unit -> Netlist.t
(** [generate] on {!family_spec} (plus the hub-bias wiring for
    [Fanout_heavy]).  Deterministic in [seed], [profile] and [gates];
    validated (builder invariants + acyclicity) up to 10^6 gates. *)
