(** Synthetic sequential benchmark generator.

    Produces circuits with controlled structural statistics — gate count,
    flip-flop count, I/O counts, combinational depth, fan-in mix — which is
    what the paper's experiments actually exercise (the selection
    algorithms never look at the Boolean functions, only at structure).
    See DESIGN.md §2 for why this substitutes for the genuine ISCAS'89
    netlists.

    Construction is levelized: gates are placed on [levels] combinational
    levels; a gate's first fanin comes from the previous level (pinning its
    level) and the rest from any earlier level, with primary inputs and
    flip-flop outputs forming level 0.  Flip-flop D-inputs and primary
    outputs are wired to late-level signals, preferring gates that would
    otherwise be dangling. *)

type spec = {
  design_name : string;
  n_pi : int;  (** >= 1 *)
  n_po : int;  (** >= 1 *)
  n_ff : int;  (** >= 0 *)
  n_gates : int;  (** combinational gates, >= 1 *)
  levels : int;  (** target combinational depth, >= 1 *)
}

val default_spec : spec
(** A small smoke-test circuit (8 PI, 8 PO, 6 FF, 60 gates, 6 levels). *)

val generate : seed:int -> spec -> Netlist.t
(** Deterministic in [seed] and [spec].  Raises [Invalid_argument] on
    nonsensical specs. *)

val random_combinational :
  seed:int -> n_pi:int -> n_gates:int -> n_po:int -> Netlist.t
(** Purely combinational variant (no flip-flops), used heavily by unit and
    property tests. *)
