module Gate_fn = Sttc_logic.Gate_fn

type t = {
  nodes : int;
  pis : int;
  pos : int;
  dffs : int;
  gates : int;
  luts : int;
  depth : int;
  gate_mix : (string * int) list;
  fanin_histogram : (int * int) list;
  fanout_histogram : (int * int) list;
  avg_fanin : float;
  avg_fanout : float;
}

let compute nl =
  let mix = Hashtbl.create 16 in
  let fanin_h = Hashtbl.create 8 in
  let total_fanin = ref 0 and comb = ref 0 in
  Netlist.iter
    (fun _id node ->
      match node.Netlist.kind with
      | Netlist.Gate fn ->
          incr comb;
          total_fanin := !total_fanin + Array.length node.Netlist.fanins;
          let key = Gate_fn.name fn in
          Hashtbl.replace mix key (1 + Option.value ~default:0 (Hashtbl.find_opt mix key));
          let a = Array.length node.Netlist.fanins in
          Hashtbl.replace fanin_h a
            (1 + Option.value ~default:0 (Hashtbl.find_opt fanin_h a))
      | Netlist.Lut { arity; _ } ->
          incr comb;
          total_fanin := !total_fanin + arity;
          Hashtbl.replace mix "LUT"
            (1 + Option.value ~default:0 (Hashtbl.find_opt mix "LUT"));
          Hashtbl.replace fanin_h arity
            (1 + Option.value ~default:0 (Hashtbl.find_opt fanin_h arity))
      | _ -> ())
    nl;
  let fanout_h = Hashtbl.create 8 in
  let total_fanout = ref 0 and drivers = ref 0 in
  Netlist.iter
    (fun id node ->
      match node.Netlist.kind with
      | Netlist.Gate _ | Netlist.Lut _ | Netlist.Pi | Netlist.Dff ->
          let d = Netlist.fanout_degree nl id in
          incr drivers;
          total_fanout := !total_fanout + d;
          let bucket = min d 4 in
          Hashtbl.replace fanout_h bucket
            (1 + Option.value ~default:0 (Hashtbl.find_opt fanout_h bucket))
      | Netlist.Const _ -> ())
    nl;
  let sorted_desc tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  let sorted_asc tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  {
    nodes = Netlist.node_count nl;
    pis = List.length (Netlist.pis nl);
    pos = Array.length (Netlist.outputs nl);
    dffs = List.length (Netlist.dffs nl);
    gates = Netlist.gate_count nl;
    luts = List.length (Netlist.luts nl);
    depth = Query.depth nl;
    gate_mix = sorted_desc mix;
    fanin_histogram = sorted_asc fanin_h;
    fanout_histogram = sorted_asc fanout_h;
    avg_fanin =
      (if !comb = 0 then 0. else float_of_int !total_fanin /. float_of_int !comb);
    avg_fanout =
      (if !drivers = 0 then 0.
       else float_of_int !total_fanout /. float_of_int !drivers);
  }

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "nodes %d | PI %d PO %d DFF %d | combinational %d (LUT %d) | depth %d\n"
       t.nodes t.pis t.pos t.dffs t.gates t.luts t.depth);
  Buffer.add_string buf
    (Printf.sprintf "avg fan-in %.2f | avg fan-out %.2f\n" t.avg_fanin
       t.avg_fanout);
  Buffer.add_string buf "gate mix: ";
  List.iter
    (fun (name, c) -> Buffer.add_string buf (Printf.sprintf "%s:%d " name c))
    t.gate_mix;
  Buffer.add_string buf "\nfan-in histogram: ";
  List.iter
    (fun (a, c) -> Buffer.add_string buf (Printf.sprintf "%d->%d " a c))
    t.fanin_histogram;
  Buffer.add_string buf "\nfan-out histogram (4 = 4+): ";
  List.iter
    (fun (b, c) -> Buffer.add_string buf (Printf.sprintf "%d->%d " b c))
    t.fanout_histogram;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (render t)
