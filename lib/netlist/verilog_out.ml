let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let cell_models =
  {|
module STT_DFF (input wire clk, input wire d, output reg q);
  always @(posedge clk) q <= d;
endmodule

module STT_LUT #(parameter WIDTH = 2, parameter [63:0] CONFIG = 64'bx)
  (input wire [WIDTH-1:0] a, output wire y);
  assign y = CONFIG[a];
endmodule
|}

let to_string t =
  let buf = Buffer.create 8192 in
  let n = Netlist.name t in
  let wire id = sanitize (n id) in
  let pis = Netlist.pis t in
  let outs = Netlist.outputs t in
  Buffer.add_string buf
    (Printf.sprintf "// generated from %s\n" (Netlist.design_name t));
  Buffer.add_string buf
    (Printf.sprintf "module %s (\n  input wire clk,\n"
       (sanitize (Netlist.design_name t)));
  List.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "  input wire %s,\n" (wire id)))
    pis;
  let out_lines =
    Array.to_list outs
    |> List.map (fun (name, _) -> Printf.sprintf "  output wire %s" (sanitize name))
  in
  Buffer.add_string buf (String.concat ",\n" out_lines);
  Buffer.add_string buf "\n);\n\n";
  (* internal wires *)
  Netlist.iter
    (fun id nd ->
      match nd.Netlist.kind with
      | Netlist.Pi -> ()
      | _ -> Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (wire id)))
    t;
  Buffer.add_string buf "\n";
  let fanin_names id =
    Netlist.fanins t id |> Array.to_list |> List.map wire
  in
  Netlist.iter
    (fun id nd ->
      match nd.Netlist.kind with
      | Netlist.Pi -> ()
      | Netlist.Const v ->
          Buffer.add_string buf
            (Printf.sprintf "  assign %s = 1'b%d;\n" (wire id)
               (if v then 1 else 0))
      | Netlist.Dff ->
          Buffer.add_string buf
            (Printf.sprintf "  STT_DFF dff_%s (.clk(clk), .d(%s), .q(%s));\n"
               (wire id)
               (List.hd (fanin_names id))
               (wire id))
      | Netlist.Gate fn ->
          let op =
            match fn with
            | Sttc_logic.Gate_fn.Buf -> "buf"
            | Sttc_logic.Gate_fn.Not -> "not"
            | Sttc_logic.Gate_fn.And _ -> "and"
            | Sttc_logic.Gate_fn.Nand _ -> "nand"
            | Sttc_logic.Gate_fn.Or _ -> "or"
            | Sttc_logic.Gate_fn.Nor _ -> "nor"
            | Sttc_logic.Gate_fn.Xor _ -> "xor"
            | Sttc_logic.Gate_fn.Xnor _ -> "xnor"
          in
          Buffer.add_string buf
            (Printf.sprintf "  %s g_%s (%s, %s);\n" op (wire id) (wire id)
               (String.concat ", " (fanin_names id)))
      | Netlist.Lut { arity; config } ->
          let cfg =
            match config with
            | None -> "64'bx"
            | Some c ->
                Printf.sprintf "64'h%Lx" (Sttc_logic.Truth.bits c)
          in
          Buffer.add_string buf
            (Printf.sprintf
               "  STT_LUT #(.WIDTH(%d), .CONFIG(%s)) lut_%s (.a({%s}), .y(%s));\n"
               arity cfg (wire id)
               (String.concat ", " (List.rev (fanin_names id)))
               (wire id)))
    t;
  Buffer.add_string buf "\n";
  Array.iter
    (fun (name, id) ->
      if sanitize name <> wire id then
        Buffer.add_string buf
          (Printf.sprintf "  assign %s = %s;\n" (sanitize name) (wire id)))
    outs;
  Buffer.add_string buf "endmodule\n";
  Buffer.add_string buf cell_models;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
