type node_id = int

type kind =
  | Pi
  | Const of bool
  | Gate of Sttc_logic.Gate_fn.t
  | Lut of {
      arity : int;
      config : Sttc_logic.Truth.t option;
    }
  | Dff

type node = {
  name : string;
  kind : kind;
  fanins : node_id array;
}

type t = {
  design_name : string;
  nodes : node array;
  outs : (string * node_id) array;
  by_name : (string, node_id) Hashtbl.t;
  mutable fanout_cache : node_id list array option;
  mutable topo_cache : node_id array option;
}

let design_name t = t.design_name
let node_count t = Array.length t.nodes

let node t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg "Netlist.node: bad id";
  t.nodes.(id)

let kind t id = (node t id).kind
let name t id = (node t id).name
let fanins t id = (node t id).fanins
let find t n = Hashtbl.find_opt t.by_name n

let find_exn t n =
  match find t n with
  | Some id -> id
  | None -> invalid_arg ("Netlist.find_exn: no node named " ^ n)

let outputs t = t.outs

let iter f t = Array.iteri (fun id n -> f id n) t.nodes

let fold f t acc =
  let acc = ref acc in
  Array.iteri (fun id n -> acc := f id n !acc) t.nodes;
  !acc

let filter_ids p t =
  fold (fun id n acc -> if p n.kind then id :: acc else acc) t []
  |> List.rev

let pis t = filter_ids (function Pi -> true | _ -> false) t
let dffs t = filter_ids (function Dff -> true | _ -> false) t
let gates t = filter_ids (function Gate _ -> true | _ -> false) t
let luts t = filter_ids (function Lut _ -> true | _ -> false) t

let pos t =
  let seen = Hashtbl.create 16 in
  Array.fold_left
    (fun acc (_, id) ->
      if Hashtbl.mem seen id then acc
      else begin
        Hashtbl.add seen id ();
        id :: acc
      end)
    [] t.outs
  |> List.rev

let is_combinational = function
  | Gate _ | Lut _ -> true
  | Pi | Const _ | Dff -> false

let gate_count t =
  fold (fun _ n acc -> if is_combinational n.kind then acc + 1 else acc) t 0

let compute_fanouts t =
  match t.fanout_cache with
  | Some f -> f
  | None ->
      let f = Array.make (Array.length t.nodes) [] in
      Array.iteri
        (fun id n -> Array.iter (fun src -> f.(src) <- id :: f.(src)) n.fanins)
        t.nodes;
      (* restore ascending order *)
      Array.iteri (fun i l -> f.(i) <- List.rev l) f;
      t.fanout_cache <- Some f;
      f

let fanouts t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg "Netlist.fanouts: bad id";
  (compute_fanouts t).(id)

let fanout_degree t id = List.length (fanouts t id)

exception Cycle of node_id

let compute_topo t =
  match t.topo_cache with
  | Some o -> o
  | None ->
      let n = Array.length t.nodes in
      let state = Array.make n 0 in
      (* 0 unvisited, 1 on stack, 2 done *)
      let order = Sttc_util.Growable.create () in
      (* Sources first, in id order. *)
      Array.iteri
        (fun id nd ->
          if not (is_combinational nd.kind) then begin
            state.(id) <- 2;
            ignore (Sttc_util.Growable.push order id)
          end)
        t.nodes;
      (* Iterative DFS over combinational fanin edges. *)
      let visit root =
        if state.(root) = 0 then begin
          let stack = Sttc_util.Growable.create () in
          ignore (Sttc_util.Growable.push stack (root, 0));
          state.(root) <- 1;
          while not (Sttc_util.Growable.is_empty stack) do
            let id, next = Sttc_util.Growable.pop stack in
            let fi = t.nodes.(id).fanins in
            if next < Array.length fi then begin
              ignore (Sttc_util.Growable.push stack (id, next + 1));
              let src = fi.(next) in
              match state.(src) with
              | 0 ->
                  state.(src) <- 1;
                  ignore (Sttc_util.Growable.push stack (src, 0))
              | 1 -> raise (Cycle src)
              | _ -> ()
            end
            else begin
              state.(id) <- 2;
              ignore (Sttc_util.Growable.push order id)
            end
          done
        end
      in
      Array.iteri
        (fun id nd -> if is_combinational nd.kind then visit id)
        t.nodes;
      let o = Sttc_util.Growable.to_array order in
      t.topo_cache <- Some o;
      o

let topo_order t = compute_topo t

let warm t =
  ignore (compute_fanouts t);
  ignore (compute_topo t)

let stats t =
  Printf.sprintf "%s: %d nodes (%d PI, %d PO, %d DFF, %d gates, %d LUTs)"
    t.design_name (node_count t)
    (List.length (pis t))
    (Array.length t.outs)
    (List.length (dffs t))
    (List.length (gates t))
    (List.length (luts t))

module Builder = struct
  type pending = {
    p_name : string;
    p_kind : kind;
    mutable p_fanins : node_id array;
  }

  type t = {
    b_design : string;
    b_nodes : pending Sttc_util.Growable.t;
    b_names : (string, node_id) Hashtbl.t;
    mutable b_outs : (string * node_id) list; (* reversed *)
    b_out_names : (string, unit) Hashtbl.t;
  }

  let create ?(design_name = "design") () =
    {
      b_design = design_name;
      b_nodes = Sttc_util.Growable.create ();
      b_names = Hashtbl.create 64;
      b_outs = [];
      b_out_names = Hashtbl.create 16;
    }

  let node_count b = Sttc_util.Growable.length b.b_nodes

  let add_node b name kind fanins =
    if name = "" then invalid_arg "Builder: empty node name";
    if Hashtbl.mem b.b_names name then
      invalid_arg ("Builder: duplicate node name " ^ name);
    let id =
      Sttc_util.Growable.push b.b_nodes
        { p_name = name; p_kind = kind; p_fanins = fanins }
    in
    Hashtbl.add b.b_names name id;
    id

  let check_ref b id ctx =
    if id < 0 || id >= node_count b then
      invalid_arg ("Builder: undefined node reference in " ^ ctx)

  let add_pi b name = add_node b name Pi [||]
  let add_const b name v = add_node b name (Const v) [||]

  let add_gate b name fn inputs =
    Sttc_logic.Gate_fn.validate fn;
    if List.length inputs <> Sttc_logic.Gate_fn.arity fn then
      invalid_arg ("Builder.add_gate: arity mismatch at " ^ name);
    List.iter (fun i -> check_ref b i name) inputs;
    add_node b name (Gate fn) (Array.of_list inputs)

  let add_lut b name ?config inputs =
    let arity = List.length inputs in
    if arity < 1 || arity > Sttc_logic.Truth.max_arity then
      invalid_arg ("Builder.add_lut: arity out of range at " ^ name);
    (match config with
    | Some c when Sttc_logic.Truth.arity c <> arity ->
        invalid_arg ("Builder.add_lut: config arity mismatch at " ^ name)
    | _ -> ());
    List.iter (fun i -> check_ref b i name) inputs;
    add_node b name (Lut { arity; config }) (Array.of_list inputs)

  let add_dff b name d =
    check_ref b d name;
    add_node b name Dff [| d |]

  let add_dff_deferred b name = add_node b name Dff [| -1 |]

  let set_dff_input b ff d =
    check_ref b ff "set_dff_input";
    check_ref b d "set_dff_input";
    let p = Sttc_util.Growable.get b.b_nodes ff in
    (match p.p_kind with
    | Dff -> ()
    | _ -> invalid_arg "Builder.set_dff_input: not a DFF");
    p.p_fanins <- [| d |]

  let add_output b name id =
    check_ref b id ("output " ^ name);
    if Hashtbl.mem b.b_out_names name then
      invalid_arg ("Builder: duplicate output name " ^ name);
    Hashtbl.add b.b_out_names name ();
    b.b_outs <- (name, id) :: b.b_outs

  let finalize b =
    if b.b_outs = [] then invalid_arg "Builder.finalize: no outputs";
    let nodes =
      Array.map
        (fun p ->
          (match p.p_kind with
          | Dff when Array.exists (fun i -> i < 0) p.p_fanins ->
              invalid_arg ("Builder.finalize: unwired DFF " ^ p.p_name)
          | _ -> ());
          { name = p.p_name; kind = p.p_kind; fanins = p.p_fanins })
        (Sttc_util.Growable.to_array b.b_nodes)
    in
    let t =
      {
        design_name = b.b_design;
        nodes;
        outs = Array.of_list (List.rev b.b_outs);
        by_name = Hashtbl.copy b.b_names;
        fanout_cache = None;
        topo_cache = None;
      }
    in
    (* cycle check via topo computation *)
    (try ignore (compute_topo t)
     with Cycle id ->
       invalid_arg
         ("Builder.finalize: combinational cycle through " ^ t.nodes.(id).name));
    t
end

let rename t new_name = { t with design_name = new_name }

let validate_node n ~node_total ~who =
  let expect k =
    if Array.length n.fanins <> k then
      invalid_arg (who ^ ": fanin arity mismatch at " ^ n.name)
  in
  Array.iter
    (fun src ->
      if src < 0 || src >= node_total then
        invalid_arg (who ^ ": fanin out of range at " ^ n.name))
    n.fanins;
  match n.kind with
  | Pi | Const _ -> expect 0
  | Dff -> expect 1
  | Gate fn ->
      Sttc_logic.Gate_fn.validate fn;
      expect (Sttc_logic.Gate_fn.arity fn)
  | Lut { arity; config } ->
      if arity < 1 || arity > Sttc_logic.Truth.max_arity then
        invalid_arg (who ^ ": LUT arity out of range at " ^ n.name);
      expect arity;
      (match config with
      | Some c when Sttc_logic.Truth.arity c <> arity ->
          invalid_arg (who ^ ": LUT config arity mismatch at " ^ n.name)
      | _ -> ())

let with_kinds t f =
  let node_total = Array.length t.nodes in
  let nodes =
    Array.mapi
      (fun id n ->
        let kind, fanins = f id n.kind n.fanins in
        let n' = { n with kind; fanins } in
        validate_node n' ~node_total ~who:"Netlist.with_kinds";
        n')
      t.nodes
  in
  let t' =
    {
      design_name = t.design_name;
      nodes;
      outs = t.outs;
      by_name = t.by_name;
      fanout_cache = None;
      topo_cache = None;
    }
  in
  (try ignore (compute_topo t')
   with Cycle id ->
     invalid_arg
       ("Netlist.with_kinds: combinational cycle through " ^ nodes.(id).name));
  t'

let kind_delta a b =
  if Array.length a.nodes <> Array.length b.nodes then None
  else if a.outs != b.outs && a.outs <> b.outs then None
  else begin
    let changed = ref [] in
    try
      for id = Array.length a.nodes - 1 downto 0 do
        let na = a.nodes.(id) and nb = b.nodes.(id) in
        if na.fanins != nb.fanins && na.fanins <> nb.fanins then raise Exit;
        if na.name != nb.name && not (String.equal na.name nb.name) then
          raise Exit;
        if na.kind <> nb.kind then
          match (na.kind, nb.kind) with
          | (Gate _ | Lut _), (Gate _ | Lut _) -> changed := id :: !changed
          | _ -> raise Exit
      done;
      Some !changed
    with Exit -> None
  end
