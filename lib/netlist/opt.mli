(** Synthesis-lite netlist cleanup: constant folding, buffer collapsing
    and dead-logic removal.

    The paper's Figure 2 flow hands the selection stage a {e synthesized}
    netlist; this pass stands in for the final cleanup a synthesis tool
    performs, and is also useful after transforms that leave placeholders
    behind ([Transform.absorb_driver]).  All rewrites preserve the
    circuit's function (checked by the test suite via SAT equivalence). *)

val const_fold : Netlist.t -> Netlist.t
(** Propagate constants through gates and configured LUTs: a gate whose
    output is forced by constant inputs becomes a [Const]; gates with some
    constant inputs are simplified to smaller gates or buffers where the
    gate algebra allows (e.g. [AND(x, 1) -> BUF(x)], [NAND(x, 0) -> 1]).
    Node ids and names are preserved. *)

val collapse_buffers : Netlist.t -> Netlist.t
(** Re-route every reader of a [BUF] to the buffer's source, and collapse
    inverter pairs ([NOT (NOT x)] readers re-route to [x]).  The bypassed
    cells become dead and can be removed with [Transform.sweep].  Node ids
    are preserved. *)

val optimize : Netlist.t -> Netlist.t
(** [const_fold] and [collapse_buffers] to a fixpoint, then
    [Transform.sweep].  The result is functionally equivalent but
    renumbered; use it before the selection flow, not between selection
    and programming. *)

val size_reduction : before:Netlist.t -> after:Netlist.t -> float
(** Percentage of combinational nodes removed. *)
