type info = {
  name : string;
  n_pi : int;
  n_po : int;
  n_ff : int;
  n_gates : int;
  levels : int;
}

let mk name n_pi n_po n_ff n_gates levels =
  { name; n_pi; n_po; n_ff; n_gates; levels }

(* Gate counts are the paper's Table I "size" column; PI/PO/FF counts are
   the standard ISCAS'89 statistics for the corresponding circuits (the
   paper's "a" variants are treated as the standard circuits).  Depth is a
   representative combinational level count from the literature. *)
let all =
  [
    mk "s641" 35 24 19 287 20;
    mk "s820" 18 19 5 289 10;
    mk "s832" 18 19 5 379 10;
    mk "s953" 16 23 29 395 12;
    mk "s1196" 14 14 18 508 16;
    mk "s1238" 14 14 18 529 16;
    mk "s1488" 8 19 6 657 13;
    mk "s5378a" 35 49 179 2779 18;
    mk "s9234a" 36 39 211 5597 22;
    mk "s13207" 62 152 638 7951 22;
    mk "s15850a" 77 150 534 9772 26;
    mk "s38584" 38 304 1426 19253 24;
  ]

let find name = List.find_opt (fun i -> i.name = name) all

let find_exn name =
  match find name with
  | Some i -> i
  | None -> invalid_arg ("Iscas_profiles.find_exn: unknown benchmark " ^ name)

let default_seed info = 0x5717c (* "STTC" *) lxor Hashtbl.hash info.name

let build ?seed info =
  let seed = match seed with Some s -> s | None -> default_seed info in
  Generator.generate ~seed
    {
      Generator.design_name = info.name;
      n_pi = info.n_pi;
      n_po = info.n_po;
      n_ff = info.n_ff;
      n_gates = info.n_gates;
      levels = info.levels;
    }

let build_by_name ?seed name = build ?seed (find_exn name)

let names = List.map (fun i -> i.name) all
