(** Structural statistics of a netlist — the fidelity currency of the
    synthetic ISCAS'89 twins (DESIGN.md §2): the selection algorithms and
    the PPA analyses only ever read the quantities reported here, so two
    circuits that agree on them behave alike under the flow. *)

type t = {
  nodes : int;
  pis : int;
  pos : int;
  dffs : int;
  gates : int;  (** combinational gates (paper's "size", LUTs included) *)
  luts : int;
  depth : int;  (** combinational levels *)
  gate_mix : (string * int) list;  (** count per gate class, descending *)
  fanin_histogram : (int * int) list;  (** (arity, gates) ascending *)
  fanout_histogram : (int * int) list;
      (** (fanout bucket, signals); buckets 0,1,2,3,4+ encoded as 0..4 *)
  avg_fanin : float;
  avg_fanout : float;
}

val compute : Netlist.t -> t
val render : t -> string
(** Multi-line human-readable block. *)

val pp : Format.formatter -> t -> unit
