(** Structural queries over netlists: cones, levels and reachability.

    The selection algorithms reason in these terms: transitive fan-in of a
    missing gate bounds the attacker-controllable inputs [I] of Eq. (3);
    combinational levels feed the timing model; reachability between LUTs
    establishes the "dependent" property of Section IV-A.2. *)

val fanin_cone : Netlist.t -> Netlist.node_id -> Netlist.node_id list
(** Transitive fan-in through combinational nodes only, stopping at (and
    including) PIs, constants, and DFF outputs.  Includes the start node. *)

val fanout_cone : Netlist.t -> Netlist.node_id -> Netlist.node_id list
(** Transitive fan-out through combinational nodes only, stopping at (and
    including) DFF inputs and primary-output drivers.  Includes the start
    node. *)

val cone_inputs : Netlist.t -> Netlist.node_id list -> Netlist.node_id list
(** Sources (PIs, constants, DFF outputs) feeding the combinational cones
    of the given nodes — the attacker-accessible inputs [I] of Eq. (3). *)

val levels : Netlist.t -> int array
(** Combinational level per node: sources are level 0; a combinational
    node is 1 + max of its fanin levels. *)

val depth : Netlist.t -> int
(** Maximum combinational level (logic depth of the longest stage). *)

val reaches : Netlist.t -> Netlist.node_id -> Netlist.node_id -> bool
(** [reaches t a b]: is there a directed path (through any node kind,
    crossing flip-flops) from [a] to [b]? *)

val reaches_combinationally :
  Netlist.t -> Netlist.node_id -> Netlist.node_id -> bool
(** Same but without crossing {e through} flip-flops.  Reaching a flip-flop
    node as the destination means reaching its D input, which is a purely
    combinational path and therefore counts. *)

val sequential_depth_to_po : Netlist.t -> int array
(** For each node, the minimum number of flip-flops on any path from the
    node to a primary output ([D_i] of Eqs. (1) and (2): how many clock
    cycles are needed to propagate the node's value to an observation
    point).  Nodes that reach no output get [max_int]. *)

type cone_summary = {
  support : int array;
      (** distinct sources (PIs, constants, DFF outputs) in the node's
          combinational fanin cone — the attacker-controllable inputs
          [I] of Eq. (3), per node *)
  support_hash : int array;
      (** hash of the fanin-cone source {e set}: equal sets yield equal
          hashes, so it pre-filters candidate pairs for semantic
          equivalence checks *)
  obs_points : int array;
      (** number of observation points (primary outputs, flip-flop D
          inputs) the node reaches combinationally; 0 means structurally
          unobservable in this clock cycle *)
}

val cone_summary : Netlist.t -> cone_summary
(** All three per-node summaries in two bitset sweeps (one forward, one
    reverse topological pass) — computed once per analysis run and shared
    across lint rules instead of per-rule cone walks. *)

val connected_lut_pairs :
  Netlist.t -> Netlist.node_id list -> (Netlist.node_id * Netlist.node_id) list
(** Pairs [(a, b)] from the given set where [b] is combinationally
    reachable from [a] — the dependency structure the dependent-selection
    security argument relies on.  Computed by chunked-bitset sweeps in
    O(edges x |ids|/word_size); pairs are emitted source-major, both
    components in [ids] order. *)
