(** Netlist rewrites used by the gate selection-and-replacement stage.

    Replacement never changes node ids: a gate node becomes a LUT node
    with identical fanins (plus optional dummy inputs), so timing/power
    structures can be updated incrementally and selection sets remain
    valid across rewrites. *)

val replace_gate_with_lut :
  ?extra_inputs:Netlist.node_id list ->
  ?keep_function:bool ->
  Netlist.t ->
  Netlist.node_id ->
  Netlist.t
(** [replace_gate_with_lut t id] returns a copy of [t] where gate [id] is a
    LUT slot.  With [keep_function:true] (default) the LUT is configured
    with the gate's truth table extended over any [extra_inputs] (which are
    connected but logically ignored — the paper's search-space expansion
    trick); with [keep_function:false] the config is [None] (a missing
    gate).  Raises [Invalid_argument] if [id] is not a [Gate], or if the
    resulting arity exceeds [Truth.max_arity]. *)

val replace_many :
  ?keep_function:bool -> Netlist.t -> Netlist.node_id list -> Netlist.t
(** Replace each listed gate (duplicates ignored). *)

val strip_configs : Netlist.t -> Netlist.t
(** The foundry view: every LUT's config becomes [None]. *)

val program_luts :
  Netlist.t -> (Netlist.node_id * Sttc_logic.Truth.t) list -> Netlist.t
(** Install configurations.  Raises [Invalid_argument] for non-LUT ids or
    arity mismatches. *)

val map_kinds :
  (Netlist.node_id -> Netlist.kind -> Netlist.kind) -> Netlist.t -> Netlist.t
(** General node-kind rewrite preserving names and fanins; the callback
    must preserve the fanin arity contract.  The result is re-validated. *)

val absorb_driver :
  Netlist.t -> Netlist.node_id -> driver:Netlist.node_id -> Netlist.t
(** Realize a {e complex function} in one LUT (Section IV-A.3): gate [id]
    becomes a configured LUT computing [gate ∘ driver], its inputs being
    the driver's fanins followed by the gate's remaining fanins.  The
    absorbed driver must be a combinational gate whose only reader is
    [id]; it is rewired to a buffer placeholder that {!sweep} removes.
    Raises [Invalid_argument] when the driver has other fanouts, either
    node is not a CMOS gate, the driver is not a fanin of [id], or the
    merged arity exceeds [Truth.max_arity]. *)

val absorbable_driver :
  Netlist.t -> Netlist.node_id -> Netlist.node_id option
(** A fanin of the gate that {!absorb_driver} would accept, if any
    (smallest resulting arity first). *)

(** A speculative gate→LUT replacement view over a base netlist.

    Staging marks gates as replaced without copying the netlist; {!kind}
    presents the post-replacement kind (a config-free LUT slot — cell
    delay depends only on arity, so timing through this view matches the
    committed netlist exactly).  The selection loops stage a candidate
    set, evaluate it through {!Sttc_analysis.Sta.trial_delay_ps}, then
    either {!clear} (candidate rejected) or {!commit} (materialize the
    winning set once via {!replace_many}). *)
module Overlay : sig
  type t

  val create : Netlist.t -> t
  val base : t -> Netlist.t

  val stage : t -> Netlist.node_id -> unit
  (** Mark a gate as speculatively replaced (idempotent).  Raises
      [Invalid_argument] if the node is not a [Gate]. *)

  val stage_all : t -> Netlist.node_id list -> unit

  val unstage : t -> Netlist.node_id -> unit
  (** Remove one gate from the staged set (no-op when unstaged) —
      O(staged); the persistent selection sessions retract one candidate
      at a time with it. *)

  val clear : t -> unit
  (** Unstage everything — O(staged), ready for the next candidate. *)

  val staged : t -> Netlist.node_id list
  val is_staged : t -> Netlist.node_id -> bool

  val kind : t -> Netlist.node_id -> Netlist.kind
  (** The node's kind under the overlay: a config-free LUT for staged
      gates, the base kind otherwise. *)

  val commit : ?keep_function:bool -> t -> Netlist.t
  (** Materialize the staged set ({!replace_many} semantics; the staged
      view's [config = None] is the [keep_function:false] case — the
      default [keep_function:true] installs the gates' truth tables). *)
end

val sweep : Netlist.t -> Netlist.t * int array
(** Remove nodes that reach no primary output and no flip-flop (dead
    logic, e.g. placeholders left by {!absorb_driver}).  Returns the new
    netlist and a map from old to new node ids ([-1] for removed nodes).
    This is the only transform that renumbers nodes. *)
