(** Scan-chain insertion and locking.

    The attack-cost asymmetry the paper builds on (Section IV-A, the
    [11]/[18]/[6] discussion) is really about {e scan access}: with an
    open scan chain the attacker loads and reads the flip-flops at will,
    making every missing gate's neighbourhood combinationally reachable;
    with the chain disabled or locked, only multi-cycle sequences through
    the primary inputs remain.

    [insert] performs standard mux-D scan stitching: every flip-flop's D
    input is replaced by a 2:1 mux between functional data and the
    previous element of the chain, controlled by a new [scan_en] primary
    input; the chain head is a new [scan_in] input and the tail drives a
    new [scan_out] output.  In functional mode ([scan_en] = 0) the circuit
    is cycle-exact to the original. *)

type chain = {
  netlist : Netlist.t;
  scan_en : Netlist.node_id;
  scan_in : Netlist.node_id;
  order : Netlist.node_id list;
      (** flip-flops from chain head (nearest [scan_in]) to tail, as node
          ids of the {e scanned} netlist *)
}

val insert : Netlist.t -> chain
(** Raises [Invalid_argument] when the netlist has no flip-flops, or
    already uses the reserved names ([scan_en], [scan_in], [scan_out]). *)

val shift_cycles : chain -> int
(** Flip-flop count: cycles to load or unload the full state. *)

val shift_sequence : chain -> bool array -> bool array list
(** The primary-input vectors (in the scanned netlist's PI order, one per
    clock cycle) that shift the given state (in [order]) into the chain:
    [scan_en] high, [scan_in] carrying the state bits tail-first,
    functional inputs held low.  Raises [Invalid_argument] on a state
    length mismatch. *)

val lock : Netlist.t -> Netlist.t
(** The shipped configuration: force [scan_en] to constant 0 (the fuse is
    blown / the secure-scan key is absent), turning every scan mux into
    plain functional mode.  After [Opt.optimize] the chain logic
    disappears entirely.  Raises [Invalid_argument] when the netlist has
    no [scan_en] input. *)
