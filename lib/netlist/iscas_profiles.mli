(** Structural twins of the ISCAS'89 benchmarks used in the paper.

    Gate counts follow the paper's Table I "size" column (which excludes
    flip-flops); flip-flop and I/O counts follow the standard published
    ISCAS'89 statistics.  The circuits themselves are generated
    deterministically by {!Generator}; see DESIGN.md §2 for the
    substitution rationale. *)

type info = {
  name : string;
  n_pi : int;
  n_po : int;
  n_ff : int;
  n_gates : int;  (** paper Table I "size" *)
  levels : int;  (** representative combinational depth *)
}

val all : info list
(** The twelve benchmarks of Table I, smallest first:
    s641, s820, s832, s953, s1196, s1238, s1488, s5378a, s9234a, s13207,
    s15850a, s38584. *)

val find : string -> info option
val find_exn : string -> info

val build : ?seed:int -> info -> Netlist.t
(** Instantiate the structural twin.  The default seed is derived from the
    benchmark name, so every run of the experiment suite sees the same
    circuits. *)

val build_by_name : ?seed:int -> string -> Netlist.t
(** Raises [Invalid_argument] for unknown names. *)

val names : string list
