module Gate_fn = Sttc_logic.Gate_fn
module Truth = Sttc_logic.Truth

(* ---------- constant folding ---------- *)

(* Partially evaluate a gate whose inputs may be known constants.  Returns
   the simplified kind and the fanins it still needs. *)
let simplify_gate fn fanins const_of =
  let inputs = Array.to_list fanins in
  let known, unknown =
    List.partition (fun src -> const_of src <> None) inputs
  in
  let kvalues = List.map (fun src -> Option.get (const_of src)) known in
  match fn with
  | Gate_fn.Buf -> (
      match const_of fanins.(0) with
      | Some v -> `Const v
      | None -> `Keep)
  | Gate_fn.Not -> (
      match const_of fanins.(0) with
      | Some v -> `Const (not v)
      | None -> `Keep)
  | Gate_fn.And _ | Gate_fn.Nand _ ->
      let neg = match fn with Gate_fn.Nand _ -> true | _ -> false in
      if List.exists not kvalues then `Const neg
      else if unknown = [] then `Const (not neg)
      else if known = [] then `Keep
      else (
        (* remaining ANDs of the unknown inputs *)
        match unknown with
        | [ x ] -> if neg then `Gate (Gate_fn.Not, [| x |]) else `Gate (Gate_fn.Buf, [| x |])
        | xs ->
            let arr = Array.of_list xs in
            `Gate
              ( (if neg then Gate_fn.Nand (Array.length arr)
                 else Gate_fn.And (Array.length arr)),
                arr ))
  | Gate_fn.Or _ | Gate_fn.Nor _ ->
      let neg = match fn with Gate_fn.Nor _ -> true | _ -> false in
      if List.exists Fun.id kvalues then `Const (not neg)
      else if unknown = [] then `Const neg
      else if known = [] then `Keep
      else (
        match unknown with
        | [ x ] -> if neg then `Gate (Gate_fn.Not, [| x |]) else `Gate (Gate_fn.Buf, [| x |])
        | xs ->
            let arr = Array.of_list xs in
            `Gate
              ( (if neg then Gate_fn.Nor (Array.length arr)
                 else Gate_fn.Or (Array.length arr)),
                arr ))
  | Gate_fn.Xor _ | Gate_fn.Xnor _ ->
      let neg = match fn with Gate_fn.Xnor _ -> true | _ -> false in
      let parity = List.fold_left (fun acc v -> acc <> v) neg kvalues in
      if unknown = [] then `Const parity
      else if known = [] then `Keep
      else (
        match unknown with
        | [ x ] ->
            if parity then `Gate (Gate_fn.Not, [| x |])
            else `Gate (Gate_fn.Buf, [| x |])
        | xs ->
            let arr = Array.of_list xs in
            `Gate
              ( (if parity then Gate_fn.Xnor (Array.length arr)
                 else Gate_fn.Xor (Array.length arr)),
                arr ))

let const_fold t =
  (* One topological pass suffices per call because [with_kinds] keeps
     ids: values computed for earlier nodes feed later ones. *)
  let n = Netlist.node_count t in
  let value = Array.make n None in
  Netlist.iter
    (fun id node ->
      match node.Netlist.kind with
      | Netlist.Const v -> value.(id) <- Some v
      | _ -> ())
    t;
  let changes = Hashtbl.create 32 in
  Array.iter
    (fun id ->
      let node = Netlist.node t id in
      let const_of src = value.(src) in
      match node.Netlist.kind with
      | Netlist.Gate fn -> (
          match simplify_gate fn node.Netlist.fanins const_of with
          | `Keep -> ()
          | `Const v ->
              value.(id) <- Some v;
              Hashtbl.replace changes id (Netlist.Const v, [||])
          | `Gate (fn', fanins') ->
              Hashtbl.replace changes id (Netlist.Gate fn', fanins'))
      | Netlist.Lut { config = Some c; arity } ->
          (* a LUT with all-constant inputs folds to a constant *)
          let all_known =
            Array.for_all (fun src -> value.(src) <> None) node.Netlist.fanins
          in
          if all_known then begin
            let inputs =
              Array.map (fun src -> Option.get value.(src)) node.Netlist.fanins
            in
            let v = Truth.eval c inputs in
            value.(id) <- Some v;
            Hashtbl.replace changes id (Netlist.Const v, [||])
          end
          else ignore arity
      | _ -> ())
    (Netlist.topo_order t);
  if Hashtbl.length changes = 0 then t
  else
    Netlist.with_kinds t (fun id kind fanins ->
        match Hashtbl.find_opt changes id with
        | Some (kind', fanins') -> (kind', fanins')
        | None -> (kind, fanins))

(* ---------- buffer / double-inverter collapsing ---------- *)

let collapse_buffers t =
  let n = Netlist.node_count t in
  (* resolve: the signal each node's output is equivalent to *)
  let alias = Array.init n Fun.id in
  Array.iter
    (fun id ->
      let node = Netlist.node t id in
      match node.Netlist.kind with
      | Netlist.Gate Gate_fn.Buf -> alias.(id) <- alias.(node.Netlist.fanins.(0))
      | Netlist.Gate Gate_fn.Not -> (
          (* NOT (NOT x) -> x *)
          let src = node.Netlist.fanins.(0) in
          match Netlist.kind t src with
          | Netlist.Gate Gate_fn.Not ->
              alias.(id) <- alias.((Netlist.fanins t src).(0))
          | _ -> ())
      | _ -> ())
    (Netlist.topo_order t);
  let changed =
    Netlist.fold
      (fun _id node acc ->
        acc
        || (Netlist.is_combinational node.Netlist.kind || node.Netlist.kind = Netlist.Dff)
           && Array.exists (fun src -> alias.(src) <> src) node.Netlist.fanins)
      t false
  in
  if not changed then t
  else
    Netlist.with_kinds t (fun _id kind fanins ->
        (kind, Array.map (fun src -> alias.(src)) fanins))

let optimize t =
  let rec fix t k =
    if k = 0 then t
    else
      let t' = collapse_buffers (const_fold t) in
      if t' == t then t else fix t' (k - 1)
  in
  let t = fix t 8 in
  fst (Transform.sweep t)

let size_reduction ~before ~after =
  let b = float_of_int (Netlist.gate_count before) in
  let a = float_of_int (Netlist.gate_count after) in
  if b = 0. then 0. else (b -. a) /. b *. 100.
