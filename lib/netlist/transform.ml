let lut_config_of_gate fn ~total_arity =
  (* Truth table of [fn] over [total_arity] inputs where inputs beyond the
     gate's own arity are connected but ignored. *)
  let garity = Sttc_logic.Gate_fn.arity fn in
  Sttc_logic.Truth.create ~arity:total_arity (fun inputs ->
      Sttc_logic.Gate_fn.eval fn (Array.sub inputs 0 garity))

let replace_gate_with_lut ?(extra_inputs = []) ?(keep_function = true) t id =
  (match Netlist.kind t id with
  | Netlist.Gate _ -> ()
  | _ -> invalid_arg "Transform.replace_gate_with_lut: not a gate");
  List.iter
    (fun e ->
      if e < 0 || e >= Netlist.node_count t then
        invalid_arg "Transform.replace_gate_with_lut: bad extra input";
      (* an extra input closes a combinational loop only when it is itself
         a combinational signal fed (transitively) by the LUT; flip-flop
         outputs, PIs and constants are always safe sources *)
      if
        Netlist.is_combinational (Netlist.kind t e)
        && Query.reaches_combinationally t id e
      then
        invalid_arg
          "Transform.replace_gate_with_lut: extra input would create a cycle")
    extra_inputs;
  Netlist.with_kinds t (fun nid kind fanins ->
      if nid <> id then (kind, fanins)
      else
        match kind with
        | Netlist.Gate fn ->
            let fanins' = Array.append fanins (Array.of_list extra_inputs) in
            let arity = Array.length fanins' in
            if arity > Sttc_logic.Truth.max_arity then
              invalid_arg "Transform.replace_gate_with_lut: arity too large";
            let config =
              if keep_function then
                Some (lut_config_of_gate fn ~total_arity:arity)
              else None
            in
            (Netlist.Lut { arity; config }, fanins')
        | _ -> assert false)

let replace_many ?(keep_function = true) t ids =
  let module Int_set = Set.Make (Int) in
  let set = Int_set.of_list ids in
  Int_set.iter
    (fun id ->
      match Netlist.kind t id with
      | Netlist.Gate _ -> ()
      | _ -> invalid_arg "Transform.replace_many: not a gate")
    set;
  Netlist.with_kinds t (fun nid kind fanins ->
      if not (Int_set.mem nid set) then (kind, fanins)
      else
        match kind with
        | Netlist.Gate fn ->
            let arity = Array.length fanins in
            let config =
              if keep_function then
                Some (lut_config_of_gate fn ~total_arity:arity)
              else None
            in
            (Netlist.Lut { arity; config }, fanins)
        | _ -> assert false)

let strip_configs t =
  Netlist.with_kinds t (fun _ kind fanins ->
      match kind with
      | Netlist.Lut { arity; _ } ->
          (Netlist.Lut { arity; config = None }, fanins)
      | _ -> (kind, fanins))

let program_luts t configs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (id, c) ->
      (match Netlist.kind t id with
      | Netlist.Lut { arity; _ } ->
          if Sttc_logic.Truth.arity c <> arity then
            invalid_arg "Transform.program_luts: config arity mismatch"
      | _ -> invalid_arg "Transform.program_luts: not a LUT");
      Hashtbl.replace tbl id c)
    configs;
  Netlist.with_kinds t (fun id kind fanins ->
      match (kind, Hashtbl.find_opt tbl id) with
      | Netlist.Lut { arity; _ }, Some c ->
          (Netlist.Lut { arity; config = Some c }, fanins)
      | _ -> (kind, fanins))

let map_kinds f t = Netlist.with_kinds t (fun id kind fanins -> (f id kind, fanins))

let gate_fn_of t id =
  match Netlist.kind t id with
  | Netlist.Gate fn -> fn
  | _ -> invalid_arg "Transform.absorb_driver: not a gate"

let absorb_driver t id ~driver =
  let gate_fn = gate_fn_of t id in
  let driver_fn = gate_fn_of t driver in
  (match Netlist.fanouts t driver with
  | [ single ] when single = id -> ()
  | _ -> invalid_arg "Transform.absorb_driver: driver has other fanouts");
  let gate_fanins = Netlist.fanins t id in
  let driver_pos =
    let rec find k =
      if k >= Array.length gate_fanins then
        invalid_arg "Transform.absorb_driver: driver is not a fanin"
      else if gate_fanins.(k) = driver then k
      else find (k + 1)
    in
    find 0
  in
  let driver_fanins = Netlist.fanins t driver in
  let others =
    Array.of_list
      (List.filteri
         (fun k _ -> k <> driver_pos)
         (Array.to_list gate_fanins))
  in
  let merged = Array.append driver_fanins others in
  let arity = Array.length merged in
  if arity > Sttc_logic.Truth.max_arity then
    invalid_arg "Transform.absorb_driver: merged arity too large";
  let d_arity = Array.length driver_fanins in
  (* composed function over [driver fanins; other gate fanins] *)
  let config =
    Sttc_logic.Truth.create ~arity (fun inputs ->
        let d_out =
          Sttc_logic.Gate_fn.eval driver_fn (Array.sub inputs 0 d_arity)
        in
        let gate_inputs =
          Array.init (Array.length gate_fanins) (fun k ->
              if k = driver_pos then d_out
              else if k < driver_pos then inputs.(d_arity + k)
              else inputs.(d_arity + k - 1))
        in
        Sttc_logic.Gate_fn.eval gate_fn gate_inputs)
  in
  Netlist.with_kinds t (fun nid kind fanins ->
      if nid = id then (Netlist.Lut { arity; config = Some config }, merged)
      else if nid = driver then
        (* dead placeholder, removed by [sweep] *)
        (Netlist.Gate Sttc_logic.Gate_fn.Buf, [| fanins.(0) |])
      else (kind, fanins))

let absorbable_driver t id =
  match Netlist.kind t id with
  | Netlist.Gate gate_fn ->
      let candidates =
        Array.to_list (Netlist.fanins t id)
        |> List.filter_map (fun src ->
               match (Netlist.kind t src, Netlist.fanouts t src) with
               | Netlist.Gate src_fn, [ single ] when single = id ->
                   let merged_arity =
                     Sttc_logic.Gate_fn.arity src_fn
                     + Sttc_logic.Gate_fn.arity gate_fn - 1
                   in
                   if merged_arity <= Sttc_logic.Truth.max_arity then
                     Some (merged_arity, src)
                   else None
               | _ -> None)
      in
      (match List.sort compare candidates with
      | (_, src) :: _ -> Some src
      | [] -> None)
  | _ -> None

module Overlay = struct
  type t = {
    base : Netlist.t;
    staged : bool array;
    mutable staged_ids : Netlist.node_id list;
  }

  let create base =
    { base; staged = Array.make (Netlist.node_count base) false; staged_ids = [] }

  let base t = t.base

  let clear t =
    List.iter (fun id -> t.staged.(id) <- false) t.staged_ids;
    t.staged_ids <- []

  let stage t id =
    if id < 0 || id >= Array.length t.staged then
      invalid_arg "Transform.Overlay.stage: bad id";
    (match Netlist.kind t.base id with
    | Netlist.Gate _ -> ()
    | _ -> invalid_arg "Transform.Overlay.stage: not a gate");
    if not t.staged.(id) then begin
      t.staged.(id) <- true;
      t.staged_ids <- id :: t.staged_ids
    end

  let stage_all t ids = List.iter (stage t) ids

  let unstage t id =
    if id < 0 || id >= Array.length t.staged then
      invalid_arg "Transform.Overlay.unstage: bad id";
    if t.staged.(id) then begin
      t.staged.(id) <- false;
      t.staged_ids <- List.filter (fun i -> i <> id) t.staged_ids
    end

  let staged t = t.staged_ids
  let is_staged t id = t.staged.(id)

  let kind t id =
    if t.staged.(id) then
      Netlist.Lut { arity = Array.length (Netlist.fanins t.base id); config = None }
    else Netlist.kind t.base id

  let commit ?keep_function t = replace_many ?keep_function t.base t.staged_ids
end

let sweep t =
  (* A node is live when a primary output or a flip-flop (or one of their
     transitive fanins) reads it. *)
  let n = Netlist.node_count t in
  let live = Array.make n false in
  let rec mark id =
    if not live.(id) then begin
      live.(id) <- true;
      Array.iter mark (Netlist.fanins t id)
    end
  in
  List.iter mark (Netlist.pos t);
  Netlist.iter
    (fun id node ->
      match node.Netlist.kind with Netlist.Dff -> mark id | _ -> ())
    t;
  (* keep primary inputs even when unread: they are part of the interface *)
  List.iter (fun id -> live.(id) <- true) (Netlist.pis t);
  let map = Array.make n (-1) in
  let b = Netlist.Builder.create ~design_name:(Netlist.design_name t) () in
  (* pass 1: declare sources and defer flip-flops *)
  Netlist.iter
    (fun id node ->
      if live.(id) then
        match node.Netlist.kind with
        | Netlist.Pi -> map.(id) <- Netlist.Builder.add_pi b node.Netlist.name
        | Netlist.Const v ->
            map.(id) <- Netlist.Builder.add_const b node.Netlist.name v
        | Netlist.Dff ->
            map.(id) <- Netlist.Builder.add_dff_deferred b node.Netlist.name
        | Netlist.Gate _ | Netlist.Lut _ -> ())
    t;
  (* pass 2: combinational nodes in topological order *)
  Array.iter
    (fun id ->
      let node = Netlist.node t id in
      if live.(id) then
        match node.Netlist.kind with
        | Netlist.Gate fn ->
            map.(id) <-
              Netlist.Builder.add_gate b node.Netlist.name fn
                (Array.to_list (Array.map (fun s -> map.(s)) node.Netlist.fanins))
        | Netlist.Lut { config; _ } ->
            map.(id) <-
              Netlist.Builder.add_lut b node.Netlist.name ?config
                (Array.to_list (Array.map (fun s -> map.(s)) node.Netlist.fanins))
        | Netlist.Pi | Netlist.Const _ | Netlist.Dff -> ())
    (Netlist.topo_order t);
  (* pass 3: wire flip-flops and outputs *)
  Netlist.iter
    (fun id node ->
      if live.(id) then
        match node.Netlist.kind with
        | Netlist.Dff ->
            Netlist.Builder.set_dff_input b map.(id) map.((Netlist.fanins t id).(0))
        | _ -> ())
    t;
  Array.iter
    (fun (name, id) -> Netlist.Builder.add_output b name map.(id))
    (Netlist.outputs t);
  (Netlist.Builder.finalize b, map)
