let fanin_cone t start =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      acc := id :: !acc;
      if Netlist.is_combinational (Netlist.kind t id) then
        Array.iter go (Netlist.fanins t id)
    end
  in
  go start;
  List.rev !acc

let fanout_cone t start =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      acc := id :: !acc;
      (* stop expanding past sequential elements *)
      List.iter
        (fun out ->
          match Netlist.kind t out with
          | Netlist.Dff -> ()
          | _ -> go out)
        (Netlist.fanouts t id)
    end
  in
  go start;
  List.rev !acc

let cone_inputs t nodes =
  let seen = Hashtbl.create 64 in
  let inputs = Hashtbl.create 16 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      if Netlist.is_combinational (Netlist.kind t id) then
        Array.iter go (Netlist.fanins t id)
      else Hashtbl.replace inputs id ()
    end
  in
  List.iter
    (fun id ->
      (* start from the fanins so a source passed directly is not its own
         input *)
      if Netlist.is_combinational (Netlist.kind t id) then
        Array.iter go (Netlist.fanins t id)
      else Hashtbl.replace inputs id ())
    nodes;
  Hashtbl.fold (fun id () acc -> id :: acc) inputs []
  |> List.sort Int.compare

let levels t =
  let order = Netlist.topo_order t in
  let lv = Array.make (Netlist.node_count t) 0 in
  Array.iter
    (fun id ->
      if Netlist.is_combinational (Netlist.kind t id) then begin
        let m = ref 0 in
        Array.iter (fun src -> m := max !m lv.(src)) (Netlist.fanins t id);
        lv.(id) <- !m + 1
      end)
    order;
  lv

let depth t = Array.fold_left max 0 (levels t)

let bfs_reaches t ~cross_dff a b =
  if a = b then true
  else begin
    let seen = Array.make (Netlist.node_count t) false in
    let queue = Queue.create () in
    Queue.push a queue;
    seen.(a) <- true;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      List.iter
        (fun out ->
          if not seen.(out) then begin
            let is_dff =
              match Netlist.kind t out with Netlist.Dff -> true | _ -> false
            in
            if out = b then found := true
            else if cross_dff || not is_dff then begin
              seen.(out) <- true;
              Queue.push out queue
            end
          end)
        (Netlist.fanouts t id)
    done;
    !found
  end

let reaches t a b = bfs_reaches t ~cross_dff:true a b
let reaches_combinationally t a b = bfs_reaches t ~cross_dff:false a b

let sequential_depth_to_po t =
  (* Reverse BFS in the cost domain: cost of traversing into a DFF is 1,
     other edges 0.  0/1 BFS with a deque. *)
  let n = Netlist.node_count t in
  let dist = Array.make n max_int in
  let deque = ref [] and back = ref [] in
  let push_front x = deque := x :: !deque in
  let push_back x = back := x :: !back in
  let pop () =
    match !deque with
    | x :: rest ->
        deque := rest;
        Some x
    | [] -> (
        match List.rev !back with
        | [] -> None
        | x :: rest ->
            deque := rest;
            back := [];
            Some x)
  in
  List.iter
    (fun id ->
      if dist.(id) <> 0 then begin
        dist.(id) <- 0;
        push_back id
      end)
    (Netlist.pos t);
  let rec drain () =
    match pop () with
    | None -> ()
    | Some id ->
        let d = dist.(id) in
        (* relax fanin edges: moving from node [id] to its fanin [src].
           Crossing INTO a DFF from its fanout side means the fanin path
           passes through that DFF: the cost is on the DFF node itself. *)
        let cost =
          match Netlist.kind t id with Netlist.Dff -> 1 | _ -> 0
        in
        Array.iter
          (fun src ->
            let nd = d + cost in
            if nd < dist.(src) then begin
              dist.(src) <- nd;
              if cost = 0 then push_front src else push_back src
            end)
          (Netlist.fanins t id);
        drain ()
  in
  drain ();
  dist

(* ---------- per-node cone summaries ---------- *)

type cone_summary = {
  support : int array;
  support_hash : int array;
  obs_points : int array;
}

(* Dense bitset rows over a small universe (sources or observation
   points), one row per node.  [w] words of 63 bits each keep the row a
   flat int array — no boxing, and the union in the transfer function is
   a word-wise [lor]. *)
let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let cone_summary t =
  let n = Netlist.node_count t in
  (* -- forward pass: which sources (PIs, constants, DFF outputs) feed
        each node's combinational fanin cone -- *)
  let src_index = Array.make n (-1) in
  let nsrc = ref 0 in
  Netlist.iter
    (fun id node ->
      if not (Netlist.is_combinational node.Netlist.kind) then begin
        src_index.(id) <- !nsrc;
        incr nsrc
      end)
    t;
  let w = (!nsrc + 62) / 63 in
  let w = max w 1 in
  let rows = Array.make (n * w) 0 in
  let order = Netlist.topo_order t in
  Array.iter
    (fun id ->
      let base = id * w in
      if src_index.(id) >= 0 then begin
        let b = src_index.(id) in
        rows.(base + (b / 63)) <- 1 lsl (b mod 63)
      end
      else
        Array.iter
          (fun src ->
            let sbase = src * w in
            for k = 0 to w - 1 do
              rows.(base + k) <- rows.(base + k) lor rows.(sbase + k)
            done)
          (Netlist.fanins t id))
    order;
  let support = Array.make n 0 in
  let support_hash = Array.make n 0 in
  for id = 0 to n - 1 do
    let base = id * w in
    let count = ref 0 and h = ref 0 in
    for k = 0 to w - 1 do
      let word = rows.(base + k) in
      count := !count + popcount word;
      (* order-independent only across rows with identical word layout,
         which is all we need: equal sets produce equal hashes *)
      h := (!h * 1000003) lxor word
    done;
    support.(id) <- !count;
    support_hash.(id) <- !h
  done;
  (* -- reverse pass: which observation points (primary outputs,
        flip-flop D inputs) each node reaches combinationally -- *)
  let obs_index = Array.make n (-1) in
  let nobs = ref 0 in
  let mark id =
    if obs_index.(id) < 0 then begin
      obs_index.(id) <- !nobs;
      incr nobs
    end
  in
  List.iter mark (Netlist.pos t);
  (* a flip-flop is an observation point for its D-input cone *)
  List.iter mark (Netlist.dffs t);
  let ow = max ((!nobs + 62) / 63) 1 in
  let orows = Array.make (n * ow) 0 in
  let set_bit base b = orows.(base + (b / 63)) <- orows.(base + (b / 63)) lor (1 lsl (b mod 63)) in
  for i = Array.length order - 1 downto 0 do
    let id = order.(i) in
    let obase = id * ow in
    if obs_index.(id) >= 0 then
      (* PO drivers observe themselves; a DFF observes its own D input,
         which is accounted on the fanin side below *)
      (match Netlist.kind t id with
      | Netlist.Dff -> ()
      | _ -> set_bit obase obs_index.(id));
    List.iter
      (fun reader ->
        match Netlist.kind t reader with
        | Netlist.Dff -> set_bit obase obs_index.(reader)
        | _ ->
            let rbase = reader * ow in
            for k = 0 to ow - 1 do
              orows.(obase + k) <- orows.(obase + k) lor orows.(rbase + k)
            done)
      (Netlist.fanouts t id)
  done;
  let obs_points = Array.make n 0 in
  for id = 0 to n - 1 do
    let base = id * ow in
    let count = ref 0 in
    for k = 0 to ow - 1 do
      count := !count + popcount orows.(base + k)
    done;
    obs_points.(id) <- !count
  done;
  { support; support_hash; obs_points }

let connected_lut_pairs t ids =
  (* Chunked-bitset reachability: for each block of 63 members one
     reverse-topological sweep propagates "which block members are
     combinationally reachable from me" as a native-int mask — total
     O(edges x |ids|/63) instead of one whole-design BFS per source,
     which is what keeps Security.evaluate affordable on 10^4-LUT
     hybrids over 10^6-node netlists.  Pairs come out source-major,
     both components in [ids] order. *)
  match ids with
  | [] -> []
  | _ ->
      let n = Netlist.node_count t in
      let targets = Array.of_list ids in
      let l = Array.length targets in
      let order = Netlist.topo_order t in
      let chunk_of = Array.make n (-1) in
      let bit_of = Array.make n 0 in
      Array.iteri
        (fun i id ->
          if id < 0 || id >= n then
            invalid_arg "Query.connected_lut_pairs: bad id";
          chunk_of.(id) <- i / 63;
          bit_of.(id) <- 1 lsl (i mod 63))
        targets;
      let nchunks = (l + 62) / 63 in
      let reach = Array.make (l * nchunks) 0 in
      let down = Array.make n 0 in
      for c = 0 to nchunks - 1 do
        Array.fill down 0 n 0;
        for i = Array.length order - 1 downto 0 do
          let id = order.(i) in
          match Netlist.kind t id with
          | Netlist.Dff -> () (* reachability never crosses a flip-flop *)
          | _ ->
              let acc = ref (if chunk_of.(id) = c then bit_of.(id) else 0) in
              List.iter
                (fun m ->
                  match Netlist.kind t m with
                  | Netlist.Dff -> ()
                  | _ -> acc := !acc lor down.(m))
                (Netlist.fanouts t id);
              down.(id) <- !acc
        done;
        Array.iteri
          (fun i a ->
            let w = down.(a) in
            (* the own bit marks a zero-length path, not a pair *)
            let w = if chunk_of.(a) = c then w land lnot bit_of.(a) else w in
            reach.((i * nchunks) + c) <- w)
          targets
      done;
      let bit_index b =
        let rec go b i = if b land 1 = 1 then i else go (b lsr 1) (i + 1) in
        go b 0
      in
      let acc = ref [] in
      for i = l - 1 downto 0 do
        for c = nchunks - 1 downto 0 do
          let w = ref reach.((i * nchunks) + c) in
          let pending = ref [] in
          while !w <> 0 do
            let b = !w land - !w in
            pending := (targets.(i), targets.((c * 63) + bit_index b)) :: !pending;
            w := !w lxor b
          done;
          acc := List.rev_append !pending !acc
        done
      done;
      !acc
