(** Structural Verilog writer for hand-off to physical design, completing
    the paper's Figure 2 flow after gate selection and replacement.

    Gates map to Verilog primitives; LUT slots are emitted as instances of
    a behavioural [STT_LUTn] cell whose parameter carries the configuration
    (or is left at X for missing gates); flip-flops become a simple
    positive-edge DFF module.  The output is self-contained: the LUT and
    DFF cell models are included. *)

val to_string : Netlist.t -> string
val write_file : string -> Netlist.t -> unit
