module Gate_fn = Sttc_logic.Gate_fn

type chain = {
  netlist : Netlist.t;
  scan_en : Netlist.node_id;
  scan_in : Netlist.node_id;
  order : Netlist.node_id list;
}

let reserved = [ "scan_en"; "scan_in"; "scan_out" ]

let insert nl =
  let ffs = Netlist.dffs nl in
  if ffs = [] then invalid_arg "Scan.insert: no flip-flops";
  List.iter
    (fun name ->
      if Netlist.find nl name <> None then
        invalid_arg ("Scan.insert: name " ^ name ^ " already in use"))
    reserved;
  let b = Netlist.Builder.create ~design_name:(Netlist.design_name nl) () in
  let n = Netlist.node_count nl in
  let map = Array.make n (-1) in
  (* sources first *)
  Netlist.iter
    (fun id node ->
      match node.Netlist.kind with
      | Netlist.Pi -> map.(id) <- Netlist.Builder.add_pi b node.Netlist.name
      | Netlist.Const v ->
          map.(id) <- Netlist.Builder.add_const b node.Netlist.name v
      | Netlist.Dff ->
          map.(id) <- Netlist.Builder.add_dff_deferred b node.Netlist.name
      | _ -> ())
    nl;
  let scan_en = Netlist.Builder.add_pi b "scan_en" in
  let scan_in = Netlist.Builder.add_pi b "scan_in" in
  (* combinational logic in topological order *)
  Array.iter
    (fun id ->
      let node = Netlist.node nl id in
      match node.Netlist.kind with
      | Netlist.Gate fn ->
          map.(id) <-
            Netlist.Builder.add_gate b node.Netlist.name fn
              (Array.to_list (Array.map (fun s -> map.(s)) node.Netlist.fanins))
      | Netlist.Lut { config; _ } ->
          map.(id) <-
            Netlist.Builder.add_lut b node.Netlist.name ?config
              (Array.to_list (Array.map (fun s -> map.(s)) node.Netlist.fanins))
      | _ -> ())
    (Netlist.topo_order nl);
  (* scan muxes: shared NOT(scan_en), per-FF (d AND nse) OR (prev AND se) *)
  let nse = Netlist.Builder.add_gate b "scan_nen" Gate_fn.Not [ scan_en ] in
  let prev = ref scan_in in
  let order = ref [] in
  List.iter
    (fun ff ->
      let name = Netlist.name nl ff in
      let d = map.((Netlist.fanins nl ff).(0)) in
      let m1 =
        Netlist.Builder.add_gate b (name ^ "_sd") (Gate_fn.And 2) [ d; nse ]
      in
      let m2 =
        Netlist.Builder.add_gate b (name ^ "_ss") (Gate_fn.And 2)
          [ !prev; scan_en ]
      in
      let mux =
        Netlist.Builder.add_gate b (name ^ "_sm") (Gate_fn.Or 2) [ m1; m2 ]
      in
      Netlist.Builder.set_dff_input b map.(ff) mux;
      order := map.(ff) :: !order;
      prev := map.(ff))
    ffs;
  Array.iter
    (fun (name, id) -> Netlist.Builder.add_output b name map.(id))
    (Netlist.outputs nl);
  Netlist.Builder.add_output b "scan_out" !prev;
  let netlist = Netlist.Builder.finalize b in
  { netlist; scan_en; scan_in; order = List.rev !order }

let shift_cycles chain = List.length chain.order

let shift_sequence chain state =
  let m = List.length chain.order in
  if Array.length state <> m then
    invalid_arg "Scan.shift_sequence: state length mismatch";
  let pis = Array.of_list (Netlist.pis chain.netlist) in
  let n_pi = Array.length pis in
  let en_pos = ref (-1) and in_pos = ref (-1) in
  Array.iteri
    (fun i pi ->
      if pi = chain.scan_en then en_pos := i
      else if pi = chain.scan_in then in_pos := i)
    pis;
  assert (!en_pos >= 0 && !in_pos >= 0);
  (* the bit fed first ends at the chain tail, so feed tail-first *)
  List.init m (fun cycle ->
      let v = Array.make n_pi false in
      v.(!en_pos) <- true;
      v.(!in_pos) <- state.(m - 1 - cycle);
      v)

let lock nl =
  match Netlist.find nl "scan_en" with
  | None -> invalid_arg "Scan.lock: no scan_en input"
  | Some se ->
      Netlist.with_kinds nl (fun id kind fanins ->
          if id = se then (Netlist.Const false, [||]) else (kind, fanins))
