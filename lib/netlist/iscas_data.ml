let s27_text =
  {|# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
|}

let c17_text =
  {|# c17 (ISCAS'85)
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
|}

let s27 () = Bench_io.parse_string ~design_name:"s27" s27_text
let c17 () = Bench_io.parse_string ~design_name:"c17" c17_text

let all = [ ("s27", s27); ("c17", c17) ]
