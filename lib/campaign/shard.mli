(** Shard assignment, the on-disk campaign layout, and shard-level IO.

    A shard is the unit of supervision: run [i] of the manifest's
    canonical run list belongs to shard [i mod shards], so the
    assignment is a pure function of the manifest — supervisor, worker
    and [--resume] never have to exchange it.

    Everything a shard persists lives under [DIR/shards/] and is keyed
    by the shard index:

    - [shard-K.ckpt] — {!Sttc_util.Ckpt} container with the rows
      finished so far, rewritten atomically after every run;
    - [shard-K.done] — same container format, written once when the
      shard's full row list is complete (its presence {e is} the
      completion marker);
    - [shard-K.hb] — heartbeat counter, content ["ATTEMPT.BEATS"], bumped
      around every run (content change, not mtime, is the liveness
      signal);
    - [shard-K.metrics.json] — the worker's {!Sttc_obs.Metrics}
      snapshot, merged into the campaign-wide snapshot at aggregation;
    - [shard-K.attempt-A.log] — combined stdout/stderr of attempt [A]. *)

(** {1 Rows}

    The marshalled result of one run.  Only plain strings / ints /
    floats — no functions, no abstract library types — so a row written
    by one build loads in another and survives in the aggregated JSON
    report unchanged. *)

type metrics = {
  gates : int;  (** original gate count *)
  luts : int;  (** inserted STT LUTs *)
  config_bits : int;
  perf_pct : float;
  power_pct : float;
  area_pct : float;
  n_indep : string;  (** {!Sttc_util.Lognum.to_string} renderings *)
  n_dep : string;
  n_bf : string;
}

type outcome =
  | Done of metrics
  | Failed of string  (** captured crash / per-run timeout reason *)

type row = {
  index : int;  (** position in {!Manifest.runs} *)
  circuit : string;
  config : string;  (** config label *)
  algorithm : string;
  seed : int;
  outcome : outcome;
}

val of_result :
  Manifest.run -> (Sttc_core.Flow.result, string) result -> row
(** Flatten a {!Sttc_experiments.Runner.run_unit} outcome into a row. *)

(** {1 Assignment} *)

val assign : Manifest.t -> shard:int -> Manifest.run list
(** The runs of one shard, in canonical order.  Raises
    [Invalid_argument] when [shard] is out of range. *)

(** {1 Layout} *)

val manifest_path : string -> string
val shards_dir : string -> string
val report_json_path : string -> string
val report_text_path : string -> string
val campaign_metrics_path : string -> string
val checkpoint_path : dir:string -> int -> string
val result_path : dir:string -> int -> string
val heartbeat_path : dir:string -> int -> string
val metrics_path : dir:string -> int -> string
val log_path : dir:string -> shard:int -> attempt:int -> string

val prepare_dir : string -> unit
(** Create [DIR] and [DIR/shards/] (idempotent). *)

(** {1 Shard IO} *)

val save_checkpoint : dir:string -> shard:int -> row list -> unit

val load_checkpoint : dir:string -> shard:int -> row list
(** [[]] when missing; a rejected container (foreign magic, truncated
    or corrupt payload) also yields [[]] and bumps the
    [campaign.checkpoint_rejected] counter — the worker then recomputes
    from scratch, which is always safe. *)

val save_result : dir:string -> shard:int -> row list -> unit

val load_result :
  dir:string -> shard:int -> (row list, Sttc_util.Ckpt.error) result
(** The completion marker.  The supervisor treats [Error (`Rejected _)]
    on a worker that exited 0 as a failed attempt ([Bad_result]). *)
