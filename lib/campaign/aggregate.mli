(** Aggregation: shard artifacts -> one validated campaign report.

    The collection pass prefers a shard's result container and falls
    back to its checkpoint — a degraded shard therefore still
    contributes every run it finished before its retry budget ran out,
    and only the runs it never reached become footnoted [missing] rows.

    The report is {e deterministic by construction}: rows carry no
    wall-clock, no hostnames, no build info, and are sorted by run
    index, so a clean single-pass campaign, a SIGKILLed-then-resumed
    one, and a rerun of a finished directory all render byte-identical
    [report.json] / [report.txt] — which is exactly what the CI gate
    diffs.  (Timing lives in the separate metrics snapshot, which is
    {e not} diffed.)

    Campaign-wide metrics are the {!Sttc_obs.Metrics.merge} of every
    shard's snapshot file plus the supervisor's own registry. *)

type source =
  | Result  (** the shard's [.done] container loaded *)
  | Checkpoint  (** degraded shard: partial rows from the checkpoint *)
  | Nothing  (** degraded before its first checkpoint *)

type t = {
  manifest : Manifest.t;
  rows : Shard.row list;  (** completed runs, ascending by index *)
  missing : Manifest.run list;  (** runs with no row, ascending *)
  sources : (int * source) list;  (** by shard *)
  degraded : (int * string) list;
      (** shard -> cause, for exhausted shards (from the supervisor) *)
}

val collect :
  ?degraded:(int * string) list -> dir:string -> Manifest.t -> t

val complete : t -> bool
(** No missing runs and no degraded shards. *)

val to_json : t -> Sttc_obs.Json.t
val render_text : t -> string

val validate : Sttc_obs.Json.t -> (int, string) result
(** Structural check of a [report.json] document: required fields,
    status vocabulary, and [total = completed + missing] consistency.
    [Ok n] is the row count. *)

val write : dir:string -> t -> (unit, string) result
(** Atomically write [report.json] and [report.txt], then re-read and
    {!validate} the JSON from disk — the report the campaign claims to
    have produced is the one that parses back. *)

val merge_metrics : dir:string -> Manifest.t -> Sttc_obs.Metrics.snapshot
(** Every readable shard metrics snapshot merged with the calling
    process's current registry. *)

val write_metrics : dir:string -> Manifest.t -> unit
(** {!merge_metrics} exported to [campaign.metrics.json] (atomic). *)
