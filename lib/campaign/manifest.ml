module Json = Sttc_obs.Json
module Flow = Sttc_core.Flow

type config = { label : string; fraction : float option; harden : bool }

let default_config = { label = "default"; fraction = None; harden = false }

type t = {
  name : string;
  circuits : string list;
  algorithms : Flow.algorithm list;
  configs : config list;
  seeds : int list;
  shards : int;
  timeout_s : float option;
  retries : int;
  heartbeat_timeout_s : float;
  attempt_timeout_s : float option;
  backend : string;
}

let make ?(algorithms = Flow.default_algorithms) ?(configs = [ default_config ])
    ?(shards = 1) ?timeout_s ?(retries = 2) ?(heartbeat_timeout_s = 60.)
    ?attempt_timeout_s ?(backend = "stt") ~name ~circuits ~seeds () =
  {
    name;
    circuits;
    algorithms;
    configs;
    seeds;
    shards;
    timeout_s;
    retries;
    heartbeat_timeout_s;
    attempt_timeout_s;
    backend;
  }

let known_circuit name =
  Option.is_some (Sttc_netlist.Iscas_profiles.find name)
  || List.mem_assoc name Sttc_netlist.Iscas_data.all

let rec find_dup seen = function
  | [] -> None
  | x :: rest -> if List.mem x seen then Some x else find_dup (x :: seen) rest

let validate m =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if m.name = "" then fail "manifest: empty name"
  else if m.circuits = [] then fail "manifest: no circuits"
  else if m.algorithms = [] then fail "manifest: no algorithms"
  else if m.configs = [] then fail "manifest: no configs"
  else if m.seeds = [] then fail "manifest: no seeds"
  else if m.shards < 1 then fail "manifest: shards must be >= 1"
  else if m.retries < 0 then fail "manifest: retries must be >= 0"
  else if m.heartbeat_timeout_s <= 0. then
    fail "manifest: heartbeat_timeout_s must be > 0"
  else if Option.is_none (Sttc_backend.Backend.find m.backend) then
    fail "manifest: unknown backend %s" m.backend
  else
    match List.find_opt (fun c -> not (known_circuit c)) m.circuits with
    | Some c -> fail "manifest: unknown circuit %s" c
    | None -> (
        match find_dup [] (List.map (fun c -> c.label) m.configs) with
        | Some l -> fail "manifest: duplicate config label %s" l
        | None -> (
            match
              List.find_opt
                (fun c ->
                  match c.fraction with
                  | Some f -> not (f > 0. && f <= 1.)
                  | None -> false)
                m.configs
            with
            | Some c ->
                fail "manifest: config %s: fraction out of (0, 1]" c.label
            | None -> Ok ()))

(* {2 The run list} *)

type run = {
  index : int;
  circuit : string;
  config : config;
  algorithm : Flow.algorithm;
  seed : int;
}

let runs m =
  let acc = ref [] in
  let n = ref 0 in
  List.iter
    (fun circuit ->
      List.iter
        (fun config ->
          List.iter
            (fun algorithm ->
              List.iter
                (fun seed ->
                  acc := { index = !n; circuit; config; algorithm; seed } :: !acc;
                  incr n)
                m.seeds)
            m.algorithms)
        m.configs)
    m.circuits;
  List.rev !acc

let run_count m =
  List.length m.circuits * List.length m.configs * List.length m.algorithms
  * List.length m.seeds

(* {2 JSON codec} *)

let algorithm_to_json = Flow.algorithm_to_json
let algorithm_of_json = Flow.algorithm_of_json
let mem name j = Option.value (Json.member name j) ~default:Json.Null
let ( let* ) = Result.bind

let config_to_json c =
  Json.Obj
    (("label", Json.String c.label)
     ::
     (match c.fraction with
     | Some f -> [ ("fraction", Json.Float f) ]
     | None -> [])
    @ if c.harden then [ ("harden", Json.Bool true) ] else [])

let config_of_json ?(default_label = "default") j =
  match j with
  | Json.Obj _ ->
      let label =
        match Json.to_string_opt (mem "label" j) with
        | Some l -> l
        | None -> default_label
      in
      let fraction = Json.to_float_opt (mem "fraction" j) in
      let* harden =
        match mem "harden" j with
        | Json.Null -> Ok false
        | Json.Bool b -> Ok b
        | _ -> Error "config \"harden\" must be a boolean"
      in
      Ok { label; fraction; harden }
  | _ -> Error "config must be an object"

let seeds_of_json = function
  | Json.List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Int s :: rest -> go (s :: acc) rest
        | _ -> Error "seeds list must contain integers"
      in
      go [] items
  | Json.Obj _ as j -> (
      match
        (Json.to_int_opt (mem "base" j), Json.to_int_opt (mem "count" j))
      with
      | Some base, Some count when count >= 1 ->
          Ok (List.init count (fun i -> base + i))
      | _ -> Error "seeds object needs integer \"base\" and \"count\" >= 1")
  | _ -> Error "seeds must be a list or {\"base\", \"count\"}"

let to_json m =
  Json.Obj
    ([
       ("name", Json.String m.name);
       ("circuits", Json.List (List.map (fun c -> Json.String c) m.circuits));
       ("algorithms", Json.List (List.map algorithm_to_json m.algorithms));
       ("configs", Json.List (List.map config_to_json m.configs));
       ("seeds", Json.List (List.map (fun s -> Json.Int s) m.seeds));
       ("shards", Json.Int m.shards);
       ("retries", Json.Int m.retries);
       ("heartbeat_timeout_s", Json.Float m.heartbeat_timeout_s);
     ]
    @ (match m.timeout_s with
      | Some t -> [ ("timeout_s", Json.Float t) ]
      | None -> [])
    @ (match m.attempt_timeout_s with
      | Some t -> [ ("attempt_timeout_s", Json.Float t) ]
      | None -> [])
    @
    if m.backend = "stt" then []
    else [ ("backend", Json.String m.backend) ])

let map_result f items =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f i x with Ok y -> go (i + 1) (y :: acc) rest | Error _ as e -> e)
  in
  go 0 [] items

let of_json j =
  match j with
  | Json.Obj _ ->
      let* name =
        Option.to_result ~none:"manifest: missing \"name\""
          (Json.to_string_opt (mem "name" j))
      in
      let* circuits =
        match mem "circuits" j with
        | Json.List items ->
            map_result
              (fun _ c ->
                Option.to_result ~none:"manifest: circuits must be strings"
                  (Json.to_string_opt c))
              items
        | _ -> Error "manifest: missing \"circuits\" list"
      in
      let* algorithms =
        match mem "algorithms" j with
        | Json.Null -> Ok Flow.default_algorithms
        | Json.List items -> map_result (fun _ a -> algorithm_of_json a) items
        | _ -> Error "manifest: \"algorithms\" must be a list"
      in
      let* configs =
        match mem "configs" j with
        | Json.Null -> Ok [ default_config ]
        | Json.List items ->
            map_result
              (fun i c ->
                config_of_json ~default_label:("config-" ^ string_of_int i) c)
              items
        | _ -> Error "manifest: \"configs\" must be a list"
      in
      let* seeds =
        match mem "seeds" j with
        | Json.Null -> Error "manifest: missing \"seeds\""
        | s -> seeds_of_json s
      in
      let int_field name default =
        match mem name j with
        | Json.Null -> Ok default
        | Json.Int n -> Ok n
        | _ -> Error (Printf.sprintf "manifest: %S must be an integer" name)
      in
      let float_field name =
        match mem name j with
        | Json.Null -> Ok None
        | Json.Int n -> Ok (Some (float_of_int n))
        | Json.Float f -> Ok (Some f)
        | _ -> Error (Printf.sprintf "manifest: %S must be a number" name)
      in
      let* shards = int_field "shards" 1 in
      let* retries = int_field "retries" 2 in
      let* timeout_s = float_field "timeout_s" in
      let* attempt_timeout_s = float_field "attempt_timeout_s" in
      let* heartbeat_timeout_s =
        let* v = float_field "heartbeat_timeout_s" in
        Ok (Option.value v ~default:60.)
      in
      let* backend =
        match mem "backend" j with
        | Json.Null -> Ok "stt"
        | Json.String s -> Ok s
        | _ -> Error "manifest: \"backend\" must be a string"
      in
      Ok
        {
          name;
          circuits;
          algorithms;
          configs;
          seeds;
          shards;
          timeout_s;
          retries;
          heartbeat_timeout_s;
          attempt_timeout_s;
          backend;
        }
  | _ -> Error "manifest: not a JSON object"

let to_string m = Json.to_string (to_json m) ^ "\n"

let of_string s =
  match Json.of_string s with
  | Error e -> Error ("manifest: " ^ e)
  | Ok j ->
      let* m = of_json j in
      let* () = validate m in
      Ok m

let save path m = Sttc_obs.Export.write_text path (to_string m)

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error ("manifest: " ^ e)
  | contents -> of_string contents
