module Metrics = Sttc_obs.Metrics
module Pool = Sttc_util.Pool

type cause =
  | Exited of int
  | Signaled of int
  | Stalled of float
  | Hung of float
  | Bad_result of string
  | Crashed of string

(* OCaml's Sys signal numbers are negative codes of their own; name the
   ones a worker plausibly dies from. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigbus then "SIGBUS"
  else "signal " ^ string_of_int s

let cause_to_string = function
  | Exited n -> Printf.sprintf "exit %d" n
  | Signaled s -> signal_name s
  | Stalled s -> Printf.sprintf "heartbeat silent %.1fs" s
  | Hung s -> Printf.sprintf "attempt ran %.1fs past spawn" s
  | Bad_result r -> "bad result: " ^ r
  | Crashed r -> "crashed: " ^ r

type event =
  | Spawned of { shard : int; attempt : int; pid : int }
  | Completed of { shard : int; attempt : int }
  | Attempt_failed of {
      shard : int;
      attempt : int;
      cause : cause;
      backoff_s : float;
    }
  | Degraded of { shard : int; attempts : int; cause : cause }

let string_of_event = function
  | Spawned { shard; attempt; pid } ->
      Printf.sprintf "shard %d: attempt %d spawned (pid %d)" shard attempt pid
  | Completed { shard; attempt } ->
      Printf.sprintf "shard %d: complete (attempt %d)" shard attempt
  | Attempt_failed { shard; attempt; cause; backoff_s } ->
      Printf.sprintf "shard %d: attempt %d failed (%s); retry in %.2fs" shard
        attempt (cause_to_string cause) backoff_s
  | Degraded { shard; attempts; cause } ->
      Printf.sprintf "shard %d: DEGRADED after %d attempts (%s)" shard attempts
        (cause_to_string cause)

type shard_status = Complete | Exhausted of { attempts : int; last : cause }

type outcome = {
  statuses : (int * shard_status) list;
  retries : int;
  respawns : int;
  heartbeat_misses : int;
  degraded : int;
}

let all_complete o = List.for_all (fun (_, s) -> s = Complete) o.statuses

type worker =
  | Spawn of (dir:string -> shard:int -> attempt:int -> string array)
  | In_process

let default_spawn =
  Spawn
    (fun ~dir ~shard ~attempt ->
      [|
        Sys.executable_name;
        "worker";
        "--dir";
        dir;
        "--shard";
        string_of_int shard;
        "--attempt";
        string_of_int attempt;
      |])

type config = {
  dir : string;
  manifest : Manifest.t;
  jobs : int;
  retries : int option;
  backoff_base_s : float;
  backoff_cap_s : float;
  poll_interval_s : float;
  worker : worker;
  on_event : event -> unit;
}

let config ?(jobs = 2) ?retries ?(backoff_base_s = 0.25) ?(backoff_cap_s = 10.)
    ?(poll_interval_s = 0.05) ?(worker = default_spawn) ?(on_event = ignore)
    ~dir ~manifest () =
  {
    dir;
    manifest;
    jobs = max 1 jobs;
    retries;
    backoff_base_s;
    backoff_cap_s;
    poll_interval_s;
    worker;
    on_event;
  }

let backoff_s cfg ~attempt =
  (* attempt >= 2: the first retry waits the base, each further one
     doubles, deterministically (reproducible schedules; no jitter). *)
  Float.min cfg.backoff_cap_s
    (cfg.backoff_base_s *. (2. ** float_of_int (max 0 (attempt - 2))))

(* {2 The supervision loop} *)

type running = {
  pid : int;
  attempt : int;
  started : float;
  mutable hb : string;
  mutable hb_at : float;
}

type state =
  | Pending of { attempt : int; not_before : float }
  | Running of running
  | Done
  | Dead of { attempts : int; last : cause }

let read_file path =
  try Some (In_channel.with_open_bin path In_channel.input_all)
  with Sys_error _ -> None

let counters =
  [
    "campaign.shard_retries";
    "campaign.worker_respawns";
    "campaign.heartbeat_misses";
    "campaign.shards_degraded";
    "campaign.shards_completed";
  ]

let run cfg =
  let m = cfg.manifest in
  let dir = cfg.dir in
  Shard.prepare_dir dir;
  (* seed the counters so the series exist even in an uneventful run *)
  List.iter (fun c -> Metrics.incr ~by:0 c) counters;
  let budget = Option.value cfg.retries ~default:m.Manifest.retries in
  let max_attempts = budget + 1 in
  let n = m.Manifest.shards in
  let states =
    Array.init n (fun shard ->
        match Shard.load_result ~dir ~shard with
        | Ok (_ : Shard.row list) -> Done
        | Error _ -> Pending { attempt = 1; not_before = 0. })
  in
  let retries = ref 0
  and respawns = ref 0
  and hb_misses = ref 0
  and degraded = ref 0 in
  let now () = Pool.now_s () in
  let complete shard attempt =
    states.(shard) <- Done;
    Metrics.incr "campaign.shards_completed";
    cfg.on_event (Completed { shard; attempt })
  in
  let fail shard attempt cause =
    (match cause with
    | Stalled _ ->
        incr hb_misses;
        Metrics.incr "campaign.heartbeat_misses"
    | _ -> ());
    if attempt >= max_attempts then (
      states.(shard) <- Dead { attempts = attempt; last = cause };
      incr degraded;
      Metrics.incr "campaign.shards_degraded";
      cfg.on_event (Degraded { shard; attempts = attempt; cause }))
    else
      let b = backoff_s cfg ~attempt:(attempt + 1) in
      states.(shard) <- Pending { attempt = attempt + 1; not_before = now () +. b };
      incr retries;
      Metrics.incr "campaign.shard_retries";
      cfg.on_event (Attempt_failed { shard; attempt; cause; backoff_s = b })
  in
  let finish shard attempt = function
    | Ok () -> (
        (* exit 0 is a claim, not proof: the result must load *)
        match Shard.load_result ~dir ~shard with
        | Ok (_ : Shard.row list) -> complete shard attempt
        | Error e ->
            fail shard attempt (Bad_result (Sttc_util.Ckpt.error_to_string e)))
    | Error cause -> fail shard attempt cause
  in
  let note_respawn attempt =
    if attempt > 1 then (
      incr respawns;
      Metrics.incr "campaign.worker_respawns")
  in
  let start shard attempt =
    match cfg.worker with
    | In_process ->
        note_respawn attempt;
        cfg.on_event (Spawned { shard; attempt; pid = Unix.getpid () });
        let res =
          match Worker.run ~dir ~shard ~attempt () with
          | Ok (_ : Worker.outcome) -> Ok ()
          | Error e -> Error (Crashed e)
          | exception e -> Error (Crashed (Printexc.to_string e))
        in
        finish shard attempt res
    | Spawn argv_of ->
        let argv = argv_of ~dir ~shard ~attempt in
        let log = Shard.log_path ~dir ~shard ~attempt in
        let fd =
          Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
        in
        let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
        let pid =
          Fun.protect
            ~finally:(fun () ->
              Unix.close fd;
              Unix.close null)
            (fun () -> Unix.create_process argv.(0) argv null fd fd)
        in
        note_respawn attempt;
        cfg.on_event (Spawned { shard; attempt; pid });
        let t = now () in
        let hb =
          Option.value (read_file (Shard.heartbeat_path ~dir shard)) ~default:""
        in
        states.(shard) <- Running { pid; attempt; started = t; hb; hb_at = t }
  in
  let kill_and_reap pid =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
  in
  let poll shard (r : running) =
    match Unix.waitpid [ Unix.WNOHANG ] r.pid with
    | exception Unix.Unix_error (e, _, _) ->
        finish shard r.attempt
          (Error (Crashed ("waitpid: " ^ Unix.error_message e)))
    | 0, _ -> (
        let t = now () in
        (match read_file (Shard.heartbeat_path ~dir shard) with
        | Some c when c <> r.hb ->
            r.hb <- c;
            r.hb_at <- t
        | _ -> ());
        let silent = t -. r.hb_at in
        if silent > m.Manifest.heartbeat_timeout_s then (
          kill_and_reap r.pid;
          finish shard r.attempt (Error (Stalled silent)))
        else
          match m.Manifest.attempt_timeout_s with
          | Some limit when t -. r.started > limit ->
              kill_and_reap r.pid;
              finish shard r.attempt (Error (Hung (t -. r.started)))
          | _ -> ())
    | _, Unix.WEXITED 0 -> finish shard r.attempt (Ok ())
    | _, Unix.WEXITED c -> finish shard r.attempt (Error (Exited c))
    | _, Unix.WSIGNALED s | _, Unix.WSTOPPED s ->
        finish shard r.attempt (Error (Signaled s))
  in
  let unfinished () =
    Array.exists (function Pending _ | Running _ -> true | _ -> false) states
  in
  while unfinished () do
    let running_count =
      Array.fold_left
        (fun acc -> function Running _ -> acc + 1 | _ -> acc)
        0 states
    in
    let slots = ref (cfg.jobs - running_count) in
    Array.iteri
      (fun shard st ->
        match st with
        | Pending { attempt; not_before } when !slots > 0 && now () >= not_before
          ->
            decr slots;
            start shard attempt
        | _ -> ())
      states;
    Array.iteri
      (fun shard st -> match st with Running r -> poll shard r | _ -> ())
      states;
    if unfinished () then Unix.sleepf cfg.poll_interval_s
  done;
  let statuses =
    Array.to_list
      (Array.mapi
         (fun shard st ->
           match st with
           | Done -> (shard, Complete)
           | Dead { attempts; last } ->
               (shard, Exhausted { attempts; last })
           | Pending _ | Running _ -> assert false)
         states)
  in
  {
    statuses;
    retries = !retries;
    respawns = !respawns;
    heartbeat_misses = !hb_misses;
    degraded = !degraded;
  }
