module Flow = Sttc_core.Flow

type metrics = {
  gates : int;
  luts : int;
  config_bits : int;
  perf_pct : float;
  power_pct : float;
  area_pct : float;
  n_indep : string;
  n_dep : string;
  n_bf : string;
}

type outcome = Done of metrics | Failed of string

type row = {
  index : int;
  circuit : string;
  config : string;
  algorithm : string;
  seed : int;
  outcome : outcome;
}

let of_result (run : Manifest.run) result =
  let outcome =
    match result with
    | Error reason -> Failed reason
    | Ok (r : Flow.result) ->
        let sec = r.security and ov = r.overhead in
        Done
          {
            gates =
              Sttc_netlist.Netlist.gate_count (Sttc_core.Hybrid.original r.hybrid);
            luts = ov.n_stts;
            config_bits = sec.total_config_bits;
            perf_pct = ov.performance_pct;
            power_pct = ov.power_pct;
            area_pct = ov.area_pct;
            n_indep = Sttc_util.Lognum.to_string sec.n_indep;
            n_dep = Sttc_util.Lognum.to_string sec.n_dep;
            n_bf = Sttc_util.Lognum.to_string sec.n_bf;
          }
  in
  {
    index = run.index;
    circuit = run.circuit;
    config = run.config.label;
    algorithm = Flow.algorithm_name run.algorithm;
    seed = run.seed;
    outcome;
  }

let assign m ~shard =
  if shard < 0 || shard >= m.Manifest.shards then
    invalid_arg
      (Printf.sprintf "Shard.assign: shard %d out of range [0, %d)" shard
         m.Manifest.shards);
  List.filter
    (fun (r : Manifest.run) -> r.index mod m.Manifest.shards = shard)
    (Manifest.runs m)

(* {2 Layout} *)

let manifest_path dir = Filename.concat dir "manifest.json"
let shards_dir dir = Filename.concat dir "shards"
let report_json_path dir = Filename.concat dir "report.json"
let report_text_path dir = Filename.concat dir "report.txt"
let campaign_metrics_path dir = Filename.concat dir "campaign.metrics.json"

let shard_file ~dir shard ext =
  Filename.concat (shards_dir dir) (Printf.sprintf "shard-%d.%s" shard ext)

let checkpoint_path ~dir shard = shard_file ~dir shard "ckpt"
let result_path ~dir shard = shard_file ~dir shard "done"
let heartbeat_path ~dir shard = shard_file ~dir shard "hb"
let metrics_path ~dir shard = shard_file ~dir shard "metrics.json"

let log_path ~dir ~shard ~attempt =
  shard_file ~dir shard (Printf.sprintf "attempt-%d.log" attempt)

let mkdir_if_missing d =
  if not (Sys.file_exists d) then
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let prepare_dir dir =
  mkdir_if_missing dir;
  mkdir_if_missing (shards_dir dir)

(* {2 Shard IO} *)

let ckpt_magic = "campaign-shard-rows-v1"
let result_magic = "campaign-shard-result-v1"

let save_checkpoint ~dir ~shard rows =
  Sttc_util.Ckpt.save (checkpoint_path ~dir shard) ~magic:ckpt_magic rows

let load_checkpoint ~dir ~shard =
  match Sttc_util.Ckpt.load (checkpoint_path ~dir shard) ~magic:ckpt_magic with
  | Ok (rows : row list) -> rows
  | Error `Missing -> []
  | Error (`Rejected _) ->
      Sttc_obs.Metrics.incr "campaign.checkpoint_rejected";
      []

let save_result ~dir ~shard rows =
  Sttc_util.Ckpt.save (result_path ~dir shard) ~magic:result_magic rows

let load_result ~dir ~shard :
    (row list, Sttc_util.Ckpt.error) result =
  Sttc_util.Ckpt.load (result_path ~dir shard) ~magic:result_magic
